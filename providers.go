package distredge

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProviders parses the "type:bandwidthMbps,type:bandwidthMbps,..."
// provider syntax shared by the command-line tools, e.g.
// "xavier:200,nano:100,pi3:50".
func ParseProviders(spec string) ([]Provider, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("distredge: empty provider spec")
	}
	var out []Provider
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		bits := strings.Split(part, ":")
		if len(bits) != 2 {
			return nil, fmt.Errorf("distredge: bad provider %q (want type:bandwidthMbps)", part)
		}
		bw, err := strconv.ParseFloat(bits[1], 64)
		if err != nil {
			return nil, fmt.Errorf("distredge: bad bandwidth in %q: %v", part, err)
		}
		out = append(out, Provider{Type: strings.TrimSpace(bits[0]), BandwidthMbps: bw})
	}
	return out, nil
}
