package distredge

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProviders parses the "type:bandwidthMbps,type:bandwidthMbps,..."
// provider syntax shared by the command-line tools, e.g.
// "xavier:200,nano:100,pi3:50".
func ParseProviders(spec string) ([]Provider, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("distredge: empty provider spec")
	}
	var out []Provider
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		bits := strings.Split(part, ":")
		if len(bits) != 2 {
			return nil, fmt.Errorf("distredge: bad provider %q (want type:bandwidthMbps)", part)
		}
		bw, err := strconv.ParseFloat(bits[1], 64)
		if err != nil {
			return nil, fmt.Errorf("distredge: bad bandwidth in %q: %v", part, err)
		}
		out = append(out, Provider{Type: strings.TrimSpace(bits[0]), BandwidthMbps: bw})
	}
	return out, nil
}

// ParseChurn parses the scripted fleet-event syntax shared by the
// command-line tools: comma-separated events of the form
//
//	drop:DEV@T    — provider DEV leaves the fleet at trace time T (seconds)
//	join:DEV@T    — provider DEV rejoins at T
//	slow:DEVxF@T  — provider DEV becomes F times slower at T
//
// e.g. "drop:1@2.5,slow:2x3@4,join:1@8".
func ParseChurn(spec string) ([]ChurnEvent, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []ChurnEvent
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		kind, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("distredge: bad churn event %q (want kind:dev@t)", part)
		}
		devSpec, atSpec, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("distredge: bad churn event %q (missing @time)", part)
		}
		at, err := strconv.ParseFloat(atSpec, 64)
		if err != nil {
			return nil, fmt.Errorf("distredge: bad time in %q: %v", part, err)
		}
		ev := ChurnEvent{Kind: strings.TrimSpace(kind), AtSec: at, Factor: 1}
		if ev.Kind == "slow" {
			dv, fv, ok := strings.Cut(devSpec, "x")
			if !ok {
				return nil, fmt.Errorf("distredge: slow event %q needs devxfactor", part)
			}
			ev.Factor, err = strconv.ParseFloat(fv, 64)
			if err != nil {
				return nil, fmt.Errorf("distredge: bad factor in %q: %v", part, err)
			}
			devSpec = dv
		}
		ev.Device, err = strconv.Atoi(strings.TrimSpace(devSpec))
		if err != nil {
			return nil, fmt.Errorf("distredge: bad device in %q: %v", part, err)
		}
		out = append(out, ev)
	}
	return out, nil
}
