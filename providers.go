package distredge

import (
	"fmt"
	"strconv"
	"strings"

	"distredge/internal/runtime"
	"distredge/internal/sim"
	"distredge/internal/transport"
)

// ParseProviders parses the "type:bandwidthMbps,type:bandwidthMbps,..."
// provider syntax shared by the command-line tools, e.g.
// "xavier:200,nano:100,pi3:50". Bandwidths must be positive finite numbers;
// the device type must be non-empty (it is validated against the device
// zoo later, by New).
func ParseProviders(spec string) ([]Provider, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("distredge: empty provider spec")
	}
	var out []Provider
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		bits := strings.Split(part, ":")
		if len(bits) != 2 {
			return nil, fmt.Errorf("distredge: bad provider %q (want type:bandwidthMbps)", part)
		}
		typ := strings.TrimSpace(bits[0])
		if typ == "" {
			return nil, fmt.Errorf("distredge: provider %q has an empty device type", part)
		}
		bw, err := strconv.ParseFloat(bits[1], 64)
		if err != nil {
			return nil, fmt.Errorf("distredge: bad bandwidth in %q: %v", part, err)
		}
		if bw <= 0 || bw != bw || bw > 1e9 {
			return nil, fmt.Errorf("distredge: bandwidth in %q must be a positive number of Mbps", part)
		}
		out = append(out, Provider{Type: typ, BandwidthMbps: bw})
	}
	return out, nil
}

// ParseChurn parses the scripted fleet-event syntax shared by the
// command-line tools: comma-separated events of the form
//
//	drop:DEV@T    — provider DEV leaves the fleet at trace time T (seconds)
//	join:DEV@T    — provider DEV rejoins at T
//	slow:DEVxF@T  — provider DEV becomes F times slower at T
//
// e.g. "drop:1@2.5,slow:2x3@4,join:1@8". Times must be non-negative,
// devices non-negative, slow factors positive, and no event may be an
// exact duplicate of an earlier one (same kind, device and time — almost
// always a typo for a different time).
func ParseChurn(spec string) ([]ChurnEvent, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	type eventKey struct {
		kind string
		dev  int
		at   float64
	}
	seen := make(map[eventKey]bool)
	var out []ChurnEvent
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		kind, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("distredge: bad churn event %q (want kind:dev@t)", part)
		}
		devSpec, atSpec, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("distredge: bad churn event %q (missing @time)", part)
		}
		at, err := strconv.ParseFloat(atSpec, 64)
		if err != nil {
			return nil, fmt.Errorf("distredge: bad time in %q: %v", part, err)
		}
		if at < 0 || at != at {
			return nil, fmt.Errorf("distredge: churn event %q has a negative time", part)
		}
		ev := ChurnEvent{Kind: strings.TrimSpace(kind), AtSec: at, Factor: 1}
		if ev.Kind == "slow" {
			dv, fv, ok := strings.Cut(devSpec, "x")
			if !ok {
				return nil, fmt.Errorf("distredge: slow event %q needs devxfactor", part)
			}
			ev.Factor, err = strconv.ParseFloat(fv, 64)
			if err != nil {
				return nil, fmt.Errorf("distredge: bad factor in %q: %v", part, err)
			}
			if ev.Factor <= 0 || ev.Factor != ev.Factor {
				return nil, fmt.Errorf("distredge: slow factor in %q must be positive", part)
			}
			devSpec = dv
		}
		ev.Device, err = strconv.Atoi(strings.TrimSpace(devSpec))
		if err != nil {
			return nil, fmt.Errorf("distredge: bad device in %q: %v", part, err)
		}
		if ev.Device < 0 {
			return nil, fmt.Errorf("distredge: churn event %q has a negative device index", part)
		}
		key := eventKey{kind: ev.Kind, dev: ev.Device, at: ev.AtSec}
		if seen[key] {
			return nil, fmt.Errorf("distredge: duplicate churn event %q", part)
		}
		seen[key] = true
		out = append(out, ev)
	}
	return out, nil
}

// ParseObjective parses the command-line -objective flag shared by the
// planning commands: "latency" (or empty, the default) plans for
// sequential single-image latency, "ips" for sustained pipelined
// throughput, "slo" for throughput under a p95 latency bound (the bound
// itself comes from the -slo flag via PlanConfig.SLOP95MS).
func ParseObjective(spec string) (Objective, error) {
	switch strings.TrimSpace(spec) {
	case "", string(ObjectiveLatency):
		return ObjectiveLatency, nil
	case string(ObjectiveIPS):
		return ObjectiveIPS, nil
	case string(ObjectiveSLO):
		return ObjectiveSLO, nil
	default:
		return "", fmt.Errorf("distredge: unknown objective %q (want latency|ips|slo)", spec)
	}
}

// ParseTenants parses the command-line -tenants flag shared by the serving
// commands: comma-separated "name:IMAGESxWEIGHT" entries, weight optional
// (default 1), e.g. "heavy:24x1,small:4x4". Names must be unique and
// non-empty, images >= 1, weights positive.
func ParseTenants(spec string) ([]sim.TenantSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("distredge: empty tenant spec")
	}
	seen := make(map[string]bool)
	var out []sim.TenantSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, rest, ok := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("distredge: bad tenant %q (want name:IMAGESxWEIGHT)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("distredge: duplicate tenant %q", name)
		}
		seen[name] = true
		imgSpec, wSpec, hasW := strings.Cut(rest, "x")
		images, err := strconv.Atoi(strings.TrimSpace(imgSpec))
		if err != nil {
			return nil, fmt.Errorf("distredge: bad image count in %q: %v", part, err)
		}
		if images < 1 {
			return nil, fmt.Errorf("distredge: tenant %q needs at least one image", part)
		}
		weight := 1.0
		if hasW {
			weight, err = strconv.ParseFloat(strings.TrimSpace(wSpec), 64)
			if err != nil {
				return nil, fmt.Errorf("distredge: bad weight in %q: %v", part, err)
			}
			if weight <= 0 || weight != weight {
				return nil, fmt.Errorf("distredge: weight in %q must be positive", part)
			}
		}
		out = append(out, sim.TenantSpec{Name: name, Images: images, Weight: weight})
	}
	return out, nil
}

// ParseTransport builds the wire stack named by the command-line
// -transport flag:
//
//	tcp              — localhost TCP sockets, binary chunk codec (the default)
//	tcp+sync         — tcp with per-message flushing (one syscall per chunk;
//	                   the pre-coalescing wire, kept as the measured baseline
//	                   for `distbench -fig hotpath`)
//	tcp+gob          — localhost TCP sockets, legacy gob wire format
//	tcp+deflate      — tcp with DEFLATE-compressed chunk payloads (worth the
//	                   CPU on low-bandwidth shaped links; see DESIGN.md)
//	tcp+quant        — tcp with int8-quantized chunk payloads (4x fewer
//	                   payload bytes; lossy — see DESIGN.md "Quantized
//	                   payloads")
//	tcp+quant16      — tcp with fp16-quantized chunk payloads (2x, near
//	                   lossless)
//	tcp+quant+deflate — int8 quantization with DEFLATE over the quantized
//	                   bytes (the compositions stack back to front)
//	inproc           — in-process channels, no sockets (fast, race-clean)
//
// The serving stacks (everything but tcp+gob) carry a payload pool so
// chunk buffers are recycled across images. Wrap the result with
// System.ShapedTransport to charge the system's WiFi trace latency to
// every payload byte (the -trace flag), or ShapedTransportPostCodec to
// charge the post-codec wire bytes so quantization and compression pay
// off on the shaped wire too.
func ParseTransport(spec string) (transport.Transport, error) {
	switch strings.TrimSpace(spec) {
	case "", "tcp":
		return transport.NewPooledTCP(nil, nil), nil
	case "tcp+sync":
		return transport.NewTCPOpts(transport.TCPConfig{SyncFlush: true, Pool: transport.NewPool()}), nil
	case "tcp+gob":
		return transport.NewTCP(transport.Gob()), nil
	case "tcp+deflate":
		return transport.NewPooledTCP(transport.Deflate(), nil), nil
	case "tcp+quant":
		return transport.NewPooledTCP(transport.Quant(transport.QuantInt8, nil), nil), nil
	case "tcp+quant16":
		return transport.NewPooledTCP(transport.Quant(transport.QuantFP16, nil), nil), nil
	case "tcp+quant+deflate":
		return transport.NewPooledTCP(transport.Quant(transport.QuantInt8, transport.Deflate()), nil), nil
	case "inproc":
		return transport.NewPooledInproc(nil), nil
	default:
		return nil, fmt.Errorf("distredge: unknown transport %q (want tcp|tcp+sync|tcp+gob|tcp+deflate|tcp+quant|tcp+quant16|tcp+quant+deflate|inproc)", spec)
	}
}

// ShapedTransport wraps a transport so the runtime's sends are charged
// this system's WiFi trace latency (internal/transport's shaped
// decorator): the deployed cluster then experiences the same network
// conditions the simulator evaluates — including the dynamic traces of
// WithDynamicNetwork — instead of localhost's free wire. The opts must be
// the same runtime.Options the cluster is deployed with, so payload bytes
// and wall-clock sleeps map back to model scale consistently.
func (s *System) ShapedTransport(inner transport.Transport, opts runtime.Options) transport.Transport {
	return transport.NewShaped(inner, s.env.Net, opts.TimeScale, opts.BytesScale, 0)
}

// ShapedTransportPostCodec is ShapedTransport with post-codec byte
// charging: the trace latency is charged for the bytes the inner
// transport's codec actually puts on the wire rather than the raw
// payload, so quantizing and compressing codecs (tcp+quant,
// tcp+quant+deflate, tcp+deflate) buy back shaped wire seconds exactly as
// they would on a real link. Inner transports without a wire codec
// (inproc — payloads cross by reference) keep the raw-byte charge.
func (s *System) ShapedTransportPostCodec(inner transport.Transport, opts runtime.Options) transport.Transport {
	return transport.NewShaped(inner, s.env.Net, opts.TimeScale, opts.BytesScale, 0).ChargePostCodec()
}
