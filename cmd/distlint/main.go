// Command distlint runs distredge's project-invariant analyzers over the
// module and exits non-zero if any invariant is violated.
//
// Usage:
//
//	go run ./cmd/distlint [flags] [packages]
//
// Packages default to ./... . Flags:
//
//	-only  comma-separated analyzer names to run (default: all)
//	-list  print the analyzer suite and exit
//	-C     directory to run in (module root; default: current directory)
//
// Diagnostics print as file:line:col: [analyzer] message, sorted by
// position, so editors and CI logs can jump straight to the site. The
// process exits 1 when diagnostics were reported, 2 on driver errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"distredge/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	dir := flag.String("C", "", "directory to run go list in (default: current directory)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "distlint: warning: %s: %v\n", p.ImportPath, terr)
		}
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "distlint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
