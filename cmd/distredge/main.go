// Command distredge plans a CNN inference distribution strategy for a set
// of edge devices and reports the predicted streaming performance, along
// with every baseline method for comparison.
//
// Usage:
//
//	distredge -model vgg16 -providers xavier:200,xavier:200,nano:200,nano:200
//	distredge -model yolov2 -providers nano:50,nano:100,tx2:200 -effort full
//	distredge -model vgg16 -providers nano:100,nano:100 -baselines
//	distredge -model vgg16 -providers nano:50,nano:50 -deploy -transport inproc -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distredge"
	"distredge/internal/runtime"
	"distredge/internal/sim"
)

func main() {
	model := flag.String("model", "vgg16", "model: "+strings.Join(distredge.Models(), ", "))
	provSpec := flag.String("providers", "xavier:200,xavier:200,nano:200,nano:200",
		"comma-separated type:bandwidthMbps provider list")
	alpha := flag.Float64("alpha", 0.75, "LC-PSS alpha (transmission/ops trade-off)")
	effort := flag.String("effort", "quick", "planning effort: tiny|quick|full|paper")
	objectiveSpec := flag.String("objective", "latency", "planning objective: latency (sequential single-image), ips (sustained pipelined throughput) or slo (throughput under the -slo p95 bound)")
	objWindow := flag.Int("objwindow", 4, "admission window the ips/slo objectives optimise for")
	sloMS := flag.Float64("slo", 0, "p95 latency bound in ms the slo objective plans under (0 = none)")
	images := flag.Int("images", 500, "images to stream in the evaluation")
	window := flag.Int("window", 1, "admission window: images kept in flight (1 = the paper's sequential protocol)")
	seed := flag.Int64("seed", 1, "random seed")
	withBaselines := flag.Bool("baselines", false, "also evaluate the seven baseline methods")
	describe := flag.Bool("describe", false, "print the model's per-layer summary and exit")
	timeline := flag.Bool("timeline", false, "render a per-device Gantt chart of one image")
	savePath := flag.String("save", "", "write the planned strategy to this JSON file")
	loadPath := flag.String("load", "", "evaluate a previously saved strategy instead of planning")
	churnSpec := flag.String("churn", "", "scripted fleet events, e.g. 'drop:1@2.5,slow:2x3@4,join:1@8' (see ParseChurn)")
	noRecover := flag.Bool("norecover", false, "with -churn: disable re-planning, so a drop truncates the stream")
	deploy := flag.Bool("deploy", false, "also deploy the plan on the real runtime and measure it")
	transportSpec := flag.String("transport", "tcp", "with -deploy: wire stack tcp|tcp+gob|tcp+deflate|tcp+quant|tcp+quant16|tcp+quant+deflate|inproc")
	trace := flag.Bool("trace", false, "with -deploy: shape the transport with the planned WiFi traces")
	batch := flag.Int("batch", 1, "with -deploy: step-batching cap — up to this many queued same-step images share one compute invocation (1 = off, 0 = adaptive: drain whatever queued)")
	planCacheCap := flag.Int("plancache", 0, "plan through a plan cache bounding this many entries, and re-plan churn recoveries from it (0 = off)")
	timescale := flag.Float64("timescale", 0.05, "with -deploy: compute emulation time scale")
	bytescale := flag.Float64("bytescale", 0.001, "with -deploy: payload byte scale")
	flag.Parse()

	if *describe {
		s, err := distredge.DescribeModel(*model)
		if err != nil {
			fatal(err)
		}
		fmt.Print(s)
		return
	}

	providers, err := distredge.ParseProviders(*provSpec)
	if err != nil {
		fatal(err)
	}
	objective, err := distredge.ParseObjective(*objectiveSpec)
	if err != nil {
		fatal(err)
	}
	sys, err := distredge.New(*model, providers, distredge.WithSeed(*seed))
	if err != nil {
		fatal(err)
	}

	planCfg := distredge.PlanConfig{
		Alpha:           *alpha,
		Effort:          distredge.Effort(*effort),
		Objective:       objective,
		ObjectiveWindow: *objWindow,
		SLOP95MS:        *sloMS,
	}
	var planCache *distredge.PlanCache
	if *planCacheCap > 0 {
		planCache = distredge.NewPlanCache(*planCacheCap)
	}
	var plan *distredge.Plan
	if *loadPath != "" {
		data, err := os.ReadFile(*loadPath)
		if err != nil {
			fatal(err)
		}
		plan, err = sys.LoadPlan(data)
		if err != nil {
			fatal(err)
		}
	} else if planCache != nil {
		var outcome distredge.PlanOutcome
		plan, outcome, err = sys.PlanCached(planCfg, planCache)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("plan cache: %s\n", outcome)
	} else {
		plan, err = sys.Plan(planCfg)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Print(plan.Describe(*model))
	if *savePath != "" {
		data, err := sys.SavePlan(plan)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*savePath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("saved plan to %s\n", *savePath)
	}
	rep, err := sys.Evaluate(plan, *images)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%-14s IPS=%7.2f  latency=%7.1fms  maxComp=%6.1fms  maxTrans=%6.1fms\n",
		plan.Method, rep.IPS, rep.MeanLatMS, rep.MaxCompMS, rep.MaxTransMS)

	// An ips-planned strategy is meant to be served pipelined: report the
	// pipelined evaluation at its objective window even without -window.
	pipeWindow := *window
	if pipeWindow <= 1 && (objective == distredge.ObjectiveIPS || objective == distredge.ObjectiveSLO) {
		pipeWindow = *objWindow
	}
	if pipeWindow > 1 {
		prep, err := sys.EvaluatePipelined(plan, *images, pipeWindow)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s IPS=%7.2f  steady=%7.2f  latency=%7.1fms  p95=%7.1fms  (window %d)\n",
			"pipelined", prep.IPS, prep.SteadyIPS, prep.MeanLatMS, prep.P95LatMS, prep.Window)
	}

	if *churnSpec != "" {
		events, err := distredge.ParseChurn(*churnSpec)
		if err != nil {
			fatal(err)
		}
		var replan sim.ReplanFunc
		if planCache != nil {
			replan, err = planCache.CachedReplan(planCfg, nil)
			if err != nil {
				fatal(err)
			}
		}
		crep, err := sys.EvaluateChurnReplan(plan, *images, *window, events, !*noRecover, replan)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s goodput=%5.2f  completed=%d/%d  latency=%7.1fms  p95=%7.1fms  (window %d)\n",
			"churn", crep.GoodputIPS, crep.Completed, *images, crep.MeanLatMS, crep.P95LatMS, crep.Window)
		if crep.Recoveries > 0 {
			fmt.Printf("               recovered %d time(s), requeued %d in-flight images", crep.Recoveries, crep.Requeued)
			for i, rs := range crep.RecoverSec {
				if rs >= 0 {
					fmt.Printf("; event %d recovered in %.3fs", i+1, rs)
				}
			}
			fmt.Println()
		}
		if crep.FailedAtSec >= 0 {
			fmt.Printf("               stream truncated at t=%.2fs: %d images lost\n", crep.FailedAtSec, crep.Failed)
		}
	}

	if *deploy {
		tr, err := distredge.ParseTransport(*transportSpec)
		if err != nil {
			fatal(err)
		}
		rtObj, err := distredge.RuntimeObjective(distredge.PlanConfig{
			Objective:       objective,
			ObjectiveWindow: *objWindow,
			ObjectiveBatch:  *batch,
			SLOP95MS:        *sloMS,
		})
		if err != nil {
			fatal(err)
		}
		opts := runtime.Options{TimeScale: *timescale, BytesScale: *bytescale, Objective: rtObj, Batch: *batch}
		if planCache != nil {
			opts.Replan, err = planCache.CachedReplan(planCfg, nil)
			if err != nil {
				fatal(err)
			}
		}
		if *trace {
			opts.Transport = sys.ShapedTransport(tr, opts)
		} else {
			opts.Transport = tr
		}
		cluster, err := sys.Deploy(plan, opts)
		if err != nil {
			fatal(err)
		}
		stats, runErr := cluster.RunPipelined(*images, *window)
		cluster.Close()
		if runErr != nil {
			fatal(runErr)
		}
		// Wall-clock measurements map back to model time via the scales.
		fmt.Printf("%-14s IPS=%7.2f  latency=%7.1fms  (measured over %s, %d images, window %d, model scale)\n",
			"deployed", stats.IPS**timescale, stats.MeanLatMS()/(*timescale),
			opts.Transport.Name(), stats.Completed, stats.Window)
	}

	if *timeline {
		gantt, err := sys.Timeline(plan)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(gantt)
	}

	if planCache != nil {
		st := planCache.Stats()
		fmt.Printf("plan cache: %d entr%s, %d hit(s), %d miss(es), %d warm hit(s)\n",
			st.Entries, plural(st.Entries, "y", "ies"), st.Hits, st.Misses, st.WarmHits)
	}

	if *withBaselines {
		for _, name := range distredge.Baselines() {
			bp, err := sys.Baseline(name)
			if err != nil {
				fatal(err)
			}
			brep, err := sys.Evaluate(bp, *images)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-14s IPS=%7.2f  latency=%7.1fms  maxComp=%6.1fms  maxTrans=%6.1fms\n",
				name, brep.IPS, brep.MeanLatMS, brep.MaxCompMS, brep.MaxTransMS)
		}
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distredge:", err)
	os.Exit(1)
}
