// Command distnode deploys a planned strategy over the runtime's wire
// stack — one listener per provider with receive/compute/send goroutines,
// exactly the runtime shape of the paper's testbed (Section V-A) — and
// streams images through it. The -transport flag picks the medium
// (localhost TCP with the binary chunk codec by default, tcp+gob for the
// legacy wire format, inproc for socket-free channels) and -trace shapes
// it with the planned WiFi traces, so the deployment experiences the
// simulator's network conditions instead of localhost's free wire.
//
// Compute is emulated (sleep = device-model latency x -timescale) while the
// routing, framing, halo exchange and FC gathering are performed for real.
//
// Usage:
//
//	distnode -model vgg16 -providers xavier:200,nano:200 -images 20 -timescale 0.1
//	distnode -providers xavier:200,nano:200,tx2:200 -window 4 -recover -kill 1@0.5
//	distnode -providers xavier:50,nano:50 -transport inproc -trace
//	distnode -providers xavier:200,nano:200 -tenants heavy:24x1,small:4x4 -policy wfq -slo 2000
//
// With -tenants, the deployment serves through the multi-tenant gateway
// instead of one pipelined stream: each tenant's backlog is enqueued up
// front, the -policy flag picks FIFO or weighted fair queueing, -window
// bounds the images in flight fleet-wide, and -slo (wall-clock ms) sets a
// per-request enqueue-to-completion deadline. The run prints a per-tenant
// outcome and latency summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"distredge"
	"distredge/internal/gateway"
	"distredge/internal/runtime"
	"distredge/internal/sim"
)

func main() {
	model := flag.String("model", "vgg16", "model: "+strings.Join(distredge.Models(), ", "))
	provSpec := flag.String("providers", "xavier:200,nano:200", "comma-separated type:bandwidthMbps list")
	images := flag.Int("images", 10, "images to stream")
	window := flag.Int("window", 1, "admission window: images kept in flight (1 = the paper's sequential protocol)")
	timescale := flag.Float64("timescale", 0.1, "compute emulation time scale (1.0 = full model latency)")
	bytescale := flag.Float64("bytescale", 0.01, "payload byte scale (1.0 = full activation sizes)")
	effort := flag.String("effort", "tiny", "planning effort: tiny|quick|full|paper")
	objectiveSpec := flag.String("objective", "latency", "planning objective: latency (sequential single-image), ips (sustained pipelined throughput) or slo (throughput under the -slo p95 bound)")
	objWindow := flag.Int("objwindow", 4, "admission window the ips/slo objectives optimise for")
	seed := flag.Int64("seed", 1, "random seed")
	recover := flag.Bool("recover", false, "survive provider deaths: quarantine, re-plan over survivors, re-scatter in-flight images")
	killSpec := flag.String("kill", "", "chaos injection: comma-separated dev@seconds provider kills (wall clock after the run starts), e.g. 1@0.5")
	heartbeat := flag.Duration("heartbeat", 0, "provider heartbeat period (0 = default 50ms, negative disables health tracking)")
	transportSpec := flag.String("transport", "tcp", "wire stack: tcp|tcp+gob|tcp+deflate|tcp+quant|tcp+quant16|tcp+quant+deflate|inproc")
	trace := flag.Bool("trace", false, "shape the transport with the planned WiFi traces (charge trace latency per payload byte)")
	postCodec := flag.Bool("postcodec", false, "with -trace: charge the bytes the codec puts on the wire instead of the raw payload (quant/deflate then shorten the shaped wire)")
	batch := flag.Int("batch", 1, "step-batching cap: up to this many queued same-step images share one compute invocation (1 = off, 0 = adaptive: drain whatever queued)")
	planCacheCap := flag.Int("plancache", 0, "plan through a plan cache bounding this many entries and re-plan recoveries from it (0 = off)")
	tenantsSpec := flag.String("tenants", "", "serve through the multi-tenant gateway: comma-separated name:IMAGESxWEIGHT tenants (overrides -images)")
	policy := flag.String("policy", "wfq", "with -tenants: admission policy across tenants (fifo|wfq)")
	sloMS := flag.Float64("slo", 0, "p95 latency bound in wall-clock ms: per-request gateway deadline with -tenants, and the bound -objective slo plans under (0 = none)")
	flag.Parse()

	providers, err := distredge.ParseProviders(*provSpec)
	if err != nil {
		fatal(err)
	}
	objective, err := distredge.ParseObjective(*objectiveSpec)
	if err != nil {
		fatal(err)
	}
	sys, err := distredge.New(*model, providers, distredge.WithSeed(*seed))
	if err != nil {
		fatal(err)
	}
	var tenants []sim.TenantSpec
	if *tenantsSpec != "" {
		tenants, err = distredge.ParseTenants(*tenantsSpec)
		if err != nil {
			fatal(err)
		}
	}
	planCfg := distredge.PlanConfig{
		Effort:          distredge.Effort(*effort),
		Objective:       objective,
		ObjectiveWindow: *objWindow,
		SLOP95MS:        *sloMS,
	}
	var planCache *distredge.PlanCache
	var plan *distredge.Plan
	if *planCacheCap > 0 {
		planCache = distredge.NewPlanCache(*planCacheCap)
		var outcome distredge.PlanOutcome
		plan, outcome, err = sys.PlanCached(planCfg, planCache)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("plan cache: %s\n", outcome)
	} else {
		plan, err = sys.Plan(planCfg)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Print(plan.Describe(*model))

	kills, err := parseKills(*killSpec)
	if err != nil {
		fatal(err)
	}

	tr, err := distredge.ParseTransport(*transportSpec)
	if err != nil {
		fatal(err)
	}
	rtObj, err := distredge.RuntimeObjective(distredge.PlanConfig{
		Objective:       objective,
		ObjectiveWindow: *objWindow,
		ObjectiveBatch:  *batch,
		SLOP95MS:        *sloMS,
	})
	if err != nil {
		fatal(err)
	}
	opts := runtime.Options{
		TimeScale:         *timescale,
		BytesScale:        *bytescale,
		Recover:           *recover,
		HeartbeatInterval: *heartbeat,
		Transport:         tr,
		Objective:         rtObj,
		Batch:             *batch,
	}
	if planCache != nil {
		opts.Replan, err = planCache.CachedReplan(planCfg, nil)
		if err != nil {
			fatal(err)
		}
	}
	if *trace {
		if *postCodec {
			opts.Transport = sys.ShapedTransportPostCodec(tr, opts)
		} else {
			opts.Transport = sys.ShapedTransport(tr, opts)
		}
	}
	cluster, err := sys.Deploy(plan, opts)
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("deployed %d providers over %s; requester at %s\n",
		cluster.NumProviders(), cluster.Transport().Name(), cluster.Addr())

	for _, k := range kills {
		if k.dev < 0 || k.dev >= cluster.NumProviders() {
			fatal(fmt.Errorf("-kill device %d out of range [0,%d)", k.dev, cluster.NumProviders()))
		}
		k := k
		timer := time.AfterFunc(k.after, func() {
			if err := cluster.KillProvider(k.dev); err != nil {
				fmt.Printf("chaos: kill provider %d failed: %v\n", k.dev, err)
				return
			}
			fmt.Printf("chaos: killed provider %d (t=%.2fs)\n", k.dev, k.after.Seconds())
		})
		defer timer.Stop()
	}

	if len(tenants) > 0 {
		if err := serveTenants(cluster, tenants, *policy, *window, *sloMS); err != nil {
			fatal(err)
		}
		return
	}

	stats, runErr := cluster.RunPipelined(*images, *window)
	fmt.Printf("streamed %d of %d images (window %d) in %.2fs — %.2f images/sec goodput\n",
		stats.Completed, stats.Images, stats.Window, stats.TotalSec, stats.IPS)
	if stats.Recoveries > 0 {
		fmt.Printf("recovered %d time(s): re-planned in %.1fms, requeued %d in-flight images, quarantined %v; %d of %d providers live\n",
			stats.Recoveries, stats.ReplanMS, stats.Requeued, stats.Quarantined,
			cluster.LiveProviders(), cluster.NumProviders())
	}
	for i, ms := range stats.PerImageMS {
		if ms > 0 {
			fmt.Printf("  image %2d: %7.1f ms\n", i+1, ms)
		} else {
			fmt.Printf("  image %2d:    lost\n", i+1)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

// serveTenants runs the multi-tenant gateway path: every tenant's backlog
// is enqueued up front (the burst model the sim mirror sweeps), results are
// drained, and the per-tenant summary printed.
func serveTenants(cluster *runtime.Cluster, tenants []sim.TenantSpec, policy string, window int, sloMS float64) error {
	cfgs := make([]gateway.TenantConfig, len(tenants))
	for i, t := range tenants {
		cfgs[i] = gateway.TenantConfig{
			Name:     t.Name,
			Weight:   t.Weight,
			Deadline: time.Duration(sloMS * float64(time.Millisecond)),
		}
	}
	g, err := gateway.New(cluster, gateway.Config{Window: window, Policy: policy}, cfgs)
	if err != nil {
		return err
	}
	start := time.Now()
	var results []<-chan gateway.Result
	for i, t := range tenants {
		for j := 0; j < t.Images; j++ {
			ch, err := g.Enqueue(t.Name)
			if err != nil {
				return fmt.Errorf("enqueue %s[%d]: %w", tenants[i].Name, j, err)
			}
			results = append(results, ch)
		}
	}
	served := 0
	for _, ch := range results {
		if r := <-ch; r.Err == nil {
			served++
		}
	}
	total := time.Since(start).Seconds()
	g.Close()
	ips := 0.0
	if total > 0 {
		ips = float64(served) / total
	}
	fmt.Printf("gateway served %d of %d requests (policy %s, window %d) in %.2fs — %.2f images/sec\n",
		served, len(results), policy, window, total, ips)
	fmt.Printf("%-10s %8s %9s %5s %7s %6s %9s %9s %9s\n",
		"tenant", "enqueued", "completed", "late", "expired", "failed", "lat(ms)", "p95(ms)", "max(ms)")
	for _, s := range g.Summary() {
		fmt.Printf("%-10s %8d %9d %5d %7d %6d %9.1f %9.1f %9.1f\n",
			s.Tenant, s.Enqueued, s.Completed, s.Late, s.Expired, s.Failed,
			s.MeanLatMS, s.P95LatMS, s.MaxLatMS)
	}
	return nil
}

type killAt struct {
	dev   int
	after time.Duration
}

func parseKills(spec string) ([]killAt, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []killAt
	for _, part := range strings.Split(spec, ",") {
		devSpec, atSpec, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("bad -kill %q (want dev@seconds)", part)
		}
		dev, err := strconv.Atoi(devSpec)
		if err != nil {
			return nil, fmt.Errorf("bad device in -kill %q: %v", part, err)
		}
		sec, err := strconv.ParseFloat(atSpec, 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in -kill %q: %v", part, err)
		}
		out = append(out, killAt{dev: dev, after: time.Duration(sec * float64(time.Second))})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distnode:", err)
	os.Exit(1)
}
