// Command distnode deploys a planned strategy over real TCP sockets on
// localhost — one listener per provider with receive/compute/send
// goroutines, exactly the runtime shape of the paper's testbed
// (Section V-A) — and streams images through it.
//
// Compute is emulated (sleep = device-model latency x -timescale) while the
// routing, framing, halo exchange and FC gathering are performed for real.
//
// Usage:
//
//	distnode -model vgg16 -providers xavier:200,nano:200 -images 20 -timescale 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distredge"
	"distredge/internal/runtime"
)

func main() {
	model := flag.String("model", "vgg16", "model: "+strings.Join(distredge.Models(), ", "))
	provSpec := flag.String("providers", "xavier:200,nano:200", "comma-separated type:bandwidthMbps list")
	images := flag.Int("images", 10, "images to stream")
	window := flag.Int("window", 1, "admission window: images kept in flight (1 = the paper's sequential protocol)")
	timescale := flag.Float64("timescale", 0.1, "compute emulation time scale (1.0 = full model latency)")
	bytescale := flag.Float64("bytescale", 0.01, "payload byte scale (1.0 = full activation sizes)")
	effort := flag.String("effort", "tiny", "planning effort: tiny|quick|full|paper")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	providers, err := distredge.ParseProviders(*provSpec)
	if err != nil {
		fatal(err)
	}
	sys, err := distredge.New(*model, providers, distredge.WithSeed(*seed))
	if err != nil {
		fatal(err)
	}
	plan, err := sys.Plan(distredge.PlanConfig{Effort: distredge.Effort(*effort)})
	if err != nil {
		fatal(err)
	}
	fmt.Print(plan.Describe(*model))

	cluster, err := sys.Deploy(plan, runtime.Options{TimeScale: *timescale, BytesScale: *bytescale})
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("deployed %d providers; requester at %s\n", cluster.NumProviders(), cluster.Addr())

	stats, err := cluster.RunPipelined(*images, *window)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("streamed %d images (window %d) in %.2fs — %.2f images/sec\n",
		stats.Images, stats.Window, stats.TotalSec, stats.IPS)
	for i, ms := range stats.PerImageMS {
		fmt.Printf("  image %2d: %7.1f ms\n", i+1, ms)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distnode:", err)
	os.Exit(1)
}
