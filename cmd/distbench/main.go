// Command distbench reproduces the paper's evaluation: one sub-report per
// table/figure (Fig. 4-15), printed as aligned text tables. The extra
// "fidelity" report cross-checks the simulator against the real runtime:
// it deploys the same plan over the -transport wire stack (shaped with the
// WiFi traces under -trace) and prints predicted vs measured IPS per
// admission window.
//
// Usage:
//
//	distbench -fig all -budget quick
//	distbench -fig 7 -budget full
//	distbench -fig fidelity -trace -windows 1,4
//
// Budgets: tiny (seconds), quick (default, ~minutes), full (tens of
// minutes), paper (the paper's Max_ep=4000 configuration; hours).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"distredge"
	"distredge/internal/device"
	"distredge/internal/experiments"
	"distredge/internal/network"
	"distredge/internal/plot"
	"distredge/internal/runtime"
	"distredge/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 4,5,6,7,8,9,10,11,12,13,14,15,16, 'churn', 'fidelity' or 'all'")
	budget := flag.String("budget", "quick", "planning budget: tiny|quick|full|paper")
	seed := flag.Int64("seed", 1, "random seed")
	reps := flag.Int("reps", 10, "LC-PSS repetitions for Fig. 6")
	parallel := flag.Int("parallel", 1, "workers for the case×method grids (results are identical for any value; -1 = one per CPU)")
	windows := flag.String("windows", "1,2,4,8", "admission-window sizes for the fig 16 and churn sweeps")
	fracs := flag.String("failfracs", "0.25,0.5,0.75", "failure times for the churn sweep, as fractions of the churn-free run")
	transportSpec := flag.String("transport", "inproc", "for -fig fidelity: runtime wire stack tcp|tcp+gob|tcp+deflate|inproc")
	trace := flag.Bool("trace", false, "for -fig fidelity: shape the transport with the WiFi traces")
	objectiveSpec := flag.String("objective", "", "for -fig fidelity: deploy a strategy planned with this objective (latency|ips) instead of the CoEdge baseline")
	objWindow := flag.Int("objwindow", 4, "admission window the ips objective optimises for (-fig objective and -objective ips)")
	flag.Parse()

	var b experiments.Budget
	switch *budget {
	case "tiny":
		b = experiments.Tiny()
	case "quick":
		b = experiments.Quick()
	case "full":
		b = experiments.Full()
	case "paper":
		b = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown budget %q\n", *budget)
		os.Exit(2)
	}
	b.Seed = *seed
	b.Parallel = *parallel

	winSizes, err := parseWindows(*windows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -windows %q: %v\n", *windows, err)
		os.Exit(2)
	}
	failFracs, err := parseFracs(*fracs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -failfracs %q: %v\n", *fracs, err)
		os.Exit(2)
	}

	figs := []string{"4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", "churn", "objective"}
	if *fig != "all" {
		figs = []string{*fig}
	}

	for _, f := range figs {
		start := time.Now()
		if err := run(f, b, *reps, winSizes, failFracs, *transportSpec, *trace, *objectiveSpec, *objWindow); err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", f, err)
			os.Exit(1)
		}
		fmt.Printf("(fig %s took %.1fs)\n\n", f, time.Since(start).Seconds())
	}
}

func parseFracs(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		if f <= 0 || f >= 1 {
			return nil, fmt.Errorf("fraction %g outside (0,1)", f)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fractions")
	}
	return out, nil
}

func parseWindows(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if w < 1 {
			return nil, fmt.Errorf("window %d < 1", w)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no window sizes")
	}
	return out, nil
}

func run(fig string, b experiments.Budget, reps int, windows []int, failFracs []float64, transportSpec string, trace bool, objectiveSpec string, objWindow int) error {
	if fig == "fidelity" {
		return fidelity(b, windows, transportSpec, trace, objectiveSpec, objWindow)
	}
	if fig == "objective" {
		header("Objective — latency-optimal vs throughput-optimal (IPS) planner")
		rows, err := experiments.FigObjective(b, windows, objWindow)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %-9s %7s %8s %8s %9s %9s\n",
			"case", "planner", "window", "IPS", "steady", "lat(ms)", "p95(ms)")
		lastSeries := ""
		for _, r := range rows {
			series := r.Case + "/" + r.Planner
			if series != lastSeries && lastSeries != "" {
				fmt.Println()
			}
			lastSeries = series
			fmt.Printf("%-24s %-9s %7d %8.2f %8.2f %9.1f %9.1f\n",
				r.Case, r.Planner, r.Window, r.IPS, r.SteadyIPS, r.MeanLatMS, r.P95LatMS)
		}
		return nil
	}
	if fig == "churn" {
		header("Churn — goodput & time-to-recover under a mid-stream device failure")
		rows, err := experiments.FigChurnRecovery(b, windows, failFracs)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %7s %6s %5s %9s %11s %11s %9s %9s\n",
			"case", "window", "fail@", "drop", "base IPS", "goodput on", "goodput off", "recov(s)", "requeued")
		lastCase := ""
		for _, r := range rows {
			if r.Case != lastCase && lastCase != "" {
				fmt.Println()
			}
			lastCase = r.Case
			fmt.Printf("%-24s %7d %5.0f%% %5d %9.2f %11.2f %11.2f %9.3f %9d\n",
				r.Case, r.Window, 100*r.FailFrac, r.DropDevice, r.BaseIPS,
				r.GoodputOn, r.GoodputOff, r.RecoverSec, r.Requeued)
		}
		return nil
	}
	n, err := strconv.Atoi(fig)
	if err != nil {
		return fmt.Errorf("unknown figure %q", fig)
	}
	switch n {
	case 4:
		header("Fig. 4 — stable WiFi throughput traces")
		printTraces(experiments.Fig04StableTraces(b.Seed))
		var series []plot.Series
		for _, bw := range []float64{300, 200, 100, 50} {
			tr := network.Stable(bw, 60, b.Seed+int64(bw))
			series = append(series, plot.Series{Name: fmt.Sprintf("%gMbps", bw), Values: tr.Mbps})
		}
		fmt.Print(plot.Lines(series, 64))
	case 5:
		header("Fig. 5 — IPS vs LC-PSS alpha (VGG-16)")
		rows, err := experiments.Fig05AlphaSweep(b, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %6s %8s %8s\n", "case", "alpha", "volumes", "IPS")
		for _, r := range rows {
			fmt.Printf("%-16s %6.2f %8d %8.2f\n", r.Case, r.Alpha, r.Volumes, r.IPS)
		}
	case 6:
		header("Fig. 6 — IPS spread vs |Rrs| (VGG-16)")
		rows, err := experiments.Fig06RrsSweep(b, reps)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %5s %5s %8s %8s %8s\n", "case", "Rrs", "reps", "min", "mean", "max")
		for _, r := range rows {
			fmt.Printf("%-14s %5d %5d %8.2f %8.2f %8.2f\n", r.Case, r.Rrs, r.Reps, r.MinIPS, r.MeanIPS, r.MaxIPS)
		}
	case 7:
		header("Fig. 7 — heterogeneous devices (Table I), VGG-16")
		rows, err := experiments.Fig07HeterogeneousDevices(b)
		if err != nil {
			return err
		}
		printMethodRows(rows)
	case 8:
		header("Fig. 8 — heterogeneous networks (Table II), VGG-16")
		rows, err := experiments.Fig08HeterogeneousNetworks(b)
		if err != nil {
			return err
		}
		printMethodRows(rows)
	case 9:
		header("Fig. 9 — large scale: 16 devices (Table III), VGG-16")
		rows, err := experiments.Fig09LargeScale(b)
		if err != nil {
			return err
		}
		printMethodRows(rows)
	case 10:
		header("Fig. 10 — other models, Group DB @ 50 Mbps")
		rows, err := experiments.Fig10ModelsDB(b)
		if err != nil {
			return err
		}
		printMethodRows(rows)
	case 11:
		header("Fig. 11 — other models, Group NA with Nano fleet")
		rows, err := experiments.Fig11ModelsNA(b)
		if err != nil {
			return err
		}
		printMethodRows(rows)
	case 12:
		header("Fig. 12 — highly dynamic throughput traces")
		printTraces(experiments.Fig12DynamicTraces(b.Seed))
		var series []plot.Series
		for i := 0; i < 4; i++ {
			tr := network.Dynamic(40, 100, 60, b.Seed+int64(i)*31)
			series = append(series, plot.Series{Name: fmt.Sprintf("device-%d", i+1), Values: tr.Mbps})
		}
		fmt.Print(plot.Lines(series, 64))
	case 13:
		header("Fig. 13 — per-image latency under dynamic networks (4x Nano)")
		rows, err := experiments.Fig13DynamicLatency(b)
		if err != nil {
			return err
		}
		fmt.Printf("%6s %12s %12s %12s\n", "minute", "CoEdge(ms)", "AOFL(ms)", "DistrEdge(ms)")
		for _, r := range rows {
			if r.MinuteSlot%5 == 0 {
				fmt.Printf("%6d %12.1f %12.1f %12.1f\n", r.MinuteSlot, r.CoEdgeMS, r.AOFLMS, r.DistrEdgeMS)
			}
		}
		s := experiments.Summarise(rows)
		fmt.Printf("means: CoEdge %.1fms  AOFL %.1fms  DistrEdge %.1fms  (DistrEdge/AOFL = %.0f%%)\n",
			s.MeanCoEdgeMS, s.MeanAOFLMS, s.MeanDistrEdgeMS, 100*s.DistrEdgeOverAOFL)
		co := make([]float64, len(rows))
		ao := make([]float64, len(rows))
		de := make([]float64, len(rows))
		for i, r := range rows {
			co[i], ao[i], de[i] = r.CoEdgeMS, r.AOFLMS, r.DistrEdgeMS
		}
		fmt.Print(plot.Lines([]plot.Series{
			{Name: "AOFL", Values: ao},
			{Name: "CoEdge", Values: co},
			{Name: "DistrEdge", Values: de},
		}, 60))
	case 14:
		header("Fig. 14 — computing latency vs output extent (10-layer volume)")
		for _, dt := range []device.Type{device.Xavier, device.TX2, device.Nano, device.Pi3} {
			rows := experiments.Fig14Nonlinear(dt)
			fmt.Printf("%-7s staircaseness=%.2f  lat(50)=%.1fms lat(150)=%.1fms lat(250)=%.1fms lat(350)=%.1fms\n",
				dt, experiments.Staircaseness(rows),
				rows[0].LatencyMS, rows[50].LatencyMS, rows[100].LatencyMS, rows[150].LatencyMS)
		}
		// The staircase itself, on the widest-wave device.
		xa := experiments.Fig14Nonlinear(device.Xavier)
		curve := make([]float64, len(xa))
		for i, r := range xa {
			curve[i] = r.LatencyMS
		}
		fmt.Printf("xavier  %s\n", plot.Sparkline(plot.Downsample(curve, 72)))
	case 15:
		header("Fig. 15 — max transmission & computing latency (DB, 50 Mbps)")
		rows, err := experiments.Fig15Breakdown(b)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %12s %12s\n", "method", "maxTrans(ms)", "maxComp(ms)")
		for _, r := range rows {
			fmt.Printf("%-14s %12.1f %12.1f\n", r.Method, r.MaxTransMS, r.MaxCompMS)
		}
	case 16:
		header("Fig. 16 — sustained IPS vs admission window (pipelined serving)")
		rows, err := experiments.Fig16WindowSweep(b, windows)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %-10s %7s %8s %8s %9s %9s %8s\n",
			"case", "method", "window", "IPS", "steady", "lat(ms)", "p95(ms)", "speedup")
		lastSeries := ""
		for _, r := range rows {
			series := r.Case + "/" + r.Method
			if series != lastSeries && lastSeries != "" {
				fmt.Println()
			}
			lastSeries = series
			fmt.Printf("%-24s %-10s %7d %8.2f %8.2f %9.1f %9.1f %7.2fx\n",
				r.Case, r.Method, r.Window, r.IPS, r.SteadyIPS, r.MeanLatMS, r.P95LatMS, r.SpeedupVsSeq)
		}
	default:
		return fmt.Errorf("unknown figure %d", n)
	}
	return nil
}

// fidelity cross-checks the simulator against the real runtime: a fixed
// plan is evaluated with sim.PipelineStream and deployed over the chosen
// transport, per admission window. The default plan is the CoEdge baseline
// (profile-guided, no training — planning noise would blur the
// comparison); -objective latency|ips swaps in a planned strategy so the
// objective planners themselves can be validated end-to-end. With -trace
// the transport charges the WiFi traces to every payload byte, so
// measured/predicted should approach 1; without it the wire is free and
// the runtime runs ahead of the prediction — the fidelity gap the shaped
// transport closes.
func fidelity(b experiments.Budget, windows []int, transportSpec string, trace bool, objectiveSpec string, objWindow int) error {
	mode := "free wire (localhost)"
	if trace {
		mode = "trace-shaped wire"
	}
	header(fmt.Sprintf("Fidelity — sim prediction vs runtime measurement, %s", mode))
	// Low-bandwidth links make the prediction transfer-dominated, which is
	// the term the transport choice actually controls; emulated-compute
	// overhead (a couple of ms per sleep at small time scales) then stays
	// in the noise.
	providers, err := distredge.ParseProviders("xavier:10,nano:10,tx2:10,nano:10")
	if err != nil {
		return err
	}
	sys, err := distredge.New("vgg16", providers, distredge.WithSeed(b.Seed))
	if err != nil {
		return err
	}
	var plan *distredge.Plan
	var rtObj sim.Objective
	if objectiveSpec == "" {
		plan, err = sys.Baseline("CoEdge")
	} else {
		var objective distredge.Objective
		objective, err = distredge.ParseObjective(objectiveSpec)
		if err != nil {
			return err
		}
		plan, err = sys.Plan(distredge.PlanConfig{
			Effort:          distredge.EffortTiny,
			Objective:       objective,
			ObjectiveWindow: objWindow,
		})
		if err == nil {
			rtObj, err = distredge.RuntimeObjective(objective, objWindow)
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("plan: %s\n", plan.Method)
	const timeScale, bytesScale = 0.1, 0.001
	const simImages, rtImages = 200, 16
	fmt.Printf("%-9s %9s %9s | %12s %12s | %9s\n",
		"window", "sim IPS", "lat(ms)", "runtime IPS", "lat(ms)", "meas/pred")
	for _, w := range windows {
		prep, err := sys.EvaluatePipelined(plan, simImages, w)
		if err != nil {
			return err
		}
		tr, err := distredge.ParseTransport(transportSpec)
		if err != nil {
			return err
		}
		opts := runtime.Options{
			TimeScale:         timeScale,
			BytesScale:        bytesScale,
			HeartbeatInterval: -1, // charged links must not starve liveness
			Transport:         tr,
			Objective:         rtObj,
		}
		if trace {
			opts.Transport = sys.ShapedTransport(tr, opts)
		}
		cluster, err := sys.Deploy(plan, opts)
		if err != nil {
			return err
		}
		stats, runErr := cluster.RunPipelined(rtImages, w)
		cluster.Close()
		if runErr != nil {
			return runErr
		}
		modelIPS := stats.IPS * timeScale
		modelLatMS := stats.MeanLatMS() / timeScale
		fmt.Printf("%-9d %9.2f %9.1f | %12.2f %12.1f | %9.2f\n",
			w, prep.IPS, prep.MeanLatMS, modelIPS, modelLatMS, modelIPS/prep.IPS)
	}
	fmt.Printf("(runtime numbers mapped to model scale: wall IPS x %g, wall latency / %g)\n", timeScale, timeScale)
	return nil
}

func header(s string) {
	fmt.Println(strings.Repeat("=", len(s)))
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", len(s)))
}

func printTraces(rows []experiments.TraceRow) {
	fmt.Printf("%-10s %10s %8s %8s %8s %6s\n", "trace", "mean Mbps", "min", "max", "std", "cv")
	for _, r := range rows {
		fmt.Printf("%-10s %10.1f %8.1f %8.1f %8.1f %6.3f\n",
			r.Name, r.MeanMbps, r.MinMbps, r.MaxMbps, r.StdMbps, r.CoefficientVariation)
	}
}

func printMethodRows(rows []experiments.MethodRow) {
	experiments.SortRows(rows)
	fmt.Printf("%-22s %-14s %7s %8s %10s %10s %5s\n",
		"case", "method", "IPS", "lat(ms)", "comp(ms)", "trans(ms)", "vols")
	lastCase := ""
	for _, r := range rows {
		if r.Case != lastCase && lastCase != "" {
			fmt.Println()
		}
		lastCase = r.Case
		fmt.Printf("%-22s %-14s %7.2f %8.1f %10.1f %10.1f %5d\n",
			r.Case, r.Method, r.IPS, r.MeanLatMS, r.MaxCompMS, r.MaxTransMS, r.Volumes)
	}
}
