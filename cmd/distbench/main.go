// Command distbench reproduces the paper's evaluation: one sub-report per
// table/figure (Fig. 4-15), printed as aligned text tables. The extra
// "fidelity" report cross-checks the simulator against the real runtime
// over a {batch} x {codec} x {wire regime} grid: each cell deploys the
// same plan with that step-batching cap over a TCP stack with that codec
// — on the free localhost wire and again trace-shaped with post-codec
// byte charging — and prints predicted vs measured IPS.
//
// Usage:
//
//	distbench -fig all -budget quick
//	distbench -fig 7 -budget full
//	distbench -fig fidelity -batches 1,4 -codecs binary,quant
//	distbench -fig fidelity -trace
//
// Budgets: tiny (seconds), quick (default, ~minutes), full (tens of
// minutes), paper (the paper's Max_ep=4000 configuration; hours).
package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"distredge"
	"distredge/internal/device"
	"distredge/internal/experiments"
	"distredge/internal/network"
	"distredge/internal/plot"
	"distredge/internal/runtime"
	"distredge/internal/sim"
	"distredge/internal/transport"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 4,5,6,7,8,9,10,11,12,13,14,15,16, 'churn', 'objective', 'gateway', 'planner', 'fidelity', 'hotpath' or 'all'")
	budget := flag.String("budget", "quick", "planning budget: tiny|quick|full|paper")
	seed := flag.Int64("seed", 1, "random seed")
	reps := flag.Int("reps", 10, "LC-PSS repetitions for Fig. 6")
	parallel := flag.Int("parallel", 1, "workers for the case×method grids (results are identical for any value; -1 = one per CPU)")
	windows := flag.String("windows", "1,2,4,8", "admission-window sizes for the fig 16 and churn sweeps")
	fracs := flag.String("failfracs", "0.25,0.5,0.75", "failure times for the churn sweep, as fractions of the churn-free run")
	batchesSpec := flag.String("batches", "1,4", "for -fig fidelity: step-batching caps of the grid")
	codecsSpec := flag.String("codecs", "binary,quant,quant+deflate", "for -fig fidelity: chunk codecs of the grid (binary|deflate|quant|quant16|quant+deflate)")
	trace := flag.Bool("trace", false, "for -fig fidelity: only the trace-shaped wire regime (skip the free-wire rows)")
	objectiveSpec := flag.String("objective", "", "for -fig fidelity: deploy a strategy planned with this objective (latency|ips|slo) instead of the CoEdge baseline")
	objWindow := flag.Int("objwindow", 4, "admission window the ips objective optimises for (-fig objective and -objective ips)")
	tenantsSpec := flag.String("tenants", "heavy:24x1,small:4x4", "for -fig gateway: tenant mix as name:IMAGESxWEIGHT,...")
	sloMS := flag.Float64("slo", 0, "p95 latency bound in ms: marks -fig gateway rows and bounds -objective slo plans (model-scale ms)")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention pprof profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a blocking pprof profile to this file on exit")
	flag.Parse()

	if *mutexProfile != "" {
		goruntime.SetMutexProfileFraction(1)
	}
	if *blockProfile != "" {
		goruntime.SetBlockProfileRate(1)
	}

	var b experiments.Budget
	switch *budget {
	case "tiny":
		b = experiments.Tiny()
	case "quick":
		b = experiments.Quick()
	case "full":
		b = experiments.Full()
	case "paper":
		b = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown budget %q\n", *budget)
		os.Exit(2)
	}
	b.Seed = *seed
	b.Parallel = *parallel

	winSizes, err := parseWindows(*windows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -windows %q: %v\n", *windows, err)
		os.Exit(2)
	}
	failFracs, err := parseFracs(*fracs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -failfracs %q: %v\n", *fracs, err)
		os.Exit(2)
	}
	batches, err := parseWindows(*batchesSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -batches %q: %v\n", *batchesSpec, err)
		os.Exit(2)
	}
	codecs, err := parseCodecs(*codecsSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -codecs %q: %v\n", *codecsSpec, err)
		os.Exit(2)
	}

	tenants, err := distredge.ParseTenants(*tenantsSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -tenants %q: %v\n", *tenantsSpec, err)
		os.Exit(2)
	}

	figs := []string{"4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", "churn", "objective", "gateway", "planner"}
	if *fig != "all" {
		figs = []string{*fig}
	}

	for _, f := range figs {
		start := time.Now()
		if err := run(f, b, *reps, winSizes, failFracs, batches, codecs, *trace, *objectiveSpec, *objWindow, tenants, *sloMS); err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", f, err)
			writeProfiles(*mutexProfile, *blockProfile)
			os.Exit(1)
		}
		fmt.Printf("(fig %s took %.1fs)\n\n", f, time.Since(start).Seconds())
	}
	writeProfiles(*mutexProfile, *blockProfile)
}

// writeProfiles dumps the mutex/block pprof profiles the -mutexprofile and
// -blockprofile flags armed — the contention evidence for the hot-path
// work (run e.g. `distbench -fig hotpath -mutexprofile mutex.pb.gz`, then
// `go tool pprof mutex.pb.gz`).
func writeProfiles(mutexPath, blockPath string) {
	write := func(name, path string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s profile: %v\n", name, err)
			return
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "%s profile: %v\n", name, err)
		}
	}
	write("mutex", mutexPath)
	write("block", blockPath)
}

func parseFracs(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		if f <= 0 || f >= 1 {
			return nil, fmt.Errorf("fraction %g outside (0,1)", f)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fractions")
	}
	return out, nil
}

func parseWindows(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if w < 1 {
			return nil, fmt.Errorf("window %d < 1", w)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no window sizes")
	}
	return out, nil
}

// parseCodecs validates the fidelity grid's codec axis: each name maps to
// a pooled TCP stack ("binary" to plain tcp, anything else to
// "tcp+"+name), so the set of legal names is exactly ParseTransport's.
func parseCodecs(spec string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, err := distredge.ParseTransport(codecTransportSpec(part)); err != nil {
			return nil, fmt.Errorf("codec %q: %v", part, err)
		}
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no codecs")
	}
	return out, nil
}

func codecTransportSpec(codec string) string {
	if codec == "binary" {
		return "tcp"
	}
	return "tcp+" + codec
}

func run(fig string, b experiments.Budget, reps int, windows []int, failFracs []float64, batches []int, codecs []string, trace bool, objectiveSpec string, objWindow int, tenants []sim.TenantSpec, sloMS float64) error {
	if fig == "fidelity" {
		return fidelity(b, batches, codecs, trace, objectiveSpec, objWindow, sloMS)
	}
	if fig == "planner" {
		return planner(b)
	}
	if fig == "hotpath" {
		return hotpath()
	}
	if fig == "gateway" {
		header("Gateway — multi-tenant admission: FIFO vs weighted fair queueing")
		rows, err := experiments.FigGateway(b, tenants, objWindow, sloMS)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %-6s %-8s %7s %7s %8s %9s %9s %5s\n",
			"case", "policy", "tenant", "weight", "images", "IPS", "lat(ms)", "p95(ms)", "slo")
		lastSeries := ""
		for _, r := range rows {
			series := r.Case + "/" + r.Policy
			if series != lastSeries && lastSeries != "" {
				fmt.Println()
			}
			lastSeries = series
			slo := "ok"
			if !r.SLOMet {
				slo = "MISS"
			}
			if sloMS <= 0 {
				slo = "-"
			}
			fmt.Printf("%-24s %-6s %-8s %7.1f %7d %8.2f %9.1f %9.1f %5s\n",
				r.Case, r.Policy, r.Tenant, r.Weight, r.Images, r.IPS, r.MeanLatMS, r.P95LatMS, slo)
		}
		return nil
	}
	if fig == "objective" {
		header("Objective — latency-optimal vs throughput-optimal (IPS) planner")
		rows, err := experiments.FigObjective(b, windows, objWindow)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %-9s %7s %8s %8s %9s %9s\n",
			"case", "planner", "window", "IPS", "steady", "lat(ms)", "p95(ms)")
		lastSeries := ""
		for _, r := range rows {
			series := r.Case + "/" + r.Planner
			if series != lastSeries && lastSeries != "" {
				fmt.Println()
			}
			lastSeries = series
			fmt.Printf("%-24s %-9s %7d %8.2f %8.2f %9.1f %9.1f\n",
				r.Case, r.Planner, r.Window, r.IPS, r.SteadyIPS, r.MeanLatMS, r.P95LatMS)
		}
		return nil
	}
	if fig == "churn" {
		header("Churn — goodput & time-to-recover under a mid-stream device failure")
		rows, err := experiments.FigChurnRecovery(b, windows, failFracs)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %7s %6s %5s %9s %11s %11s %9s %9s\n",
			"case", "window", "fail@", "drop", "base IPS", "goodput on", "goodput off", "recov(s)", "requeued")
		lastCase := ""
		for _, r := range rows {
			if r.Case != lastCase && lastCase != "" {
				fmt.Println()
			}
			lastCase = r.Case
			fmt.Printf("%-24s %7d %5.0f%% %5d %9.2f %11.2f %11.2f %9.3f %9d\n",
				r.Case, r.Window, 100*r.FailFrac, r.DropDevice, r.BaseIPS,
				r.GoodputOn, r.GoodputOff, r.RecoverSec, r.Requeued)
		}
		return nil
	}
	n, err := strconv.Atoi(fig)
	if err != nil {
		return fmt.Errorf("unknown figure %q", fig)
	}
	switch n {
	case 4:
		header("Fig. 4 — stable WiFi throughput traces")
		printTraces(experiments.Fig04StableTraces(b.Seed))
		var series []plot.Series
		for _, bw := range []float64{300, 200, 100, 50} {
			tr := network.Stable(bw, 60, b.Seed+int64(bw))
			series = append(series, plot.Series{Name: fmt.Sprintf("%gMbps", bw), Values: tr.Mbps})
		}
		fmt.Print(plot.Lines(series, 64))
	case 5:
		header("Fig. 5 — IPS vs LC-PSS alpha (VGG-16)")
		rows, err := experiments.Fig05AlphaSweep(b, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %6s %8s %8s\n", "case", "alpha", "volumes", "IPS")
		for _, r := range rows {
			fmt.Printf("%-16s %6.2f %8d %8.2f\n", r.Case, r.Alpha, r.Volumes, r.IPS)
		}
	case 6:
		header("Fig. 6 — IPS spread vs |Rrs| (VGG-16)")
		rows, err := experiments.Fig06RrsSweep(b, reps)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %5s %5s %8s %8s %8s\n", "case", "Rrs", "reps", "min", "mean", "max")
		for _, r := range rows {
			fmt.Printf("%-14s %5d %5d %8.2f %8.2f %8.2f\n", r.Case, r.Rrs, r.Reps, r.MinIPS, r.MeanIPS, r.MaxIPS)
		}
	case 7:
		header("Fig. 7 — heterogeneous devices (Table I), VGG-16")
		rows, err := experiments.Fig07HeterogeneousDevices(b)
		if err != nil {
			return err
		}
		printMethodRows(rows)
	case 8:
		header("Fig. 8 — heterogeneous networks (Table II), VGG-16")
		rows, err := experiments.Fig08HeterogeneousNetworks(b)
		if err != nil {
			return err
		}
		printMethodRows(rows)
	case 9:
		header("Fig. 9 — large scale: 16 devices (Table III), VGG-16")
		rows, err := experiments.Fig09LargeScale(b)
		if err != nil {
			return err
		}
		printMethodRows(rows)
	case 10:
		header("Fig. 10 — other models, Group DB @ 50 Mbps")
		rows, err := experiments.Fig10ModelsDB(b)
		if err != nil {
			return err
		}
		printMethodRows(rows)
	case 11:
		header("Fig. 11 — other models, Group NA with Nano fleet")
		rows, err := experiments.Fig11ModelsNA(b)
		if err != nil {
			return err
		}
		printMethodRows(rows)
	case 12:
		header("Fig. 12 — highly dynamic throughput traces")
		printTraces(experiments.Fig12DynamicTraces(b.Seed))
		var series []plot.Series
		for i := 0; i < 4; i++ {
			tr := network.Dynamic(40, 100, 60, b.Seed+int64(i)*31)
			series = append(series, plot.Series{Name: fmt.Sprintf("device-%d", i+1), Values: tr.Mbps})
		}
		fmt.Print(plot.Lines(series, 64))
	case 13:
		header("Fig. 13 — per-image latency under dynamic networks (4x Nano)")
		rows, err := experiments.Fig13DynamicLatency(b)
		if err != nil {
			return err
		}
		fmt.Printf("%6s %12s %12s %12s\n", "minute", "CoEdge(ms)", "AOFL(ms)", "DistrEdge(ms)")
		for _, r := range rows {
			if r.MinuteSlot%5 == 0 {
				fmt.Printf("%6d %12.1f %12.1f %12.1f\n", r.MinuteSlot, r.CoEdgeMS, r.AOFLMS, r.DistrEdgeMS)
			}
		}
		s := experiments.Summarise(rows)
		fmt.Printf("means: CoEdge %.1fms  AOFL %.1fms  DistrEdge %.1fms  (DistrEdge/AOFL = %.0f%%)\n",
			s.MeanCoEdgeMS, s.MeanAOFLMS, s.MeanDistrEdgeMS, 100*s.DistrEdgeOverAOFL)
		co := make([]float64, len(rows))
		ao := make([]float64, len(rows))
		de := make([]float64, len(rows))
		for i, r := range rows {
			co[i], ao[i], de[i] = r.CoEdgeMS, r.AOFLMS, r.DistrEdgeMS
		}
		fmt.Print(plot.Lines([]plot.Series{
			{Name: "AOFL", Values: ao},
			{Name: "CoEdge", Values: co},
			{Name: "DistrEdge", Values: de},
		}, 60))
	case 14:
		header("Fig. 14 — computing latency vs output extent (10-layer volume)")
		for _, dt := range []device.Type{device.Xavier, device.TX2, device.Nano, device.Pi3} {
			rows := experiments.Fig14Nonlinear(dt)
			fmt.Printf("%-7s staircaseness=%.2f  lat(50)=%.1fms lat(150)=%.1fms lat(250)=%.1fms lat(350)=%.1fms\n",
				dt, experiments.Staircaseness(rows),
				rows[0].LatencyMS, rows[50].LatencyMS, rows[100].LatencyMS, rows[150].LatencyMS)
		}
		// The staircase itself, on the widest-wave device.
		xa := experiments.Fig14Nonlinear(device.Xavier)
		curve := make([]float64, len(xa))
		for i, r := range xa {
			curve[i] = r.LatencyMS
		}
		fmt.Printf("xavier  %s\n", plot.Sparkline(plot.Downsample(curve, 72)))
	case 15:
		header("Fig. 15 — max transmission & computing latency (DB, 50 Mbps)")
		rows, err := experiments.Fig15Breakdown(b)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %12s %12s\n", "method", "maxTrans(ms)", "maxComp(ms)")
		for _, r := range rows {
			fmt.Printf("%-14s %12.1f %12.1f\n", r.Method, r.MaxTransMS, r.MaxCompMS)
		}
	case 16:
		header("Fig. 16 — sustained IPS vs admission window (pipelined serving)")
		rows, err := experiments.Fig16WindowSweep(b, windows)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %-10s %7s %8s %8s %9s %9s %8s\n",
			"case", "method", "window", "IPS", "steady", "lat(ms)", "p95(ms)", "speedup")
		lastSeries := ""
		for _, r := range rows {
			series := r.Case + "/" + r.Method
			if series != lastSeries && lastSeries != "" {
				fmt.Println()
			}
			lastSeries = series
			fmt.Printf("%-24s %-10s %7d %8.2f %8.2f %9.1f %9.1f %7.2fx\n",
				r.Case, r.Method, r.Window, r.IPS, r.SteadyIPS, r.MeanLatMS, r.P95LatMS, r.SpeedupVsSeq)
		}
	default:
		return fmt.Errorf("unknown figure %d", n)
	}
	return nil
}

// planner benchmarks the planner-as-a-service path: the same fleet corpus
// is planned cold (empty cache, full search), re-planned exact (every fleet
// a signature hit) and then neighbour fleets are planned warm (each search
// seeded from its nearest cached corpus plan, on half the episode budget).
// Each phase is wall-clocked into a plans/sec figure; the warm rows also
// carry a full-budget cold reference so the quality delta of warm-starting
// is visible (score/cold <= 1.00 means the half-budget warm search matched
// or beat the full cold one).
func planner(b experiments.Budget) error {
	header("Planner — plan-cache service: cold vs exact-hit vs warm-start plans/sec")
	sweep := experiments.NewPlannerSweep(b, 0)

	phase := func(name string, f func() ([]experiments.PlannerRow, error)) ([]experiments.PlannerRow, float64, error) {
		t0 := time.Now()
		rows, err := f()
		if err != nil {
			return nil, 0, fmt.Errorf("%s phase: %w", name, err)
		}
		return rows, time.Since(t0).Seconds(), nil
	}
	coldRows, coldSec, err := phase("cold", sweep.Cold)
	if err != nil {
		return err
	}
	exactRows, exactSec, err := phase("exact", sweep.Exact)
	if err != nil {
		return err
	}
	warmRows, warmSec, err := phase("warm", sweep.Warm)
	if err != nil {
		return err
	}
	if err := sweep.WarmReference(warmRows); err != nil {
		return err
	}

	fmt.Printf("%-6s %-24s %-8s %12s %12s %10s\n",
		"phase", "fleet", "outcome", "score(s/img)", "cold(s/img)", "score/cold")
	for _, rows := range [][]experiments.PlannerRow{coldRows, exactRows, warmRows} {
		for _, r := range rows {
			coldCol, ratioCol := "-", "-"
			if r.ColdScore > 0 {
				coldCol = fmt.Sprintf("%.4f", r.ColdScore)
				ratioCol = fmt.Sprintf("%.2f", r.Score/r.ColdScore)
			}
			fmt.Printf("%-6s %-24s %-8s %12.4f %12s %10s\n",
				r.Phase, r.Fleet, r.Outcome, r.Score, coldCol, ratioCol)
		}
		fmt.Println()
	}
	plansPerSec := func(n int, sec float64) float64 {
		if sec <= 0 {
			return 0
		}
		return float64(n) / sec
	}
	fmt.Printf("plans/sec: cold %.1f  exact-hit %.1f (%.0fx cold)  warm %.1f (%.1fx cold)\n",
		plansPerSec(len(coldRows), coldSec),
		plansPerSec(len(exactRows), exactSec), coldSec/exactSec,
		plansPerSec(len(warmRows), warmSec), coldSec/warmSec)
	st := sweep.Stats()
	fmt.Printf("cache: %d hit(s), %d miss(es), %d warm hit(s)\n", st.Hits, st.Misses, st.WarmHits)
	return nil
}

// hotpath measures the data plane's raw one-way messages/sec over a
// {chunk size} x {transport} x {senders} grid — the wire the providers'
// destSenders drive. Each cell starts a listener, dials one connection per
// sender, and pumps pooled payload chunks through a transport.Coalescer
// exactly like the runtime does: "tcp+sync" flushes per message (the
// pre-coalescing baseline), "tcp" uses the adaptive flush policy, and
// "inproc" has no socket at all (the Coalescer degenerates to plain Send)
// so it bounds what the wire could ever deliver. The senders axis models
// tenant fan-in: concurrent streams converging on one receiving endpoint.
// Combine with -mutexprofile/-blockprofile to see where the remaining
// contention lives.
func hotpath() error {
	header("Hot path — one-way messages/sec: {chunk size} x {transport} x {senders}")
	sizes := []int{512, 4 << 10, 64 << 10}
	specs := []string{"tcp+sync", "tcp", "inproc"}
	senderCounts := []int{1, 8}
	fmt.Printf("%-9s %-10s %8s %9s %10s %10s\n",
		"chunk", "transport", "senders", "msgs", "msg/s", "MB/s")
	baseline := make(map[string]float64) // chunk/senders -> tcp+sync msg/s
	for _, size := range sizes {
		for _, spec := range specs {
			for _, senders := range senderCounts {
				msgs := hotpathMsgs(size, senders)
				rate, err := hotpathCell(spec, size, senders, msgs)
				if err != nil {
					return fmt.Errorf("hotpath %s/%dB/%d senders: %w", spec, size, senders, err)
				}
				key := fmt.Sprintf("%d/%d", size, senders)
				note := ""
				switch spec {
				case "tcp+sync":
					baseline[key] = rate
				case "tcp":
					if base := baseline[key]; base > 0 {
						note = fmt.Sprintf("  (%.2fx sync)", rate/base)
					}
				}
				fmt.Printf("%-9s %-10s %8d %9d %10.0f %10.1f%s\n",
					chunkLabel(size), spec, senders, senders*msgs, rate,
					rate*float64(size)/1e6, note)
			}
		}
		fmt.Println()
	}
	return nil
}

func chunkLabel(size int) string {
	if size >= 1<<10 {
		return fmt.Sprintf("%dKiB", size>>10)
	}
	return fmt.Sprintf("%dB", size)
}

// hotpathMsgs scales the per-sender message count so every cell moves a
// comparable byte volume: enough traffic for a stable rate without the
// 64 KiB cells shipping gigabytes.
func hotpathMsgs(size, senders int) int {
	msgs := (32 << 20) / (size * senders)
	if msgs < 2000 {
		msgs = 2000
	}
	if msgs > 100000 {
		msgs = 100000
	}
	return msgs
}

// hotpathCell runs one grid cell and returns its delivered messages/sec:
// wall time from the first send to the last message drained on the
// receiving side.
func hotpathCell(spec string, size, senders, msgs int) (float64, error) {
	tr, err := distredge.ParseTransport(spec)
	if err != nil {
		return 0, err
	}
	pp, ok := tr.(transport.PayloadPool)
	if !ok {
		return 0, fmt.Errorf("transport %s has no payload pool", spec)
	}
	transport.SetBufferHint(tr, size)
	ln, err := tr.Listen(0)
	if err != nil {
		return 0, err
	}
	defer ln.Close()

	// One drain goroutine per accepted conn: count messages until the
	// sender's Close surfaces as a Recv error (the Conn contract delivers
	// everything already sent first).
	received := make([]int, senders)
	var drains sync.WaitGroup
	drains.Add(senders)
	go func() {
		for i := 0; i < senders; i++ {
			conn, err := ln.Accept()
			if err != nil {
				drains.Done()
				continue
			}
			go func(i int, conn transport.Conn) {
				defer drains.Done()
				for {
					m, err := conn.Recv()
					if err != nil {
						return
					}
					pp.PutPayload(m.Payload)
					received[i]++
				}
			}(i, conn)
		}
	}()

	errs := make([]error, senders)
	var sendersWG sync.WaitGroup
	start := time.Now()
	for s := 0; s < senders; s++ {
		sendersWG.Add(1)
		go func(s int) {
			defer sendersWG.Done()
			conn, err := tr.Dial(1+s, ln.Addr())
			if err != nil {
				errs[s] = err
				return
			}
			defer conn.Close()
			co := transport.NewCoalescer(conn)
			for i := 0; i < msgs; i++ {
				m := transport.Message{Image: uint32(i), Volume: 1, Lo: 0, Hi: int32(size)}
				m.Payload = pp.GetPayload(size)
				if err := co.Send(m, i+1 < msgs); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	sendersWG.Wait()
	drains.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	total := 0
	for _, n := range received {
		total += n
	}
	if total != senders*msgs {
		return 0, fmt.Errorf("delivered %d of %d messages", total, senders*msgs)
	}
	return float64(total) / elapsed, nil
}

// fidelity cross-checks the simulator against the real runtime over a
// {batch} x {codec} x {wire regime} grid: a fixed plan is evaluated with
// sim.PipelineStreamOpts (matching batch cap, matching codec wire
// fraction) and deployed with that runtime.Options.Batch over a pooled
// TCP stack carrying that codec. The default plan is the CoEdge baseline
// (profile-guided, no training — planning noise would blur the
// comparison); -objective latency|ips swaps in a planned strategy so the
// objective planners themselves can be validated end-to-end.
//
// In the free regime the wire is localhost and the runtime runs ahead of
// the trace-based prediction (the prediction uses raw bytes: the codec
// cannot change a wire that is not charged). In the trace-shaped regime
// the transport charges the WiFi traces with post-codec byte accounting,
// so quantizing codecs shorten the charged wire exactly as the
// simulator's wire fraction predicts and measured/predicted should
// approach 1. Each shaped cell runs the runtime first and predicts after:
// deflate's wire fraction is data-dependent (statically charged 1), so the
// prediction uses the compression ratio the cell's own codec measured —
// calibrated rows are marked "*".
func fidelity(b experiments.Budget, batches []int, codecs []string, traceOnly bool, objectiveSpec string, objWindow int, sloMS float64) error {
	header("Fidelity — sim prediction vs runtime measurement, {batch} x {codec} x {wire}")
	// Low-bandwidth links make the prediction transfer-dominated, which is
	// the term the transport choice actually controls; emulated-compute
	// overhead (a couple of ms per sleep at small time scales) then stays
	// in the noise.
	providers, err := distredge.ParseProviders("xavier:10,nano:10,tx2:10,nano:10")
	if err != nil {
		return err
	}
	sys, err := distredge.New("vgg16", providers, distredge.WithSeed(b.Seed))
	if err != nil {
		return err
	}
	var plan *distredge.Plan
	var objective distredge.Objective
	if objectiveSpec == "" {
		plan, err = sys.Baseline("CoEdge")
	} else {
		objective, err = distredge.ParseObjective(objectiveSpec)
		if err != nil {
			return err
		}
		plan, err = sys.Plan(distredge.PlanConfig{
			Effort:          distredge.EffortTiny,
			Objective:       objective,
			ObjectiveWindow: objWindow,
			SLOP95MS:        sloMS,
		})
	}
	if err != nil {
		return err
	}
	// One window for the whole grid, wide enough that every batch cap can
	// actually fill: batching coalesces queued images, so the window must
	// admit at least a batch's worth.
	window := 4
	for _, k := range batches {
		if k > window {
			window = k
		}
	}
	fmt.Printf("plan: %s  window: %d\n", plan.Method, window)
	const timeScale, bytesScale = 0.1, 0.001
	const simImages, rtImages = 200, 16
	regimes := []bool{false, true} // shaped?
	if traceOnly {
		regimes = []bool{true}
	}
	fmt.Printf("%-7s %6s %-14s %9s %9s | %12s %12s | %9s\n",
		"wire", "batch", "codec", "sim IPS", "lat(ms)", "runtime IPS", "lat(ms)", "meas/pred")
	for _, shaped := range regimes {
		regime := "free"
		if shaped {
			regime = "shaped"
		}
		for _, k := range batches {
			for _, codec := range codecs {
				tr, err := distredge.ParseTransport(codecTransportSpec(codec))
				if err != nil {
					return err
				}
				var rtObj sim.Objective
				if objectiveSpec != "" {
					rtObj, err = distredge.RuntimeObjective(distredge.PlanConfig{
						Objective:       objective,
						ObjectiveWindow: objWindow,
						ObjectiveBatch:  k,
						SLOP95MS:        sloMS,
					})
					if err != nil {
						return err
					}
				}
				opts := runtime.Options{
					TimeScale:         timeScale,
					BytesScale:        bytesScale,
					Batch:             k,
					HeartbeatInterval: -1, // charged links must not starve liveness
					Transport:         tr,
					Objective:         rtObj,
				}
				if shaped {
					opts.Transport = sys.ShapedTransportPostCodec(tr, opts)
				}
				cluster, err := sys.Deploy(plan, opts)
				if err != nil {
					return err
				}
				stats, runErr := cluster.RunPipelined(rtImages, window)
				cluster.Close()
				if runErr != nil {
					return runErr
				}
				// The prediction charges the codec's post-codec wire
				// fraction only when the runtime's wire does too — and the
				// runtime already ran, so a deflate codec can contribute
				// the compression ratio it measured on this very cell's
				// traffic instead of the static conservative 1.
				wireFrac := 1.0
				calibrated := false
				if shaped {
					if wc, ok := tr.(transport.WireCodec); ok {
						wireFrac, calibrated = transport.CalibratedWireFrac(wc.WireCodec())
					}
				}
				prep, err := sys.EvaluatePipelinedOpts(plan, simImages, window, k, wireFrac)
				if err != nil {
					return err
				}
				label := codec
				if calibrated && transport.WireFrac(mustWireCodec(tr)) != wireFrac {
					label += "*"
				}
				modelIPS := stats.IPS * timeScale
				modelLatMS := stats.MeanLatMS() / timeScale
				fmt.Printf("%-7s %6d %-14s %9.2f %9.1f | %12.2f %12.1f | %9.2f\n",
					regime, k, label, prep.IPS, prep.MeanLatMS, modelIPS, modelLatMS, modelIPS/prep.IPS)
			}
		}
		if !shaped {
			fmt.Println()
		}
	}
	fmt.Printf("(runtime numbers mapped to model scale: wall IPS x %g, wall latency / %g; * = wire fraction calibrated from the cell's measured deflate ratio)\n", timeScale, timeScale)
	return nil
}

// mustWireCodec returns the transport's wire codec (the fidelity grid only
// calls it on stacks that have one).
func mustWireCodec(tr transport.Transport) transport.Codec {
	if wc, ok := tr.(transport.WireCodec); ok {
		return wc.WireCodec()
	}
	return transport.Binary()
}

func header(s string) {
	fmt.Println(strings.Repeat("=", len(s)))
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", len(s)))
}

func printTraces(rows []experiments.TraceRow) {
	fmt.Printf("%-10s %10s %8s %8s %8s %6s\n", "trace", "mean Mbps", "min", "max", "std", "cv")
	for _, r := range rows {
		fmt.Printf("%-10s %10.1f %8.1f %8.1f %8.1f %6.3f\n",
			r.Name, r.MeanMbps, r.MinMbps, r.MaxMbps, r.StdMbps, r.CoefficientVariation)
	}
}

func printMethodRows(rows []experiments.MethodRow) {
	experiments.SortRows(rows)
	fmt.Printf("%-22s %-14s %7s %8s %10s %10s %5s\n",
		"case", "method", "IPS", "lat(ms)", "comp(ms)", "trans(ms)", "vols")
	lastCase := ""
	for _, r := range rows {
		if r.Case != lastCase && lastCase != "" {
			fmt.Println()
		}
		lastCase = r.Case
		fmt.Printf("%-22s %-14s %7.2f %8.1f %10.1f %10.1f %5d\n",
			r.Case, r.Method, r.IPS, r.MeanLatMS, r.MaxCompMS, r.MaxTransMS, r.Volumes)
	}
}
