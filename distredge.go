// Package distredge is the public API of this DistrEdge reproduction
// (Hou et al., "DistrEdge: Speeding up Convolutional Neural Network
// Inference on Distributed Edge Devices", IPDPS 2022).
//
// The typical flow mirrors the paper's deployment (Section IV): describe
// the service providers (device type + link bandwidth), pick a CNN from the
// model zoo, Plan a distribution strategy (LC-PSS horizontal partition +
// OSDS vertical split via DDPG), then Evaluate it on the simulator or
// Deploy it over real localhost TCP sockets.
//
//	sys, _ := distredge.New("vgg16", []distredge.Provider{
//		{Type: "xavier", BandwidthMbps: 200},
//		{Type: "xavier", BandwidthMbps: 200},
//		{Type: "nano", BandwidthMbps: 200},
//		{Type: "nano", BandwidthMbps: 200},
//	}, distredge.WithSeed(1))
//	plan, _ := sys.Plan(distredge.PlanConfig{Effort: distredge.EffortQuick})
//	report, _ := sys.Evaluate(plan, 500)
//	fmt.Printf("%.1f images/sec\n", report.IPS)
package distredge

import (
	"fmt"

	"distredge/internal/baselines"
	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/experiments"
	"distredge/internal/network"
	"distredge/internal/partition"
	"distredge/internal/plancache"
	"distredge/internal/runtime"
	"distredge/internal/sim"
	"distredge/internal/splitter"
	"distredge/internal/strategy"
)

// Provider describes one service provider: its hardware type and the
// nominal bandwidth of its WiFi link.
type Provider struct {
	Type          string  // "pi3", "nano", "tx2" or "xavier"
	BandwidthMbps float64 // nominal link bandwidth
}

// Effort selects a planning budget (see DESIGN.md): the paper's own
// configuration is EffortPaper; smaller efforts trade strategy quality for
// wall-clock.
type Effort string

// Planning efforts.
const (
	EffortTiny  Effort = "tiny"
	EffortQuick Effort = "quick"
	EffortFull  Effort = "full"
	EffortPaper Effort = "paper"
)

func (e Effort) budget() (experiments.Budget, error) {
	switch e {
	case EffortTiny:
		return experiments.Tiny(), nil
	case EffortQuick, "":
		return experiments.Quick(), nil
	case EffortFull:
		return experiments.Full(), nil
	case EffortPaper:
		return experiments.Paper(), nil
	default:
		return experiments.Budget{}, fmt.Errorf("distredge: unknown effort %q", e)
	}
}

// Objective selects what the planner optimises (see DESIGN.md "Planning
// objectives").
type Objective string

// Planning objectives.
const (
	// ObjectiveLatency optimises sequential single-image end-to-end
	// latency — the paper's Eq. 8 reward, and the default. Planning under
	// it is bit-identical to the pre-objective planner at fixed seeds.
	ObjectiveLatency Objective = "latency"
	// ObjectiveIPS optimises sustained pipelined throughput: steady-state
	// images/sec with PlanConfig.ObjectiveWindow images in flight.
	ObjectiveIPS Objective = "ips"
	// ObjectiveSLO optimises sustained pipelined throughput subject to a
	// p95 admission-to-completion latency bound (PlanConfig.SLOP95MS): the
	// serving gateway's planning goal. Plans whose predicted p95 violates
	// the bound are penalised past any feasible plan's score.
	ObjectiveSLO Objective = "slo"
)

// PlanConfig configures Plan.
type PlanConfig struct {
	// Alpha is the LC-PSS transmission/operations trade-off (paper default
	// 0.75 when zero).
	Alpha float64
	// Effort selects the planning budget (default EffortQuick).
	Effort Effort
	// Objective selects the planning objective (default ObjectiveLatency).
	Objective Objective
	// ObjectiveWindow is the admission window ObjectiveIPS optimises for
	// (default 4; ignored for ObjectiveLatency).
	ObjectiveWindow int
	// ObjectiveBatch is the step-batching cap ObjectiveIPS plans for
	// (default 1 = no batching; ignored for ObjectiveLatency). Set it to
	// the runtime.Options.Batch the plan will be served with, so the
	// planner optimises for the throughput the batched pipeline actually
	// delivers.
	ObjectiveBatch int
	// SLOP95MS is the p95 admission-to-completion latency bound in
	// milliseconds that ObjectiveSLO plans under. Required (positive) for
	// ObjectiveSLO; ignored otherwise.
	SLOP95MS float64
}

// simObjective resolves the config into the simulator's objective value
// (nil for the latency default, preserving the bit-identical default
// planning path).
func (c PlanConfig) simObjective() (sim.Objective, error) {
	switch c.Objective {
	case "", ObjectiveLatency:
		return nil, nil
	case ObjectiveIPS:
		return sim.ThroughputObjective{Window: c.ObjectiveWindow, Batch: c.ObjectiveBatch}, nil
	case ObjectiveSLO:
		if !(c.SLOP95MS > 0) {
			return nil, fmt.Errorf("distredge: objective %q needs a positive SLOP95MS bound, got %g", c.Objective, c.SLOP95MS)
		}
		return sim.SLOThroughputObjective{Window: c.ObjectiveWindow, Batch: c.ObjectiveBatch, P95Sec: c.SLOP95MS / 1e3}, nil
	default:
		return nil, fmt.Errorf("distredge: unknown objective %q (want latency|ips|slo)", c.Objective)
	}
}

// Option customises New.
type Option func(*System)

// WithSeed fixes the random seed for deterministic planning.
func WithSeed(seed int64) Option {
	return func(s *System) { s.seed = seed }
}

// WithDynamicNetwork replaces the stable traces with highly fluctuating
// 40-100 Mbps traces (the paper's Fig. 12 regime); provider bandwidths are
// then ignored.
func WithDynamicNetwork() Option {
	return func(s *System) { s.dynamic = true }
}

// System binds a model to a concrete set of providers.
type System struct {
	env     *sim.Env
	seed    int64
	dynamic bool
}

// Models lists the available CNN models (the paper's full evaluation zoo).
func Models() []string { return cnn.ZooNames() }

// New builds a system for the named zoo model and providers.
func New(model string, providers []Provider, opts ...Option) (*System, error) {
	m, ok := cnn.Zoo()[model]
	if !ok {
		return nil, fmt.Errorf("distredge: unknown model %q (have %v)", model, cnn.ZooNames())
	}
	if len(providers) < 1 {
		return nil, fmt.Errorf("distredge: need at least one provider")
	}
	s := &System{seed: 1}
	for _, o := range opts {
		o(s)
	}
	devs := make([]device.Profile, len(providers))
	bws := make([]float64, len(providers))
	for i, p := range providers {
		d, err := device.New(device.Type(p.Type), fmt.Sprintf("%s-%d", p.Type, i))
		if err != nil {
			return nil, err
		}
		devs[i] = d
		bws[i] = p.BandwidthMbps
		if bws[i] <= 0 {
			return nil, fmt.Errorf("distredge: provider %d has non-positive bandwidth", i)
		}
	}
	var net *network.Network
	if s.dynamic {
		net = &network.Network{Requester: network.DefaultLink(network.Stable(300, 60, s.seed+997))}
		for i := range providers {
			net.Providers = append(net.Providers, network.DefaultLink(network.Dynamic(40, 100, 60, s.seed+int64(i)*31)))
		}
	} else {
		net = network.NewStable(bws, 60, s.seed)
	}
	s.env = &sim.Env{Model: m, Devices: device.AsModels(devs), Net: net}
	return s, nil
}

// Plan holds a distribution strategy and where it came from.
type Plan struct {
	Method   string
	Strategy *strategy.Strategy
}

// Plan runs the DistrEdge pipeline (LC-PSS + OSDS) for the configured
// objective and returns the chosen strategy. The default latency objective
// reproduces the paper's planner exactly; ObjectiveIPS trains the splitter
// against steady-state pipelined throughput instead (and additionally
// searches stage-friendly volume boundaries — see
// experiments.PlanObjective).
func (s *System) Plan(cfg PlanConfig) (*Plan, error) {
	b, err := cfg.Effort.budget()
	if err != nil {
		return nil, err
	}
	b.Seed = s.seed
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 0.75
	}
	obj, err := cfg.simObjective()
	if err != nil {
		return nil, err
	}
	strat, err := experiments.PlanObjective(s.env, b, alpha, obj)
	if err != nil {
		return nil, err
	}
	method := experiments.MethodDistrEdge
	if obj != nil {
		method = experiments.MethodDistrEdge + "-" + obj.Name()
	}
	return &Plan{Method: method, Strategy: strat}, nil
}

// PlanCache is a bounded, concurrency-safe cache of planning results keyed
// by the canonical fleet signature (device set, network regime bucket,
// model, objective — see internal/plancache). Share one across PlanCached
// calls and deployments: a repeat request for a fleet the cache has seen
// returns in microseconds instead of re-running the OSDS search, and a
// near-miss fleet warm-starts its search from the nearest cached plan.
type PlanCache struct {
	c *plancache.Cache
}

// NewPlanCache builds a plan cache bounding at most `capacity` entries
// (LRU eviction); capacity <= 0 uses the default of 256.
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{c: plancache.New(capacity)}
}

// PlanCacheStats is a point-in-time snapshot of a cache's counters.
type PlanCacheStats struct {
	Entries   int    // plans currently cached
	Hits      uint64 // exact-signature hits (no search ran)
	Misses    uint64 // lookups that found nothing exact
	WarmHits  uint64 // misses that warm-started from a neighbour
	Evictions uint64 // entries dropped by the LRU bound
}

// Stats snapshots the cache counters.
func (pc *PlanCache) Stats() PlanCacheStats {
	s := pc.c.Stats()
	return PlanCacheStats{
		Entries:   pc.c.Len(),
		Hits:      s.Hits,
		Misses:    s.Misses,
		WarmHits:  s.WarmHits,
		Evictions: s.Evictions,
	}
}

// PlanOutcome reports how PlanCached served a request: "hit" (exact cached
// plan, no search), "warm" (search warm-started from the nearest cached
// neighbour) or "cold" (search from scratch).
type PlanOutcome string

// PlanCached outcomes.
const (
	PlanHit  PlanOutcome = PlanOutcome(plancache.OutcomeHit)
	PlanWarm PlanOutcome = PlanOutcome(plancache.OutcomeWarm)
	PlanCold PlanOutcome = PlanOutcome(plancache.OutcomeCold)
)

// PlanCached is Plan through the plan cache: an exact fleet-signature hit
// returns the cached strategy without searching, and a miss plans (warm-
// started when the cache holds a comparable neighbour) and caches the
// result for the next request. Concurrent PlanCached calls against the
// same cache are safe; identical fleets are deduplicated single-flight.
func (s *System) PlanCached(cfg PlanConfig, pc *PlanCache) (*Plan, PlanOutcome, error) {
	if pc == nil {
		p, err := s.Plan(cfg)
		return p, PlanCold, err
	}
	b, err := cfg.Effort.budget()
	if err != nil {
		return nil, "", err
	}
	b.Seed = s.seed
	obj, err := cfg.simObjective()
	if err != nil {
		return nil, "", err
	}
	svc, err := plancache.NewService(plancache.Config{
		Cache:   pc.c,
		Planner: experiments.Planner(b, cfg.Alpha),
	})
	if err != nil {
		return nil, "", err
	}
	res, err := svc.Plan(s.env, obj)
	if err != nil {
		return nil, "", err
	}
	method := experiments.MethodDistrEdge
	if obj != nil {
		method = experiments.MethodDistrEdge + "-" + obj.Name()
	}
	// The cache owns its copy; hand the caller an independent one.
	return &Plan{Method: method, Strategy: res.Strategy.Clone()}, PlanOutcome(res.Outcome), nil
}

// CachedReplan wraps the recovery re-planner a deployment uses
// (runtime.Options.Replan) with the plan cache: a recurring survivor-fleet
// shape re-plans from the cache in lookup time instead of re-running the
// search. inner nil falls back to the profile-guided balanced re-planner.
// cfg carries the objective the deployment serves, so cached re-plans are
// scored and keyed consistently with PlanCached.
func (pc *PlanCache) CachedReplan(cfg PlanConfig, inner sim.ReplanFunc) (sim.ReplanFunc, error) {
	obj, err := cfg.simObjective()
	if err != nil {
		return nil, err
	}
	if inner == nil {
		inner = splitter.ObjectiveReplan(obj)
	}
	return plancache.CachedReplan(pc.c, obj, inner), nil
}

// Baselines lists the seven comparison methods of the paper (Section V-B).
func Baselines() []string {
	out := make([]string, 0, 7)
	for _, m := range baselines.All() {
		out = append(out, string(m))
	}
	return out
}

// Baseline plans with one of the paper's comparison methods instead of
// DistrEdge.
func (s *System) Baseline(method string) (*Plan, error) {
	strat, err := baselines.Plan(baselines.Method(method), s.env)
	if err != nil {
		return nil, err
	}
	return &Plan{Method: method, Strategy: strat}, nil
}

// Report summarises an evaluation.
type Report struct {
	IPS        float64
	MeanLatMS  float64
	MaxCompMS  float64
	MaxTransMS float64
	Volumes    int
}

// Evaluate streams `images` images through the plan on the simulator
// (paper metric: averaged images-per-second, Section V-A).
func (s *System) Evaluate(p *Plan, images int) (Report, error) {
	res, err := s.env.Stream(p.Strategy, images, 0)
	if err != nil {
		return Report{}, err
	}
	return Report{
		IPS:        res.IPS,
		MeanLatMS:  res.MeanLatMS,
		MaxCompMS:  res.Breakdown.MaxComp() * 1e3,
		MaxTransMS: res.Breakdown.MaxTrans() * 1e3,
		Volumes:    p.Strategy.NumVolumes(),
	}, nil
}

// PipelineReport summarises a pipelined (multi-image in flight) evaluation.
type PipelineReport struct {
	Window    int
	IPS       float64
	SteadyIPS float64
	MeanLatMS float64
	P95LatMS  float64
}

// EvaluatePipelined streams `images` images through the plan keeping up to
// `window` of them in flight (sim.PipelineStream): devices and links are
// shared resources, so the report measures the sustained serving rate and
// the per-image latency under load. Window 1 reproduces Evaluate's
// sequential protocol exactly.
func (s *System) EvaluatePipelined(p *Plan, images, window int) (PipelineReport, error) {
	res, err := s.env.PipelineStream(p.Strategy, images, window, 0)
	if err != nil {
		return PipelineReport{}, err
	}
	return PipelineReport{
		Window:    res.Window,
		IPS:       res.IPS,
		SteadyIPS: res.SteadyIPS,
		MeanLatMS: res.MeanLatMS,
		P95LatMS:  res.P95LatMS,
	}, nil
}

// EvaluatePipelinedOpts is EvaluatePipelined with the pipelined
// simulator's performance knobs exposed: batch is the step-batching cap
// (up to `batch` queued same-step images share one compute invocation
// under the runtime's amortised cost model; 0 or 1 = no batching,
// bit-identical to EvaluatePipelined), and wireFrac scales every
// transferred byte (transport.WireFrac of a quantizing codec; 0 or 1 =
// raw bytes). It predicts what Deploy measures with the matching
// runtime.Options.Batch and wire stack.
func (s *System) EvaluatePipelinedOpts(p *Plan, images, window, batch int, wireFrac float64) (PipelineReport, error) {
	res, err := s.env.PipelineStreamOpts(p.Strategy, sim.PipelineConfig{
		Images: images, Window: window, Batch: batch, WireFrac: wireFrac,
	})
	if err != nil {
		return PipelineReport{}, err
	}
	return PipelineReport{
		Window:    res.Window,
		IPS:       res.IPS,
		SteadyIPS: res.SteadyIPS,
		MeanLatMS: res.MeanLatMS,
		P95LatMS:  res.P95LatMS,
	}, nil
}

// Score evaluates a plan under a planning objective on the simulator;
// lower is better. The unit is seconds: end-to-end latency of one image
// for ObjectiveLatency, steady-state seconds per image with `window`
// images in flight for ObjectiveIPS (window 0 = the objective's default
// of 4).
func (s *System) Score(p *Plan, objective Objective, window int) (float64, error) {
	obj, err := PlanConfig{Objective: objective, ObjectiveWindow: window}.simObjective()
	if err != nil {
		return 0, err
	}
	return sim.DefaultObjective(obj).Score(s.env, p.Strategy, 0)
}

// RuntimeObjective resolves a PlanConfig into the runtime.Options.Objective
// value, so a deployed cluster's recovery re-planner re-plans for the
// objective being served (nil for the latency default). Set
// cfg.ObjectiveBatch to the step-batching cap the cluster serves with (0
// or 1 = no batching), so a recovery re-plan keeps optimising for the
// batched pipeline, and cfg.SLOP95MS when serving under ObjectiveSLO.
func RuntimeObjective(cfg PlanConfig) (sim.Objective, error) {
	return cfg.simObjective()
}

// Deploy executes the plan on the real runtime with emulated compute (see
// internal/runtime). The wire stack is opts.Transport — localhost TCP with
// the binary chunk codec when nil; see ParseTransport for the named stacks
// and ShapedTransport for charging this system's WiFi traces to the wire.
// Close the returned cluster when done. Cluster.Run streams sequentially;
// Cluster.RunPipelined keeps an admission window of images in flight. With
// opts.Recover, a provider dying mid-run is quarantined and the strategy
// re-planned over the survivors instead of failing the run.
func (s *System) Deploy(p *Plan, opts runtime.Options) (*runtime.Cluster, error) {
	return runtime.Deploy(s.env, p.Strategy, opts)
}

// ChurnEvent is one scripted fleet change for EvaluateChurn: Kind is
// "drop", "join" or "slow" (Factor = compute-latency multiplier), Device a
// provider index, AtSec an absolute trace time.
type ChurnEvent struct {
	AtSec  float64
	Kind   string
	Device int
	Factor float64
}

func (e ChurnEvent) toSim() (sim.ChurnEvent, error) {
	out := sim.ChurnEvent{At: e.AtSec, Device: e.Device, Factor: e.Factor}
	switch e.Kind {
	case "drop":
		out.Kind = sim.DeviceDrop
	case "join":
		out.Kind = sim.DeviceJoin
	case "slow":
		out.Kind = sim.DeviceSlow
	default:
		return out, fmt.Errorf("distredge: unknown churn kind %q (want drop|join|slow)", e.Kind)
	}
	return out, nil
}

// ChurnReport summarises a streaming evaluation under scripted device
// churn. GoodputIPS counts only committed images; with recovery disabled a
// drop truncates the stream (Failed > 0, FailedAtSec set).
type ChurnReport struct {
	Window      int
	Completed   int
	Failed      int
	Recoveries  int
	Requeued    int
	GoodputIPS  float64
	MeanLatMS   float64
	P95LatMS    float64
	FailedAtSec float64   // -1 when the stream survived
	RecoverSec  []float64 // per applied event: time to the first completion after it
}

// EvaluateChurn streams `images` images through the plan on the simulator
// while the provider fleet churns according to the scripted events
// (sim.ChurnStream). With recover, each event re-plans the strategy over
// the surviving devices using the profile-guided re-planner and re-admits
// the in-flight images; without it a device drop truncates the stream —
// the runtime's sticky-failure semantics.
func (s *System) EvaluateChurn(p *Plan, images, window int, events []ChurnEvent, recover bool) (ChurnReport, error) {
	return s.EvaluateChurnReplan(p, images, window, events, recover, nil)
}

// EvaluateChurnReplan is EvaluateChurn with the recovery re-planner
// pluggable: nil uses the profile-guided balanced default. Pass a
// PlanCache.CachedReplan to model a fleet whose recurring churn patterns
// re-plan from the plan cache.
func (s *System) EvaluateChurnReplan(p *Plan, images, window int, events []ChurnEvent, recover bool, replan sim.ReplanFunc) (ChurnReport, error) {
	if replan == nil {
		replan = splitter.BalancedReplan
	}
	simEvents := make([]sim.ChurnEvent, len(events))
	for i, e := range events {
		ev, err := e.toSim()
		if err != nil {
			return ChurnReport{}, err
		}
		simEvents[i] = ev
	}
	res, err := s.env.ChurnStream(p.Strategy, images, window, 0, simEvents, sim.ChurnOptions{
		Recover:   recover,
		ReplanSec: experiments.ChurnReplanChargeSec,
		Replan:    replan,
	})
	if err != nil {
		return ChurnReport{}, err
	}
	return ChurnReport{
		Window:      res.Window,
		Completed:   res.Completed,
		Failed:      res.Failed,
		Recoveries:  res.Recoveries,
		Requeued:    res.Requeued,
		GoodputIPS:  res.IPS,
		MeanLatMS:   res.MeanLatMS,
		P95LatMS:    res.P95LatMS,
		FailedAtSec: res.FailedAtSec,
		RecoverSec:  append([]float64(nil), res.EventRecoverySec...),
	}, nil
}

// Describe renders the strategy in human-readable form.
func (p *Plan) Describe(modelName string) string {
	out := fmt.Sprintf("%s strategy for %s: %d layer-volume(s)\n", p.Method, modelName, p.Strategy.NumVolumes())
	for v := 0; v < p.Strategy.NumVolumes(); v++ {
		out += fmt.Sprintf("  volume %d: layers [%d,%d) cuts %v\n",
			v, p.Strategy.Boundaries[v], p.Strategy.Boundaries[v+1], p.Strategy.Splits[v])
	}
	return out
}

// SavePlan serialises a plan to versioned JSON (loadable with LoadPlan).
func (s *System) SavePlan(p *Plan) ([]byte, error) {
	return strategy.MarshalJSON(p.Strategy, s.env.Model.Name)
}

// LoadPlan parses a plan saved by SavePlan and validates it against this
// system's model and provider count.
func (s *System) LoadPlan(data []byte) (*Plan, error) {
	strat, err := strategy.UnmarshalJSON(data, s.env.Model, s.env.NumProviders())
	if err != nil {
		return nil, err
	}
	return &Plan{Method: "loaded", Strategy: strat}, nil
}

// DescribeModel returns the per-layer summary table of a zoo model.
func DescribeModel(model string) (string, error) {
	m, ok := cnn.Zoo()[model]
	if !ok {
		return "", fmt.Errorf("distredge: unknown model %q (have %v)", model, cnn.ZooNames())
	}
	return m.Summary(), nil
}

// Timeline renders a per-device Gantt chart of one image executing under
// the plan: scatter, halo transfers, per-volume compute, FC gather and the
// result's return.
func (s *System) Timeline(p *Plan) (string, error) {
	events, total, err := s.env.Timeline(p.Strategy, 0)
	if err != nil {
		return "", err
	}
	return sim.RenderTimeline(events, total, 72), nil
}

// PartitionOnly runs just LC-PSS (useful for inspecting partition schemes).
func (s *System) PartitionOnly(alpha float64, effort Effort) ([]int, error) {
	b, err := effort.budget()
	if err != nil {
		return nil, err
	}
	return partition.Search(s.env.Model, partition.Config{
		Alpha:           alpha,
		NumRandomSplits: b.RandomSplits,
		Providers:       s.env.NumProviders(),
		Seed:            s.seed,
	})
}

// Finetuner exposes online adaptation (Section V-F): keep the trained OSDS
// agent alive and refit when network conditions change.
type Finetuner struct {
	trainer *splitter.Trainer
	sys     *System
}

// NewFinetuner trains an agent once and returns a handle for later
// finetuning.
func (s *System) NewFinetuner(cfg PlanConfig) (*Finetuner, *Plan, error) {
	b, err := cfg.Effort.budget()
	if err != nil {
		return nil, nil, err
	}
	b.Seed = s.seed
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 0.75
	}
	boundaries, err := partition.Search(s.env.Model, partition.Config{
		Alpha:           alpha,
		NumRandomSplits: b.RandomSplits,
		Providers:       s.env.NumProviders(),
		Seed:            s.seed,
	})
	if err != nil {
		return nil, nil, err
	}
	tr, err := splitter.NewTrainer(s.env, boundaries, splitter.Config{
		Episodes: b.Episodes, Hidden: b.Hidden, Batch: b.Batch,
		Seed: s.seed, WarmStart: true,
	})
	if err != nil {
		return nil, nil, err
	}
	res := tr.Run()
	if res.Strategy == nil {
		return nil, nil, fmt.Errorf("distredge: training found no strategy")
	}
	return &Finetuner{trainer: tr, sys: s},
		&Plan{Method: experiments.MethodDistrEdge, Strategy: res.Strategy}, nil
}

// Finetune adapts the agent to the system's current environment for a few
// episodes and returns the refreshed plan.
func (f *Finetuner) Finetune(episodes int) (*Plan, error) {
	res := f.trainer.Finetune(f.sys.env, episodes)
	if res.Strategy == nil {
		return nil, fmt.Errorf("distredge: finetune found no strategy")
	}
	return &Plan{Method: experiments.MethodDistrEdge, Strategy: res.Strategy}, nil
}
