package distredge

import (
	"strings"
	"testing"
)

func TestParseProviders(t *testing.T) {
	got, err := ParseProviders(" xavier:200, nano:50.5 ,pi3:10")
	if err != nil {
		t.Fatal(err)
	}
	want := []Provider{
		{Type: "xavier", BandwidthMbps: 200},
		{Type: "nano", BandwidthMbps: 50.5},
		{Type: "pi3", BandwidthMbps: 10},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d providers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("provider %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseProvidersErrors(t *testing.T) {
	cases := []struct {
		name, spec, wantErr string
	}{
		{"empty", "", "empty provider spec"},
		{"blank", "   ", "empty provider spec"},
		{"missing bandwidth", "xavier", "want type:bandwidthMbps"},
		{"extra colon", "xavier:200:50", "want type:bandwidthMbps"},
		{"empty type", ":200", "empty device type"},
		{"bad number", "xavier:fast", "bad bandwidth"},
		{"zero bandwidth", "xavier:0", "must be a positive"},
		{"negative bandwidth", "xavier:-5", "must be a positive"},
		{"nan bandwidth", "xavier:NaN", "must be a positive"},
		{"absurd bandwidth", "xavier:1e300", "must be a positive"},
		{"bad middle element", "xavier:200,,nano:100", "want type:bandwidthMbps"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseProviders(c.spec); err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseProviders(%q) = %v, want error containing %q", c.spec, err, c.wantErr)
			}
		})
	}
}

func TestParseChurn(t *testing.T) {
	events, err := ParseChurn("drop:1@2.5, slow:2x3@4 ,join:1@8")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(events))
	}
	if e := events[0]; e.Kind != "drop" || e.Device != 1 || e.AtSec != 2.5 {
		t.Errorf("event 0 = %+v", e)
	}
	if e := events[1]; e.Kind != "slow" || e.Device != 2 || e.Factor != 3 || e.AtSec != 4 {
		t.Errorf("event 1 = %+v", e)
	}
	if e := events[2]; e.Kind != "join" || e.Device != 1 || e.AtSec != 8 {
		t.Errorf("event 2 = %+v", e)
	}
	// Empty spec means "no churn", not an error.
	if events, err := ParseChurn("  "); err != nil || events != nil {
		t.Errorf("blank spec = %v, %v; want nil, nil", events, err)
	}
}

func TestParseChurnErrors(t *testing.T) {
	cases := []struct {
		name, spec, wantErr string
	}{
		{"no kind", "1@2.5", "want kind:dev@t"},
		{"no time", "drop:1", "missing @time"},
		{"bad time", "drop:1@soon", "bad time"},
		{"negative time", "drop:1@-2", "negative time"},
		{"nan time", "drop:1@NaN", "negative time"},
		{"bad device", "drop:one@2", "bad device"},
		{"negative device", "drop:-1@2", "negative device"},
		{"slow without factor", "slow:2@4", "needs devxfactor"},
		{"bad factor", "slow:2xfast@4", "bad factor"},
		{"zero factor", "slow:2x0@4", "must be positive"},
		{"negative factor", "slow:2x-3@4", "must be positive"},
		{"duplicate event", "drop:1@2.5,drop:1@2.5", "duplicate churn event"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseChurn(c.spec); err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseChurn(%q) = %v, want error containing %q", c.spec, err, c.wantErr)
			}
		})
	}
	// The same (kind, device) at different times is legitimate churn.
	if _, err := ParseChurn("drop:1@2,join:1@4,drop:1@6"); err != nil {
		t.Errorf("repeated kind+device at different times must parse: %v", err)
	}
}

func TestParseTransport(t *testing.T) {
	for spec, wantName := range map[string]string{
		"":                  "tcp+binary",
		"tcp":               "tcp+binary",
		"tcp+sync":          "tcp+binary+sync",
		"tcp+gob":           "tcp+gob",
		"tcp+deflate":       "tcp+deflate",
		"tcp+quant":         "tcp+quant8",
		"tcp+quant16":       "tcp+quant16",
		"tcp+quant+deflate": "tcp+quant8+deflate",
		"inproc":            "inproc",
	} {
		tr, err := ParseTransport(spec)
		if err != nil {
			t.Errorf("ParseTransport(%q): %v", spec, err)
			continue
		}
		if tr.Name() != wantName {
			t.Errorf("ParseTransport(%q).Name() = %q, want %q", spec, tr.Name(), wantName)
		}
	}
	if _, err := ParseTransport("carrier-pigeon"); err == nil || !strings.Contains(err.Error(), "unknown transport") {
		t.Errorf("unknown transport = %v, want error", err)
	}
}

func TestParseObjective(t *testing.T) {
	for spec, want := range map[string]Objective{
		"":        ObjectiveLatency,
		"latency": ObjectiveLatency,
		" ips ":   ObjectiveIPS,
	} {
		got, err := ParseObjective(spec)
		if err != nil {
			t.Errorf("ParseObjective(%q): %v", spec, err)
			continue
		}
		if got != want {
			t.Errorf("ParseObjective(%q) = %q, want %q", spec, got, want)
		}
	}
	if _, err := ParseObjective("goodput"); err == nil || !strings.Contains(err.Error(), "unknown objective") {
		t.Errorf("unknown objective = %v, want error", err)
	}
}
