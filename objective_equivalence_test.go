package distredge

import (
	"fmt"
	"testing"
)

// The objective refactor's contract: with the default LatencyObjective,
// Plan and Evaluate at fixed seeds are bit-identical to the pre-refactor
// tree. The goldens below were captured from the tree at PR 4 (commit
// eeb640d) immediately before the Objective interface was threaded
// through the planner stack: exact strategies and %.17g-formatted metrics
// for three seeded configurations covering stable and dynamic traces and
// a fully-convolutional model. Any float-path change in the default
// planning pipeline shows up here as a golden mismatch — the same
// enforcement pattern as sim_equivalence_test.go, anchored to recorded
// values because the reference implementation is the history itself.
type goldenCase struct {
	name    string
	model   string
	provs   string
	seed    int64
	dynamic bool

	boundaries string
	splits     string
	evaluate   string // ips meanlat maxcomp maxtrans
	pipelined  string // ips steady meanlat p95 (window 4)
}

var goldenCases = []goldenCase{
	{
		name: "stable-db", model: "vgg16",
		provs: "xavier:200,xavier:200,nano:200,nano:200", seed: 1,
		boundaries: "[0 10 14 18]",
		splits:     "[[14 28 28] [7 14 14] [4 7 7]]",
		evaluate:   "ips=13.647642655961437 meanlat=73.272727401254841 maxcomp=46.854103439999996 maxtrans=24.483853308091891",
		pipelined:  "ips=17.401059148242258 steady=17.514274998091398 meanlat=223.0224091372894 p95=228.89267992468373",
	},
	{
		name: "dynamic-nano", model: "vgg16",
		provs: "nano:100,nano:100,tx2:100,nano:100", seed: 3, dynamic: true,
		boundaries: "[0 9 10 14 18]",
		splits:     "[[12 18 45] [7 13 21] [3 5 11] [2 3 6]]",
		evaluate:   "ips=5.0716556268183162 meanlat=197.17427080658197 maxcomp=96.043911418181807 maxtrans=82.839599490673351",
		pipelined:  "ips=6.1236911473050606 steady=6.151029858860948 meanlat=633.92764235790867 p95=670.37888987032784",
	},
	{
		name: "stable-yolo", model: "yolov2",
		provs: "nano:100,nano:100,nano:100,nano:100", seed: 2,
		boundaries: "[0 8 10 12 14 16 18 20 22 26]",
		splits:     "[[13 26 39] [13 26 39] [7 13 20] [7 13 20] [7 13 20] [3 7 10] [3 7 10] [3 7 10] [4 7 10]]",
		evaluate:   "ips=5.2308071398892153 meanlat=191.17508507896915 maxcomp=116.46855509545455 maxtrans=97.901719953685486",
		pipelined:  "ips=6.4541140879843892 steady=6.4875386116678921 meanlat=601.23659168895426 p95=618.61718719679368",
	},
}

func runGoldenCase(t *testing.T, c goldenCase, cfg PlanConfig) {
	t.Helper()
	provs, err := ParseProviders(c.provs)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithSeed(c.seed)}
	if c.dynamic {
		opts = append(opts, WithDynamicNetwork())
	}
	sys, err := New(c.model, provs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Effort = EffortTiny
	plan, err := sys.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%v", plan.Strategy.Boundaries); got != c.boundaries {
		t.Errorf("boundaries %s != golden %s", got, c.boundaries)
	}
	if got := fmt.Sprintf("%v", plan.Strategy.Splits); got != c.splits {
		t.Errorf("splits %s != golden %s", got, c.splits)
	}
	rep, err := sys.Evaluate(plan, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("ips=%.17g meanlat=%.17g maxcomp=%.17g maxtrans=%.17g",
		rep.IPS, rep.MeanLatMS, rep.MaxCompMS, rep.MaxTransMS); got != c.evaluate {
		t.Errorf("Evaluate drifted from the pre-refactor tree:\n got  %s\n want %s", got, c.evaluate)
	}
	prep, err := sys.EvaluatePipelined(plan, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("ips=%.17g steady=%.17g meanlat=%.17g p95=%.17g",
		prep.IPS, prep.SteadyIPS, prep.MeanLatMS, prep.P95LatMS); got != c.pipelined {
		t.Errorf("EvaluatePipelined drifted from the pre-refactor tree:\n got  %s\n want %s", got, c.pipelined)
	}
}

// TestPlanEvaluateGoldenEquivalence pins the implicit default (no
// objective set) to the pre-refactor goldens.
func TestPlanEvaluateGoldenEquivalence(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) { runGoldenCase(t, c, PlanConfig{}) })
	}
}

// TestExplicitLatencyObjectiveMatchesGoldens pins that naming the latency
// objective explicitly takes the identical planning path — the objective
// plumbing must be invisible for the default.
func TestExplicitLatencyObjectiveMatchesGoldens(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			runGoldenCase(t, c, PlanConfig{Objective: ObjectiveLatency, ObjectiveWindow: 4})
		})
	}
}
