// Profiling: the paper's actual deployment workflow (Section IV). A
// controller never sees the hardware directly — it measures per-layer
// latency curves (the TensorRT Profiler role), fits one of the allowed
// profile forms (measured table, linear regression, piecewise-linear,
// k-NN), plans against that view, and only then deploys to the real
// devices. This example quantifies how much strategy quality each profile
// form preserves — the linear form embodies exactly the assumption the
// paper attacks, and it shows.
package main

import (
	"fmt"
	"log"

	"distredge/internal/cnn"
	"distredge/internal/experiments"
)

func main() {
	// Group DB at 50 Mbps — the paper's canonical heterogeneous case.
	spec := experiments.DeviceGroups()[1].Spec(cnn.VGG16(), 50, 1)
	env := spec.Env()
	budget := experiments.Quick()

	fmt.Println("planning VGG-16 on Group DB (Xavier x2 + Nano x2, 50 Mbps)")
	fmt.Printf("%-10s %14s %14s %8s\n", "profile", "planned IPS", "executed IPS", "gap")
	for _, form := range experiments.ProfileForms() {
		res, err := experiments.PlanOnProfiles(env, budget, form)
		if err != nil {
			log.Fatal(err)
		}
		gap := (res.PlannedIPS - res.ExecutedIPS) / res.ExecutedIPS * 100
		fmt.Printf("%-10s %14.2f %14.2f %+7.1f%%\n", form, res.PlannedIPS, res.ExecutedIPS, gap)
	}

	fmt.Println("\nThe table/piecewise/k-NN forms track the devices' staircase")
	fmt.Println("latency, so planned and executed IPS agree closely. The linear")
	fmt.Println("regression form is the assumption CoEdge/MoDNN/MeDNN/AOFL bake")
	fmt.Println("in; OSDS's measured best-strategy tracking partly rescues it,")
	fmt.Println("but the baselines' proportional split rules have no such safety")
	fmt.Println("net — which is why they misallocate on nonlinear devices.")
}
