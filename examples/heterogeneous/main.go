// Heterogeneous fleets: the paper's motivating scenario — a mix of strong
// and weak devices (Table I, Groups DA/DB/DC) — where linear-model and
// equal-split baselines misallocate work. This example sweeps the three
// groups at two bandwidths and prints the full method comparison (the
// content of Fig. 7), including the Group-DC effect where the Raspberry Pi3
// is left (almost) idle by capability-aware methods.
package main

import (
	"fmt"
	"log"

	"distredge"
)

var groups = map[string][]distredge.Provider{
	"DA (TX2 x2 + Nano x2)": {
		{Type: "tx2"}, {Type: "tx2"}, {Type: "nano"}, {Type: "nano"},
	},
	"DB (Xavier x2 + Nano x2)": {
		{Type: "xavier"}, {Type: "xavier"}, {Type: "nano"}, {Type: "nano"},
	},
	"DC (Xavier+TX2+Nano+Pi3)": {
		{Type: "xavier"}, {Type: "tx2"}, {Type: "nano"}, {Type: "pi3"},
	},
}

func main() {
	order := []string{"DA (TX2 x2 + Nano x2)", "DB (Xavier x2 + Nano x2)", "DC (Xavier+TX2+Nano+Pi3)"}
	for _, bw := range []float64{50, 300} {
		for _, name := range order {
			providers := make([]distredge.Provider, len(groups[name]))
			copy(providers, groups[name])
			for i := range providers {
				providers[i].BandwidthMbps = bw
			}
			sys, err := distredge.New("vgg16", providers, distredge.WithSeed(1))
			if err != nil {
				log.Fatal(err)
			}

			fmt.Printf("== %s @ %g Mbps\n", name, bw)
			plan, err := sys.Plan(distredge.PlanConfig{Effort: distredge.EffortQuick})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := sys.Evaluate(plan, 300)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-14s %6.2f IPS  (%d volumes)\n", "DistrEdge", rep.IPS, rep.Volumes)

			for _, m := range distredge.Baselines() {
				bp, err := sys.Baseline(m)
				if err != nil {
					log.Fatal(err)
				}
				r, err := sys.Evaluate(bp, 300)
				if err != nil {
					log.Fatal(err)
				}
				marker := ""
				if r.IPS < 1 {
					marker = "   <1 (equal-split starves on Pi3, as in the paper's Fig. 7)"
				}
				fmt.Printf("  %-14s %6.2f IPS%s\n", m, r.IPS, marker)
			}
			fmt.Println()
		}
	}
}
