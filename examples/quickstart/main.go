// Quickstart: plan a DistrEdge strategy for VGG-16 on four heterogeneous
// edge devices, evaluate it against the strongest baseline, and print the
// result — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"distredge"
)

func main() {
	// A living room's worth of idle edge hardware: two Jetson Xaviers and
	// two Jetson Nanos, all on the same 200 Mbps WiFi (the paper's
	// Group-DB shape, Table I).
	sys, err := distredge.New("vgg16", []distredge.Provider{
		{Type: "xavier", BandwidthMbps: 200},
		{Type: "xavier", BandwidthMbps: 200},
		{Type: "nano", BandwidthMbps: 200},
		{Type: "nano", BandwidthMbps: 200},
	}, distredge.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	// Plan with the DistrEdge pipeline: LC-PSS picks the layer-volumes,
	// OSDS (DDPG) picks the per-volume split across the devices.
	plan, err := sys.Plan(distredge.PlanConfig{Effort: distredge.EffortQuick})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Describe("vgg16"))

	report, err := sys.Evaluate(plan, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDistrEdge:  %6.2f images/sec (mean latency %.1f ms)\n", report.IPS, report.MeanLatMS)

	// Compare against the strongest of the paper's seven baselines.
	bestName, bestIPS := "", 0.0
	for _, name := range distredge.Baselines() {
		bp, err := sys.Baseline(name)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sys.Evaluate(bp, 500)
		if err != nil {
			log.Fatal(err)
		}
		if r.IPS > bestIPS {
			bestName, bestIPS = name, r.IPS
		}
	}
	fmt.Printf("best baseline (%s): %6.2f images/sec\n", bestName, bestIPS)
	fmt.Printf("speedup: %.2fx\n", report.IPS/bestIPS)
}
