// Distributed execution: plan a strategy and actually run it over TCP on
// localhost. Each provider is a real listener with the paper's three-thread
// structure (receive / compute / send goroutines sharing queues,
// Section V-A); the requester scatters input rows, providers exchange halo
// rows between layer-volumes, the FC owner gathers the final feature map,
// and results stream back — one image in flight at a time, exactly the
// paper's measurement protocol.
//
// Compute is emulated by sleeping for the device model's latency (scaled
// down 20x here so the demo finishes quickly); the protocol is fully real.
package main

import (
	"fmt"
	"log"

	"distredge"
	"distredge/internal/runtime"
)

func main() {
	sys, err := distredge.New("vgg16", []distredge.Provider{
		{Type: "xavier", BandwidthMbps: 200},
		{Type: "tx2", BandwidthMbps: 200},
		{Type: "nano", BandwidthMbps: 200},
	}, distredge.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	plan, err := sys.Plan(distredge.PlanConfig{Effort: distredge.EffortTiny})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Describe("vgg16"))

	cluster, err := sys.Deploy(plan, runtime.Options{
		TimeScale:  0.05, // sleep 1/20th of the modelled latency
		BytesScale: 0.01, // ship 1% of the real activation bytes
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("\ndeployed %d TCP providers; requester listening at %s\n\n",
		cluster.NumProviders(), cluster.Addr())

	stats, err := cluster.Run(10)
	if err != nil {
		log.Fatal(err)
	}
	for i, ms := range stats.PerImageMS {
		fmt.Printf("image %2d: %7.1f ms\n", i+1, ms)
	}
	fmt.Printf("\n%d images in %.2fs — %.1f images/sec over real sockets\n",
		stats.Images, stats.TotalSec, stats.IPS)
}
