// Dynamic networks: the paper's Section V-F scenario. Four Nanos sit on
// highly fluctuating 40-100 Mbps links (Fig. 12). DistrEdge keeps its actor
// network online: when throughput shifts, the agent is finetuned for a few
// seconds instead of re-planning from scratch (AOFL's brute-force re-plan
// takes ~10 minutes on the paper's controller). This example trains once,
// then simulates two network shifts and finetunes after each.
package main

import (
	"fmt"
	"log"

	"distredge"
)

func main() {
	sys, err := distredge.New("vgg16", []distredge.Provider{
		{Type: "nano", BandwidthMbps: 100},
		{Type: "nano", BandwidthMbps: 100},
		{Type: "nano", BandwidthMbps: 100},
		{Type: "nano", BandwidthMbps: 100},
	}, distredge.WithSeed(1), distredge.WithDynamicNetwork())
	if err != nil {
		log.Fatal(err)
	}

	// Initial training: the trainer handle stays alive for finetuning.
	ft, plan, err := sys.NewFinetuner(distredge.PlanConfig{Effort: distredge.EffortQuick})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Evaluate(plan, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t= 0min  initial plan: %6.2f IPS (mean %.1f ms)\n", rep.IPS, rep.MeanLatMS)

	// The traces keep drifting; at each "shift" we finetune the live agent
	// for a handful of episodes — the paper reports 20-210 s for this,
	// versus 10 min for AOFL's full re-plan.
	for shift := 1; shift <= 2; shift++ {
		newPlan, err := ft.Finetune(30)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sys.Evaluate(newPlan, 200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%2dmin  finetuned plan: %6.2f IPS (mean %.1f ms)\n", shift*20, r.IPS, r.MeanLatMS)
	}

	// Compare with the static baselines that never adapt.
	for _, m := range []string{"CoEdge", "AOFL"} {
		bp, err := sys.Baseline(m)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sys.Evaluate(bp, 200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s static plan: %6.2f IPS (mean %.1f ms)\n", m, r.IPS, r.MeanLatMS)
	}
}
