package distredge

import (
	"strings"
	"testing"

	"distredge/internal/runtime"
)

func fourProviders() []Provider {
	return []Provider{
		{Type: "xavier", BandwidthMbps: 200},
		{Type: "xavier", BandwidthMbps: 200},
		{Type: "nano", BandwidthMbps: 200},
		{Type: "nano", BandwidthMbps: 200},
	}
}

func TestModelsAndBaselines(t *testing.T) {
	if len(Models()) != 8 {
		t.Errorf("Models = %v", Models())
	}
	if len(Baselines()) != 7 {
		t.Errorf("Baselines = %v", Baselines())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("nope", fourProviders()); err == nil {
		t.Error("unknown model must error")
	}
	if _, err := New("vgg16", nil); err == nil {
		t.Error("empty providers must error")
	}
	if _, err := New("vgg16", []Provider{{Type: "abacus", BandwidthMbps: 10}}); err == nil {
		t.Error("unknown device type must error")
	}
	if _, err := New("vgg16", []Provider{{Type: "nano", BandwidthMbps: 0}}); err == nil {
		t.Error("zero bandwidth must error")
	}
}

func TestPlanEvaluateRoundTrip(t *testing.T) {
	sys, err := New("vgg16", fourProviders(), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Plan(PlanConfig{Effort: EffortTiny})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Evaluate(plan, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IPS <= 0 || rep.Volumes < 1 {
		t.Fatalf("bad report %+v", rep)
	}
	desc := plan.Describe("vgg16")
	if !strings.Contains(desc, "DistrEdge") || !strings.Contains(desc, "volume 0") {
		t.Errorf("Describe output unexpected: %s", desc)
	}
}

func TestPlanBeatsWorstBaseline(t *testing.T) {
	sys, err := New("vgg16", fourProviders(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Plan(PlanConfig{Effort: EffortTiny})
	if err != nil {
		t.Fatal(err)
	}
	de, err := sys.Evaluate(plan, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Baselines() {
		bp, err := sys.Baseline(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Evaluate(bp, 50)
		if err != nil {
			t.Fatal(err)
		}
		if de.IPS < rep.IPS*0.95 {
			t.Errorf("DistrEdge %.2f IPS below baseline %s %.2f IPS", de.IPS, name, rep.IPS)
		}
	}
}

func TestBaselineUnknown(t *testing.T) {
	sys, _ := New("vgg16", fourProviders())
	if _, err := sys.Baseline("Magic"); err == nil {
		t.Error("unknown baseline must error")
	}
}

func TestEffortValidation(t *testing.T) {
	sys, _ := New("vgg16", fourProviders())
	if _, err := sys.Plan(PlanConfig{Effort: Effort("weird")}); err == nil {
		t.Error("unknown effort must error")
	}
}

func TestPartitionOnly(t *testing.T) {
	sys, _ := New("vgg16", fourProviders(), WithSeed(2))
	b, err := sys.PartitionOnly(0.75, EffortTiny)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 || len(b) < 2 {
		t.Errorf("bad boundaries %v", b)
	}
}

func TestDeployOverTCP(t *testing.T) {
	sys, err := New("vgg16", fourProviders(), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Baseline("DeeperThings")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := sys.Deploy(plan, runtime.Options{TimeScale: 0.002, BytesScale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	stats, err := cluster.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IPS <= 0 {
		t.Fatal("deployed run produced no throughput")
	}
}

func TestFinetunerAdaptsToDynamicNetwork(t *testing.T) {
	sys, err := New("vgg16", []Provider{
		{Type: "nano", BandwidthMbps: 100},
		{Type: "nano", BandwidthMbps: 100},
		{Type: "nano", BandwidthMbps: 100},
		{Type: "nano", BandwidthMbps: 100},
	}, WithSeed(9), WithDynamicNetwork())
	if err != nil {
		t.Fatal(err)
	}
	ft, plan, err := sys.NewFinetuner(PlanConfig{Effort: EffortTiny})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy == nil {
		t.Fatal("no initial strategy")
	}
	p2, err := ft.Finetune(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Evaluate(p2, 20); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeModel(t *testing.T) {
	s, err := DescribeModel("yolov2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "yolov2") || !strings.Contains(s, "conv1") {
		t.Errorf("summary missing content: %q", s[:80])
	}
	if _, err := DescribeModel("nope"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestTimelineRendering(t *testing.T) {
	sys, err := New("vgg16", fourProviders(), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Baseline("DeeperThings")
	if err != nil {
		t.Fatal(err)
	}
	gantt, err := sys.Timeline(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gantt, "dev  0") || !strings.Contains(gantt, "total") {
		t.Errorf("gantt missing content:\n%s", gantt)
	}
}

func TestSaveLoadPlan(t *testing.T) {
	sys, err := New("vgg16", fourProviders(), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Baseline("AOFL")
	if err != nil {
		t.Fatal(err)
	}
	data, err := sys.SavePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sys.LoadPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Evaluate(plan, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Evaluate(back, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPS != b.IPS {
		t.Errorf("loaded plan performs differently: %g vs %g", a.IPS, b.IPS)
	}
	// A plan saved for vgg16 must not load into a resnet50 system.
	other, err := New("resnet50", fourProviders())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.LoadPlan(data); err == nil {
		t.Error("cross-model plan load must fail")
	}
}

func TestEvaluateChurn(t *testing.T) {
	sys, err := New("vgg16", fourProviders(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Baseline("CoEdge")
	if err != nil {
		t.Fatal(err)
	}
	base, err := sys.EvaluatePipelined(plan, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	failAt := 0.5 * float64(40) / base.IPS
	events := []ChurnEvent{{Kind: "drop", Device: 0, AtSec: failAt}}
	on, err := sys.EvaluateChurn(plan, 40, 4, events, true)
	if err != nil {
		t.Fatal(err)
	}
	if on.Completed != 40 || on.Recoveries != 1 || on.FailedAtSec >= 0 {
		t.Fatalf("recovered churn report wrong: %+v", on)
	}
	off, err := sys.EvaluateChurn(plan, 40, 4, events, false)
	if err != nil {
		t.Fatal(err)
	}
	if off.Completed >= 40 || off.Failed == 0 || off.FailedAtSec != failAt {
		t.Fatalf("truncated churn report wrong: %+v", off)
	}
	if _, err := sys.EvaluateChurn(plan, 10, 1, []ChurnEvent{{Kind: "explode", Device: 0, AtSec: 1}}, true); err == nil {
		t.Error("unknown event kind must error")
	}
}

// TestPlanCachedHitAndChurnReplan covers the public plan-cache surface:
// the second PlanCached for an identical system is an exact hit returning
// an equivalent plan without re-searching, the cache counters read
// consistently, and the cached re-planner drives EvaluateChurnReplan
// through a recovery.
func TestPlanCachedHitAndChurnReplan(t *testing.T) {
	cache := NewPlanCache(0)
	cfg := PlanConfig{Effort: EffortTiny}
	sys, err := New("vgg16", fourProviders(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cold, out, err := sys.PlanCached(cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if out != PlanCold {
		t.Fatalf("first planning outcome = %q, want %q", out, PlanCold)
	}
	// A fresh System over the same fleet must key to the same signature.
	sys2, err := New("vgg16", fourProviders(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	hit, out, err := sys2.PlanCached(cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if out != PlanHit {
		t.Fatalf("repeat planning outcome = %q, want %q", out, PlanHit)
	}
	if got, want := hit.Describe("vgg16"), cold.Describe("vgg16"); got != want {
		t.Fatalf("cached plan differs from the planned one:\n%s\nvs\n%s", got, want)
	}
	// The returned plan is the caller's: mutating it must not poison the cache.
	hit.Strategy.Splits[0][0]++
	again, out, err := sys.PlanCached(cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if out != PlanHit || again.Describe("vgg16") != cold.Describe("vgg16") {
		t.Fatal("cache entry mutated through a returned plan")
	}
	st := cache.Stats()
	if st.Entries != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 entry, 2 hits, 1 miss", st)
	}

	// Cached recovery re-planning through the public churn evaluator.
	replan, err := cache.CachedReplan(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	events := []ChurnEvent{{Kind: "drop", Device: 0, AtSec: 0.2}}
	rep, err := sys.EvaluateChurnReplan(cold, 40, 4, events, true, replan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 40 || rep.Recoveries != 1 {
		t.Fatalf("cached-replan churn report wrong: %+v", rep)
	}
	if cache.Stats().Entries < 2 {
		t.Error("recovery re-plan did not cache the survivor-fleet plan")
	}
}
