// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section V). Each BenchmarkFigNN runs the corresponding harness from
// internal/experiments at a bounded budget and reports the headline metric
// (IPS or latency) alongside the usual ns/op. For paper-scale numbers use
// cmd/distbench with -budget full or -budget paper.
package distredge

import (
	"sort"
	"testing"

	"distredge/internal/baselines"
	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/experiments"
	"distredge/internal/network"
	"distredge/internal/partition"
	"distredge/internal/rl"
	"distredge/internal/sim"
	"distredge/internal/splitter"
	"distredge/internal/strategy"
)

func benchBudget() experiments.Budget {
	b := experiments.Tiny()
	b.Episodes = 40
	b.StreamImages = 50
	return b
}

// BenchmarkFig04StableTraces regenerates the Fig. 4 stable WiFi traces.
func BenchmarkFig04StableTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig04StableTraces(1)
		if len(rows) != 4 {
			b.Fatal("bad trace rows")
		}
	}
}

// BenchmarkFig05AlphaSweep regenerates one case of the Fig. 5 α sweep.
func BenchmarkFig05AlphaSweep(b *testing.B) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig05AlphaSweep(bud, 1)
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, r := range rows {
			if r.IPS > best {
				best = r.IPS
			}
		}
		b.ReportMetric(best, "bestIPS")
	}
}

// BenchmarkFig06RrsSweep regenerates the Fig. 6 |Rrs| stability sweep with
// a small repetition count.
func BenchmarkFig06RrsSweep(b *testing.B) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig06RrsSweep(bud, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// benchmarkMethodFigure runs a Fig. 7/8/9/10/11-style harness and reports
// DistrEdge's mean IPS and its mean speedup over the best baseline per case.
func benchmarkMethodFigure(b *testing.B, run func(experiments.Budget) ([]experiments.MethodRow, error)) {
	b.Helper()
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		rows, err := run(bud)
		if err != nil {
			b.Fatal(err)
		}
		byCase := map[string][]experiments.MethodRow{}
		for _, r := range rows {
			byCase[r.Case] = append(byCase[r.Case], r)
		}
		cases := make([]string, 0, len(byCase))
		for c := range byCase {
			cases = append(cases, c)
		}
		sort.Strings(cases)
		var ipsSum, spdSum float64
		for _, c := range cases {
			cr := byCase[c]
			de, ok := experiments.FindRow(cr, experiments.MethodDistrEdge)
			if !ok {
				b.Fatal("missing DistrEdge row")
			}
			ipsSum += de.IPS
			if best := experiments.BestBaselineIPS(cr); best > 0 {
				spdSum += de.IPS / best
			}
		}
		n := float64(len(byCase))
		b.ReportMetric(ipsSum/n, "distredgeIPS")
		b.ReportMetric(spdSum/n, "speedup")
	}
}

// BenchmarkFig07HeterogeneousDevices regenerates Fig. 7 (Table I).
func BenchmarkFig07HeterogeneousDevices(b *testing.B) {
	benchmarkMethodFigure(b, experiments.Fig07HeterogeneousDevices)
}

// BenchmarkFig08HeterogeneousNetworks regenerates Fig. 8 (Table II).
func BenchmarkFig08HeterogeneousNetworks(b *testing.B) {
	benchmarkMethodFigure(b, experiments.Fig08HeterogeneousNetworks)
}

// BenchmarkFig09LargeScale regenerates Fig. 9 (Table III, 16 devices).
func BenchmarkFig09LargeScale(b *testing.B) {
	benchmarkMethodFigure(b, experiments.Fig09LargeScale)
}

// BenchmarkFig10ModelsDB regenerates Fig. 10 (seven models, Group DB).
func BenchmarkFig10ModelsDB(b *testing.B) {
	benchmarkMethodFigure(b, experiments.Fig10ModelsDB)
}

// BenchmarkFig11ModelsNA regenerates Fig. 11 (seven models, Group NA).
func BenchmarkFig11ModelsNA(b *testing.B) {
	benchmarkMethodFigure(b, experiments.Fig11ModelsNA)
}

// BenchmarkFig12DynamicTraces regenerates the Fig. 12 dynamic traces.
func BenchmarkFig12DynamicTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12DynamicTraces(1)
		if len(rows) != 4 {
			b.Fatal("bad trace rows")
		}
	}
}

// BenchmarkFig13DynamicLatency regenerates the Fig. 13 online-adaptation
// timeline and reports the DistrEdge/AOFL latency ratio (paper: 40-65%).
func BenchmarkFig13DynamicLatency(b *testing.B) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13DynamicLatency(bud)
		if err != nil {
			b.Fatal(err)
		}
		s := experiments.Summarise(rows)
		b.ReportMetric(s.MeanDistrEdgeMS, "distredgeMS")
		b.ReportMetric(100*s.DistrEdgeOverAOFL, "pctOfAOFL")
	}
}

// BenchmarkFig14NonlinearLatency regenerates the Fig. 14 staircase curve.
func BenchmarkFig14NonlinearLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig14Nonlinear(device.Xavier)
		b.ReportMetric(experiments.Staircaseness(rows), "staircaseness")
	}
}

// BenchmarkFig15LatencyBreakdown regenerates the Fig. 15 per-method
// transmission/compute breakdown.
func BenchmarkFig15LatencyBreakdown(b *testing.B) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15Breakdown(bud)
		if err != nil {
			b.Fatal(err)
		}
		de, ok := experiments.FindRow(rows, experiments.MethodDistrEdge)
		if !ok {
			b.Fatal("missing DistrEdge row")
		}
		b.ReportMetric(de.MaxCompMS, "maxCompMS")
		b.ReportMetric(de.MaxTransMS, "maxTransMS")
	}
}

// ------------------------------------------------------------------
// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationNonlinearity measures DistrEdge's speedup over AOFL on
// staircase vs linearised devices — the paper's causal claim in one number
// pair (staircase margin should exceed the linear margin).
func BenchmarkAblationNonlinearity(b *testing.B) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationNonlinearity(bud, 50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.StaircaseSpeedup, "stairSpeedup")
		b.ReportMetric(res.LinearSpeedup, "linearSpeedup")
	}
}

// BenchmarkAblationWarmStart measures OSDS with and without the
// profile-guided warm-start episodes at a short budget.
func BenchmarkAblationWarmStart(b *testing.B) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationWarmStart(bud)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithWarmStartIPS, "warmIPS")
		b.ReportMetric(res.WithoutWarmStartIPS, "coldIPS")
	}
}

// BenchmarkAblationPartition compares OSDS over LC-PSS vs fixed partition
// families (single volume / pool boundaries / layer-by-layer).
func BenchmarkAblationPartition(b *testing.B) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPartition(bud)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.IPS, r.Partition+"IPS")
		}
	}
}

// BenchmarkAutoAlpha measures the α-portfolio planner (the paper's Fig. 5
// selection methodology applied per case).
func BenchmarkAutoAlpha(b *testing.B) {
	bud := benchBudget()
	env := benchEnv()
	for i := 0; i < b.N; i++ {
		_, alpha, ips, err := experiments.PlanDistrEdgeAutoAlpha(env, bud, []float64{0.5, 0.75})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ips, "IPS")
		b.ReportMetric(alpha, "alpha")
	}
}

// ------------------------------------------------------------------
// Micro-benchmarks for the core building blocks.

func benchEnv() *sim.Env {
	devs := device.Fleet(device.Xavier, device.Xavier, device.Nano, device.Nano)
	net := &network.Network{Requester: network.DefaultLink(network.Constant(200))}
	for range devs {
		net.Providers = append(net.Providers, network.DefaultLink(network.Constant(200)))
	}
	return &sim.Env{Model: cnn.VGG16(), Devices: device.AsModels(devs), Net: net}
}

// benchStrategy builds the fixed three-volume strategy the micro-benchmarks
// evaluate.
func benchStrategy(env *sim.Env) *strategy.Strategy {
	boundaries := []int{0, 10, 14, 18}
	s := &strategy.Strategy{Boundaries: boundaries}
	for v := 0; v+1 < len(boundaries); v++ {
		h := strategy.VolumeHeight(env.Model, boundaries, v)
		s.Splits = append(s.Splits, strategy.EqualCuts(h, 4))
	}
	return s
}

// BenchmarkSimLatency measures one end-to-end latency evaluation — the
// inner loop of both OSDS training and streaming measurements.
func BenchmarkSimLatency(b *testing.B) {
	env := benchEnv()
	s := benchStrategy(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Latency(s, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStream measures a 500-image streaming evaluation on a constant
// network — the workload behind every IPS figure. On time-invariant
// networks the steady-state fast path extrapolates after convergence, so
// this also tracks that the extrapolation stays engaged.
func BenchmarkStream(b *testing.B) {
	env := benchEnv()
	s := benchStrategy(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.Stream(s, 500, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPS, "IPS")
	}
}

// BenchmarkPipelineStream measures a 500-image pipelined streaming
// evaluation with four images in flight — the sustained-serving workload
// behind the Fig. 16 window sweep. Unlike Stream, the pipeline engine has
// no steady-state short-circuit (resource carryover makes images differ),
// so this tracks the honest per-image replay cost.
func BenchmarkPipelineStream(b *testing.B) {
	env := benchEnv()
	s := benchStrategy(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.PipelineStream(s, 500, 4, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPS, "IPS")
	}
}

// BenchmarkPipelineStreamBatched is BenchmarkPipelineStream with a
// step-batching cap of 4: the same 500-image window-4 replay through the
// batch-aware engine. It tracks both the engine's own overhead (the
// stepRuns bookkeeping must stay cheap) and the predicted serving-rate
// headline the batched runtime is validated against.
func BenchmarkPipelineStreamBatched(b *testing.B) {
	env := benchEnv()
	s := benchStrategy(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.PipelineStreamOpts(s, sim.PipelineConfig{Images: 500, Window: 4, Batch: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPS, "IPS")
	}
}

// BenchmarkLCPSS measures a full partition search on VGG-16.
func BenchmarkLCPSS(b *testing.B) {
	m := cnn.VGG16()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Search(m, partition.Config{
			Alpha: 0.75, NumRandomSplits: 100, Providers: 4, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOSDSSearch measures a short OSDS training run.
func BenchmarkOSDSSearch(b *testing.B) {
	env := benchEnv()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := splitter.Search(env, []int{0, 10, 14, 18}, splitter.Config{
			Episodes: 20, Hidden: []int{16, 16}, Batch: 16, Seed: 1, WarmStart: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDDPGUpdate measures one actor+critic gradient step at the
// paper's network sizes ({400,200,100}, batch 64).
func BenchmarkDDPGUpdate(b *testing.B) {
	agent, err := rl.New(rl.Config{StateDim: 8, ActionDim: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		agent.Buf.Add(rl.Transition{
			State:     make([]float64, 8),
			Action:    make([]float64, 3),
			Reward:    1,
			NextState: make([]float64, 8),
			Done:      i%6 == 5,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Update(64)
	}
}

// BenchmarkBaselinePlan measures planning cost of each baseline method.
func BenchmarkBaselinePlan(b *testing.B) {
	env := benchEnv()
	for _, m := range baselines.All() {
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baselines.Plan(m, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
