// Package partition implements LC-PSS — Layer Configuration based Partition
// Scheme Search (Algorithm 1 of the DistrEdge paper): the greedy search for
// the horizontal partition of a CNN into layer-volumes, scored by
//
//	Cp = α·T + (1−α)·O                         (Eq. 3)
//
// where T is the total transmission volume and O the total operation count
// (including VSL halo recompute), each averaged over a set of random split
// decisions R^r_s and normalised so α trades off two O(1) quantities.
package partition

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"distredge/internal/cnn"
)

// Config holds the LC-PSS hyper-parameters. Paper defaults (Section V):
// α = 0.75, |R^r_s| = 100.
type Config struct {
	Alpha           float64 // trade-off between transmission (α) and ops (1-α)
	NumRandomSplits int     // |R^r_s|
	Providers       int     // |D|, number of service providers
	Seed            int64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 && c.NumRandomSplits == 0 {
		c.Alpha = 0.75
	}
	if c.NumRandomSplits == 0 {
		c.NumRandomSplits = 100
	}
	if c.Providers == 0 {
		c.Providers = 4
	}
	return c
}

// searcher carries the per-search state: the random split-decision fraction
// vectors (reused across candidate schemes, as the paper reuses R^r_s) and
// memoised per-volume score components.
type searcher struct {
	model  *cnn.Model
	layers []cnn.Layer
	cfg    Config
	fracs  [][]float64 // NumRandomSplits sorted fraction vectors in [0,1]

	// Normalisers: O and T of the single-volume scheme, so Cp's two terms
	// are both ~1 at the coarsest partition and α trades them off on equal
	// footing. (With T including the halo-duplicated per-part input bytes,
	// a boundary can *reduce* T — which is how the paper's α=1 run settles
	// on two volumes rather than one.)
	oneVolOps   float64
	oneVolBytes float64
	kappa       float64

	opsMemo   map[[2]int]float64
	crossMemo map[[2]int]float64
	inMemo    map[[2]int]float64
}

// Search runs LC-PSS and returns the partition boundaries (ascending layer
// indices from 0 to the number of splittable layers).
func Search(m *cnn.Model, cfg Config) ([]int, error) {
	cfg = cfg.withDefaults()
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("partition: alpha %g outside [0,1]", cfg.Alpha)
	}
	if cfg.Providers < 1 {
		return nil, fmt.Errorf("partition: need at least one provider")
	}
	n := m.NumSplittable()
	if n == 0 {
		return nil, fmt.Errorf("partition: model %q has no splittable layers", m.Name)
	}
	s := &searcher{
		model:     m,
		layers:    m.SplittableLayers(),
		cfg:       cfg,
		opsMemo:   make(map[[2]int]float64),
		crossMemo: make(map[[2]int]float64),
		inMemo:    make(map[[2]int]float64),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s.fracs = make([][]float64, cfg.NumRandomSplits)
	for i := range s.fracs {
		f := make([]float64, cfg.Providers-1)
		for j := range f {
			f[j] = rng.Float64()
		}
		sort.Float64s(f)
		s.fracs[i] = f
	}
	s.oneVolOps, s.oneVolBytes = s.rawScore([]int{0, n})
	if s.oneVolOps <= 0 || s.oneVolBytes <= 0 {
		return nil, fmt.Errorf("partition: degenerate normaliser for %q", m.Name)
	}
	// Equalise the dynamic ranges of the two terms across the coarsest
	// (one volume) and finest (layer-by-layer) schemes, so α compares them
	// on equal footing for *this* model. The paper leaves its normalisation
	// unspecified; without this, models with violent halo growth (large
	// filters, many layers) or tiny activations would see one term drown
	// the other. κ rescales only T, so the α=0 and α=1 extremes keep their
	// argmin.
	lbl := make([]int, n+1)
	for i := range lbl {
		lbl[i] = i
	}
	lblOps, lblTrans := s.rawScore(lbl)
	oRange := 1 - lblOps/s.oneVolOps
	tRange := lblTrans/s.oneVolBytes - 1
	s.kappa = 1
	if oRange > 0 && tRange > 0 {
		// The extra factor of 2 biases α=0.75 toward the empirically
		// optimal granularity on our substrate (see DESIGN.md calibration
		// note); it is the single global constant in the scorer.
		s.kappa = oRange / (2 * tRange)
	}

	// Algorithm 1: start with {0, n}; each loop tries to insert one optimal
	// location per existing segment. A candidate equal to an existing
	// boundary is the no-op choice; the loop stops when nothing new joins.
	rp := []int{0, n}
	for {
		rStar := append([]int(nil), rp...)
		for i := 0; i+1 < len(rp); i++ {
			bestC := s.score(rStar)
			bestJ := -1
			for j := rp[i] + 1; j < rp[i+1]; j++ {
				cand := insertSorted(rStar, j)
				if c := s.score(cand); c < bestC {
					bestC = c
					bestJ = j
				}
			}
			if bestJ >= 0 {
				rStar = insertSorted(rStar, bestJ)
			}
		}
		if len(rStar) == len(rp) {
			break
		}
		rp = rStar
	}
	return rp, nil
}

// insertSorted returns a copy of b with v inserted in order (no duplicates).
func insertSorted(b []int, v int) []int {
	out := make([]int, 0, len(b)+1)
	done := false
	for _, x := range b {
		if !done && v < x {
			out = append(out, v)
			done = true
		}
		if x == v {
			done = true
		}
		out = append(out, x)
	}
	if !done {
		out = append(out, v)
	}
	return out
}

// rawScore returns the mean total operations and transmitted bytes of a
// partition scheme over the random split decisions.
func (s *searcher) rawScore(boundaries []int) (ops, trans float64) {
	for v := 0; v+1 < len(boundaries); v++ {
		a, b := boundaries[v], boundaries[v+1]
		ops += s.volumeOps(a, b)
		if v == 0 {
			// Requester scatters each part's (halo-duplicated) input rows.
			trans += s.scatterBytes(a, b)
		} else {
			trans += s.crossBytes(a, b)
		}
	}
	// Result gather from the last volume.
	trans += s.layers[len(s.layers)-1].OutputBytes()
	return ops, trans
}

// score returns the mean C̄p of a partition scheme over the random split
// decisions (Eq. 4), with O and T normalised by their single-volume values
// and T additionally rescaled by the per-model range equaliser κ.
func (s *searcher) score(boundaries []int) float64 {
	ops, trans := s.rawScore(boundaries)
	o := ops / s.oneVolOps
	t := s.kappa * trans / s.oneVolBytes
	return s.cfg.Alpha*t + (1-s.cfg.Alpha)*o
}

// Scoring uses *continuous* row accounting: split fractions are applied to
// each volume's last-layer height as real intervals and the VSL halo is
// propagated fractionally (rows [lo,hi] on a layer need input
// [lo·S−P, hi·S+(F−S)−P], clamped). This keeps the score meaningful even
// where integer heights degenerate (e.g. detector tails with H=1, where an
// integer random split would collapse to a single non-empty part and make
// the un-split scheme look free). The executed strategies are still exact
// integer splits — continuous math is a scoring device only.

// interval is a continuous row range [Lo, Hi] on some layer's height.
type interval struct{ Lo, Hi float64 }

func (iv interval) len() float64 {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

func (iv interval) intersect(o interval) float64 {
	lo, hi := math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// inputInterval propagates an output interval backwards through one layer.
func inputInterval(l cnn.Layer, out interval) interval {
	if out.len() == 0 {
		return interval{}
	}
	lo := out.Lo*float64(l.S) - float64(l.P)
	hi := out.Hi*float64(l.S) + float64(l.F-l.S) - float64(l.P)
	lo = math.Max(lo, 0)
	hi = math.Min(hi, float64(l.Hin))
	if hi < lo {
		hi = lo
	}
	return interval{lo, hi}
}

// partIntervals maps a fraction vector to provider intervals on height h.
func partIntervals(frac []float64, h float64, providers int) []interval {
	parts := make([]interval, providers)
	prev := 0.0
	for i := 0; i < providers; i++ {
		hi := h
		if i < len(frac) {
			hi = frac[i] * h
		}
		if hi < prev {
			hi = prev
		}
		parts[i] = interval{prev, hi}
		prev = hi
	}
	return parts
}

// volumeOps returns the mean total operations of volume [a,b) over the
// random split decisions, including (fractional) halo recompute.
func (s *searcher) volumeOps(a, b int) float64 {
	key := [2]int{a, b}
	if v, ok := s.opsMemo[key]; ok {
		return v
	}
	layers := s.layers[a:b]
	h := float64(layers[len(layers)-1].OutHeight())
	var sum float64
	for _, frac := range s.fracs {
		for _, part := range partIntervals(frac, h, s.cfg.Providers) {
			cur := part
			for i := len(layers) - 1; i >= 0; i-- {
				sum += layers[i].OpsRows(1) * cur.len()
				cur = inputInterval(layers[i], cur)
			}
		}
	}
	v := sum / float64(len(s.fracs))
	s.opsMemo[key] = v
	return v
}

// volumeInputInterval propagates a part's output interval to the volume's
// input tensor.
func volumeInputInterval(layers []cnn.Layer, part interval) interval {
	cur := part
	for i := len(layers) - 1; i >= 0; i-- {
		cur = inputInterval(layers[i], cur)
	}
	return cur
}

// scatterBytes returns the mean bytes the requester must send so every part
// of volume [a,b) has its input rows; halo overlap between parts is sent
// once per receiving device, so long volumes pay duplicated input traffic.
func (s *searcher) scatterBytes(a, b int) float64 {
	key := [2]int{a, b}
	if v, ok := s.inMemo[key]; ok {
		return v
	}
	layers := s.layers[a:b]
	h := float64(layers[len(layers)-1].OutHeight())
	rowBytes := layers[0].InRowBytes()
	var sum float64
	for _, frac := range s.fracs {
		for _, part := range partIntervals(frac, h, s.cfg.Providers) {
			sum += volumeInputInterval(layers, part).len() * rowBytes
		}
	}
	v := sum / float64(len(s.fracs))
	s.inMemo[key] = v
	return v
}

// crossBytes returns the mean bytes crossing the boundary *into* volume
// [a,b): each receiving part pulls its input rows from the parts of the
// previous volume that own them (the previous volume's output is the full
// height of layer a-1, split by the same fraction vector).
func (s *searcher) crossBytes(a, b int) float64 {
	key := [2]int{a, b}
	if v, ok := s.crossMemo[key]; ok {
		return v
	}
	layers := s.layers[a:b]
	h := float64(layers[len(layers)-1].OutHeight())
	prevH := float64(s.layers[a-1].OutHeight())
	rowBytes := layers[0].InRowBytes()
	var sum float64
	for _, frac := range s.fracs {
		parts := partIntervals(frac, h, s.cfg.Providers)
		prevParts := partIntervals(frac, prevH, s.cfg.Providers)
		for i, part := range parts {
			in := volumeInputInterval(layers, part)
			if in.len() == 0 {
				continue
			}
			for j, own := range prevParts {
				if j == i {
					continue
				}
				sum += in.intersect(own) * rowBytes
			}
		}
	}
	v := sum / float64(len(s.fracs))
	s.crossMemo[key] = v
	return v
}

// SearchDebug is Search plus the computed κ, for calibration tooling.
func SearchDebug(m *cnn.Model, cfg Config) ([]int, float64, error) {
	b, err := Search(m, cfg)
	if err != nil {
		return nil, 0, err
	}
	// Recompute κ the same way Search does.
	cfg = cfg.withDefaults()
	s := &searcher{model: m, layers: m.SplittableLayers(), cfg: cfg,
		opsMemo: map[[2]int]float64{}, crossMemo: map[[2]int]float64{}, inMemo: map[[2]int]float64{}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s.fracs = make([][]float64, cfg.NumRandomSplits)
	for i := range s.fracs {
		f := make([]float64, cfg.Providers-1)
		for j := range f {
			f[j] = rng.Float64()
		}
		sort.Float64s(f)
		s.fracs[i] = f
	}
	n := m.NumSplittable()
	s.oneVolOps, s.oneVolBytes = s.rawScore([]int{0, n})
	lbl := make([]int, n+1)
	for i := range lbl {
		lbl[i] = i
	}
	lblOps, lblTrans := s.rawScore(lbl)
	oRange := 1 - lblOps/s.oneVolOps
	tRange := lblTrans/s.oneVolBytes - 1
	kappa := 1.0
	if oRange > 0 && tRange > 0 {
		kappa = oRange / (2 * tRange)
	}
	return b, kappa, nil
}
