package partition

import (
	"testing"

	"distredge/internal/cnn"
)

func TestSearchReturnsValidBoundaries(t *testing.T) {
	m := cnn.VGG16()
	b, err := Search(m, Config{Alpha: 0.75, NumRandomSplits: 50, Providers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 || b[len(b)-1] != m.NumSplittable() {
		t.Fatalf("boundaries %v do not span the model", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("boundaries %v not strictly increasing", b)
		}
	}
}

func TestAlphaControlsGranularity(t *testing.T) {
	// Paper, Section V-C: small α ⇒ many volumes (ops-only), large α ⇒ few
	// volumes (transmission-only). VGG-16 goes from 16 volumes at α=0 to 2
	// at α=1 in the paper; we require the same monotone trend and extremes
	// in the same ballpark.
	m := cnn.VGG16()
	counts := map[float64]int{}
	for _, alpha := range []float64{0, 0.5, 1} {
		b, err := Search(m, Config{Alpha: alpha, NumRandomSplits: 40, Providers: 4, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		counts[alpha] = len(b) - 1
	}
	if counts[0] < counts[0.5] || counts[0.5] < counts[1] {
		t.Errorf("volume counts not monotone in alpha: %v", counts)
	}
	if counts[0] < 8 {
		t.Errorf("alpha=0 should partition finely, got %d volumes", counts[0])
	}
	if counts[1] > 4 {
		t.Errorf("alpha=1 should partition coarsely, got %d volumes", counts[1])
	}
}

func TestSearchDeterministic(t *testing.T) {
	m := cnn.VGG16()
	cfg := Config{Alpha: 0.75, NumRandomSplits: 30, Providers: 4, Seed: 9}
	a, err := Search(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	m := cnn.VGG16()
	if _, err := Search(m, Config{Alpha: -0.5, NumRandomSplits: 10, Providers: 4}); err == nil {
		t.Error("negative alpha must error")
	}
	if _, err := Search(m, Config{Alpha: 1.5, NumRandomSplits: 10, Providers: 4}); err == nil {
		t.Error("alpha > 1 must error")
	}
	if _, err := Search(m, Config{Alpha: 0.5, NumRandomSplits: 10, Providers: -2}); err == nil {
		t.Error("negative providers must error")
	}
	fcOnly := &cnn.Model{Name: "fconly", Layers: []cnn.Layer{{Kind: cnn.FC, Cin: 4, Cout: 2}}}
	if _, err := Search(fcOnly, Config{Alpha: 0.5, NumRandomSplits: 10, Providers: 2}); err == nil {
		t.Error("model without splittable layers must error")
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Alpha != 0.75 || c.NumRandomSplits != 100 || c.Providers != 4 {
		t.Errorf("defaults wrong: %+v", c)
	}
	// Explicit alpha=0 with explicit splits is preserved.
	c2 := Config{Alpha: 0, NumRandomSplits: 50, Providers: 4}.withDefaults()
	if c2.Alpha != 0 {
		t.Errorf("explicit alpha=0 overwritten: %+v", c2)
	}
}

func TestInsertSorted(t *testing.T) {
	base := []int{0, 5, 10}
	got := insertSorted(base, 7)
	want := []int{0, 5, 7, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("insertSorted = %v, want %v", got, want)
		}
	}
	if len(insertSorted(base, 5)) != 3 {
		t.Error("inserting an existing boundary must be a no-op")
	}
	head := insertSorted([]int{5, 10}, 1)
	if head[0] != 1 {
		t.Errorf("insert at head broken: %v", head)
	}
	tail := insertSorted([]int{0, 5}, 9)
	if tail[2] != 9 {
		t.Errorf("insert at tail broken: %v", tail)
	}
}

func TestScoreComponentsBehave(t *testing.T) {
	// Finer partitions must (weakly) reduce total ops (less halo recompute)
	// and increase boundary-crossing transmission — the trade-off LC-PSS
	// navigates.
	m := cnn.VGG16()
	cfg := Config{Alpha: 0.5, NumRandomSplits: 40, Providers: 4, Seed: 3}.withDefaults()
	s := &searcher{model: m, layers: m.SplittableLayers(), cfg: cfg,
		opsMemo: map[[2]int]float64{}, crossMemo: map[[2]int]float64{}, inMemo: map[[2]int]float64{}}
	// A fixed fraction set keeps the check deterministic.
	s.fracs = [][]float64{{0.25, 0.5, 0.75}, {0.1, 0.4, 0.9}}
	n := m.NumSplittable()
	fine := []int{0, 4, 9, 13, n}

	opsCoarse := s.volumeOps(0, n)
	var opsFine float64
	for i := 0; i+1 < len(fine); i++ {
		opsFine += s.volumeOps(fine[i], fine[i+1])
	}
	if opsFine > opsCoarse {
		t.Errorf("finer partition increased ops: %g > %g", opsFine, opsCoarse)
	}

	if s.crossBytes(9, 13) <= 0 {
		t.Error("interior boundary must cross bytes")
	}
	// Layer-by-layer must transmit far more than a coarse 3-volume scheme.
	// (Per-boundary crossing is not monotone under refinement — shorter
	// volumes have smaller halos — but the coarse/fine contrast is robust.)
	lbl := make([]int, n+1)
	for i := range lbl {
		lbl[i] = i
	}
	_, transLbL := s.rawScore(lbl)
	_, trans3 := s.rawScore([]int{0, 10, 14, n})
	if transLbL < 1.5*trans3 {
		t.Errorf("layer-by-layer trans %g not >> 3-volume trans %g", transLbL, trans3)
	}
}

func TestPartIntervals(t *testing.T) {
	parts := partIntervals([]float64{0.25, 0.5, 0.75}, 100, 4)
	if parts[0].len() != 25 || parts[3].len() != 25 {
		t.Fatalf("partIntervals wrong: %+v", parts)
	}
	var total float64
	for _, p := range parts {
		total += p.len()
	}
	if total != 100 {
		t.Errorf("parts must tile the height: %g", total)
	}
	// Unsorted fractions are forced monotone.
	parts = partIntervals([]float64{0.9, 0.1}, 10, 3)
	if parts[1].Hi < parts[1].Lo {
		t.Errorf("interval order broken: %+v", parts)
	}
}

func TestInputIntervalMatchesIntegerVSL(t *testing.T) {
	// On the interior, the continuous backward map must agree with the
	// integer VSL up to one row.
	l := cnn.Layer{Kind: cnn.Conv, Win: 224, Hin: 224, Cin: 3, Cout: 64, F: 3, S: 1, P: 1}
	iv := inputInterval(l, interval{100, 120})
	ir := cnn.InputRows(l, cnn.RowRange{Lo: 100, Hi: 120})
	if iv.Lo < float64(ir.Lo)-1 || iv.Hi > float64(ir.Hi)+1 {
		t.Errorf("continuous %+v vs integer %v", iv, ir)
	}
	if inputInterval(l, interval{5, 5}).len() != 0 {
		t.Error("empty interval must stay empty")
	}
}

func TestDetectorTailsStillPartition(t *testing.T) {
	// SSD-style models end in H=1 layers; the continuous scorer must still
	// find a non-trivial partition at moderate alpha.
	for _, m := range []*cnn.Model{cnn.SSDVGG16(), cnn.SSDResNet50()} {
		b, err := Search(m, Config{Alpha: 0.5, NumRandomSplits: 30, Providers: 4, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(b)-1 < 2 {
			t.Errorf("%s: degenerate single-volume partition %v", m.Name, b)
		}
	}
}

func TestSearchAllZooModels(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo sweep in short mode")
	}
	for name, m := range cnn.Zoo() {
		b, err := Search(m, Config{Alpha: 0.75, NumRandomSplits: 20, Providers: 4, Seed: 5})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(b) < 2 {
			t.Errorf("%s: degenerate boundaries %v", name, b)
		}
	}
}
