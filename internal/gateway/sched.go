package gateway

// This file holds the admission scheduler's data structures: a ring deque
// per tenant backlog and an indexed min-heap of admissible tenants. The
// heap turns each admission pick from an O(n)-tenants scan into O(log n),
// which is what keeps a 1000+-tenant gateway's scheduler off the flame
// graph; the deques make head pops allocation-free (the former slice
// queues leaked their popped prefix until reallocation).
//
// Heap invariant: the heap contains exactly the tenants that are
// admissible — non-empty backlog AND per-tenant in-flight below the
// tenant's window (the global window is checked outside, since it gates
// every tenant equally). Every state transition re-establishes it:
//
//	enqueue:    may turn a tenant admissible        -> push
//	admit:      changes the key (head seq/vserved)  -> fix, or remove if
//	            the pop emptied the backlog or hit the tenant window
//	completion: frees tenant window                 -> push if backlogged
//	expiry:     pops the head prefix                -> fix, or remove
//
// The ordering key is the admission policy's, bit-identical to the linear
// scan it replaces (and so to sim.MultiStreamOpts): FIFO orders by the
// head request's global sequence number, WFQ by vserved + 1/weight with
// ties to the lower tenant index. pickScanLocked preserves the old scan as
// the reference implementation; TestHeapMatchesScan drives both through
// seeded traffic and insists on identical picks.

// ring is a growable FIFO deque of requests backed by a power-of-two
// circular buffer. front/pop require a non-empty ring.
type ring struct {
	buf  []*request
	head int
	size int
}

func (r *ring) len() int { return r.size }

func (r *ring) front() *request { return r.buf[r.head] }

func (r *ring) push(x *request) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = x
	r.size++
}

func (r *ring) pop() *request {
	x := r.buf[r.head]
	r.buf[r.head] = nil // drop the reference; expired requests must not pin memory
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	return x
}

func (r *ring) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]*request, n)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}

// admissibleLocked reports whether tenant t can be admitted right now,
// global window aside: it has backlog and free tenant-window slots.
func (g *Gateway) admissibleLocked(t int) bool {
	return g.queues[t].len() > 0 && g.tinfl[t] < g.tenants[t].Window
}

// heapLessLocked is the admission order: the policy key, ties to the lower
// tenant index — bit-identical to the scan's first-strict-improvement
// rule (FIFO sequence numbers are globally unique, so only WFQ can tie).
func (g *Gateway) heapLessLocked(a, b int) bool {
	switch g.cfg.Policy {
	case PolicyWFQ:
		ka := g.vserved[a] + 1/g.tenants[a].Weight
		kb := g.vserved[b] + 1/g.tenants[b].Weight
		if ka != kb {
			return ka < kb
		}
	default: // PolicyFIFO
		ka, kb := g.queues[a].front().seq, g.queues[b].front().seq
		if ka != kb {
			return ka < kb
		}
	}
	return a < b
}

func (g *Gateway) heapSwapLocked(i, j int) {
	h := g.heap
	h[i], h[j] = h[j], h[i]
	g.heapIdx[h[i]] = i
	g.heapIdx[h[j]] = j
}

func (g *Gateway) heapUpLocked(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !g.heapLessLocked(g.heap[i], g.heap[parent]) {
			break
		}
		g.heapSwapLocked(i, parent)
		i = parent
	}
}

func (g *Gateway) heapDownLocked(i int) {
	n := len(g.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && g.heapLessLocked(g.heap[l], g.heap[min]) {
			min = l
		}
		if r < n && g.heapLessLocked(g.heap[r], g.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		g.heapSwapLocked(i, min)
		i = min
	}
}

// heapPushLocked adds tenant t (must not be present).
func (g *Gateway) heapPushLocked(t int) {
	g.heapIdx[t] = len(g.heap)
	g.heap = append(g.heap, t)
	g.heapUpLocked(g.heapIdx[t])
}

// heapRemoveLocked deletes tenant t (must be present).
func (g *Gateway) heapRemoveLocked(t int) {
	i := g.heapIdx[t]
	last := len(g.heap) - 1
	if i != last {
		g.heapSwapLocked(i, last)
	}
	g.heap = g.heap[:last]
	g.heapIdx[t] = -1
	if i < len(g.heap) {
		g.heapFixAtLocked(i)
	}
}

// heapFixLocked restores t's position after its key changed.
func (g *Gateway) heapFixLocked(t int) {
	g.heapFixAtLocked(g.heapIdx[t])
}

func (g *Gateway) heapFixAtLocked(i int) {
	g.heapUpLocked(i)
	g.heapDownLocked(i)
}

// heapSyncLocked re-establishes the invariant for tenant t after any state
// transition: present iff admissible, repositioned if its key may have
// changed. All transitions funnel through this one helper so no path can
// half-update the heap.
func (g *Gateway) heapSyncLocked(t int) {
	in := g.heapIdx[t] >= 0
	want := g.admissibleLocked(t)
	switch {
	case want && !in:
		g.heapPushLocked(t)
	case !want && in:
		g.heapRemoveLocked(t)
	case want && in:
		g.heapFixLocked(t)
	}
}

// pickScanLocked is the former O(n) admission pick, kept as the reference
// implementation the heap is verified against (and the baseline
// BenchmarkGatewayPick measures the speedup over). The rule is
// bit-identical to sim.MultiStreamOpts: FIFO takes the lowest global
// sequence number; WFQ takes the lowest vserved + 1/weight, ties to the
// lower tenant index.
func (g *Gateway) pickScanLocked() int {
	best := -1
	var bestFIFO uint64
	var bestWFQ float64
	for t := range g.queues {
		if g.queues[t].len() == 0 || g.tinfl[t] >= g.tenants[t].Window {
			continue
		}
		switch g.cfg.Policy {
		case PolicyFIFO:
			if key := g.queues[t].front().seq; best < 0 || key < bestFIFO {
				best, bestFIFO = t, key
			}
		case PolicyWFQ:
			if key := g.vserved[t] + 1/g.tenants[t].Weight; best < 0 || key < bestWFQ {
				best, bestWFQ = t, key
			}
		}
	}
	return best
}
