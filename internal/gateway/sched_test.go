package gateway

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestHeapMatchesScan drives the heap scheduler and the former O(n) scan
// through the same seeded traffic — enqueues, admissions, completions over
// tenants with mixed weights and windows — and insists every pick is
// identical. The scan is the reference the WFQ/FIFO equivalence proofs
// were written against (bit-identical to sim.MultiStreamOpts), so heap ==
// scan transitively keeps the sim differential intact.
func TestHeapMatchesScan(t *testing.T) {
	for _, policy := range []string{PolicyFIFO, PolicyWFQ} {
		t.Run(policy, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			const nTenants = 13
			weights := []float64{0.5, 1, 1, 2, 3}
			tenants := make([]TenantConfig, nTenants)
			for i := range tenants {
				tenants[i] = TenantConfig{
					Name:   fmt.Sprintf("t%d", i),
					Weight: weights[rng.Intn(len(weights))],
					Window: 1 + rng.Intn(3),
				}
			}
			g, err := newGateway(nopBackend{}, Config{Window: 6, Policy: policy}, tenants)
			if err != nil {
				t.Fatal(err)
			}
			var inflight []int // tenant of each simulated in-flight admission
			for step := 0; step < 20000; step++ {
				switch op := rng.Intn(4); {
				case op < 2: // enqueue
					tn := rng.Intn(nTenants)
					g.mu.Lock()
					r := &request{tenant: tn, seq: g.nextSeq}
					g.nextSeq++
					g.queues[tn].push(r)
					g.heapSyncLocked(tn)
					g.mu.Unlock()
				case op == 2 && len(inflight) > 0: // complete a random in-flight
					k := rng.Intn(len(inflight))
					tn := inflight[k]
					inflight = append(inflight[:k], inflight[k+1:]...)
					g.mu.Lock()
					g.inflight--
					g.tinfl[tn]--
					g.heapSyncLocked(tn)
					g.mu.Unlock()
				default: // admit (the pick under test)
					g.mu.Lock()
					want := g.pickScanLocked()
					got := -1
					if len(g.heap) > 0 {
						got = g.heap[0]
					}
					if got != want {
						g.mu.Unlock()
						t.Fatalf("step %d: heap picked %d, scan picked %d", step, got, want)
					}
					if got >= 0 && g.inflight < g.cfg.Window {
						g.queues[got].pop()
						g.inflight++
						g.tinfl[got]++
						g.vserved[got] += 1 / g.tenants[got].Weight
						g.heapSyncLocked(got)
						inflight = append(inflight, got)
					}
					g.mu.Unlock()
				}
			}
			// Final invariant: the heap holds exactly the admissible tenants.
			g.mu.Lock()
			for tn := range tenants {
				in := g.heapIdx[tn] >= 0
				want := g.admissibleLocked(tn)
				if in != want {
					t.Errorf("tenant %d: in heap %v, admissible %v", tn, in, want)
				}
				if in && g.heap[g.heapIdx[tn]] != tn {
					t.Errorf("tenant %d: heapIdx points at %d", tn, g.heap[g.heapIdx[tn]])
				}
			}
			g.mu.Unlock()
		})
	}
}

// TestSummaryReadOnlyIdempotent checks the Summary bugfix: repeated calls
// return identical statistics, never reorder the recorded latency history
// (the sort happens in a scratch copy), and stay safe under a concurrent
// Enqueue storm.
func TestSummaryReadOnlyIdempotent(t *testing.T) {
	g, err := New(nopBackend{}, Config{Window: 4}, []TenantConfig{{Name: "a"}, {Name: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const n = 40
	var chans []<-chan Result
	for i := 0; i < n; i++ {
		ch, err := g.Enqueue([]string{"a", "b"}[i%2])
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatalf("serve: %v", r.Err)
		}
	}

	g.mu.Lock()
	history := append([]float64(nil), g.served[0]...)
	g.mu.Unlock()

	s1, s2 := g.Summary(), g.Summary()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("Summary not idempotent:\n%+v\n%+v", s1, s2)
	}
	if s1[0].Completed != n/2 || s1[1].Completed != n/2 {
		t.Errorf("completed counts wrong: %+v", s1)
	}

	g.mu.Lock()
	after := append([]float64(nil), g.served[0]...)
	g.mu.Unlock()
	if !reflect.DeepEqual(history, after) {
		t.Errorf("Summary mutated the latency history:\nbefore %v\nafter  %v", history, after)
	}

	// Concurrent Enqueue storm vs repeated Summary: counters may move
	// between calls but nothing races or goes backwards.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, err := g.Enqueue("a")
				if err != nil {
					return
				}
				<-ch
			}
		}()
	}
	lastEnq := 0
	for i := 0; i < 50; i++ {
		s := g.Summary()
		if s[0].Enqueued < lastEnq {
			t.Errorf("Enqueued went backwards: %d -> %d", lastEnq, s[0].Enqueued)
		}
		lastEnq = s[0].Enqueued
	}
	close(stop)
	wg.Wait()
}

// TestExpiredPrefixNotified checks the ring-based expiry sweep still
// notifies queued requests that aged out before admission, and that the
// tenant's survivors are untouched.
func TestExpiredPrefixNotified(t *testing.T) {
	be := newBlockingBackend()
	g, err := New(be, Config{Window: 1}, []TenantConfig{
		{Name: "slow"},
		{Name: "dl", Deadline: 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Occupy the single global slot so "dl"'s requests sit queued.
	slowCh, err := g.Enqueue("slow")
	if err != nil {
		t.Fatal(err)
	}
	hold := <-be.calls

	dlCh, err := g.Enqueue("dl")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	// A fresh enqueue wakes the scheduler; the aged head must expire
	// without reaching the backend.
	dlCh2, err := g.Enqueue("dl")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-dlCh:
		if r.Err != ErrDeadlineExceeded {
			t.Fatalf("expired request err = %v", r.Err)
		}
		if r.LatencyMS != 0 {
			t.Fatalf("expired request reported backend latency %v", r.LatencyMS)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("expired request never notified")
	}

	// Release the backend: the survivor runs, the slow request completes.
	hold <- nil
	if r := <-slowCh; r.Err != nil {
		t.Fatalf("slow: %v", r.Err)
	}
	hold2 := <-be.calls
	hold2 <- nil
	if r := <-dlCh2; r.Err != nil && r.Err != ErrDeadlineExceeded {
		t.Fatalf("survivor: %v", r.Err)
	}
	s := g.Summary()
	if s[1].Expired != 1 {
		t.Errorf("dl expired = %d, want 1", s[1].Expired)
	}
}

// BenchmarkGatewayPick measures one admission decision plus its
// bookkeeping at 1024 backlogged WFQ tenants: the heap path against the
// reference O(n) scan. The acceptance bar for the heap refactor is >= 5x
// over the scan at this tenant count (BENCH_baseline.json records both).
func BenchmarkGatewayPick(b *testing.B) {
	const n = 1024
	setup := func(b *testing.B) *Gateway {
		tenants := make([]TenantConfig, n)
		for i := range tenants {
			tenants[i] = TenantConfig{
				Name:   fmt.Sprintf("t%d", i),
				Weight: 1 + float64(i%7),
				Window: 1 << 30,
			}
		}
		g, err := newGateway(nopBackend{}, Config{Window: 1 << 30, Policy: PolicyWFQ}, tenants)
		if err != nil {
			b.Fatal(err)
		}
		g.mu.Lock()
		for i := 0; i < n; i++ {
			for j := 0; j < 2; j++ {
				g.queues[i].push(&request{tenant: i, seq: g.nextSeq})
				g.nextSeq++
			}
			g.heapSyncLocked(i)
		}
		g.mu.Unlock()
		return g
	}
	b.Run("heap", func(b *testing.B) {
		g := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.mu.Lock()
			t := g.heap[0]
			r := g.queues[t].pop()
			g.vserved[t] += 1 / g.tenants[t].Weight
			g.queues[t].push(r) // refill so the backlog never drains
			g.heapSyncLocked(t)
			g.mu.Unlock()
		}
	})
	b.Run("scan", func(b *testing.B) {
		g := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.mu.Lock()
			t := g.pickScanLocked()
			r := g.queues[t].pop()
			g.vserved[t] += 1 / g.tenants[t].Weight
			g.queues[t].push(r)
			g.mu.Unlock()
		}
	})
}
