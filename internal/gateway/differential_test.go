package gateway

import (
	"testing"
	"time"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/runtime"
	"distredge/internal/sim"
	"distredge/internal/strategy"
	"distredge/internal/transport"
)

func diffEnv() *sim.Env {
	devs := device.Fleet(device.Xavier, device.Nano, device.TX2, device.Nano)
	net := &network.Network{Requester: network.DefaultLink(network.Constant(200))}
	for range devs {
		net.Providers = append(net.Providers, network.DefaultLink(network.Constant(200)))
	}
	return &sim.Env{Model: cnn.VGG16(), Devices: device.AsModels(devs), Net: net}
}

func diffStrategy(env *sim.Env, boundaries []int) *strategy.Strategy {
	s := &strategy.Strategy{Boundaries: boundaries}
	for v := 0; v+1 < len(boundaries); v++ {
		h := strategy.VolumeHeight(env.Model, boundaries, v)
		s.Splits = append(s.Splits, strategy.EqualCuts(h, env.NumProviders()))
	}
	return s
}

// TestGatewayDifferentialSimVsRuntime is the tentpole's acceptance test:
// the simulator's multi-stream mirror predicts that weighted fair queueing
// beats FIFO on the small high-weight tenant's p95 when a heavy tenant's
// burst shares the fleet, and the real gateway over a shaped runtime
// cluster — same network, same window, same pick rule — must reproduce
// that ordering.
func TestGatewayDifferentialSimVsRuntime(t *testing.T) {
	env := diffEnv()
	s := diffStrategy(env, []int{0, 10, 14, 18})
	tenants := []sim.TenantSpec{
		{Name: "heavy", Images: 16, Weight: 1},
		{Name: "small", Images: 4, Weight: 4},
	}
	const window = 4

	// Offline prediction.
	simSmall := map[string]float64{}
	for _, policy := range []string{sim.AdmitFIFO, sim.AdmitWFQ} {
		res, err := env.MultiStream(s, tenants, policy, window)
		if err != nil {
			t.Fatal(err)
		}
		simSmall[policy] = res.Tenants[1].P95LatMS
	}
	if !(simSmall[sim.AdmitWFQ] < simSmall[sim.AdmitFIFO]) {
		t.Fatalf("simulator must predict wfq beats fifo on the small tenant's p95: wfq %.1fms vs fifo %.1fms",
			simSmall[sim.AdmitWFQ], simSmall[sim.AdmitFIFO])
	}

	// Shaped-runtime reproduction through the real gateway.
	const timeScale, bytesScale = 0.05, 0.001
	rtRun := func(policy string) float64 {
		t.Helper()
		opts := runtime.Options{
			TimeScale:         timeScale,
			BytesScale:        bytesScale,
			HeartbeatInterval: -1,
			Transport:         transport.NewShaped(transport.NewInproc(), env.Net, timeScale, bytesScale, 0),
		}
		cl, err := runtime.Deploy(env, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		cfgs := make([]TenantConfig, len(tenants))
		for i, ts := range tenants {
			cfgs[i] = TenantConfig{Name: ts.Name, Weight: ts.Weight}
		}
		g, err := New(cl, Config{Window: window, Policy: policy}, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		// The sim's burst model: every tenant's whole backlog enqueued at
		// the stream start, heavy first (FIFO ties go to the lower index
		// there; lower sequence numbers here).
		var chs []<-chan Result
		for _, ts := range tenants {
			for j := 0; j < ts.Images; j++ {
				ch, err := g.Enqueue(ts.Name)
				if err != nil {
					t.Fatal(err)
				}
				chs = append(chs, ch)
			}
		}
		for i, ch := range chs {
			select {
			case r := <-ch:
				if r.Err != nil {
					t.Fatalf("%s request %d: %v", policy, i, r.Err)
				}
			case <-time.After(2 * time.Minute):
				t.Fatalf("%s request %d never completed", policy, i)
			}
		}
		sum := g.Summary()
		g.Close()
		if sum[0].Completed != 16 || sum[1].Completed != 4 {
			t.Fatalf("%s completions: heavy %d small %d, want 16/4", policy, sum[0].Completed, sum[1].Completed)
		}
		return sum[1].P95LatMS
	}
	rtFIFO := rtRun(PolicyFIFO)
	rtWFQ := rtRun(PolicyWFQ)
	t.Logf("sim small p95: fifo %.1fms wfq %.1fms | runtime small p95: fifo %.1fms wfq %.1fms",
		simSmall[sim.AdmitFIFO], simSmall[sim.AdmitWFQ], rtFIFO, rtWFQ)
	if !(rtWFQ < rtFIFO) {
		t.Errorf("shaped runtime does not reproduce the predicted ordering: wfq small p95 %.1fms vs fifo %.1fms",
			rtWFQ, rtFIFO)
	}
}
