// Package gateway multiplexes many concurrent tenant request streams over
// one deployed cluster. It is the serving front-end the paper's
// one-requester protocol lacks: each tenant gets its own admission window,
// weight and per-request deadline, a global window bounds the images in
// flight on the fleet, and a scheduler picks the next request across
// tenants by FIFO or weighted fair queueing — the same pick rule as
// sim.MultiStreamOpts, so policies swept offline transfer unchanged.
//
// Deadlines are measured from enqueue, not scatter: a request that sat
// queued behind a heavy tenant's burst and only then ran is late even
// though its scatter-to-result time was fine. That is the latency an SLO
// bounds, and the quantity the sim mirror distributes per tenant.
package gateway

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Backend is the shared-cluster admission surface the gateway drives;
// *runtime.Cluster implements it (Submit is one image's
// scatter-to-assembled-result round trip, safe for concurrent callers).
type Backend interface {
	Submit() error
}

// Admission policies. They mirror sim.AdmitFIFO / sim.AdmitWFQ exactly:
// FIFO serves requests in global enqueue order; WFQ charges each admission
// 1/Weight of virtual service and serves the tenant with the least.
const (
	PolicyFIFO = "fifo"
	PolicyWFQ  = "wfq"
)

// ErrDeadlineExceeded reports a request that missed its tenant's deadline —
// either expired in the queue before admission, or completed too late.
var ErrDeadlineExceeded = errors.New("gateway: request deadline exceeded")

// ErrClosed reports a request rejected or abandoned because the gateway
// shut down.
var ErrClosed = errors.New("gateway: closed")

// ErrUnknownTenant reports an Enqueue for a tenant the gateway was not
// configured with.
var ErrUnknownTenant = errors.New("gateway: unknown tenant")

// TenantConfig declares one tenant's admission contract.
type TenantConfig struct {
	Name string
	// Weight is the tenant's fair-queueing share (<= 0 means 1); only
	// PolicyWFQ consults it.
	Weight float64
	// Window caps the tenant's own in-flight requests (<= 0 means bounded
	// only by the gateway's global window).
	Window int
	// Deadline bounds each request's enqueue-to-completion time (0 = none).
	// Requests still queued past it are dropped without running; requests
	// that complete past it report ErrDeadlineExceeded but still count
	// their latency.
	Deadline time.Duration
}

// Config parameterises a Gateway.
type Config struct {
	// Window is the global admission window: the maximum images in flight
	// on the backend across all tenants. Must be >= 1.
	Window int
	// Policy is PolicyFIFO (default) or PolicyWFQ.
	Policy string
}

// Result is the terminal outcome of one enqueued request.
type Result struct {
	Tenant string
	// LatencyMS is enqueue-to-completion wall time; 0 when the request
	// never reached the backend (queue-expired or gateway closed).
	LatencyMS float64
	Err       error
}

type request struct {
	tenant  int
	seq     uint64 // global enqueue order; the FIFO key
	enqueue time.Time
	res     chan Result // buffered(1); the caller's completion signal
}

// TenantSummary aggregates one tenant's outcomes since the gateway
// started. Latency statistics cover requests the backend actually served
// (including late ones); queue-expired requests count only in Expired.
type TenantSummary struct {
	Tenant    string
	Enqueued  int
	Completed int // served within deadline (or no deadline)
	Late      int // served, but past deadline
	Expired   int // dropped from the queue before admission
	Failed    int // backend error or gateway closed
	MeanLatMS float64
	P95LatMS  float64
	MaxLatMS  float64
}

// Gateway admits tenant requests into a Backend under a global window, a
// per-tenant window, an admission policy, and per-request deadlines.
type Gateway struct {
	be      Backend
	cfg     Config
	tenants []TenantConfig
	byName  map[string]int

	mu       sync.Mutex
	queues   []ring          // guarded by mu; per-tenant FIFO backlog deques
	heap     []int           // guarded by mu; admissible tenants, min-heap in policy order (sched.go)
	heapIdx  []int           // guarded by mu; tenant -> heap position, -1 = absent
	inflight int             // guarded by mu; requests on the backend
	tinfl    []int           // guarded by mu; per-tenant in-flight counts
	vserved  []float64       // guarded by mu; WFQ virtual service charged
	nextSeq  uint64          // guarded by mu; global enqueue order
	served   [][]float64     // guarded by mu; latencies (sec) per tenant
	counts   []TenantSummary // guarded by mu; running outcome counters
	scratch  []float64       // guarded by mu; Summary's reusable sort buffer
	closed   bool            // guarded by mu

	// deadlined lists the tenants with deadlines, immutable after New: the
	// expiry sweep visits only them.
	deadlined []int

	wake chan struct{} // buffered(1): kicks the scheduler
	done chan struct{}
	wg   sync.WaitGroup // scheduler + dispatched submits
}

// New starts a gateway over the backend. Tenant names must be unique and
// non-empty.
func New(be Backend, cfg Config, tenants []TenantConfig) (*Gateway, error) {
	g, err := newGateway(be, cfg, tenants)
	if err != nil {
		return nil, err
	}
	g.wg.Add(1)
	go g.schedule()
	return g, nil
}

// newGateway validates and builds the gateway state without starting the
// scheduler — the form the equivalence tests and benchmarks drive by hand.
func newGateway(be Backend, cfg Config, tenants []TenantConfig) (*Gateway, error) {
	if be == nil {
		return nil, fmt.Errorf("gateway: nil backend")
	}
	if cfg.Window < 1 {
		return nil, fmt.Errorf("gateway: window must be >= 1, got %d", cfg.Window)
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyFIFO
	}
	if cfg.Policy != PolicyFIFO && cfg.Policy != PolicyWFQ {
		return nil, fmt.Errorf("gateway: unknown policy %q (want %s|%s)", cfg.Policy, PolicyFIFO, PolicyWFQ)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("gateway: need at least one tenant")
	}
	g := &Gateway{
		be:      be,
		cfg:     cfg,
		tenants: append([]TenantConfig(nil), tenants...),
		byName:  make(map[string]int, len(tenants)),
		queues:  make([]ring, len(tenants)),
		heapIdx: make([]int, len(tenants)),
		tinfl:   make([]int, len(tenants)),
		vserved: make([]float64, len(tenants)),
		served:  make([][]float64, len(tenants)),
		counts:  make([]TenantSummary, len(tenants)),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	for i := range g.tenants {
		t := &g.tenants[i]
		if t.Name == "" {
			return nil, fmt.Errorf("gateway: tenant %d has no name", i)
		}
		if _, dup := g.byName[t.Name]; dup {
			return nil, fmt.Errorf("gateway: duplicate tenant %q", t.Name)
		}
		g.byName[t.Name] = i
		if t.Weight <= 0 {
			t.Weight = 1
		}
		if t.Window <= 0 {
			t.Window = cfg.Window
		}
		if t.Deadline > 0 {
			g.deadlined = append(g.deadlined, i)
		}
		g.heapIdx[i] = -1
		g.counts[i].Tenant = t.Name
	}
	return g, nil
}

// Enqueue queues one request for the named tenant and returns the channel
// its Result will be delivered on (buffered: the gateway never blocks on a
// slow caller).
func (g *Gateway) Enqueue(tenant string) (<-chan Result, error) {
	t, ok := g.byName[tenant]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	r := &request{tenant: t, enqueue: time.Now(), res: make(chan Result, 1)}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrClosed
	}
	r.seq = g.nextSeq
	g.nextSeq++
	g.queues[t].push(r)
	g.counts[t].Enqueued++
	g.heapSyncLocked(t)
	g.mu.Unlock()
	g.kick()
	return r.res, nil
}

func (g *Gateway) kick() {
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

func (g *Gateway) schedule() {
	defer g.wg.Done()
	for {
		select {
		case <-g.done:
			return
		case <-g.wake:
		}
		g.dispatchBatch()
	}
}

// dispatchBatch expires dead queued requests, then admits every currently
// admissible request in one critical section: a burst of completions (or
// enqueues) costs one lock acquisition and O(log n) heap work per
// admission, instead of a full tenant scan each. The admitted requests'
// backend submits are spawned after the lock drops.
func (g *Gateway) dispatchBatch() {
	now := time.Now()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.expireLocked(now)
	var admitted []*request
	for g.inflight < g.cfg.Window && len(g.heap) > 0 {
		t := g.heap[0]
		r := g.queues[t].pop()
		g.inflight++
		g.tinfl[t]++
		g.vserved[t] += 1 / g.tenants[t].Weight
		g.heapSyncLocked(t)
		admitted = append(admitted, r)
	}
	g.mu.Unlock()

	for _, r := range admitted {
		g.wg.Add(1)
		go g.serve(r)
	}
}

// expireLocked drops queued requests whose deadline already passed without
// spending backend capacity on them. Only tenants with deadlines are
// visited, and each tenant's expired requests form a prefix of its deque
// (one deadline per tenant and monotone enqueue times), so the sweep pops
// heads instead of filtering whole queues.
func (g *Gateway) expireLocked(now time.Time) {
	for _, t := range g.deadlined {
		d := g.tenants[t].Deadline
		q := &g.queues[t]
		expired := false
		for q.len() > 0 && now.Sub(q.front().enqueue) > d {
			r := q.pop()
			g.counts[t].Expired++
			r.res <- Result{Tenant: g.tenants[t].Name, Err: ErrDeadlineExceeded}
			expired = true
		}
		if expired {
			g.heapSyncLocked(t)
		}
	}
}

// serve runs one admitted request on the backend and delivers its Result.
func (g *Gateway) serve(r *request) {
	defer g.wg.Done()
	err := g.be.Submit()
	lat := time.Since(r.enqueue)
	t := r.tenant
	name := g.tenants[t].Name
	if err == nil && g.tenants[t].Deadline > 0 && lat > g.tenants[t].Deadline {
		err = ErrDeadlineExceeded
	}
	g.mu.Lock()
	g.inflight--
	g.tinfl[t]--
	if err == nil {
		g.counts[t].Completed++
	} else if errors.Is(err, ErrDeadlineExceeded) {
		g.counts[t].Late++
	} else {
		g.counts[t].Failed++
	}
	if err == nil || errors.Is(err, ErrDeadlineExceeded) {
		// The backend did serve it: its latency belongs in the
		// distribution whether or not it beat the deadline.
		g.served[t] = append(g.served[t], lat.Seconds())
	}
	g.heapSyncLocked(t) // the freed tenant-window slot may readmit t
	g.mu.Unlock()
	r.res <- Result{Tenant: name, LatencyMS: lat.Seconds() * 1e3, Err: err}
	g.kick()
}

// Summary returns per-tenant outcome counts and latency statistics, in
// tenant configuration order. It may be called while the gateway is live,
// and it is read-only with respect to the recorded latencies: each
// tenant's slice is copied into one reusable scratch buffer and sorted
// there, so repeated Summary calls never reorder (or reallocate per call)
// the per-tenant history a concurrent serve is appending to.
func (g *Gateway) Summary() []TenantSummary {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]TenantSummary, len(g.tenants))
	for t := range g.tenants {
		s := g.counts[t]
		if n := len(g.served[t]); n > 0 {
			g.scratch = append(g.scratch[:0], g.served[t]...)
			sort.Float64s(g.scratch)
			var sum float64
			for _, l := range g.scratch {
				sum += l
			}
			s.MeanLatMS = sum / float64(n) * 1e3
			s.P95LatMS = quantile(g.scratch, 0.95) * 1e3
			s.MaxLatMS = g.scratch[n-1] * 1e3
		}
		out[t] = s
	}
	return out
}

// quantile is the nearest-rank quantile over an ascending slice — the same
// rule sim uses for PipelineResult percentiles.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// Close stops admitting, fails every queued request with ErrClosed, and
// waits for in-flight backend submits to drain (they may still complete
// normally). Close does not close the backend.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.wg.Wait()
		return
	}
	g.closed = true
	var rejected []*request
	for t := range g.queues {
		q := &g.queues[t]
		g.counts[t].Failed += q.len()
		for q.len() > 0 {
			rejected = append(rejected, q.pop())
		}
		if g.heapIdx[t] >= 0 {
			g.heapRemoveLocked(t)
		}
	}
	g.mu.Unlock()
	close(g.done)
	for _, r := range rejected {
		r.res <- Result{Tenant: g.tenants[r.tenant].Name, Err: ErrClosed}
	}
	g.wg.Wait()
}
