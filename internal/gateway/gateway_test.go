package gateway

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// blockingBackend hands each Submit call to the test as a response channel:
// the test decides when and how each admitted request completes, which
// makes admission order observable one request at a time.
type blockingBackend struct {
	calls chan chan error
}

func newBlockingBackend() *blockingBackend {
	return &blockingBackend{calls: make(chan chan error, 64)}
}

func (b *blockingBackend) Submit() error {
	resp := make(chan error)
	b.calls <- resp
	return <-resp
}

// nopBackend completes every request instantly.
type nopBackend struct{}

func (nopBackend) Submit() error { return nil }

func recvCall(t *testing.T, b *blockingBackend) chan error {
	t.Helper()
	select {
	case resp := <-b.calls:
		return resp
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a backend Submit call")
		return nil
	}
}

func recvResult(t *testing.T, ch <-chan Result) Result {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a request result")
		return Result{}
	}
}

func noCall(t *testing.T, b *blockingBackend, why string) {
	t.Helper()
	select {
	case <-b.calls:
		t.Fatal(why)
	case <-time.After(50 * time.Millisecond):
	}
}

// admitFirst enqueues one request for the tenant and waits for the backend
// to see it, so subsequent enqueues land in a queue with a known occupant.
func admitFirst(t *testing.T, g *Gateway, b *blockingBackend, tenant string) (<-chan Result, chan error) {
	t.Helper()
	ch, err := g.Enqueue(tenant)
	if err != nil {
		t.Fatal(err)
	}
	return ch, recvCall(t, b)
}

// runOrder releases the held head request, then serves the rest one at a
// time, asserting each completion lands on the expected tenant's channel —
// with a window of 1 the completion order IS the admission order.
func runOrder(t *testing.T, b *blockingBackend, resp chan error, expect []struct {
	name string
	ch   <-chan Result
}) {
	t.Helper()
	for i, e := range expect {
		resp <- nil
		r := recvResult(t, e.ch)
		if r.Err != nil || r.Tenant != e.name {
			t.Fatalf("completion %d: got tenant %q err %v, want %q", i, r.Tenant, r.Err, e.name)
		}
		if i < len(expect)-1 {
			resp = recvCall(t, b)
		}
	}
}

func TestGatewayFIFOServesEnqueueOrder(t *testing.T) {
	be := newBlockingBackend()
	g, err := New(be, Config{Window: 1, Policy: PolicyFIFO}, []TenantConfig{
		{Name: "heavy"}, {Name: "small", Weight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	h0, resp := admitFirst(t, g, be, "heavy")
	var expect []struct {
		name string
		ch   <-chan Result
	}
	expect = append(expect, struct {
		name string
		ch   <-chan Result
	}{"heavy", h0})
	for _, name := range []string{"heavy", "heavy", "small", "small"} {
		ch, err := g.Enqueue(name)
		if err != nil {
			t.Fatal(err)
		}
		expect = append(expect, struct {
			name string
			ch   <-chan Result
		}{name, ch})
	}
	// FIFO: the heavy burst runs out before the small tenant is touched.
	runOrder(t, be, resp, expect)
}

func TestGatewayWFQInterleavesByWeight(t *testing.T) {
	be := newBlockingBackend()
	g, err := New(be, Config{Window: 1, Policy: PolicyWFQ}, []TenantConfig{
		{Name: "heavy", Weight: 1}, {Name: "small", Weight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	h0, resp := admitFirst(t, g, be, "heavy")
	chans := map[string][]<-chan Result{}
	for _, name := range []string{"heavy", "heavy", "small", "small"} {
		ch, err := g.Enqueue(name)
		if err != nil {
			t.Fatal(err)
		}
		chans[name] = append(chans[name], ch)
	}
	// WFQ with the heavy head already charged 1 full unit: the small
	// tenant's cheap (1/4-unit) requests both jump the remaining heavy
	// backlog, then the heavy burst resumes — the same pick sequence
	// sim.MultiStreamOpts computes for these weights.
	expect := []struct {
		name string
		ch   <-chan Result
	}{
		{"heavy", h0},
		{"small", chans["small"][0]},
		{"small", chans["small"][1]},
		{"heavy", chans["heavy"][0]},
		{"heavy", chans["heavy"][1]},
	}
	runOrder(t, be, resp, expect)
}

func TestGatewayPerTenantWindow(t *testing.T) {
	be := newBlockingBackend()
	g, err := New(be, Config{Window: 4, Policy: PolicyFIFO}, []TenantConfig{
		{Name: "a", Window: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var chs []<-chan Result
	for i := 0; i < 3; i++ {
		ch, err := g.Enqueue("a")
		if err != nil {
			t.Fatal(err)
		}
		chs = append(chs, ch)
	}
	resp := recvCall(t, be)
	// Global window 4 has room, but the tenant's own window of 1 must hold
	// the other two back until the head completes.
	noCall(t, be, "second request admitted past the tenant window")
	for i := 0; i < 3; i++ {
		resp <- nil
		if r := recvResult(t, chs[i]); r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if i < 2 {
			resp = recvCall(t, be)
		}
	}
}

func TestGatewayDeadlines(t *testing.T) {
	be := newBlockingBackend()
	g, err := New(be, Config{Window: 1, Policy: PolicyFIFO}, []TenantConfig{
		{Name: "d", Deadline: 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	r0, resp := admitFirst(t, g, be, "d")
	r1, err := g.Enqueue("d")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	resp <- nil
	// The served-but-slow head reports late WITH its measured latency...
	res0 := recvResult(t, r0)
	if !errors.Is(res0.Err, ErrDeadlineExceeded) || res0.LatencyMS <= 0 {
		t.Errorf("late request: got %+v, want ErrDeadlineExceeded with latency", res0)
	}
	// ...and the queued request expires without ever reaching the backend.
	res1 := recvResult(t, r1)
	if !errors.Is(res1.Err, ErrDeadlineExceeded) || res1.LatencyMS != 0 {
		t.Errorf("expired request: got %+v, want ErrDeadlineExceeded with zero latency", res1)
	}
	noCall(t, be, "queue-expired request reached the backend")
	s := g.Summary()[0]
	if s.Enqueued != 2 || s.Late != 1 || s.Expired != 1 || s.Completed != 0 {
		t.Errorf("summary %+v, want enqueued=2 late=1 expired=1", s)
	}
	if s.MeanLatMS <= 0 || s.P95LatMS <= 0 {
		t.Errorf("the late (served) request's latency must enter the distribution: %+v", s)
	}
}

func TestGatewayCloseFailsQueued(t *testing.T) {
	be := newBlockingBackend()
	g, err := New(be, Config{Window: 1, Policy: PolicyFIFO}, []TenantConfig{{Name: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	r0, resp := admitFirst(t, g, be, "a")
	r1, err := g.Enqueue("a")
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() { g.Close(); close(closed) }()
	// The queued request is rejected immediately; the in-flight one is
	// allowed to finish and Close waits for it.
	if r := recvResult(t, r1); !errors.Is(r.Err, ErrClosed) {
		t.Errorf("queued request on close: err %v, want ErrClosed", r.Err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a backend submit was still in flight")
	case <-time.After(30 * time.Millisecond):
	}
	resp <- nil
	if r := recvResult(t, r0); r.Err != nil {
		t.Errorf("in-flight request must complete normally, got %v", r.Err)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned")
	}
	if _, err := g.Enqueue("a"); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close Enqueue err %v, want ErrClosed", err)
	}
	s := g.Summary()[0]
	if s.Completed != 1 || s.Failed != 1 {
		t.Errorf("summary %+v, want completed=1 failed=1", s)
	}
}

func TestGatewayBackendErrorCountsFailed(t *testing.T) {
	be := newBlockingBackend()
	g, err := New(be, Config{Window: 1}, []TenantConfig{{Name: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	r0, resp := admitFirst(t, g, be, "a")
	boom := fmt.Errorf("backend exploded")
	resp <- boom
	if r := recvResult(t, r0); !errors.Is(r.Err, boom) {
		t.Errorf("result err %v, want the backend error", r.Err)
	}
	s := g.Summary()[0]
	if s.Failed != 1 || s.Completed != 0 || s.MeanLatMS != 0 {
		t.Errorf("summary %+v, want failed=1 and no latency recorded", s)
	}
}

func TestGatewayValidation(t *testing.T) {
	tenant := []TenantConfig{{Name: "a"}}
	cases := []struct {
		name    string
		be      Backend
		cfg     Config
		tenants []TenantConfig
	}{
		{"nil backend", nil, Config{Window: 1}, tenant},
		{"bad window", nopBackend{}, Config{Window: 0}, tenant},
		{"bad policy", nopBackend{}, Config{Window: 1, Policy: "lifo"}, tenant},
		{"no tenants", nopBackend{}, Config{Window: 1}, nil},
		{"unnamed tenant", nopBackend{}, Config{Window: 1}, []TenantConfig{{}}},
		{"duplicate tenant", nopBackend{}, Config{Window: 1}, []TenantConfig{{Name: "a"}, {Name: "a"}}},
	}
	for _, c := range cases {
		if _, err := New(c.be, c.cfg, c.tenants); err == nil {
			t.Errorf("%s: New must fail", c.name)
		}
	}
	g, err := New(nopBackend{}, Config{Window: 1}, tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Enqueue("nope"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("unknown tenant err %v, want ErrUnknownTenant", err)
	}
}

// TestGatewayQuantileMatchesSim pins the nearest-rank rule to the sim's:
// same 1-based rank arithmetic, so per-tenant p95s are comparable across
// the offline sweep and the live Summary.
func TestGatewayQuantileMatchesSim(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 5}, {0.95, 10}, {0.05, 1}, {1.0, 10},
	}
	for _, c := range cases {
		if got := quantile(sorted, c.q); got != c.want {
			t.Errorf("quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.95); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	if got := quantile([]float64{7}, 0.95); got != 7 {
		t.Errorf("singleton quantile = %g, want 7", got)
	}
}

// BenchmarkGatewayAdmission measures one request's full trip through the
// gateway — enqueue, schedule, pick, serve, result delivery — over an
// instant backend.
func BenchmarkGatewayAdmission(b *testing.B) {
	g, err := New(nopBackend{}, Config{Window: 8, Policy: PolicyWFQ}, []TenantConfig{
		{Name: "heavy", Weight: 1}, {Name: "small", Weight: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := g.Enqueue("heavy")
		if err != nil {
			b.Fatal(err)
		}
		if r := <-ch; r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}
