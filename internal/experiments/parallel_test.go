package experiments

import (
	"reflect"
	"testing"

	"distredge/internal/cnn"
)

// TestRunCasesParallelDeterministic asserts the harness acceptance
// contract: the case×method grid returns byte-identical rows for any
// worker count.
func TestRunCasesParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("grid harness in short mode")
	}
	m := cnn.VGG16()
	b := Tiny()
	specs := []Spec{
		DeviceGroups()[1].Spec(m, 50, b.Seed),
		DeviceGroups()[2].Spec(m, 300, b.Seed),
	}
	b.Parallel = 1
	serial, err := RunCases(specs, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 2*len(MethodOrder()) {
		t.Fatalf("rows = %d, want %d", len(serial), 2*len(MethodOrder()))
	}
	for _, workers := range []int{3, 8, -1} {
		b.Parallel = workers
		par, err := RunCases(specs, b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("parallel=%d rows differ from serial run", workers)
		}
	}
}

// TestFig05ParallelDeterministic covers the α-sweep grid the same way.
func TestFig05ParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("grid harness in short mode")
	}
	b := Tiny()
	b.Parallel = 1
	serial, err := Fig05AlphaSweep(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Parallel = 4
	par, err := Fig05AlphaSweep(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel α-sweep rows differ from serial run")
	}
}

// TestWorkers pins the Parallel-to-workers mapping.
func TestWorkers(t *testing.T) {
	for _, tc := range []struct{ parallel, min int }{
		{0, 1}, {1, 1}, {7, 7},
	} {
		b := Budget{Parallel: tc.parallel}
		if got := b.Workers(); got != tc.min {
			t.Errorf("Workers(%d) = %d, want %d", tc.parallel, got, tc.min)
		}
	}
	if got := (Budget{Parallel: -1}).Workers(); got < 1 {
		t.Errorf("Workers(-1) = %d, want >= 1", got)
	}
}
