// Package experiments reproduces the paper's evaluation (Section V): the
// device/network groups of Tables I-III and one harness per figure
// (Fig. 4-15), each returning typed rows that cmd/distbench renders and
// EXPERIMENTS.md records.
package experiments

import (
	"fmt"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
)

// Spec fully describes one experimental case: a model, a fleet of devices
// and their link bandwidths.
type Spec struct {
	Name           string
	Model          *cnn.Model
	Types          []device.Type
	BandwidthsMbps []float64
	TraceMinutes   int
	Seed           int64
}

// Env materialises the spec into a simulation environment with stable
// traces (Fig. 4 regime).
func (s Spec) Env() *sim.Env {
	minutes := s.TraceMinutes
	if minutes == 0 {
		minutes = 10
	}
	return &sim.Env{
		Model:   s.Model,
		Devices: device.AsModels(device.Fleet(s.Types...)),
		Net:     network.NewStable(s.BandwidthsMbps, minutes, s.Seed),
	}
}

// uniform returns n copies of v.
func uniform(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// DeviceGroup is one row of Table I: a heterogeneous device-type mix whose
// links all share one bandwidth (set per experiment).
type DeviceGroup struct {
	Name  string
	Types []device.Type
}

// DeviceGroups returns Table I (Groups DA, DB, DC).
func DeviceGroups() []DeviceGroup {
	return []DeviceGroup{
		{"DA", []device.Type{device.TX2, device.TX2, device.Nano, device.Nano}},
		{"DB", []device.Type{device.Xavier, device.Xavier, device.Nano, device.Nano}},
		{"DC", []device.Type{device.Xavier, device.TX2, device.Nano, device.Pi3}},
	}
}

// Spec builds the case for this group at one shared bandwidth.
func (g DeviceGroup) Spec(m *cnn.Model, bwMbps float64, seed int64) Spec {
	return Spec{
		Name:           fmt.Sprintf("%s-%gMbps", g.Name, bwMbps),
		Model:          m,
		Types:          g.Types,
		BandwidthsMbps: uniform(bwMbps, len(g.Types)),
		Seed:           seed,
	}
}

// NetworkGroup is one row of Table II: a heterogeneous bandwidth mix for a
// homogeneous device fleet (type set per experiment).
type NetworkGroup struct {
	Name           string
	BandwidthsMbps []float64
}

// NetworkGroups returns Table II (Groups NA-ND).
func NetworkGroups() []NetworkGroup {
	return []NetworkGroup{
		{"NA", []float64{50, 50, 200, 200}},
		{"NB", []float64{100, 100, 200, 200}},
		{"NC", []float64{200, 200, 300, 300}},
		{"ND", []float64{50, 100, 200, 300}},
	}
}

// Spec builds the case for this group with a homogeneous device type.
func (g NetworkGroup) Spec(m *cnn.Model, t device.Type, seed int64) Spec {
	types := make([]device.Type, len(g.BandwidthsMbps))
	for i := range types {
		types[i] = t
	}
	return Spec{
		Name:           fmt.Sprintf("%s-%s", g.Name, t),
		Model:          m,
		Types:          types,
		BandwidthsMbps: g.BandwidthsMbps,
		Seed:           seed,
	}
}

// LargeScaleCase is one row of Table III: 16 devices given as four
// (bandwidth, type) quadruplets repeated four times.
type LargeScaleCase struct {
	Name           string
	Types          []device.Type
	BandwidthsMbps []float64
}

// LargeScaleCases returns Table III (Cases LA-LD).
func LargeScaleCases() []LargeScaleCase {
	quad := func(pairs [4]struct {
		bw float64
		t  device.Type
	}) (types []device.Type, bws []float64) {
		for rep := 0; rep < 4; rep++ {
			for _, p := range pairs {
				types = append(types, p.t)
				bws = append(bws, p.bw)
			}
		}
		return
	}
	type pair = struct {
		bw float64
		t  device.Type
	}
	la, laBW := quad([4]pair{{300, device.Nano}, {200, device.Nano}, {100, device.Nano}, {50, device.Nano}})
	lb, lbBW := quad([4]pair{{300, device.Pi3}, {200, device.Nano}, {100, device.TX2}, {50, device.Xavier}})
	lc, lcBW := quad([4]pair{{200, device.Pi3}, {200, device.Nano}, {200, device.TX2}, {200, device.Xavier}})
	ld, ldBW := quad([4]pair{{50, device.Pi3}, {100, device.Nano}, {200, device.TX2}, {300, device.Xavier}})
	return []LargeScaleCase{
		{"LA", la, laBW},
		{"LB", lb, lbBW},
		{"LC", lc, lcBW},
		{"LD", ld, ldBW},
	}
}

// Spec builds the 16-device case.
func (c LargeScaleCase) Spec(m *cnn.Model, seed int64) Spec {
	return Spec{
		Name:           c.Name,
		Model:          m,
		Types:          c.Types,
		BandwidthsMbps: c.BandwidthsMbps,
		Seed:           seed,
	}
}
