package experiments

import (
	"fmt"
	"math"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
	"distredge/internal/splitter"
	"distredge/internal/strategy"
)

// Planner labels for the objective sweep rows.
const (
	PlannerLatency = "latency"
	PlannerIPS     = "ips"
)

// PlanObjective plans a strategy for the given objective. The latency
// default (nil or sim.LatencyObjective) is exactly PlanDistrEdge — the
// paper's LC-PSS + OSDS pipeline, bit-identical to the pre-objective
// planner. For other objectives the OSDS search runs with
// Config.Objective set, and two extensions matter for throughput:
//
//   - besides the LC-PSS boundaries the search also tries the pool-merged
//     stage boundaries (StageBoundaries): a stage layout needs roughly one
//     volume per provider before an admission window can fill, and LC-PSS
//     — which scores sequential latency — often merges to fewer;
//   - the noiseless StageStrategy anchor of each boundary set is scored
//     directly (warm-start episodes add exploration noise, so the exact
//     layout may never appear as an episode).
//
// Every candidate is scored by obj.Score at trace time 0 and the best one
// is returned.
func PlanObjective(env *sim.Env, b Budget, alpha float64, obj sim.Objective) (*strategy.Strategy, error) {
	if sim.IsLatencyObjective(obj) {
		return PlanDistrEdge(env, b, alpha)
	}
	n := env.NumProviders()
	lcp, err := lcpssSearch(env, b, alpha)
	if err != nil {
		return nil, fmt.Errorf("experiments: LC-PSS: %w", err)
	}
	boundarySets := [][]int{lcp}
	if sb := StageBoundaries(env.Model, n); !equalBoundaries(sb, lcp) {
		boundarySets = append(boundarySets, sb)
	}
	var best *strategy.Strategy
	bestScore := math.Inf(1)
	consider := func(s *strategy.Strategy) error {
		sc, err := obj.Score(env, s, 0)
		if err != nil {
			return err
		}
		if sc < bestScore {
			best, bestScore = s, sc
		}
		return nil
	}
	for _, boundaries := range boundarySets {
		cfg := osdsConfig(b, n, b.Seed)
		cfg.Objective = obj
		res, err := splitter.Search(env, boundaries, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: OSDS (%s): %w", obj.Name(), err)
		}
		if err := consider(res.Strategy); err != nil {
			return nil, err
		}
		if err := consider(StageStrategy(env.Model, boundaries, n)); err != nil {
			return nil, err
		}
	}
	return best, nil
}

// PlanObjectiveInit is PlanObjective with a warm-start seed: init is a
// known-good strategy for this exact fleet shape (same provider count) that
// the search explores outward from. The seed's splits feed the splitter's
// Config.InitSplits (scheduled as the first warm episode, so the
// best-strategy tracker is anchored from episode 0), the seed's own volume
// boundaries join the boundary sets searched, and the seed itself is scored
// as a candidate — so the returned plan never scores worse than the seed
// under the requested objective. Because the seed anchors the search,
// warm-started searches run on half the episode budget: that is where the
// plan-cache's warm-start throughput win comes from (measured by
// BenchmarkPlannerService and the `distbench -fig planner` sweep). A nil
// init is exactly PlanObjective.
func PlanObjectiveInit(env *sim.Env, b Budget, alpha float64, obj sim.Objective, init *strategy.Strategy) (*strategy.Strategy, error) {
	if init == nil {
		return PlanObjective(env, b, alpha, obj)
	}
	n := env.NumProviders()
	if err := init.Validate(env.Model, n); err != nil {
		return nil, fmt.Errorf("experiments: warm-start seed: %w", err)
	}
	lcp, err := lcpssSearch(env, b, alpha)
	if err != nil {
		return nil, fmt.Errorf("experiments: LC-PSS: %w", err)
	}
	boundarySets := [][]int{lcp}
	if !equalBoundaries(init.Boundaries, lcp) {
		boundarySets = append(boundarySets, init.Boundaries)
	}
	if !sim.IsLatencyObjective(obj) {
		sb := StageBoundaries(env.Model, n)
		fresh := true
		for _, bs := range boundarySets {
			if equalBoundaries(bs, sb) {
				fresh = false
			}
		}
		if fresh {
			boundarySets = append(boundarySets, sb)
		}
	}
	scorer := sim.DefaultObjective(obj)
	var best *strategy.Strategy
	bestScore := math.Inf(1)
	consider := func(s *strategy.Strategy) error {
		sc, err := scorer.Score(env, s, 0)
		if err != nil {
			return err
		}
		if sc < bestScore {
			best, bestScore = s, sc
		}
		return nil
	}
	if err := consider(init); err != nil {
		return nil, err
	}
	wb := b
	wb.Episodes = (b.Episodes + 1) / 2
	for _, boundaries := range boundarySets {
		cfg := osdsConfig(wb, n, wb.Seed)
		cfg.Objective = obj
		cfg.InitSplits = init.Splits
		res, err := splitter.Search(env, boundaries, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: warm OSDS (%s): %w", scorer.Name(), err)
		}
		if err := consider(res.Strategy); err != nil {
			return nil, err
		}
		if !sim.IsLatencyObjective(obj) {
			if err := consider(StageStrategy(env.Model, boundaries, n)); err != nil {
				return nil, err
			}
		}
	}
	return best, nil
}

func equalBoundaries(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ObjectiveRow is one cell of the planning-objective sweep: a case's
// strategy — planned for sequential latency or for sustained IPS — served
// with the given admission window.
type ObjectiveRow struct {
	Case      string
	Planner   string // PlannerLatency or PlannerIPS
	Window    int
	IPS       float64
	SteadyIPS float64
	MeanLatMS float64
	P95LatMS  float64
}

// objectiveCase is one case of the objective sweep. Cases carry an env
// constructor rather than a Spec because the sweep covers both trace
// regimes: Spec materialises stable traces only, while the dynamic case
// mirrors WithDynamicNetwork's highly fluctuating 40-100 Mbps links.
type objectiveCase struct {
	name string
	env  func() *sim.Env
}

func objectiveCases(seed int64) []objectiveCase {
	stable := DeviceGroups()[1].Spec(cnn.VGG16(), 200, seed)
	return []objectiveCase{
		{stable.Name, stable.Env},
		{"NanoX4-dyn40-100-yolov2", func() *sim.Env {
			devs := device.Fleet(device.Nano, device.Nano, device.Nano, device.Nano)
			net := &network.Network{Requester: network.DefaultLink(network.Stable(300, 60, seed+997))}
			for i := range devs {
				net.Providers = append(net.Providers, network.DefaultLink(network.Dynamic(40, 100, 60, seed+int64(i)*31)))
			}
			return &sim.Env{Model: cnn.YOLOv2(), Devices: device.AsModels(devs), Net: net}
		}},
	}
}

// FigObjective compares the latency-optimal planner against the
// throughput-optimal (IPS) planner across admission windows, on a stable
// and a highly dynamic trace case: each planner's strategy is streamed
// with every window and reported as sustained/steady IPS plus the
// latency distribution. The IPS planner trains against
// sim.ThroughputObjective at objWindow (default 4). Cases run on the
// budget's worker pool; rows are deterministic for any worker count.
func FigObjective(b Budget, windows []int, objWindow int) ([]ObjectiveRow, error) {
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	if objWindow <= 0 {
		objWindow = 4
	}
	cases := objectiveCases(b.Seed)
	perCase := make([][]ObjectiveRow, len(cases))
	err := runIndexed(len(cases), b.Workers(), func(ci int) error {
		c := cases[ci]
		env := c.env()
		planners := []struct {
			name string
			obj  sim.Objective
		}{
			{PlannerLatency, nil},
			{PlannerIPS, sim.ThroughputObjective{Window: objWindow}},
		}
		var rows []ObjectiveRow
		for _, pl := range planners {
			strat, err := PlanObjective(env, b, 0.75, pl.obj)
			if err != nil {
				return fmt.Errorf("experiments: objective sweep %s/%s: %w", c.name, pl.name, err)
			}
			for _, w := range windows {
				res, err := env.PipelineStream(strat, b.StreamImages, w, 0)
				if err != nil {
					return fmt.Errorf("experiments: objective sweep %s/%s: %w", c.name, pl.name, err)
				}
				rows = append(rows, ObjectiveRow{
					Case:      c.name,
					Planner:   pl.name,
					Window:    w,
					IPS:       res.IPS,
					SteadyIPS: res.SteadyIPS,
					MeanLatMS: res.MeanLatMS,
					P95LatMS:  res.P95LatMS,
				})
			}
		}
		perCase[ci] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []ObjectiveRow
	for _, rows := range perCase {
		out = append(out, rows...)
	}
	return out, nil
}
