package experiments

import (
	"reflect"
	"testing"
)

// TestFigChurnRecovery runs the recovery sweep at tiny budget and checks
// the structural invariants: full grid, recovery strictly beating
// truncation on goodput, and a positive time-to-recover whenever images
// were still in flight at the failure.
func TestFigChurnRecovery(t *testing.T) {
	b := Tiny()
	windows := []int{1, 4}
	fracs := []float64{0.5}
	rows, err := FigChurnRecovery(b, windows, fracs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(windows)*len(fracs) {
		t.Fatalf("%d rows, want %d", len(rows), 2*len(windows)*len(fracs))
	}
	for _, r := range rows {
		if r.BaseIPS <= 0 || r.FailAtSec <= 0 {
			t.Errorf("%s w=%d: degenerate row %+v", r.Case, r.Window, r)
		}
		if r.GoodputOn <= r.GoodputOff {
			t.Errorf("%s w=%d f=%.2f: recovery goodput %.3f not above truncation %.3f",
				r.Case, r.Window, r.FailFrac, r.GoodputOn, r.GoodputOff)
		}
		if r.CompletedOff >= b.StreamImages {
			t.Errorf("%s w=%d: truncated run lost nothing (%d images)", r.Case, r.Window, r.CompletedOff)
		}
		if r.RecoverSec <= 0 {
			t.Errorf("%s w=%d: no time-to-recover recorded", r.Case, r.Window)
		}
	}
}

// TestFigChurnRecoveryDeterministicAcrossWorkers pins the worker-pool
// determinism contract for the new grid.
func TestFigChurnRecoveryDeterministicAcrossWorkers(t *testing.T) {
	b := Tiny()
	windows := []int{2}
	fracs := []float64{0.5}
	serial := b
	serial.Parallel = 1
	parallel := b
	parallel.Parallel = 4
	a, err := FigChurnRecovery(serial, windows, fracs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FigChurnRecovery(parallel, windows, fracs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("rows differ across worker counts:\nserial:   %+v\nparallel: %+v", a, c)
	}
}
