package experiments

import (
	"math"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
)

func TestProfiledEnvForms(t *testing.T) {
	env := DeviceGroups()[1].Spec(cnn.VGG16(), 100, 1).Env()
	pr := device.Profiler{Repeats: 5, Noise: 0.02, Seed: 1}
	for _, form := range ProfileForms() {
		view, err := ProfiledEnv(env, pr, form)
		if err != nil {
			t.Fatalf("%s: %v", form, err)
		}
		if len(view.Devices) != len(env.Devices) {
			t.Fatalf("%s: device count changed", form)
		}
		// The profiled view must predict latencies in the right ballpark
		// for a mid-size layer (linear regression is the loosest form).
		l := env.Model.SplittableLayers()[4]
		truth := env.Devices[0].ComputeLatency(l, 50)
		got := view.Devices[0].ComputeLatency(l, 50)
		tol := 0.35
		if form == FormLinear {
			tol = 3.0 // a single global line across all layers is crude
		}
		if math.Abs(got-truth) > tol*truth {
			t.Errorf("%s: predicted %g vs truth %g", form, got, truth)
		}
	}
	if _, err := ProfiledEnv(env, pr, ProfileForm("psychic")); err == nil {
		t.Error("unknown form must error")
	}
}

func TestPlanOnProfilesTableClosesToTruth(t *testing.T) {
	// Planning on an accurate (table) profile must execute on the true
	// hardware at nearly the predicted throughput, and the executed result
	// must stay competitive with planning directly on the truth.
	b := Tiny()
	env := DeviceGroups()[1].Spec(cnn.VGG16(), 50, 1).Env()
	res, err := PlanOnProfiles(env, b, FormTable)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutedIPS <= 0 || res.PlannedIPS <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	gap := math.Abs(res.PlannedIPS-res.ExecutedIPS) / res.ExecutedIPS
	if gap > 0.10 {
		t.Errorf("table-profile prediction gap %.0f%% too large (planned %.2f, executed %.2f)",
			gap*100, res.PlannedIPS, res.ExecutedIPS)
	}

	direct, err := PlanDistrEdge(env, b, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	directRes, err := env.Stream(direct, b.StreamImages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutedIPS < 0.85*directRes.IPS {
		t.Errorf("profile-planned %.2f IPS far below truth-planned %.2f IPS", res.ExecutedIPS, directRes.IPS)
	}
}

func TestPlanOnProfilesLinearIsWorstForm(t *testing.T) {
	// The linear profile form embodies exactly the assumption the paper
	// attacks; planning on it must not beat planning on the table form.
	if testing.Short() {
		t.Skip("profile-form sweep in short mode")
	}
	b := Tiny()
	env := DeviceGroups()[1].Spec(cnn.VGG16(), 50, 1).Env()
	table, err := PlanOnProfiles(env, b, FormTable)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := PlanOnProfiles(env, b, FormLinear)
	if err != nil {
		t.Fatal(err)
	}
	if linear.ExecutedIPS > table.ExecutedIPS*1.1 {
		t.Errorf("linear-profile planning (%.2f) beat table planning (%.2f)",
			linear.ExecutedIPS, table.ExecutedIPS)
	}
}
