package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"distredge/internal/baselines"
	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/partition"
	"distredge/internal/sim"
	"distredge/internal/splitter"
)

// ---------------------------------------------------------------- Fig. 4

// TraceRow summarises one throughput trace (Fig. 4 / Fig. 12).
type TraceRow struct {
	Name                 string
	MeanMbps             float64
	MinMbps, MaxMbps     float64
	StdMbps              float64
	DurationMin          float64
	CoefficientVariation float64
}

func traceRow(name string, tr *network.Trace) TraceRow {
	mean := tr.Mean()
	lo, hi := math.Inf(1), math.Inf(-1)
	var sq float64
	for _, v := range tr.Mbps {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		sq += (v - mean) * (v - mean)
	}
	std := math.Sqrt(sq / float64(len(tr.Mbps)))
	return TraceRow{
		Name: name, MeanMbps: mean, MinMbps: lo, MaxMbps: hi,
		StdMbps: std, DurationMin: tr.Duration() / 60,
		CoefficientVariation: std / mean,
	}
}

// Fig04StableTraces regenerates the Fig. 4 traces: stable WiFi at
// {50,100,200,300} Mbps over 60 minutes.
func Fig04StableTraces(seed int64) []TraceRow {
	rows := make([]TraceRow, 0, 4)
	for _, bw := range []float64{50, 100, 200, 300} {
		tr := network.Stable(bw, 60, seed+int64(bw))
		rows = append(rows, traceRow(fmt.Sprintf("%gMbps", bw), tr))
	}
	return rows
}

// ---------------------------------------------------------------- Fig. 5

// AlphaRow is one bar of Fig. 5: DistrEdge IPS with a given LC-PSS α.
type AlphaRow struct {
	Case    string
	Alpha   float64
	Volumes int
	IPS     float64
}

// fig5Specs builds the four environment families of Fig. 5(a)-(d).
func fig5Specs(seed int64) []Spec {
	m := cnn.VGG16()
	specs := []Spec{}
	// (a) four homogeneous Nanos, bandwidth sweep.
	for _, bw := range []float64{50, 100, 200, 300} {
		specs = append(specs, Spec{
			Name:           fmt.Sprintf("homog-%gMbps", bw),
			Model:          m,
			Types:          []device.Type{device.Nano, device.Nano, device.Nano, device.Nano},
			BandwidthsMbps: uniform(bw, 4), Seed: seed,
		})
	}
	// (b) heterogeneous devices: Group DB at 200 Mbps.
	specs = append(specs, DeviceGroups()[1].Spec(m, 200, seed))
	// (c) heterogeneous bandwidths: Group NA with Nanos.
	specs = append(specs, NetworkGroups()[0].Spec(m, device.Nano, seed))
	// (d) large scale: LB, LC, LD.
	for _, c := range LargeScaleCases()[1:] {
		specs = append(specs, c.Spec(m, seed))
	}
	return specs
}

// Fig05AlphaSweep regenerates Fig. 5: DistrEdge IPS for
// α ∈ {0, 0.25, 0.5, 0.75, 1} across the four environment families.
// The paper finds α=0.75 best everywhere and the extremes poor. The
// case×α grid runs on the budget's worker pool; each cell rebuilds its
// environment from the spec, so rows are identical for any worker count.
func Fig05AlphaSweep(b Budget, cases int) ([]AlphaRow, error) {
	specs := fig5Specs(b.Seed)
	if cases > 0 && cases < len(specs) {
		specs = specs[:cases]
	}
	alphas := []float64{0, 0.25, 0.5, 0.75, 1}
	rows := make([]AlphaRow, len(specs)*len(alphas))
	err := runIndexed(len(rows), b.Workers(), func(i int) error {
		spec := specs[i/len(alphas)]
		alpha := alphas[i%len(alphas)]
		env := spec.Env()
		boundaries, err := partition.Search(env.Model, partition.Config{
			Alpha:           alpha,
			NumRandomSplits: b.RandomSplits,
			Providers:       env.NumProviders(),
			Seed:            b.Seed,
		})
		if err != nil {
			return err
		}
		res, err := splitter.Search(env, boundaries, osdsConfig(b, env.NumProviders(), b.Seed))
		if err != nil {
			return err
		}
		stream, err := env.Stream(res.Strategy, b.StreamImages, 0)
		if err != nil {
			return err
		}
		rows[i] = AlphaRow{
			Case: spec.Name, Alpha: alpha,
			Volumes: len(boundaries) - 1, IPS: stream.IPS,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig. 6

// RrsRow is one group of Fig. 6: the IPS spread across LC-PSS repetitions
// at a given |R^r_s|.
type RrsRow struct {
	Case    string
	Rrs     int
	Reps    int
	MinIPS  float64
	MeanIPS float64
	MaxIPS  float64
}

// Fig06RrsSweep regenerates Fig. 6: repeat LC-PSS with different random
// split-decision draws and measure the IPS spread; the paper finds the
// spread collapses for |R^r_s| >= 100. The case×|Rrs| grid runs on the
// budget's worker pool; within one cell, OSDS results are cached per
// distinct partition scheme (the OSDS seed does not depend on the rep, so
// cached and recomputed values are identical).
func Fig06RrsSweep(b Budget, reps int) ([]RrsRow, error) {
	if reps <= 0 {
		reps = 10
	}
	m := cnn.VGG16()
	cases := []Spec{
		DeviceGroups()[1].Spec(m, 50, b.Seed),           // (a) DB, 50 Mbps
		NetworkGroups()[0].Spec(m, device.Nano, b.Seed), // (b) NA, Nano
	}
	rrsValues := []int{25, 50, 75, 100, 125, 150}
	// One OSDS-result memo per case, shared by that case's |Rrs| cells:
	// the same partition scheme recurs across rrs values (that collapse is
	// the figure's point) and the memoized IPS equals the recomputed one,
	// so sharing preserves byte-identical rows while deduplicating the
	// expensive searches.
	caches := make([]struct {
		sync.Mutex
		m map[string]float64
	}, len(cases))
	for i := range caches {
		caches[i].m = map[string]float64{}
	}
	rows := make([]RrsRow, len(cases)*len(rrsValues))
	err := runIndexed(len(rows), b.Workers(), func(i int) error {
		spec := cases[i/len(rrsValues)]
		cache := &caches[i/len(rrsValues)]
		rrs := rrsValues[i%len(rrsValues)]
		env := spec.Env()
		minI, maxI, sum := math.Inf(1), math.Inf(-1), 0.0
		for rep := 0; rep < reps; rep++ {
			boundaries, err := partition.Search(env.Model, partition.Config{
				Alpha:           0.75,
				NumRandomSplits: rrs,
				Providers:       env.NumProviders(),
				Seed:            b.Seed + int64(1000*rep) + int64(rrs),
			})
			if err != nil {
				return err
			}
			key := fmt.Sprint(boundaries)
			cache.Lock()
			ips, ok := cache.m[key]
			cache.Unlock()
			if !ok {
				// Computed outside the lock: concurrent cells may race to
				// fill the same key, but the value is deterministic so the
				// duplicate work is benign.
				res, err := splitter.Search(env, boundaries, osdsConfig(b, env.NumProviders(), b.Seed))
				if err != nil {
					return err
				}
				stream, err := env.Stream(res.Strategy, b.StreamImages, 0)
				if err != nil {
					return err
				}
				ips = stream.IPS
				cache.Lock()
				cache.m[key] = ips
				cache.Unlock()
			}
			minI = math.Min(minI, ips)
			maxI = math.Max(maxI, ips)
			sum += ips
		}
		rows[i] = RrsRow{
			Case: spec.Name, Rrs: rrs, Reps: reps,
			MinIPS: minI, MeanIPS: sum / float64(reps), MaxIPS: maxI,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ------------------------------------------------------- Fig. 7 / 8 / 9

// Fig07HeterogeneousDevices regenerates Fig. 7: Table I groups at 50 and
// 300 Mbps, all methods, VGG-16. The case×method grid runs on the budget's
// worker pool.
func Fig07HeterogeneousDevices(b Budget) ([]MethodRow, error) {
	m := cnn.VGG16()
	var specs []Spec
	for _, bw := range []float64{50, 300} {
		for _, g := range DeviceGroups() {
			specs = append(specs, g.Spec(m, bw, b.Seed))
		}
	}
	return RunCases(specs, b)
}

// Fig08HeterogeneousNetworks regenerates Fig. 8: Table II groups with Nano
// and Xavier fleets, all methods, VGG-16.
func Fig08HeterogeneousNetworks(b Budget) ([]MethodRow, error) {
	m := cnn.VGG16()
	var specs []Spec
	for _, t := range []device.Type{device.Nano, device.Xavier} {
		for _, g := range NetworkGroups() {
			specs = append(specs, g.Spec(m, t, b.Seed))
		}
	}
	return RunCases(specs, b)
}

// Fig09LargeScale regenerates Fig. 9: Table III 16-device cases, all
// methods, VGG-16.
func Fig09LargeScale(b Budget) ([]MethodRow, error) {
	m := cnn.VGG16()
	var specs []Spec
	for _, c := range LargeScaleCases() {
		specs = append(specs, c.Spec(m, b.Seed))
	}
	return RunCases(specs, b)
}

// ------------------------------------------------------- Fig. 10 / 11

// fig10Models returns the seven non-VGG models of Fig. 10/11.
func fig10Models() []*cnn.Model {
	zoo := cnn.Zoo()
	var out []*cnn.Model
	for _, name := range cnn.ZooNames() {
		if name == "vgg16" {
			continue
		}
		out = append(out, zoo[name])
	}
	return out
}

// Fig10ModelsDB regenerates Fig. 10: seven further models on Group DB at
// 50 Mbps.
func Fig10ModelsDB(b Budget) ([]MethodRow, error) {
	var specs []Spec
	for _, m := range fig10Models() {
		spec := DeviceGroups()[1].Spec(m, 50, b.Seed)
		spec.Name = m.Name + "/DB-50Mbps"
		specs = append(specs, spec)
	}
	return RunCases(specs, b)
}

// Fig11ModelsNA regenerates Fig. 11: seven further models on Group NA with
// a Nano fleet.
func Fig11ModelsNA(b Budget) ([]MethodRow, error) {
	var specs []Spec
	for _, m := range fig10Models() {
		spec := NetworkGroups()[0].Spec(m, device.Nano, b.Seed)
		spec.Name = m.Name + "/NA-nano"
		specs = append(specs, spec)
	}
	return RunCases(specs, b)
}

// ---------------------------------------------------------------- Fig. 12

// Fig12DynamicTraces regenerates the Fig. 12 traces: four highly dynamic
// 40-100 Mbps device links over 60 minutes.
func Fig12DynamicTraces(seed int64) []TraceRow {
	rows := make([]TraceRow, 0, 4)
	for i := 0; i < 4; i++ {
		tr := network.Dynamic(40, 100, 60, seed+int64(i)*31)
		rows = append(rows, traceRow(fmt.Sprintf("device-%d", i+1), tr))
	}
	return rows
}

// ---------------------------------------------------------------- Fig. 13

// TimelineRow is one time slot of Fig. 13: per-image processing latency of
// the three online-capable methods under highly dynamic networks.
type TimelineRow struct {
	MinuteSlot  int
	CoEdgeMS    float64
	AOFLMS      float64
	DistrEdgeMS float64
}

// dynamicEnv builds the Fig. 13 environment: four Nanos on the Fig. 12
// traces.
func dynamicEnv(seed int64) *sim.Env {
	net := &network.Network{Requester: network.DefaultLink(network.Stable(300, 60, seed+997))}
	for i := 0; i < 4; i++ {
		net.Providers = append(net.Providers, network.DefaultLink(network.Dynamic(40, 100, 60, seed+int64(i)*31)))
	}
	return &sim.Env{
		Model:   cnn.VGG16(),
		Devices: device.AsModels(device.Fleet(device.Nano, device.Nano, device.Nano, device.Nano)),
		Net:     net,
	}
}

// Fig13DynamicLatency regenerates Fig. 13: a 60-minute run under the
// dynamic traces. CoEdge re-solves its linear model every slot from the
// monitored throughput; AOFL re-plans at minutes 20 and 40 but its
// brute-force search keeps the old scheme for 10 minutes (Section V-F);
// DistrEdge keeps its actor online for per-slot split decisions and
// finetunes after the partition updates at minutes 20/40 (20-210 s).
func Fig13DynamicLatency(b Budget) ([]TimelineRow, error) {
	env := dynamicEnv(b.Seed)

	// Initial plans at t=0.
	aoflStrat, err := baselines.Plan(baselines.AOFL, env)
	if err != nil {
		return nil, err
	}
	boundaries, err := partition.Search(env.Model, partition.Config{
		Alpha: 0.75, NumRandomSplits: b.RandomSplits,
		Providers: env.NumProviders(), Seed: b.Seed,
	})
	if err != nil {
		return nil, err
	}
	trainer, err := splitter.NewTrainer(env, boundaries, osdsConfig(b, env.NumProviders(), b.Seed))
	if err != nil {
		return nil, err
	}
	trainer.Run()
	deStrat, _ := trainer.Best()

	var rows []TimelineRow
	aoflPlannedAt := -1 // slot when AOFL started replanning
	for slot := 0; slot < 60; slot++ {
		at := float64(slot) * 60

		// CoEdge: re-solve every slot with the current monitored
		// throughput (cheap linear solve).
		coStrat, err := baselines.Plan(baselines.CoEdge, env)
		if err != nil {
			return nil, err
		}

		// AOFL: kick off a re-plan at the shift points; the new scheme
		// lands 10 minutes later.
		if slot == 20 || slot == 40 {
			aoflPlannedAt = slot
		}
		if aoflPlannedAt >= 0 && slot >= aoflPlannedAt+10 {
			aoflStrat, err = baselines.Plan(baselines.AOFL, env)
			if err != nil {
				return nil, err
			}
			aoflPlannedAt = -1
		}

		// DistrEdge: finetune at the shift points (lands within the same
		// slot: 20-210 s), otherwise query the online actor for this slot.
		if slot == 20 || slot == 40 {
			res := trainer.Finetune(env, b.Episodes/5+1)
			if res.Strategy != nil {
				deStrat = res.Strategy
			}
		}

		co, _, err := env.Latency(coStrat, at)
		if err != nil {
			return nil, err
		}
		ao, _, err := env.Latency(aoflStrat, at)
		if err != nil {
			return nil, err
		}
		de, _, err := env.Latency(deStrat, at)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TimelineRow{
			MinuteSlot: slot,
			CoEdgeMS:   co * 1e3, AOFLMS: ao * 1e3, DistrEdgeMS: de * 1e3,
		})
	}
	return rows, nil
}

// TimelineSummary aggregates Fig. 13 rows into the paper's comparison: the
// mean latency per method and DistrEdge's fraction of AOFL (paper: 40-65%).
type TimelineSummary struct {
	MeanCoEdgeMS      float64
	MeanAOFLMS        float64
	MeanDistrEdgeMS   float64
	DistrEdgeOverAOFL float64
}

// Summarise computes the Fig. 13 summary statistics.
func Summarise(rows []TimelineRow) TimelineSummary {
	var s TimelineSummary
	for _, r := range rows {
		s.MeanCoEdgeMS += r.CoEdgeMS
		s.MeanAOFLMS += r.AOFLMS
		s.MeanDistrEdgeMS += r.DistrEdgeMS
	}
	n := float64(len(rows))
	s.MeanCoEdgeMS /= n
	s.MeanAOFLMS /= n
	s.MeanDistrEdgeMS /= n
	if s.MeanAOFLMS > 0 {
		s.DistrEdgeOverAOFL = s.MeanDistrEdgeMS / s.MeanAOFLMS
	}
	return s
}

// ---------------------------------------------------------------- Fig. 14

// NonlinearRow is one point of Fig. 14: compute latency of a ten-layer
// volume against its output extent on one device.
type NonlinearRow struct {
	OutputRows int
	LatencyMS  float64
}

// Fig14Nonlinear regenerates Fig. 14: the staircase relationship between
// computing latency and the output extent of a ten-layer volume (the paper
// sweeps output width 50-350; height splitting is symmetric).
func Fig14Nonlinear(devType device.Type) []NonlinearRow {
	dev := device.MustNew(devType, "probe")
	b := cnn.NewBuilder("probe", 352, 352, 64)
	for i := 0; i < 10; i++ {
		b = b.Conv(fmt.Sprintf("c%d", i), 64, 3, 1, 1)
	}
	m := b.MustBuild()
	layers := m.SplittableLayers()
	var rows []NonlinearRow
	for r := 50; r <= 350; r += 2 {
		lat := device.VolumeLatency(dev, layers, cnn.RowRange{Lo: 0, Hi: r})
		rows = append(rows, NonlinearRow{OutputRows: r, LatencyMS: lat * 1e3})
	}
	return rows
}

// Staircaseness quantifies how non-linear a Fig. 14 curve is: the fraction
// of consecutive steps with (near-)zero slope. Linear curves score ~0.
func Staircaseness(rows []NonlinearRow) float64 {
	if len(rows) < 2 {
		return 0
	}
	flat := 0
	span := rows[len(rows)-1].LatencyMS - rows[0].LatencyMS
	if span <= 0 {
		return 0
	}
	typical := span / float64(len(rows)-1)
	for i := 1; i < len(rows); i++ {
		if rows[i].LatencyMS-rows[i-1].LatencyMS < 0.1*typical {
			flat++
		}
	}
	return float64(flat) / float64(len(rows)-1)
}

// ---------------------------------------------------------------- Fig. 15

// Fig15Breakdown regenerates Fig. 15: maximum transmission latency and
// maximum computing latency among the four devices of Group DB at 50 Mbps,
// per method.
func Fig15Breakdown(b Budget) ([]MethodRow, error) {
	spec := DeviceGroups()[1].Spec(cnn.VGG16(), 50, b.Seed)
	return RunCase(spec, b)
}

// SortRows orders rows by case then by MethodOrder, for stable rendering.
func SortRows(rows []MethodRow) {
	order := map[string]int{}
	for i, m := range MethodOrder() {
		order[m] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Case != rows[j].Case {
			return rows[i].Case < rows[j].Case
		}
		return order[rows[i].Method] < order[rows[j].Method]
	})
}
