package experiments

import (
	"testing"

	"distredge/internal/baselines"
	"distredge/internal/cnn"
	"distredge/internal/device"
)

func TestAutoAlphaReturnsBest(t *testing.T) {
	b := Tiny()
	env := DeviceGroups()[1].Spec(cnn.VGG16(), 50, 1).Env()
	strat, alpha, ips, err := PlanDistrEdgeAutoAlpha(env, b, []float64{0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if strat == nil || ips <= 0 {
		t.Fatalf("bad result: %v %g", strat, ips)
	}
	if alpha != 0.5 && alpha != 0.75 {
		t.Errorf("alpha %g not from the candidate set", alpha)
	}
	// Auto-alpha must be at least as good as the fixed default.
	fixed, err := PlanDistrEdge(env, b, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Stream(fixed, b.StreamImages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ips < res.IPS*0.99 {
		t.Errorf("auto-alpha %.2f IPS below fixed alpha %.2f IPS", ips, res.IPS)
	}
}

func TestAutoAlphaRecoversOpenPoseCase(t *testing.T) {
	// The one divergent case in EXPERIMENTS.md: OpenPose on a Group-NA Nano
	// fleet, where fixed α=0.75 fuses too much and the layer-by-layer MoDNN
	// wins. With the paper's own Fig. 5 selection methodology (sweep α,
	// keep the measured best), DistrEdge must recover ≥ MoDNN.
	if testing.Short() {
		t.Skip("openpose auto-alpha sweep in short mode")
	}
	b := Tiny()
	b.Episodes = 40
	spec := Spec{
		Name:           "openpose/NA-nano",
		Model:          cnn.OpenPose(),
		Types:          []device.Type{device.Nano, device.Nano, device.Nano, device.Nano},
		BandwidthsMbps: []float64{50, 50, 200, 200},
		Seed:           1,
	}
	env := spec.Env()
	_, _, ips, err := PlanDistrEdgeAutoAlpha(env, b, []float64{0, 0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	mo, err := baselines.Plan(baselines.MoDNN, env)
	if err != nil {
		t.Fatal(err)
	}
	moRes, err := env.Stream(mo, b.StreamImages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ips < moRes.IPS*0.97 {
		t.Errorf("auto-alpha DistrEdge %.2f IPS still below MoDNN %.2f IPS", ips, moRes.IPS)
	}
}

func TestAutoAlphaEmptyCandidates(t *testing.T) {
	b := Tiny()
	env := DeviceGroups()[0].Spec(cnn.VGG16(), 100, 1).Env()
	strat, _, _, err := PlanDistrEdgeAutoAlpha(env, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strat == nil {
		t.Fatal("default candidates must produce a strategy")
	}
}
