package experiments

import (
	"fmt"

	"distredge/internal/sim"
	"distredge/internal/splitter"
	"distredge/internal/strategy"
)

// ChurnRow is one cell of the recovery sweep: a planned case served with
// the given admission window suffers a single-device failure at FailFrac of
// its churn-free duration, with and without online recovery. Goodput is
// committed images over the common horizon (the longer of the two runs), so
// the truncated stream's lost tail actually costs it.
type ChurnRow struct {
	Case     string
	Window   int
	FailFrac float64

	FailAtSec  float64 // absolute failure time in the trace
	DropDevice int     // provider killed (the one carrying the most rows)
	BaseIPS    float64 // churn-free sustained rate

	GoodputOn    float64 // with recovery (re-plan over survivors)
	GoodputOff   float64 // without (stream truncates at the failure)
	CompletedOff int     // images the truncated stream delivered
	RecoverSec   float64 // time from the failure to the first recovered completion
	Requeued     int     // in-flight images the recovery re-admitted
}

// ChurnReplanChargeSec is the modelled controller cost of one recovery:
// re-planning over the survivors plus redeploying them. The runtime's
// measured BalancedReplan + redeploy is single-digit milliseconds on
// localhost; 10ms also budgets real-network plan distribution. Shared
// with distredge.EvaluateChurn so the public API and the distbench sweep
// predict the same recovery cost.
const ChurnReplanChargeSec = 0.01

// DefaultChurnFracs is the failure-time grid of the recovery sweep.
func DefaultChurnFracs() []float64 { return []float64{0.25, 0.5, 0.75} }

// heaviestProvider returns the provider holding the most output rows under
// the strategy — the most damaging single failure.
func heaviestProvider(env *sim.Env, s *strategy.Strategy) int {
	n := env.NumProviders()
	best, bestRows := 0, -1
	for i := 0; i < n; i++ {
		rows := 0
		for v := 0; v < s.NumVolumes(); v++ {
			rows += s.PartRange(env.Model, v, i).Len()
		}
		if rows > bestRows {
			bestRows = rows
			best = i
		}
	}
	return best
}

// FigChurnRecovery measures time-to-recover and goodput versus failure time
// and admission window: each case is planned once (DistrEdge pipeline),
// then every (window, failure-fraction) cell drops the heaviest provider at
// that point of the stream and compares recover-on against recover-off via
// sim.ChurnStream with the profile-guided re-planner. Cases run on the
// budget's worker pool; rows are deterministic for any worker count.
func FigChurnRecovery(b Budget, windows []int, fracs []float64) ([]ChurnRow, error) {
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	if len(fracs) == 0 {
		fracs = DefaultChurnFracs()
	}
	specs := windowSpecs(b.Seed)
	perCase := make([][]ChurnRow, len(specs))
	err := runIndexed(len(specs), b.Workers(), func(ci int) error {
		spec := specs[ci]
		env := spec.Env()
		planned, err := PlanDistrEdge(env, b, 0.75)
		if err != nil {
			return fmt.Errorf("experiments: churn sweep %s: %w", spec.Name, err)
		}
		drop := heaviestProvider(env, planned)
		var rows []ChurnRow
		for _, w := range windows {
			base, err := env.PipelineStream(planned, b.StreamImages, w, 0)
			if err != nil {
				return fmt.Errorf("experiments: churn sweep %s w=%d: %w", spec.Name, w, err)
			}
			for _, frac := range fracs {
				failAt := base.TotalSec * frac
				events := []sim.ChurnEvent{{At: failAt, Kind: sim.DeviceDrop, Device: drop}}
				on, err := env.ChurnStream(planned, b.StreamImages, w, 0, events, sim.ChurnOptions{
					Recover:   true,
					ReplanSec: ChurnReplanChargeSec,
					Replan:    splitter.BalancedReplan,
				})
				if err != nil {
					return fmt.Errorf("experiments: churn sweep %s w=%d f=%.2f (on): %w", spec.Name, w, frac, err)
				}
				off, err := env.ChurnStream(planned, b.StreamImages, w, 0, events, sim.ChurnOptions{})
				if err != nil {
					return fmt.Errorf("experiments: churn sweep %s w=%d f=%.2f (off): %w", spec.Name, w, frac, err)
				}
				horizon := on.TotalSec
				if off.TotalSec > horizon {
					horizon = off.TotalSec
				}
				row := ChurnRow{
					Case:         spec.Name,
					Window:       w,
					FailFrac:     frac,
					FailAtSec:    failAt,
					DropDevice:   drop,
					BaseIPS:      base.IPS,
					CompletedOff: off.Completed,
					Requeued:     on.Requeued,
				}
				if horizon > 0 {
					row.GoodputOn = float64(on.Completed) / horizon
					row.GoodputOff = float64(off.Completed) / horizon
				}
				if len(on.EventRecoverySec) > 0 {
					row.RecoverSec = on.EventRecoverySec[0]
				}
				rows = append(rows, row)
			}
		}
		perCase[ci] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []ChurnRow
	for _, rows := range perCase {
		out = append(out, rows...)
	}
	return out, nil
}
