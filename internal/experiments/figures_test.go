package experiments

import (
	"testing"
)

// Shape assertions for the figure harnesses at a tiny budget: who wins and
// how margins order. These are the executable form of the EXPERIMENTS.md
// claims; cmd/distbench regenerates the full tables.

func tinyFigBudget() Budget {
	b := Tiny()
	b.Episodes = 35
	b.StreamImages = 40
	return b
}

// distrEdgeHolds asserts DistrEdge is within tol of the best baseline for
// every case in rows (tol 1.0 means "must win outright").
func distrEdgeHolds(t *testing.T, rows []MethodRow, tol float64) {
	t.Helper()
	byCase := map[string][]MethodRow{}
	for _, r := range rows {
		byCase[r.Case] = append(byCase[r.Case], r)
	}
	for name, cr := range byCase {
		de, ok := FindRow(cr, MethodDistrEdge)
		if !ok {
			t.Fatalf("%s: missing DistrEdge row", name)
		}
		best := BestBaselineIPS(cr)
		if de.IPS < best*tol {
			t.Errorf("%s: DistrEdge %.2f IPS below %.2f x best baseline %.2f", name, de.IPS, tol, best)
		}
	}
}

func TestFig07Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness in short mode")
	}
	rows, err := Fig07HeterogeneousDevices(tinyFigBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*8 {
		t.Fatalf("rows = %d, want 48", len(rows))
	}
	distrEdgeHolds(t, rows, 0.97)
	// Group DC must show the equal-split collapse (the paper's "<1" bars).
	for _, bw := range []string{"DC-50Mbps", "DC-300Mbps"} {
		var caseRows []MethodRow
		for _, r := range rows {
			if r.Case == bw {
				caseRows = append(caseRows, r)
			}
		}
		dt, _ := FindRow(caseRows, "DeepThings")
		if dt.IPS >= 1 {
			t.Errorf("%s: DeepThings %.2f IPS, expected <1 (Pi3 starvation)", bw, dt.IPS)
		}
	}
}

func TestFig08Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness in short mode")
	}
	rows, err := Fig08HeterogeneousNetworks(tinyFigBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8*8 {
		t.Fatalf("rows = %d, want 64", len(rows))
	}
	// Nano fleets can tie DeeperThings within a few percent (see
	// EXPERIMENTS.md); Xavier fleets must be won.
	distrEdgeHolds(t, rows, 0.93)
}

func TestFig09Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness in short mode")
	}
	rows, err := Fig09LargeScale(tinyFigBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*8 {
		t.Fatalf("rows = %d, want 32", len(rows))
	}
	distrEdgeHolds(t, rows, 0.93)
	// AOFL's linear model must collapse on the mixed 16-device cases
	// (LB/LC/LD include Pi3s it insists on using).
	for _, cs := range []string{"LB", "LC", "LD"} {
		var caseRows []MethodRow
		for _, r := range rows {
			if r.Case == cs {
				caseRows = append(caseRows, r)
			}
		}
		ao, _ := FindRow(caseRows, "AOFL")
		de, _ := FindRow(caseRows, MethodDistrEdge)
		if de.IPS < 3*ao.IPS {
			t.Errorf("%s: DistrEdge %.2f not >> AOFL %.2f", cs, de.IPS, ao.IPS)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness in short mode")
	}
	b := tinyFigBudget()
	rows, err := Fig13DynamicLatency(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 60 {
		t.Fatalf("rows = %d, want 60 slots", len(rows))
	}
	s := Summarise(rows)
	// The paper's band: DistrEdge at 40-65% of AOFL. Allow slack for the
	// tiny budget but the ordering must hold with margin.
	if s.DistrEdgeOverAOFL > 0.8 {
		t.Errorf("DistrEdge/AOFL = %.0f%%, want well under 100%%", 100*s.DistrEdgeOverAOFL)
	}
	if s.MeanDistrEdgeMS >= s.MeanCoEdgeMS {
		t.Errorf("DistrEdge %.1fms not below CoEdge %.1fms", s.MeanDistrEdgeMS, s.MeanCoEdgeMS)
	}
}

func TestSummariseEmpty(t *testing.T) {
	s := Summarise([]TimelineRow{{CoEdgeMS: 10, AOFLMS: 20, DistrEdgeMS: 5}})
	if s.DistrEdgeOverAOFL != 0.25 {
		t.Errorf("ratio = %g, want 0.25", s.DistrEdgeOverAOFL)
	}
}

func TestStaircasenessEdgeCases(t *testing.T) {
	if Staircaseness(nil) != 0 {
		t.Error("empty curve must score 0")
	}
	flat := []NonlinearRow{{50, 1}, {52, 1}, {54, 1}}
	if Staircaseness(flat) != 0 {
		t.Error("flat curve (zero span) must score 0")
	}
	line := []NonlinearRow{{50, 1}, {52, 2}, {54, 3}, {56, 4}}
	if Staircaseness(line) != 0 {
		t.Error("strictly linear curve must score 0")
	}
	stair := []NonlinearRow{{50, 1}, {52, 1}, {54, 3}, {56, 3}}
	if Staircaseness(stair) < 0.5 {
		t.Error("staircase must score high")
	}
}

func TestFig10And11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweep in short mode")
	}
	b := tinyFigBudget()
	for name, run := range map[string]func(Budget) ([]MethodRow, error){
		"fig10": Fig10ModelsDB,
		"fig11": Fig11ModelsNA,
	} {
		rows, err := run(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) != 7*8 {
			t.Fatalf("%s: rows = %d, want 56", name, len(rows))
		}
		// Every method must produce a positive IPS on every model; the
		// win/tie assertions live in EXPERIMENTS.md (OpenPose/NA diverges
		// at fixed alpha, so no blanket DistrEdge-wins check here).
		for _, r := range rows {
			if r.IPS <= 0 {
				t.Errorf("%s: %s/%s IPS %g", name, r.Case, r.Method, r.IPS)
			}
		}
		de := 0
		for _, r := range rows {
			if r.Method == MethodDistrEdge {
				de++
			}
		}
		if de != 7 {
			t.Errorf("%s: %d DistrEdge rows, want 7", name, de)
		}
	}
}

func TestFig06Stability(t *testing.T) {
	if testing.Short() {
		t.Skip("Rrs sweep in short mode")
	}
	b := tinyFigBudget()
	rows, err := Fig06RrsSweep(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		const eps = 1e-9 // sum/n can differ from min/max in the last ULP
		if r.MinIPS > r.MeanIPS+eps || r.MeanIPS > r.MaxIPS+eps {
			t.Errorf("%s Rrs=%d: min/mean/max out of order: %+v", r.Case, r.Rrs, r)
		}
		// The paper's conclusion: |Rrs| >= 100 is stable (small spread).
		if r.Rrs >= 100 && r.MinIPS > 0 && (r.MaxIPS-r.MinIPS)/r.MeanIPS > 0.15 {
			t.Errorf("%s Rrs=%d: spread %.0f%% too wide", r.Case, r.Rrs, 100*(r.MaxIPS-r.MinIPS)/r.MeanIPS)
		}
	}
}
