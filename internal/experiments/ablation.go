package experiments

import (
	"fmt"

	"distredge/internal/baselines"
	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/sim"
	"distredge/internal/splitter"
	"distredge/internal/strategy"
)

// This file holds ablations of the design choices DESIGN.md calls out.
// They are not paper figures; they justify the reproduction's engineering
// decisions and probe the paper's causal story.

// AblationNonlinearity tests the paper's core causal claim: DistrEdge's
// advantage over the linear-model baselines comes from the *nonlinear*
// device character. It plans DistrEdge and AOFL on (a) the true staircase
// devices and (b) "linearised" twins (wave width forced to 1 row, same peak
// rate), and returns the DistrEdge/AOFL speedup in both worlds. If the
// paper's story holds, StaircaseSpeedup > LinearSpeedup.
type AblationNonlinearityResult struct {
	StaircaseSpeedup float64
	LinearSpeedup    float64
}

// linearise returns a copy of the fleet with the wave quantisation removed
// (profiles keep their peak rate but lose the staircase).
func linearise(models []device.LatencyModel) []device.LatencyModel {
	out := make([]device.LatencyModel, len(models))
	for i, m := range models {
		if p, ok := m.(device.Profile); ok {
			p.Tile = 1
			out[i] = p
		} else {
			out[i] = m
		}
	}
	return out
}

// AblationNonlinearity runs the nonlinearity ablation on Group DB at the
// given bandwidth.
func AblationNonlinearity(b Budget, bwMbps float64) (AblationNonlinearityResult, error) {
	spec := DeviceGroups()[1].Spec(cnn.VGG16(), bwMbps, b.Seed)
	speedup := func(env *sim.Env) (float64, error) {
		de, err := PlanDistrEdge(env, b, 0.75)
		if err != nil {
			return 0, err
		}
		ao, err := baselines.Plan(baselines.AOFL, env)
		if err != nil {
			return 0, err
		}
		deRes, err := env.Stream(de, b.StreamImages, 0)
		if err != nil {
			return 0, err
		}
		aoRes, err := env.Stream(ao, b.StreamImages, 0)
		if err != nil {
			return 0, err
		}
		return deRes.IPS / aoRes.IPS, nil
	}

	stairEnv := spec.Env()
	stair, err := speedup(stairEnv)
	if err != nil {
		return AblationNonlinearityResult{}, err
	}
	linEnv := spec.Env()
	linEnv.Devices = linearise(linEnv.Devices)
	lin, err := speedup(linEnv)
	if err != nil {
		return AblationNonlinearityResult{}, err
	}
	return AblationNonlinearityResult{StaircaseSpeedup: stair, LinearSpeedup: lin}, nil
}

// AblationWarmStartResult compares OSDS with and without the profile-guided
// warm-start episodes (our engineering addition) at the same budget.
type AblationWarmStartResult struct {
	WithWarmStartIPS    float64
	WithoutWarmStartIPS float64
}

// AblationWarmStart runs the warm-start ablation on Group DB at 50 Mbps.
func AblationWarmStart(b Budget) (AblationWarmStartResult, error) {
	spec := DeviceGroups()[1].Spec(cnn.VGG16(), 50, b.Seed)
	env := spec.Env()
	boundaries, err := lcpssBoundaries(env, b, 0.75)
	if err != nil {
		return AblationWarmStartResult{}, err
	}
	run := func(warm bool) (float64, error) {
		cfg := osdsConfig(b, env.NumProviders(), b.Seed)
		cfg.WarmStart = warm
		res, err := splitter.Search(env, boundaries, cfg)
		if err != nil {
			return 0, err
		}
		stream, err := env.Stream(res.Strategy, b.StreamImages, 0)
		if err != nil {
			return 0, err
		}
		return stream.IPS, nil
	}
	with, err := run(true)
	if err != nil {
		return AblationWarmStartResult{}, err
	}
	without, err := run(false)
	if err != nil {
		return AblationWarmStartResult{}, err
	}
	return AblationWarmStartResult{WithWarmStartIPS: with, WithoutWarmStartIPS: without}, nil
}

// AblationPartitionRow is OSDS performance over one fixed partition family.
type AblationPartitionRow struct {
	Partition string
	Volumes   int
	IPS       float64
}

// AblationPartition isolates LC-PSS's contribution: the same OSDS splitter
// is trained over the LC-PSS scheme and three fixed alternatives
// (single volume, pool boundaries, layer-by-layer) on Group DB at 50 Mbps.
func AblationPartition(b Budget) ([]AblationPartitionRow, error) {
	spec := DeviceGroups()[1].Spec(cnn.VGG16(), 50, b.Seed)
	env := spec.Env()
	lcpss, err := lcpssBoundaries(env, b, 0.75)
	if err != nil {
		return nil, err
	}
	families := []struct {
		name       string
		boundaries []int
	}{
		{"lc-pss", lcpss},
		{"single-volume", strategy.SingleVolume(env.Model)},
		{"pool-boundaries", strategy.PoolBoundaries(env.Model)},
		{"layer-by-layer", strategy.LayerByLayer(env.Model)},
	}
	var rows []AblationPartitionRow
	for _, f := range families {
		res, err := splitter.Search(env, f.boundaries, osdsConfig(b, env.NumProviders(), b.Seed))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", f.name, err)
		}
		stream, err := env.Stream(res.Strategy, b.StreamImages, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationPartitionRow{
			Partition: f.name,
			Volumes:   len(f.boundaries) - 1,
			IPS:       stream.IPS,
		})
	}
	return rows, nil
}

// lcpssBoundaries is a small helper shared by the ablations.
func lcpssBoundaries(env *sim.Env, b Budget, alpha float64) ([]int, error) {
	return lcpssSearch(env, b, alpha)
}
