package experiments

import (
	"fmt"

	"distredge/internal/sim"
)

// GatewayRow is one cell of the gateway admission-policy sweep: one
// tenant's latency distribution when a case's strategy serves every
// tenant's backlog at once under the given policy.
type GatewayRow struct {
	Case      string
	Policy    string // sim.AdmitFIFO or sim.AdmitWFQ
	Tenant    string
	Weight    float64
	Images    int
	IPS       float64 // whole-stream rate (all tenants), repeated per row
	MeanLatMS float64 // enqueue-to-completion
	P95LatMS  float64
	SLOMet    bool // P95LatMS <= sloMS (true when no bound was given)
}

// DefaultTenants is the canonical serving mix the gateway figure and the
// CLI default to: a heavy tenant whose burst would monopolise a FIFO
// queue, and a small high-weight tenant whose p95 is the SLO story.
func DefaultTenants() []sim.TenantSpec {
	return []sim.TenantSpec{
		{Name: "heavy", Images: 24, Weight: 1},
		{Name: "small", Images: 4, Weight: 4},
	}
}

// FigGateway sweeps the multi-tenant admission policies offline: for each
// objective-sweep case it plans a strategy, replays every tenant's backlog
// through sim.MultiStreamOpts under FIFO and weighted fair queueing, and
// reports each tenant's enqueue-to-completion latency distribution —
// the offline evidence that fair queueing buys the small tenant its p95
// back at negligible cost to the heavy one, validated differentially on
// the shaped runtime by the gateway tests. sloMS > 0 additionally marks
// which rows meet a p95 bound. Cases run on the budget's worker pool; rows
// are deterministic for any worker count.
func FigGateway(b Budget, tenants []sim.TenantSpec, window int, sloMS float64) ([]GatewayRow, error) {
	if len(tenants) == 0 {
		tenants = DefaultTenants()
	}
	if window <= 0 {
		window = 4
	}
	cases := objectiveCases(b.Seed)
	policies := []string{sim.AdmitFIFO, sim.AdmitWFQ}
	perCase := make([][]GatewayRow, len(cases))
	err := runIndexed(len(cases), b.Workers(), func(ci int) error {
		c := cases[ci]
		env := c.env()
		strat, err := PlanObjective(env, b, 0.75, nil)
		if err != nil {
			return fmt.Errorf("experiments: gateway sweep %s: %w", c.name, err)
		}
		var rows []GatewayRow
		for _, policy := range policies {
			res, err := env.MultiStreamOpts(strat, sim.MultiStreamConfig{
				Tenants: tenants, Policy: policy, Window: window,
			})
			if err != nil {
				return fmt.Errorf("experiments: gateway sweep %s/%s: %w", c.name, policy, err)
			}
			for ti, tr := range res.Tenants {
				rows = append(rows, GatewayRow{
					Case:      c.name,
					Policy:    policy,
					Tenant:    tr.Name,
					Weight:    tenants[ti].Weight,
					Images:    tr.Images,
					IPS:       res.IPS,
					MeanLatMS: tr.MeanLatMS,
					P95LatMS:  tr.P95LatMS,
					SLOMet:    sloMS <= 0 || tr.P95LatMS <= sloMS,
				})
			}
		}
		perCase[ci] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []GatewayRow
	for _, rows := range perCase {
		out = append(out, rows...)
	}
	return out, nil
}
