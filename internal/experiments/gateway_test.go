package experiments

import (
	"testing"

	"distredge/internal/sim"
)

func findGatewayRow(rows []GatewayRow, c, policy, tenant string) (GatewayRow, bool) {
	for _, r := range rows {
		if r.Case == c && r.Policy == policy && r.Tenant == tenant {
			return r, true
		}
	}
	return GatewayRow{}, false
}

// TestFigGatewaySmallTenantWins is the figure-level statement of the
// tentpole's offline claim: on every sweep case, weighted fair queueing
// buys the small high-weight tenant a strictly better p95 than FIFO.
func TestFigGatewaySmallTenantWins(t *testing.T) {
	rows, err := FigGateway(Tiny(), nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]bool{}
	for _, r := range rows {
		cases[r.Case] = true
		if !r.SLOMet {
			t.Errorf("row %+v: with no bound every row trivially meets the SLO", r)
		}
	}
	if len(cases) < 2 {
		t.Fatalf("sweep covers %d case(s), want stable + dynamic", len(cases))
	}
	// Defaults: 2 cases x 2 policies x 2 tenants.
	if want := len(cases) * 2 * 2; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for c := range cases {
		fifo, ok1 := findGatewayRow(rows, c, sim.AdmitFIFO, "small")
		wfq, ok2 := findGatewayRow(rows, c, sim.AdmitWFQ, "small")
		if !ok1 || !ok2 {
			t.Fatalf("case %s missing small-tenant rows", c)
		}
		t.Logf("%s small tenant p95: fifo %.1fms, wfq %.1fms", c, fifo.P95LatMS, wfq.P95LatMS)
		if wfq.P95LatMS >= fifo.P95LatMS {
			t.Errorf("case %s: wfq small p95 %.1fms does not beat fifo %.1fms", c, wfq.P95LatMS, fifo.P95LatMS)
		}
	}
}

// TestFigGatewaySLOMarking: a bound between the two policies' p95s marks
// exactly the feasible rows.
func TestFigGatewaySLOMarking(t *testing.T) {
	rows, err := FigGateway(Tiny(), nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := rows[0].Case
	fifo, _ := findGatewayRow(rows, c, sim.AdmitFIFO, "small")
	wfq, _ := findGatewayRow(rows, c, sim.AdmitWFQ, "small")
	bound := (fifo.P95LatMS + wfq.P95LatMS) / 2
	marked, err := FigGateway(Tiny(), nil, 0, bound)
	if err != nil {
		t.Fatal(err)
	}
	mf, _ := findGatewayRow(marked, c, sim.AdmitFIFO, "small")
	mw, _ := findGatewayRow(marked, c, sim.AdmitWFQ, "small")
	if mf.SLOMet || !mw.SLOMet {
		t.Errorf("bound %.1fms between the policies: fifo met=%v wfq met=%v, want false/true", bound, mf.SLOMet, mw.SLOMet)
	}
}

// TestFigGatewayParallelDeterministic: rows are identical for any worker
// count, like every other figure in the harness.
func TestFigGatewayParallelDeterministic(t *testing.T) {
	b1, b4 := Tiny(), Tiny()
	b1.Parallel, b4.Parallel = 1, 4
	r1, err := FigGateway(b1, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := FigGateway(b4, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r4) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r4))
	}
	for i := range r1 {
		if r1[i] != r4[i] {
			t.Errorf("row %d differs across worker counts:\n  1: %+v\n  4: %+v", i, r1[i], r4[i])
		}
	}
}
