package experiments

import (
	"fmt"

	"distredge/internal/cnn"
	"distredge/internal/plancache"
	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// Planner adapts the experiments planning pipeline to the plan-cache service
// contract: cold requests run the full PlanObjective search, warm-started
// ones run PlanObjectiveInit — seeded from the cached neighbour, on half the
// episode budget. alpha <= 0 defaults to the pipeline's usual 0.75.
func Planner(b Budget, alpha float64) plancache.Planner {
	if alpha <= 0 {
		alpha = 0.75
	}
	return func(env *sim.Env, obj sim.Objective, init *strategy.Strategy) (*strategy.Strategy, error) {
		return PlanObjectiveInit(env, b, alpha, obj, init)
	}
}

// PlannerRow is one planning of the planner-service sweep (fig planner).
type PlannerRow struct {
	Phase   string // "cold", "exact" or "warm"
	Fleet   string
	Outcome plancache.Outcome
	SeedKey string  // warm-start donor signature ("" unless warm)
	Score   float64 // objective score of the served plan (s/img)
	// ColdScore is what a full cold planning of this same fleet scores —
	// filled in the warm phase only, to quantify the warm-start quality
	// delta (Score/ColdScore <= 1 means equal or better).
	ColdScore float64
}

// Planner sweep phase names.
const (
	PlannerPhaseCold  = "cold"
	PlannerPhaseExact = "exact"
	PlannerPhaseWarm  = "warm"
)

// seedEntry is one cold-phase product, re-used to seed later phases.
type seedEntry struct {
	sig   plancache.Signature
	strat *strategy.Strategy
	score float64
}

// PlannerSweep drives the three phases of the planner-service benchmark on a
// fixed fleet corpus (Group DB — Xavier x2 + Nano x2 — on VGG16 at four
// bandwidth tiers, plus four off-tier neighbour fleets):
//
//   - Cold plans each corpus fleet through a fresh, empty cache — every
//     planning runs the full search;
//   - Exact re-plans the same fleets through one service whose cache holds
//     the cold corpus — every planning is an exact signature hit;
//   - Warm plans the neighbour fleets (same devices, bandwidth tiers chosen
//     to land in buckets the corpus does not occupy) against the cold
//     corpus — every planning warm-starts from its nearest corpus entry.
//
// The phases are separate methods so cmd/distbench can wall-clock each one
// into a plans/sec figure. Rows are deterministic for any Budget.Parallel:
// warm plannings each see the identical pre-seeded corpus (never each
// other's fresh results), so concurrency cannot change which donor seeds
// which fleet.
type PlannerSweep struct {
	b     Budget
	alpha float64
	seeds []seedEntry
	stats plancache.Stats
}

// NewPlannerSweep builds the sweep harness on the given budget.
func NewPlannerSweep(b Budget, alpha float64) *PlannerSweep {
	if alpha <= 0 {
		alpha = 0.75
	}
	return &PlannerSweep{b: b, alpha: alpha}
}

// plannerSpecs returns the sweep's fleet corpus. The bandwidth tiers sit in
// distinct half-octave buckets (100, 140, 200, 280 Mbps → buckets 13-16),
// and the warm-phase neighbours (48, 70, 340, 480 Mbps → buckets 11, 12,
// 17, 18) neither collide with the corpus nor with each other — so exact
// hits are exact, and warm plannings are near misses, by construction.
func plannerSpecs(seed int64) (cold, warm []Spec) {
	group := DeviceGroups()[1] // DB: Xavier x2 + Nano x2
	m := cnn.VGG16()
	for _, bw := range []float64{100, 140, 200, 280} {
		cold = append(cold, group.Spec(m, bw, seed))
	}
	for _, bw := range []float64{48, 70, 340, 480} {
		warm = append(warm, group.Spec(m, bw, seed))
	}
	return cold, warm
}

// Cold runs the cold phase: each corpus fleet planned through a fresh
// service with an empty cache. The results become the seed corpus for the
// Exact and Warm phases.
func (ps *PlannerSweep) Cold() ([]PlannerRow, error) {
	cold, _ := plannerSpecs(ps.b.Seed)
	rows := make([]PlannerRow, len(cold))
	seeds := make([]seedEntry, len(cold))
	stats := make([]plancache.Stats, len(cold))
	err := runIndexed(len(cold), ps.b.Workers(), func(i int) error {
		spec := cold[i]
		svc, err := plancache.NewService(plancache.Config{Planner: Planner(ps.b, ps.alpha)})
		if err != nil {
			return err
		}
		env := spec.Env()
		res, err := svc.Plan(env, nil)
		if err != nil {
			return fmt.Errorf("experiments: planner sweep cold %s: %w", spec.Name, err)
		}
		rows[i] = PlannerRow{Phase: PlannerPhaseCold, Fleet: spec.Name, Outcome: res.Outcome, Score: res.Score}
		seeds[i] = seedEntry{sig: plancache.SignatureOf(env, nil), strat: res.Strategy, score: res.Score}
		stats[i] = svc.Cache().Stats()
		return nil
	})
	if err != nil {
		return nil, err
	}
	ps.seeds = seeds
	for _, s := range stats {
		ps.addStats(s)
	}
	return rows, nil
}

// Exact runs the exact-hit phase: the corpus fleets re-planned through one
// shared service whose cache already holds every corpus entry. Every
// planning must be an exact signature hit. Cold must have run first.
func (ps *PlannerSweep) Exact() ([]PlannerRow, error) {
	if len(ps.seeds) == 0 {
		return nil, fmt.Errorf("experiments: planner sweep: Exact before Cold")
	}
	cold, _ := plannerSpecs(ps.b.Seed)
	cache := plancache.New(0)
	for _, s := range ps.seeds {
		cache.Put(s.sig, s.strat, s.score)
	}
	svc, err := plancache.NewService(plancache.Config{
		Cache:   cache,
		Workers: ps.b.Workers(),
		Planner: Planner(ps.b, ps.alpha),
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PlannerRow, len(cold))
	err = runIndexed(len(cold), ps.b.Workers(), func(i int) error {
		spec := cold[i]
		res, err := svc.Plan(spec.Env(), nil)
		if err != nil {
			return fmt.Errorf("experiments: planner sweep exact %s: %w", spec.Name, err)
		}
		rows[i] = PlannerRow{Phase: PlannerPhaseExact, Fleet: spec.Name, Outcome: res.Outcome, Score: res.Score}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ps.addStats(svc.Cache().Stats())
	return rows, nil
}

// Warm runs the warm-start phase: each neighbour fleet planned through its
// own service whose cache is pre-seeded with the full cold corpus (and
// nothing else — so concurrent plannings cannot observe each other and rows
// stay deterministic). Every planning must warm-start. Cold must have run
// first. ColdScore is left zero — WarmReference fills it — so a caller can
// wall-clock this method into an honest warm plans/sec figure.
func (ps *PlannerSweep) Warm() ([]PlannerRow, error) {
	if len(ps.seeds) == 0 {
		return nil, fmt.Errorf("experiments: planner sweep: Warm before Cold")
	}
	_, warm := plannerSpecs(ps.b.Seed)
	rows := make([]PlannerRow, len(warm))
	stats := make([]plancache.Stats, len(warm))
	err := runIndexed(len(warm), ps.b.Workers(), func(i int) error {
		spec := warm[i]
		cache := plancache.New(0)
		for _, s := range ps.seeds {
			cache.Put(s.sig, s.strat, s.score)
		}
		svc, err := plancache.NewService(plancache.Config{Cache: cache, Planner: Planner(ps.b, ps.alpha)})
		if err != nil {
			return err
		}
		res, err := svc.Plan(spec.Env(), nil)
		if err != nil {
			return fmt.Errorf("experiments: planner sweep warm %s: %w", spec.Name, err)
		}
		rows[i] = PlannerRow{
			Phase:   PlannerPhaseWarm,
			Fleet:   spec.Name,
			Outcome: res.Outcome,
			SeedKey: res.SeedKey,
			Score:   res.Score,
		}
		stats[i] = svc.Cache().Stats()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, s := range stats {
		ps.addStats(s)
	}
	return rows, nil
}

// WarmReference cold-plans every warm-phase fleet at full budget and fills
// each row's ColdScore, so the warm rows carry the plan-quality delta
// (Score/ColdScore <= 1 means the warm-started half-budget search matched
// or beat the full cold search). Kept out of Warm so its wall-clock can be
// measured without the references.
func (ps *PlannerSweep) WarmReference(rows []PlannerRow) error {
	_, warm := plannerSpecs(ps.b.Seed)
	if len(rows) != len(warm) {
		return fmt.Errorf("experiments: planner sweep: WarmReference wants %d warm rows, got %d", len(warm), len(rows))
	}
	return runIndexed(len(warm), ps.b.Workers(), func(i int) error {
		spec := warm[i]
		env := spec.Env()
		coldStrat, err := PlanObjective(env, ps.b, ps.alpha, nil)
		if err != nil {
			return fmt.Errorf("experiments: planner sweep warm %s (cold reference): %w", spec.Name, err)
		}
		coldScore, err := sim.DefaultObjective(nil).Score(env, coldStrat, 0)
		if err != nil {
			return err
		}
		rows[i].ColdScore = coldScore
		return nil
	})
}

// Stats returns the plan-cache counters aggregated across all phases run so
// far.
func (ps *PlannerSweep) Stats() plancache.Stats { return ps.stats }

func (ps *PlannerSweep) addStats(s plancache.Stats) {
	ps.stats.Hits += s.Hits
	ps.stats.Misses += s.Misses
	ps.stats.WarmHits += s.WarmHits
	ps.stats.Evictions += s.Evictions
}
