package experiments

import (
	"fmt"

	"distredge/internal/baselines"
	"distredge/internal/partition"
	"distredge/internal/sim"
	"distredge/internal/splitter"
	"distredge/internal/strategy"
)

// Budget scales the planning effort so the same harnesses serve unit tests,
// `go test -bench` and full distbench reproductions. Paper-scale is
// Max_ep=4000 with {400,200,100} networks; thanks to OSDS's best-strategy
// tracking, smaller budgets return the best strategy they visited.
type Budget struct {
	Episodes     int   // OSDS training episodes
	Hidden       []int // actor hidden sizes
	Batch        int   // minibatch size
	RandomSplits int   // LC-PSS |R^r_s|
	StreamImages int   // images per IPS measurement (paper: 5000)
	Seed         int64

	// Parallel is the worker-pool size for the case×method grids of the
	// figure harnesses: 0/1 = serial, N > 1 = N workers, negative = one
	// worker per CPU. Results are byte-identical for any value — every
	// grid task derives its environment and seeds deterministically from
	// its own coordinates and writes to its own result slot.
	Parallel int
}

// Tiny is for unit tests: seconds per case.
func Tiny() Budget {
	return Budget{Episodes: 25, Hidden: []int{16, 16}, Batch: 16, RandomSplits: 20, StreamImages: 25, Seed: 1}
}

// Quick is for benchmarks and -quick reproductions.
func Quick() Budget {
	return Budget{Episodes: 100, Hidden: []int{32, 32}, Batch: 32, RandomSplits: 50, StreamImages: 200, Seed: 1}
}

// Full is the default distbench budget: close to paper-shaped results in
// minutes of wall clock.
func Full() Budget {
	return Budget{Episodes: 500, Hidden: []int{64, 64}, Batch: 64, RandomSplits: 100, StreamImages: 1000, Seed: 1}
}

// Paper is the paper's own configuration (Section V); hours of wall clock.
func Paper() Budget {
	return Budget{Episodes: 4000, Hidden: []int{400, 200, 100}, Batch: 64, RandomSplits: 100, StreamImages: 5000, Seed: 1}
}

// MethodDistrEdge is the method label for our system in result rows.
const MethodDistrEdge = "DistrEdge"

// MethodOrder returns the presentation order of Fig. 7-11: the seven
// baselines with DistrEdge inserted before Offload.
func MethodOrder() []string {
	return []string{"CoEdge", "MoDNN", "MeDNN", "DeepThings", "DeeperThings", "AOFL", MethodDistrEdge, "Offload"}
}

// osdsConfig derives the OSDS configuration from a budget. The paper uses
// σ²=0.1 for four providers and σ²=1 for sixteen (Section V).
func osdsConfig(b Budget, providers int, seed int64) splitter.Config {
	sigmaSq := 0.1
	if providers >= 16 {
		sigmaSq = 1
	}
	return splitter.Config{
		Episodes:  b.Episodes,
		Hidden:    b.Hidden,
		Batch:     b.Batch,
		SigmaSq:   sigmaSq,
		Seed:      seed,
		WarmStart: true,
	}
}

// lcpssSearch runs LC-PSS under the budget.
func lcpssSearch(env *sim.Env, b Budget, alpha float64) ([]int, error) {
	return partition.Search(env.Model, partition.Config{
		Alpha:           alpha,
		NumRandomSplits: b.RandomSplits,
		Providers:       env.NumProviders(),
		Seed:            b.Seed,
	})
}

// searchOSDS trains the splitter over fixed boundaries under the budget.
func searchOSDS(env *sim.Env, boundaries []int, b Budget) (*strategy.Strategy, error) {
	res, err := splitter.Search(env, boundaries, osdsConfig(b, env.NumProviders(), b.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: OSDS: %w", err)
	}
	return res.Strategy, nil
}

// PlanDistrEdge runs the full DistrEdge pipeline (LC-PSS with the given α,
// then OSDS) and returns the chosen strategy.
func PlanDistrEdge(env *sim.Env, b Budget, alpha float64) (*strategy.Strategy, error) {
	boundaries, err := lcpssSearch(env, b, alpha)
	if err != nil {
		return nil, fmt.Errorf("experiments: LC-PSS: %w", err)
	}
	return searchOSDS(env, boundaries, b)
}

// MethodRow is one bar of an IPS figure: a method's streaming performance
// in one case, with the Fig. 15 breakdown attached.
type MethodRow struct {
	Case       string
	Method     string
	IPS        float64
	MeanLatMS  float64
	MaxCompMS  float64
	MaxTransMS float64
	Volumes    int
}

// runMethod plans and streams one (case, method) grid cell. The env is
// shared by all of the case's method cells — its latency caches and plan
// memo are concurrency-safe and bit-identical to direct evaluation, so
// sharing keeps rows byte-identical while reaping the cache across
// methods.
func runMethod(env *sim.Env, spec Spec, name string, b Budget) (MethodRow, error) {
	var s *strategy.Strategy
	var err error
	if name == MethodDistrEdge {
		s, err = PlanDistrEdge(env, b, 0.75)
	} else {
		s, err = baselines.Plan(baselines.Method(name), env)
	}
	if err != nil {
		return MethodRow{}, fmt.Errorf("experiments: %s on %s: %w", name, spec.Name, err)
	}
	res, err := env.Stream(s, b.StreamImages, 0)
	if err != nil {
		return MethodRow{}, fmt.Errorf("experiments: %s on %s: %w", name, spec.Name, err)
	}
	return MethodRow{
		Case:       spec.Name,
		Method:     name,
		IPS:        res.IPS,
		MeanLatMS:  res.MeanLatMS,
		MaxCompMS:  res.Breakdown.MaxComp() * 1e3,
		MaxTransMS: res.Breakdown.MaxTrans() * 1e3,
		Volumes:    s.NumVolumes(),
	}, nil
}

// RunCases evaluates the full case×method grid of the given specs on the
// budget's worker pool and returns the rows in deterministic order (specs
// in input order, methods in MethodOrder), byte-identical for any worker
// count.
func RunCases(specs []Spec, b Budget) ([]MethodRow, error) {
	methods := MethodOrder()
	envs := make([]*sim.Env, len(specs))
	for i, spec := range specs {
		envs[i] = spec.Env()
	}
	rows := make([]MethodRow, len(specs)*len(methods))
	err := runIndexed(len(rows), b.Workers(), func(i int) error {
		c := i / len(methods)
		var err error
		rows[i], err = runMethod(envs[c], specs[c], methods[i%len(methods)], b)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunCase evaluates every method of MethodOrder on the spec and returns one
// row per method. The DistrEdge α is fixed to the paper's 0.75.
func RunCase(spec Spec, b Budget) ([]MethodRow, error) {
	return RunCases([]Spec{spec}, b)
}

// BestBaselineIPS returns the best non-DistrEdge, non-Offload IPS in rows —
// the comparison point for the paper's "1.1-3x over the best baseline".
func BestBaselineIPS(rows []MethodRow) float64 {
	var best float64
	for _, r := range rows {
		if r.Method == MethodDistrEdge {
			continue
		}
		if r.IPS > best {
			best = r.IPS
		}
	}
	return best
}

// FindRow returns the row of the given method, or false.
func FindRow(rows []MethodRow, method string) (MethodRow, bool) {
	for _, r := range rows {
		if r.Method == method {
			return r, true
		}
	}
	return MethodRow{}, false
}
