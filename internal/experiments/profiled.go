package experiments

import (
	"fmt"

	"distredge/internal/device"
	"distredge/internal/sim"
)

// ProfileForm names one of the profile representations Section IV allows:
// "DistrEdge allows various forms to express the profiling results of a
// device. It can be regression models (e.g., linear regression, piece-wise
// linear regression, k-nearest-neighbor) or a measured data table."
type ProfileForm string

// The profile forms of Section IV.
const (
	FormTable     ProfileForm = "table"
	FormLinear    ProfileForm = "linear"
	FormPiecewise ProfileForm = "piecewise"
	FormKNN       ProfileForm = "knn"
)

// ProfileForms lists all supported forms.
func ProfileForms() []ProfileForm {
	return []ProfileForm{FormTable, FormLinear, FormPiecewise, FormKNN}
}

// ProfiledEnv returns a copy of the environment whose devices are replaced
// by the given profile form, fit from noisy measurements of the real
// devices — the controller's view during planning. FC layers (one
// configuration point each) keep the measured device as fallback, exactly
// as a profiler would pin single-point measurements.
func ProfiledEnv(env *sim.Env, pr device.Profiler, form ProfileForm) (*sim.Env, error) {
	models := make([]device.LatencyModel, len(env.Devices))
	for i, d := range env.Devices {
		curves := pr.Measure(d, env.Model)
		switch form {
		case FormTable:
			models[i] = device.NewTableModel(curves, d)
		case FormLinear:
			models[i] = device.FitLinear(curves)
		case FormPiecewise:
			models[i] = device.FitPiecewiseLinear(curves, 4, d)
		case FormKNN:
			models[i] = device.FitKNN(curves, 3, 2, d)
		default:
			return nil, fmt.Errorf("experiments: unknown profile form %q", form)
		}
		pr.Seed++ // distinct measurement noise per device
	}
	return env.WithDevices(models), nil
}

// ProfiledPlanResult reports planning-on-profiles vs executing-on-hardware.
type ProfiledPlanResult struct {
	Form        ProfileForm
	PlannedIPS  float64 // what the controller predicted from the profiles
	ExecutedIPS float64 // what the true devices deliver
}

// PlanOnProfiles runs the paper's actual deployment workflow: the
// controller plans (LC-PSS + OSDS) against the *profiled* view of the
// devices, then the strategy executes on the true hardware models. The gap
// between PlannedIPS and ExecutedIPS measures the profile form's fidelity.
func PlanOnProfiles(env *sim.Env, b Budget, form ProfileForm) (ProfiledPlanResult, error) {
	pr := device.Profiler{Repeats: 20, Noise: 0.02, Seed: b.Seed}
	planView, err := ProfiledEnv(env, pr, form)
	if err != nil {
		return ProfiledPlanResult{}, err
	}
	strat, err := PlanDistrEdge(planView, b, 0.75)
	if err != nil {
		return ProfiledPlanResult{}, err
	}
	planned, err := planView.Stream(strat, b.StreamImages, 0)
	if err != nil {
		return ProfiledPlanResult{}, err
	}
	executed, err := env.Stream(strat, b.StreamImages, 0)
	if err != nil {
		return ProfiledPlanResult{}, err
	}
	return ProfiledPlanResult{
		Form:        form,
		PlannedIPS:  planned.IPS,
		ExecutedIPS: executed.IPS,
	}, nil
}
