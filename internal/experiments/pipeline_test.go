package experiments

import "testing"

func TestFig16WindowSweep(t *testing.T) {
	b := Tiny()
	windows := []int{1, 4}
	rows, err := Fig16WindowSweep(b, windows)
	if err != nil {
		t.Fatal(err)
	}
	// 2 cases x 2 methods x 2 windows.
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	bySeries := map[[2]string]map[int]WindowRow{}
	for _, r := range rows {
		if r.IPS <= 0 || r.SteadyIPS <= 0 || r.MeanLatMS <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		if r.P95LatMS < r.MeanLatMS*0.5 {
			t.Errorf("p95 %f below half the mean %f: %+v", r.P95LatMS, r.MeanLatMS, r)
		}
		key := [2]string{r.Case, r.Method}
		if bySeries[key] == nil {
			bySeries[key] = map[int]WindowRow{}
		}
		bySeries[key][r.Window] = r
	}
	for key, series := range bySeries {
		w1, ok1 := series[1]
		w4, ok4 := series[4]
		if !ok1 || !ok4 {
			t.Fatalf("series %v missing windows: %v", key, series)
		}
		if w1.SpeedupVsSeq != 1 {
			t.Errorf("series %v: window-1 speedup %f, want 1", key, w1.SpeedupVsSeq)
		}
		// Wider windows never reduce throughput on stable traces.
		if w4.IPS < w1.IPS*0.999 {
			t.Errorf("series %v: window 4 IPS %f below window 1 %f", key, w4.IPS, w1.IPS)
		}
		// The stage layout must show a real pipelined speedup.
		if key[1] == MethodStage && w4.SpeedupVsSeq < 1.3 {
			t.Errorf("series %v: stage speedup %f, want >= 1.3", key, w4.SpeedupVsSeq)
		}
	}
}

func TestFig16DeterministicAcrossWorkers(t *testing.T) {
	b := Tiny()
	serial, err := Fig16WindowSweep(b, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b.Parallel = 4
	parallel, err := Fig16WindowSweep(b, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}
