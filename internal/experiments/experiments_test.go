package experiments

import (
	"math"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
)

func TestGroupsMatchPaperTables(t *testing.T) {
	dg := DeviceGroups()
	if len(dg) != 3 || dg[0].Name != "DA" || dg[2].Name != "DC" {
		t.Fatalf("Table I groups wrong: %+v", dg)
	}
	if dg[1].Types[0] != device.Xavier || dg[1].Types[2] != device.Nano {
		t.Errorf("DB must be Xavier x2 + Nano x2: %v", dg[1].Types)
	}
	ng := NetworkGroups()
	if len(ng) != 4 || ng[3].Name != "ND" {
		t.Fatalf("Table II groups wrong: %+v", ng)
	}
	if ng[0].BandwidthsMbps[0] != 50 || ng[0].BandwidthsMbps[2] != 200 {
		t.Errorf("NA must be 50x2+200x2: %v", ng[0].BandwidthsMbps)
	}
	ls := LargeScaleCases()
	if len(ls) != 4 {
		t.Fatalf("Table III cases wrong: %d", len(ls))
	}
	for _, c := range ls {
		if len(c.Types) != 16 || len(c.BandwidthsMbps) != 16 {
			t.Errorf("%s: want 16 devices, got %d/%d", c.Name, len(c.Types), len(c.BandwidthsMbps))
		}
	}
	// LD pairs the fastest device with the fastest link.
	ld := ls[3]
	for i := 0; i < 16; i += 4 {
		if ld.Types[i+3] != device.Xavier || ld.BandwidthsMbps[i+3] != 300 {
			t.Errorf("LD quadruplet %d wrong: %v %v", i, ld.Types[i+3], ld.BandwidthsMbps[i+3])
		}
	}
}

func TestSpecEnv(t *testing.T) {
	spec := DeviceGroups()[0].Spec(cnn.VGG16(), 100, 1)
	env := spec.Env()
	if env.NumProviders() != 4 {
		t.Fatalf("providers = %d", env.NumProviders())
	}
	if env.Net.Providers[0].Trace.Mean() < 90 || env.Net.Providers[0].Trace.Mean() > 110 {
		t.Errorf("trace mean %g, want ~100", env.Net.Providers[0].Trace.Mean())
	}
}

func TestMethodOrder(t *testing.T) {
	mo := MethodOrder()
	if len(mo) != 8 || mo[6] != MethodDistrEdge || mo[7] != "Offload" {
		t.Fatalf("method order wrong: %v", mo)
	}
}

func TestRunCaseProducesAllMethods(t *testing.T) {
	rows, err := RunCase(DeviceGroups()[1].Spec(cnn.VGG16(), 50, 1), Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.IPS <= 0 || math.IsNaN(r.IPS) {
			t.Errorf("%s: bad IPS %g", r.Method, r.IPS)
		}
		if r.Volumes < 1 {
			t.Errorf("%s: bad volume count %d", r.Method, r.Volumes)
		}
	}
}

func TestDistrEdgeWinsOnHeterogeneousCase(t *testing.T) {
	// The headline claim (Fig. 7): on the highly heterogeneous Group DB,
	// DistrEdge beats every baseline. Use a slightly larger budget than
	// Tiny so OSDS has room to move.
	b := Tiny()
	b.Episodes = 60
	rows, err := RunCase(DeviceGroups()[1].Spec(cnn.VGG16(), 50, 1), b)
	if err != nil {
		t.Fatal(err)
	}
	de, ok := FindRow(rows, MethodDistrEdge)
	if !ok {
		t.Fatal("no DistrEdge row")
	}
	best := BestBaselineIPS(rows)
	if de.IPS < best {
		for _, r := range rows {
			t.Logf("%-14s IPS=%6.2f vols=%d", r.Method, r.IPS, r.Volumes)
		}
		t.Errorf("DistrEdge IPS %.2f below best baseline %.2f", de.IPS, best)
	}
}

func TestBestBaselineAndFindRow(t *testing.T) {
	rows := []MethodRow{
		{Method: "AOFL", IPS: 10},
		{Method: MethodDistrEdge, IPS: 30},
		{Method: "Offload", IPS: 12},
	}
	if got := BestBaselineIPS(rows); got != 12 {
		t.Errorf("BestBaselineIPS = %g, want 12", got)
	}
	if _, ok := FindRow(rows, "CoEdge"); ok {
		t.Error("FindRow found a missing method")
	}
}

func TestFig04And12Traces(t *testing.T) {
	rows := Fig04StableTraces(1)
	if len(rows) != 4 {
		t.Fatalf("Fig04 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CoefficientVariation > 0.10 {
			t.Errorf("stable trace %s too noisy: cv=%.3f", r.Name, r.CoefficientVariation)
		}
	}
	dyn := Fig12DynamicTraces(1)
	if len(dyn) != 4 {
		t.Fatalf("Fig12 rows = %d", len(dyn))
	}
	for _, r := range dyn {
		if r.CoefficientVariation < 0.05 {
			t.Errorf("dynamic trace %s too flat: cv=%.3f", r.Name, r.CoefficientVariation)
		}
		if r.MinMbps < 19 || r.MaxMbps > 111 {
			t.Errorf("dynamic trace %s out of band: [%g,%g]", r.Name, r.MinMbps, r.MaxMbps)
		}
	}
}

func TestFig14NonlinearStaircase(t *testing.T) {
	// GPUs must show a staircase (many flat steps); the CPU must not.
	gpu := Fig14Nonlinear(device.Xavier)
	cpu := Fig14Nonlinear(device.Pi3)
	if len(gpu) == 0 || gpu[0].OutputRows != 50 {
		t.Fatalf("unexpected sweep %v", gpu[:1])
	}
	sGPU, sCPU := Staircaseness(gpu), Staircaseness(cpu)
	if sGPU < 0.5 {
		t.Errorf("Xavier staircaseness %.2f, want >= 0.5", sGPU)
	}
	if sCPU > 0.2 {
		t.Errorf("Pi3 staircaseness %.2f, want ~0", sCPU)
	}
	// Latency must still be monotone overall.
	for i := 1; i < len(gpu); i++ {
		if gpu[i].LatencyMS < gpu[i-1].LatencyMS-1e-9 {
			t.Fatal("staircase must be monotone")
		}
	}
}

func TestFig05AlphaSweepSmall(t *testing.T) {
	b := Tiny()
	rows, err := Fig05AlphaSweep(b, 1) // one case, 5 alphas
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	byAlpha := map[float64]AlphaRow{}
	for _, r := range rows {
		byAlpha[r.Alpha] = r
	}
	// Partition granularity must decrease with alpha (paper Section V-C).
	if byAlpha[0].Volumes < byAlpha[1].Volumes {
		t.Errorf("alpha=0 volumes %d < alpha=1 volumes %d", byAlpha[0].Volumes, byAlpha[1].Volumes)
	}
}

func TestFig15BreakdownShape(t *testing.T) {
	rows, err := Fig15Breakdown(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	co, _ := FindRow(rows, "CoEdge")
	dt, _ := FindRow(rows, "DeepThings")
	// Layer-by-layer must be transmission-dominated relative to fused
	// equal-split (Fig. 15's story).
	if co.MaxTransMS < dt.MaxTransMS {
		t.Errorf("CoEdge trans %.1fms not above DeepThings %.1fms", co.MaxTransMS, dt.MaxTransMS)
	}
}

func TestBudgets(t *testing.T) {
	for _, b := range []Budget{Tiny(), Quick(), Full(), Paper()} {
		if b.Episodes <= 0 || b.StreamImages <= 0 || b.RandomSplits <= 0 {
			t.Errorf("bad budget %+v", b)
		}
	}
	if Paper().Episodes != 4000 {
		t.Error("paper budget must match Section V")
	}
}

func TestSortRows(t *testing.T) {
	rows := []MethodRow{
		{Case: "b", Method: "Offload"},
		{Case: "a", Method: MethodDistrEdge},
		{Case: "a", Method: "CoEdge"},
	}
	SortRows(rows)
	if rows[0].Case != "a" || rows[0].Method != "CoEdge" {
		t.Errorf("sort order wrong: %+v", rows)
	}
	if rows[2].Case != "b" {
		t.Errorf("sort order wrong: %+v", rows)
	}
}
