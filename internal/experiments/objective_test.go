package experiments

import (
	"testing"

	"distredge/internal/runtime"
	"distredge/internal/sim"
	"distredge/internal/strategy"
	"distredge/internal/transport"
)

func findObjectiveRow(rows []ObjectiveRow, c, planner string, window int) (ObjectiveRow, bool) {
	for _, r := range rows {
		if r.Case == c && r.Planner == planner && r.Window == window {
			return r, true
		}
	}
	return ObjectiveRow{}, false
}

// TestFigObjectiveThroughputPlannerWins is the sim half of the acceptance
// criterion: on both the stable and the dynamic case the IPS planner's
// strategy must sustain strictly more SteadyIPS than the latency
// planner's at window 4, while the latency planner keeps its win at the
// paper's sequential window 1 on the stable case (where the two planners
// disagree structurally: balanced split vs stage pipeline).
func TestFigObjectiveThroughputPlannerWins(t *testing.T) {
	rows, err := FigObjective(Tiny(), []int{1, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]bool{}
	for _, r := range rows {
		cases[r.Case] = true
	}
	if len(cases) < 2 {
		t.Fatalf("sweep covers %d case(s), want stable + dynamic", len(cases))
	}
	for c := range cases {
		lat4, ok1 := findObjectiveRow(rows, c, PlannerLatency, 4)
		ips4, ok2 := findObjectiveRow(rows, c, PlannerIPS, 4)
		if !ok1 || !ok2 {
			t.Fatalf("case %s missing window-4 rows", c)
		}
		t.Logf("%s window 4: latency-planned steady %.2f ips, ips-planned steady %.2f ips (%.2fx)",
			c, lat4.SteadyIPS, ips4.SteadyIPS, ips4.SteadyIPS/lat4.SteadyIPS)
		if ips4.SteadyIPS <= lat4.SteadyIPS {
			t.Errorf("case %s: ips planner does not win at window 4: %.3f <= %.3f",
				c, ips4.SteadyIPS, lat4.SteadyIPS)
		}
	}
	lat1, _ := findObjectiveRow(rows, "DB-200Mbps", PlannerLatency, 1)
	ips1, _ := findObjectiveRow(rows, "DB-200Mbps", PlannerIPS, 1)
	if lat1.IPS <= ips1.IPS {
		t.Errorf("latency planner must win the sequential protocol: %.3f <= %.3f", lat1.IPS, ips1.IPS)
	}
}

// TestFigObjectiveParallelDeterministic extends the harness determinism
// guarantee to the objective sweep: rows are byte-identical for any
// worker count.
func TestFigObjectiveParallelDeterministic(t *testing.T) {
	serial := Tiny()
	parallel := Tiny()
	parallel.Parallel = 4
	a, err := FigObjective(serial, []int{1, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FigObjective(parallel, []int{1, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestObjectiveDifferentialSimVsRuntime is the end-to-end half of the
// acceptance criterion: the simulator predicts that the throughput
// planner's strategy beats the latency planner's on measured IPS at
// window 4 while losing the sequential window-1 protocol, and the real
// runtime — deployed over the trace-shaped transport of PR 4, so the wire
// charges the same WiFi conditions the planners optimised against — must
// reproduce both orderings with a real margin.
func TestObjectiveDifferentialSimVsRuntime(t *testing.T) {
	env := objectiveCases(1)[0].env() // stable Group DB on VGG-16
	b := Tiny()
	latPlan, err := PlanObjective(env, b, 0.75, nil)
	if err != nil {
		t.Fatal(err)
	}
	ipsPlan, err := PlanObjective(env, b, 0.75, sim.ThroughputObjective{Window: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Sim predictions.
	simIPS := func(s *strategy.Strategy, w int) float64 {
		t.Helper()
		res, err := env.PipelineStream(s, 40, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.SteadyIPS
	}
	if got, want := simIPS(ipsPlan, 4), simIPS(latPlan, 4); got <= want {
		t.Fatalf("sim must predict the ips plan ahead at window 4: %.3f <= %.3f", got, want)
	}
	if got, want := simIPS(latPlan, 1), simIPS(ipsPlan, 1); got <= want {
		t.Fatalf("sim must predict the latency plan ahead at window 1: %.3f <= %.3f", got, want)
	}

	// Runtime measurements over the shaped wire. The time scale keeps
	// per-image wall cost well above the runtime's fixed per-chunk
	// overhead (at 0.1 the stage plan's ~34ms model image shrinks to
	// ~3ms of wall, and scheduling noise compresses the measured ratios).
	const timeScale, bytesScale = 0.3, 0.001
	const images = 12
	run := func(s *strategy.Strategy, w int) float64 {
		t.Helper()
		opts := runtime.Options{
			TimeScale:         timeScale,
			BytesScale:        bytesScale,
			Batch:             1,  // the sim predictions compared against are unbatched
			HeartbeatInterval: -1, // charged links must not starve liveness
		}
		opts.Transport = transport.NewShaped(transport.NewPooledInproc(nil), env.Net, timeScale, bytesScale, 0)
		cl, err := runtime.Deploy(env, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		st, err := cl.RunPipelined(images, w)
		if err != nil {
			t.Fatal(err)
		}
		return st.IPS
	}
	latW1, latW4 := run(latPlan, 1), run(latPlan, 4)
	ipsW1, ipsW4 := run(ipsPlan, 1), run(ipsPlan, 4)
	t.Logf("runtime wall IPS: latency plan w1 %.2f w4 %.2f; ips plan w1 %.2f w4 %.2f",
		latW1, latW4, ipsW1, ipsW4)
	// The sim predicts ~1.7x; the runtime's gap-filling step queue lets
	// the latency plan pipeline better than the conservative model, so
	// the measured margin lands nearer 1.25x — still a real ordering.
	if ipsW4 <= 1.1*latW4 {
		t.Errorf("runtime does not reproduce the window-4 ordering: ips plan %.2f vs latency plan %.2f", ipsW4, latW4)
	}
	if latW1 <= 1.15*ipsW1 {
		t.Errorf("runtime does not reproduce the window-1 ordering: latency plan %.2f vs ips plan %.2f", latW1, ipsW1)
	}
}
