package experiments

import "testing"

func TestAblationNonlinearity(t *testing.T) {
	// The paper's causal story: remove the staircase and the linear
	// baselines stop losing badly. We require DistrEdge's margin over AOFL
	// to shrink (or at least not grow) in the linearised world.
	b := Tiny()
	b.Episodes = 50
	res, err := AblationNonlinearity(b, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaircaseSpeedup <= 1.0 {
		t.Errorf("DistrEdge should beat AOFL on staircase devices, got %.2fx", res.StaircaseSpeedup)
	}
	if res.LinearSpeedup > res.StaircaseSpeedup*1.05 {
		t.Errorf("linearising devices should not grow the margin: staircase %.2fx vs linear %.2fx",
			res.StaircaseSpeedup, res.LinearSpeedup)
	}
}

func TestAblationWarmStart(t *testing.T) {
	// At small training budgets, warm-start must not hurt (its whole point
	// is anchoring short runs).
	b := Tiny()
	b.Episodes = 30
	res, err := AblationWarmStart(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithWarmStartIPS <= 0 || res.WithoutWarmStartIPS <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	if res.WithWarmStartIPS < res.WithoutWarmStartIPS*0.9 {
		t.Errorf("warm start hurt: with %.2f vs without %.2f", res.WithWarmStartIPS, res.WithoutWarmStartIPS)
	}
}

func TestAblationPartition(t *testing.T) {
	b := Tiny()
	rows, err := AblationPartition(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]AblationPartitionRow{}
	for _, r := range rows {
		if r.IPS <= 0 {
			t.Errorf("%s: bad IPS", r.Partition)
		}
		byName[r.Partition] = r
	}
	// LC-PSS must beat the layer-by-layer partition at 50 Mbps (the
	// transmission-dominated regime the paper highlights).
	if byName["lc-pss"].IPS < byName["layer-by-layer"].IPS {
		t.Errorf("lc-pss %.2f below layer-by-layer %.2f", byName["lc-pss"].IPS, byName["layer-by-layer"].IPS)
	}
	if byName["single-volume"].Volumes != 1 {
		t.Error("single-volume family must have 1 volume")
	}
}
