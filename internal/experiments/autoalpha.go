package experiments

import (
	"fmt"

	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// PlanDistrEdgeAutoAlpha applies the paper's own Fig. 5 methodology as a
// planning step: run the LC-PSS + OSDS pipeline for each candidate α,
// measure each resulting strategy on the profiles, and keep the best. The
// paper does this sweep once offline to fix α=0.75 for its testbed; on a
// different substrate the best α can vary per model/fleet (see the
// OpenPose row in EXPERIMENTS.md), and the controller already owns
// everything needed to select it automatically.
//
// It returns the winning strategy, its α and its measured IPS.
func PlanDistrEdgeAutoAlpha(env *sim.Env, b Budget, alphas []float64) (*strategy.Strategy, float64, float64, error) {
	if len(alphas) == 0 {
		alphas = []float64{0.25, 0.5, 0.75}
	}
	var bestStrat *strategy.Strategy
	bestAlpha, bestIPS := 0.0, -1.0
	seen := map[string]bool{}
	for _, alpha := range alphas {
		boundaries, err := lcpssSearch(env, b, alpha)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("experiments: auto-alpha %g: %w", alpha, err)
		}
		key := fmt.Sprint(boundaries)
		if seen[key] {
			continue // identical partition: OSDS would repeat itself
		}
		seen[key] = true
		strat, err := osdsOn(env, b, boundaries)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("experiments: auto-alpha %g: %w", alpha, err)
		}
		res, err := env.Stream(strat, b.StreamImages, 0)
		if err != nil {
			return nil, 0, 0, err
		}
		if res.IPS > bestIPS {
			bestStrat, bestAlpha, bestIPS = strat, alpha, res.IPS
		}
	}
	if bestStrat == nil {
		return nil, 0, 0, fmt.Errorf("experiments: auto-alpha found no strategy")
	}
	return bestStrat, bestAlpha, bestIPS, nil
}

// osdsOn runs OSDS over fixed boundaries under the budget.
func osdsOn(env *sim.Env, b Budget, boundaries []int) (*strategy.Strategy, error) {
	res, err := searchOSDS(env, boundaries, b)
	if err != nil {
		return nil, err
	}
	return res, nil
}
