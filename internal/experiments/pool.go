package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves the budget's Parallel setting to a worker count:
// 0 or 1 mean serial, negative means one worker per CPU.
func (b Budget) Workers() int {
	w := b.Parallel
	if w < 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runIndexed executes fn(0..n-1) on up to `workers` goroutines and returns
// the first error by task index. Each task writes its result into its own
// slot (closured by index), so the assembled output is identical for any
// worker count — determinism comes from per-task isolation plus indexed
// collection, not from execution order.
func runIndexed(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true) // stop claiming; the grid is discarded anyway
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
