package experiments

import (
	"fmt"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/strategy"
)

// WindowRow is one cell of the throughput-vs-window grid: a (case, method)
// strategy served with the given admission window.
type WindowRow struct {
	Case      string
	Method    string
	Window    int
	IPS       float64
	SteadyIPS float64
	MeanLatMS float64
	P95LatMS  float64
	// SpeedupVsSeq is IPS relative to the same strategy served
	// sequentially (window 1).
	SpeedupVsSeq float64
}

// MethodStage labels the throughput-oriented stage layout in window rows.
const MethodStage = "Stage"

// StageStrategy builds the stage-pipelined layout: volume v of the given
// boundaries runs entirely on provider v mod n, so a filled admission
// window pays only the slowest stage per image instead of the sum.
func StageStrategy(m *cnn.Model, boundaries []int, n int) *strategy.Strategy {
	s := &strategy.Strategy{Boundaries: boundaries}
	for v := 0; v+1 < len(boundaries); v++ {
		h := strategy.VolumeHeight(m, boundaries, v)
		s.Splits = append(s.Splits, strategy.AllOnProvider(h, n, v%n))
	}
	return s
}

// StageBoundaries merges the model's pool boundaries down to at most n
// volumes. With more volumes than providers a stage layout wraps two stages
// onto one device, whose per-image busy span then covers most of the image
// — serialising the pipeline it was meant to fill.
func StageBoundaries(m *cnn.Model, n int) []int {
	pb := strategy.PoolBoundaries(m)
	vols := len(pb) - 1
	if vols <= n {
		return pb
	}
	out := make([]int, n+1)
	for i := 0; i <= n; i++ {
		out[i] = pb[i*vols/n]
	}
	return out
}

// DefaultWindows is the admission-window grid distbench sweeps.
func DefaultWindows() []int { return []int{1, 2, 4, 8} }

// windowSpecs are the cases of the window sweep: the Table I Group DB
// fleet on VGG-16 plus a homogeneous Nano fleet on the fully-convolutional
// YOLOv2 (no FC gather stage, so stage pipelining has the most to gain).
func windowSpecs(seed int64) []Spec {
	return []Spec{
		DeviceGroups()[1].Spec(cnn.VGG16(), 200, seed),
		{
			Name:           "NanoX4-100Mbps-yolov2",
			Model:          cnn.YOLOv2(),
			Types:          []device.Type{device.Nano, device.Nano, device.Nano, device.Nano},
			BandwidthsMbps: uniform(100, 4),
			Seed:           seed,
		},
	}
}

// Fig16WindowSweep measures sustained images/sec versus admission window
// size for each case: the DistrEdge-planned strategy (optimised for
// single-image latency) against the stage layout (optimised for pipelined
// throughput). Cases run on the budget's worker pool; rows are
// deterministic for any worker count.
func Fig16WindowSweep(b Budget, windows []int) ([]WindowRow, error) {
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	specs := windowSpecs(b.Seed)
	perCase := make([][]WindowRow, len(specs))
	err := runIndexed(len(specs), b.Workers(), func(ci int) error {
		spec := specs[ci]
		env := spec.Env()
		planned, err := PlanDistrEdge(env, b, 0.75)
		if err != nil {
			return fmt.Errorf("experiments: window sweep %s: %w", spec.Name, err)
		}
		stage := StageStrategy(spec.Model, StageBoundaries(spec.Model, env.NumProviders()), env.NumProviders())
		var rows []WindowRow
		for _, m := range []struct {
			name  string
			strat *strategy.Strategy
		}{
			{MethodDistrEdge, planned},
			{MethodStage, stage},
		} {
			seq, err := env.PipelineStream(m.strat, b.StreamImages, 1, 0)
			if err != nil {
				return fmt.Errorf("experiments: window sweep %s/%s: %w", spec.Name, m.name, err)
			}
			for _, w := range windows {
				res := seq
				if w != 1 {
					res, err = env.PipelineStream(m.strat, b.StreamImages, w, 0)
					if err != nil {
						return fmt.Errorf("experiments: window sweep %s/%s: %w", spec.Name, m.name, err)
					}
				}
				rows = append(rows, WindowRow{
					Case:         spec.Name,
					Method:       m.name,
					Window:       w,
					IPS:          res.IPS,
					SteadyIPS:    res.SteadyIPS,
					MeanLatMS:    res.MeanLatMS,
					P95LatMS:     res.P95LatMS,
					SpeedupVsSeq: res.IPS / seq.IPS,
				})
			}
		}
		perCase[ci] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []WindowRow
	for _, rows := range perCase {
		out = append(out, rows...)
	}
	return out, nil
}
