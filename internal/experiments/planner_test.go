package experiments

import (
	"testing"

	"distredge/internal/plancache"
)

// TestPlannerSweepPhasesAndDeterminism drives the three phases of the
// planner-service sweep at the tiny budget and pins the phase contracts:
// every cold planning is cold, every exact re-planning is a signature hit
// with an identical score, every warm planning warm-starts with a donor
// key, and the rows are byte-identical for any worker count.
func TestPlannerSweepPhasesAndDeterminism(t *testing.T) {
	runSweep := func(parallel int) ([]PlannerRow, []PlannerRow, []PlannerRow, plancache.Stats) {
		t.Helper()
		b := Tiny()
		b.Parallel = parallel
		ps := NewPlannerSweep(b, 0)
		cold, err := ps.Cold()
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ps.Exact()
		if err != nil {
			t.Fatal(err)
		}
		warm, err := ps.Warm()
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.WarmReference(warm); err != nil {
			t.Fatal(err)
		}
		return cold, exact, warm, ps.Stats()
	}

	cold, exact, warm, stats := runSweep(1)
	if len(cold) != 4 || len(exact) != 4 || len(warm) != 4 {
		t.Fatalf("row counts cold/exact/warm = %d/%d/%d, want 4 each", len(cold), len(exact), len(warm))
	}
	for i := range cold {
		if cold[i].Outcome != plancache.OutcomeCold {
			t.Errorf("cold row %s: outcome %q", cold[i].Fleet, cold[i].Outcome)
		}
		if exact[i].Outcome != plancache.OutcomeHit {
			t.Errorf("exact row %s: outcome %q", exact[i].Fleet, exact[i].Outcome)
		}
		if exact[i].Fleet != cold[i].Fleet || exact[i].Score != cold[i].Score {
			t.Errorf("exact row %s must serve the cold plan's score: %g vs %g",
				exact[i].Fleet, exact[i].Score, cold[i].Score)
		}
	}
	for _, r := range warm {
		if r.Outcome != plancache.OutcomeWarm {
			t.Errorf("warm row %s: outcome %q, want warm", r.Fleet, r.Outcome)
		}
		if r.SeedKey == "" {
			t.Errorf("warm row %s: no donor signature", r.Fleet)
		}
		if r.ColdScore <= 0 {
			t.Errorf("warm row %s: cold reference score %g not filled", r.Fleet, r.ColdScore)
		}
	}
	// Cold: 4 misses into empty caches. Exact: 4 hits. Warm: 4 misses that
	// each warm-started.
	want := plancache.Stats{Hits: 4, Misses: 8, WarmHits: 4}
	if stats != want {
		t.Errorf("aggregated cache stats = %+v, want %+v", stats, want)
	}

	pc, pe, pw, pstats := runSweep(4)
	if stats != pstats {
		t.Errorf("parallel sweep stats differ: %+v vs %+v", pstats, stats)
	}
	for i := range cold {
		if pc[i] != cold[i] || pe[i] != exact[i] || pw[i] != warm[i] {
			t.Fatalf("row %d differs between worker counts:\n%+v\n%+v\n%+v\nvs\n%+v\n%+v\n%+v",
				i, pc[i], pe[i], pw[i], cold[i], exact[i], warm[i])
		}
	}
}
