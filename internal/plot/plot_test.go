package plot

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input must yield empty string")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("sparkline length %d, want 8", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("extremes wrong: %s", s)
	}
}

func TestSparklineFlat(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5})
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("length %d", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != runes[1] || runes[1] != runes[2] {
		t.Error("flat series must render uniformly")
	}
}

func TestSparklineLengthProperty(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if v != v { // NaN guard
				vals[i] = 0
			}
		}
		return utf8.RuneCountInString(Sparkline(vals)) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDownsample(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	ds := Downsample(vals, 10)
	if len(ds) != 10 {
		t.Fatalf("len = %d, want 10", len(ds))
	}
	// Bucket means of 0..9, 10..19, ... = 4.5, 14.5, ...
	if ds[0] != 4.5 || ds[9] != 94.5 {
		t.Errorf("means wrong: %v", ds)
	}
	if got := Downsample(vals, 200); len(got) != 100 {
		t.Error("upsampling must be a copy")
	}
	if got := Downsample(vals, 0); len(got) != 100 {
		t.Error("n<=0 must be a copy")
	}
}

func TestDownsampleDoesNotAlias(t *testing.T) {
	vals := []float64{1, 2, 3}
	ds := Downsample(vals, 5)
	ds[0] = 99
	if vals[0] == 99 {
		t.Error("Downsample must copy")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]Bar{{"alpha", 10}, {"beta", 5}, {"neg", -3}}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("█", 10)) {
		t.Errorf("max bar must be full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], "█████░░░░░") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if strings.Contains(lines[2], "█") {
		t.Errorf("negative value must render empty: %q", lines[2])
	}
	if BarChart(nil, 10) != "" {
		t.Error("empty chart must be empty")
	}
}

func TestLines(t *testing.T) {
	out := Lines([]Series{
		{Name: "a", Values: []float64{1, 2, 3, 4}},
		{Name: "bb", Values: []float64{4, 3, 2, 1}},
	}, 4)
	if !strings.Contains(out, "a ") || !strings.Contains(out, "bb") {
		t.Errorf("names missing: %q", out)
	}
	if !strings.Contains(out, "scale 1.0 .. 4.0") {
		t.Errorf("scale annotation missing: %q", out)
	}
	if Lines(nil, 10) != "" {
		t.Error("empty plot must be empty")
	}
}
