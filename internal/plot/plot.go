// Package plot renders small terminal visualisations — sparklines, bar
// charts and multi-series line plots — used by cmd/distbench to show trace
// shapes (Fig. 4/12), the latency staircase (Fig. 14) and IPS comparisons
// without leaving the terminal.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// sparkTicks are the eighth-block characters used by Sparkline.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single-line unicode sparkline. Empty input
// yields an empty string; a flat series renders mid-height.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := len(sparkTicks) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkTicks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkTicks) {
			idx = len(sparkTicks) - 1
		}
		b.WriteRune(sparkTicks[idx])
	}
	return b.String()
}

// Downsample reduces values to at most n points by bucket-averaging,
// preserving the curve's shape for terminal-width rendering.
func Downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		return append([]float64(nil), values...)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(values) / n
		hi := (i + 1) * len(values) / n
		if hi <= lo {
			hi = lo + 1
		}
		var s float64
		for _, v := range values[lo:hi] {
			s += v
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

// Bar is one row of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders labelled horizontal bars scaled to width characters,
// with the numeric value appended. Negative values are clamped to zero.
func BarChart(bars []Bar, width int) string {
	if len(bars) == 0 {
		return ""
	}
	if width < 1 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for _, b := range bars {
		if b.Value > maxV {
			maxV = b.Value
		}
		if len(b.Label) > maxL {
			maxL = len(b.Label)
		}
	}
	var sb strings.Builder
	for _, b := range bars {
		v := b.Value
		if v < 0 {
			v = 0
		}
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&sb, "%-*s %s%s %.2f\n", maxL, b.Label,
			strings.Repeat("█", n), strings.Repeat("░", width-n), b.Value)
	}
	return sb.String()
}

// Series is one named line of a Lines plot.
type Series struct {
	Name   string
	Values []float64
}

// Lines renders multiple series as stacked sparklines with a shared scale
// annotation, one per row.
func Lines(series []Series, width int) string {
	if len(series) == 0 {
		return ""
	}
	if width < 1 {
		width = 60
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxL := 0
	for _, s := range series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s.Name) > maxL {
			maxL = len(s.Name)
		}
	}
	var sb strings.Builder
	for _, s := range series {
		ds := Downsample(s.Values, width)
		// Render against the global scale so series are comparable.
		var b strings.Builder
		for _, v := range ds {
			idx := len(sparkTicks) / 2
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(sparkTicks)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkTicks) {
				idx = len(sparkTicks) - 1
			}
			b.WriteRune(sparkTicks[idx])
		}
		fmt.Fprintf(&sb, "%-*s %s\n", maxL, s.Name, b.String())
	}
	fmt.Fprintf(&sb, "%-*s (scale %.1f .. %.1f)\n", maxL, "", lo, hi)
	return sb.String()
}
