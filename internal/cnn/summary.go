package cnn

import (
	"fmt"
	"strings"
)

// Summary renders a per-layer table of the model: kind, output shape,
// filter geometry, operations and activation bytes, with totals — the view
// cmd/distredge -describe prints.
func (m *Model) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d layers (%d splittable, %d fc), %.2f GFLOPs, input %.0f KB\n",
		m.Name, len(m.Layers), m.NumSplittable(), len(m.FCLayers()),
		m.TotalOps()/1e9, m.InputBytes()/1e3)
	fmt.Fprintf(&b, "%-14s %-8s %-14s %-9s %10s %10s\n",
		"layer", "kind", "output", "f/s/p", "MFLOPs", "out KB")
	for _, l := range m.Layers {
		shape := fmt.Sprintf("%dx%dx%d", l.OutWidth(), l.OutHeight(), l.OutDepth())
		geom := fmt.Sprintf("%d/%d/%d", l.F, l.S, l.P)
		if l.Kind == FC {
			shape = fmt.Sprintf("%d", l.Cout)
			geom = "-"
		}
		fmt.Fprintf(&b, "%-14s %-8s %-14s %-9s %10.1f %10.1f\n",
			l.Name, l.Kind, shape, geom, l.Ops()/1e6, l.OutputBytes()/1e3)
	}
	return b.String()
}

// ReceptiveField returns the receptive-field size and cumulative stride
// (jump) of the given layer chain: how many input rows influence one output
// row, and how far apart consecutive output rows sample the input. This is
// the quantity behind the VSL halo: a split-part's input extends ~RF/2 rows
// beyond its nominal share on each side.
func ReceptiveField(layers []Layer) (size, jump int) {
	size, jump = 1, 1
	for _, l := range layers {
		if !l.Splittable() {
			break
		}
		size += (l.F - 1) * jump
		jump *= l.S
	}
	return size, jump
}

// HaloRows returns how many extra input rows a split-part of this layer
// chain needs beyond its proportional share (the receptive-field overhang),
// a direct measure of the recompute cost of fusing the chain.
func HaloRows(layers []Layer) int {
	size, _ := ReceptiveField(layers)
	return size - 1
}

// WeightBytes returns the parameter storage of the model in bytes
// (FP16 weights + biases), the quantity the paper's Discussion (4) bounds
// by 1.5 GB for state-of-the-art models.
func (m *Model) WeightBytes() float64 {
	var sum float64
	for _, l := range m.Layers {
		switch l.Kind {
		case Conv:
			sum += (float64(l.F)*float64(l.F)*float64(l.Cin) + 1) * float64(l.Cout) * BytesPerElem
		case FC:
			sum += (float64(l.Cin) + 1) * float64(l.Cout) * BytesPerElem
		}
	}
	return sum
}

// PeakActivationBytes returns the largest input+output activation pair of
// any layer — the working-set floor for running the model whole.
func (m *Model) PeakActivationBytes() float64 {
	var peak float64
	for _, l := range m.Layers {
		if v := l.InputBytes() + l.OutputBytes(); v > peak {
			peak = v
		}
	}
	return peak
}

// MemoryFootprintBytes returns the total memory needed to run the model on
// one device: all weights plus the peak activation working set.
func (m *Model) MemoryFootprintBytes() float64 {
	return m.WeightBytes() + m.PeakActivationBytes()
}
