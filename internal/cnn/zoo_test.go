package cnn

import "testing"

func TestZooModelsValidate(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 8 {
		t.Fatalf("zoo has %d models, want 8", len(zoo))
	}
	for name, m := range zoo {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.NumSplittable() < 5 {
			t.Errorf("%s: only %d splittable layers", name, m.NumSplittable())
		}
	}
}

func TestZooNamesComplete(t *testing.T) {
	zoo := Zoo()
	names := ZooNames()
	if len(names) != len(zoo) {
		t.Fatalf("ZooNames has %d entries, zoo has %d", len(names), len(zoo))
	}
	for _, n := range names {
		if _, ok := zoo[n]; !ok {
			t.Errorf("ZooNames lists %q which is not in the zoo", n)
		}
	}
}

func TestVGG16Shape(t *testing.T) {
	m := VGG16()
	conv := m.SplittableLayers()
	if len(conv) != 18 { // 13 conv + 5 pool
		t.Fatalf("VGG16 splittable layers = %d, want 18", len(conv))
	}
	last := conv[len(conv)-1]
	if last.OutWidth() != 7 || last.OutHeight() != 7 || last.OutDepth() != 512 {
		t.Errorf("VGG16 final feature map = %dx%dx%d, want 7x7x512",
			last.OutWidth(), last.OutHeight(), last.OutDepth())
	}
	if len(m.FCLayers()) != 3 {
		t.Errorf("VGG16 FC layers = %d, want 3", len(m.FCLayers()))
	}
}

func TestResNet50Shape(t *testing.T) {
	m := ResNet50()
	conv := m.SplittableLayers()
	last := conv[len(conv)-1]
	if last.OutWidth() != 7 || last.OutHeight() != 7 || last.OutDepth() != 2048 {
		t.Errorf("ResNet50 final feature map = %dx%dx%d, want 7x7x2048",
			last.OutWidth(), last.OutHeight(), last.OutDepth())
	}
	// 1 conv + 1 pool + 3*(3)+4*3+6*3+3*3 bottleneck convs = 50 layers total
	// in the chain (the canonical "50" counts conv+fc; ours: 1+48 convs+pool).
	if got := len(conv); got != 2+3*16 {
		t.Errorf("ResNet50 splittable layers = %d, want %d", got, 2+3*16)
	}
}

func TestInceptionV3Shape(t *testing.T) {
	m := InceptionV3()
	conv := m.SplittableLayers()
	last := conv[len(conv)-1]
	if last.OutWidth() != 8 || last.OutHeight() != 8 || last.OutDepth() != 2048 {
		t.Errorf("InceptionV3 final map = %dx%dx%d, want 8x8x2048",
			last.OutWidth(), last.OutHeight(), last.OutDepth())
	}
}

func TestYOLOv2Shape(t *testing.T) {
	m := YOLOv2()
	conv := m.SplittableLayers()
	last := conv[len(conv)-1]
	if last.OutWidth() != 13 || last.OutHeight() != 13 || last.OutDepth() != 425 {
		t.Errorf("YOLOv2 final map = %dx%dx%d, want 13x13x425",
			last.OutWidth(), last.OutHeight(), last.OutDepth())
	}
	if len(m.FCLayers()) != 0 {
		t.Error("YOLOv2 must be fully convolutional")
	}
}

func TestSSDShapes(t *testing.T) {
	for _, m := range []*Model{SSDVGG16(), SSDResNet50()} {
		conv := m.SplittableLayers()
		last := conv[len(conv)-1]
		if last.OutHeight() < 1 || last.OutHeight() > 3 {
			t.Errorf("%s final map height = %d, want 1-3", m.Name, last.OutHeight())
		}
	}
}

func TestOpenPoseShape(t *testing.T) {
	m := OpenPose()
	conv := m.SplittableLayers()
	last := conv[len(conv)-1]
	if last.OutWidth() != 46 || last.OutHeight() != 46 || last.OutDepth() != 57 {
		t.Errorf("OpenPose final map = %dx%dx%d, want 46x46x57",
			last.OutWidth(), last.OutHeight(), last.OutDepth())
	}
}

func TestVoxelNetShape(t *testing.T) {
	m := VoxelNet()
	conv := m.SplittableLayers()
	last := conv[len(conv)-1]
	if last.OutHeight() != 50 || last.OutDepth() != 14 {
		t.Errorf("VoxelNet final map height/depth = %d/%d, want 50/14",
			last.OutHeight(), last.OutDepth())
	}
}

func TestZooOpsOrdering(t *testing.T) {
	// Sanity: all models should have nontrivial compute (> 1 GFLOP) and the
	// heavy detectors should exceed the classifiers.
	zoo := Zoo()
	for name, m := range zoo {
		if m.TotalOps() < 1e9 {
			t.Errorf("%s: ops %.3g implausibly small", name, m.TotalOps())
		}
	}
	if zoo["voxelnet"].TotalOps() < zoo["resnet50"].TotalOps() {
		t.Error("VoxelNet should out-compute ResNet50")
	}
}
