package cnn

import "fmt"

// RowRange is a half-open interval [Lo, Hi) of row indices on some layer's
// output (or input) height dimension.
type RowRange struct {
	Lo, Hi int
}

// Len returns the number of rows in the range (never negative).
func (r RowRange) Len() int {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// Empty reports whether the range contains no rows.
func (r RowRange) Empty() bool { return r.Len() == 0 }

// Intersect returns the overlap of two ranges (possibly empty).
func (r RowRange) Intersect(o RowRange) RowRange {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		hi = lo
	}
	return RowRange{lo, hi}
}

// String formats the range as [lo,hi).
func (r RowRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// InputRows returns the input row range of layer l required to compute the
// output rows out. This is the exact, padding-aware form of the paper's
// Eq. 1-2: output row y reads input rows [y*S-P, y*S-P+F), so the range
// [a,b) reads [a*S-P, (b-1)*S-P+F), clamped to the layer's input extent.
// In the interior (no clamping) this reduces to h_in = (h_out-1)*S + F.
func InputRows(l Layer, out RowRange) RowRange {
	if out.Empty() {
		return RowRange{}
	}
	lo := out.Lo*l.S - l.P
	hi := (out.Hi-1)*l.S - l.P + l.F
	if lo < 0 {
		lo = 0
	}
	if hi > l.Hin {
		hi = l.Hin
	}
	if hi < lo {
		hi = lo
	}
	return RowRange{lo, hi}
}

// VolumeRanges applies the Vertical-Splitting Law across a layer-volume:
// given the volume's layers and the desired output rows of the *last* layer,
// it returns the output row range of every layer in the volume (the range
// each sub-layer must produce). result[len(layers)-1] == out, and the input
// rows the split-part needs from the volume's input are
// InputRows(layers[0], result[0]).
func VolumeRanges(layers []Layer, out RowRange) []RowRange {
	n := len(layers)
	res := make([]RowRange, n)
	cur := out
	for i := n - 1; i >= 0; i-- {
		res[i] = cur
		cur = InputRows(layers[i], cur)
	}
	return res
}

// VolumeRangesInto is VolumeRanges writing into a caller-provided buffer,
// growing it if needed — the allocation-free form used by hot paths (the
// device latency cache, plan compilation). The returned slice has
// len(layers) entries and aliases dst when it was large enough.
func VolumeRangesInto(dst []RowRange, layers []Layer, out RowRange) []RowRange {
	n := len(layers)
	if cap(dst) < n {
		dst = make([]RowRange, n)
	}
	dst = dst[:n]
	cur := out
	for i := n - 1; i >= 0; i-- {
		dst[i] = cur
		cur = InputRows(layers[i], cur)
	}
	return dst
}

// VolumeInputRows returns the input row range (on the volume's input tensor)
// required for the last layer of the volume to produce out.
func VolumeInputRows(layers []Layer, out RowRange) RowRange {
	cur := out
	for i := len(layers) - 1; i >= 0; i-- {
		cur = InputRows(layers[i], cur)
	}
	return cur
}

// VolumeOps returns the total operation count to compute output rows out of
// the volume's last layer, including the halo recomputation implied by the
// VSL (each sub-layer computes all rows its successor needs).
func VolumeOps(layers []Layer, out RowRange) float64 {
	ranges := VolumeRanges(layers, out)
	var sum float64
	for i, l := range layers {
		sum += l.OpsRows(ranges[i].Len())
	}
	return sum
}

// VolumeInputBytes returns the number of input bytes (on the volume's input
// tensor) the split-part producing out must receive.
func VolumeInputBytes(layers []Layer, out RowRange) float64 {
	in := VolumeInputRows(layers, out)
	return float64(in.Len()) * layers[0].InRowBytes()
}
