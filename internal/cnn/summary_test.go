package cnn

import (
	"strings"
	"testing"
)

func TestSummaryContents(t *testing.T) {
	m := VGG16()
	s := m.Summary()
	for _, want := range []string{"vgg16", "conv1_1", "pool5", "fc8", "GFLOPs", "224x224x64"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
	if lines := strings.Count(s, "\n"); lines < len(m.Layers) {
		t.Errorf("summary has %d lines for %d layers", lines, len(m.Layers))
	}
}

func TestReceptiveField(t *testing.T) {
	// Two stacked 3x3 s1 convs: RF 5, jump 1.
	convs := VGG16().SplittableLayers()
	size, jump := ReceptiveField(convs[:2])
	if size != 5 || jump != 1 {
		t.Errorf("two 3x3 convs: rf=%d jump=%d, want 5/1", size, jump)
	}
	// conv,conv,pool2: RF 6, jump 2.
	size, jump = ReceptiveField(convs[:3])
	if size != 6 || jump != 2 {
		t.Errorf("block1: rf=%d jump=%d, want 6/2", size, jump)
	}
	// Whole VGG-16 conv stack: jump = 2^5 = 32 (five pools).
	size, jump = ReceptiveField(convs)
	if jump != 32 {
		t.Errorf("vgg16 jump = %d, want 32", jump)
	}
	if size < 200 {
		t.Errorf("vgg16 receptive field %d implausibly small", size)
	}
}

func TestReceptiveFieldMatchesVSL(t *testing.T) {
	// The receptive-field formula must agree with the VSL: one output row's
	// input range on an unclamped (interior) chain spans exactly RF rows.
	layers := VGG16().SplittableLayers()[:6] // through pool2
	size, _ := ReceptiveField(layers)
	mid := layers[5].OutHeight() / 2
	in := VolumeInputRows(layers, RowRange{mid, mid + 1})
	if in.Len() != size {
		t.Errorf("VSL input rows %d != receptive field %d", in.Len(), size)
	}
}

func TestHaloRows(t *testing.T) {
	layers := VGG16().SplittableLayers()[:2]
	if got := HaloRows(layers); got != 4 {
		t.Errorf("halo of two 3x3 convs = %d, want 4", got)
	}
}

func TestWeightBytesVGG16(t *testing.T) {
	// VGG-16 famously has ~138M parameters; FP16 ⇒ ~276 MB.
	wb := VGG16().WeightBytes()
	if wb < 250e6 || wb > 300e6 {
		t.Errorf("VGG-16 weights = %.0f MB, want ~276 MB", wb/1e6)
	}
}

func TestMemoryFootprintMatchesPaperDiscussion(t *testing.T) {
	// Paper Discussion (4): state-of-the-art CNN models consume less than
	// 1.5 GB, so memory is not a constraint on modern edge devices.
	for name, m := range Zoo() {
		fp := m.MemoryFootprintBytes()
		if fp > 1.5e9 {
			t.Errorf("%s footprint %.2f GB exceeds the paper's 1.5 GB bound", name, fp/1e9)
		}
		if fp <= 0 {
			t.Errorf("%s footprint not positive", name)
		}
	}
}

func TestPeakActivationPositive(t *testing.T) {
	m := VGG16()
	peak := m.PeakActivationBytes()
	// conv1_1: input 224x224x3 + output 224x224x64 at 2 bytes.
	want := 224*224*3*2.0 + 224*224*64*2.0
	if peak < want {
		t.Errorf("peak activation %.0f below conv1_1's %.0f", peak, want)
	}
}
