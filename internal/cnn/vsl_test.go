package cnn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInputRowsInterior(t *testing.T) {
	// In the interior, InputRows must match the paper's Eq. 1:
	// h_in = (h_out-1)*S + F.
	l := Layer{Kind: Conv, Win: 224, Hin: 224, Cin: 3, Cout: 64, F: 3, S: 1, P: 1}
	r := InputRows(l, RowRange{100, 120})
	if r.Len() != (20-1)*1+3 {
		t.Errorf("interior input rows = %d, want %d", r.Len(), (20-1)*1+3)
	}
	if r.Lo != 100*1-1 || r.Hi != 119*1-1+3 {
		t.Errorf("interior range = %v, want [99,121)", r)
	}
}

func TestInputRowsClamping(t *testing.T) {
	l := Layer{Kind: Conv, Win: 224, Hin: 224, Cin: 3, Cout: 64, F: 3, S: 1, P: 1}
	top := InputRows(l, RowRange{0, 10})
	if top.Lo != 0 {
		t.Errorf("top range should clamp at 0, got %v", top)
	}
	bot := InputRows(l, RowRange{214, 224})
	if bot.Hi != 224 {
		t.Errorf("bottom range should clamp at Hin, got %v", bot)
	}
	full := InputRows(l, RowRange{0, l.OutHeight()})
	if full != (RowRange{0, 224}) {
		t.Errorf("full output requires full input, got %v", full)
	}
}

func TestInputRowsEmpty(t *testing.T) {
	l := Layer{Kind: Conv, Win: 10, Hin: 10, Cin: 3, Cout: 8, F: 3, S: 1, P: 1}
	if got := InputRows(l, RowRange{5, 5}); !got.Empty() {
		t.Errorf("empty output should need empty input, got %v", got)
	}
}

func TestInputRowsStride(t *testing.T) {
	// Pool 2x2 stride 2: output rows [a,b) need input [2a, 2b).
	l := Layer{Kind: MaxPool, Win: 224, Hin: 224, Cin: 64, Cout: 64, F: 2, S: 2}
	r := InputRows(l, RowRange{10, 20})
	if r != (RowRange{20, 40}) {
		t.Errorf("pool input range = %v, want [20,40)", r)
	}
}

func vggVolume() []Layer {
	m := VGG16()
	return m.SplittableLayers()[:4] // conv1_1 conv1_2 pool1 conv2_1
}

func TestVolumeRangesChain(t *testing.T) {
	layers := vggVolume()
	out := RowRange{30, 60}
	ranges := VolumeRanges(layers, out)
	if len(ranges) != len(layers) {
		t.Fatalf("got %d ranges, want %d", len(ranges), len(layers))
	}
	if ranges[len(ranges)-1] != out {
		t.Errorf("last range = %v, want %v", ranges[len(ranges)-1], out)
	}
	// Each intermediate range must be what the next layer needs.
	for i := len(layers) - 1; i >= 1; i-- {
		want := InputRows(layers[i], ranges[i])
		if ranges[i-1] != want {
			t.Errorf("range[%d] = %v, want %v", i-1, ranges[i-1], want)
		}
	}
}

func TestVolumeInputRowsMonotone(t *testing.T) {
	// Property: growing the output range never shrinks the input range.
	layers := vggVolume()
	h := layers[len(layers)-1].OutHeight()
	f := func(aRaw, bRaw, gRaw uint16) bool {
		a := int(aRaw) % h
		b := a + 1 + int(bRaw)%(h-a)
		grow := int(gRaw) % (h - b + 1)
		small := VolumeInputRows(layers, RowRange{a, b})
		big := VolumeInputRows(layers, RowRange{a, b + grow})
		return big.Lo <= small.Lo && big.Hi >= small.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVolumeOpsSuperadditive(t *testing.T) {
	// Property: splitting a volume into two parts costs at least as much as
	// computing it whole (halo recompute), and exactly as much for a single
	// full-range part.
	layers := vggVolume()
	h := layers[len(layers)-1].OutHeight()
	whole := VolumeOps(layers, RowRange{0, h})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		cut := 1 + rng.Intn(h-1)
		split := VolumeOps(layers, RowRange{0, cut}) + VolumeOps(layers, RowRange{cut, h})
		if split < whole-1e-6 {
			t.Fatalf("split ops %g < whole ops %g at cut %d", split, whole, cut)
		}
	}
	if got := VolumeOps(layers, RowRange{0, h}); got != whole {
		t.Errorf("full-range ops changed: %g != %g", got, whole)
	}
}

func TestVolumeOpsSingleLayerExact(t *testing.T) {
	// For a single-layer volume there is no halo: ops must be exactly
	// additive across a partition of the output rows.
	l := Layer{Kind: Conv, Win: 56, Hin: 56, Cin: 64, Cout: 128, F: 3, S: 1, P: 1}
	layers := []Layer{l}
	h := l.OutHeight()
	total := VolumeOps(layers, RowRange{0, h})
	for cut := 1; cut < h; cut += 7 {
		sum := VolumeOps(layers, RowRange{0, cut}) + VolumeOps(layers, RowRange{cut, h})
		if sum != total {
			t.Fatalf("single-layer split ops %g != total %g at cut %d", sum, total, cut)
		}
	}
}

func TestVolumeInputBytes(t *testing.T) {
	layers := vggVolume()
	full := VolumeInputBytes(layers, RowRange{0, layers[len(layers)-1].OutHeight()})
	want := layers[0].InputBytes()
	if full != want {
		t.Errorf("full volume input bytes = %g, want %g", full, want)
	}
	if VolumeInputBytes(layers, RowRange{3, 3}) != 0 {
		t.Error("empty part should need 0 input bytes")
	}
}

func TestRowRangeHelpers(t *testing.T) {
	if (RowRange{3, 3}).Len() != 0 || (RowRange{5, 2}).Len() != 0 {
		t.Error("degenerate ranges must have Len 0")
	}
	got := (RowRange{0, 10}).Intersect(RowRange{5, 20})
	if got != (RowRange{5, 10}) {
		t.Errorf("Intersect = %v, want [5,10)", got)
	}
	if !(RowRange{0, 3}).Intersect(RowRange{7, 9}).Empty() {
		t.Error("disjoint intersect must be empty")
	}
	if (RowRange{1, 4}).String() != "[1,4)" {
		t.Error("String format mismatch")
	}
}

func TestIntersectCommutative(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		r1 := RowRange{int(a), int(b)}
		r2 := RowRange{int(c), int(d)}
		x, y := r1.Intersect(r2), r2.Intersect(r1)
		return x.Len() == y.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
