// Package cnn models convolutional neural networks at the
// configuration level: layer shapes, operation counts, data volumes, and
// the Vertical-Splitting Law (VSL) of the DistrEdge paper (Eq. 1-2).
//
// No numerics are performed; DistrEdge is a scheduler and only consumes
// shapes, operation counts and byte volumes. Layers are sequential, which
// matches the paper's treatment (Section III-C, challenge 4).
package cnn

import "fmt"

// Kind identifies the type of a layer.
type Kind int

const (
	// Conv is a 2D convolutional layer.
	Conv Kind = iota
	// MaxPool is a 2D max-pooling layer.
	MaxPool
	// FC is a fully-connected layer. FC layers are not split; the paper
	// computes them on the provider holding the largest share of the last
	// layer-volume (Section V-A).
	FC
)

// String returns a short human-readable name for the layer kind.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case MaxPool:
		return "maxpool"
	case FC:
		return "fc"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// BytesPerElem is the storage size of one activation element. The paper's
// testbed runs TensorRT in FP16, so 2 bytes.
const BytesPerElem = 2

// Layer is one layer of a CNN, described by its configuration exactly as in
// Section III-B of the paper: input width/height/depth, output depth, filter
// size, stride and padding. For FC layers only Cin (input features) and Cout
// (output features) are meaningful; Win=Hin=1 by convention.
type Layer struct {
	Name string
	Kind Kind

	Win, Hin, Cin int // input width, height, depth
	Cout          int // output depth (Conv: filters; MaxPool: = Cin; FC: units)
	F, S, P       int // filter size, stride, padding
}

// OutWidth returns the output width of the layer.
func (l Layer) OutWidth() int {
	if l.Kind == FC {
		return 1
	}
	return (l.Win+2*l.P-l.F)/l.S + 1
}

// OutHeight returns the output height of the layer.
func (l Layer) OutHeight() int {
	if l.Kind == FC {
		return 1
	}
	return (l.Hin+2*l.P-l.F)/l.S + 1
}

// OutDepth returns the output depth of the layer.
func (l Layer) OutDepth() int { return l.Cout }

// Splittable reports whether the layer participates in vertical splitting.
// Conv and MaxPool layers are splittable; FC layers are not (Section V-A).
func (l Layer) Splittable() bool { return l.Kind == Conv || l.Kind == MaxPool }

// OpsRows returns the number of operations needed to compute the given
// number of output rows of the layer. Convolutions count multiply-accumulate
// pairs as two operations; max-pooling counts one comparison per window
// element. Negative or zero rows cost nothing.
func (l Layer) OpsRows(rows int) float64 {
	if rows <= 0 {
		return 0
	}
	w := float64(l.OutWidth())
	switch l.Kind {
	case Conv:
		return 2 * float64(l.F) * float64(l.F) * float64(l.Cin) * float64(l.Cout) * w * float64(rows)
	case MaxPool:
		return float64(l.F) * float64(l.F) * float64(l.Cin) * w * float64(rows)
	case FC:
		return 2 * float64(l.Cin) * float64(l.Cout)
	default:
		return 0
	}
}

// Ops returns the total number of operations of the full layer.
func (l Layer) Ops() float64 {
	if l.Kind == FC {
		return l.OpsRows(1)
	}
	return l.OpsRows(l.OutHeight())
}

// OutRowBytes returns the size in bytes of one output row of the layer.
func (l Layer) OutRowBytes() float64 {
	if l.Kind == FC {
		return float64(l.Cout) * BytesPerElem
	}
	return float64(l.OutWidth()) * float64(l.Cout) * BytesPerElem
}

// InRowBytes returns the size in bytes of one input row of the layer.
func (l Layer) InRowBytes() float64 {
	if l.Kind == FC {
		return float64(l.Cin) * BytesPerElem
	}
	return float64(l.Win) * float64(l.Cin) * BytesPerElem
}

// OutputBytes returns the total output activation size of the layer in bytes.
func (l Layer) OutputBytes() float64 {
	if l.Kind == FC {
		return l.OutRowBytes()
	}
	return l.OutRowBytes() * float64(l.OutHeight())
}

// InputBytes returns the total input activation size of the layer in bytes.
func (l Layer) InputBytes() float64 {
	if l.Kind == FC {
		return l.InRowBytes()
	}
	return l.InRowBytes() * float64(l.Hin)
}

// Validate checks that the layer configuration is internally consistent.
func (l Layer) Validate() error {
	switch l.Kind {
	case Conv, MaxPool:
		if l.Win <= 0 || l.Hin <= 0 || l.Cin <= 0 {
			return fmt.Errorf("cnn: layer %q: non-positive input dims %dx%dx%d", l.Name, l.Win, l.Hin, l.Cin)
		}
		if l.F <= 0 || l.S <= 0 || l.P < 0 {
			return fmt.Errorf("cnn: layer %q: invalid filter/stride/padding F=%d S=%d P=%d", l.Name, l.F, l.S, l.P)
		}
		if l.Cout <= 0 {
			return fmt.Errorf("cnn: layer %q: non-positive output depth %d", l.Name, l.Cout)
		}
		if l.Kind == MaxPool && l.Cout != l.Cin {
			return fmt.Errorf("cnn: layer %q: maxpool must preserve depth (Cin=%d Cout=%d)", l.Name, l.Cin, l.Cout)
		}
		if l.OutWidth() <= 0 || l.OutHeight() <= 0 {
			return fmt.Errorf("cnn: layer %q: non-positive output dims %dx%d", l.Name, l.OutWidth(), l.OutHeight())
		}
	case FC:
		if l.Cin <= 0 || l.Cout <= 0 {
			return fmt.Errorf("cnn: layer %q: fc needs positive Cin/Cout, got %d/%d", l.Name, l.Cin, l.Cout)
		}
	default:
		return fmt.Errorf("cnn: layer %q: unknown kind %d", l.Name, int(l.Kind))
	}
	return nil
}
