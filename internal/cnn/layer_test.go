package cnn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConvOutputDims(t *testing.T) {
	tests := []struct {
		name           string
		l              Layer
		wantW, wantH   int
		wantOutBytes   float64
		wantOpsPerting float64 // ops for one output row
	}{
		{
			name:  "vgg conv1_1",
			l:     Layer{Kind: Conv, Win: 224, Hin: 224, Cin: 3, Cout: 64, F: 3, S: 1, P: 1},
			wantW: 224, wantH: 224,
			wantOutBytes:   224 * 224 * 64 * 2,
			wantOpsPerting: 2 * 3 * 3 * 3 * 64 * 224,
		},
		{
			name:  "stride2 7x7",
			l:     Layer{Kind: Conv, Win: 224, Hin: 224, Cin: 3, Cout: 64, F: 7, S: 2, P: 3},
			wantW: 112, wantH: 112,
			wantOutBytes:   112 * 112 * 64 * 2,
			wantOpsPerting: 2 * 7 * 7 * 3 * 64 * 112,
		},
		{
			name:  "1x1",
			l:     Layer{Kind: Conv, Win: 14, Hin: 14, Cin: 1024, Cout: 256, F: 1, S: 1, P: 0},
			wantW: 14, wantH: 14,
			wantOutBytes:   14 * 14 * 256 * 2,
			wantOpsPerting: 2 * 1024 * 256 * 14,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.l.OutWidth(); got != tt.wantW {
				t.Errorf("OutWidth = %d, want %d", got, tt.wantW)
			}
			if got := tt.l.OutHeight(); got != tt.wantH {
				t.Errorf("OutHeight = %d, want %d", got, tt.wantH)
			}
			if got := tt.l.OutputBytes(); got != tt.wantOutBytes {
				t.Errorf("OutputBytes = %g, want %g", got, tt.wantOutBytes)
			}
			if got := tt.l.OpsRows(1); got != tt.wantOpsPerting {
				t.Errorf("OpsRows(1) = %g, want %g", got, tt.wantOpsPerting)
			}
		})
	}
}

func TestMaxPoolOutputDims(t *testing.T) {
	l := Layer{Kind: MaxPool, Win: 224, Hin: 224, Cin: 64, Cout: 64, F: 2, S: 2}
	if l.OutWidth() != 112 || l.OutHeight() != 112 {
		t.Fatalf("pool output = %dx%d, want 112x112", l.OutWidth(), l.OutHeight())
	}
	if got, want := l.Ops(), float64(2*2*64*112*112); got != want {
		t.Errorf("Ops = %g, want %g", got, want)
	}
}

func TestFCOps(t *testing.T) {
	l := Layer{Kind: FC, Win: 1, Hin: 1, Cin: 4096, Cout: 1000}
	if got, want := l.Ops(), float64(2*4096*1000); got != want {
		t.Errorf("Ops = %g, want %g", got, want)
	}
	if got, want := l.OutputBytes(), float64(1000*2); got != want {
		t.Errorf("OutputBytes = %g, want %g", got, want)
	}
}

func TestOpsRowsNonPositive(t *testing.T) {
	l := Layer{Kind: Conv, Win: 10, Hin: 10, Cin: 3, Cout: 8, F: 3, S: 1, P: 1}
	if l.OpsRows(0) != 0 || l.OpsRows(-5) != 0 {
		t.Error("OpsRows of non-positive rows must be 0")
	}
}

func TestOpsRowsLinearInRows(t *testing.T) {
	// Property: for spatial layers, OpsRows is linear in the row count.
	l := Layer{Kind: Conv, Win: 56, Hin: 56, Cin: 64, Cout: 128, F: 3, S: 1, P: 1}
	f := func(a, b uint8) bool {
		ra, rb := int(a%64), int(b%64)
		return math.Abs(l.OpsRows(ra)+l.OpsRows(rb)-l.OpsRows(ra+rb)) < 1e-6*l.OpsRows(ra+rb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayerValidate(t *testing.T) {
	bad := []Layer{
		{Kind: Conv, Win: 0, Hin: 10, Cin: 3, Cout: 8, F: 3, S: 1},
		{Kind: Conv, Win: 10, Hin: 10, Cin: 3, Cout: 8, F: 0, S: 1},
		{Kind: Conv, Win: 10, Hin: 10, Cin: 3, Cout: 0, F: 3, S: 1},
		{Kind: Conv, Win: 2, Hin: 2, Cin: 3, Cout: 8, F: 5, S: 1, P: 0}, // output dims <= 0
		{Kind: MaxPool, Win: 10, Hin: 10, Cin: 3, Cout: 5, F: 2, S: 2},  // depth change
		{Kind: FC, Cin: 0, Cout: 10},
		{Kind: Kind(99)},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid layer %+v", i, l)
		}
	}
	good := Layer{Kind: Conv, Win: 10, Hin: 10, Cin: 3, Cout: 8, F: 3, S: 1, P: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid layer: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if Conv.String() != "conv" || MaxPool.String() != "maxpool" || FC.String() != "fc" {
		t.Error("Kind.String mismatch")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}
