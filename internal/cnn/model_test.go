package cnn

import (
	"strings"
	"testing"
)

func TestBuilderChaining(t *testing.T) {
	m, err := NewBuilder("tiny", 32, 32, 3).
		Conv("c1", 16, 3, 1, 1).
		Pool("p1", 2, 2).
		Conv("c2", 32, 3, 1, 1).
		FC("fc", 10).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumSplittable(); got != 3 {
		t.Errorf("NumSplittable = %d, want 3", got)
	}
	if got := len(m.FCLayers()); got != 1 {
		t.Errorf("FCLayers = %d, want 1", got)
	}
	fc := m.FCLayers()[0]
	if fc.Cin != 16*16*32 {
		t.Errorf("fc input = %d, want %d", fc.Cin, 16*16*32)
	}
}

func TestBuilderPropagatesError(t *testing.T) {
	_, err := NewBuilder("bad", 4, 4, 3).
		Conv("c1", 16, 7, 1, 0). // 7x7 filter on 4x4 input: invalid
		Conv("c2", 32, 3, 1, 1).
		Build()
	if err == nil {
		t.Fatal("expected error from invalid layer")
	}
}

func TestModelValidateCatchesMismatch(t *testing.T) {
	m := &Model{Name: "broken", Layers: []Layer{
		{Name: "a", Kind: Conv, Win: 32, Hin: 32, Cin: 3, Cout: 16, F: 3, S: 1, P: 1},
		{Name: "b", Kind: Conv, Win: 32, Hin: 32, Cin: 99, Cout: 16, F: 3, S: 1, P: 1},
	}}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "input") {
		t.Fatalf("expected dimension mismatch error, got %v", err)
	}
}

func TestModelValidateFCOrdering(t *testing.T) {
	m := &Model{Name: "fc-first", Layers: []Layer{
		{Name: "fc", Kind: FC, Cin: 10, Cout: 10},
		{Name: "c", Kind: Conv, Win: 8, Hin: 8, Cin: 3, Cout: 4, F: 3, S: 1, P: 1},
	}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected error: conv after FC")
	}
}

func TestModelValidateEmpty(t *testing.T) {
	if err := (&Model{Name: "empty"}).Validate(); err == nil {
		t.Fatal("expected error for empty model")
	}
}

func TestTotalOpsPositive(t *testing.T) {
	m := VGG16()
	if m.TotalOps() <= 0 {
		t.Fatal("TotalOps must be positive")
	}
	// VGG-16 is famously ~30.9 GFLOPs for the conv+fc stack at 224x224.
	// Our count should land in the right ballpark (FLOPs = 2*MACs).
	ops := m.TotalOps()
	if ops < 25e9 || ops > 40e9 {
		t.Errorf("VGG-16 ops = %.3g, expected ~31e9", ops)
	}
}

func TestInputBytes(t *testing.T) {
	m := VGG16()
	want := float64(224 * 224 * 3 * BytesPerElem)
	if got := m.InputBytes(); got != want {
		t.Errorf("InputBytes = %g, want %g", got, want)
	}
	if (&Model{}).InputBytes() != 0 {
		t.Error("empty model InputBytes must be 0")
	}
}

func TestTotalActivationBytes(t *testing.T) {
	m := VGG16()
	got := m.TotalActivationBytes()
	// conv1_1 output alone is 224*224*64*2 = 6.4 MB; total must exceed it.
	if got < 6.4e6 {
		t.Errorf("TotalActivationBytes = %g, implausibly small", got)
	}
}
