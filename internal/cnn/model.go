package cnn

import "fmt"

// Model is a sequential CNN: a chain of Conv/MaxPool layers optionally
// followed by FC layers. The splittable prefix (Conv/MaxPool) is what
// DistrEdge partitions and splits; FC layers run on a single provider.
type Model struct {
	Name   string
	Layers []Layer
}

// NumSplittable returns the number of leading Conv/MaxPool layers, i.e. the
// length of the prefix subject to horizontal partition and vertical split.
func (m *Model) NumSplittable() int {
	n := 0
	for _, l := range m.Layers {
		if !l.Splittable() {
			break
		}
		n++
	}
	return n
}

// SplittableLayers returns the Conv/MaxPool prefix of the model.
func (m *Model) SplittableLayers() []Layer { return m.Layers[:m.NumSplittable()] }

// FCLayers returns the trailing FC layers of the model (possibly empty).
func (m *Model) FCLayers() []Layer { return m.Layers[m.NumSplittable():] }

// TotalOps returns the total operation count of the model with no splitting.
func (m *Model) TotalOps() float64 {
	var sum float64
	for _, l := range m.Layers {
		sum += l.Ops()
	}
	return sum
}

// TotalActivationBytes returns the sum of all layers' output activation
// sizes. This is (approximately) the amount of data a layer-by-layer
// distribution would move, and is used to normalise the transmission term of
// the LC-PSS score.
func (m *Model) TotalActivationBytes() float64 {
	var sum float64
	for _, l := range m.Layers {
		sum += l.OutputBytes()
	}
	return sum
}

// InputBytes returns the size of the model's input image in bytes.
func (m *Model) InputBytes() float64 {
	if len(m.Layers) == 0 {
		return 0
	}
	return m.Layers[0].InputBytes()
}

// Validate checks layer-by-layer dimensional compatibility: the output shape
// of each layer must match the input shape of the next, FC layers must come
// last, and every layer must itself be valid.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("cnn: model %q has no layers", m.Name)
	}
	seenFC := false
	for i, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("cnn: model %q layer %d: %w", m.Name, i, err)
		}
		if l.Kind == FC {
			seenFC = true
		} else if seenFC {
			return fmt.Errorf("cnn: model %q: splittable layer %d (%s) after FC layer", m.Name, i, l.Name)
		}
		if i == 0 {
			continue
		}
		prev := m.Layers[i-1]
		if l.Kind == FC {
			if prev.Kind == FC {
				if l.Cin != prev.Cout {
					return fmt.Errorf("cnn: model %q: fc layer %d input %d != previous output %d", m.Name, i, l.Cin, prev.Cout)
				}
			} else {
				want := prev.OutWidth() * prev.OutHeight() * prev.OutDepth()
				if l.Cin != want {
					return fmt.Errorf("cnn: model %q: fc layer %d input %d != flattened previous output %d", m.Name, i, l.Cin, want)
				}
			}
			continue
		}
		if l.Win != prev.OutWidth() || l.Hin != prev.OutHeight() || l.Cin != prev.OutDepth() {
			return fmt.Errorf("cnn: model %q: layer %d (%s) input %dx%dx%d != previous output %dx%dx%d",
				m.Name, i, l.Name, l.Win, l.Hin, l.Cin, prev.OutWidth(), prev.OutHeight(), prev.OutDepth())
		}
	}
	return nil
}

// Builder constructs sequential models with automatic shape chaining.
type Builder struct {
	name    string
	w, h, c int
	layers  []Layer
	flatten int // flattened feature count once FC section starts; 0 before
	err     error
}

// NewBuilder starts a model with the given input image shape.
func NewBuilder(name string, w, h, c int) *Builder {
	return &Builder{name: name, w: w, h: h, c: c}
}

// Conv appends a convolutional layer with cout filters of size f, stride s
// and padding p.
func (b *Builder) Conv(name string, cout, f, s, p int) *Builder {
	if b.err != nil {
		return b
	}
	l := Layer{Name: name, Kind: Conv, Win: b.w, Hin: b.h, Cin: b.c, Cout: cout, F: f, S: s, P: p}
	if err := l.Validate(); err != nil {
		b.err = err
		return b
	}
	b.layers = append(b.layers, l)
	b.w, b.h, b.c = l.OutWidth(), l.OutHeight(), l.OutDepth()
	return b
}

// Pool appends a max-pooling layer with window f and stride s.
func (b *Builder) Pool(name string, f, s int) *Builder {
	return b.PoolP(name, f, s, 0)
}

// PoolP appends a max-pooling layer with window f, stride s and padding p.
func (b *Builder) PoolP(name string, f, s, p int) *Builder {
	if b.err != nil {
		return b
	}
	l := Layer{Name: name, Kind: MaxPool, Win: b.w, Hin: b.h, Cin: b.c, Cout: b.c, F: f, S: s, P: p}
	if err := l.Validate(); err != nil {
		b.err = err
		return b
	}
	b.layers = append(b.layers, l)
	b.w, b.h, b.c = l.OutWidth(), l.OutHeight(), l.OutDepth()
	return b
}

// FC appends a fully-connected layer with n output units. The first FC layer
// flattens the preceding spatial output.
func (b *Builder) FC(name string, n int) *Builder {
	if b.err != nil {
		return b
	}
	in := b.flatten
	if in == 0 {
		in = b.w * b.h * b.c
	}
	l := Layer{Name: name, Kind: FC, Win: 1, Hin: 1, Cin: in, Cout: n}
	if err := l.Validate(); err != nil {
		b.err = err
		return b
	}
	b.layers = append(b.layers, l)
	b.flatten = n
	return b
}

// Build finalises the model, returning an error if any step failed or the
// assembled model does not validate.
func (b *Builder) Build() (*Model, error) {
	if b.err != nil {
		return nil, b.err
	}
	m := &Model{Name: b.name, Layers: b.layers}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustBuild is Build that panics on error; intended for the static model zoo
// where configurations are compile-time constants checked by tests.
func (b *Builder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
