package cnn

// The model zoo covers every network the paper evaluates (Fig. 7-11):
// VGG-16, ResNet-50, Inception-V3, YOLOv2, SSD-ResNet50, SSD-VGG16,
// OpenPose and VoxelNet.
//
// DistrEdge treats a CNN as a sequential chain of layers (Section III-C,
// challenge 4), so branching architectures are represented by their
// sequential backbones: residual/inception/two-branch blocks are flattened
// into an equivalent chain that preserves the spatial-reduction schedule,
// channel widths, filter sizes and strides — exactly the quantities that
// determine operation counts, data volumes and VSL geometry. Skip-add and
// concat bookkeeping (a negligible fraction of both compute and traffic) is
// folded away. Each constructor documents its flattening.

// VGG16 returns the standard VGG-16 image-classification network
// (Simonyan & Zisserman), 224x224x3 input. This is the paper's primary
// workload (Fig. 5-9, 15).
func VGG16() *Model {
	b := NewBuilder("vgg16", 224, 224, 3).
		Conv("conv1_1", 64, 3, 1, 1).Conv("conv1_2", 64, 3, 1, 1).Pool("pool1", 2, 2).
		Conv("conv2_1", 128, 3, 1, 1).Conv("conv2_2", 128, 3, 1, 1).Pool("pool2", 2, 2).
		Conv("conv3_1", 256, 3, 1, 1).Conv("conv3_2", 256, 3, 1, 1).Conv("conv3_3", 256, 3, 1, 1).Pool("pool3", 2, 2).
		Conv("conv4_1", 512, 3, 1, 1).Conv("conv4_2", 512, 3, 1, 1).Conv("conv4_3", 512, 3, 1, 1).Pool("pool4", 2, 2).
		Conv("conv5_1", 512, 3, 1, 1).Conv("conv5_2", 512, 3, 1, 1).Conv("conv5_3", 512, 3, 1, 1).Pool("pool5", 2, 2).
		FC("fc6", 4096).FC("fc7", 4096).FC("fc8", 1000)
	return b.MustBuild()
}

// resnetStage appends n bottleneck blocks (1x1 mid, 3x3 mid, 1x1 out) to the
// builder, with the first block's 3x3 using the given stride. Residual adds
// are folded into the chain (see package comment).
func resnetStage(b *Builder, name string, n, mid, out, firstStride int) *Builder {
	for i := 0; i < n; i++ {
		s := 1
		if i == 0 {
			s = firstStride
		}
		b = b.Conv(name+"a", mid, 1, 1, 0).
			Conv(name+"b", mid, 3, s, 1).
			Conv(name+"c", out, 1, 1, 0)
	}
	return b
}

// ResNet50 returns ResNet-50 (He et al.), 224x224x3 input, with bottleneck
// blocks flattened into a sequential chain.
func ResNet50() *Model {
	b := NewBuilder("resnet50", 224, 224, 3).
		Conv("conv1", 64, 7, 2, 3).
		PoolP("pool1", 3, 2, 1)
	b = resnetStage(b, "res2", 3, 64, 256, 1)
	b = resnetStage(b, "res3", 4, 128, 512, 2)
	b = resnetStage(b, "res4", 6, 256, 1024, 2)
	b = resnetStage(b, "res5", 3, 512, 2048, 2)
	return b.FC("fc1000", 1000).MustBuild()
}

// InceptionV3 returns Inception-V3 (Szegedy et al.), 299x299x3 input.
// Inception modules are flattened into 3x3 blocks with the module's total
// output width at each grid size (35x35, 17x17, 8x8), preserving the stem
// and the two grid reductions.
func InceptionV3() *Model {
	b := NewBuilder("inceptionv3", 299, 299, 3).
		Conv("stem_conv1", 32, 3, 2, 0).
		Conv("stem_conv2", 32, 3, 1, 0).
		Conv("stem_conv3", 64, 3, 1, 1).
		Pool("stem_pool1", 3, 2).
		Conv("stem_conv4", 80, 1, 1, 0).
		Conv("stem_conv5", 192, 3, 1, 0).
		Pool("stem_pool2", 3, 2).
		// Three 35x35 inception-A modules.
		Conv("mixed_a1", 256, 3, 1, 1).
		Conv("mixed_a2", 288, 3, 1, 1).
		Conv("mixed_a3", 288, 3, 1, 1).
		// Grid reduction to 17x17.
		Conv("reduce_a", 768, 3, 2, 0).
		// Four 17x17 inception-B modules.
		Conv("mixed_b1", 768, 3, 1, 1).
		Conv("mixed_b2", 768, 3, 1, 1).
		Conv("mixed_b3", 768, 3, 1, 1).
		Conv("mixed_b4", 768, 3, 1, 1).
		// Grid reduction to 8x8.
		Conv("reduce_b", 1280, 3, 2, 0).
		// Two 8x8 inception-C modules.
		Conv("mixed_c1", 2048, 3, 1, 1).
		Conv("mixed_c2", 2048, 3, 1, 1).
		FC("fc1000", 1000)
	return b.MustBuild()
}

// YOLOv2 returns YOLOv2 (Redmon & Farhadi), 416x416x3 input: the Darknet-19
// backbone plus the detection head. The passthrough (reorg) connection is
// folded into the chain.
func YOLOv2() *Model {
	b := NewBuilder("yolov2", 416, 416, 3).
		Conv("conv1", 32, 3, 1, 1).Pool("pool1", 2, 2).
		Conv("conv2", 64, 3, 1, 1).Pool("pool2", 2, 2).
		Conv("conv3", 128, 3, 1, 1).Conv("conv4", 64, 1, 1, 0).Conv("conv5", 128, 3, 1, 1).Pool("pool3", 2, 2).
		Conv("conv6", 256, 3, 1, 1).Conv("conv7", 128, 1, 1, 0).Conv("conv8", 256, 3, 1, 1).Pool("pool4", 2, 2).
		Conv("conv9", 512, 3, 1, 1).Conv("conv10", 256, 1, 1, 0).Conv("conv11", 512, 3, 1, 1).
		Conv("conv12", 256, 1, 1, 0).Conv("conv13", 512, 3, 1, 1).Pool("pool5", 2, 2).
		Conv("conv14", 1024, 3, 1, 1).Conv("conv15", 512, 1, 1, 0).Conv("conv16", 1024, 3, 1, 1).
		Conv("conv17", 512, 1, 1, 0).Conv("conv18", 1024, 3, 1, 1).
		Conv("conv19", 1024, 3, 1, 1).Conv("conv20", 1024, 3, 1, 1).
		Conv("detect", 425, 1, 1, 0)
	return b.MustBuild()
}

// SSDVGG16 returns SSD300 with the VGG-16 backbone (Liu et al.), 300x300x3
// input: VGG conv1-conv5 plus the SSD extra feature layers conv6-conv11.
// The six detection heads (small 3x3 convs on intermediate maps) are folded
// into the chain; the dilated conv6 is modelled as a dense 3x3.
func SSDVGG16() *Model {
	b := NewBuilder("ssd-vgg16", 300, 300, 3).
		Conv("conv1_1", 64, 3, 1, 1).Conv("conv1_2", 64, 3, 1, 1).Pool("pool1", 2, 2).
		Conv("conv2_1", 128, 3, 1, 1).Conv("conv2_2", 128, 3, 1, 1).Pool("pool2", 2, 2).
		Conv("conv3_1", 256, 3, 1, 1).Conv("conv3_2", 256, 3, 1, 1).Conv("conv3_3", 256, 3, 1, 1).Pool("pool3", 2, 2).
		Conv("conv4_1", 512, 3, 1, 1).Conv("conv4_2", 512, 3, 1, 1).Conv("conv4_3", 512, 3, 1, 1).Pool("pool4", 2, 2).
		Conv("conv5_1", 512, 3, 1, 1).Conv("conv5_2", 512, 3, 1, 1).Conv("conv5_3", 512, 3, 1, 1).PoolP("pool5", 3, 1, 1).
		Conv("conv6", 1024, 3, 1, 1).
		Conv("conv7", 1024, 1, 1, 0).
		Conv("conv8_1", 256, 1, 1, 0).Conv("conv8_2", 512, 3, 2, 1).
		Conv("conv9_1", 128, 1, 1, 0).Conv("conv9_2", 256, 3, 2, 1).
		Conv("conv10_1", 128, 1, 1, 0).Conv("conv10_2", 256, 3, 1, 0).
		Conv("conv11_1", 128, 1, 1, 0).Conv("conv11_2", 256, 3, 1, 0)
	return b.MustBuild()
}

// SSDResNet50 returns SSD300 with a ResNet-50 backbone (through res4) plus
// the SSD extra feature layers, 300x300x3 input.
func SSDResNet50() *Model {
	b := NewBuilder("ssd-resnet50", 300, 300, 3).
		Conv("conv1", 64, 7, 2, 3).
		PoolP("pool1", 3, 2, 1)
	b = resnetStage(b, "res2", 3, 64, 256, 1)
	b = resnetStage(b, "res3", 4, 128, 512, 2)
	b = resnetStage(b, "res4", 6, 256, 1024, 2)
	b = b.
		Conv("extra1_1", 256, 1, 1, 0).Conv("extra1_2", 512, 3, 2, 1).
		Conv("extra2_1", 128, 1, 1, 0).Conv("extra2_2", 256, 3, 2, 1).
		Conv("extra3_1", 128, 1, 1, 0).Conv("extra3_2", 256, 3, 2, 1).
		Conv("extra4_1", 128, 1, 1, 0).Conv("extra4_2", 256, 3, 1, 0)
	return b.MustBuild()
}

// OpenPose returns the OpenPose pose-estimation network (Cao et al.),
// 368x368x3 input: the VGG-19 feature front-end followed by six refinement
// stages. The two branches (PAFs: 38 channels, confidence maps: 19 channels)
// are flattened into a single 57-channel chain per stage.
func OpenPose() *Model {
	b := NewBuilder("openpose", 368, 368, 3).
		Conv("conv1_1", 64, 3, 1, 1).Conv("conv1_2", 64, 3, 1, 1).Pool("pool1", 2, 2).
		Conv("conv2_1", 128, 3, 1, 1).Conv("conv2_2", 128, 3, 1, 1).Pool("pool2", 2, 2).
		Conv("conv3_1", 256, 3, 1, 1).Conv("conv3_2", 256, 3, 1, 1).
		Conv("conv3_3", 256, 3, 1, 1).Conv("conv3_4", 256, 3, 1, 1).Pool("pool3", 2, 2).
		Conv("conv4_1", 512, 3, 1, 1).Conv("conv4_2", 512, 3, 1, 1).
		Conv("conv4_3_cpm", 256, 3, 1, 1).Conv("conv4_4_cpm", 128, 3, 1, 1).
		// Stage 1: 3x3 convs then 1x1 heads.
		Conv("s1_conv1", 128, 3, 1, 1).Conv("s1_conv2", 128, 3, 1, 1).Conv("s1_conv3", 128, 3, 1, 1).
		Conv("s1_conv4", 512, 1, 1, 0).Conv("s1_out", 57, 1, 1, 0)
	// Stages 2-6: five 7x7 convs then 1x1 heads.
	for st := 2; st <= 6; st++ {
		prefix := "s" + string(rune('0'+st)) + "_"
		for i := 1; i <= 5; i++ {
			b = b.Conv(prefix+"conv"+string(rune('0'+i)), 128, 7, 1, 3)
		}
		b = b.Conv(prefix+"conv6", 128, 1, 1, 0).Conv(prefix+"out", 57, 1, 1, 0)
	}
	return b.MustBuild()
}

// VoxelNet returns the VoxelNet 3D object detector (Zhou & Tuzel) for the
// KITTI car setting: the stacked voxel-feature-encoding layers are modelled
// as 1x1 convs over the 352x400 birds-eye grid (7 input point features), and
// the convolutional middle layers + region proposal network as the published
// 2D schedule (three blocks at strides 2,2,2 with upsampled heads folded in).
func VoxelNet() *Model {
	b := NewBuilder("voxelnet", 352, 400, 7).
		Conv("vfe1", 32, 1, 1, 0).
		Conv("vfe2", 128, 1, 1, 0).
		// RPN block 1: stride 2 then 3 convs at 200x176.
		Conv("rpn1_1", 128, 3, 2, 1).
		Conv("rpn1_2", 128, 3, 1, 1).Conv("rpn1_3", 128, 3, 1, 1).Conv("rpn1_4", 128, 3, 1, 1).
		// RPN block 2: stride 2 then 5 convs at 100x88.
		Conv("rpn2_1", 128, 3, 2, 1).
		Conv("rpn2_2", 128, 3, 1, 1).Conv("rpn2_3", 128, 3, 1, 1).
		Conv("rpn2_4", 128, 3, 1, 1).Conv("rpn2_5", 128, 3, 1, 1).Conv("rpn2_6", 128, 3, 1, 1).
		// RPN block 3: stride 2 then 5 convs at 50x44.
		Conv("rpn3_1", 256, 3, 2, 1).
		Conv("rpn3_2", 256, 3, 1, 1).Conv("rpn3_3", 256, 3, 1, 1).
		Conv("rpn3_4", 256, 3, 1, 1).Conv("rpn3_5", 256, 3, 1, 1).Conv("rpn3_6", 256, 3, 1, 1).
		// Detection heads: score + regression maps.
		Conv("head", 14, 1, 1, 0)
	return b.MustBuild()
}

// Zoo returns every model in the zoo keyed by name.
func Zoo() map[string]*Model {
	models := []*Model{
		VGG16(), ResNet50(), InceptionV3(), YOLOv2(),
		SSDResNet50(), SSDVGG16(), OpenPose(), VoxelNet(),
	}
	out := make(map[string]*Model, len(models))
	for _, m := range models {
		out[m.Name] = m
	}
	return out
}

// ZooNames returns the zoo model names in the order the paper's Fig. 10/11
// present them (after VGG-16).
func ZooNames() []string {
	return []string{"vgg16", "resnet50", "inceptionv3", "yolov2", "ssd-resnet50", "ssd-vgg16", "openpose", "voxelnet"}
}
