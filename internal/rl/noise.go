package rl

import "math/rand"

// OUNoise is an Ornstein-Uhlenbeck process — the temporally correlated
// exploration noise of the original DDPG paper (Lillicrap et al.). The
// DistrEdge paper uses plain Gaussian noise (Alg. 2 line 11), which Agent
// implements; OUNoise is provided for ablating the exploration scheme.
type OUNoise struct {
	Theta float64 // mean-reversion rate
	Sigma float64 // diffusion scale
	Mu    float64 // long-run mean
	Dt    float64 // step size

	state []float64
	rng   *rand.Rand
}

// NewOUNoise returns an OU process over dim dimensions with standard DDPG
// parameters (θ=0.15, σ as given, μ=0, dt=1).
func NewOUNoise(dim int, sigma float64, seed int64) *OUNoise {
	return &OUNoise{
		Theta: 0.15,
		Sigma: sigma,
		Dt:    1,
		state: make([]float64, dim),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Reset returns the process to its mean (start of an episode).
func (o *OUNoise) Reset() {
	for i := range o.state {
		o.state[i] = o.Mu
	}
}

// Sample advances the process one step and returns the noise vector (a view
// of internal state; copy if retaining).
func (o *OUNoise) Sample() []float64 {
	for i := range o.state {
		x := o.state[i]
		dx := o.Theta*(o.Mu-x)*o.Dt + o.Sigma*o.rng.NormFloat64()
		o.state[i] = x + dx
	}
	return o.state
}

// NoisyActionOU returns μ(s) plus OU noise, clipped to [-1,1] — a drop-in
// alternative to NoisyAction for exploration-scheme ablations.
func (a *Agent) NoisyActionOU(state []float64, noise *OUNoise) []float64 {
	act := a.Action(state)
	n := noise.Sample()
	for i := range act {
		if i < len(n) {
			act[i] += n[i]
		}
		if act[i] > 1 {
			act[i] = 1
		}
		if act[i] < -1 {
			act[i] = -1
		}
	}
	return act
}
