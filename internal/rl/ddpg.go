// Package rl implements the Deep Deterministic Policy Gradient (DDPG)
// algorithm (Lillicrap et al., cited as [32] by the paper) used by
// DistrEdge's OSDS module: an actor-critic pair with target networks, a
// replay buffer, soft target updates and Gaussian exploration noise, for
// continuous action spaces.
package rl

import (
	"fmt"
	"math/rand"

	"distredge/internal/nn"
	"distredge/internal/tensor"
)

// Transition is one (s, a, r, s', done) tuple (Alg. 2 line 18 stores the
// raw actor output ã, before the action mapping of Eq. 9).
type Transition struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	Done      bool
}

// Replay is a bounded FIFO replay buffer with uniform sampling.
type Replay struct {
	buf  []Transition
	next int
	full bool
	rng  *rand.Rand
}

// NewReplay returns a replay buffer holding up to capacity transitions.
func NewReplay(capacity int, seed int64) *Replay {
	if capacity < 1 {
		capacity = 1
	}
	return &Replay{buf: make([]Transition, capacity), rng: rand.New(rand.NewSource(seed))}
}

// Add stores a transition, evicting the oldest when full.
func (r *Replay) Add(t Transition) {
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Sample draws n transitions uniformly with replacement.
func (r *Replay) Sample(n int) []Transition {
	out := make([]Transition, n)
	m := r.Len()
	for i := range out {
		out[i] = r.buf[r.rng.Intn(m)]
	}
	return out
}

// Config sets the DDPG hyper-parameters. The defaults mirror the paper's
// Section V: γ=0.99, actor lr 1e-4, critic lr 1e-3, batch 64.
type Config struct {
	StateDim  int
	ActionDim int
	Hidden    []int // actor hidden sizes; the critic gets Hidden + [last]
	ActorLR   float64
	CriticLR  float64
	Gamma     float64
	Tau       float64
	BufferCap int
	Seed      int64
}

// withDefaults fills zero fields with the paper's values.
func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{400, 200, 100}
	}
	if c.ActorLR == 0 {
		c.ActorLR = 1e-4
	}
	if c.CriticLR == 0 {
		c.CriticLR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.Tau == 0 {
		c.Tau = 0.01
	}
	if c.BufferCap == 0 {
		c.BufferCap = 100_000
	}
	return c
}

// Agent is a DDPG agent. The actor maps states to actions in [-1,1]^A
// (tanh output, Eq. 9's [A,B] bounds); the critic maps (state, action) to a
// scalar Q value.
type Agent struct {
	Cfg     Config
	Actor   *nn.MLP
	Critic  *nn.MLP
	ActorT  *nn.MLP
	CriticT *nn.MLP

	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	Buf       *Replay
	rng       *rand.Rand
}

// New creates a DDPG agent (Alg. 2 lines 1-3: random nets, targets copied,
// empty replay buffer).
func New(cfg Config) (*Agent, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDim < 1 || cfg.ActionDim < 1 {
		return nil, fmt.Errorf("rl: need positive state/action dims, got %d/%d", cfg.StateDim, cfg.ActionDim)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	actorSizes := append(append([]int{cfg.StateDim}, cfg.Hidden...), cfg.ActionDim)
	criticHidden := append(append([]int(nil), cfg.Hidden...), cfg.Hidden[len(cfg.Hidden)-1])
	criticSizes := append(append([]int{cfg.StateDim + cfg.ActionDim}, criticHidden...), 1)
	a := &Agent{
		Cfg:    cfg,
		Actor:  nn.NewMLP(actorSizes, nn.ReLU, nn.Tanh, rng),
		Critic: nn.NewMLP(criticSizes, nn.ReLU, nn.Identity, rng),
		Buf:    NewReplay(cfg.BufferCap, cfg.Seed+1),
		rng:    rng,
	}
	a.ActorT = a.Actor.Clone()
	a.CriticT = a.Critic.Clone()
	a.actorOpt = nn.NewAdam(a.Actor, cfg.ActorLR)
	a.criticOpt = nn.NewAdam(a.Critic, cfg.CriticLR)
	return a, nil
}

// Action returns the deterministic policy action μ(s) in [-1,1]^A.
func (a *Agent) Action(state []float64) []float64 {
	x := tensor.FromSlice(1, len(state), append([]float64(nil), state...))
	out := a.Actor.Forward(x)
	return append([]float64(nil), out.Row(0)...)
}

// NoisyAction returns μ(s) + N(0, sigma²) clipped to [-1,1] (Alg. 2
// line 11).
func (a *Agent) NoisyAction(state []float64, sigma float64) []float64 {
	act := a.Action(state)
	for i := range act {
		act[i] += sigma * a.rng.NormFloat64()
		if act[i] > 1 {
			act[i] = 1
		}
		if act[i] < -1 {
			act[i] = -1
		}
	}
	return act
}

// RandomAction returns a uniform action in [-1,1]^A (pure exploration).
func (a *Agent) RandomAction() []float64 {
	act := make([]float64, a.Cfg.ActionDim)
	for i := range act {
		act[i] = 2*a.rng.Float64() - 1
	}
	return act
}

// Update samples a minibatch and performs one critic and one actor gradient
// step plus soft target updates (Alg. 2 lines 19-22). It returns the critic
// loss, or 0 if the buffer has fewer than batch transitions.
func (a *Agent) Update(batch int) float64 {
	if a.Buf.Len() < batch {
		return 0
	}
	ts := a.Buf.Sample(batch)
	n := len(ts)
	ds, da := a.Cfg.StateDim, a.Cfg.ActionDim
	S := tensor.New(n, ds)
	A := tensor.New(n, da)
	S2 := tensor.New(n, ds)
	for i, t := range ts {
		copy(S.Row(i), t.State)
		copy(A.Row(i), t.Action)
		copy(S2.Row(i), t.NextState)
	}

	// Targets: y = r + γ·Q'(s', μ'(s')) for non-terminal transitions.
	a2 := a.ActorT.Forward(S2)
	q2 := a.CriticT.Forward(tensor.HStack(S2, a2))
	y := make([]float64, n)
	for i, t := range ts {
		y[i] = t.Reward
		if !t.Done {
			y[i] += a.Cfg.Gamma * q2.At(i, 0)
		}
	}

	// Critic step: minimise (1/n)Σ (Q(s,a) - y)².
	sa := tensor.HStack(S, A)
	q, qCache := a.Critic.ForwardCache(sa)
	gradQ := tensor.New(n, 1)
	var loss float64
	for i := 0; i < n; i++ {
		d := q.At(i, 0) - y[i]
		loss += d * d
		gradQ.Set(i, 0, 2*d/float64(n))
	}
	loss /= float64(n)
	_, criticGrads := a.Critic.Backward(qCache, gradQ)
	a.criticOpt.Step(a.Critic, criticGrads)

	// Actor step: ascend Q(s, μ(s)) — backprop dQ/da through the critic to
	// the action inputs, then through the actor.
	aPred, aCache := a.Actor.ForwardCache(S)
	saPred := tensor.HStack(S, aPred)
	_, qPredCache := a.Critic.ForwardCache(saPred)
	ones := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		ones.Set(i, 0, -1.0/float64(n)) // maximise Q ⇒ descend -Q
	}
	gradSA, _ := a.Critic.Backward(qPredCache, ones)
	gradA := gradSA.Cols(ds, ds+da)
	_, actorGrads := a.Actor.Backward(aCache, gradA)
	a.actorOpt.Step(a.Actor, actorGrads)

	// Soft target updates.
	nn.SoftUpdate(a.ActorT, a.Actor, a.Cfg.Tau)
	nn.SoftUpdate(a.CriticT, a.Critic, a.Cfg.Tau)
	return loss
}
