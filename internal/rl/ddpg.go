// Package rl implements the Deep Deterministic Policy Gradient (DDPG)
// algorithm (Lillicrap et al., cited as [32] by the paper) used by
// DistrEdge's OSDS module: an actor-critic pair with target networks, a
// replay buffer, soft target updates and Gaussian exploration noise, for
// continuous action spaces.
package rl

import (
	"fmt"
	"math/rand"

	"distredge/internal/nn"
	"distredge/internal/tensor"
)

// Transition is one (s, a, r, s', done) tuple (Alg. 2 line 18 stores the
// raw actor output ã, before the action mapping of Eq. 9).
type Transition struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	Done      bool
}

// Replay is a bounded FIFO replay buffer with uniform sampling. Storage
// grows on demand up to the capacity: short training runs (tests,
// benchmarks, finetuning bursts) never pay for the full paper-scale buffer,
// which at the default 100k capacity would be ~12 MB of zeroed memory per
// agent.
type Replay struct {
	cap  int
	buf  []Transition
	next int // overwrite cursor, meaningful once len(buf) == cap
	rng  *rand.Rand
}

// NewReplay returns a replay buffer holding up to capacity transitions.
func NewReplay(capacity int, seed int64) *Replay {
	if capacity < 1 {
		capacity = 1
	}
	return &Replay{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add stores a transition, evicting the oldest when full.
func (r *Replay) Add(t Transition) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
		return
	}
	r.buf[r.next] = t
	r.next++
	if r.next == r.cap {
		r.next = 0
	}
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int { return len(r.buf) }

// Sample draws n transitions uniformly with replacement.
func (r *Replay) Sample(n int) []Transition {
	return r.SampleInto(make([]Transition, n))
}

// SampleInto fills out with uniform draws (with replacement), reusing the
// caller's buffer. The RNG consumption matches Sample exactly.
func (r *Replay) SampleInto(out []Transition) []Transition {
	m := r.Len()
	for i := range out {
		out[i] = r.buf[r.rng.Intn(m)]
	}
	return out
}

// Config sets the DDPG hyper-parameters. The defaults mirror the paper's
// Section V: γ=0.99, actor lr 1e-4, critic lr 1e-3, batch 64.
type Config struct {
	StateDim  int
	ActionDim int
	Hidden    []int // actor hidden sizes; the critic gets Hidden + [last]
	ActorLR   float64
	CriticLR  float64
	Gamma     float64
	Tau       float64
	BufferCap int
	Seed      int64
}

// withDefaults fills zero fields with the paper's values.
func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{400, 200, 100}
	}
	if c.ActorLR == 0 {
		c.ActorLR = 1e-4
	}
	if c.CriticLR == 0 {
		c.CriticLR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.Tau == 0 {
		c.Tau = 0.01
	}
	if c.BufferCap == 0 {
		c.BufferCap = 100_000
	}
	return c
}

// Agent is a DDPG agent. The actor maps states to actions in [-1,1]^A
// (tanh output, Eq. 9's [A,B] bounds); the critic maps (state, action) to a
// scalar Q value.
type Agent struct {
	Cfg     Config
	Actor   *nn.MLP
	Critic  *nn.MLP
	ActorT  *nn.MLP
	CriticT *nn.MLP

	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	Buf       *Replay
	rng       *rand.Rand

	scr  *updateScratch // batch-sized buffers reused across Update calls
	act1 *actScratch    // 1-row buffers reused across Action calls
}

// updateScratch holds every buffer one Update step needs, sized for a fixed
// batch. Reuse makes Update allocation-free without changing any float
// operation: each buffer replaces exactly one former allocation.
type updateScratch struct {
	batch    int
	ts       []Transition
	S, A, S2 *tensor.Mat
	sa       *tensor.Mat // state‖action input, reused for all three HStacks
	y        []float64
	gradQ    *tensor.Mat
	ones     *tensor.Mat
	gradA    *tensor.Mat
	actorWS  *nn.Workspace // serves Actor and ActorT (same shape)
	criticWS *nn.Workspace // serves Critic and CriticT
}

// actScratch is the 1-row forward-pass workspace behind Action.
type actScratch struct {
	in *tensor.Mat
	ws *nn.Workspace
}

// scratch returns batch-sized update buffers, (re)building them when the
// batch size changes.
func (a *Agent) scratch(batch int) *updateScratch {
	if a.scr != nil && a.scr.batch == batch {
		return a.scr
	}
	ds, da := a.Cfg.StateDim, a.Cfg.ActionDim
	a.scr = &updateScratch{
		batch:    batch,
		ts:       make([]Transition, batch),
		S:        tensor.New(batch, ds),
		A:        tensor.New(batch, da),
		S2:       tensor.New(batch, ds),
		sa:       tensor.New(batch, ds+da),
		y:        make([]float64, batch),
		gradQ:    tensor.New(batch, 1),
		ones:     tensor.New(batch, 1),
		gradA:    tensor.New(batch, da),
		actorWS:  nn.NewWorkspace(a.Actor, batch),
		criticWS: nn.NewWorkspace(a.Critic, batch),
	}
	for i := 0; i < batch; i++ {
		a.scr.ones.Set(i, 0, -1.0/float64(batch)) // maximise Q ⇒ descend -Q
	}
	return a.scr
}

// New creates a DDPG agent (Alg. 2 lines 1-3: random nets, targets copied,
// empty replay buffer).
func New(cfg Config) (*Agent, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDim < 1 || cfg.ActionDim < 1 {
		return nil, fmt.Errorf("rl: need positive state/action dims, got %d/%d", cfg.StateDim, cfg.ActionDim)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	actorSizes := append(append([]int{cfg.StateDim}, cfg.Hidden...), cfg.ActionDim)
	criticHidden := append(append([]int(nil), cfg.Hidden...), cfg.Hidden[len(cfg.Hidden)-1])
	criticSizes := append(append([]int{cfg.StateDim + cfg.ActionDim}, criticHidden...), 1)
	a := &Agent{
		Cfg:    cfg,
		Actor:  nn.NewMLP(actorSizes, nn.ReLU, nn.Tanh, rng),
		Critic: nn.NewMLP(criticSizes, nn.ReLU, nn.Identity, rng),
		Buf:    NewReplay(cfg.BufferCap, cfg.Seed+1),
		rng:    rng,
	}
	a.ActorT = a.Actor.Clone()
	a.CriticT = a.Critic.Clone()
	a.actorOpt = nn.NewAdam(a.Actor, cfg.ActorLR)
	a.criticOpt = nn.NewAdam(a.Critic, cfg.CriticLR)
	return a, nil
}

// Action returns the deterministic policy action μ(s) in [-1,1]^A.
func (a *Agent) Action(state []float64) []float64 {
	if len(state) != a.Cfg.StateDim {
		panic(fmt.Sprintf("rl: state dim %d, want %d", len(state), a.Cfg.StateDim))
	}
	if a.act1 == nil {
		a.act1 = &actScratch{
			in: tensor.New(1, a.Cfg.StateDim),
			ws: nn.NewWorkspace(a.Actor, 1),
		}
	}
	copy(a.act1.in.A, state)
	out := a.Actor.ForwardWS(a.act1.ws, a.act1.in)
	return append([]float64(nil), out.Row(0)...)
}

// NoisyAction returns μ(s) + N(0, sigma²) clipped to [-1,1] (Alg. 2
// line 11).
func (a *Agent) NoisyAction(state []float64, sigma float64) []float64 {
	act := a.Action(state)
	for i := range act {
		act[i] += sigma * a.rng.NormFloat64()
		if act[i] > 1 {
			act[i] = 1
		}
		if act[i] < -1 {
			act[i] = -1
		}
	}
	return act
}

// RandomAction returns a uniform action in [-1,1]^A (pure exploration).
func (a *Agent) RandomAction() []float64 {
	act := make([]float64, a.Cfg.ActionDim)
	for i := range act {
		act[i] = 2*a.rng.Float64() - 1
	}
	return act
}

// Update samples a minibatch and performs one critic and one actor gradient
// step plus soft target updates (Alg. 2 lines 19-22). It returns the critic
// loss, or 0 if the buffer has fewer than batch transitions. All
// intermediate buffers live in a per-agent scratch workspace, so steady-
// state updates allocate nothing.
func (a *Agent) Update(batch int) float64 {
	if a.Buf.Len() < batch {
		return 0
	}
	scr := a.scratch(batch)
	ts := a.Buf.SampleInto(scr.ts)
	n := len(ts)
	ds, da := a.Cfg.StateDim, a.Cfg.ActionDim
	S, A, S2 := scr.S, scr.A, scr.S2
	for i, t := range ts {
		copy(S.Row(i), t.State)
		copy(A.Row(i), t.Action)
		copy(S2.Row(i), t.NextState)
	}

	// Targets: y = r + γ·Q'(s', μ'(s')) for non-terminal transitions.
	a2 := a.ActorT.ForwardWS(scr.actorWS, S2)
	q2 := a.CriticT.ForwardWS(scr.criticWS, tensor.HStackInto(scr.sa, S2, a2))
	y := scr.y
	for i, t := range ts {
		y[i] = t.Reward
		if !t.Done {
			y[i] += a.Cfg.Gamma * q2.At(i, 0)
		}
	}

	// Critic step: minimise (1/n)Σ (Q(s,a) - y)².
	q := a.Critic.ForwardWS(scr.criticWS, tensor.HStackInto(scr.sa, S, A))
	gradQ := scr.gradQ
	var loss float64
	for i := 0; i < n; i++ {
		d := q.At(i, 0) - y[i]
		loss += d * d
		gradQ.Set(i, 0, 2*d/float64(n))
	}
	loss /= float64(n)
	criticGrads := a.Critic.BackwardWS(scr.criticWS, gradQ)
	a.criticOpt.Step(a.Critic, criticGrads)

	// Actor step: ascend Q(s, μ(s)) — backprop dQ/da through the critic to
	// the action inputs, then through the actor. The actor workspace still
	// caches μ(S) from the forward pass below when BackwardWS runs.
	aPred := a.Actor.ForwardWS(scr.actorWS, S)
	a.Critic.ForwardWS(scr.criticWS, tensor.HStackInto(scr.sa, S, aPred))
	gradSA := a.Critic.BackwardInputWS(scr.criticWS, scr.ones)
	gradA := gradSA.ColsInto(scr.gradA, ds, ds+da)
	actorGrads := a.Actor.BackwardWS(scr.actorWS, gradA)
	a.actorOpt.Step(a.Actor, actorGrads)

	// Soft target updates.
	nn.SoftUpdate(a.ActorT, a.Actor, a.Cfg.Tau)
	nn.SoftUpdate(a.CriticT, a.Critic, a.Cfg.Tau)
	return loss
}
