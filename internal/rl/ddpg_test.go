package rl

import (
	"math"
	"testing"
)

func TestReplayBasics(t *testing.T) {
	r := NewReplay(3, 1)
	if r.Len() != 0 {
		t.Fatal("new buffer must be empty")
	}
	for i := 0; i < 5; i++ {
		r.Add(Transition{Reward: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (capacity)", r.Len())
	}
	// Oldest entries (0,1) must have been evicted.
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		for _, tr := range r.Sample(3) {
			seen[tr.Reward] = true
		}
	}
	if seen[0] || seen[1] {
		t.Error("evicted transitions still sampled")
	}
	if !seen[2] || !seen[3] || !seen[4] {
		t.Error("live transitions never sampled")
	}
}

func TestReplayMinCapacity(t *testing.T) {
	r := NewReplay(0, 1)
	r.Add(Transition{Reward: 7})
	if r.Len() != 1 || r.Sample(1)[0].Reward != 7 {
		t.Error("capacity floor of 1 broken")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{StateDim: 0, ActionDim: 2}); err == nil {
		t.Error("zero state dim must error")
	}
	if _, err := New(Config{StateDim: 2, ActionDim: 0}); err == nil {
		t.Error("zero action dim must error")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{StateDim: 2, ActionDim: 1}.withDefaults()
	if c.Gamma != 0.99 || c.ActorLR != 1e-4 || c.CriticLR != 1e-3 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if len(c.Hidden) != 3 || c.Hidden[0] != 400 {
		t.Errorf("default hidden sizes wrong: %v", c.Hidden)
	}
}

func TestActionBounds(t *testing.T) {
	a, err := New(Config{StateDim: 3, ActionDim: 2, Hidden: []int{16}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := []float64{0.5, -1, 2}
	for _, act := range [][]float64{a.Action(s), a.NoisyAction(s, 0.5), a.RandomAction()} {
		if len(act) != 2 {
			t.Fatalf("action dim %d, want 2", len(act))
		}
		for _, v := range act {
			if v < -1 || v > 1 {
				t.Fatalf("action %g out of [-1,1]", v)
			}
		}
	}
}

func TestActionDeterministic(t *testing.T) {
	a, _ := New(Config{StateDim: 2, ActionDim: 1, Hidden: []int{8}, Seed: 2})
	s := []float64{0.3, 0.7}
	x, y := a.Action(s), a.Action(s)
	if x[0] != y[0] {
		t.Error("deterministic policy must repeat")
	}
}

func TestUpdateRequiresBatch(t *testing.T) {
	a, _ := New(Config{StateDim: 2, ActionDim: 1, Hidden: []int{8}, Seed: 3})
	if loss := a.Update(16); loss != 0 {
		t.Error("update with empty buffer must be a no-op")
	}
}

func TestDDPGSolvesBandit(t *testing.T) {
	// One-step continuous bandit: reward = 1 - (a - target)², maximised at
	// a = target. DDPG must steer the policy toward the target.
	target := 0.4
	a, err := New(Config{
		StateDim: 1, ActionDim: 1, Hidden: []int{32, 32},
		ActorLR: 1e-3, CriticLR: 1e-2, Seed: 4, Tau: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{1}
	for ep := 0; ep < 400; ep++ {
		var act []float64
		if ep < 100 {
			act = a.RandomAction()
		} else {
			act = a.NoisyAction(state, 0.2)
		}
		r := 1 - (act[0]-target)*(act[0]-target)
		a.Buf.Add(Transition{State: state, Action: act, Reward: r, NextState: state, Done: true})
		a.Update(32)
	}
	got := a.Action(state)[0]
	if math.Abs(got-target) > 0.25 {
		t.Errorf("policy converged to %g, want ~%g", got, target)
	}
}

func TestUpdateReducesCriticLoss(t *testing.T) {
	a, _ := New(Config{StateDim: 1, ActionDim: 1, Hidden: []int{16, 16}, CriticLR: 1e-2, Seed: 5})
	// Fill with a fixed deterministic mapping r = s*a.
	for i := 0; i < 256; i++ {
		s := float64(i%16)/8 - 1
		act := float64(i%7)/3 - 1
		a.Buf.Add(Transition{State: []float64{s}, Action: []float64{act}, Reward: s * act, NextState: []float64{s}, Done: true})
	}
	first := a.Update(64)
	var last float64
	for i := 0; i < 200; i++ {
		last = a.Update(64)
	}
	if last > first {
		t.Errorf("critic loss did not decrease: first %g, last %g", first, last)
	}
}
