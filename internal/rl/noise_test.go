package rl

import (
	"math"
	"testing"
)

func TestOUNoiseMeanReversion(t *testing.T) {
	// Long-run sample mean must hover near Mu and the variance must be
	// bounded (the defining properties of an OU process).
	n := NewOUNoise(1, 0.2, 1)
	var sum, sumSq float64
	const steps = 20000
	for i := 0; i < steps; i++ {
		v := n.Sample()[0]
		sum += v
		sumSq += v * v
	}
	mean := sum / steps
	variance := sumSq/steps - mean*mean
	if math.Abs(mean) > 0.1 {
		t.Errorf("OU mean %g drifted from 0", mean)
	}
	// Stationary variance of OU ≈ σ²/(2θ) = 0.04/0.3 ≈ 0.133.
	if variance < 0.05 || variance > 0.3 {
		t.Errorf("OU variance %g outside plausible band", variance)
	}
}

func TestOUNoiseTemporalCorrelation(t *testing.T) {
	// Consecutive samples must be positively correlated — the reason OU is
	// used over white noise.
	n := NewOUNoise(1, 0.3, 2)
	var prev float64
	var sumXY, sumX, sumY, sumXX, sumYY float64
	const steps = 5000
	prev = n.Sample()[0]
	for i := 0; i < steps; i++ {
		cur := n.Sample()[0]
		sumXY += prev * cur
		sumX += prev
		sumY += cur
		sumXX += prev * prev
		sumYY += cur * cur
		prev = cur
	}
	nF := float64(steps)
	num := sumXY - sumX*sumY/nF
	den := math.Sqrt((sumXX - sumX*sumX/nF) * (sumYY - sumY*sumY/nF))
	corr := num / den
	if corr < 0.5 {
		t.Errorf("OU autocorrelation %g too low", corr)
	}
}

func TestOUNoiseReset(t *testing.T) {
	n := NewOUNoise(3, 0.5, 3)
	n.Sample()
	n.Sample()
	n.Reset()
	for i, v := range n.state {
		if v != 0 {
			t.Errorf("state[%d] = %g after reset", i, v)
		}
	}
}

func TestNoisyActionOUBounds(t *testing.T) {
	a, err := New(Config{StateDim: 2, ActionDim: 3, Hidden: []int{8}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	noise := NewOUNoise(3, 2.0, 5) // huge sigma to force clipping
	for i := 0; i < 50; i++ {
		act := a.NoisyActionOU([]float64{0.1, -0.2}, noise)
		for _, v := range act {
			if v < -1 || v > 1 {
				t.Fatalf("action %g out of bounds", v)
			}
		}
	}
}
