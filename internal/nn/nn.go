// Package nn implements the multilayer perceptrons DistrEdge's DDPG agent
// uses for its actor and critic networks (Section V: actor {400,200,100},
// critic {400,200,100,100}), with minibatch forward/backward passes and the
// Adam optimiser — stdlib only.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"distredge/internal/tensor"
)

// Activation selects a layer nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Tanh
)

func (a Activation) apply(m *tensor.Mat) {
	switch a {
	case ReLU:
		for i, x := range m.A {
			m.A[i] = max(x, 0) // branchless; negatives clamp, zeros stay zero
		}
	case Tanh:
		for i, x := range m.A {
			m.A[i] = math.Tanh(x)
		}
	}
}

// applyDeriv multiplies delta element-wise by act'(z) expressed through the
// activated outputs, in place. ReLU and Identity skip the multiplications
// by exactly 1 (x*1 == x bit-for-bit), so results match the generic
// derivFromOut loop.
func applyDeriv(act Activation, delta, out *tensor.Mat) {
	switch act {
	case ReLU:
		for i, y := range out.A {
			if y <= 0 {
				delta.A[i] = 0
			}
		}
	case Tanh:
		for i, y := range out.A {
			delta.A[i] *= 1 - y*y
		}
	}
}

// derivFromOut returns dact/dz given the *activated* output value.
func (a Activation) derivFromOut(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// MLP is a fully-connected network: Sizes[0] inputs, hidden layers with
// HiddenAct, and Sizes[len-1] outputs with OutAct.
type MLP struct {
	Sizes     []int
	W         []*tensor.Mat // W[l] is Sizes[l] x Sizes[l+1]
	B         [][]float64
	HiddenAct Activation
	OutAct    Activation
}

// NewMLP builds an MLP with Xavier-uniform initial weights.
func NewMLP(sizes []int, hidden, out Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: MLP needs >=2 sizes, got %v", sizes))
	}
	m := &MLP{Sizes: append([]int(nil), sizes...), HiddenAct: hidden, OutAct: out}
	for l := 0; l+1 < len(sizes); l++ {
		w := tensor.New(sizes[l], sizes[l+1])
		scale := math.Sqrt(6.0 / float64(sizes[l]+sizes[l+1]))
		w.Randomize(rng, scale)
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float64, sizes[l+1]))
	}
	return m
}

// Clone returns a deep copy of the network.
func (m *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), m.Sizes...), HiddenAct: m.HiddenAct, OutAct: m.OutAct}
	for l := range m.W {
		c.W = append(c.W, m.W[l].Clone())
		c.B = append(c.B, append([]float64(nil), m.B[l]...))
	}
	return c
}

// Cache stores per-layer activations from a forward pass for Backward.
type Cache struct {
	acts []*tensor.Mat // acts[0] = input, acts[l+1] = output of layer l
}

// Output returns the network output stored in the cache.
func (c *Cache) Output() *tensor.Mat { return c.acts[len(c.acts)-1] }

// Workspace holds every buffer a fixed-batch forward/backward pass through
// one network shape needs: per-layer activations, per-layer deltas and the
// parameter gradients. Reusing a workspace makes training steps
// allocation-free; the math is bit-identical to the allocating paths.
// A workspace serves any MLP with the same Sizes (e.g. a net and its
// target copy), one pass at a time.
type Workspace struct {
	batch int
	acts  []*tensor.Mat // acts[0] = input ref, acts[l+1] = output of layer l
	delta []*tensor.Mat // delta[l] = batch × Sizes[l+1] backprop scratch
	wt    []*tensor.Mat // wt[l] = W[l]ᵀ scratch for delta propagation
	gin   *tensor.Mat   // batch × Sizes[0] input gradient
	grads *Grads
}

// NewWorkspace builds a workspace for minibatches of the given row count
// through networks shaped like m.
func NewWorkspace(m *MLP, batch int) *Workspace {
	ws := &Workspace{
		batch: batch,
		acts:  make([]*tensor.Mat, len(m.W)+1),
		delta: make([]*tensor.Mat, len(m.W)),
		wt:    make([]*tensor.Mat, len(m.W)),
		gin:   tensor.New(batch, m.Sizes[0]),
		grads: &Grads{W: make([]*tensor.Mat, len(m.W)), B: make([][]float64, len(m.W))},
	}
	for l := range m.W {
		ws.acts[l+1] = tensor.New(batch, m.Sizes[l+1])
		ws.delta[l] = tensor.New(batch, m.Sizes[l+1])
		ws.wt[l] = tensor.New(m.Sizes[l+1], m.Sizes[l])
		ws.grads.W[l] = tensor.New(m.Sizes[l], m.Sizes[l+1])
		ws.grads.B[l] = make([]float64, m.Sizes[l+1])
	}
	return ws
}

// Forward runs a minibatch (rows = samples) through the network.
func (m *MLP) Forward(x *tensor.Mat) *tensor.Mat {
	_, cache := m.ForwardCache(x)
	return cache.Output()
}

// ForwardCache runs a minibatch and keeps the activations for Backward.
func (m *MLP) ForwardCache(x *tensor.Mat) (*tensor.Mat, *Cache) {
	if x.C != m.Sizes[0] {
		panic(fmt.Sprintf("nn: input width %d, want %d", x.C, m.Sizes[0]))
	}
	cache := &Cache{acts: make([]*tensor.Mat, 0, len(m.W)+1)}
	cache.acts = append(cache.acts, x)
	cur := x
	for l := range m.W {
		z := tensor.MulAB(cur, m.W[l])
		z.AddRowVec(m.B[l])
		if l == len(m.W)-1 {
			m.OutAct.apply(z)
		} else {
			m.HiddenAct.apply(z)
		}
		cache.acts = append(cache.acts, z)
		cur = z
	}
	return cur, cache
}

// ForwardWS runs a minibatch through the network into the workspace's
// activation buffers, allocating nothing. The returned output and the
// cached activations are valid until the workspace's next forward pass.
func (m *MLP) ForwardWS(ws *Workspace, x *tensor.Mat) *tensor.Mat {
	if x.C != m.Sizes[0] {
		panic(fmt.Sprintf("nn: input width %d, want %d", x.C, m.Sizes[0]))
	}
	if x.R != ws.batch {
		panic(fmt.Sprintf("nn: batch %d, workspace built for %d", x.R, ws.batch))
	}
	ws.acts[0] = x
	cur := x
	for l := range m.W {
		z := ws.acts[l+1]
		tensor.MulABInto(z, cur, m.W[l])
		z.AddRowVec(m.B[l])
		if l == len(m.W)-1 {
			m.OutAct.apply(z)
		} else {
			m.HiddenAct.apply(z)
		}
		cur = z
	}
	return cur
}

// Grads holds parameter gradients matching an MLP's weights and biases.
type Grads struct {
	W []*tensor.Mat
	B [][]float64
}

// Backward backpropagates dL/dOut (same shape as the cached output) and
// returns dL/dInput along with the parameter gradients.
func (m *MLP) Backward(cache *Cache, gradOut *tensor.Mat) (*tensor.Mat, *Grads) {
	g := &Grads{W: make([]*tensor.Mat, len(m.W)), B: make([][]float64, len(m.W))}
	delta := gradOut.Clone()
	for l := len(m.W) - 1; l >= 0; l-- {
		act := m.HiddenAct
		if l == len(m.W)-1 {
			act = m.OutAct
		}
		out := cache.acts[l+1]
		for i := range delta.A {
			delta.A[i] *= act.derivFromOut(out.A[i])
		}
		in := cache.acts[l]
		g.W[l] = tensor.MulATB(in, delta)
		g.B[l] = delta.SumRows()
		if l > 0 {
			delta = tensor.MulABT(delta, m.W[l])
		}
	}
	var gradIn *tensor.Mat
	if len(m.W) > 0 {
		gradIn = tensor.MulABT(delta, m.W[0])
	}
	return gradIn, g
}

// BackwardWS backpropagates gradOut through the activations cached by the
// workspace's last ForwardWS call and returns the parameter gradients,
// allocating nothing. Unlike Backward it does not compute the input
// gradient — use BackwardInputWS when only that is needed (DDPG's dQ/da).
// The returned gradients alias workspace buffers and are valid until the
// next backward call on this workspace.
func (m *MLP) BackwardWS(ws *Workspace, gradOut *tensor.Mat) *Grads {
	last := len(m.W) - 1
	delta := ws.delta[last]
	if len(gradOut.A) != len(delta.A) {
		panic(fmt.Sprintf("nn: gradOut %dx%d, workspace expects %dx%d", gradOut.R, gradOut.C, delta.R, delta.C))
	}
	copy(delta.A, gradOut.A)
	for l := last; l >= 0; l-- {
		act := m.HiddenAct
		if l == last {
			act = m.OutAct
		}
		applyDeriv(act, delta, ws.acts[l+1])
		tensor.MulATBInto(ws.grads.W[l], ws.acts[l], delta)
		delta.SumRowsInto(ws.grads.B[l])
		if l > 0 {
			// delta·Wᵀ via an explicit transpose: the streaming MulAB
			// kernel then reads rows sequentially (same sums, same order).
			tensor.TransposeInto(ws.wt[l], m.W[l])
			tensor.MulABInto(ws.delta[l-1], delta, ws.wt[l])
			delta = ws.delta[l-1]
		}
	}
	return ws.grads
}

// BackwardInputWS backpropagates gradOut through the workspace's cached
// activations down to the network *input* and returns dL/dInput, skipping
// the parameter gradients entirely — the critic-as-differentiable-oracle
// pass of DDPG's actor update. The result aliases the workspace.
func (m *MLP) BackwardInputWS(ws *Workspace, gradOut *tensor.Mat) *tensor.Mat {
	last := len(m.W) - 1
	delta := ws.delta[last]
	if len(gradOut.A) != len(delta.A) {
		panic(fmt.Sprintf("nn: gradOut %dx%d, workspace expects %dx%d", gradOut.R, gradOut.C, delta.R, delta.C))
	}
	copy(delta.A, gradOut.A)
	for l := last; l >= 0; l-- {
		act := m.HiddenAct
		if l == last {
			act = m.OutAct
		}
		applyDeriv(act, delta, ws.acts[l+1])
		if l > 0 {
			tensor.TransposeInto(ws.wt[l], m.W[l])
			tensor.MulABInto(ws.delta[l-1], delta, ws.wt[l])
			delta = ws.delta[l-1]
		}
	}
	tensor.TransposeInto(ws.wt[0], m.W[0])
	tensor.MulABInto(ws.gin, delta, ws.wt[0])
	return ws.gin
}

// SoftUpdate moves target parameters toward src: θ' ← τθ + (1-τ)θ'.
func SoftUpdate(target, src *MLP, tau float64) {
	for l := range target.W {
		tw, sw := target.W[l], src.W[l]
		for i := range tw.A {
			tw.A[i] = tau*sw.A[i] + (1-tau)*tw.A[i]
		}
		tb, sb := target.B[l], src.B[l]
		for i := range tb {
			tb[i] = tau*sb[i] + (1-tau)*tb[i]
		}
	}
}

// Adam is the Adam optimiser bound to one MLP's parameter shapes.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	mW, vW                []*tensor.Mat
	mB, vB                [][]float64
}

// NewAdam returns an Adam optimiser for the given network.
func NewAdam(m *MLP, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	for l := range m.W {
		a.mW = append(a.mW, tensor.New(m.W[l].R, m.W[l].C))
		a.vW = append(a.vW, tensor.New(m.W[l].R, m.W[l].C))
		a.mB = append(a.mB, make([]float64, len(m.B[l])))
		a.vB = append(a.vB, make([]float64, len(m.B[l])))
	}
	return a
}

// Step applies one Adam update of the gradients to the network.
func (a *Adam) Step(m *MLP, g *Grads) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	b1, b2 := a.Beta1, a.Beta2
	ob1, ob2 := 1-b1, 1-b2
	lr, eps := a.LR, a.Eps
	for l := range m.W {
		w, gw := m.W[l].A, g.W[l].A
		mw, vw := a.mW[l].A, a.vW[l].A
		for i := range w {
			gv := gw[i]
			mw[i] = b1*mw[i] + ob1*gv
			vw[i] = b2*vw[i] + ob2*gv*gv
			w[i] -= lr * (mw[i] / c1) / (math.Sqrt(vw[i]/c2) + eps)
		}
		b, gb := m.B[l], g.B[l]
		mb, vb := a.mB[l], a.vB[l]
		for i := range b {
			gv := gb[i]
			mb[i] = b1*mb[i] + ob1*gv
			vb[i] = b2*vb[i] + ob2*gv*gv
			b[i] -= lr * (mb[i] / c1) / (math.Sqrt(vb[i]/c2) + eps)
		}
	}
}
