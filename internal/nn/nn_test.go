package nn

import (
	"math"
	"math/rand"
	"testing"

	"distredge/internal/tensor"
)

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{4, 8, 3}, ReLU, Tanh, rng)
	x := tensor.New(5, 4)
	x.Randomize(rng, 1)
	out := m.Forward(x)
	if out.R != 5 || out.C != 3 {
		t.Fatalf("output shape %dx%d, want 5x3", out.R, out.C)
	}
	for _, v := range out.A {
		if v < -1 || v > 1 {
			t.Fatalf("tanh output %g out of [-1,1]", v)
		}
	}
}

// numericalGrad estimates dLoss/dparam by central differences.
func numericalGrad(m *MLP, x *tensor.Mat, target []float64, param *float64) float64 {
	loss := func() float64 {
		out := m.Forward(x)
		var s float64
		for i, v := range out.A {
			d := v - target[i]
			s += d * d
		}
		return s
	}
	const h = 1e-6
	orig := *param
	*param = orig + h
	lp := loss()
	*param = orig - h
	lm := loss()
	*param = orig
	return (lp - lm) / (2 * h)
}

func TestBackwardMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{3, 5, 4, 2}, ReLU, Tanh, rng)
	// Perturb biases away from zero so no ReLU pre-activation sits exactly
	// on the kink (where the subgradient makes numerical comparison moot).
	for l := range m.B {
		for i := range m.B[l] {
			m.B[l][i] = 0.1 * rng.NormFloat64()
		}
	}
	x := tensor.New(4, 3)
	x.Randomize(rng, 1)
	target := make([]float64, 4*2)
	for i := range target {
		target[i] = rng.NormFloat64() * 0.3
	}
	out, cache := m.ForwardCache(x)
	gradOut := tensor.New(4, 2)
	for i := range gradOut.A {
		gradOut.A[i] = 2 * (out.A[i] - target[i])
	}
	_, grads := m.Backward(cache, gradOut)

	check := func(name string, analytic float64, param *float64) {
		num := numericalGrad(m, x, target, param)
		if math.Abs(num-analytic) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("%s: analytic %g vs numerical %g", name, analytic, num)
		}
	}
	for l := range m.W {
		check("W0", grads.W[l].A[0], &m.W[l].A[0])
		last := len(m.W[l].A) - 1
		check("Wlast", grads.W[l].A[last], &m.W[l].A[last])
		check("B0", grads.B[l][0], &m.B[l][0])
	}
}

func TestBackwardGradInput(t *testing.T) {
	// dLoss/dInput must also match numerical differentiation.
	rng := rand.New(rand.NewSource(4))
	m := NewMLP([]int{3, 6, 1}, ReLU, Identity, rng)
	x := tensor.New(1, 3)
	x.Randomize(rng, 1)
	out, cache := m.ForwardCache(x)
	gradOut := tensor.New(1, 1)
	gradOut.Set(0, 0, 1) // dL/dout = 1, so gradIn = dout/dx
	gradIn, _ := m.Backward(cache, gradOut)
	_ = out
	const h = 1e-6
	for j := 0; j < 3; j++ {
		orig := x.A[j]
		x.A[j] = orig + h
		lp := m.Forward(x).At(0, 0)
		x.A[j] = orig - h
		lm := m.Forward(x).At(0, 0)
		x.A[j] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gradIn.At(0, j)) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("input grad %d: analytic %g vs numerical %g", j, gradIn.At(0, j), num)
		}
	}
}

func TestAdamLearnsRegression(t *testing.T) {
	// y = sin(2x) on [-1,1]; a small MLP with Adam must fit it far better
	// than the initial network.
	rng := rand.New(rand.NewSource(5))
	m := NewMLP([]int{1, 32, 32, 1}, ReLU, Identity, rng)
	opt := NewAdam(m, 1e-2)
	n := 64
	x := tensor.New(n, 1)
	target := make([]float64, n)
	for i := 0; i < n; i++ {
		v := 2*rng.Float64() - 1
		x.Set(i, 0, v)
		target[i] = math.Sin(2 * v)
	}
	loss := func() float64 {
		out := m.Forward(x)
		var s float64
		for i := range target {
			d := out.At(i, 0) - target[i]
			s += d * d
		}
		return s / float64(n)
	}
	initial := loss()
	for it := 0; it < 500; it++ {
		out, cache := m.ForwardCache(x)
		g := tensor.New(n, 1)
		for i := range target {
			g.Set(i, 0, 2*(out.At(i, 0)-target[i])/float64(n))
		}
		_, grads := m.Backward(cache, g)
		opt.Step(m, grads)
	}
	final := loss()
	if final > initial/10 {
		t.Errorf("Adam failed to learn: initial %g, final %g", initial, final)
	}
	if final > 0.05 {
		t.Errorf("final loss %g too high", final)
	}
}

func TestSoftUpdateConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := NewMLP([]int{2, 4, 1}, ReLU, Identity, rng)
	dst := NewMLP([]int{2, 4, 1}, ReLU, Identity, rng)
	for i := 0; i < 2000; i++ {
		SoftUpdate(dst, src, 0.01)
	}
	for l := range src.W {
		for i := range src.W[l].A {
			if math.Abs(dst.W[l].A[i]-src.W[l].A[i]) > 1e-6 {
				t.Fatal("soft update did not converge to source")
			}
		}
	}
}

func TestSoftUpdateTauOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := NewMLP([]int{2, 3, 1}, ReLU, Identity, rng)
	dst := NewMLP([]int{2, 3, 1}, ReLU, Identity, rng)
	SoftUpdate(dst, src, 1)
	for l := range src.W {
		for i := range src.W[l].A {
			if dst.W[l].A[i] != src.W[l].A[i] {
				t.Fatal("tau=1 must copy exactly")
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMLP([]int{2, 3, 1}, ReLU, Identity, rng)
	c := m.Clone()
	c.W[0].A[0] = 99
	c.B[0][0] = 99
	if m.W[0].A[0] == 99 || m.B[0][0] == 99 {
		t.Error("Clone must deep-copy parameters")
	}
}

func TestActivations(t *testing.T) {
	if ReLU.derivFromOut(2) != 1 || ReLU.derivFromOut(0) != 0 {
		t.Error("ReLU derivative wrong")
	}
	y := math.Tanh(0.7)
	if math.Abs(Tanh.derivFromOut(y)-(1-y*y)) > 1e-15 {
		t.Error("Tanh derivative wrong")
	}
	if Identity.derivFromOut(5) != 1 {
		t.Error("Identity derivative wrong")
	}
}

func TestNewMLPPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 1-element sizes")
		}
	}()
	NewMLP([]int{3}, ReLU, Identity, rand.New(rand.NewSource(1)))
}

func TestForwardPanicsOnBadWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{3, 2}, ReLU, Identity, rng)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong input width")
		}
	}()
	m.Forward(tensor.New(1, 5))
}
