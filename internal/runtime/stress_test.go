package runtime

import (
	"sync"
	"testing"

	"distredge/internal/device"
	"distredge/internal/transport"
)

// TestHighFanInStress drives the sharded registration path the way the
// serving gateway does at peak: 8 providers' result fan-in racing 8
// concurrent Submit callers, over both channel and socket transports. It
// asserts every request completes, the requester's registration shards
// drain to empty, and no provider is left holding assembly state — a
// stuck per-provider gc watermark after the sharding refactor would show
// up as leftover images here.
func TestHighFanInStress(t *testing.T) {
	transports := map[string]func() transport.Transport{
		"inproc": func() transport.Transport { return transport.NewPooledInproc(nil) },
		"tcp":    func() transport.Transport { return transport.NewPooledTCP(nil, nil) },
	}
	for name, mk := range transports {
		t.Run(name, func(t *testing.T) {
			env := testEnv(
				device.Xavier, device.Nano, device.TX2, device.Nano,
				device.Xavier, device.TX2, device.Nano, device.Nano,
			)
			s := equalStrategy(env, []int{0, 10, 18})
			opts := fastOpts()
			opts.Transport = mk()
			cl, err := Deploy(env, s, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			const callers, each = 8, 4
			errs := make([]error, callers)
			var wg sync.WaitGroup
			for i := 0; i < callers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for j := 0; j < each; j++ {
						if err := cl.Submit(); err != nil {
							errs[i] = err
							return
						}
					}
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("caller %d: %v", i, err)
				}
			}

			bk := cl.bookkeeping()
			if bk.nextImg != callers*each {
				t.Errorf("allocated %d ids for %d submits", bk.nextImg, callers*each)
			}
			if bk.pending != 0 || bk.arrived != 0 || bk.completed != 0 {
				t.Errorf("registration shards leaked: pending=%d arrived=%d completed=%d",
					bk.pending, bk.arrived, bk.completed)
			}
			if bk.gcLow != bk.nextImg+1 {
				t.Errorf("gc watermark stuck at %d, want %d", bk.gcLow, bk.nextImg+1)
			}

			// Every provider must have been gc'ed past every image: leftover
			// assembly state means some completion never reached its gc.
			cl.provMu.Lock()
			provs := append([]*Provider(nil), cl.providers...)
			cl.provMu.Unlock()
			for _, p := range provs {
				p.mu.Lock()
				inflight, min := len(p.images), p.minImg
				p.mu.Unlock()
				if inflight != 0 || min != bk.gcLow {
					t.Errorf("provider %d gc watermark stuck: %d in-flight images, minImg=%d want %d",
						p.plan.Index, inflight, min, bk.gcLow)
				}
			}
		})
	}
}
