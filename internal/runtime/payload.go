package runtime

import (
	"encoding/binary"
	"math"
)

// fillActivation fills an emulated payload with plausible activation data:
// little-endian float32 values in roughly [-8, 8), deterministically derived
// from the seed. The runtime's payloads carry no real tensor values — only
// their byte counts matter to the protocol — but the wire codecs do look at
// the bytes: deflate's ratio and the quant codec's error bounds are
// meaningless on the all-zero buffers a fresh pool hands out (all-zero
// compresses ~1000x, which would wreck the predicted-vs-measured fidelity
// comparison). An xorshift32 stream is cheap (~1 GB/s single-threaded, well
// below the emulation's scaled wire rates) and gives deflate realistically
// incompressible mantissas while staying reproducible across runs.
func fillActivation(buf []byte, seed uint32) {
	x := seed | 1 // xorshift must not start at 0
	i := 0
	for ; i+4 <= len(buf); i += 4 {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		// int32(x) spans [-2^31, 2^31); dividing by 2^28 spreads values
		// across [-8, 8) with full mantissa entropy.
		v := float32(int32(x)) / float32(1<<28)
		binary.LittleEndian.PutUint32(buf[i:], math.Float32bits(v))
	}
	for ; i < len(buf); i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		buf[i] = byte(x)
	}
}
