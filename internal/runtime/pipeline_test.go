package runtime

import (
	"strings"
	"testing"
	"time"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/strategy"
)

// stageStrategy assigns volume v entirely to provider v%n — the layout with
// the most pipeline parallelism to gain, mirroring sim's pipeline tests.
func stageStrategy(env interface {
	NumProviders() int
}, m *cnn.Model, boundaries []int) *strategy.Strategy {
	n := env.NumProviders()
	s := &strategy.Strategy{Boundaries: boundaries}
	for v := 0; v+1 < len(boundaries); v++ {
		h := strategy.VolumeHeight(m, boundaries, v)
		s.Splits = append(s.Splits, strategy.AllOnProvider(h, n, v%n))
	}
	return s
}

// TestSelfRouteFanoutNoDeadlock is the regression test for the seed's
// self-route deadlock: computeLoop called deliver, which blocked sending
// into the bounded compute queue while computeLoop — the only drainer — was
// the caller. A plan whose ready-step fan-out exceeds the old queue
// capacity (64) hung forever; the unbounded ready queue must drain it.
func TestSelfRouteFanoutNoDeadlock(t *testing.T) {
	const fanout = 100
	plan := ProviderPlan{Index: 0}
	plan.Steps = append(plan.Steps, Step{
		Volume:   0,
		Part:     cnn.RowRange{Lo: 0, Hi: 1},
		Needs:    []Need{{Volume: -1, Lo: 0, Hi: 1}},
		Routes:   []Route{{Dest: 0, Lo: 0, Hi: 1}}, // self-route
		RowBytes: 1,
	})
	for i := 0; i < fanout; i++ {
		plan.Steps = append(plan.Steps, Step{
			Volume:   1,
			Part:     cnn.RowRange{Lo: 0, Hi: 1},
			Needs:    []Need{{Volume: 0, Lo: 0, Hi: 1}},
			RowBytes: 1,
		})
	}
	p, err := newProvider(plan, 0, 0, 1, nil, testTransport())
	if err != nil {
		t.Fatal(err)
	}
	defer p.close()
	p.inbox <- Chunk{Image: 1, Volume: -1, Lo: 0, Hi: 1, Payload: []byte{0}}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := p.rec.snapshot(0).StepsExecuted; got == fanout+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("self-route fan-out deadlocked: %d of %d steps executed",
				p.rec.snapshot(0).StepsExecuted, fanout+1)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunPipelinedRejectsBadArgs covers the argument validation.
func TestRunPipelinedRejectsBadArgs(t *testing.T) {
	env := testEnv(device.Nano, device.Nano)
	s := equalStrategy(env, []int{0, 18})
	cl, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.RunPipelined(0, 1); err == nil {
		t.Error("zero images must error")
	}
	if _, err := cl.RunPipelined(3, 0); err == nil {
		t.Error("zero window must error")
	}
}

// TestClusterRunTwice guards the image-id allocation across runs: the seed
// reused ids 1..N on every Run, so a second run collided with the previous
// run's leftover assembly state and hung. Ids are now monotonic for the
// cluster's lifetime.
func TestClusterRunTwice(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano)
	s := equalStrategy(env, []int{0, 10, 18})
	cl, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Run(2); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := cl.Run(2); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// TestWindowGCDropsState checks the window-aware gc: once every admitted
// image has completed, no provider holds assembly state for any of them.
func TestWindowGCDropsState(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := equalStrategy(env, []int{0, 10, 14, 18})
	cl, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stats, err := cl.RunPipelined(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Window != 3 || len(stats.PerImageMS) != 6 {
		t.Fatalf("stats wrong: %+v", stats)
	}
	for i, ms := range stats.PerImageMS {
		if ms <= 0 {
			t.Errorf("image %d latency %gms", i, ms)
		}
	}
	for _, p := range cl.providers {
		p.mu.Lock()
		n := len(p.images)
		p.mu.Unlock()
		if n != 0 {
			t.Errorf("provider %d still holds %d images of assembly state", p.plan.Index, n)
		}
	}
}

// TestSendFailureFailsFast kills a peer and checks that the next failed
// send aborts the run immediately — the seed swallowed every send error as
// "cluster is shutting down" and made the requester wait out the full 30s
// per-image timeout.
func TestSendFailureFailsFast(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano)
	h0 := strategy.VolumeHeight(env.Model, []int{0, 10, 18}, 0)
	h1 := strategy.VolumeHeight(env.Model, []int{0, 10, 18}, 1)
	s := &strategy.Strategy{
		Boundaries: []int{0, 10, 18},
		Splits: [][]int{
			strategy.AllOnProvider(h0, 2, 0), // provider 0 computes volume 0...
			strategy.EqualCuts(h1, 2),        // ...and must send volume 1's halo to provider 1
		},
	}
	cl, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.providers[1].close() // peer dies before any traffic

	start := time.Now()
	_, err = cl.Run(2)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run against a dead peer must fail")
	}
	if elapsed > 10*time.Second {
		t.Errorf("failure took %s — not fast-failing (timeout is %s)", elapsed, cl.opts.Timeout)
	}
	if cl.Err() == nil {
		t.Error("cluster must record the failure")
	}
	// Failure is sticky: a later run is refused outright instead of
	// returning the stale error as its own result.
	if _, err := cl.Run(1); err == nil || !strings.Contains(err.Error(), "already failed") {
		t.Errorf("second run on failed cluster: %v", err)
	}
}

// TestTimeoutIsAnOption checks the per-image timeout is configurable and
// reported as such.
func TestTimeoutIsAnOption(t *testing.T) {
	env := testEnv(device.Nano, device.Nano)
	s := equalStrategy(env, []int{0, 18})
	// Full-scale compute sleeps are far longer than the 10ms budget.
	cl, err := Deploy(env, s, Options{TimeScale: 1, BytesScale: 0.001, Timeout: 10 * time.Millisecond, Transport: testTransport()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	_, err = cl.Run(1)
	if err == nil {
		t.Fatal("run must time out")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error %q does not mention the timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout after %s, want ~10ms", elapsed)
	}
}

// TestPipelinedThroughputOrderingMatchesSim is the acceptance-criterion
// differential test: on a multi-device case the simulator predicts that an
// admission window of 4 sustains measurably more images/sec than the
// sequential protocol, and the scaled TCP runtime must reproduce that
// ordering with a real measured margin.
func TestPipelinedThroughputOrderingMatchesSim(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})

	// Simulator prediction (unscaled model time; only the ordering and the
	// rough magnitude of the speedup transfer to the scaled runtime).
	seqSim, err := env.PipelineStream(s, 40, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pipSim, err := env.PipelineStream(s, 40, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pipSim.IPS <= seqSim.IPS {
		t.Fatalf("simulator must predict a pipelined speedup: %.3f vs %.3f", pipSim.IPS, seqSim.IPS)
	}

	// Scaled runtime: compute sleeps dominate (payloads scaled tiny),
	// so the measured ordering is robust to scheduler noise.
	const images = 12
	run := func(window int) RunStats {
		t.Helper()
		opts := Options{TimeScale: 0.1, BytesScale: 0.001, Transport: testTransport()}
		cl, err := Deploy(env, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		st, err := cl.RunPipelined(images, window)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seqRun := run(1)
	pipRun := run(4)
	t.Logf("sim:     window 1 %.2f ips, window 4 %.2f ips (%.2fx)",
		seqSim.IPS, pipSim.IPS, pipSim.IPS/seqSim.IPS)
	t.Logf("runtime: window 1 %.2f ips, window 4 %.2f ips (%.2fx)",
		seqRun.IPS, pipRun.IPS, pipRun.IPS/seqRun.IPS)
	if pipRun.IPS <= 1.15*seqRun.IPS {
		t.Errorf("runtime does not reproduce the predicted pipelined speedup: window 4 %.2f ips vs window 1 %.2f ips",
			pipRun.IPS, seqRun.IPS)
	}
}
