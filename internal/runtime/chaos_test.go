package runtime

import (
	"strings"
	"testing"
	"time"

	"distredge/internal/device"
)

// TestChaosKillMidWindowStickyFailure is the chaos regression test for the
// sticky-failure semantics of Cluster.Err with recovery disabled: a
// provider is killed while a full admission window is in flight, and every
// in-flight image must fail fast with the same first error — no image may
// hang out its per-image timeout, and the cluster must refuse further work.
// Run under -race in CI: the kill races the send, compute and heartbeat
// paths on purpose.
func TestChaosKillMidWindowStickyFailure(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})
	opts := Options{
		TimeScale:         0.1,
		BytesScale:        0.001,
		Timeout:           30 * time.Second, // failing fast must not depend on it
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatMisses:   3,
		Transport:         testTransport(),
	}
	cl, err := Deploy(env, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const images = 16
	kill := time.AfterFunc(100*time.Millisecond, func() { cl.KillProvider(2) })
	defer kill.Stop()
	start := time.Now()
	stats, err := cl.RunPipelined(images, 4)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run with a killed provider and Recover disabled must fail")
	}
	if elapsed > 10*time.Second {
		t.Errorf("failure took %s — in-flight images waited out the timeout instead of failing fast", elapsed)
	}
	// The run error is the cluster's first recorded error, and it is sticky.
	if cerr := cl.Err(); cerr == nil || cerr.Error() != err.Error() {
		t.Errorf("run error %q != sticky cluster error %v", err, cerr)
	}
	if stats.Completed >= images {
		t.Fatalf("kill landed after the run completed (%d images) — not a mid-window chaos test", stats.Completed)
	}
	if stats.Recoveries != 0 || stats.Requeued != 0 {
		t.Errorf("recovery ran with Recover disabled: %+v", stats)
	}
	// Every image that did not complete fails with the run, not with a
	// partial latency measurement.
	incomplete := 0
	for i, ms := range stats.PerImageMS {
		if ms == 0 {
			incomplete++
		} else if i >= stats.Completed && ms < 0 {
			t.Errorf("image %d has negative latency %g", i, ms)
		}
	}
	if incomplete != images-stats.Completed {
		t.Errorf("%d images lack latencies, want %d", incomplete, images-stats.Completed)
	}
	// Sticky: later runs are refused outright with the same first error.
	if _, rerr := cl.Run(1); rerr == nil || !strings.Contains(rerr.Error(), "already failed") {
		t.Errorf("second run on failed cluster: %v", rerr)
	}
	// Concurrent chaos: killing more providers after failure must not panic
	// or resurrect the cluster.
	cl.KillProvider(0)
	cl.KillProvider(3)
	if _, rerr := cl.Run(1); rerr == nil {
		t.Error("cluster resurrected after failure")
	}
}

// TestChaosHeartbeatOnlyDetection kills a provider that nobody routes to
// mid-run traffic-wise (it owns the final stage, reached late), relying on
// heartbeat loss rather than a send error for detection.
func TestChaosHeartbeatOnlyDetection(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano)
	s := equalStrategy(env, []int{0, 18})
	opts := Options{
		TimeScale:         1, // slow compute: sends are sparse
		BytesScale:        0.001,
		Timeout:           30 * time.Second,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMisses:   3,
		Transport:         testTransport(),
	}
	cl, err := Deploy(env, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.AfterFunc(50*time.Millisecond, func() { cl.KillProvider(1) })
	start := time.Now()
	_, err = cl.Run(1)
	if err == nil {
		t.Fatal("run must fail once heartbeats stop")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("heartbeat detection took %s", elapsed)
	}
}
