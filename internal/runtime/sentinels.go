package runtime

import "distredge/internal/transport"

// Runtime aliases of the wire-level Volume sentinels. The transport owns
// the names (see internal/transport/sentinels.go); the runtime re-exports
// them at the types its Chunk fields use so call sites never spell the raw
// values. distlint's sentinel analyzer enforces this: integer literals
// <= -2 against Volume fields are rejected outside sentinels.go files.
// Both stay untyped so they fit Chunk.Volume (int32) and Need.Volume (int)
// alike.
const (
	// volInput marks a chunk carrying input-image rows.
	volInput = transport.VolInput

	// heartbeatVolume marks a liveness beat on a provider's result link.
	// Beats reuse the Chunk framing (Image = provider index, Lo =
	// deployment epoch) so liveness rides the same TCP path as real
	// results: a provider whose result link is wedged is, for serving
	// purposes, dead.
	heartbeatVolume = transport.VolHeartbeat
)
