package runtime

import "sync"

// ProviderStats aggregates one provider's activity over a run: how long its
// compute goroutine was busy and how many chunks moved through it. The
// requester collects these for utilisation reporting (idle providers —
// e.g. a Pi3 the planner excluded — show zero compute).
type ProviderStats struct {
	Index          int
	ComputeSec     float64
	StepsExecuted  int
	ChunksReceived int
	ChunksSent     int

	// Invocations counts compute-thread invocations; with step batching on,
	// one invocation can cover several images' instances of a step, so
	// Invocations < StepsExecuted means batches actually formed. MaxBatch is
	// the largest coalesced batch observed.
	Invocations int
	MaxBatch    int
}

// numStatStripes stripes a provider's counters across independent mutexes
// so the compute thread, the receive thread and every per-destination
// sender record without contending: compute and receive own fixed stripes,
// sends stripe by destination. Must be a power of two.
const numStatStripes = 8

const (
	computeStripe = 0 // only the compute thread writes here
	recvStripe    = 1 // only the receive thread writes here
)

// statStripe is one stripe's partial counters.
type statStripe struct {
	mu    sync.Mutex
	stats ProviderStats // guarded by mu; partial counts, summed by snapshot
}

// statsRecorder is embedded in Provider; all methods are safe for
// concurrent use by the worker goroutines, and the striping keeps the
// per-chunk counter updates off one shared lock.
type statsRecorder struct {
	stripes [numStatStripes]statStripe
}

// addComputeBatch records one compute invocation covering n step instances
// (n > 1 only when the compute loop coalesced queued same-step images).
func (s *statsRecorder) addComputeBatch(sec float64, n int) {
	st := &s.stripes[computeStripe]
	st.mu.Lock()
	st.stats.ComputeSec += sec
	st.stats.StepsExecuted += n
	st.stats.Invocations++
	if n > st.stats.MaxBatch {
		st.stats.MaxBatch = n
	}
	st.mu.Unlock()
}

func (s *statsRecorder) addReceived() {
	st := &s.stripes[recvStripe]
	st.mu.Lock()
	st.stats.ChunksReceived++
	st.mu.Unlock()
}

// addSent stripes by destination: each destSender goroutine lands on its
// own stripe (modulo collisions past numStatStripes destinations).
func (s *statsRecorder) addSent(dest int) {
	st := &s.stripes[uint(dest+1)&(numStatStripes-1)]
	st.mu.Lock()
	st.stats.ChunksSent++
	st.mu.Unlock()
}

// snapshot sums the stripes into one consistent-enough view: each stripe
// is read under its own lock, so per-stripe counts are exact and the total
// can lag a concurrent writer by at most the chunks in flight during the
// read — the same guarantee the single-mutex recorder gave a caller
// reading mid-run.
func (s *statsRecorder) snapshot(index int) ProviderStats {
	out := ProviderStats{Index: index}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		out.ComputeSec += st.stats.ComputeSec
		out.StepsExecuted += st.stats.StepsExecuted
		out.ChunksReceived += st.stats.ChunksReceived
		out.ChunksSent += st.stats.ChunksSent
		out.Invocations += st.stats.Invocations
		if st.stats.MaxBatch > out.MaxBatch {
			out.MaxBatch = st.stats.MaxBatch
		}
		st.mu.Unlock()
	}
	return out
}

// Stats returns a snapshot of every provider's counters. Quarantined
// providers report zeroes; after a recovery the survivors' counters
// restart with the new deployment.
func (c *Cluster) Stats() []ProviderStats {
	c.provMu.Lock()
	provs := append([]*Provider(nil), c.providers...)
	c.provMu.Unlock()
	out := make([]ProviderStats, len(provs))
	for i, p := range provs {
		if p == nil {
			out[i] = ProviderStats{Index: i}
			continue
		}
		out[i] = p.rec.snapshot(p.plan.Index)
	}
	return out
}
