package runtime

import "sync"

// ProviderStats aggregates one provider's activity over a run: how long its
// compute goroutine was busy and how many chunks moved through it. The
// requester collects these for utilisation reporting (idle providers —
// e.g. a Pi3 the planner excluded — show zero compute).
type ProviderStats struct {
	Index          int
	ComputeSec     float64
	StepsExecuted  int
	ChunksReceived int
	ChunksSent     int

	// Invocations counts compute-thread invocations; with step batching on,
	// one invocation can cover several images' instances of a step, so
	// Invocations < StepsExecuted means batches actually formed. MaxBatch is
	// the largest coalesced batch observed.
	Invocations int
	MaxBatch    int
}

// statsRecorder is embedded in Provider; all methods are safe for
// concurrent use by the three worker goroutines.
type statsRecorder struct {
	mu    sync.Mutex
	stats ProviderStats // guarded by mu
}

// addComputeBatch records one compute invocation covering n step instances
// (n > 1 only when the compute loop coalesced queued same-step images).
func (s *statsRecorder) addComputeBatch(sec float64, n int) {
	s.mu.Lock()
	s.stats.ComputeSec += sec
	s.stats.StepsExecuted += n
	s.stats.Invocations++
	if n > s.stats.MaxBatch {
		s.stats.MaxBatch = n
	}
	s.mu.Unlock()
}

func (s *statsRecorder) addReceived() {
	s.mu.Lock()
	s.stats.ChunksReceived++
	s.mu.Unlock()
}

func (s *statsRecorder) addSent() {
	s.mu.Lock()
	s.stats.ChunksSent++
	s.mu.Unlock()
}

func (s *statsRecorder) snapshot(index int) ProviderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.Index = index
	return out
}

// Stats returns a snapshot of every provider's counters. Quarantined
// providers report zeroes; after a recovery the survivors' counters
// restart with the new deployment.
func (c *Cluster) Stats() []ProviderStats {
	c.provMu.Lock()
	provs := append([]*Provider(nil), c.providers...)
	c.provMu.Unlock()
	out := make([]ProviderStats, len(provs))
	for i, p := range provs {
		if p == nil {
			out[i] = ProviderStats{Index: i}
			continue
		}
		out[i] = p.rec.snapshot(p.plan.Index)
	}
	return out
}
