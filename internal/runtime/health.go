package runtime

import (
	"fmt"
	"sync"
	"time"
)

// healthMonitor is the requester-side failure detector: it tracks the last
// beat seen per provider and declares a provider dead once no beat has
// arrived for HeartbeatMisses intervals (plus half an interval of grace).
// Epochs fence recoveries: beats and verdicts from a torn-down deployment
// are ignored.
type healthMonitor struct {
	c         *Cluster
	interval  time.Duration
	threshold time.Duration

	mu    sync.Mutex
	epoch int         // guarded by mu
	last  []time.Time // guarded by mu; zero = unwatched
	dead  []bool      // guarded by mu

	stop     chan struct{}
	stopOnce sync.Once
}

func newHealthMonitor(c *Cluster, n int, interval time.Duration, misses int) *healthMonitor {
	m := &healthMonitor{
		c:         c,
		interval:  interval,
		threshold: time.Duration(misses)*interval + interval/2,
		last:      make([]time.Time, n),
		dead:      make([]bool, n),
		stop:      make(chan struct{}),
	}
	go m.loop()
	return m
}

// arm starts a new deployment epoch: watched providers get a fresh grace
// window, everything else is ignored until the next arm.
func (m *healthMonitor) arm(epoch int, watch []bool) {
	now := time.Now()
	m.mu.Lock()
	m.epoch = epoch
	for i := range m.last {
		m.dead[i] = false
		if i < len(watch) && watch[i] {
			m.last[i] = now
		} else {
			m.last[i] = time.Time{}
		}
	}
	m.mu.Unlock()
}

// beat records a liveness beat from provider idx stamped with the epoch it
// was deployed in.
func (m *healthMonitor) beat(idx, epoch int) {
	m.mu.Lock()
	if epoch == m.epoch && idx >= 0 && idx < len(m.last) && !m.last[idx].IsZero() {
		m.last[idx] = time.Now()
	}
	m.mu.Unlock()
}

// deadSet returns the providers the monitor has declared dead in the
// current epoch.
func (m *healthMonitor) deadSet() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for i, d := range m.dead {
		if d {
			out = append(out, i)
		}
	}
	return out
}

func (m *healthMonitor) loop() {
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		var report []int
		var since []time.Duration
		m.mu.Lock()
		epoch := m.epoch
		for i, lb := range m.last {
			if lb.IsZero() || m.dead[i] {
				continue
			}
			if d := now.Sub(lb); d > m.threshold {
				m.dead[i] = true
				report = append(report, i)
				since = append(since, d)
			}
		}
		m.mu.Unlock()
		for k, i := range report {
			m.c.failProvider(epoch, i, fmt.Errorf(
				"runtime: provider %d lost: no heartbeat for %s (threshold %s)",
				i, since[k].Round(time.Millisecond), m.threshold))
		}
	}
}

func (m *healthMonitor) close() {
	m.stopOnce.Do(func() { close(m.stop) })
}
