package runtime

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// Chunk is the wire unit: rows [Lo,Hi) of generation Volume (-1 = input
// image) for one image. Payload carries the (scaled) activation bytes.
type Chunk struct {
	Image   uint32
	Volume  int32
	Lo, Hi  int32
	Payload []byte

	// destHint routes the chunk through the provider's outbox; unexported,
	// so gob never puts it on the wire.
	destHint int
}

// chunkKey identifies a chunk's coordinates within one image.
type chunkKey struct {
	volume int
	lo, hi int
}

// conn wraps an outbound gob connection with a send lock.
type conn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	c   net.Conn
}

func (o *conn) send(ch Chunk) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.enc.Encode(ch)
}

// Provider is one service provider node: a TCP listener plus the three
// worker goroutines of Section V-A (receive, compute, send).
type Provider struct {
	plan ProviderPlan
	ln   net.Listener

	peers     map[int]*conn // lazily dialled outbound links
	peerAddrs map[int]string
	peerMu    sync.Mutex

	inbox    chan Chunk
	computeQ chan int // step index ready to run
	outbox   chan Chunk

	mu      sync.Mutex
	arrived map[uint32]map[chunkKey]bool // image -> received needs
	done    chan struct{}
	wg      sync.WaitGroup
	closed  sync.Once
	rec     statsRecorder
}

// newProvider starts a provider listening on localhost.
func newProvider(plan ProviderPlan) (*Provider, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Provider{
		plan:      plan,
		ln:        ln,
		peers:     make(map[int]*conn),
		peerAddrs: make(map[int]string),
		inbox:     make(chan Chunk, 256),
		computeQ:  make(chan int, 64),
		outbox:    make(chan Chunk, 256),
		arrived:   make(map[uint32]map[chunkKey]bool),
		done:      make(chan struct{}),
	}
	p.wg.Add(4)
	go p.acceptLoop()
	go p.recvLoop()
	go p.computeLoop()
	go p.sendLoop()
	return p, nil
}

// Addr returns the provider's listen address.
func (p *Provider) Addr() string { return p.ln.Addr().String() }

func (p *Provider) setPeers(addrs map[int]string) {
	p.peerMu.Lock()
	defer p.peerMu.Unlock()
	for k, v := range addrs {
		p.peerAddrs[k] = v
	}
}

func (p *Provider) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			dec := gob.NewDecoder(c)
			for {
				var ch Chunk
				if err := dec.Decode(&ch); err != nil {
					c.Close()
					return
				}
				select {
				case p.inbox <- ch:
				case <-p.done:
					c.Close()
					return
				}
			}
		}()
	}
}

// recvLoop is the receive thread: it assembles arriving chunks and enqueues
// steps whose inputs are complete.
func (p *Provider) recvLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case ch := <-p.inbox:
			p.rec.addReceived()
			p.deliver(ch)
		}
	}
}

// deliver marks a chunk arrived and schedules ready steps.
func (p *Provider) deliver(ch Chunk) {
	p.mu.Lock()
	img := ch.Image
	m, ok := p.arrived[img]
	if !ok {
		m = make(map[chunkKey]bool)
		p.arrived[img] = m
	}
	m[chunkKey{int(ch.Volume), int(ch.Lo), int(ch.Hi)}] = true

	var ready []int
	for si, st := range p.plan.Steps {
		if m[chunkKey{-100, si, 0}] { // already scheduled marker
			continue
		}
		all := true
		for _, need := range st.Needs {
			if !m[chunkKey{need.Volume, need.Lo, need.Hi}] {
				all = false
				break
			}
		}
		if all && len(st.Needs) > 0 {
			m[chunkKey{-100, si, 0}] = true
			ready = append(ready, si)
		}
	}
	p.mu.Unlock()
	for _, si := range ready {
		select {
		case p.computeQ <- int(img)<<16 | si:
		case <-p.done:
			return
		}
	}
}

// computeLoop is the compute thread: it emulates the split-part execution
// and hands finished outputs to the send thread (or back to assembly for
// self-routes).
func (p *Provider) computeLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case token := <-p.computeQ:
			img := uint32(token >> 16)
			st := p.plan.Steps[token&0xffff]
			if st.ComputeSec > 0 {
				time.Sleep(time.Duration(st.ComputeSec * float64(time.Second)))
			}
			p.rec.addCompute(st.ComputeSec)
			for _, r := range st.Routes {
				ch := Chunk{
					Image:   img,
					Volume:  int32(st.Volume),
					Lo:      int32(r.Lo),
					Hi:      int32(r.Hi),
					Payload: make([]byte, (r.Hi-r.Lo)*st.RowBytes),
				}
				if r.Dest == p.plan.Index {
					p.deliver(ch)
					continue
				}
				select {
				case p.outbox <- markDest(ch, r.Dest):
				case <-p.done:
					return
				}
			}
		}
	}
}

// markDest attaches the destination for the send loop via the unexported
// (never serialised) destHint field.
func markDest(ch Chunk, dest int) Chunk {
	ch.destHint = dest
	return ch
}

// sendLoop is the send thread: it dials peers lazily and ships chunks.
func (p *Provider) sendLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case ch := <-p.outbox:
			dest := ch.destHint
			ch.destHint = 0
			if err := p.sendTo(dest, ch); err != nil {
				// Peer gone: drop (cluster is shutting down).
				continue
			}
			p.rec.addSent()
		}
	}
}

func (p *Provider) sendTo(dest int, ch Chunk) error {
	p.peerMu.Lock()
	o, ok := p.peers[dest]
	if !ok {
		addr, has := p.peerAddrs[dest]
		if !has {
			p.peerMu.Unlock()
			return fmt.Errorf("runtime: provider %d has no address for %d", p.plan.Index, dest)
		}
		c, err := net.Dial("tcp", addr)
		if err != nil {
			p.peerMu.Unlock()
			return err
		}
		o = &conn{enc: gob.NewEncoder(c), c: c}
		p.peers[dest] = o
	}
	p.peerMu.Unlock()
	return o.send(ch)
}

// gc drops assembly state for completed images.
func (p *Provider) gc(before uint32) {
	p.mu.Lock()
	for img := range p.arrived {
		if img < before {
			delete(p.arrived, img)
		}
	}
	p.mu.Unlock()
}

// close shuts the provider down.
func (p *Provider) close() {
	p.closed.Do(func() {
		close(p.done)
		p.ln.Close()
		p.peerMu.Lock()
		for _, o := range p.peers {
			o.c.Close()
		}
		p.peerMu.Unlock()
	})
}
