package runtime

import (
	"fmt"
	"sync"
	"time"

	"distredge/internal/sim"
	"distredge/internal/transport"
)

// Chunk is the wire unit: rows [Lo,Hi) of generation Volume (-1 = the input
// image, -2 a heartbeat) for one image. Payload carries the (scaled)
// activation bytes. It is the transport layer's framed message; which wire
// format and medium carry it is Options.Transport's business.
type Chunk = transport.Message

// chunkKey identifies a chunk's coordinates within one image.
type chunkKey struct {
	volume int
	lo, hi int
}

// outMsg pairs a chunk with its destination for the send thread. The
// explicit struct replaces the seed's unexported destHint field on Chunk,
// which only worked because gob skipped it.
type outMsg struct {
	dest int
	ch   Chunk
}

// workItem identifies one ready step of one image — the unit the compute
// thread consumes. The explicit struct replaces the seed's packed
// `img<<16 | step` token, which silently corrupted for plans with 2^16 or
// more steps.
type workItem struct {
	img  uint32
	step int
}

// workQueue is an unbounded FIFO of ready steps. Enqueueing never blocks,
// which is what makes self-routed chunks safe: deliver runs on the compute
// thread when a step's output feeds a step on the same provider, and a
// bounded channel there deadlocks as soon as the ready-step fan-out exceeds
// the channel capacity with nobody left draining it (the compute thread is
// both producer and consumer).
type workQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []workItem // guarded by mu
	closed bool       // guarded by mu
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a ready step; it never blocks.
func (q *workQueue) push(w workItem) {
	q.mu.Lock()
	q.items = append(q.items, w)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop dequeues the next ready step, blocking until one is available or the
// queue is closed (second return false). A closed queue abandons any still
// queued work immediately, so teardown never sits through queued emulated
// compute sleeps.
func (q *workQueue) pop() (workItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return workItem{}, false
	}
	w := q.items[0]
	q.items = q.items[1:]
	return w, true
}

// takeSameStep dequeues up to max further items for the given step
// (negative max = no bound, the adaptive cap's drain), preserving the queue
// order of everything it leaves behind. It never blocks: it only coalesces
// work that already queued while the compute thread was busy, which is
// exactly the population batching can amortise — an empty queue means the
// device is keeping up and there is nothing to batch. The in-place filter
// writes behind its read cursor, so no allocation and no reordering.
func (q *workQueue) takeSameStep(step, max int) []workItem {
	if max == 0 {
		return nil
	}
	if max < 0 {
		max = int(^uint(0) >> 1)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	var taken []workItem
	rest := q.items[:0]
	for _, w := range q.items {
		if len(taken) < max && w.step == step {
			taken = append(taken, w)
			continue
		}
		rest = append(rest, w)
	}
	q.items = rest
	return taken
}

func (q *workQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// imageState is one in-flight image's assembly state on a provider: which
// chunks have arrived and which steps have already been handed to the
// compute thread. The explicit scheduled set replaces the seed's
// chunkKey{-100, si, 0} sentinel, which collided with a legitimate volume
// id of -100.
type imageState struct {
	arrived   map[chunkKey]bool
	scheduled []bool // indexed by step
}

// Provider is one service provider node: a transport listener plus the
// worker goroutines of Section V-A (receive, compute, send) and — when
// health tracking is on — a heartbeat thread.
type Provider struct {
	plan  ProviderPlan
	epoch int // deployment epoch, stamped on heartbeats
	tr    transport.Transport
	ln    transport.Listener

	peers     map[int]transport.Conn // guarded by peerMu; lazily dialled outbound links
	peerAddrs map[int]string         // guarded by peerMu
	peerMu    sync.Mutex

	inbox  chan Chunk
	work   *workQueue
	outbox chan outMsg

	mu     sync.Mutex
	images map[uint32]*imageState // guarded by mu; in-flight image -> assembly state
	minImg uint32                 // guarded by mu; images below this are gc'ed; late chunks dropped

	hb     time.Duration // heartbeat period; 0 = disabled
	batch  int           // per-step image batching cap; 1 disables, 0 adaptive
	done   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once
	rec    statsRecorder
	fail   func(suspect int, err error) // cluster-level error sink; nil drops errors
}

// newProvider starts a provider listening on the given transport. Errors
// that occur while the provider is live (not shutting down) are reported to
// fail, attributed to the peer the provider was talking to.
func newProvider(plan ProviderPlan, epoch int, hb time.Duration, batch int, fail func(int, error), tr transport.Transport) (*Provider, error) {
	ln, err := tr.Listen(plan.Index)
	if err != nil {
		return nil, err
	}
	p := &Provider{
		plan:      plan,
		epoch:     epoch,
		tr:        tr,
		ln:        ln,
		peers:     make(map[int]transport.Conn),
		peerAddrs: make(map[int]string),
		inbox:     make(chan Chunk, 256),
		work:      newWorkQueue(),
		outbox:    make(chan outMsg, 256),
		images:    make(map[uint32]*imageState),
		hb:        hb,
		batch:     batch,
		done:      make(chan struct{}),
		fail:      fail,
	}
	p.wg.Add(4)
	go p.acceptLoop()
	go p.recvLoop()
	go p.computeLoop()
	go p.sendLoop()
	if hb > 0 {
		p.wg.Add(1)
		go p.heartbeatLoop()
	}
	return p, nil
}

// heartbeatLoop periodically beats to the requester over the result link.
// Send errors are deliberately not reported: a beat that cannot be
// delivered surfaces at the monitor as a missed beat, which is the signal.
func (p *Provider) heartbeatLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.hb)
	defer t.Stop()
	for {
		_ = p.sendTo(RequesterID, Chunk{
			Image:  uint32(p.plan.Index),
			Volume: heartbeatVolume,
			Lo:     int32(p.epoch),
		})
		select {
		case <-p.done:
			return
		case <-t.C:
		}
	}
}

// Addr returns the provider's listen address.
func (p *Provider) Addr() string { return p.ln.Addr() }

func (p *Provider) setPeers(addrs map[int]string) {
	p.peerMu.Lock()
	defer p.peerMu.Unlock()
	for k, v := range addrs {
		p.peerAddrs[k] = v
	}
}

func (p *Provider) report(suspect int, err error) {
	if p.fail != nil {
		p.fail(suspect, err)
	}
}

func (p *Provider) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			for {
				ch, err := c.Recv()
				if err != nil {
					c.Close()
					return
				}
				select {
				case p.inbox <- ch:
				case <-p.done:
					c.Close()
					return
				}
			}
		}()
	}
}

// recvLoop is the receive thread: it assembles arriving chunks and enqueues
// steps whose inputs are complete.
func (p *Provider) recvLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case ch := <-p.inbox:
			p.rec.addReceived()
			p.deliver(ch)
			// Assembly only records arrival coordinates; the payload is
			// dead once delivered and goes back to the transport's pool.
			transport.RecyclePayload(p.tr, ch.Payload)
		}
	}
}

// deliver marks a chunk arrived and schedules ready steps. It never blocks
// (the ready queue is unbounded), so it is safe to call from both the
// receive thread and — for self-routed chunks — the compute thread.
func (p *Provider) deliver(ch Chunk) {
	p.mu.Lock()
	img := ch.Image
	if img < p.minImg {
		// Late chunk for a completed, gc'ed image: dropping it (rather than
		// resurrecting empty assembly state) guarantees no step ever runs
		// twice.
		p.mu.Unlock()
		return
	}
	st, ok := p.images[img]
	if !ok {
		st = &imageState{
			arrived:   make(map[chunkKey]bool),
			scheduled: make([]bool, len(p.plan.Steps)),
		}
		p.images[img] = st
	}
	st.arrived[chunkKey{int(ch.Volume), int(ch.Lo), int(ch.Hi)}] = true

	var ready []int
	for si := range p.plan.Steps {
		if st.scheduled[si] {
			continue
		}
		needs := p.plan.Steps[si].Needs
		if len(needs) == 0 {
			continue
		}
		all := true
		for _, need := range needs {
			if !st.arrived[chunkKey{need.Volume, need.Lo, need.Hi}] {
				all = false
				break
			}
		}
		if all {
			st.scheduled[si] = true
			ready = append(ready, si)
		}
	}
	p.mu.Unlock()
	for _, si := range ready {
		p.work.push(workItem{img: img, step: si})
	}
}

// computeLoop is the compute thread: it emulates the split-part execution
// and hands finished outputs to the send thread (or back to assembly for
// self-routes). With Options.Batch != 1 it coalesces same-step work items
// that queued while it was busy into one invocation charged the sublinear
// sim.BatchedComputeSec cost; outputs are still emitted per image, so
// everything downstream of the compute thread is oblivious to batching.
func (p *Provider) computeLoop() {
	defer p.wg.Done()
	batch := make([]workItem, 0, p.batch)
	for {
		w, ok := p.work.pop()
		if !ok {
			return
		}
		batch = append(batch[:0], w)
		if p.batch != 1 {
			lim := p.batch - 1 // p.batch == 0: adaptive, drain all (lim -1)
			batch = append(batch, p.work.takeSameStep(w.step, lim)...)
		}
		st := &p.plan.Steps[w.step]
		cost := st.ComputeSec
		if len(batch) > 1 {
			cost = sim.BatchedComputeSec(st.ComputeSec, len(batch))
		}
		if cost > 0 {
			time.Sleep(time.Duration(cost * float64(time.Second)))
		}
		p.rec.addComputeBatch(cost, len(batch))
		for _, w := range batch {
			for _, r := range st.Routes {
				ch := Chunk{
					Image:   w.img,
					Volume:  int32(st.Volume),
					Lo:      int32(r.Lo),
					Hi:      int32(r.Hi),
					Payload: transport.GetPayload(p.tr, (r.Hi-r.Lo)*st.RowBytes),
				}
				fillActivation(ch.Payload, ch.Image^uint32(st.Volume)<<8^uint32(r.Lo)<<16)
				if r.Dest == p.plan.Index {
					// Self-routes never touch the wire; recycle the payload
					// directly once assembly has recorded it.
					p.deliver(ch)
					transport.RecyclePayload(p.tr, ch.Payload)
					continue
				}
				select {
				case p.outbox <- outMsg{dest: r.Dest, ch: ch}:
				case <-p.done:
					return
				}
			}
		}
	}
}

// sendLoop is the send thread: it dispatches outbound chunks to one sender
// worker per destination, so transfers to distinct peers overlap while
// chunks to the same peer stay ordered. A single serial sender was
// equivalent when sends were localhost-cheap, but with a shaped transport
// charging real trace latency per payload it would serialise what both the
// simulator (independent directed-link busy floors) and a real testbed
// (one TCP stream per pair) allow to proceed in parallel.
func (p *Provider) sendLoop() {
	defer p.wg.Done()
	workers := make(map[int]chan outMsg)
	for {
		select {
		case <-p.done:
			return
		case o := <-p.outbox:
			w, ok := workers[o.dest]
			if !ok {
				w = make(chan outMsg, 64)
				workers[o.dest] = w
				p.wg.Add(1)
				go p.destSender(o.dest, w)
			}
			select {
			case w <- o:
			case <-p.done:
				return
			}
		}
	}
}

// destSender ships chunks to one destination in order, coalescing flushes
// across bursts: the channel backlog is the queue-drain signal, so a run
// of small chunks headed to the same peer shares one socket write (on
// transports without buffered sends the Coalescer degenerates to plain
// per-message Send). Failures while the cluster is live are reported so
// the requester can fail the run immediately instead of waiting out the
// per-image timeout.
func (p *Provider) destSender(dest int, w chan outMsg) {
	defer p.wg.Done()
	var co *transport.Coalescer
	for {
		select {
		case <-p.done:
			return
		case o := <-w:
			if co == nil {
				c, err := p.peerConn(dest)
				if err != nil {
					p.reportSendErr(dest, err)
					continue // retry the dial on the next chunk
				}
				co = transport.NewCoalescer(c)
			}
			if err := co.Send(o.ch, len(w) > 0); err != nil {
				p.reportSendErr(dest, err)
				continue
			}
			p.rec.addSent(dest)
		}
	}
}

// reportSendErr reports a send failure to the cluster unless the provider
// is shutting down (connection teardown is expected then).
func (p *Provider) reportSendErr(dest int, err error) {
	select {
	case <-p.done:
	default:
		p.report(dest, fmt.Errorf("runtime: provider %d send to %d: %w", p.plan.Index, dest, err))
	}
}

// peerConn returns the lazily-dialled outbound link to dest.
func (p *Provider) peerConn(dest int) (transport.Conn, error) {
	p.peerMu.Lock()
	defer p.peerMu.Unlock()
	if o, ok := p.peers[dest]; ok {
		return o, nil
	}
	addr, has := p.peerAddrs[dest]
	if !has {
		return nil, fmt.Errorf("runtime: provider %d has no address for %d", p.plan.Index, dest)
	}
	c, err := p.tr.Dial(p.plan.Index, addr)
	if err != nil {
		return nil, err
	}
	p.peers[dest] = c
	return c, nil
}

func (p *Provider) sendTo(dest int, ch Chunk) error {
	o, err := p.peerConn(dest)
	if err != nil {
		return err
	}
	return o.Send(ch)
}

// gc drops assembly state for every image below `before`. The requester
// advances `before` only past images whose results it has fully assembled,
// so with a window of in-flight images an early finisher never tears down
// state a straggler still needs.
func (p *Provider) gc(before uint32) {
	p.mu.Lock()
	if before > p.minImg {
		p.minImg = before
	}
	for img := range p.images {
		if img < p.minImg {
			delete(p.images, img)
		}
	}
	p.mu.Unlock()
}

// close shuts the provider down.
func (p *Provider) close() {
	p.closed.Do(func() {
		close(p.done)
		p.work.close()
		p.ln.Close()
		p.peerMu.Lock()
		for _, o := range p.peers {
			o.Close()
		}
		p.peerMu.Unlock()
	})
}
