package runtime

import (
	"strings"
	"testing"
	"time"

	"distredge/internal/device"
	"distredge/internal/sim"
	"distredge/internal/splitter"
)

// recoverOpts are the churn-test options: fast failure detection and
// recovery enabled, compute-dominated scales so measured orderings are
// robust to scheduler noise.
func recoverOpts() Options {
	return Options{
		TimeScale:         0.1,
		BytesScale:        0.001,
		Recover:           true,
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatMisses:   3,
		Transport:         testTransport(),
	}
}

// TestRecoverFromKilledProvider is the basic recovery path: a provider
// dies mid-run, the cluster quarantines it, re-plans over the survivors
// and finishes every image; the healed cluster serves another run.
func TestRecoverFromKilledProvider(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})
	cl, err := Deploy(env, s, recoverOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const images = 24
	kill := time.AfterFunc(40*time.Millisecond, func() { cl.KillProvider(1) })
	defer kill.Stop()
	stats, err := cl.RunPipelined(images, 4)
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if stats.Completed != images {
		t.Fatalf("completed %d of %d images", stats.Completed, images)
	}
	if stats.Recoveries < 1 {
		t.Fatalf("no recovery recorded: %+v", stats)
	}
	if stats.Requeued == 0 {
		t.Error("a mid-run kill must requeue in-flight images")
	}
	if stats.ReplanMS <= 0 {
		t.Error("re-planning cost not recorded")
	}
	if len(stats.Quarantined) != 1 || stats.Quarantined[0] != 1 {
		t.Errorf("quarantined = %v, want [1]", stats.Quarantined)
	}
	if cl.LiveProviders() != 3 {
		t.Errorf("live providers = %d, want 3", cl.LiveProviders())
	}
	if cl.Err() != nil {
		t.Errorf("recovered cluster must read healthy, got %v", cl.Err())
	}
	// The re-planned strategy gives the dead provider nothing.
	cur := cl.Strategy()
	for v := 0; v < cur.NumVolumes(); v++ {
		if r := cur.PartRange(env.Model, v, 1); !r.Empty() {
			t.Errorf("volume %d: quarantined provider 1 still planned for %v", v, r)
		}
	}
	// Latencies of requeued images include the recovery stall but every
	// completed image has a positive latency.
	for i, ms := range stats.PerImageMS {
		if ms <= 0 {
			t.Errorf("image %d latency %gms", i, ms)
		}
	}
	// The healed cluster keeps serving.
	again, err := cl.RunPipelined(4, 2)
	if err != nil {
		t.Fatalf("post-recovery run failed: %v", err)
	}
	if again.Completed != 4 || again.Recoveries != 0 {
		t.Errorf("post-recovery run stats wrong: %+v", again)
	}
	// Watermark invariant: with everything delivered or drained, the gc
	// watermark must have passed every allocated id — a stall here means
	// recovery leaked bookkeeping (and provider state) for an id whose
	// waiter lost the done-vs-failed race.
	bk := cl.bookkeeping()
	if bk.pending != 0 || bk.completed != 0 || bk.gcLow != bk.nextImg+1 {
		t.Errorf("requester bookkeeping leaked: pending=%d completed=%d gcLow=%d nextImg=%d",
			bk.pending, bk.completed, bk.gcLow, bk.nextImg)
	}
}

// TestRecoverUnplannableFailureSurfaces: when recovery cannot identify a
// dead provider (a pure timeout with everyone still beating), the run must
// fail with both causes instead of looping.
func TestRecoverUnplannableFailureSurfaces(t *testing.T) {
	env := testEnv(device.Nano, device.Nano)
	s := equalStrategy(env, []int{0, 18})
	opts := recoverOpts()
	opts.TimeScale = 1 // full-scale sleeps blow through the tiny timeout
	opts.Timeout = 20 * time.Millisecond
	cl, err := Deploy(env, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Run(1)
	if err == nil {
		t.Fatal("run must fail")
	}
	// Pin the no-progress guard: the error must say recovery could not
	// identify a dead provider AND carry the original cause, so the
	// operator sees why the run stopped instead of an opaque loop exit.
	if !strings.Contains(err.Error(), "no identifiable dead provider") {
		t.Errorf("err %q must surface the no-progress recovery guard", err)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("err %q must carry the original timeout cause", err)
	}
}

// TestChurnDifferentialSimVsRuntime is the acceptance-criterion test: with
// a scripted single-device failure mid-stream, the simulator's ChurnStream
// predicts the goodput ordering between recover-on and recover-off over a
// common serving horizon, and the TCP runtime must reproduce it.
func TestChurnDifferentialSimVsRuntime(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})
	const images = 12
	const window = 4
	const failFrac = 0.45

	// --- Simulator prediction (model time). ---
	base, err := env.PipelineStream(s, images, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	events := []sim.ChurnEvent{{At: base.TotalSec * failFrac, Kind: sim.DeviceDrop, Device: 1}}
	simOn, err := env.ChurnStream(s, images, window, 0, events, sim.ChurnOptions{
		Recover: true, Replan: splitter.BalancedReplan,
	})
	if err != nil {
		t.Fatal(err)
	}
	simOff, err := env.ChurnStream(s, images, window, 0, events, sim.ChurnOptions{Recover: false})
	if err != nil {
		t.Fatal(err)
	}
	// Goodput over the common horizon (the recovered run's span): the
	// truncated stream delivers nothing after the failure.
	horizon := simOn.TotalSec
	if simOff.TotalSec > horizon {
		horizon = simOff.TotalSec
	}
	gOnSim := float64(simOn.Completed) / horizon
	gOffSim := float64(simOff.Completed) / horizon
	if gOnSim <= gOffSim {
		t.Fatalf("simulator must predict recover-on goodput above recover-off: %.3f vs %.3f (completed %d vs %d)",
			gOnSim, gOffSim, simOn.Completed, simOff.Completed)
	}
	if simOff.Completed == 0 || simOff.Completed >= images {
		t.Fatalf("sim failure not mid-stream: completed %d of %d", simOff.Completed, images)
	}

	// --- Runtime reproduction (scaled wall clock). ---
	opts := recoverOpts()
	pilot, err := Deploy(env, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	pstats, err := pilot.RunPipelined(images, window)
	pilot.Close()
	if err != nil {
		t.Fatal(err)
	}
	killAt := time.Duration(pstats.TotalSec * failFrac * float64(time.Second))

	run := func(recover bool) RunStats {
		t.Helper()
		o := opts
		o.Recover = recover
		o.Transport = testTransport() // fresh namespace per cluster
		cl, err := Deploy(env, s, o)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		kill := time.AfterFunc(killAt, func() { cl.KillProvider(1) })
		defer kill.Stop()
		st, err := cl.RunPipelined(images, window)
		if recover && err != nil {
			t.Fatalf("recover-on run failed: %v", err)
		}
		if !recover && err == nil {
			t.Fatal("recover-off run must fail after the kill")
		}
		return st
	}
	rtOn := run(true)
	rtOff := run(false)

	rtHorizon := rtOn.TotalSec
	if rtOff.TotalSec > rtHorizon {
		rtHorizon = rtOff.TotalSec
	}
	gOnRt := float64(rtOn.Completed) / rtHorizon
	gOffRt := float64(rtOff.Completed) / rtHorizon
	t.Logf("sim:     on %d/%d imgs (goodput %.2f), off %d/%d (%.2f), recover in %.0fms (model)",
		simOn.Completed, images, gOnSim, simOff.Completed, images, gOffSim, simOn.EventRecoverySec[0]*1e3)
	t.Logf("runtime: on %d/%d imgs (goodput %.2f), off %d/%d (%.2f), replan %.1fms",
		rtOn.Completed, images, gOnRt, rtOff.Completed, images, gOffRt, rtOn.ReplanMS)
	if rtOn.Completed != images {
		t.Fatalf("recover-on runtime completed %d of %d", rtOn.Completed, images)
	}
	if rtOff.Completed >= images {
		t.Fatalf("recover-off runtime lost no images (kill too late?): %+v", rtOff)
	}
	if gOnRt <= gOffRt {
		t.Errorf("runtime does not reproduce the predicted goodput ordering: on %.3f <= off %.3f", gOnRt, gOffRt)
	}
	if rtOn.Recoveries < 1 {
		t.Errorf("recover-on runtime recorded no recovery: %+v", rtOn)
	}
}
