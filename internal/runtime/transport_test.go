package runtime

import (
	"strings"
	"testing"
	"time"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
	"distredge/internal/transport"
)

// TestTransportCompletionEquivalence is the acceptance-criterion
// equivalence test: under an identical kill script, the tcp and inproc
// transports must produce bit-equal completion semantics — the same
// RunStats.Completed, Requeued and Quarantined. The script is built so the
// counts are deterministic: images == window (everything admitted at t=0)
// and the kill lands at a quarter of the measured first-image latency, so
// no image can complete before the failure on either transport and every
// admitted image is requeued by the recovery.
func TestTransportCompletionEquivalence(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})
	const images, window = 4, 4

	// Pilot (inproc, no kill) calibrates the kill time. Inproc is the
	// faster transport, so a quarter of its first-image latency is safely
	// before the first completion on both stacks.
	opts := recoverOpts()
	opts.Transport = transport.NewInproc()
	pilot, err := Deploy(env, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	pstats, err := pilot.RunPipelined(images, window)
	pilot.Close()
	if err != nil {
		t.Fatal(err)
	}
	killAt := time.Duration(pstats.PerImageMS[0] / 4 * float64(time.Millisecond))

	run := func(name string, tr transport.Transport) RunStats {
		t.Helper()
		o := recoverOpts()
		o.Transport = tr
		cl, err := Deploy(env, s, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer cl.Close()
		kill := time.AfterFunc(killAt, func() { cl.KillProvider(1) })
		defer kill.Stop()
		st, err := cl.RunPipelined(images, window)
		if err != nil {
			t.Fatalf("%s: recovery run failed: %v", name, err)
		}
		return st
	}
	tcpStats := run("tcp", transport.NewTCP(nil))
	inpStats := run("inproc", transport.NewInproc())

	t.Logf("kill@%s  tcp: completed=%d requeued=%d quarantined=%v  inproc: completed=%d requeued=%d quarantined=%v",
		killAt, tcpStats.Completed, tcpStats.Requeued, tcpStats.Quarantined,
		inpStats.Completed, inpStats.Requeued, inpStats.Quarantined)
	for name, st := range map[string]RunStats{"tcp": tcpStats, "inproc": inpStats} {
		if st.Completed != images {
			t.Errorf("%s: completed %d of %d", name, st.Completed, images)
		}
		if st.Requeued != images {
			t.Errorf("%s: requeued %d, want %d (kill landed after a completion?)", name, st.Requeued, images)
		}
		if len(st.Quarantined) != 1 || st.Quarantined[0] != 1 {
			t.Errorf("%s: quarantined %v, want [1]", name, st.Quarantined)
		}
	}
	if tcpStats.Completed != inpStats.Completed || tcpStats.Requeued != inpStats.Requeued {
		t.Errorf("transports disagree on completion semantics: tcp %d/%d vs inproc %d/%d",
			tcpStats.Completed, tcpStats.Requeued, inpStats.Completed, inpStats.Requeued)
	}
}

// dynamicEnv builds a four-device fleet on time-varying low-bandwidth
// WiFi traces, where transfer latency genuinely depends on when a transfer
// starts — the regime localhost TCP can never exercise.
func dynamicEnv(loMbps, hiMbps float64) *sim.Env {
	devs := device.Fleet(device.Xavier, device.Nano, device.TX2, device.Nano)
	net := &network.Network{Requester: network.DefaultLink(network.Dynamic(loMbps, hiMbps, 2, 991))}
	for i := range devs {
		net.Providers = append(net.Providers, network.DefaultLink(network.Dynamic(loMbps, hiMbps, 2, int64(i)*31+7)))
	}
	return &sim.Env{Model: cnn.VGG16(), Devices: device.AsModels(devs), Net: net}
}

// TestShapedInprocReproducesSimOnDynamicTrace is the acceptance-criterion
// differential test for the shaped transport: on a dynamic (time-varying)
// WiFi trace the simulator predicts a pipelined speedup, and the runtime —
// with the very same network.Network charged to its payload bytes by the
// shaped decorator, over the socket-free inproc transport — must reproduce
// the predicted ordering. It must also actually pay for the trace: the
// same run over plain inproc (transfers free, as on localhost TCP) has to
// be measurably faster, which is the fidelity gap this transport closes.
func TestShapedInprocReproducesSimOnDynamicTrace(t *testing.T) {
	env := dynamicEnv(20, 60)
	if env.Net.TimeInvariant() {
		t.Fatal("trace must be dynamic for this test")
	}
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})

	// Simulator prediction on the dynamic trace (model time).
	seqSim, err := env.PipelineStream(s, 24, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pipSim, err := env.PipelineStream(s, 24, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pipSim.IPS <= 1.1*seqSim.IPS {
		t.Fatalf("simulator must predict a pipelined speedup on the dynamic trace: %.3f vs %.3f",
			pipSim.IPS, seqSim.IPS)
	}

	const timeScale, bytesScale = 0.05, 0.001
	const images = 8
	run := func(window int, shaped bool) RunStats {
		t.Helper()
		var tr transport.Transport = transport.NewInproc()
		if shaped {
			tr = transport.NewShaped(tr, env.Net, timeScale, bytesScale, 0)
		}
		opts := Options{
			TimeScale:         timeScale,
			BytesScale:        bytesScale,
			HeartbeatInterval: -1, // charged links must not delay liveness
			Transport:         tr,
		}
		cl, err := Deploy(env, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		st, err := cl.RunPipelined(images, window)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seqRt := run(1, true)
	pipRt := run(4, true)
	plainRt := run(1, false)

	t.Logf("sim:    window 1 %.2f ips, window 4 %.2f ips (%.2fx), mean lat %.0fms",
		seqSim.IPS, pipSim.IPS, pipSim.IPS/seqSim.IPS, seqSim.MeanLatMS)
	t.Logf("shaped: window 1 %.2f ips, window 4 %.2f ips (%.2fx), mean lat %.0fms (model)",
		seqRt.IPS, pipRt.IPS, pipRt.IPS/seqRt.IPS, seqRt.PerImageMS[images-1]/timeScale)
	t.Logf("plain inproc window 1: %.2f ips (transfers free)", plainRt.IPS)

	if pipRt.IPS <= 1.1*seqRt.IPS {
		t.Errorf("shaped runtime does not reproduce the predicted pipelined speedup: window 4 %.2f ips vs window 1 %.2f ips",
			pipRt.IPS, seqRt.IPS)
	}
	// The trace must have been charged: with transfers free the same run is
	// far faster. (This is exactly why the localhost-TCP runtime could
	// never reproduce a transfer-sensitive sim prediction.)
	if seqRt.TotalSec <= 1.3*plainRt.TotalSec {
		t.Errorf("shaped run (%.2fs) is not measurably slower than the free-wire run (%.2fs) — trace latency not charged",
			seqRt.TotalSec, plainRt.TotalSec)
	}
	// Fidelity of magnitude, not just ordering: the shaped runtime's
	// sequential per-image latency, mapped back to model time, should be
	// within 2x of the simulator's prediction.
	rtModelLatMS := seqRt.MeanLatMS() / timeScale
	if rtModelLatMS < 0.5*seqSim.MeanLatMS || rtModelLatMS > 2*seqSim.MeanLatMS {
		t.Errorf("shaped runtime latency %.0fms (model time) outside 2x of sim prediction %.0fms",
			rtModelLatMS, seqSim.MeanLatMS)
	}
}

// TestChaosTransportIsolationTriggersRecovery drives the PR 3 recovery
// machinery through the chaos transport instead of KillProvider: isolating
// a device partitions it (sends to and from it fail, its heartbeats stop
// arriving), and the cluster must quarantine it, re-plan and finish every
// image.
func TestChaosTransportIsolationTriggersRecovery(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})
	chaos := transport.NewChaos(transport.NewInproc(), transport.ChaosConfig{Seed: 7})
	opts := recoverOpts()
	opts.Transport = chaos
	cl, err := Deploy(env, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const images = 12
	cut := time.AfterFunc(40*time.Millisecond, func() { chaos.Isolate(1) })
	defer cut.Stop()
	stats, err := cl.RunPipelined(images, 4)
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if stats.Completed != images {
		t.Fatalf("completed %d of %d", stats.Completed, images)
	}
	if stats.Recoveries < 1 {
		t.Fatalf("partition caused no recovery: %+v", stats)
	}
	if len(stats.Quarantined) != 1 || stats.Quarantined[0] != 1 {
		t.Errorf("quarantined %v, want [1]", stats.Quarantined)
	}
	if cl.LiveProviders() != 3 {
		t.Errorf("live providers = %d, want 3", cl.LiveProviders())
	}
}

// TestChaosTransportDropSurfacesAsTimeout checks lost chunks feed the
// sticky-failure path: with every data chunk dropped on the wire (but
// heartbeats — control messages — intact), the run can only fail via the
// per-image timeout, and the error must say so.
func TestChaosTransportDropSurfacesAsTimeout(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano)
	s := equalStrategy(env, []int{0, 18})
	chaos := transport.NewChaos(transport.NewInproc(), transport.ChaosConfig{Seed: 3, Drop: 1})
	opts := fastOpts()
	opts.Transport = chaos
	opts.Timeout = 200 * time.Millisecond
	cl, err := Deploy(env, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Run(1)
	if err == nil {
		t.Fatal("run with all chunks dropped must fail")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("drop-everything failure should be a timeout, got: %v", err)
	}
}
