package runtime

import "sync"

// numRegShards stripes the requester's per-image registration state. 16
// single-mutex shards keep the scatter/assembly hot path — concurrent
// Submit callers registering images while provider fan-in clears pending
// chunks — off one global lock; image ids are dense and monotone, so
// img & (numRegShards-1) spreads in-flight images evenly. Must be a power
// of two.
const numRegShards = 16

// regShard is one stripe of the registration table: the pending chunk sets
// and completion channels of the images that hash to it.
type regShard struct {
	mu      sync.Mutex
	pending map[uint32]map[chunkKey]bool // guarded by mu
	arrived map[uint32]chan struct{}     // guarded by mu
}

// register arms completion tracking for img: done is closed once every
// key in pending has been cleared by chunkArrived.
func (s *regShard) register(img uint32, pending map[chunkKey]bool, done chan struct{}) {
	s.mu.Lock()
	s.pending[img] = pending
	s.arrived[img] = done
	s.mu.Unlock()
}

// chunkArrived clears one awaited chunk, closing the image's done channel
// when the last one lands. Chunks for unknown images (already completed,
// already dropped, or from a torn-down epoch) are ignored.
func (s *regShard) chunkArrived(img uint32, key chunkKey) {
	s.mu.Lock()
	if m, ok := s.pending[img]; ok {
		delete(m, key)
		if len(m) == 0 {
			delete(s.pending, img)
			if done, ok := s.arrived[img]; ok {
				close(done)
				delete(s.arrived, img)
			}
		}
	}
	s.mu.Unlock()
}

// drop discards an image's registration without completing it (failed
// scatter, recovery drain): no result can ever arrive for it.
func (s *regShard) drop(img uint32) {
	s.mu.Lock()
	delete(s.pending, img)
	delete(s.arrived, img)
	s.mu.Unlock()
}

// drain discards every registration in the shard (recovery: the old
// deployment's in-flight images are all dead, their ids never reused).
func (s *regShard) drain() {
	s.mu.Lock()
	for img := range s.pending {
		delete(s.pending, img)
	}
	for img := range s.arrived {
		delete(s.arrived, img)
	}
	s.mu.Unlock()
}

// regTable is the sharded registration state: images route to shards by
// id, so concurrent registrations and result fan-in for different images
// contend only 1/numRegShards of the time.
type regTable struct {
	shards [numRegShards]regShard
}

func newRegTable() *regTable {
	t := &regTable{}
	for i := range t.shards {
		t.shards[i].pending = make(map[uint32]map[chunkKey]bool)
		t.shards[i].arrived = make(map[uint32]chan struct{})
	}
	return t
}

// shard returns the stripe owning img.
func (t *regTable) shard(img uint32) *regShard {
	return &t.shards[img&(numRegShards-1)]
}

// drainAll discards every registration (recovery).
func (t *regTable) drainAll() {
	for i := range t.shards {
		t.shards[i].drain()
	}
}

// watermark is the window-aware gc cursor, split off the registration
// shards onto its own small mutex: completions from any shard funnel here,
// but the critical section is a map insert plus a cursor walk — orders of
// magnitude shorter than the per-chunk bookkeeping that used to share its
// lock.
type watermark struct {
	mu        sync.Mutex
	completed map[uint32]bool // guarded by mu
	low       uint32          // guarded by mu; provider state below this is collectable
}

func newWatermark() *watermark {
	return &watermark{completed: make(map[uint32]bool), low: 1}
}

// complete records img as finished and returns the new low watermark: the
// lowest image id that has not yet completed. The cursor only advances
// past contiguously-completed ids, so an early finisher never exposes a
// straggler's provider state to gc.
func (w *watermark) complete(img uint32) uint32 {
	w.mu.Lock()
	w.completed[img] = true
	for w.completed[w.low] {
		delete(w.completed, w.low)
		w.low++
	}
	low := w.low
	w.mu.Unlock()
	return low
}

// lowWatermark returns the current gc cursor.
func (w *watermark) lowWatermark() uint32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.low
}

// bookkeeping is a consistent-enough snapshot of the requester's
// registration state, for tests asserting nothing leaked after a run.
type bookkeeping struct {
	pending   int // images with unarrived chunks, across all shards
	arrived   int // images with an open completion channel
	completed int // ids parked above the gc cursor
	gcLow     uint32
	nextImg   uint32
}

// bookkeeping snapshots the sharded registration state shard by shard.
func (c *Cluster) bookkeeping() bookkeeping {
	var b bookkeeping
	for i := range c.reg.shards {
		s := &c.reg.shards[i]
		s.mu.Lock()
		b.pending += len(s.pending)
		b.arrived += len(s.arrived)
		s.mu.Unlock()
	}
	c.wm.mu.Lock()
	b.completed = len(c.wm.completed)
	b.gcLow = c.wm.low
	c.wm.mu.Unlock()
	b.nextImg = c.nextImg.Load()
	return b
}

// drainThrough advances the cursor past every id allocated so far
// (recovery: each is now either delivered or dead — including ids whose
// results fully arrived but whose waiter observed the failure before
// calling complete, which would otherwise wedge the cursor forever).
func (w *watermark) drainThrough(next uint32) {
	w.mu.Lock()
	for w.low <= next {
		delete(w.completed, w.low)
		w.low++
	}
	w.mu.Unlock()
}
