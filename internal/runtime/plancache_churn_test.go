package runtime

import (
	"testing"
	"time"

	"distredge/internal/device"
	"distredge/internal/plancache"
	"distredge/internal/splitter"
)

// TestCachedReplanCutsRecoveryTime is the planner-as-a-service churn
// acceptance test: two deployments of the same fleet share one plan cache
// and lose the same provider. The first recovery misses the cache and pays
// the full OSDS search; the second sees the identical survivor-fleet
// signature, hits the cache, skips the search and records a strictly lower
// ReplanMS.
func TestCachedReplanCutsRecoveryTime(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})
	cache := plancache.New(plancache.DefaultCapacity)
	// A search budget big enough that a cache hit is unmistakably cheaper
	// than the miss, small enough to keep the test quick.
	search := splitter.SearchReplan(splitter.Config{
		Episodes:  40,
		Hidden:    []int{16, 16},
		Batch:     16,
		Seed:      1,
		WarmStart: true,
	})

	run := func() RunStats {
		t.Helper()
		opts := recoverOpts()
		opts.Replan = plancache.CachedReplan(cache, nil, search)
		cl, err := Deploy(env, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		kill := time.AfterFunc(40*time.Millisecond, func() { cl.KillProvider(1) })
		defer kill.Stop()
		const images = 24
		stats, err := cl.RunPipelined(images, 4)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Completed != images {
			t.Fatalf("completed %d of %d images", stats.Completed, images)
		}
		if stats.Recoveries < 1 {
			t.Fatalf("no recovery recorded: %+v", stats)
		}
		return stats
	}

	cold := run()
	cs := cache.Stats()
	if cs.Misses < 1 || cs.Hits != 0 {
		t.Fatalf("first recovery must miss the empty cache: %+v", cs)
	}
	if cache.Len() == 0 {
		t.Fatal("first recovery did not populate the cache")
	}

	warm := run()
	cs = cache.Stats()
	if cs.Hits < 1 {
		t.Fatalf("second recovery into the same fleet shape must hit the cache: %+v", cs)
	}
	t.Logf("replan cost: cold %.1fms, cached %.1fms", cold.ReplanMS, warm.ReplanMS)
	if warm.ReplanMS >= cold.ReplanMS {
		t.Errorf("cached re-plan %.1fms not below cold search %.1fms", warm.ReplanMS, cold.ReplanMS)
	}
	// The cached recovery still idles the dead provider.
	// (Lift gives quarantined providers empty parts by construction; the
	// basic recovery test pins that shape, so here only the cost and the
	// counters matter.)
}
