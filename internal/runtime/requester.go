package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distredge/internal/sim"
	"distredge/internal/strategy"
	"distredge/internal/transport"
)

// Cluster is a deployed strategy: live providers plus the requester-side
// bookkeeping needed to stream images through them and — with
// Options.Recover — to survive providers dying mid-stream.
type Cluster struct {
	env  *sim.Env
	opts Options

	// provMu guards the deployment view, which recovery swaps wholesale:
	// providers is indexed by provider index (nil = quarantined), alive is
	// the liveness mask re-planning runs against.
	provMu    sync.Mutex
	strat     *strategy.Strategy // guarded by provMu
	plan      *Plan              // guarded by provMu
	providers []*Provider        // guarded by provMu
	alive     []bool             // guarded by provMu

	tr transport.Transport
	ln transport.Listener
	// sendMu serialises input scatters across concurrent submitters:
	// per-destination sends inside one scatter stay concurrent, but
	// successive images enter the uplink one at a time, matching the
	// pipeline simulator's uplink busy floor no matter how many callers
	// (RunPipelined's admission loop, gateway Submits) race to admit.
	sendMu sync.Mutex
	// Registration hot state is sharded by image id (reg) with the gc
	// cursor on its own mutex (wm), so concurrent Submit callers and
	// provider result fan-in stop serialising on one lock; see shards.go.
	reg     *regTable
	wm      *watermark
	nextImg atomic.Uint32 // monotonic across runs, so image ids are never reused

	links  map[int]transport.Conn // guarded by linkMu
	linkMu sync.Mutex
	done   chan struct{}
	closed sync.Once

	health *healthMonitor

	// Failure state is epoch-fenced and re-armable: recovery opens a new
	// epoch with a fresh channel, and reports stamped with an older epoch
	// (a torn-down provider's dying gasp) are ignored.
	failMu  sync.Mutex
	epoch   int           // guarded by failMu
	failed  chan struct{} // guarded by failMu
	failErr error         // guarded by failMu
	failIdx int           // guarded by failMu; suspected dead provider, -1 unknown
}

// Deploy builds the plan for a strategy and starts one provider per device
// over Options.Transport (default: localhost TCP with the binary chunk
// codec).
func Deploy(env *sim.Env, strat *strategy.Strategy, opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	plan, err := BuildPlan(env, strat, opts)
	if err != nil {
		return nil, err
	}
	n := env.NumProviders()
	c := &Cluster{
		env:     env,
		opts:    opts,
		strat:   strat,
		plan:    plan,
		alive:   make([]bool, n),
		reg:     newRegTable(),
		wm:      newWatermark(),
		tr:      opts.Transport,
		links:   make(map[int]transport.Conn),
		done:    make(chan struct{}),
		failed:  make(chan struct{}),
		failIdx: -1,
	}
	for i := range c.alive {
		c.alive[i] = true
	}
	// Size the transport's wire buffers to the largest chunk the plan will
	// ship, so a full chunk crosses to the socket in one write.
	transport.SetBufferHint(c.tr, plan.maxChunkBytes())
	addrs := make(map[int]string)
	for _, pp := range plan.Providers {
		p, err := newProvider(pp, 0, opts.HeartbeatInterval, opts.Batch, c.providerFailFn(0), c.tr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.providers = append(c.providers, p)
		addrs[pp.Index] = p.Addr()
	}
	// Requester result listener.
	ln, err := c.tr.Listen(RequesterID)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.ln = ln
	addrs[RequesterID] = ln.Addr()
	for _, p := range c.providers {
		p.setPeers(addrs)
	}
	// The monitor must exist before acceptResults starts routing beats to it.
	if opts.HeartbeatInterval > 0 {
		c.health = newHealthMonitor(c, n, opts.HeartbeatInterval, opts.HeartbeatMisses)
		c.health.arm(0, c.alive)
	}
	go c.acceptResults()
	return c, nil
}

// providerFailFn builds the error sink for providers deployed in the given
// epoch: reports are dropped once cluster-wide teardown has begun (Close
// tears providers down one by one, so a not-yet-closed provider's send to
// an already-closed peer must not record a spurious failure), and
// failProvider additionally fences off reports from torn-down epochs.
func (c *Cluster) providerFailFn(epoch int) func(int, error) {
	return func(suspect int, err error) {
		select {
		case <-c.done:
		default:
			c.failProvider(epoch, suspect, err)
		}
	}
}

// Addr returns the requester's result listener address.
func (c *Cluster) Addr() string { return c.ln.Addr() }

// Transport returns the wire stack the cluster is deployed over.
func (c *Cluster) Transport() transport.Transport { return c.tr }

// failProvider records the first failure of the given epoch, remembering
// the suspected provider (-1 = unknown), and wakes every waiter so a dead
// peer surfaces immediately instead of after the per-image timeout.
func (c *Cluster) failProvider(epoch, suspect int, err error) {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if epoch != c.epoch {
		return
	}
	select {
	case <-c.failed:
	default:
		c.failErr = err
		c.failIdx = suspect
		close(c.failed)
	}
}

// failNow records a failure in the current epoch (requester-side callers).
func (c *Cluster) failNow(suspect int, err error) {
	c.failMu.Lock()
	epoch := c.epoch
	c.failMu.Unlock()
	c.failProvider(epoch, suspect, err)
}

// fail records a failure with no suspected provider.
func (c *Cluster) fail(err error) { c.failNow(-1, err) }

// failedCh returns the current epoch's failure channel.
func (c *Cluster) failedCh() chan struct{} {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	return c.failed
}

// Err returns the first error the cluster recorded in its current epoch,
// or nil while healthy. With Options.Recover, a successful recovery opens
// a new epoch and Err reads nil again; without it, failure is sticky.
func (c *Cluster) Err() error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	select {
	case <-c.failed:
		return c.failErr
	default:
		return nil
	}
}

func (c *Cluster) acceptResults() {
	for {
		cn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			for {
				ch, err := cn.Recv()
				if err != nil {
					cn.Close()
					return
				}
				if ch.Volume == heartbeatVolume {
					if c.health != nil {
						c.health.beat(int(ch.Image), int(ch.Lo))
					}
					continue
				}
				// Result payloads are bookkeeping-only: recycle them once
				// the pending set is updated below.
				transport.RecyclePayload(c.tr, ch.Payload)
				c.reg.shard(ch.Image).chunkArrived(ch.Image,
					chunkKey{int(ch.Volume), int(ch.Lo), int(ch.Hi)})
			}
		}()
	}
}

// register allocates the next image id and arms its completion tracking.
func (c *Cluster) register() (uint32, chan struct{}) {
	done := make(chan struct{})
	c.provMu.Lock()
	plan := c.plan // recovery swaps the plan wholesale; snapshot the pointer
	c.provMu.Unlock()
	img := c.nextImg.Add(1)
	m := make(map[chunkKey]bool, len(plan.Await))
	for _, a := range plan.Await {
		m[chunkKey{a.Volume, a.Lo, a.Hi}] = true
	}
	c.reg.shard(img).register(img, m, done)
	return img, done
}

// dropRegistration unwinds a registration whose input scatter failed: no
// result can ever arrive for the image, so its pending set and done channel
// are dropped and the image is marked completed so the gc watermark can
// advance past it — the mirror of recovery's drain, without which gcLow
// wedges below the dead id forever and provider assembly state above it is
// never collected again.
func (c *Cluster) dropRegistration(img uint32) {
	c.reg.shard(img).drop(img)
	c.complete(img)
}

// complete records a finished image and advances the gc watermark: provider
// assembly state is dropped only once every image at or below it has
// completed, so an early finisher never tears down state a straggler in the
// admission window still needs.
func (c *Cluster) complete(img uint32) {
	low := c.wm.complete(img)
	c.provMu.Lock()
	provs := append([]*Provider(nil), c.providers...)
	c.provMu.Unlock()
	for _, p := range provs {
		if p != nil {
			p.gc(low)
		}
	}
}

// sendInput scatters one image's input rows to the volume-0 providers.
// Per-destination sends run concurrently — the single-image oracle's
// scatter model, and what per-pair connections really allow — while the
// admission loop's serial sendInput calls keep successive images' scatters
// ordered like the pipeline simulator's uplink busy floor. A failed
// scatter is attributed to its destination provider so recovery can
// quarantine it.
func (c *Cluster) sendInput(img uint32) error {
	c.provMu.Lock()
	plan := c.plan // recovery swaps the plan wholesale; snapshot the pointer
	c.provMu.Unlock()
	var wg sync.WaitGroup
	var mu sync.Mutex
	firstErr, firstDest := error(nil), -1
	for k, need := range plan.Scatter {
		dest := plan.ScatterDest[k]
		ch := Chunk{
			Image:   img,
			Volume:  volInput,
			Lo:      int32(need.Lo),
			Hi:      int32(need.Hi),
			Payload: transport.GetPayload(c.tr, (need.Hi-need.Lo)*plan.InputRowBytes),
		}
		fillActivation(ch.Payload, img^uint32(need.Lo)<<16)
		wg.Add(1)
		go func(dest int, ch Chunk) {
			defer wg.Done()
			if err := c.sendToProvider(dest, ch); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr, firstDest = err, dest
				}
				mu.Unlock()
			}
		}(dest, ch)
	}
	wg.Wait()
	if firstErr != nil {
		err := fmt.Errorf("runtime: scatter image %d to provider %d: %w", img, firstDest, firstErr)
		c.failNow(firstDest, err)
		return err
	}
	return nil
}

func (c *Cluster) sendToProvider(dest int, ch Chunk) error {
	c.linkMu.Lock()
	o, ok := c.links[dest]
	if !ok {
		c.provMu.Lock()
		var p *Provider
		if dest >= 0 && dest < len(c.providers) {
			p = c.providers[dest]
		}
		c.provMu.Unlock()
		if p == nil {
			c.linkMu.Unlock()
			return fmt.Errorf("runtime: provider %d is quarantined", dest)
		}
		cn, err := c.tr.Dial(RequesterID, p.Addr())
		if err != nil {
			c.linkMu.Unlock()
			return err
		}
		o = cn
		c.links[dest] = o
	}
	c.linkMu.Unlock()
	return o.Send(ch)
}

// RunStats summarises a streaming run over the cluster.
type RunStats struct {
	Images     int
	Window     int // admission window the run used (1 = sequential)
	Batch      int // per-step image batching cap the providers ran with
	TotalSec   float64
	IPS        float64   // completed images per second
	PerImageMS []float64 // admission-to-completion latency per image (0 = never completed)

	// Recovery accounting (all zero on churn-free runs).
	Completed   int     // images whose results arrived (== Images on success)
	Recoveries  int     // quarantine + re-plan + redeploy cycles
	Requeued    int     // images re-scattered after a recovery
	ReplanMS    float64 // total wall-clock spent re-planning and redeploying
	Quarantined []int   // providers removed from the fleet, in index order
}

// MeanLatMS returns the mean admission-to-completion latency over
// PerImageMS (0 for an empty run). Images that never completed count as
// their recorded zero, matching how PerImageMS reports them.
func (s RunStats) MeanLatMS() float64 {
	if len(s.PerImageMS) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.PerImageMS {
		sum += v
	}
	return sum / float64(len(s.PerImageMS))
}

// Run streams `images` images through the deployed strategy one at a time
// (Section V-A's sequential protocol) and returns timing statistics.
func (c *Cluster) Run(images int) (RunStats, error) {
	return c.RunPipelined(images, 1)
}

// RunPipelined streams `images` images keeping up to `window` of them in
// flight: a new image is admitted as soon as a slot frees, so providers
// overlap different images' steps and the run measures sustained
// throughput. Window 1 is the paper's one-image-at-a-time protocol.
//
// Errors anywhere in the cluster — a dead peer, a failed send, missed
// heartbeats, an image exceeding Options.Timeout — abort the admission
// window immediately. Without Options.Recover the failure is sticky: the
// cluster's distributed assembly state is suspect, so the run fails and
// further runs are refused (redeploy to retry). With Options.Recover the
// cluster quarantines the dead provider, re-plans the strategy over the
// survivors (warm-started from the serving strategy), redeploys them, and
// re-scatters every incomplete image; the returned stats count the
// recoveries and the re-planning cost.
func (c *Cluster) RunPipelined(images, window int) (RunStats, error) {
	if images < 1 {
		return RunStats{}, fmt.Errorf("runtime: need at least one image")
	}
	if window < 1 {
		return RunStats{}, fmt.Errorf("runtime: window must be >= 1, got %d", window)
	}
	if err := c.Err(); err != nil {
		return RunStats{}, fmt.Errorf("runtime: cluster already failed: %w", err)
	}
	stats := RunStats{Images: images, Window: window, Batch: c.opts.Batch, PerImageMS: make([]float64, images)}
	t0s := make([]time.Time, images)
	completed := make([]bool, images)
	remaining := make([]int, images)
	for i := range remaining {
		remaining[i] = i
	}
	start := time.Now()
	finalize := func() {
		stats.TotalSec = time.Since(start).Seconds()
		stats.Completed = 0
		for _, done := range completed {
			if done {
				stats.Completed++
			}
		}
		if stats.TotalSec > 0 {
			stats.IPS = float64(stats.Completed) / stats.TotalSec
		}
		stats.Quarantined = c.Quarantined()
	}
	for len(remaining) > 0 {
		err := c.runBatch(remaining, window, t0s, completed, &stats)
		if err == nil {
			break
		}
		if !c.opts.Recover {
			finalize()
			return stats, err
		}
		replanMS, rerr := c.recover()
		stats.ReplanMS += replanMS
		if rerr != nil {
			finalize()
			return stats, fmt.Errorf("runtime: %v; recovery failed: %w", err, rerr)
		}
		var left []int
		for _, slot := range remaining {
			if !completed[slot] {
				left = append(left, slot)
				if !t0s[slot].IsZero() {
					// Only images that were actually in flight at the
					// failure count as requeued; the unadmitted tail is
					// just admitted later.
					stats.Requeued++
				}
			}
		}
		remaining = left
		stats.Recoveries++
	}
	finalize()
	return stats, nil
}

// admit registers the next image and scatters its input rows, serialised
// against every other submitter by sendMu. A failed scatter has already
// marked the cluster failed (sendInput attributes it to its destination);
// admit additionally drops the dead registration so the gc watermark keeps
// advancing, and returns the error.
func (c *Cluster) admit() (uint32, chan struct{}, error) {
	img, done := c.register()
	c.sendMu.Lock()
	err := c.sendInput(img)
	c.sendMu.Unlock()
	if err != nil {
		c.dropRegistration(img)
		return 0, nil, err
	}
	return img, done, nil
}

// await blocks until the admitted image's full result has arrived (nil),
// the per-image Options.Timeout fires, the cluster's current epoch records
// a failure, or the cluster closes. On success the image is marked complete
// and provider assembly state below the watermark is collected.
func (c *Cluster) await(img uint32, done <-chan struct{}) error {
	failed := c.failedCh()
	timer := time.NewTimer(c.opts.Timeout)
	defer timer.Stop()
	select {
	case <-done:
		c.complete(img)
		return nil
	case <-timer.C:
		err := fmt.Errorf("runtime: image %d timed out after %s", img, c.opts.Timeout)
		c.failNow(-1, err)
		return err
	case <-failed:
		return fmt.Errorf("runtime: image %d aborted: %w", img, c.Err())
	case <-c.done:
		err := fmt.Errorf("runtime: cluster closed during run")
		c.fail(err)
		return err
	}
}

// Submit streams one image through the deployed strategy and blocks until
// its result assembles (or the per-image timeout / a cluster failure
// aborts it). It is the shared-cluster admission primitive: where
// RunPipelined owns the whole admission window for a single caller's image
// list, Submit is safe for arbitrary concurrent callers — the serving
// gateway (internal/gateway) multiplexes many tenants' requests over one
// deployed fleet through it, supplying its own windowing, fairness and
// deadlines. Submit does not drive churn recovery: a failure is sticky
// (see Err) and surfaces from every in-flight and subsequent Submit.
func (c *Cluster) Submit() error {
	if err := c.Err(); err != nil {
		return fmt.Errorf("runtime: cluster already failed: %w", err)
	}
	img, done, err := c.admit()
	if err != nil {
		return err
	}
	return c.await(img, done)
}

// runBatch admits the given image slots through the current deployment
// with the admission-window protocol, returning the epoch's first error
// (nil when every slot completed). Slots that complete are marked in
// `completed` with their latency measured from their first admission, so
// re-admitted images show the recovery stall in PerImageMS.
func (c *Cluster) runBatch(slots []int, window int, t0s []time.Time, completed []bool, stats *RunStats) error {
	failed := c.failedCh()
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
admit:
	for _, slot := range slots {
		// Backpressure: wait for a free slot in the admission window, or
		// stop admitting the moment anything failed.
		select {
		case sem <- struct{}{}:
		case <-failed:
			break admit
		case <-c.done:
			c.fail(fmt.Errorf("runtime: cluster closed during run"))
			break admit
		}
		if t0s[slot].IsZero() {
			t0s[slot] = time.Now()
		}
		img, done, err := c.admit()
		if err != nil {
			<-sem
			break admit
		}
		wg.Add(1)
		go func(slot int, img uint32, done <-chan struct{}) {
			defer wg.Done()
			defer func() { <-sem }()
			if c.await(img, done) == nil {
				stats.PerImageMS[slot] = float64(time.Since(t0s[slot]).Microseconds()) / 1e3
				completed[slot] = true
			}
		}(slot, img, done)
	}
	wg.Wait()
	return c.Err()
}

// NumProviders returns the number of providers the cluster was deployed
// with, including quarantined ones.
func (c *Cluster) NumProviders() int {
	c.provMu.Lock()
	defer c.provMu.Unlock()
	return len(c.providers)
}

// LiveProviders returns the number of providers currently serving.
func (c *Cluster) LiveProviders() int {
	c.provMu.Lock()
	defer c.provMu.Unlock()
	return strategy.CountAlive(c.alive)
}

// Quarantined returns the indices of providers removed from the fleet.
func (c *Cluster) Quarantined() []int {
	c.provMu.Lock()
	defer c.provMu.Unlock()
	var out []int
	for i, a := range c.alive {
		if !a {
			out = append(out, i)
		}
	}
	return out
}

// Strategy returns the strategy the cluster is currently serving — after a
// recovery this is the re-planned one, not the strategy it was deployed
// with.
func (c *Cluster) Strategy() *strategy.Strategy {
	c.provMu.Lock()
	defer c.provMu.Unlock()
	return c.strat
}

// KillProvider simulates a crash of provider i: its listener and
// connections drop and its heartbeats stop, exactly as a powered-off
// device looks to the rest of the cluster. Chaos tests and the churn
// experiments use it to inject failures mid-run.
func (c *Cluster) KillProvider(i int) error {
	c.provMu.Lock()
	if i < 0 || i >= len(c.providers) {
		c.provMu.Unlock()
		return fmt.Errorf("runtime: no provider %d", i)
	}
	p := c.providers[i]
	c.provMu.Unlock()
	if p == nil {
		return nil // already quarantined
	}
	p.close()
	return nil
}

// Close tears the cluster down.
func (c *Cluster) Close() {
	c.closed.Do(func() {
		close(c.done)
		if c.health != nil {
			c.health.close()
		}
		if c.ln != nil {
			c.ln.Close()
		}
		c.linkMu.Lock()
		for _, o := range c.links {
			o.Close()
		}
		c.linkMu.Unlock()
		c.provMu.Lock()
		provs := append([]*Provider(nil), c.providers...)
		c.provMu.Unlock()
		for _, p := range provs {
			if p != nil {
				p.close()
			}
		}
	})
}
