package runtime

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// Cluster is a deployed strategy: live providers plus the requester-side
// bookkeeping needed to stream images through them.
type Cluster struct {
	plan      *Plan
	providers []*Provider

	ln      net.Listener
	resMu   sync.Mutex
	pending map[uint32]map[chunkKey]bool
	arrived map[uint32]chan struct{}
	links   map[int]*conn
	linkMu  sync.Mutex
	done    chan struct{}
	closed  sync.Once
}

// Deploy builds the plan for a strategy and starts one provider per device
// on localhost.
func Deploy(env *sim.Env, strat *strategy.Strategy, opts Options) (*Cluster, error) {
	plan, err := BuildPlan(env, strat, opts)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		plan:    plan,
		pending: make(map[uint32]map[chunkKey]bool),
		arrived: make(map[uint32]chan struct{}),
		links:   make(map[int]*conn),
		done:    make(chan struct{}),
	}
	addrs := make(map[int]string)
	for _, pp := range plan.Providers {
		p, err := newProvider(pp)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.providers = append(c.providers, p)
		addrs[pp.Index] = p.Addr()
	}
	// Requester result listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close()
		return nil, err
	}
	c.ln = ln
	addrs[RequesterID] = ln.Addr().String()
	for _, p := range c.providers {
		p.setPeers(addrs)
	}
	go c.acceptResults()
	return c, nil
}

// Addr returns the requester's result listener address.
func (c *Cluster) Addr() string { return c.ln.Addr().String() }

func (c *Cluster) acceptResults() {
	for {
		cn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			dec := gob.NewDecoder(cn)
			for {
				var ch Chunk
				if err := dec.Decode(&ch); err != nil {
					cn.Close()
					return
				}
				c.resMu.Lock()
				if m, ok := c.pending[ch.Image]; ok {
					delete(m, chunkKey{int(ch.Volume), int(ch.Lo), int(ch.Hi)})
					if len(m) == 0 {
						delete(c.pending, ch.Image)
						if done, ok := c.arrived[ch.Image]; ok {
							close(done)
							delete(c.arrived, ch.Image)
						}
					}
				}
				c.resMu.Unlock()
			}
		}()
	}
}

// sendInput scatters one image's input rows to the volume-0 providers.
func (c *Cluster) sendInput(img uint32) error {
	for k, need := range c.plan.Scatter {
		dest := c.plan.ScatterDest[k]
		ch := Chunk{
			Image:   img,
			Volume:  -1,
			Lo:      int32(need.Lo),
			Hi:      int32(need.Hi),
			Payload: make([]byte, (need.Hi-need.Lo)*c.plan.InputRowBytes),
		}
		if err := c.sendToProvider(dest, ch); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) sendToProvider(dest int, ch Chunk) error {
	c.linkMu.Lock()
	o, ok := c.links[dest]
	if !ok {
		cn, err := net.Dial("tcp", c.providers[dest].Addr())
		if err != nil {
			c.linkMu.Unlock()
			return err
		}
		o = &conn{enc: gob.NewEncoder(cn), c: cn}
		c.links[dest] = o
	}
	c.linkMu.Unlock()
	return o.send(ch)
}

// RunStats summarises a streaming run over the cluster.
type RunStats struct {
	Images     int
	TotalSec   float64
	IPS        float64
	PerImageMS []float64
}

// Run streams `images` images through the deployed strategy, one at a time
// (Section V-A's protocol), and returns timing statistics.
func (c *Cluster) Run(images int) (RunStats, error) {
	if images < 1 {
		return RunStats{}, fmt.Errorf("runtime: need at least one image")
	}
	stats := RunStats{Images: images}
	start := time.Now()
	for i := 0; i < images; i++ {
		img := uint32(i + 1)
		done := make(chan struct{})
		c.resMu.Lock()
		m := make(map[chunkKey]bool, len(c.plan.Await))
		for _, a := range c.plan.Await {
			m[chunkKey{a.Volume, a.Lo, a.Hi}] = true
		}
		c.pending[img] = m
		c.arrived[img] = done
		c.resMu.Unlock()

		t0 := time.Now()
		if err := c.sendInput(img); err != nil {
			return stats, err
		}
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			return stats, fmt.Errorf("runtime: image %d timed out", img)
		}
		stats.PerImageMS = append(stats.PerImageMS, float64(time.Since(t0).Microseconds())/1e3)
		for _, p := range c.providers {
			p.gc(img)
		}
	}
	stats.TotalSec = time.Since(start).Seconds()
	stats.IPS = float64(images) / stats.TotalSec
	return stats, nil
}

// NumProviders returns the number of live providers.
func (c *Cluster) NumProviders() int { return len(c.providers) }

// Close tears the cluster down.
func (c *Cluster) Close() {
	c.closed.Do(func() {
		close(c.done)
		if c.ln != nil {
			c.ln.Close()
		}
		c.linkMu.Lock()
		for _, o := range c.links {
			o.c.Close()
		}
		c.linkMu.Unlock()
		for _, p := range c.providers {
			p.close()
		}
	})
}
