package runtime

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// Cluster is a deployed strategy: live providers plus the requester-side
// bookkeeping needed to stream images through them.
type Cluster struct {
	plan      *Plan
	opts      Options
	providers []*Provider

	ln      net.Listener
	resMu   sync.Mutex
	pending map[uint32]map[chunkKey]bool
	arrived map[uint32]chan struct{}
	// completed / gcLow implement the window-aware gc watermark: provider
	// state is dropped only below the lowest image that has not completed.
	completed map[uint32]bool
	gcLow     uint32
	nextImg   uint32 // monotonic across runs, so image ids are never reused

	links  map[int]*conn
	linkMu sync.Mutex
	done   chan struct{}
	closed sync.Once

	failOnce sync.Once
	failed   chan struct{}
	failErr  error
}

// Deploy builds the plan for a strategy and starts one provider per device
// on localhost.
func Deploy(env *sim.Env, strat *strategy.Strategy, opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	plan, err := BuildPlan(env, strat, opts)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		plan:      plan,
		opts:      opts,
		pending:   make(map[uint32]map[chunkKey]bool),
		arrived:   make(map[uint32]chan struct{}),
		completed: make(map[uint32]bool),
		gcLow:     1,
		links:     make(map[int]*conn),
		done:      make(chan struct{}),
		failed:    make(chan struct{}),
	}
	// Providers report errors through the cluster unless cluster-wide
	// teardown has begun: Close tears providers down one by one, so a
	// not-yet-closed provider's send to an already-closed peer must not
	// record a spurious failure after a clean run.
	reportUnlessClosing := func(err error) {
		select {
		case <-c.done:
		default:
			c.fail(err)
		}
	}
	addrs := make(map[int]string)
	for _, pp := range plan.Providers {
		p, err := newProvider(pp, reportUnlessClosing)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.providers = append(c.providers, p)
		addrs[pp.Index] = p.Addr()
	}
	// Requester result listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close()
		return nil, err
	}
	c.ln = ln
	addrs[RequesterID] = ln.Addr().String()
	for _, p := range c.providers {
		p.setPeers(addrs)
	}
	go c.acceptResults()
	return c, nil
}

// Addr returns the requester's result listener address.
func (c *Cluster) Addr() string { return c.ln.Addr().String() }

// fail records the first error observed anywhere in the cluster and wakes
// every waiter, so a dead peer surfaces immediately instead of after the
// per-image timeout.
func (c *Cluster) fail(err error) {
	c.failOnce.Do(func() {
		c.failErr = err
		close(c.failed)
	})
}

// Err returns the first error the cluster recorded, or nil while healthy.
func (c *Cluster) Err() error {
	select {
	case <-c.failed:
		return c.failErr
	default:
		return nil
	}
}

func (c *Cluster) acceptResults() {
	for {
		cn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			dec := gob.NewDecoder(cn)
			for {
				var ch Chunk
				if err := dec.Decode(&ch); err != nil {
					cn.Close()
					return
				}
				c.resMu.Lock()
				if m, ok := c.pending[ch.Image]; ok {
					delete(m, chunkKey{int(ch.Volume), int(ch.Lo), int(ch.Hi)})
					if len(m) == 0 {
						delete(c.pending, ch.Image)
						if done, ok := c.arrived[ch.Image]; ok {
							close(done)
							delete(c.arrived, ch.Image)
						}
					}
				}
				c.resMu.Unlock()
			}
		}()
	}
}

// register allocates the next image id and arms its completion tracking.
func (c *Cluster) register() (uint32, chan struct{}) {
	done := make(chan struct{})
	c.resMu.Lock()
	c.nextImg++
	img := c.nextImg
	m := make(map[chunkKey]bool, len(c.plan.Await))
	for _, a := range c.plan.Await {
		m[chunkKey{a.Volume, a.Lo, a.Hi}] = true
	}
	c.pending[img] = m
	c.arrived[img] = done
	c.resMu.Unlock()
	return img, done
}

// complete records a finished image and advances the gc watermark: provider
// assembly state is dropped only once every image at or below it has
// completed, so an early finisher never tears down state a straggler in the
// admission window still needs.
func (c *Cluster) complete(img uint32) {
	c.resMu.Lock()
	c.completed[img] = true
	for c.completed[c.gcLow] {
		delete(c.completed, c.gcLow)
		c.gcLow++
	}
	low := c.gcLow
	c.resMu.Unlock()
	for _, p := range c.providers {
		p.gc(low)
	}
}

// sendInput scatters one image's input rows to the volume-0 providers.
func (c *Cluster) sendInput(img uint32) error {
	for k, need := range c.plan.Scatter {
		dest := c.plan.ScatterDest[k]
		ch := Chunk{
			Image:   img,
			Volume:  -1,
			Lo:      int32(need.Lo),
			Hi:      int32(need.Hi),
			Payload: make([]byte, (need.Hi-need.Lo)*c.plan.InputRowBytes),
		}
		if err := c.sendToProvider(dest, ch); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) sendToProvider(dest int, ch Chunk) error {
	c.linkMu.Lock()
	o, ok := c.links[dest]
	if !ok {
		cn, err := net.Dial("tcp", c.providers[dest].Addr())
		if err != nil {
			c.linkMu.Unlock()
			return err
		}
		o = &conn{enc: gob.NewEncoder(cn), c: cn}
		c.links[dest] = o
	}
	c.linkMu.Unlock()
	return o.send(ch)
}

// RunStats summarises a streaming run over the cluster.
type RunStats struct {
	Images     int
	Window     int // admission window the run used (1 = sequential)
	TotalSec   float64
	IPS        float64
	PerImageMS []float64 // admission-to-completion latency per image
}

// Run streams `images` images through the deployed strategy one at a time
// (Section V-A's sequential protocol) and returns timing statistics.
func (c *Cluster) Run(images int) (RunStats, error) {
	return c.RunPipelined(images, 1)
}

// RunPipelined streams `images` images keeping up to `window` of them in
// flight: a new image is admitted as soon as a slot frees, so providers
// overlap different images' steps and the run measures sustained
// throughput. Window 1 is the paper's one-image-at-a-time protocol.
//
// Errors anywhere in the cluster — a dead peer, a failed send, an image
// exceeding Options.Timeout — abort the run immediately. Failure is
// sticky: once a cluster has failed, its distributed assembly state is
// suspect, so further runs are refused (redeploy to retry).
func (c *Cluster) RunPipelined(images, window int) (RunStats, error) {
	if images < 1 {
		return RunStats{}, fmt.Errorf("runtime: need at least one image")
	}
	if window < 1 {
		return RunStats{}, fmt.Errorf("runtime: window must be >= 1, got %d", window)
	}
	if err := c.Err(); err != nil {
		return RunStats{}, fmt.Errorf("runtime: cluster already failed: %w", err)
	}
	stats := RunStats{Images: images, Window: window, PerImageMS: make([]float64, images)}
	timeout := c.opts.Timeout
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	start := time.Now()
admit:
	for i := 0; i < images; i++ {
		// Backpressure: wait for a free slot in the admission window, or
		// stop admitting the moment anything failed.
		select {
		case sem <- struct{}{}:
		case <-c.failed:
			break admit
		case <-c.done:
			c.fail(fmt.Errorf("runtime: cluster closed during run"))
			break admit
		}
		img, done := c.register()
		t0 := time.Now()
		if err := c.sendInput(img); err != nil {
			c.fail(fmt.Errorf("runtime: scatter image %d: %w", img, err))
			break admit
		}
		wg.Add(1)
		go func(slot int, img uint32, t0 time.Time, done <-chan struct{}) {
			defer wg.Done()
			defer func() { <-sem }()
			timer := time.NewTimer(timeout)
			defer timer.Stop()
			select {
			case <-done:
				stats.PerImageMS[slot] = float64(time.Since(t0).Microseconds()) / 1e3
				c.complete(img)
			case <-timer.C:
				c.fail(fmt.Errorf("runtime: image %d timed out after %s", img, timeout))
			case <-c.failed:
			case <-c.done:
				c.fail(fmt.Errorf("runtime: cluster closed during run"))
			}
		}(i, img, t0, done)
	}
	wg.Wait()
	stats.TotalSec = time.Since(start).Seconds()
	if err := c.Err(); err != nil {
		return stats, err
	}
	stats.IPS = float64(images) / stats.TotalSec
	return stats, nil
}

// NumProviders returns the number of live providers.
func (c *Cluster) NumProviders() int { return len(c.providers) }

// Close tears the cluster down.
func (c *Cluster) Close() {
	c.closed.Do(func() {
		close(c.done)
		if c.ln != nil {
			c.ln.Close()
		}
		c.linkMu.Lock()
		for _, o := range c.links {
			o.c.Close()
		}
		c.linkMu.Unlock()
		for _, p := range c.providers {
			p.close()
		}
	})
}
