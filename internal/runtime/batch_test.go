package runtime

import (
	"testing"

	"distredge/internal/device"
	"distredge/internal/sim"
	"distredge/internal/transport"
)

// TestRunPipelinedBatchOneMatchesDefault is the equivalence property test:
// Options.Batch = 1 (and any negative value) must take the pre-batching
// compute path — every compute invocation covers exactly one step instance,
// the emulated cost per step is unchanged, and the run completes
// identically.
func TestRunPipelinedBatchOneMatchesDefault(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})
	const images, window = 8, 4
	for _, batch := range []int{1, -1} {
		opts := fastOpts()
		opts.Batch = batch
		cl, err := Deploy(env, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := cl.RunPipelined(images, window)
		if err != nil {
			cl.Close()
			t.Fatal(err)
		}
		if stats.Completed != images {
			t.Errorf("batch=%d: completed %d of %d", batch, stats.Completed, images)
		}
		if stats.Batch != 1 {
			t.Errorf("batch=%d: RunStats.Batch = %d, want 1 (default)", batch, stats.Batch)
		}
		totalSteps, totalInv := 0, 0
		for _, ps := range cl.Stats() {
			totalSteps += ps.StepsExecuted
			totalInv += ps.Invocations
			if ps.MaxBatch > 1 {
				t.Errorf("batch=%d: provider %d coalesced a batch of %d — batching must be off", batch, ps.Index, ps.MaxBatch)
			}
		}
		if totalSteps != totalInv {
			t.Errorf("batch=%d: %d steps over %d invocations — must be 1:1 without batching", batch, totalSteps, totalInv)
		}
		cl.Close()
	}
}

// TestRunPipelinedAdaptiveBatchDrains checks the zero value's adaptive cap:
// Batch = 0 drains whatever queued behind a busy device — invocations
// amortise like a fixed cap, outputs still arrive per image, and no
// configured bound shows up in the stats.
func TestRunPipelinedAdaptiveBatchDrains(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})
	const images, window = 8, 4
	opts := fastOpts()
	opts.Batch = 0
	cl, err := Deploy(env, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stats, err := cl.RunPipelined(images, window)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != images {
		t.Fatalf("completed %d of %d", stats.Completed, images)
	}
	if stats.Batch != 0 {
		t.Errorf("RunStats.Batch = %d, want the adaptive 0 to round-trip", stats.Batch)
	}
	totalSteps, totalInv, maxBatch := 0, 0, 0
	for _, ps := range cl.Stats() {
		totalSteps += ps.StepsExecuted
		totalInv += ps.Invocations
		if ps.MaxBatch > maxBatch {
			maxBatch = ps.MaxBatch
		}
	}
	if totalSteps != images*len(cl.Stats()) {
		t.Errorf("executed %d steps, want one per (image, provider) = %d", totalSteps, images*len(cl.Stats()))
	}
	if maxBatch <= 1 || totalInv >= totalSteps {
		t.Errorf("adaptive cap never coalesced: max batch %d, %d invocations for %d steps",
			maxBatch, totalInv, totalSteps)
	}
}

// TestRunPipelinedBatchingCoalesces checks the tentpole mechanism end to
// end: with a wide admission window the per-stage work queues, Batch = 4
// coalesces queued same-step images into shared invocations (visible as
// Invocations < StepsExecuted and MaxBatch > 1), the per-image outputs all
// still arrive, and the amortised cost model is charged (total ComputeSec
// below the unbatched run's).
func TestRunPipelinedBatchingCoalesces(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})
	const images, window = 16, 8
	run := func(batch int) (RunStats, []ProviderStats) {
		t.Helper()
		opts := fastOpts()
		opts.Batch = batch
		cl, err := Deploy(env, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		stats, err := cl.RunPipelined(images, window)
		if err != nil {
			t.Fatal(err)
		}
		return stats, cl.Stats()
	}
	base, baseProv := run(1)
	batched, prov := run(4)
	if base.Completed != images || batched.Completed != images {
		t.Fatalf("completions: unbatched %d, batched %d, want %d", base.Completed, batched.Completed, images)
	}
	if batched.Batch != 4 {
		t.Errorf("RunStats.Batch = %d, want 4", batched.Batch)
	}
	steps, inv, maxBatch := 0, 0, 0
	var computeSec, baseComputeSec float64
	for i, ps := range prov {
		steps += ps.StepsExecuted
		inv += ps.Invocations
		if ps.MaxBatch > maxBatch {
			maxBatch = ps.MaxBatch
		}
		computeSec += ps.ComputeSec
		baseComputeSec += baseProv[i].ComputeSec
	}
	if maxBatch < 2 {
		t.Errorf("no batch ever formed (MaxBatch %d) despite window %d queueing", maxBatch, window)
	}
	if maxBatch > 4 {
		t.Errorf("batch of %d exceeds the configured cap 4", maxBatch)
	}
	if inv >= steps {
		t.Errorf("%d invocations for %d steps — batching never amortised an invocation", inv, steps)
	}
	// Same steps executed; batched invocations must charge less total
	// emulated compute (the fixed fraction is paid once per batch).
	baseSteps := 0
	for _, ps := range baseProv {
		baseSteps += ps.StepsExecuted
	}
	if steps != baseSteps {
		t.Errorf("batched run executed %d steps, unbatched %d — outputs must be per image either way", steps, baseSteps)
	}
	if computeSec >= baseComputeSec {
		t.Errorf("batched compute %.4fs not below unbatched %.4fs", computeSec, baseComputeSec)
	}
}

// TestShapedBatchingReproducesSimOrdering is the differential acceptance
// test: the simulator predicts that batching raises sustained throughput on
// a stage pipeline over a dynamic trace, and the shaped runtime — same
// network, same batch cap, same cost model — must reproduce that ordering.
func TestShapedBatchingReproducesSimOrdering(t *testing.T) {
	// Bandwidth high enough that the bottleneck stage's compute — not the
	// wire — limits throughput: batching only pays where work queues on a
	// device (the 20-60 Mbps regime of the transport differential test is
	// wire-bound, and there the simulator rightly predicts batching is
	// inert).
	env := dynamicEnv(150, 300)
	s := stageStrategy(env, env.Model, []int{0, 10, 14, 18})
	const window = 8

	simRun := func(batch int) sim.PipelineResult {
		t.Helper()
		res, err := env.PipelineStreamOpts(s, sim.PipelineConfig{Images: 32, Window: window, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sim1, sim4 := simRun(1), simRun(4)
	if sim4.SteadyIPS <= 1.05*sim1.SteadyIPS {
		t.Fatalf("simulator must predict a batching speedup here: batch 4 %.2f ips vs batch 1 %.2f ips",
			sim4.SteadyIPS, sim1.SteadyIPS)
	}

	const timeScale, bytesScale = 0.05, 0.001
	const images = 12
	rtRun := func(batch int) RunStats {
		t.Helper()
		opts := Options{
			TimeScale:         timeScale,
			BytesScale:        bytesScale,
			Batch:             batch,
			HeartbeatInterval: -1,
			Transport:         transport.NewShaped(transport.NewInproc(), env.Net, timeScale, bytesScale, 0),
		}
		cl, err := Deploy(env, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		st, err := cl.RunPipelined(images, window)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	rt1, rt4 := rtRun(1), rtRun(4)
	t.Logf("sim: batch 1 %.2f ips, batch 4 %.2f ips (%.2fx)", sim1.SteadyIPS, sim4.SteadyIPS, sim4.SteadyIPS/sim1.SteadyIPS)
	t.Logf("rt:  batch 1 %.2f ips, batch 4 %.2f ips (%.2fx)", rt1.IPS, rt4.IPS, rt4.IPS/rt1.IPS)
	if rt1.Completed != images || rt4.Completed != images {
		t.Fatalf("completions: batch 1 %d, batch 4 %d, want %d", rt1.Completed, rt4.Completed, images)
	}
	if rt4.IPS <= rt1.IPS {
		t.Errorf("shaped runtime does not reproduce the predicted batching speedup: batch 4 %.2f ips vs batch 1 %.2f ips",
			rt4.IPS, rt1.IPS)
	}
}
