package runtime

import (
	"fmt"
	"time"

	"distredge/internal/splitter"
	"distredge/internal/transport"
)

// recover is the churn-recovery procedure RunPipelined invokes between
// admission batches once a failure surfaced (so no admission or completion
// waiter is live while the deployment is swapped):
//
//  1. quarantine — every suspect (the failure's attributed provider plus
//     anything the health monitor declared dead) leaves the alive mask;
//  2. drain — results that already arrived stay counted, while the
//     registrations of incomplete images are dropped and the gc watermark
//     advances past them (their ids are dead: image ids are monotonic, so
//     a late chunk from the old deployment can never resurrect them);
//  3. re-plan — Options.Replan (default splitter.ObjectiveReplan for
//     Options.Objective, i.e. splitter.BalancedReplan under the latency
//     default) produces a strategy over the survivors, warm-started from
//     the serving one;
//  4. redeploy — fresh providers for the survivors under a new epoch, so
//     stale failure reports and heartbeats from the torn-down deployment
//     are fenced off, and the failure state is re-armed.
//
// The caller then re-scatters every incomplete image. Returns the
// wall-clock milliseconds spent (the runtime's time-to-recover cost,
// comparable to sim.ChurnOptions.ReplanSec).
func (c *Cluster) recover() (float64, error) {
	t0 := time.Now()

	// 1. Quarantine the suspects.
	c.failMu.Lock()
	cause := c.failErr
	suspects := map[int]bool{}
	if c.failIdx >= 0 {
		suspects[c.failIdx] = true
	}
	c.failMu.Unlock()
	if c.health != nil {
		for _, i := range c.health.deadSet() {
			suspects[i] = true
		}
	}
	c.provMu.Lock()
	newlyDead := 0
	for i := range suspects {
		if i >= 0 && i < len(c.alive) && c.alive[i] {
			c.alive[i] = false
			newlyDead++
		}
	}
	alive := append([]bool(nil), c.alive...)
	oldProvs := append([]*Provider(nil), c.providers...)
	oldStrat := c.strat
	c.provMu.Unlock()
	if newlyDead == 0 {
		// A timeout with every provider still beating, or a repeat of an
		// already-handled death: recovery cannot make progress.
		return 0, fmt.Errorf("runtime: no identifiable dead provider (cause: %v)", cause)
	}
	live := 0
	for _, a := range alive {
		if a {
			live++
		}
	}
	if live == 0 {
		return 0, fmt.Errorf("runtime: no surviving providers")
	}

	// 2. Tear down the old deployment and drain the bookkeeping. New image
	// ids will be allocated for the re-scatters, so stale assembly state
	// and late chunks from the old epoch are unreachable by construction.
	for _, p := range oldProvs {
		if p != nil {
			p.close()
		}
	}
	c.linkMu.Lock()
	for d, o := range c.links {
		o.Close()
		delete(c.links, d)
	}
	c.linkMu.Unlock()
	c.reg.drainAll()
	// Every id allocated so far is now either delivered or dead — including
	// ids whose results fully arrived but whose waiter observed the failure
	// before calling complete() (that race would otherwise wedge the
	// watermark forever). Advance the cursor past all of them; the
	// redeployed providers start with no state for it to guard anyway.
	c.wm.drainThrough(c.nextImg.Load())

	// 3. Re-plan over the survivors, for the objective being served.
	replan := c.opts.Replan
	if replan == nil {
		replan = splitter.ObjectiveReplan(c.opts.Objective)
	}
	newStrat, err := replan(c.env, oldStrat, alive)
	if err != nil {
		return msSince(t0), fmt.Errorf("runtime: re-plan: %w", err)
	}
	plan, err := BuildPlan(c.env, newStrat, c.opts)
	if err != nil {
		return msSince(t0), fmt.Errorf("runtime: re-plan compiled an invalid strategy: %w", err)
	}
	// The survivors' plan may ship different chunk sizes; re-hint the wire
	// buffers before their conns are dialled.
	transport.SetBufferHint(c.tr, plan.maxChunkBytes())

	// 4. Open a new epoch and redeploy the survivors.
	c.failMu.Lock()
	c.epoch++
	epoch := c.epoch
	c.failed = make(chan struct{})
	c.failErr = nil
	c.failIdx = -1
	c.failMu.Unlock()

	provs := make([]*Provider, len(alive))
	addrs := map[int]string{RequesterID: c.ln.Addr()}
	for _, pp := range plan.Providers {
		if !alive[pp.Index] {
			continue
		}
		p, err := newProvider(pp, epoch, c.opts.HeartbeatInterval, c.opts.Batch, c.providerFailFn(epoch), c.tr)
		if err != nil {
			for _, q := range provs {
				if q != nil {
					q.close()
				}
			}
			return msSince(t0), fmt.Errorf("runtime: redeploy provider %d: %w", pp.Index, err)
		}
		provs[pp.Index] = p
		addrs[pp.Index] = p.Addr()
	}
	for _, p := range provs {
		if p != nil {
			p.setPeers(addrs)
		}
	}
	c.provMu.Lock()
	c.providers = provs
	c.strat = newStrat
	c.plan = plan
	c.provMu.Unlock()
	if c.health != nil {
		c.health.arm(epoch, alive)
	}
	return msSince(t0), nil
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1e3
}
