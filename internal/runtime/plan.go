// Package runtime executes a distribution strategy over a pluggable wire
// stack (internal/transport), reproducing the paper's deployment
// (Section V-A): a controller derives per-provider plans from the strategy,
// split-part weights are preloaded, each provider runs three goroutines
// (receive, compute, send) sharing queues, and the requester streams images
// through an admission window — Run keeps one image in flight (the paper's
// protocol: an image is not sent until the previous result returns),
// RunPipelined keeps K in flight so providers overlap different images'
// steps and the run measures sustained throughput.
//
// Compute is emulated: providers sleep for the device model's latency
// (scaled by Options.TimeScale) instead of running CUDA kernels, and
// payloads carry the real activation byte counts (scaled by
// Options.BytesScale). The protocol — framing, routing, assembly, FC
// gathering — is fully real, over whatever medium Options.Transport
// selects: localhost TCP sockets (the default, and the paper's testbed
// shape), in-process channels, trace-shaped links that reproduce the
// simulator's WiFi conditions, or a chaos-injecting decorator.
package runtime

import (
	"fmt"
	"time"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/sim"
	"distredge/internal/strategy"
	"distredge/internal/transport"
)

// RequesterID is the destination index denoting the service requester.
const RequesterID = -1

// Options tunes the emulation scales, run limits and the fault-tolerance
// behaviour.
type Options struct {
	// TimeScale multiplies emulated compute sleeps (1.0 = model latency;
	// tests use small values).
	TimeScale float64
	// BytesScale multiplies payload sizes (1.0 = real activation bytes).
	BytesScale float64
	// Timeout bounds how long the requester waits for any single image
	// before failing the run (default 30s). Cluster-level errors — dead
	// peers, failed sends — abort runs immediately, without waiting it out.
	Timeout time.Duration

	// Batch caps per-step image batching on every provider: when a step
	// becomes ready while the compute thread is busy, up to Batch queued
	// same-step work items (across in-flight images) coalesce into one
	// emulated invocation charged sim.BatchedComputeSec — the per-step
	// fixed cost once plus a marginal share per image. Outputs are still
	// emitted per image, so assembly, gc watermarks, churn recovery and
	// re-scatter are untouched. 1 (or negative) disables batching
	// (bit-identical to the pre-batching compute loop); 0 — the zero value
	// — is the adaptive cap: the compute thread drains every same-step
	// item that queued while it was busy, with no size bound. The sim
	// mirror is PipelineConfig.Batch.
	Batch int

	// Recover turns on online churn recovery: when a provider is declared
	// dead mid-run (missed heartbeats, failed sends), RunPipelined
	// quarantines it, re-plans the strategy over the survivors, redeploys
	// them and re-scatters every incomplete image instead of failing the
	// run. Without it, failure stays sticky (Cluster.Err).
	Recover bool
	// HeartbeatInterval is the period at which every provider beats to the
	// requester over its result link (default 50ms). Negative disables
	// health tracking; failures are then detected only via failed sends.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive missed beats declare a
	// provider dead (default 6).
	HeartbeatMisses int
	// Replan picks the re-planner recovery uses; nil means
	// splitter.ObjectiveReplan(Objective) — profile-guided survivor
	// layouts scored under the serving objective, no training on the
	// serving path (the latency default is splitter.BalancedReplan
	// exactly).
	Replan sim.ReplanFunc
	// Objective is the planning objective the serving strategy was
	// produced with (nil = latency). Recovery's default re-planner
	// re-plans for it, so a throughput-planned deployment recovers into
	// a throughput-shaped layout. Ignored when Replan is set.
	Objective sim.Objective

	// Transport selects the wire stack the cluster deploys over: nil means
	// localhost TCP with the binary chunk codec (the original runtime
	// shape). transport.NewInproc gives a socket-free in-process cluster;
	// transport.NewShaped charges the simulator's WiFi trace latency to
	// every payload byte; transport.NewChaos injects seeded faults. One
	// Transport value is one network namespace — do not share an Inproc
	// across unrelated clusters.
	Transport transport.Transport
}

func (o Options) withDefaults() Options {
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	if o.BytesScale == 0 {
		o.BytesScale = 1
	}
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 50 * time.Millisecond
	}
	if o.HeartbeatInterval < 0 {
		o.HeartbeatInterval = 0 // disabled
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = 6
	}
	if o.Batch < 0 {
		o.Batch = 1
	}
	if o.Transport == nil {
		o.Transport = transport.NewPooledTCP(nil, nil)
	}
	return o
}

// Need is one input dependency of a step: rows [Lo,Hi) of the data produced
// at the given volume generation (-1 = the raw input image).
type Need struct {
	Volume int
	Lo, Hi int
}

// Route is one output obligation of a step: send rows [Lo,Hi) of this
// step's generation to Dest (provider index or RequesterID).
type Route struct {
	Dest   int
	Lo, Hi int
}

// Step is one unit of work a provider performs per image: wait for all
// Needs, "compute" for ComputeSec, then emit Routes.
type Step struct {
	Volume     int // generation this step produces
	Part       cnn.RowRange
	Needs      []Need
	Routes     []Route
	ComputeSec float64
	RowBytes   int // bytes per produced row (scaled)
}

// ProviderPlan is everything provider i must do for each image.
type ProviderPlan struct {
	Index int
	Steps []Step
}

// Plan is the controller's output: per-provider plans plus what the
// requester must scatter and await.
type Plan struct {
	Providers []ProviderPlan
	// Scatter lists the input-image rows each vol-0 provider needs.
	Scatter       []Need // indexed parallel to ScatterDest
	ScatterDest   []int
	InputRowBytes int
	// Await lists the (volume, lo, hi) chunks that complete one image.
	Await []Need
}

// maxChunkBytes returns the largest payload any chunk of this plan ships —
// scatter rows from the requester or routed activation rows between
// providers. Deploy passes it to transport.SetBufferHint so wire buffers
// cover a whole chunk.
func (p *Plan) maxChunkBytes() int {
	max := 0
	for _, need := range p.Scatter {
		if n := (need.Hi - need.Lo) * p.InputRowBytes; n > max {
			max = n
		}
	}
	for _, pp := range p.Providers {
		for _, st := range pp.Steps {
			for _, r := range st.Routes {
				if n := (r.Hi - r.Lo) * st.RowBytes; n > max {
					max = n
				}
			}
		}
	}
	return max
}

// BuildPlan compiles a strategy into a deployment plan. The env supplies
// the model (for geometry) and device profiles (for emulated compute).
func BuildPlan(env *sim.Env, strat *strategy.Strategy, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	n := env.NumProviders()
	if err := strat.Validate(env.Model, n); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	numVol := strat.NumVolumes()
	scale := func(b float64) int {
		v := int(b * opts.BytesScale)
		if v < 1 {
			v = 1
		}
		return v
	}

	plans := make([]ProviderPlan, n)
	for i := range plans {
		plans[i].Index = i
	}
	plan := &Plan{InputRowBytes: scale(env.Model.Layers[0].InRowBytes())}

	// Per-volume parts and input requirements.
	parts := make([][]cnn.RowRange, numVol)
	ins := make([][]cnn.RowRange, numVol)
	for v := 0; v < numVol; v++ {
		layers := strategy.Volume(env.Model, strat.Boundaries, v)
		parts[v] = make([]cnn.RowRange, n)
		ins[v] = make([]cnn.RowRange, n)
		for i := 0; i < n; i++ {
			p := strat.PartRange(env.Model, v, i)
			parts[v][i] = p
			if !p.Empty() {
				ins[v][i] = cnn.VolumeInputRows(layers, p)
			}
		}
	}

	// Steps with needs.
	for v := 0; v < numVol; v++ {
		layers := strategy.Volume(env.Model, strat.Boundaries, v)
		for i := 0; i < n; i++ {
			p := parts[v][i]
			if p.Empty() {
				continue
			}
			st := Step{
				Volume:     v,
				Part:       p,
				ComputeSec: device.VolumeLatency(env.Devices[i], layers, p) * opts.TimeScale,
				RowBytes:   scale(layers[len(layers)-1].OutRowBytes()),
			}
			in := ins[v][i]
			if v == 0 {
				st.Needs = append(st.Needs, Need{Volume: volInput, Lo: in.Lo, Hi: in.Hi})
				plan.Scatter = append(plan.Scatter, Need{Volume: volInput, Lo: in.Lo, Hi: in.Hi})
				plan.ScatterDest = append(plan.ScatterDest, i)
			} else {
				for j := 0; j < n; j++ {
					ov := in.Intersect(parts[v-1][j])
					if ov.Empty() {
						continue
					}
					st.Needs = append(st.Needs, Need{Volume: v - 1, Lo: ov.Lo, Hi: ov.Hi})
				}
			}
			plans[i].Steps = append(plans[i].Steps, st)
		}
	}

	// Routes: producers of volume v feed consumers of volume v+1.
	addRoute := func(i, v int, r Route) {
		for si := range plans[i].Steps {
			if plans[i].Steps[si].Volume == v {
				plans[i].Steps[si].Routes = append(plans[i].Steps[si].Routes, r)
				return
			}
		}
	}
	for v := 0; v+1 < numVol; v++ {
		for i := 0; i < n; i++ {
			if parts[v][i].Empty() {
				continue
			}
			for j := 0; j < n; j++ {
				if parts[v+1][j].Empty() {
					continue
				}
				ov := ins[v+1][j].Intersect(parts[v][i])
				if ov.Empty() {
					continue
				}
				addRoute(i, v, Route{Dest: j, Lo: ov.Lo, Hi: ov.Hi})
			}
		}
	}

	// Final volume: gather at the FC owner if the model has FC layers,
	// otherwise return rows straight to the requester.
	last := numVol - 1
	fcs := env.Model.FCLayers()
	if len(fcs) == 0 {
		for i := 0; i < n; i++ {
			p := parts[last][i]
			if p.Empty() {
				continue
			}
			addRoute(i, last, Route{Dest: RequesterID, Lo: p.Lo, Hi: p.Hi})
			plan.Await = append(plan.Await, Need{Volume: last, Lo: p.Lo, Hi: p.Hi})
		}
	} else {
		owner, best := 0, -1
		for i := 0; i < n; i++ {
			if l := parts[last][i].Len(); l > best {
				best = l
				owner = i
			}
		}
		var fcLat float64
		for _, fc := range fcs {
			fcLat += env.Devices[owner].ComputeLatency(fc, 1)
		}
		fcStep := Step{
			Volume:     numVol, // synthetic FC generation
			Part:       cnn.RowRange{Lo: 0, Hi: 1},
			ComputeSec: fcLat * opts.TimeScale,
			RowBytes:   scale(fcs[len(fcs)-1].OutputBytes()),
			Routes:     []Route{{Dest: RequesterID, Lo: 0, Hi: 1}},
		}
		for i := 0; i < n; i++ {
			p := parts[last][i]
			if p.Empty() {
				continue
			}
			fcStep.Needs = append(fcStep.Needs, Need{Volume: last, Lo: p.Lo, Hi: p.Hi})
			if i == owner {
				// Own rows arrive via a self-route.
				addRoute(i, last, Route{Dest: owner, Lo: p.Lo, Hi: p.Hi})
			} else {
				addRoute(i, last, Route{Dest: owner, Lo: p.Lo, Hi: p.Hi})
			}
		}
		plans[owner].Steps = append(plans[owner].Steps, fcStep)
		plan.Await = append(plan.Await, Need{Volume: numVol, Lo: 0, Hi: 1})
	}

	plan.Providers = plans
	return plan, nil
}
