package runtime

import (
	"fmt"
	"os"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
	"distredge/internal/strategy"
	"distredge/internal/transport"
)

func testEnv(types ...device.Type) *sim.Env {
	devs := device.Fleet(types...)
	net := &network.Network{Requester: network.DefaultLink(network.Constant(200))}
	for range devs {
		net.Providers = append(net.Providers, network.DefaultLink(network.Constant(200)))
	}
	return &sim.Env{Model: cnn.VGG16(), Devices: device.AsModels(devs), Net: net}
}

func equalStrategy(env *sim.Env, boundaries []int) *strategy.Strategy {
	s := &strategy.Strategy{Boundaries: boundaries}
	for v := 0; v+1 < len(boundaries); v++ {
		h := strategy.VolumeHeight(env.Model, boundaries, v)
		s.Splits = append(s.Splits, strategy.EqualCuts(h, env.NumProviders()))
	}
	return s
}

// testTransport builds a fresh transport of the kind under test. The
// DISTREDGE_TEST_TRANSPORT environment variable selects the suite-wide
// default — "inproc" (the default: fast, race-clean, no socket timing),
// "tcp" (binary codec) or "tcp+gob" (the legacy wire format) — so CI runs
// the same suites over sockets and over channels. Tests that pin a
// transport (equivalence, shaped/chaos differentials) construct their own.
func testTransport() transport.Transport {
	switch v := os.Getenv("DISTREDGE_TEST_TRANSPORT"); v {
	case "", "inproc":
		// Pooled, like the serving defaults: the whole runtime suite (and
		// the race job) then exercises payload buffer reuse.
		return transport.NewPooledInproc(nil)
	case "tcp":
		return transport.NewPooledTCP(nil, nil)
	case "tcp+gob":
		return transport.NewTCP(transport.Gob())
	case "tcp+deflate":
		return transport.NewPooledTCP(transport.Deflate(), nil)
	default:
		panic(fmt.Sprintf("unknown DISTREDGE_TEST_TRANSPORT %q (want inproc|tcp|tcp+gob|tcp+deflate)", v))
	}
}

func fastOpts() Options {
	return Options{TimeScale: 0.002, BytesScale: 0.001, Transport: testTransport()}
}

func TestBuildPlanCoverage(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := equalStrategy(env, []int{0, 10, 14, 18})
	plan, err := BuildPlan(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Providers) != 4 {
		t.Fatalf("plans = %d, want 4", len(plan.Providers))
	}
	if len(plan.Scatter) == 0 || len(plan.Await) == 0 {
		t.Fatal("plan must scatter inputs and await results")
	}
	// Every step must have needs and a positive compute time.
	for _, pp := range plan.Providers {
		for _, st := range pp.Steps {
			if len(st.Needs) == 0 {
				t.Errorf("provider %d volume %d: no needs", pp.Index, st.Volume)
			}
			if st.ComputeSec <= 0 {
				t.Errorf("provider %d volume %d: no compute", pp.Index, st.Volume)
			}
			if st.RowBytes < 1 {
				t.Errorf("provider %d volume %d: bad row bytes", pp.Index, st.Volume)
			}
		}
	}
	// VGG-16 has FC layers: exactly one provider carries the synthetic FC
	// step, and the await set is that single chunk.
	fcSteps := 0
	for _, pp := range plan.Providers {
		for _, st := range pp.Steps {
			if st.Volume == s.NumVolumes() {
				fcSteps++
			}
		}
	}
	if fcSteps != 1 {
		t.Errorf("fc steps = %d, want 1", fcSteps)
	}
	if len(plan.Await) != 1 {
		t.Errorf("await = %v, want the single FC result", plan.Await)
	}
}

func TestBuildPlanFullyConvolutional(t *testing.T) {
	devs := device.Fleet(device.Nano, device.Nano)
	net := &network.Network{Requester: network.DefaultLink(network.Constant(100))}
	for range devs {
		net.Providers = append(net.Providers, network.DefaultLink(network.Constant(100)))
	}
	env := &sim.Env{Model: cnn.YOLOv2(), Devices: device.AsModels(devs), Net: net}
	s := equalStrategy(env, strategy.PoolBoundaries(env.Model))
	plan, err := BuildPlan(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// No FC: both providers return rows directly.
	if len(plan.Await) != 2 {
		t.Errorf("await = %d chunks, want 2", len(plan.Await))
	}
}

func TestBuildPlanRejectsInvalid(t *testing.T) {
	env := testEnv(device.Nano, device.Nano)
	bad := &strategy.Strategy{Boundaries: []int{0, 5}}
	if _, err := BuildPlan(env, bad, fastOpts()); err == nil {
		t.Fatal("invalid strategy must be rejected")
	}
}

func TestClusterRunsImages(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	s := equalStrategy(env, []int{0, 10, 14, 18})
	cluster, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.NumProviders() != 4 {
		t.Fatalf("providers = %d", cluster.NumProviders())
	}
	stats, err := cluster.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Images != 5 || len(stats.PerImageMS) != 5 {
		t.Fatalf("stats wrong: %+v", stats)
	}
	if stats.IPS <= 0 {
		t.Fatal("IPS must be positive")
	}
	for i, ms := range stats.PerImageMS {
		if ms <= 0 {
			t.Errorf("image %d latency %gms", i, ms)
		}
	}
}

func TestClusterSlowDeviceShowsInLatency(t *testing.T) {
	// The same strategy on a fleet with an (emulated) slower device must be
	// slower end-to-end — the sleep emulation is really on the path.
	fast := testEnv(device.Xavier, device.Xavier)
	slow := testEnv(device.Nano, device.Nano)
	bound := []int{0, 10, 14, 18}

	run := func(env *sim.Env) float64 {
		opts := Options{TimeScale: 0.02, BytesScale: 0.001, Batch: 1, Transport: testTransport()}
		s := equalStrategy(env, bound)
		cl, err := Deploy(env, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		st, err := cl.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		return st.TotalSec
	}
	if f, s := run(fast), run(slow); s <= f {
		t.Errorf("slow fleet (%gs) not slower than fast fleet (%gs)", s, f)
	}
}

func TestClusterOffloadShape(t *testing.T) {
	// Offload strategy: only one provider computes; the run must still
	// complete (routes skip idle providers).
	env := testEnv(device.Xavier, device.Pi3)
	b := strategy.SingleVolume(env.Model)
	h := strategy.VolumeHeight(env.Model, b, 0)
	s := &strategy.Strategy{Boundaries: b, Splits: [][]int{strategy.AllOnProvider(h, 2, 0)}}
	cl, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Run(2); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsZeroImages(t *testing.T) {
	env := testEnv(device.Nano, device.Nano)
	s := equalStrategy(env, []int{0, 18})
	cl, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Run(0); err == nil {
		t.Fatal("zero images must error")
	}
}

func TestCloseIdempotent(t *testing.T) {
	env := testEnv(device.Nano, device.Nano)
	s := equalStrategy(env, []int{0, 18})
	cl, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close() // must not panic
}

func TestClusterStats(t *testing.T) {
	env := testEnv(device.Xavier, device.Pi3)
	s := offloadLikeStrategy(env)
	cl, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Run(4); err != nil {
		t.Fatal(err)
	}
	stats := cl.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %d entries", len(stats))
	}
	// The Xavier did all the work; the Pi3 was never scheduled.
	if stats[0].ComputeSec <= 0 || stats[0].StepsExecuted == 0 {
		t.Errorf("active provider shows no work: %+v", stats[0])
	}
	if stats[1].ComputeSec != 0 || stats[1].StepsExecuted != 0 {
		t.Errorf("idle provider shows work: %+v", stats[1])
	}
	if stats[0].ChunksReceived == 0 || stats[0].ChunksSent == 0 {
		t.Errorf("active provider moved no chunks: %+v", stats[0])
	}
}

func offloadLikeStrategy(env *sim.Env) *strategy.Strategy {
	b := strategy.SingleVolume(env.Model)
	h := strategy.VolumeHeight(env.Model, b, 0)
	return &strategy.Strategy{Boundaries: b, Splits: [][]int{strategy.AllOnProvider(h, env.NumProviders(), 0)}}
}
