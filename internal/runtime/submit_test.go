package runtime

import (
	"strings"
	"sync"
	"testing"

	"distredge/internal/device"
)

// TestScatterFailureDropsRegistration is the regression test for the
// admission leak: when the input scatter fails, the just-registered image
// can never complete, so its pending set and done channel must be dropped
// and the gc watermark advanced past its id. Before the fix the dead id
// wedged gcLow forever, so provider assembly state above it was never
// collected again.
func TestScatterFailureDropsRegistration(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano)
	s := equalStrategy(env, []int{0, 10, 18})
	cl, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Kill a scatter destination before anything is admitted, so the very
	// first image's input scatter fails.
	cl.provMu.Lock()
	dest := cl.plan.ScatterDest[0]
	cl.provMu.Unlock()
	if err := cl.KillProvider(dest); err != nil {
		t.Fatal(err)
	}

	if err := cl.Submit(); err == nil {
		t.Fatal("Submit through a dead scatter destination must fail")
	}
	// The failed admission must leave no bookkeeping behind: the watermark
	// has passed the dead id and nothing is pending or armed.
	bk := cl.bookkeeping()
	if bk.nextImg == 0 {
		t.Fatal("no image was ever registered — the scatter did not run")
	}
	if bk.pending != 0 || bk.arrived != 0 || bk.completed != 0 || bk.gcLow != bk.nextImg+1 {
		t.Errorf("failed admission leaked bookkeeping: pending=%d arrived=%d completed=%d gcLow=%d nextImg=%d (want gcLow=nextImg+1 and all maps empty)",
			bk.pending, bk.arrived, bk.completed, bk.gcLow, bk.nextImg)
	}
	// Failure is sticky on a non-recover cluster.
	if err := cl.Submit(); err == nil || !strings.Contains(err.Error(), "already failed") {
		t.Errorf("second Submit err = %v, want sticky already-failed", err)
	}
}

// TestSubmitConcurrent smoke-tests the shared-cluster admission path the
// gateway multiplexes tenants over: many goroutines Submit through one
// deployment at once, every request completes, and the requester
// bookkeeping drains to a clean watermark.
func TestSubmitConcurrent(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano)
	s := equalStrategy(env, []int{0, 10, 18})
	cl, err := Deploy(env, s, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cl.Submit()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("submit %d: %v", i, err)
		}
	}
	bk := cl.bookkeeping()
	if bk.nextImg != n {
		t.Errorf("allocated %d ids for %d submits", bk.nextImg, n)
	}
	if bk.pending != 0 || bk.completed != 0 || bk.gcLow != bk.nextImg+1 {
		t.Errorf("bookkeeping leaked after concurrent submits: pending=%d completed=%d gcLow=%d nextImg=%d",
			bk.pending, bk.completed, bk.gcLow, bk.nextImg)
	}
}
