package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulAB(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MulAB(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.A[i] != v {
			t.Fatalf("MulAB = %v, want %v", c.A, want)
		}
	}
}

func TestMulVariantsAgree(t *testing.T) {
	// Property: MulABT(a,b) == MulAB(a, bᵀ) and MulATB(a,b) == MulAB(aᵀ, b).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, k, n := rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(5)+1
		a := New(m, k)
		a.Randomize(rng, 1)
		b := New(n, k)
		b.Randomize(rng, 1)
		bt := New(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		x := MulABT(a, b)
		y := MulAB(a, bt)
		for i := range x.A {
			if math.Abs(x.A[i]-y.A[i]) > 1e-12 {
				t.Fatal("MulABT disagrees with MulAB on transposed operand")
			}
		}
		c := New(k, m)
		c.Randomize(rng, 1)
		ct := New(m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				ct.Set(j, i, c.At(i, j))
			}
		}
		d := New(k, n)
		d.Randomize(rng, 1)
		x = MulATB(c, d)
		y = MulAB(ct, d)
		for i := range x.A {
			if math.Abs(x.A[i]-y.A[i]) > 1e-12 {
				t.Fatal("MulATB disagrees with MulAB on transposed operand")
			}
		}
	}
}

func TestIdentityMultiplication(t *testing.T) {
	f := func(vals [6]int8) bool {
		a := New(2, 3)
		for i := range vals {
			a.A[i] = float64(vals[i])
		}
		id := FromSlice(3, 3, []float64{1, 0, 0, 0, 1, 0, 0, 0, 1})
		c := MulAB(a, id)
		for i := range a.A {
			if c.A[i] != a.A[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddRowVecAndSumRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	m.AddRowVec([]float64{10, 20, 30})
	if m.At(0, 0) != 11 || m.At(1, 2) != 36 {
		t.Fatalf("AddRowVec wrong: %v", m.A)
	}
	s := m.SumRows()
	if s[0] != 25 || s[1] != 47 || s[2] != 69 {
		t.Fatalf("SumRows = %v", s)
	}
}

func TestHStackCols(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 1, []float64{9, 8})
	c := HStack(a, b)
	if c.C != 3 || c.At(0, 2) != 9 || c.At(1, 2) != 8 {
		t.Fatalf("HStack wrong: %v", c.A)
	}
	d := c.Cols(1, 3)
	if d.C != 2 || d.At(0, 0) != 2 || d.At(1, 1) != 8 {
		t.Fatalf("Cols wrong: %v", d.A)
	}
}

func TestApplyScaleAddScaled(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, -2, 3})
	m.Apply(math.Abs).Scale(2)
	if m.A[1] != 4 {
		t.Fatalf("Apply/Scale wrong: %v", m.A)
	}
	o := FromSlice(1, 3, []float64{1, 1, 1})
	m.AddScaled(o, 0.5)
	if m.A[0] != 2.5 {
		t.Fatalf("AddScaled wrong: %v", m.A)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.A[0] = 99
	if a.A[0] == 99 {
		t.Error("Clone must deep-copy")
	}
	a.Zero()
	if a.A[1] != 0 {
		t.Error("Zero must clear")
	}
}

func TestPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("MulAB shape", func() { MulAB(New(2, 3), New(2, 3)) })
	assertPanics("MulABT shape", func() { MulABT(New(2, 3), New(2, 4)) })
	assertPanics("MulATB shape", func() { MulATB(New(2, 3), New(3, 3)) })
	assertPanics("FromSlice len", func() { FromSlice(2, 2, []float64{1}) })
	assertPanics("AddRowVec len", func() { New(1, 2).AddRowVec([]float64{1}) })
	assertPanics("HStack rows", func() { HStack(New(1, 2), New(2, 2)) })
	assertPanics("Cols range", func() { New(1, 2).Cols(1, 5) })
	assertPanics("AddScaled shape", func() { New(1, 2).AddScaled(New(2, 1), 1) })
	assertPanics("negative dims", func() { New(-1, 2) })
}
