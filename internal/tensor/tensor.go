// Package tensor provides the dense float64 matrix operations the neural
// network and DDPG packages are built on. Matrices are row-major; rows are
// samples in minibatch operations.
package tensor

import (
	"fmt"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	A    []float64
}

// New returns a zeroed RxC matrix.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", r, c))
	}
	return &Mat{R: r, C: c, A: make([]float64, r*c)}
}

// FromSlice wraps data (length r*c, row-major) in a matrix without copying.
func FromSlice(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: %d values for %dx%d matrix", len(data), r, c))
	}
	return &Mat{R: r, C: c, A: data}
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.A[i*m.C+j] }

// Set assigns element (i,j).
func (m *Mat) Set(i, j int, v float64) { m.A[i*m.C+j] = v }

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 { return m.A[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := New(m.R, m.C)
	copy(c.A, m.A)
	return c
}

// Zero clears all elements in place.
func (m *Mat) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// Randomize fills the matrix with U(-scale, scale) values.
func (m *Mat) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.A {
		m.A[i] = (2*rng.Float64() - 1) * scale
	}
}

// MulAB returns a·b for a (m×k) and b (k×n).
func MulAB(a, b *Mat) *Mat {
	return MulABInto(New(a.R, b.C), a, b)
}

// MulABInto computes a·b into out (a.R × b.C), reusing out's storage. Each
// output element accumulates its terms in ascending k order (skipping zero
// a-elements, as MulAB always has), so results are bit-identical to the
// naive loop on finite values; out must not alias a or b. The k-outer loop
// streams b's rows sequentially and skips entire rows for the zeros ReLU
// activations produce in bulk.
func MulABInto(out, a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: MulAB %dx%d · %dx%d", a.R, a.C, b.R, b.C))
	}
	if out.R != a.R || out.C != b.C {
		panic(fmt.Sprintf("tensor: MulABInto out %dx%d for %dx%d product", out.R, out.C, a.R, b.C))
	}
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		clear(orow)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			odst := orow[:len(brow)] // hoist the bounds check out of the loop
			for j, bv := range brow {
				odst[j] += av * bv
			}
		}
	}
	return out
}

// MulABT returns a·bᵀ for a (m×k) and b (n×k).
func MulABT(a, b *Mat) *Mat {
	return MulABTInto(New(a.R, b.R), a, b)
}

// MulABTInto computes a·bᵀ into out (a.R × b.R), reusing out's storage;
// out must not alias a or b. The k-outer loop shape keeps the additions of
// different output columns on independent dependency chains (hiding the
// FMA latency a naive dot product serialises on) and skips entire columns
// for the zeros ReLU backpropagation produces in bulk. Each output element
// accumulates its terms in ascending k order, so results match the naive
// dot product bit-for-bit on finite values.
func MulABTInto(out, a, b *Mat) *Mat {
	if a.C != b.C {
		panic(fmt.Sprintf("tensor: MulABT %dx%d · (%dx%d)ᵀ", a.R, a.C, b.R, b.C))
	}
	if out.R != a.R || out.C != b.R {
		panic(fmt.Sprintf("tensor: MulABTInto out %dx%d for %dx%d product", out.R, out.C, a.R, b.R))
	}
	bc := b.C
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			bcol := b.A[k:]
			for j := range orow {
				orow[j] += av * bcol[j*bc]
			}
		}
	}
	return out
}

// MulATB returns aᵀ·b for a (k×m) and b (k×n).
func MulATB(a, b *Mat) *Mat {
	return MulATBInto(New(a.C, b.C), a, b)
}

// MulATBInto computes aᵀ·b into out (a.C × b.C), reusing out's storage;
// out must not alias a or b.
func MulATBInto(out, a, b *Mat) *Mat {
	if a.R != b.R {
		panic(fmt.Sprintf("tensor: MulATB (%dx%d)ᵀ · %dx%d", a.R, a.C, b.R, b.C))
	}
	if out.R != a.C || out.C != b.C {
		panic(fmt.Sprintf("tensor: MulATBInto out %dx%d for %dx%d product", out.R, out.C, a.C, b.C))
	}
	// The k-outer loop streams a, b and out rows sequentially and skips
	// zero a-elements; per-element accumulation stays in ascending k order.
	out.Zero()
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			odst := out.Row(i)[:len(brow)]
			for j, bv := range brow {
				odst[j] += av * bv
			}
		}
	}
	return out
}

// TransposeInto writes mᵀ into out (m.C × m.R), reusing out's storage.
func TransposeInto(out, m *Mat) *Mat {
	if out.R != m.C || out.C != m.R {
		panic(fmt.Sprintf("tensor: TransposeInto out %dx%d for %dx%d", out.R, out.C, m.C, m.R))
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.A[j*out.C+i] = v
		}
	}
	return out
}

// AddRowVec adds vector v to every row of m in place (bias broadcast).
func (m *Mat) AddRowVec(v []float64) {
	if len(v) != m.C {
		panic(fmt.Sprintf("tensor: AddRowVec len %d to %d cols", len(v), m.C))
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)[:len(v)]
		for j, vv := range v {
			row[j] += vv
		}
	}
}

// SumRows returns the column-wise sum of m (gradient of a broadcast bias).
func (m *Mat) SumRows() []float64 {
	return m.SumRowsInto(make([]float64, m.C))
}

// SumRowsInto computes the column-wise sum of m into out (length m.C).
func (m *Mat) SumRowsInto(out []float64) []float64 {
	if len(out) != m.C {
		panic(fmt.Sprintf("tensor: SumRowsInto len %d for %d cols", len(out), m.C))
	}
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		odst := out[:len(row)]
		for j, v := range row {
			odst[j] += v
		}
	}
	return out
}

// Apply replaces every element x with f(x) in place and returns m.
func (m *Mat) Apply(f func(float64) float64) *Mat {
	for i, v := range m.A {
		m.A[i] = f(v)
	}
	return m
}

// Scale multiplies every element by s in place and returns m.
func (m *Mat) Scale(s float64) *Mat {
	for i := range m.A {
		m.A[i] *= s
	}
	return m
}

// AddScaled performs m += s*o element-wise in place.
func (m *Mat) AddScaled(o *Mat, s float64) {
	if m.R != o.R || m.C != o.C {
		panic(fmt.Sprintf("tensor: AddScaled %dx%d += %dx%d", m.R, m.C, o.R, o.C))
	}
	for i, v := range o.A {
		m.A[i] += s * v
	}
}

// HStack concatenates a and b column-wise (same row count).
func HStack(a, b *Mat) *Mat {
	return HStackInto(New(a.R, a.C+b.C), a, b)
}

// HStackInto concatenates a and b column-wise into out (a.R × a.C+b.C).
func HStackInto(out, a, b *Mat) *Mat {
	if a.R != b.R {
		panic(fmt.Sprintf("tensor: HStack %dx%d | %dx%d", a.R, a.C, b.R, b.C))
	}
	if out.R != a.R || out.C != a.C+b.C {
		panic(fmt.Sprintf("tensor: HStackInto out %dx%d for %dx%d", out.R, out.C, a.R, a.C+b.C))
	}
	for i := 0; i < a.R; i++ {
		copy(out.Row(i)[:a.C], a.Row(i))
		copy(out.Row(i)[a.C:], b.Row(i))
	}
	return out
}

// Cols returns a copy of columns [lo,hi) of m.
func (m *Mat) Cols(lo, hi int) *Mat {
	if lo < 0 || hi > m.C || lo > hi {
		panic(fmt.Sprintf("tensor: Cols [%d,%d) of %d", lo, hi, m.C))
	}
	return m.ColsInto(New(m.R, hi-lo), lo, hi)
}

// ColsInto copies columns [lo,hi) of m into out (m.R × hi-lo).
func (m *Mat) ColsInto(out *Mat, lo, hi int) *Mat {
	if lo < 0 || hi > m.C || lo > hi {
		panic(fmt.Sprintf("tensor: Cols [%d,%d) of %d", lo, hi, m.C))
	}
	if out.R != m.R || out.C != hi-lo {
		panic(fmt.Sprintf("tensor: ColsInto out %dx%d for %dx%d", out.R, out.C, m.R, hi-lo))
	}
	for i := 0; i < m.R; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}
