// Package tensor provides the dense float64 matrix operations the neural
// network and DDPG packages are built on. Matrices are row-major; rows are
// samples in minibatch operations.
package tensor

import (
	"fmt"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	A    []float64
}

// New returns a zeroed RxC matrix.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", r, c))
	}
	return &Mat{R: r, C: c, A: make([]float64, r*c)}
}

// FromSlice wraps data (length r*c, row-major) in a matrix without copying.
func FromSlice(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: %d values for %dx%d matrix", len(data), r, c))
	}
	return &Mat{R: r, C: c, A: data}
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.A[i*m.C+j] }

// Set assigns element (i,j).
func (m *Mat) Set(i, j int, v float64) { m.A[i*m.C+j] = v }

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 { return m.A[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := New(m.R, m.C)
	copy(c.A, m.A)
	return c
}

// Zero clears all elements in place.
func (m *Mat) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// Randomize fills the matrix with U(-scale, scale) values.
func (m *Mat) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.A {
		m.A[i] = (2*rng.Float64() - 1) * scale
	}
}

// MulAB returns a·b for a (m×k) and b (k×n).
func MulAB(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: MulAB %dx%d · %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulABT returns a·bᵀ for a (m×k) and b (n×k).
func MulABT(a, b *Mat) *Mat {
	if a.C != b.C {
		panic(fmt.Sprintf("tensor: MulABT %dx%d · (%dx%d)ᵀ", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.R)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.R; j++ {
			brow := b.Row(j)
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// MulATB returns aᵀ·b for a (k×m) and b (k×n).
func MulATB(a, b *Mat) *Mat {
	if a.R != b.R {
		panic(fmt.Sprintf("tensor: MulATB (%dx%d)ᵀ · %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.C, b.C)
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// AddRowVec adds vector v to every row of m in place (bias broadcast).
func (m *Mat) AddRowVec(v []float64) {
	if len(v) != m.C {
		panic(fmt.Sprintf("tensor: AddRowVec len %d to %d cols", len(v), m.C))
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// SumRows returns the column-wise sum of m (gradient of a broadcast bias).
func (m *Mat) SumRows() []float64 {
	out := make([]float64, m.C)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Apply replaces every element x with f(x) in place and returns m.
func (m *Mat) Apply(f func(float64) float64) *Mat {
	for i, v := range m.A {
		m.A[i] = f(v)
	}
	return m
}

// Scale multiplies every element by s in place and returns m.
func (m *Mat) Scale(s float64) *Mat {
	for i := range m.A {
		m.A[i] *= s
	}
	return m
}

// AddScaled performs m += s*o element-wise in place.
func (m *Mat) AddScaled(o *Mat, s float64) {
	if m.R != o.R || m.C != o.C {
		panic(fmt.Sprintf("tensor: AddScaled %dx%d += %dx%d", m.R, m.C, o.R, o.C))
	}
	for i, v := range o.A {
		m.A[i] += s * v
	}
}

// HStack concatenates a and b column-wise (same row count).
func HStack(a, b *Mat) *Mat {
	if a.R != b.R {
		panic(fmt.Sprintf("tensor: HStack %dx%d | %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, a.C+b.C)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i)[:a.C], a.Row(i))
		copy(out.Row(i)[a.C:], b.Row(i))
	}
	return out
}

// Cols returns a copy of columns [lo,hi) of m.
func (m *Mat) Cols(lo, hi int) *Mat {
	if lo < 0 || hi > m.C || lo > hi {
		panic(fmt.Sprintf("tensor: Cols [%d,%d) of %d", lo, hi, m.C))
	}
	out := New(m.R, hi-lo)
	for i := 0; i < m.R; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}
