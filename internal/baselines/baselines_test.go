package baselines

import (
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
	"distredge/internal/strategy"
)

func testEnv(bw float64, types ...device.Type) *sim.Env {
	devs := device.Fleet(types...)
	net := &network.Network{Requester: network.DefaultLink(network.Constant(bw))}
	for range devs {
		net.Providers = append(net.Providers, network.DefaultLink(network.Constant(bw)))
	}
	return &sim.Env{Model: cnn.VGG16(), Devices: device.AsModels(devs), Net: net}
}

func TestAllMethodsPlanValidStrategies(t *testing.T) {
	env := testEnv(200, device.Xavier, device.TX2, device.Nano, device.Pi3)
	for _, m := range All() {
		s, err := Plan(m, env)
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if err := s.Validate(env.Model, 4); err != nil {
			t.Errorf("%s: invalid strategy: %v", m, err)
			continue
		}
		if lat, _, err := env.Latency(s, 0); err != nil || lat <= 0 {
			t.Errorf("%s: strategy does not execute: lat=%g err=%v", m, lat, err)
		}
	}
}

func TestUnknownMethod(t *testing.T) {
	env := testEnv(100, device.Nano, device.Nano)
	if _, err := Plan(Method("Mystery"), env); err == nil {
		t.Error("unknown method must error")
	}
}

func TestAllOrder(t *testing.T) {
	ms := All()
	if len(ms) != 7 || ms[0] != CoEdge || ms[6] != Offload {
		t.Errorf("method order wrong: %v", ms)
	}
}

func TestOffloadPicksBestDevice(t *testing.T) {
	env := testEnv(100, device.Pi3, device.Nano, device.Xavier, device.TX2)
	s, err := Plan(Offload, env)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVolumes() != 1 {
		t.Fatalf("offload must use one volume, got %d", s.NumVolumes())
	}
	h := strategy.VolumeHeight(env.Model, s.Boundaries, 0)
	// Xavier is index 2.
	if r := strategy.CutRange(s.Splits[0], h, 2); r.Len() != h {
		t.Errorf("offload did not pick Xavier: %v", s.Splits[0])
	}
}

func TestLayerByLayerMethodsUsePerLayerVolumes(t *testing.T) {
	env := testEnv(100, device.Nano, device.Xavier)
	for _, m := range []Method{CoEdge, MoDNN, MeDNN} {
		s, err := Plan(m, env)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumVolumes() != env.Model.NumSplittable() {
			t.Errorf("%s: %d volumes, want %d", m, s.NumVolumes(), env.Model.NumSplittable())
		}
	}
}

func TestFusedMethodsUseFewVolumes(t *testing.T) {
	env := testEnv(100, device.Nano, device.Xavier)
	dt, _ := Plan(DeepThings, env)
	if dt.NumVolumes() != 1 {
		t.Errorf("DeepThings: %d volumes, want 1", dt.NumVolumes())
	}
	dpt, _ := Plan(DeeperThings, env)
	if dpt.NumVolumes() <= 1 || dpt.NumVolumes() >= env.Model.NumSplittable() {
		t.Errorf("DeeperThings: %d volumes, want a few", dpt.NumVolumes())
	}
	aofl, _ := Plan(AOFL, env)
	if aofl.NumVolumes() > dpt.NumVolumes() {
		t.Errorf("AOFL chose more volumes (%d) than the pool partition (%d)", aofl.NumVolumes(), dpt.NumVolumes())
	}
}

func TestEqualSplitIsEqual(t *testing.T) {
	env := testEnv(100, device.Nano, device.Xavier, device.TX2)
	s, _ := Plan(DeepThings, env)
	h := strategy.VolumeHeight(env.Model, s.Boundaries, 0)
	for i := 0; i < 3; i++ {
		l := strategy.CutRange(s.Splits[0], h, i).Len()
		if l < h/3-1 || l > h/3+1 {
			t.Errorf("DeepThings part %d has %d rows of %d", i, l, h)
		}
	}
}

func TestProportionalMethodsFavourFastDevices(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Pi3)
	for _, m := range []Method{MoDNN, MeDNN} {
		s, err := Plan(m, env)
		if err != nil {
			t.Fatal(err)
		}
		// On the first conv layer, Xavier must receive far more rows.
		h := strategy.VolumeHeight(env.Model, s.Boundaries, 0)
		xa := strategy.CutRange(s.Splits[0], h, 0).Len()
		pi := strategy.CutRange(s.Splits[0], h, 1).Len()
		if xa <= 10*pi {
			t.Errorf("%s: Xavier %d rows vs Pi3 %d rows — not capability-proportional", m, xa, pi)
		}
	}
	// CoEdge's weights include the (shared) bandwidth term, so the contrast
	// shows on a compute-heavy deep layer rather than the bandwidth-bound
	// first layer: conv5_1 is volume index 14 in layer-by-layer VGG-16.
	co, err := Plan(CoEdge, env)
	if err != nil {
		t.Fatal(err)
	}
	const conv51 = 14
	h := strategy.VolumeHeight(env.Model, co.Boundaries, conv51)
	xa := strategy.CutRange(co.Splits[conv51], h, 0).Len()
	pi := strategy.CutRange(co.Splits[conv51], h, 1).Len()
	if xa <= 5*pi {
		t.Errorf("CoEdge: Xavier %d rows vs Pi3 %d rows on conv5_1", xa, pi)
	}
}

func TestCoEdgeAccountsForBandwidth(t *testing.T) {
	// Same device types, very different bandwidths: CoEdge must give the
	// low-bandwidth device fewer rows; MoDNN (compute only) must not care.
	devs := device.Fleet(device.Nano, device.Nano)
	net := &network.Network{
		Requester: network.DefaultLink(network.Constant(300)),
		Providers: []network.Link{
			network.DefaultLink(network.Constant(5)),
			network.DefaultLink(network.Constant(300)),
		},
	}
	env := &sim.Env{Model: cnn.VGG16(), Devices: device.AsModels(devs), Net: net}
	co, _ := Plan(CoEdge, env)
	mo, _ := Plan(MoDNN, env)
	h := strategy.VolumeHeight(env.Model, co.Boundaries, 0)
	coSlow := strategy.CutRange(co.Splits[0], h, 0).Len()
	coFast := strategy.CutRange(co.Splits[0], h, 1).Len()
	if coSlow >= coFast {
		t.Errorf("CoEdge ignored bandwidth: slow %d, fast %d", coSlow, coFast)
	}
	moSlow := strategy.CutRange(mo.Splits[0], h, 0).Len()
	moFast := strategy.CutRange(mo.Splits[0], h, 1).Len()
	if moSlow != moFast && moSlow+1 != moFast && moSlow != moFast+1 {
		t.Errorf("MoDNN should split equally across equal devices: %d vs %d", moSlow, moFast)
	}
}

func TestMeDNNRefinementChangesPlan(t *testing.T) {
	// MeDNN's measured rebalancing must actually alter MoDNN's allocation
	// on a nonlinear fleet. (It is not guaranteed to *help*: proportional
	// rebalancing against a staircase latency can misfire — exactly the
	// linearity trap the paper describes — so we only require a valid,
	// different plan in the same performance regime.)
	env := testEnv(300, device.Xavier, device.Nano, device.Nano, device.Nano)
	mo, _ := Plan(MoDNN, env)
	me, _ := Plan(MeDNN, env)
	same := true
	for v := range mo.Splits {
		for j := range mo.Splits[v] {
			if mo.Splits[v][j] != me.Splits[v][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("MeDNN refinement did not change MoDNN's plan")
	}
	latMo, _, err := env.Latency(mo, 0)
	if err != nil {
		t.Fatal(err)
	}
	latMe, _, err := env.Latency(me, 0)
	if err != nil {
		t.Fatal(err)
	}
	if latMe > 3*latMo || latMo > 3*latMe {
		t.Errorf("MeDNN (%.4gs) and MoDNN (%.4gs) in wildly different regimes", latMe, latMo)
	}
}

func TestAOFLBeatsLayerByLayerOnSlowNetwork(t *testing.T) {
	// At 50 Mbps, fusing must beat layer-by-layer splitting (the paper's
	// Fig. 15 story).
	env := testEnv(50, device.Xavier, device.Xavier, device.Nano, device.Nano)
	aofl, _ := Plan(AOFL, env)
	co, _ := Plan(CoEdge, env)
	latA, _, err := env.Latency(aofl, 0)
	if err != nil {
		t.Fatal(err)
	}
	latC, _, err := env.Latency(co, 0)
	if err != nil {
		t.Fatal(err)
	}
	if latA >= latC {
		t.Errorf("AOFL %.4gs not faster than CoEdge %.4gs", latA, latC)
	}
}

func TestPlanOnAllZooModels(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo sweep in short mode")
	}
	for name, m := range cnn.Zoo() {
		devs := device.Fleet(device.Xavier, device.Xavier, device.Nano, device.Nano)
		net := &network.Network{Requester: network.DefaultLink(network.Constant(50))}
		for range devs {
			net.Providers = append(net.Providers, network.DefaultLink(network.Constant(50)))
		}
		env := &sim.Env{Model: m, Devices: device.AsModels(devs), Net: net}
		for _, meth := range All() {
			s, err := Plan(meth, env)
			if err != nil {
				t.Errorf("%s/%s: %v", name, meth, err)
				continue
			}
			if lat, _, err := env.Latency(s, 0); err != nil || lat <= 0 {
				t.Errorf("%s/%s: lat=%g err=%v", name, meth, lat, err)
			}
		}
	}
}
