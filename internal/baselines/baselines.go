// Package baselines implements the seven state-of-the-art CNN inference
// distribution methods DistrEdge is compared against (Section V-B):
//
//	CoEdge        — linear models for devices and networks, layer-by-layer
//	MoDNN         — linear models for devices, layer-by-layer
//	MeDNN         — linear models for devices + deployment refinement,
//	                layer-by-layer
//	DeepThings    — equal split, one fused layer-volume
//	DeeperThings  — equal split, multiple fused layer-volumes
//	AOFL          — linear models for devices and networks, multiple fused
//	                layer-volumes (partition by linear-cost search)
//	Offload       — everything on the provider with the best hardware
//
// Every method plans with the *linear* device/network view its original
// paper assumes (a capability scalar measured from a whole-model run, and
// nominal bandwidths without I/O costs); the resulting strategies are then
// executed on the true nonlinear simulator. That gap is exactly what the
// DistrEdge paper exploits (Section V-G).
package baselines

import (
	"fmt"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// Method names a baseline.
type Method string

// The seven baselines, in the paper's presentation order.
const (
	CoEdge       Method = "CoEdge"
	MoDNN        Method = "MoDNN"
	MeDNN        Method = "MeDNN"
	DeepThings   Method = "DeepThings"
	DeeperThings Method = "DeeperThings"
	AOFL         Method = "AOFL"
	Offload      Method = "Offload"
)

// All returns the baselines in presentation order (Fig. 7-11).
func All() []Method {
	return []Method{CoEdge, MoDNN, MeDNN, DeepThings, DeeperThings, AOFL, Offload}
}

// linearView is what a linear-model method measures about the environment:
// one ops/sec scalar per device and one Mbps scalar per link.
type linearView struct {
	cap []float64 // operations per second per provider
	bw  []float64 // mean link bandwidth per provider, bits/s
}

func newLinearView(env *sim.Env) linearView {
	v := linearView{
		cap: make([]float64, env.NumProviders()),
		bw:  make([]float64, env.NumProviders()),
	}
	for i, d := range env.Devices {
		v.cap[i] = device.LinearCapability(d, env.Model)
		v.bw[i] = env.Net.Providers[i].Trace.Mean() * 1e6
	}
	return v
}

// Plan returns the strategy the given baseline method would deploy in this
// environment.
func Plan(m Method, env *sim.Env) (*strategy.Strategy, error) {
	if env.NumProviders() < 1 {
		return nil, fmt.Errorf("baselines: no providers")
	}
	switch m {
	case CoEdge:
		return planLayerByLayer(env, weightsCompNet), nil
	case MoDNN:
		return planLayerByLayer(env, weightsCompOnly), nil
	case MeDNN:
		return planMeDNN(env), nil
	case DeepThings:
		return planEqual(env, strategy.SingleVolume(env.Model)), nil
	case DeeperThings:
		return planEqual(env, strategy.PoolBoundaries(env.Model)), nil
	case AOFL:
		return planAOFL(env), nil
	case Offload:
		return planOffload(env), nil
	default:
		return nil, fmt.Errorf("baselines: unknown method %q", m)
	}
}

// weightsCompOnly is MoDNN/MeDNN's split rule: rows proportional to the
// measured computing capability.
func weightsCompOnly(v linearView, l cnn.Layer) []float64 {
	return append([]float64(nil), v.cap...)
}

// weightsCompNet is CoEdge's split rule: the linear model includes both the
// compute rate and the link throughput — provider i's row rate is
// 1/(opsPerRow/cap_i + rowBits/bw_i).
func weightsCompNet(v linearView, l cnn.Layer) []float64 {
	opsRow := l.OpsRows(1)
	rowBits := (l.InRowBytes() + l.OutRowBytes()) * 8
	w := make([]float64, len(v.cap))
	for i := range w {
		per := opsRow/v.cap[i] + rowBits/v.bw[i]
		if per > 0 {
			w[i] = 1 / per
		}
	}
	return w
}

// planLayerByLayer splits every layer independently with the given linear
// weight rule (CoEdge, MoDNN).
func planLayerByLayer(env *sim.Env, rule func(linearView, cnn.Layer) []float64) *strategy.Strategy {
	v := newLinearView(env)
	b := strategy.LayerByLayer(env.Model)
	s := &strategy.Strategy{Boundaries: b}
	for _, l := range env.Model.SplittableLayers() {
		s.Splits = append(s.Splits, strategy.ProportionalCuts(l.OutHeight(), rule(v, l)))
	}
	return s
}

// planMeDNN is MoDNN plus MeDNN's "enhanced partition and deployment":
// after the proportional split, each layer's allocation is refined from
// measured per-part execution (two rebalancing rounds on the deployed
// devices), still assuming per-layer linearity.
func planMeDNN(env *sim.Env) *strategy.Strategy {
	v := newLinearView(env)
	b := strategy.LayerByLayer(env.Model)
	s := &strategy.Strategy{Boundaries: b}
	n := env.NumProviders()
	for _, l := range env.Model.SplittableLayers() {
		h := l.OutHeight()
		cuts := strategy.ProportionalCuts(h, weightsCompOnly(v, l))
		for round := 0; round < 2; round++ {
			w := make([]float64, n)
			for i := 0; i < n; i++ {
				part := strategy.CutRange(cuts, h, i)
				if part.Empty() {
					// Measured rate unknown: fall back to capability.
					w[i] = v.cap[i] / l.OpsRows(1)
					continue
				}
				lat := env.Devices[i].ComputeLatency(l, part.Len())
				if lat > 0 {
					w[i] = float64(part.Len()) / lat
				}
			}
			cuts = strategy.ProportionalCuts(h, w)
		}
		s.Splits = append(s.Splits, cuts)
	}
	return s
}

// planEqual assigns equal split-parts over the given partition scheme
// (DeepThings: single fused volume; DeeperThings: pool-bounded volumes).
func planEqual(env *sim.Env, boundaries []int) *strategy.Strategy {
	n := env.NumProviders()
	s := &strategy.Strategy{Boundaries: boundaries}
	for vI := 0; vI+1 < len(boundaries); vI++ {
		h := strategy.VolumeHeight(env.Model, boundaries, vI)
		s.Splits = append(s.Splits, strategy.EqualCuts(h, n))
	}
	return s
}

// planOffload sends the whole model to the provider with the best computing
// hardware.
func planOffload(env *sim.Env) *strategy.Strategy {
	v := newLinearView(env)
	best := 0
	for i := range v.cap {
		if v.cap[i] > v.cap[best] {
			best = i
		}
	}
	b := strategy.SingleVolume(env.Model)
	h := strategy.VolumeHeight(env.Model, b, 0)
	return &strategy.Strategy{
		Boundaries: b,
		Splits:     [][]int{strategy.AllOnProvider(h, env.NumProviders(), best)},
	}
}

// planAOFL implements the Adaptive Optimally Fused-Layer method: it
// searches the partition over pool-aligned fusion points by exhaustively
// scoring each candidate with a *linear* latency estimate (compute ∝
// ops/capability, transmission ∝ bytes/bandwidth, no I/O term), then splits
// each volume proportionally to the combined linear rate.
func planAOFL(env *sim.Env) *strategy.Strategy {
	v := newLinearView(env)
	pool := strategy.PoolBoundaries(env.Model)
	interior := pool[1 : len(pool)-1]
	n := env.NumProviders()
	nSplit := env.Model.NumSplittable()

	bestScore := -1.0
	var bestBoundaries []int
	// Exhaustive over subsets of the pool-aligned fusion points (AOFL's
	// brute-force search the paper times at ~10 min on real hardware;
	// the candidate count here is 2^|pools|).
	for mask := 0; mask < 1<<len(interior); mask++ {
		b := []int{0}
		for i, p := range interior {
			if mask&(1<<i) != 0 {
				b = append(b, p)
			}
		}
		b = append(b, nSplit)
		score := aoflEstimate(env, v, b)
		if bestScore < 0 || score < bestScore {
			bestScore = score
			bestBoundaries = b
		}
	}

	s := &strategy.Strategy{Boundaries: bestBoundaries}
	for vI := 0; vI+1 < len(bestBoundaries); vI++ {
		layers := strategy.Volume(env.Model, s.Boundaries, vI)
		h := layers[len(layers)-1].OutHeight()
		var volOps float64
		for _, l := range layers {
			l := l
			volOps += l.Ops()
		}
		opsRow := volOps / float64(h)
		inBits := (layers[0].InRowBytes() + layers[len(layers)-1].OutRowBytes()) * 8
		w := make([]float64, n)
		for i := range w {
			per := opsRow/v.cap[i] + inBits/v.bw[i]
			if per > 0 {
				w[i] = 1 / per
			}
		}
		s.Splits = append(s.Splits, strategy.ProportionalCuts(h, w))
	}
	return s
}

// aoflEstimate is the linear end-to-end latency estimate AOFL optimises:
// per volume, the bottleneck of linear compute shares plus boundary
// transmission at nominal bandwidth.
func aoflEstimate(env *sim.Env, v linearView, boundaries []int) float64 {
	var total float64
	var capSum float64
	minBW := v.bw[0]
	for i := range v.cap {
		capSum += v.cap[i]
		if v.bw[i] < minBW {
			minBW = v.bw[i]
		}
	}
	for vI := 0; vI+1 < len(boundaries); vI++ {
		layers := strategy.Volume(env.Model, boundaries, vI)
		var ops float64
		for _, l := range layers {
			ops += l.Ops()
		}
		total += ops / capSum // perfectly balanced linear compute
		// Boundary transmission: the volume's input crosses the network.
		total += layers[0].InputBytes() * 8 / minBW
	}
	return total
}
