package sim

import (
	"fmt"
	"sort"

	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/strategy"
)

// ChurnKind labels a scripted fleet event.
type ChurnKind int

const (
	// DeviceDrop removes a provider from the fleet at the event time: its
	// in-flight work is lost and (with recovery) the strategy is re-planned
	// over the survivors.
	DeviceDrop ChurnKind = iota
	// DeviceJoin returns a previously dropped provider to the fleet.
	DeviceJoin
	// DeviceSlow multiplies a provider's compute latency by Factor from the
	// event time on (thermal throttling, co-located load).
	DeviceSlow
)

func (k ChurnKind) String() string {
	switch k {
	case DeviceDrop:
		return "drop"
	case DeviceJoin:
		return "join"
	case DeviceSlow:
		return "slow"
	}
	return fmt.Sprintf("ChurnKind(%d)", int(k))
}

// ChurnEvent is one scripted fleet change at an absolute trace time.
type ChurnEvent struct {
	At     float64
	Kind   ChurnKind
	Device int
	Factor float64 // DeviceSlow only: compute-latency multiplier (> 1 = slower)
}

// ReplanFunc re-plans a strategy after a fleet change: given the
// environment (whose device models already reflect any slowdowns), the old
// strategy and the liveness mask, it returns a full-fleet strategy in which
// every dead provider has empty parts. strategy.Rebalance is the
// dependency-free default; splitter.BalancedReplan and splitter.SearchReplan
// are the profile-guided and search-based implementations.
type ReplanFunc func(e *Env, old *strategy.Strategy, alive []bool) (*strategy.Strategy, error)

// ChurnOptions tunes ChurnStream's recovery model.
type ChurnOptions struct {
	// Recover re-plans over the survivors at each event and re-admits
	// aborted in-flight images. Without it a DeviceDrop ends the stream at
	// the event time (the sticky-failure semantics of the runtime's
	// Cluster.Err), and joins are ignored.
	Recover bool
	// ReplanSec is the simulated controller delay charged per recovery
	// (re-planning + state migration); no image is re-admitted before
	// event time + ReplanSec.
	ReplanSec float64
	// Replan picks the re-planner; nil uses strategy.Rebalance.
	Replan ReplanFunc
}

// ChurnResult extends PipelineResult with recovery accounting. With a
// truncated stream (DeviceDrop under Recover=false), IPS and the latency
// distribution cover only the completed images.
type ChurnResult struct {
	PipelineResult
	Completed int // images whose results were committed
	Failed    int // images lost to an unrecovered drop

	Recoveries int // re-plans executed
	Requeued   int // in-flight images aborted at an event and re-admitted

	// FailedAtSec is the absolute trace time an unrecovered drop ended the
	// stream, or -1.
	FailedAtSec float64
	// EventRecoverySec holds, per applied event in order, the delay from the
	// event to the first committed completion after it (-1 when the stream
	// produced none) — the simulator's time-to-recover prediction.
	EventRecoverySec []float64
}

// Subset returns the environment restricted to the alive providers (in
// index order) plus the mapping from subset position to original provider
// index. Device models, network links and the requester link are shared
// with the parent environment; caches start fresh.
func (e *Env) Subset(alive []bool) (*Env, []int, error) {
	if len(alive) != len(e.Devices) {
		return nil, nil, fmt.Errorf("sim: subset mask has %d entries for %d providers", len(alive), len(e.Devices))
	}
	var devs []device.LatencyModel
	var links []network.Link
	var idx []int
	for i, a := range alive {
		if !a {
			continue
		}
		devs = append(devs, e.Devices[i])
		links = append(links, e.Net.Providers[i])
		idx = append(idx, i)
	}
	if len(devs) == 0 {
		return nil, nil, fmt.Errorf("sim: subset with no alive providers")
	}
	net := &network.Network{Providers: links, Requester: e.Net.Requester}
	return &Env{Model: e.Model, Devices: devs, Net: net, NoCache: e.NoCache}, idx, nil
}

// churnImage states.
const (
	imgPending uint8 = iota
	imgInflight
	imgDone
	imgFailed
)

// ChurnStream replays the strategy under a scripted fleet-event timeline:
// images stream exactly as in PipelineStream (FIFO admission, `window` in
// flight, shared device/link/uplink occupancy) until an event fires, at
// which point every in-flight image whose completion lies past the event is
// aborted, the plan is recompiled against the changed fleet — with
// Options.Recover, after re-planning over the survivors — and the aborted
// images are re-admitted no earlier than the event time plus ReplanSec.
//
// The recompile-at-event model is deliberately conservative: aborted images
// restart from scratch under the new plan (the runtime drains completed
// chunks and only re-scatters incomplete images), and an event aborts every
// in-flight image even when the affected device carried none of its rows —
// matching the runtime's quarantine-then-redeploy recovery, which also
// pauses the whole admission window. See DESIGN.md.
//
// With an empty event timeline the engine performs bit-for-bit the same
// float operations as PipelineStream (property-tested), so churn results
// are directly comparable to the no-churn baseline.
func (e *Env) ChurnStream(s *strategy.Strategy, images, window int, start float64, events []ChurnEvent, opts ChurnOptions) (ChurnResult, error) {
	if images <= 0 {
		return ChurnResult{}, fmt.Errorf("sim: need at least 1 image")
	}
	if window < 1 {
		return ChurnResult{}, fmt.Errorf("sim: window must be >= 1, got %d", window)
	}
	n := e.NumProviders()
	evs := append([]ChurnEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, ev := range evs {
		if ev.Device < 0 || ev.Device >= n {
			return ChurnResult{}, fmt.Errorf("sim: churn event device %d out of range [0,%d)", ev.Device, n)
		}
		if ev.Kind == DeviceSlow && ev.Factor <= 0 {
			return ChurnResult{}, fmt.Errorf("sim: slow event needs a positive factor, got %g", ev.Factor)
		}
	}
	replan := opts.Replan
	if replan == nil {
		replan = func(e *Env, old *strategy.Strategy, alive []bool) (*strategy.Strategy, error) {
			return strategy.Rebalance(e.Model, old, alive)
		}
	}

	p, err := e.checkoutPlan(s)
	if err != nil {
		return ChurnResult{}, err
	}
	origPlan := p
	curStrat := s

	alive := make([]bool, n)
	factors := make([]float64, n)
	for i := range alive {
		alive[i] = true
		factors[i] = 1
	}

	ps := newPipeState(n, 0, 1, 1) // churn replay is unbatched, raw wire bytes
	firstAdm := make([]float64, images)
	complete := make([]float64, images)
	perImage := make([]float64, images)
	state := make([]uint8, images)
	for i := range firstAdm {
		firstAdm[i] = -1
	}

	queue := make([]int, images) // pending image ids, admission order
	for i := range queue {
		queue[i] = i
	}
	var admQ []int     // ids of the last `window` admissions (FIFO window slots)
	var inflight []int // admitted ids whose completion is not yet committed
	adm := start
	lastAdmitted := -1
	evIdx := 0

	res := ChurnResult{FailedAtSec: -1}
	var appliedAt []float64

	checkin := func() {
		// Return the untouched original plan to the env memo; recompiled
		// churn plans are bound to derived envs and are simply dropped.
		if p == origPlan {
			e.checkinPlan(p)
		}
	}

	for {
		// Next admission time, were we to admit the head image now.
		tAdm := adm
		if len(queue) == 0 {
			if evIdx >= len(evs) || len(inflight) == 0 {
				break
			}
			// Only in-flight images remain: any further event can still
			// abort them, so keep firing events until they are all past.
			last := complete[inflight[0]]
			for _, id := range inflight {
				if complete[id] > last {
					last = complete[id]
				}
			}
			if evs[evIdx].At >= last {
				break
			}
			tAdm = evs[evIdx].At
		} else if len(admQ) >= window {
			if c := complete[admQ[0]]; c > tAdm {
				tAdm = c
			}
		}

		if evIdx < len(evs) && evs[evIdx].At <= tAdm {
			ev := evs[evIdx]
			evIdx++
			T := ev.At

			// Events that change nothing are skipped without aborting work.
			if (ev.Kind == DeviceDrop && !alive[ev.Device]) ||
				(ev.Kind == DeviceJoin && alive[ev.Device]) ||
				(ev.Kind == DeviceJoin && !opts.Recover) {
				continue
			}

			if ev.Kind == DeviceDrop && !opts.Recover {
				// Sticky failure: commit what finished before the drop, fail
				// the rest, end the stream at the event time.
				for _, id := range inflight {
					if complete[id] <= T {
						state[id] = imgDone
					} else {
						state[id] = imgFailed
					}
				}
				for _, id := range queue {
					state[id] = imgFailed
				}
				inflight = nil
				queue = nil
				res.FailedAtSec = T
				break
			}

			// Apply the fleet change.
			switch ev.Kind {
			case DeviceDrop:
				alive[ev.Device] = false
			case DeviceJoin:
				alive[ev.Device] = true
			case DeviceSlow:
				factors[ev.Device] *= ev.Factor
			}
			models := make([]device.LatencyModel, n)
			for i := range models {
				models[i] = device.Scaled(e.Devices[i], factors[i])
			}
			curEnv := e.WithDevices(models)

			// Commit completed in-flight images, abort the rest back to the
			// front of the queue in admission order.
			var aborted []int
			for _, id := range inflight {
				if complete[id] <= T {
					state[id] = imgDone
				} else {
					state[id] = imgPending
					aborted = append(aborted, id)
				}
			}
			inflight = nil
			if len(aborted) > 0 {
				queue = append(append([]int(nil), aborted...), queue...)
				res.Requeued += len(aborted)
				kept := admQ[:0]
				for _, id := range admQ {
					if state[id] != imgPending {
						kept = append(kept, id)
					}
				}
				admQ = kept
			}

			if opts.Recover {
				ns, rerr := replan(curEnv, curStrat, alive)
				if rerr != nil {
					checkin()
					return res, fmt.Errorf("sim: re-plan at t=%g: %w", T, rerr)
				}
				curStrat = ns
				res.Recoveries++
			}
			np, cerr := Compile(curEnv, curStrat)
			if cerr != nil {
				checkin()
				return res, fmt.Errorf("sim: recompile at t=%g: %w", T, cerr)
			}
			checkin()
			p = np

			// Nothing restarts before the event (plus the re-plan charge).
			floor := T
			if opts.Recover {
				floor += opts.ReplanSec
			}
			if floor > adm {
				adm = floor
			}
			appliedAt = append(appliedAt, T)
			continue
		}

		if len(queue) == 0 {
			break
		}
		// Admit the head image — the exact float sequence of PipelineStream.
		id := queue[0]
		queue = queue[1:]
		if len(admQ) >= window {
			if c := complete[admQ[0]]; c > adm {
				adm = c
			}
			admQ = admQ[1:]
		}
		lat := p.runPipelined(adm, ps)
		if firstAdm[id] < 0 {
			firstAdm[id] = adm
			perImage[id] = lat
		} else {
			// Re-admission after an abort: latency is measured from the
			// image's first admission, so the wasted attempt and the
			// re-planning delay are visible in the distribution.
			perImage[id] = adm + lat - firstAdm[id]
		}
		complete[id] = adm + lat
		state[id] = imgInflight
		inflight = append(inflight, id)
		admQ = append(admQ, id)
		lastAdmitted = id
	}

	for _, id := range inflight {
		state[id] = imgDone
	}
	checkin()

	// Assemble the result. All index arithmetic runs over the committed ids
	// in admission (id) order so that with an empty timeline every
	// expression reduces to PipelineStream's.
	var doneIDs []int
	for id := 0; id < images; id++ {
		if state[id] == imgDone {
			doneIDs = append(doneIDs, id)
		}
	}
	res.Completed = len(doneIDs)
	res.Failed = images - res.Completed
	res.Images = images
	res.Window = window
	if res.FailedAtSec >= 0 {
		res.TotalSec = res.FailedAtSec - start
	} else if lastAdmitted >= 0 {
		res.TotalSec = complete[lastAdmitted] - start
	}
	if res.TotalSec > 0 {
		res.IPS = float64(res.Completed) / res.TotalSec
	}
	if nd := len(doneIDs); nd > 0 {
		doneComplete := make([]float64, nd)
		for i, id := range doneIDs {
			doneComplete[i] = complete[id]
		}
		res.SteadyIPS = steadyIPS(doneComplete, res.IPS)
		res.PerImageSec = make([]float64, nd)
		for i, id := range doneIDs {
			res.PerImageSec[i] = perImage[id]
		}
		sorted := append([]float64(nil), res.PerImageSec...)
		sort.Float64s(sorted)
		var sum float64
		for _, l := range sorted {
			sum += l
		}
		res.MeanLatMS = sum / float64(nd) * 1e3
		res.P50LatMS = quantile(sorted, 0.50) * 1e3
		res.P95LatMS = quantile(sorted, 0.95) * 1e3
		res.MaxLatMS = sorted[nd-1] * 1e3
	}
	res.EventRecoverySec = make([]float64, len(appliedAt))
	for i, T := range appliedAt {
		res.EventRecoverySec[i] = -1
		for _, id := range doneIDs {
			if complete[id] > T {
				d := complete[id] - T
				if res.EventRecoverySec[i] < 0 || d < res.EventRecoverySec[i] {
					res.EventRecoverySec[i] = d
				}
			}
		}
	}
	return res, nil
}
