package sim

import (
	"fmt"
	"sort"

	"distredge/internal/cnn"
	"distredge/internal/network"
	"distredge/internal/strategy"
)

// EventKind classifies a timeline event.
type EventKind string

// Event kinds.
const (
	EventScatter EventKind = "scatter" // requester -> provider input rows
	EventRecv    EventKind = "recv"    // inter-provider halo transfer
	EventCompute EventKind = "compute" // split-part execution
	EventGather  EventKind = "gather"  // last volume -> FC owner
	EventFC      EventKind = "fc"      // fully-connected layers on the owner
	EventResult  EventKind = "result"  // result back to the requester
)

// Event is one interval of activity attributed to a device during the
// execution of a single image.
type Event struct {
	Device int // provider index; network.Requester for the requester
	Volume int // volume index; -1 for scatter/result phases
	Kind   EventKind
	Start  float64 // seconds since the image entered the system
	End    float64
}

// Timeline executes one image under the strategy and returns the full
// event log — a Gantt view of where every millisecond went. The final
// event's End equals the end-to-end latency.
func (e *Env) Timeline(s *strategy.Strategy, at float64) ([]Event, float64, error) {
	if err := s.Validate(e.Model, e.NumProviders()); err != nil {
		return nil, 0, err
	}
	var events []Event
	n := e.NumProviders()
	acc := make([]float64, n)
	busy := make([]float64, n)
	var owner []cnn.RowRange

	for v := 0; v < s.NumVolumes(); v++ {
		layers := strategy.Volume(e.Model, s.Boundaries, v)
		h := layers[len(layers)-1].OutHeight()
		newOwner := make([]cnn.RowRange, n)
		newAcc := append([]float64(nil), acc...)
		for i := 0; i < n; i++ {
			part := strategy.CutRange(s.Splits[v], h, i)
			newOwner[i] = part
			if part.Empty() {
				continue
			}
			in := cnn.VolumeInputRows(layers, part)
			var arrive float64
			if in.Empty() {
				// No input rows needed: nothing arrives, nothing queues.
			} else if owner == nil {
				tr := e.Net.TransferLatency(network.Requester, i, float64(in.Len())*layers[0].InRowBytes(), at)
				if tr > 0 {
					events = append(events, Event{Device: i, Volume: v, Kind: EventScatter, Start: 0, End: tr})
				}
				arrive = tr
			} else {
				for j, own := range owner {
					ov := in.Intersect(own)
					if ov.Empty() {
						continue
					}
					t := acc[j]
					if j != i {
						tr := e.Net.TransferLatency(j, i, float64(ov.Len())*layers[0].InRowBytes(), at+t)
						if tr > 0 {
							events = append(events, Event{Device: i, Volume: v, Kind: EventRecv, Start: t, End: t + tr})
						}
						t += tr
					}
					if t > arrive {
						arrive = t
					}
				}
			}
			start := arrive
			if busy[i] > start {
				start = busy[i]
			}
			var comp float64
			ranges := cnn.VolumeRanges(layers, part)
			for li, l := range layers {
				comp += e.Devices[i].ComputeLatency(l, ranges[li].Len())
			}
			events = append(events, Event{Device: i, Volume: v, Kind: EventCompute, Start: start, End: start + comp})
			busy[i] = start + comp
			newAcc[i] = start + comp
		}
		acc = newAcc
		owner = newOwner
	}

	// Finish phase mirrors Exec.Finish.
	convLayers := e.Model.SplittableLayers()
	rowBytes := convLayers[len(convLayers)-1].OutRowBytes()
	fcs := e.Model.FCLayers()
	var end float64
	if len(fcs) == 0 {
		for j, own := range owner {
			if own.Empty() {
				continue
			}
			tr := e.Net.TransferLatency(j, network.Requester, float64(own.Len())*rowBytes, at+acc[j])
			events = append(events, Event{Device: j, Volume: -1, Kind: EventResult, Start: acc[j], End: acc[j] + tr})
			if t := acc[j] + tr; t > end {
				end = t
			}
		}
	} else {
		ownerIdx, best := 0, -1
		for j, own := range owner {
			if own.Len() > best {
				best = own.Len()
				ownerIdx = j
			}
		}
		ready := acc[ownerIdx]
		for j, own := range owner {
			if j == ownerIdx || own.Empty() {
				continue
			}
			tr := e.Net.TransferLatency(j, ownerIdx, float64(own.Len())*rowBytes, at+acc[j])
			events = append(events, Event{Device: ownerIdx, Volume: -1, Kind: EventGather, Start: acc[j], End: acc[j] + tr})
			if t := acc[j] + tr; t > ready {
				ready = t
			}
		}
		var fcLat float64
		for _, fc := range fcs {
			fcLat += e.Devices[ownerIdx].ComputeLatency(fc, 1)
		}
		events = append(events, Event{Device: ownerIdx, Volume: -1, Kind: EventFC, Start: ready, End: ready + fcLat})
		done := ready + fcLat
		result := fcs[len(fcs)-1].OutputBytes()
		tr := e.Net.TransferLatency(ownerIdx, network.Requester, result, at+done)
		events = append(events, Event{Device: ownerIdx, Volume: -1, Kind: EventResult, Start: done, End: done + tr})
		end = done + tr
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].End < events[j].End
	})
	return events, end, nil
}

// RenderTimeline formats the event log as a per-device text Gantt chart
// with the given character width.
func RenderTimeline(events []Event, total float64, width int) string {
	if len(events) == 0 || total <= 0 {
		return ""
	}
	if width < 10 {
		width = 60
	}
	byDev := map[int][]Event{}
	var devs []int
	for _, ev := range events {
		if _, ok := byDev[ev.Device]; !ok {
			devs = append(devs, ev.Device)
		}
		byDev[ev.Device] = append(byDev[ev.Device], ev)
	}
	sort.Ints(devs)
	glyph := map[EventKind]rune{
		EventScatter: 's', EventRecv: 'r', EventCompute: '#',
		EventGather: 'g', EventFC: 'f', EventResult: '>',
	}
	out := ""
	for _, d := range devs {
		row := make([]rune, width)
		for i := range row {
			row[i] = '.'
		}
		for _, ev := range byDev[d] {
			lo := int(ev.Start / total * float64(width))
			hi := int(ev.End / total * float64(width))
			if hi <= lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = glyph[ev.Kind]
			}
		}
		out += fmt.Sprintf("dev %2d |%s|\n", d, string(row))
	}
	out += fmt.Sprintf("total %.1f ms  (s=scatter r=recv #=compute g=gather f=fc >=result)\n", total*1e3)
	return out
}
