// Package sim simulates the distributed execution of a CNN inference
// strategy on a set of service providers, reproducing the dataflow of the
// paper's testbed (Section V-A): the requester scatters input rows to the
// providers of the first layer-volume; between volumes, providers exchange
// exactly the (halo-overlapped) rows the VSL says they need; fully-connected
// layers run on the provider holding the largest share of the last volume;
// results return to the requester.
//
// The simulator is the environment OSDS trains against (states, i.e.
// accumulated latencies, are exposed incrementally via Exec) and the
// instrument every experiment harness measures with (end-to-end latency,
// streaming IPS, per-device compute/transmission breakdown for Fig. 15).
package sim

import (
	"fmt"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/strategy"
)

// Env binds a model to concrete providers and a network. Devices are the
// latency models executing the strategy: ground-truth device.Profile values
// when the env plays the role of the hardware, or profile forms
// (table/linear/piecewise/k-NN) when it plays the role of the controller's
// view during planning — the paper's Section IV allows both ("the latencies
// can be directly measured with real execution on devices or estimated by
// the profiling results").
type Env struct {
	Model   *cnn.Model
	Devices []device.LatencyModel
	Net     *network.Network
}

// WithDevices returns a copy of the environment whose devices are replaced
// by the given latency models (e.g. measured profiles for planning).
func (e *Env) WithDevices(models []device.LatencyModel) *Env {
	return &Env{Model: e.Model, Devices: models, Net: e.Net}
}

// NumProviders returns the number of service providers in the environment.
func (e *Env) NumProviders() int { return len(e.Devices) }

// Breakdown is the per-image latency decomposition used by Fig. 15.
type Breakdown struct {
	PerDevComp  []float64 // total compute seconds per device
	PerDevTrans []float64 // total receive-side transmission seconds per device
}

// MaxComp returns the maximum per-device computing latency.
func (b Breakdown) MaxComp() float64 { return maxOf(b.PerDevComp) }

// MaxTrans returns the maximum per-device transmission latency.
func (b Breakdown) MaxTrans() float64 { return maxOf(b.PerDevTrans) }

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Exec is the incremental execution of one image under a fixed partition
// scheme: volumes are split one at a time via Step, exposing the
// accumulated latencies that form the OSDS state (Eq. 7).
type Exec struct {
	env        *Env
	boundaries []int
	at         float64 // absolute trace time of the image start

	vol   int            // next volume to split
	acc   []float64      // accumulated latency per provider (Eq. 7 state)
	busy  []float64      // time each provider becomes free
	owner []cnn.RowRange // rows of the previous volume's output held per provider
	bd    Breakdown
	err   error
}

// NewExec starts the execution of one image at absolute time `at` under the
// given partition scheme.
func NewExec(env *Env, boundaries []int, at float64) *Exec {
	n := env.NumProviders()
	return &Exec{
		env:        env,
		boundaries: boundaries,
		at:         at,
		acc:        make([]float64, n),
		busy:       make([]float64, n),
		owner:      nil, // requester owns the input before volume 0
		bd: Breakdown{
			PerDevComp:  make([]float64, n),
			PerDevTrans: make([]float64, n),
		},
	}
}

// NumVolumes returns the number of volumes in the partition scheme.
func (x *Exec) NumVolumes() int { return len(x.boundaries) - 1 }

// Done reports whether all volumes have been split.
func (x *Exec) Done() bool { return x.vol >= x.NumVolumes() }

// Err returns the first execution error, if any.
func (x *Exec) Err() error { return x.err }

// Accumulated returns the per-provider accumulated latencies after the last
// completed volume (the T^{l-1} component of the OSDS state).
func (x *Exec) Accumulated() []float64 { return x.acc }

// NextVolume returns the layers of the volume the next Step will split, or
// nil when done.
func (x *Exec) NextVolume() []cnn.Layer {
	if x.Done() {
		return nil
	}
	return strategy.Volume(x.env.Model, x.boundaries, x.vol)
}

// Step splits the next volume with the given cut points and advances the
// execution. Cut points follow strategy.CutRange semantics.
func (x *Exec) Step(cuts []int) {
	if x.err != nil || x.Done() {
		return
	}
	layers := strategy.Volume(x.env.Model, x.boundaries, x.vol)
	h := layers[len(layers)-1].OutHeight()
	n := x.env.NumProviders()
	if len(cuts) != n-1 {
		x.err = fmt.Errorf("sim: volume %d: %d cuts for %d providers", x.vol, len(cuts), n)
		return
	}

	newOwner := make([]cnn.RowRange, n)
	newAcc := append([]float64(nil), x.acc...)
	for i := 0; i < n; i++ {
		part := strategy.CutRange(cuts, h, i)
		newOwner[i] = part
		if part.Empty() {
			continue
		}
		in := cnn.VolumeInputRows(layers, part)
		arrive := x.gather(i, in, layers[0].InRowBytes())
		start := arrive
		if x.busy[i] > start {
			start = x.busy[i]
		}
		comp := device.VolumeLatency(x.env.Devices[i], layers, part)
		finish := start + comp
		x.bd.PerDevComp[i] += comp
		x.busy[i] = finish
		newAcc[i] = finish
	}
	x.acc = newAcc
	x.owner = newOwner
	x.vol++
}

// gather computes when provider i has received input rows `in`, pulling
// overlapping rows from every current owner (or the requester before volume
// 0). Rows the provider already owns arrive as soon as it computed them.
func (x *Exec) gather(i int, in cnn.RowRange, rowBytes float64) float64 {
	if in.Empty() {
		return 0
	}
	if x.owner == nil {
		// Requester scatters the input image rows.
		bytes := float64(in.Len()) * rowBytes
		tr := x.env.Net.TransferLatency(network.Requester, i, bytes, x.at)
		x.bd.PerDevTrans[i] += tr
		return tr
	}
	var arrive float64
	for j, own := range x.owner {
		ov := in.Intersect(own)
		if ov.Empty() {
			continue
		}
		t := x.acc[j]
		if j != i {
			bytes := float64(ov.Len()) * rowBytes
			tr := x.env.Net.TransferLatency(j, i, bytes, x.at+t)
			x.bd.PerDevTrans[i] += tr
			t += tr
		}
		if t > arrive {
			arrive = t
		}
	}
	return arrive
}

// Finish completes the image: gathers the last volume's output (to the FC
// owner if the model has FC layers, else directly to the requester),
// computes any FC layers, and returns the result to the requester. It
// returns the end-to-end latency of the image.
func (x *Exec) Finish() (float64, Breakdown, error) {
	if x.err != nil {
		return 0, x.bd, x.err
	}
	if !x.Done() {
		return 0, x.bd, fmt.Errorf("sim: Finish called with %d volumes remaining", x.NumVolumes()-x.vol)
	}
	convLayers := x.env.Model.SplittableLayers()
	last := convLayers[len(convLayers)-1]
	rowBytes := last.OutRowBytes()
	fcs := x.env.Model.FCLayers()

	if len(fcs) == 0 {
		// Fully-convolutional model: each provider returns its rows.
		var end float64
		for j, own := range x.owner {
			if own.Empty() {
				continue
			}
			t := x.acc[j] + x.env.Net.TransferLatency(j, network.Requester, float64(own.Len())*rowBytes, x.at+x.acc[j])
			if t > end {
				end = t
			}
		}
		return end, x.bd, nil
	}

	// FC owner: provider with the largest share of the last volume
	// (Section V-A).
	ownerIdx, best := 0, -1
	for j, own := range x.owner {
		if own.Len() > best {
			best = own.Len()
			ownerIdx = j
		}
	}
	// Gather the full feature map at the owner.
	ready := x.acc[ownerIdx]
	for j, own := range x.owner {
		if j == ownerIdx || own.Empty() {
			continue
		}
		bytes := float64(own.Len()) * rowBytes
		tr := x.env.Net.TransferLatency(j, ownerIdx, bytes, x.at+x.acc[j])
		x.bd.PerDevTrans[ownerIdx] += tr
		if t := x.acc[j] + tr; t > ready {
			ready = t
		}
	}
	// FC compute on the owner.
	var fcLat float64
	for _, fc := range fcs {
		fcLat += x.env.Devices[ownerIdx].ComputeLatency(fc, 1)
	}
	x.bd.PerDevComp[ownerIdx] += fcLat
	done := ready + fcLat
	// Result back to the requester.
	result := fcs[len(fcs)-1].OutputBytes()
	end := done + x.env.Net.TransferLatency(ownerIdx, network.Requester, result, x.at+done)
	return end, x.bd, nil
}

// Latency runs a full strategy for one image starting at absolute time `at`
// and returns the end-to-end latency and breakdown.
func (e *Env) Latency(s *strategy.Strategy, at float64) (float64, Breakdown, error) {
	if err := s.Validate(e.Model, e.NumProviders()); err != nil {
		return 0, Breakdown{}, err
	}
	x := NewExec(e, s.Boundaries, at)
	for v := 0; v < s.NumVolumes(); v++ {
		x.Step(s.Splits[v])
	}
	return x.Finish()
}

// StreamResult summarises a streaming evaluation (Section V-A: images are
// sent one at a time, each waiting for the previous result).
type StreamResult struct {
	Images    int
	TotalSec  float64
	IPS       float64
	MeanLatMS float64
	Breakdown Breakdown // of the final image
}

// Stream evaluates the strategy over a stream of `images` images starting
// at trace time `start`, returning the averaged images-per-second — the
// paper's headline metric.
func (e *Env) Stream(s *strategy.Strategy, images int, start float64) (StreamResult, error) {
	if images <= 0 {
		return StreamResult{}, fmt.Errorf("sim: need at least 1 image")
	}
	t := start
	var lastBD Breakdown
	for i := 0; i < images; i++ {
		lat, bd, err := e.Latency(s, t)
		if err != nil {
			return StreamResult{}, err
		}
		t += lat
		lastBD = bd
	}
	total := t - start
	return StreamResult{
		Images:    images,
		TotalSec:  total,
		IPS:       float64(images) / total,
		MeanLatMS: total / float64(images) * 1e3,
		Breakdown: lastBD,
	}, nil
}
