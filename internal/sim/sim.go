// Package sim simulates the distributed execution of a CNN inference
// strategy on a set of service providers, reproducing the dataflow of the
// paper's testbed (Section V-A): the requester scatters input rows to the
// providers of the first layer-volume; between volumes, providers exchange
// exactly the (halo-overlapped) rows the VSL says they need; fully-connected
// layers run on the provider holding the largest share of the last volume;
// results return to the requester.
//
// The simulator is the environment OSDS trains against (states, i.e.
// accumulated latencies, are exposed incrementally via Exec) and the
// instrument every experiment harness measures with (end-to-end latency,
// streaming IPS, per-device compute/transmission breakdown for Fig. 15).
//
// Two execution paths exist. Latency/Stream compile the strategy once
// (Compile) and replay the plan per image with all time-invariant work —
// geometry, halo overlaps, payload sizes, device compute latencies —
// precomputed and all buffers reused; only the time-varying network
// transfers are evaluated per image. ReferenceLatency retains the original
// per-image derivation as the differential-testing oracle; both paths
// produce bit-identical results (see sim_equivalence_test.go).
package sim

import (
	"fmt"
	"sync"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/strategy"
)

// Env binds a model to concrete providers and a network. Devices are the
// latency models executing the strategy: ground-truth device.Profile values
// when the env plays the role of the hardware, or profile forms
// (table/linear/piecewise/k-NN) when it plays the role of the controller's
// view during planning — the paper's Section IV allows both ("the latencies
// can be directly measured with real execution on devices or estimated by
// the profiling results").
type Env struct {
	Model   *cnn.Model
	Devices []device.LatencyModel
	Net     *network.Network

	// NoCache disables the device-latency memo cache. Cached values are
	// bit-identical to direct evaluation; the switch exists for
	// differential tests and memory-constrained callers.
	NoCache bool

	mu       sync.Mutex
	devCache *device.Cache                        // guarded by mu
	plans    map[*strategy.Strategy]*CompiledPlan // guarded by mu
}

// WithDevices returns a copy of the environment whose devices are replaced
// by the given latency models (e.g. measured profiles for planning). The
// copy starts with fresh latency caches.
func (e *Env) WithDevices(models []device.LatencyModel) *Env {
	return &Env{Model: e.Model, Devices: models, Net: e.Net, NoCache: e.NoCache}
}

// NumProviders returns the number of service providers in the environment.
func (e *Env) NumProviders() int { return len(e.Devices) }

// VolumeLatency returns the compute latency of provider i producing output
// rows `out` of the layer-volume, memoized per (provider, volume, range) —
// the hot lookup of both OSDS training and plan compilation.
func (e *Env) VolumeLatency(i int, layers []cnn.Layer, out cnn.RowRange) float64 {
	if e.NoCache {
		return device.VolumeLatency(e.Devices[i], layers, out)
	}
	e.mu.Lock()
	c := e.devCache
	if c == nil {
		c = device.NewCache()
		e.devCache = c
	}
	e.mu.Unlock()
	return c.VolumeLatency(i, e.Devices[i], layers, out)
}

// CacheStats returns the hit/miss counters of the device-latency cache.
func (e *Env) CacheStats() device.CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.devCache == nil {
		return device.CacheStats{}
	}
	return e.devCache.Stats()
}

// checkoutPlan returns a compiled plan for the strategy, reusing the memoized
// one when the strategy contents are unchanged. The plan is removed from the
// memo while in use so concurrent callers never share scratch buffers.
func (e *Env) checkoutPlan(s *strategy.Strategy) (*CompiledPlan, error) {
	e.mu.Lock()
	p := e.plans[s]
	if p != nil {
		delete(e.plans, s)
	}
	e.mu.Unlock()
	if p != nil && p.matches(s) {
		return p, nil
	}
	return Compile(e, s)
}

// checkinPlan returns a plan to the memo for reuse.
func (e *Env) checkinPlan(p *CompiledPlan) {
	e.mu.Lock()
	if e.plans == nil {
		e.plans = make(map[*strategy.Strategy]*CompiledPlan)
	}
	if len(e.plans) >= 64 { // bound memory across many short-lived strategies
		clear(e.plans)
	}
	e.plans[p.strat] = p
	e.mu.Unlock()
}

// Breakdown is the per-image latency decomposition used by Fig. 15.
type Breakdown struct {
	PerDevComp  []float64 // total compute seconds per device
	PerDevTrans []float64 // total receive-side transmission seconds per device
}

// MaxComp returns the maximum per-device computing latency.
func (b Breakdown) MaxComp() float64 { return maxOf(b.PerDevComp) }

// MaxTrans returns the maximum per-device transmission latency.
func (b Breakdown) MaxTrans() float64 { return maxOf(b.PerDevTrans) }

func (b Breakdown) clone() Breakdown {
	return Breakdown{
		PerDevComp:  append([]float64(nil), b.PerDevComp...),
		PerDevTrans: append([]float64(nil), b.PerDevTrans...),
	}
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Exec is the incremental execution of one image under a fixed partition
// scheme: volumes are split one at a time via Step, exposing the
// accumulated latencies that form the OSDS state (Eq. 7). An Exec owns its
// buffers and is reusable: Reset re-arms it for the next image without
// allocating, which is how OSDS training amortises the per-episode cost.
type Exec struct {
	env        *Env
	boundaries []int
	at         float64 // absolute trace time of the image start

	vol       int            // next volume to split
	acc       []float64      // accumulated latency per provider (Eq. 7 state)
	accNext   []float64      // next-volume accumulator (double buffer)
	busy      []float64      // time each provider becomes free
	owner     []cnn.RowRange // rows of the previous volume's output held per provider
	ownerNext []cnn.RowRange
	bd        Breakdown
	err       error
}

// NewExec starts the execution of one image at absolute time `at` under the
// given partition scheme.
func NewExec(env *Env, boundaries []int, at float64) *Exec {
	n := env.NumProviders()
	x := &Exec{
		env:       env,
		acc:       make([]float64, n),
		accNext:   make([]float64, n),
		busy:      make([]float64, n),
		owner:     make([]cnn.RowRange, n),
		ownerNext: make([]cnn.RowRange, n),
		bd: Breakdown{
			PerDevComp:  make([]float64, n),
			PerDevTrans: make([]float64, n),
		},
	}
	x.Reset(boundaries, at)
	return x
}

// Reset re-arms the exec for a new image starting at absolute time `at`
// under the given partition scheme, reusing all internal buffers. The
// Breakdown returned by a previous Finish is invalidated.
func (x *Exec) Reset(boundaries []int, at float64) {
	x.boundaries = boundaries
	x.at = at
	x.vol = 0
	x.err = nil
	for i := range x.acc {
		x.acc[i] = 0
		x.busy[i] = 0
		x.bd.PerDevComp[i] = 0
		x.bd.PerDevTrans[i] = 0
	}
}

// NumVolumes returns the number of volumes in the partition scheme.
func (x *Exec) NumVolumes() int { return len(x.boundaries) - 1 }

// Done reports whether all volumes have been split.
func (x *Exec) Done() bool { return x.vol >= x.NumVolumes() }

// Err returns the first execution error, if any.
func (x *Exec) Err() error { return x.err }

// Accumulated returns the per-provider accumulated latencies after the last
// completed volume (the T^{l-1} component of the OSDS state). The slice
// aliases the exec's double buffer and is valid until the next Step or
// Reset; copy it to retain a snapshot.
func (x *Exec) Accumulated() []float64 { return x.acc }

// NextVolume returns the layers of the volume the next Step will split, or
// nil when done.
func (x *Exec) NextVolume() []cnn.Layer {
	if x.Done() {
		return nil
	}
	return strategy.Volume(x.env.Model, x.boundaries, x.vol)
}

// Step splits the next volume with the given cut points and advances the
// execution. Cut points follow strategy.CutRange semantics.
func (x *Exec) Step(cuts []int) {
	if x.err != nil || x.Done() {
		return
	}
	layers := strategy.Volume(x.env.Model, x.boundaries, x.vol)
	h := layers[len(layers)-1].OutHeight()
	n := x.env.NumProviders()
	if len(cuts) != n-1 {
		x.err = fmt.Errorf("sim: volume %d: %d cuts for %d providers", x.vol, len(cuts), n)
		return
	}

	copy(x.accNext, x.acc)
	for i := 0; i < n; i++ {
		part := strategy.CutRange(cuts, h, i)
		x.ownerNext[i] = part
		if part.Empty() {
			continue
		}
		in := cnn.VolumeInputRows(layers, part)
		arrive := x.gather(i, in, layers[0].InRowBytes())
		start := arrive
		if x.busy[i] > start {
			start = x.busy[i]
		}
		comp := x.env.VolumeLatency(i, layers, part)
		finish := start + comp
		x.bd.PerDevComp[i] += comp
		x.busy[i] = finish
		x.accNext[i] = finish
	}
	x.acc, x.accNext = x.accNext, x.acc
	x.owner, x.ownerNext = x.ownerNext, x.owner
	x.vol++
}

// gather computes when provider i has received input rows `in`, pulling
// overlapping rows from every current owner (or the requester before volume
// 0). Rows the provider already owns arrive as soon as it computed them.
func (x *Exec) gather(i int, in cnn.RowRange, rowBytes float64) float64 {
	if in.Empty() {
		return 0
	}
	if x.vol == 0 {
		// Requester scatters the input image rows. Within one image the
		// scatter transfers are idealised as concurrent (the oracle model
		// the whole evaluation is calibrated on); PipelineStream adds the
		// uplink serialisation that matters once images overlap.
		bytes := float64(in.Len()) * rowBytes
		tr := x.env.Net.TransferLatency(network.Requester, i, bytes, x.at)
		x.bd.PerDevTrans[i] += tr
		return tr
	}
	var arrive float64
	for j, own := range x.owner {
		ov := in.Intersect(own)
		if ov.Empty() {
			continue
		}
		t := x.acc[j]
		if j != i {
			bytes := float64(ov.Len()) * rowBytes
			tr := x.env.Net.TransferLatency(j, i, bytes, x.at+t)
			x.bd.PerDevTrans[i] += tr
			t += tr
		}
		if t > arrive {
			arrive = t
		}
	}
	return arrive
}

// Finish completes the image: gathers the last volume's output (to the FC
// owner if the model has FC layers, else directly to the requester),
// computes any FC layers, and returns the result to the requester. It
// returns the end-to-end latency of the image. The Breakdown aliases the
// exec's buffers and is valid until the next Reset.
func (x *Exec) Finish() (float64, Breakdown, error) {
	if x.err != nil {
		return 0, x.bd, x.err
	}
	if !x.Done() {
		return 0, x.bd, fmt.Errorf("sim: Finish called with %d volumes remaining", x.NumVolumes()-x.vol)
	}
	convLayers := x.env.Model.SplittableLayers()
	last := convLayers[len(convLayers)-1]
	rowBytes := last.OutRowBytes()
	fcs := x.env.Model.FCLayers()

	if len(fcs) == 0 {
		// Fully-convolutional model: each provider returns its rows.
		var end float64
		for j, own := range x.owner {
			if own.Empty() {
				continue
			}
			t := x.acc[j] + x.env.Net.TransferLatency(j, network.Requester, float64(own.Len())*rowBytes, x.at+x.acc[j])
			if t > end {
				end = t
			}
		}
		return end, x.bd, nil
	}

	// FC owner: provider with the largest share of the last volume
	// (Section V-A).
	ownerIdx, best := 0, -1
	for j, own := range x.owner {
		if own.Len() > best {
			best = own.Len()
			ownerIdx = j
		}
	}
	// Gather the full feature map at the owner.
	ready := x.acc[ownerIdx]
	for j, own := range x.owner {
		if j == ownerIdx || own.Empty() {
			continue
		}
		bytes := float64(own.Len()) * rowBytes
		tr := x.env.Net.TransferLatency(j, ownerIdx, bytes, x.at+x.acc[j])
		x.bd.PerDevTrans[ownerIdx] += tr
		if t := x.acc[j] + tr; t > ready {
			ready = t
		}
	}
	// FC compute on the owner.
	var fcLat float64
	for _, fc := range fcs {
		fcLat += x.env.Devices[ownerIdx].ComputeLatency(fc, 1)
	}
	x.bd.PerDevComp[ownerIdx] += fcLat
	done := ready + fcLat
	// Result back to the requester.
	result := fcs[len(fcs)-1].OutputBytes()
	end := done + x.env.Net.TransferLatency(ownerIdx, network.Requester, result, x.at+done)
	return end, x.bd, nil
}

// Latency runs a full strategy for one image starting at absolute time `at`
// and returns the end-to-end latency and breakdown. The strategy is
// compiled on first use and the plan is memoized on the environment, so
// repeated evaluations of the same strategy are allocation-free apart from
// the returned Breakdown.
func (e *Env) Latency(s *strategy.Strategy, at float64) (float64, Breakdown, error) {
	p, err := e.checkoutPlan(s)
	if err != nil {
		return 0, Breakdown{}, err
	}
	lat, bd := p.run(at)
	out := bd.clone()
	e.checkinPlan(p)
	return lat, out, nil
}

// ReferenceLatency is the original per-image execution path: it validates
// the strategy and re-derives all geometry for every call. It is retained
// as the differential-testing oracle for the compiled path — both produce
// bit-identical results.
func (e *Env) ReferenceLatency(s *strategy.Strategy, at float64) (float64, Breakdown, error) {
	if err := s.Validate(e.Model, e.NumProviders()); err != nil {
		return 0, Breakdown{}, err
	}
	x := NewExec(e, s.Boundaries, at)
	for v := 0; v < s.NumVolumes(); v++ {
		x.Step(s.Splits[v])
	}
	lat, bd, err := x.Finish()
	return lat, bd, err
}

// StreamResult summarises a streaming evaluation (Section V-A: images are
// sent one at a time, each waiting for the previous result).
type StreamResult struct {
	Images    int
	TotalSec  float64
	IPS       float64
	MeanLatMS float64
	Breakdown Breakdown // of the final image
}

// Stream evaluates the strategy over a stream of `images` images starting
// at trace time `start`, returning the averaged images-per-second — the
// paper's headline metric.
//
// The strategy is validated and compiled once (not once per image), and on
// time-invariant networks the stream short-circuits: as soon as the
// per-image latency reaches steady state (two consecutive images with
// identical latency — on a constant network that is image two), the
// remaining images are extrapolated with the same accumulation the full
// loop would perform, so the result stays bit-identical while the cost
// drops from O(images) simulations to O(1).
func (e *Env) Stream(s *strategy.Strategy, images int, start float64) (StreamResult, error) {
	if images <= 0 {
		return StreamResult{}, fmt.Errorf("sim: need at least 1 image")
	}
	p, err := e.checkoutPlan(s)
	if err != nil {
		return StreamResult{}, err
	}
	invariant := e.Net.TimeInvariant()
	t := start
	var lastBD Breakdown
	prevLat := -1.0
	for i := 0; i < images; i++ {
		lat, bd := p.run(t)
		t += lat
		lastBD = bd
		if invariant && lat == prevLat {
			// Steady state: images do not overlap, so with a
			// time-invariant network every remaining image repeats this
			// latency and breakdown exactly.
			for k := i + 1; k < images; k++ {
				t += lat
			}
			break
		}
		prevLat = lat
	}
	out := lastBD.clone()
	e.checkinPlan(p)
	total := t - start
	return StreamResult{
		Images:    images,
		TotalSec:  total,
		IPS:       float64(images) / total,
		MeanLatMS: total / float64(images) * 1e3,
		Breakdown: out,
	}, nil
}
