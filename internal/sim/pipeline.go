package sim

import (
	"fmt"
	"math"
	"sort"

	"distredge/internal/network"
	"distredge/internal/strategy"
)

// PipelineResult summarises a pipelined streaming evaluation: `Window`
// images are kept in flight at once (admission is FIFO — image m enters the
// moment image m-Window completes), so the result measures sustained
// throughput rather than the sequential latency Stream reports.
type PipelineResult struct {
	Images   int
	Window   int
	Batch    int     // per-step image batching the devices were modelled with
	TotalSec float64 // first admission to last completion
	IPS      float64 // Images / TotalSec
	// SteadyIPS is the throughput over the second half of the stream, after
	// the pipeline has filled — the sustained-serving rate.
	SteadyIPS float64

	// Per-image latency distribution (admission to completion, seconds).
	// Queueing on busy devices and links is included, so for Window > 1
	// these exceed the single-image oracle latency.
	PerImageSec []float64
	MeanLatMS   float64
	P50LatMS    float64
	P95LatMS    float64
	MaxLatMS    float64
}

// pipeState carries resource occupancy across in-flight images: when each
// provider's compute unit, each directed link, and the requester's scatter
// uplink free up (absolute trace time). Within one image the engine replays
// the oracle schedule of CompiledPlan.run unchanged; the carryover only
// floors the image's start times, so overlapping images queue on devices
// and links while a lone image (window 1) reproduces Stream bit-for-bit.
type pipeState struct {
	n        int
	devFree  []float64 // provider compute unit frees, absolute
	linkFree []float64 // (n+1)^2 directed pairs incl. requester, absolute
	upFree   float64   // requester scatter uplink frees, absolute

	// Per-image scratch: end times relative to the image's admission.
	devFloor []float64
	linkEnd  []float64
	upEnd    float64

	// Step batching (batch != 1 only; batch 1 keeps the float operations of
	// the unbatched engine untouched). stepRuns counts, per (device, volume)
	// pair, how many consecutive images joined the currently open batch of
	// that step, mirroring the runtime's workQueue coalescing: a step whose
	// inputs arrive while the device is still busy queues behind it, and up
	// to `batch` queued images of the same step run as one invocation — the
	// first pays the full step cost, the rest only the marginal cost. batch
	// 0 is the adaptive cap: an open batch admits every queued image.
	batch    int
	stride   int // stepRuns row stride: volumes + 1 (synthetic FC generation)
	stepRuns []int

	// wire multiplies transfer bytes, modelling a payload-shrinking wire
	// codec (1 = raw activation bytes; applied only when != 1 so the
	// default path stays bit-identical).
	wire float64
}

func newPipeState(n, numVols, batch int, wire float64) *pipeState {
	ps := &pipeState{
		n:        n,
		devFree:  make([]float64, n),
		linkFree: make([]float64, (n+1)*(n+1)),
		upFree:   math.Inf(-1),
		devFloor: make([]float64, n),
		linkEnd:  make([]float64, (n+1)*(n+1)),
		batch:    batch,
		stride:   numVols + 1,
		wire:     wire,
	}
	if batch != 1 {
		ps.stepRuns = make([]int, n*ps.stride)
	}
	for i := range ps.devFree {
		ps.devFree[i] = math.Inf(-1)
	}
	for i := range ps.linkFree {
		ps.linkFree[i] = math.Inf(-1)
	}
	return ps
}

// batchedComp returns the compute seconds image m charges for the step of
// volume v on device i. queued reports whether the step's inputs arrived
// while the device was still busy — the precondition for the runtime's
// queue coalescing. A queued step joins the open (i, v) batch while it has
// room and pays only the marginal cost; otherwise it starts (or restarts)
// the batch and pays the full step cost. Only called when ps.batch != 1.
func (ps *pipeState) batchedComp(i, v int, comp float64, queued bool) float64 {
	k := i*ps.stride + v
	if queued && ps.stepRuns[k] >= 1 && (ps.batch == 0 || ps.stepRuns[k] < ps.batch) {
		ps.stepRuns[k]++
		return comp * (1 - BatchFixedFrac)
	}
	ps.stepRuns[k] = 1
	return comp
}

// xferBytes applies the wire-codec byte fraction (identity when wire == 1,
// with no float operation, so the default path is bit-identical).
func (ps *pipeState) xferBytes(b float64) float64 {
	if ps.wire != 1 {
		return b * ps.wire
	}
	return b
}

// linkIdx maps a directed (from, to) pair (network.Requester = -1 allowed on
// either side) to a flat index.
func (ps *pipeState) linkIdx(from, to int) int {
	return (from+1)*(ps.n+1) + (to + 1)
}

// floor returns the relative busy floor of an absolute free time for an
// image admitted at `at` (never negative).
func floor(freeAbs, at float64) float64 {
	f := freeAbs - at
	if f < 0 {
		return 0
	}
	return f
}

// runPipelined replays the plan for one image admitted at absolute time
// `at`, flooring start times with the carried resource occupancy and
// recording this image's own occupancy back into ps. It returns the image's
// end-to-end latency (relative to `at`). When every carried floor is in the
// past — always true for window 1 — the float operations are exactly those
// of run, so the latency is bit-identical.
func (p *CompiledPlan) runPipelined(at float64, ps *pipeState) float64 {
	net := p.env.Net
	for i := range p.acc {
		p.acc[i] = 0
		p.busy[i] = floor(ps.devFree[i], at)
		ps.devFloor[i] = p.busy[i]
	}
	for i := range ps.linkEnd {
		ps.linkEnd[i] = -1
	}
	upFloor := floor(ps.upFree, at)
	ps.upEnd = -1

	for v := range p.vols {
		copy(p.accNext, p.acc)
		parts := p.vols[v].parts
		for i := range parts {
			cp := &parts[i]
			if !cp.active {
				continue
			}
			var arrive float64
			if cp.hasIn {
				if v == 0 {
					// Scatter starts once the uplink has finished pumping
					// the previous in-flight images' inputs.
					tr := net.TransferLatency(network.Requester, i, ps.xferBytes(cp.scatterB), at+upFloor)
					arrive = upFloor + tr
					if arrive > ps.upEnd {
						ps.upEnd = arrive
					}
				} else {
					for _, src := range cp.srcs {
						t := p.acc[src.j]
						if src.j != i {
							li := ps.linkIdx(src.j, i)
							if lf := floor(ps.linkFree[li], at); lf > t {
								t = lf
							}
							tr := net.TransferLatency(src.j, i, ps.xferBytes(src.bytes), at+t)
							t += tr
							if t > ps.linkEnd[li] {
								ps.linkEnd[li] = t
							}
						}
						if t > arrive {
							arrive = t
						}
					}
				}
			}
			start := arrive
			if p.busy[i] > start {
				start = p.busy[i]
			}
			comp := cp.comp
			if ps.batch != 1 {
				comp = ps.batchedComp(i, v, comp, p.busy[i] > arrive)
			}
			finish := start + comp
			p.busy[i] = finish
			p.accNext[i] = finish
		}
		p.acc, p.accNext = p.accNext, p.acc
	}

	var end float64
	if p.fcOwner < 0 {
		// Fully-convolutional: providers return their rows directly.
		for _, f := range p.finish {
			t := p.acc[f.j]
			li := ps.linkIdx(f.j, network.Requester)
			if lf := floor(ps.linkFree[li], at); lf > t {
				t = lf
			}
			t += net.TransferLatency(f.j, network.Requester, ps.xferBytes(f.bytes), at+t)
			if t > ps.linkEnd[li] {
				ps.linkEnd[li] = t
			}
			if t > end {
				end = t
			}
		}
	} else {
		ready := p.acc[p.fcOwner]
		for _, f := range p.finish {
			t := p.acc[f.j]
			li := ps.linkIdx(f.j, p.fcOwner)
			if lf := floor(ps.linkFree[li], at); lf > t {
				t = lf
			}
			t += net.TransferLatency(f.j, p.fcOwner, ps.xferBytes(f.bytes), at+t)
			if t > ps.linkEnd[li] {
				ps.linkEnd[li] = t
			}
			if t > ready {
				ready = t
			}
		}
		start := ready
		if p.busy[p.fcOwner] > start {
			start = p.busy[p.fcOwner]
		}
		fcLat := p.fcLat
		if ps.batch != 1 {
			fcLat = ps.batchedComp(p.fcOwner, len(p.vols), fcLat, p.busy[p.fcOwner] > ready)
		}
		done := start + fcLat
		p.busy[p.fcOwner] = done
		li := ps.linkIdx(p.fcOwner, network.Requester)
		t := done
		if lf := floor(ps.linkFree[li], at); lf > t {
			t = lf
		}
		end = t + net.TransferLatency(p.fcOwner, network.Requester, ps.xferBytes(p.resultBytes), at+t)
		if end > ps.linkEnd[li] {
			ps.linkEnd[li] = end
		}
	}

	// Merge this image's occupancy back into the carried state. Only
	// resources the image actually used are touched, so idle devices do not
	// accumulate rounding drift from the relative/absolute round trip.
	for i := range p.busy {
		if p.busy[i] > ps.devFloor[i] {
			if abs := at + p.busy[i]; abs > ps.devFree[i] {
				ps.devFree[i] = abs
			}
		}
	}
	for li, e := range ps.linkEnd {
		if e >= 0 {
			if abs := at + e; abs > ps.linkFree[li] {
				ps.linkFree[li] = abs
			}
		}
	}
	if ps.upEnd >= 0 {
		if abs := at + ps.upEnd; abs > ps.upFree {
			ps.upFree = abs
		}
	}
	return end
}

// PipelineStream evaluates the strategy over `images` images with up to
// `window` images in flight, starting at trace time `start`. Admission is
// FIFO: image m is sent the moment image m-window completes (window 1 is
// exactly Stream's one-at-a-time protocol, and reproduces its TotalSec and
// IPS bit-for-bit). Overlapping images queue on the shared resources —
// per-provider compute units, every directed link, and the requester's
// scatter uplink — so the result measures the sustained images/sec the
// deployment can serve plus the per-image latency distribution under load.
func (e *Env) PipelineStream(s *strategy.Strategy, images, window int, start float64) (PipelineResult, error) {
	return e.PipelineStreamOpts(s, PipelineConfig{Images: images, Window: window, Start: start, Batch: 1})
}

// PipelineConfig parameterises PipelineStreamOpts beyond the basic
// images/window/start triple. WireFrac 0 means 1 (raw activation bytes on
// every link); Batch 0 means adaptive draining (see Batch).
type PipelineConfig struct {
	Images int
	Window int

	// Batch is the per-step image batching the devices run with: up to
	// Batch images whose inputs queued behind a busy device coalesce into
	// one step invocation under the sublinear BatchedComputeSec cost model.
	// 1 (or negative) disables batching and reproduces PipelineStream
	// bit-for-bit. 0 — the zero value — is the adaptive cap, mirroring the
	// runtime's Options.Batch: a step drains whatever queued behind the
	// busy device, joining the open batch without a size bound.
	Batch int

	// WireFrac scales every transfer's byte count, modelling a wire codec
	// that shrinks payloads (0.25 for int8 quantization, 0.5 for fp16).
	// 0 means 1 (raw bytes). Must be positive and finite.
	WireFrac float64

	Start float64 // trace time of the first admission
}

// PipelineStreamOpts is PipelineStream with step batching and a wire-codec
// byte fraction folded into the busy-floor model. With Batch and WireFrac
// at their defaults it is exactly PipelineStream (bit-identical float
// operations, property-tested).
func (e *Env) PipelineStreamOpts(s *strategy.Strategy, cfg PipelineConfig) (PipelineResult, error) {
	images, window, start := cfg.Images, cfg.Window, cfg.Start
	if images <= 0 {
		return PipelineResult{}, fmt.Errorf("sim: need at least 1 image")
	}
	if window < 1 {
		return PipelineResult{}, fmt.Errorf("sim: window must be >= 1, got %d", window)
	}
	batch := cfg.Batch
	if batch < 0 {
		batch = 1
	}
	wire := cfg.WireFrac
	if wire == 0 {
		wire = 1
	}
	if !(wire > 0) || math.IsInf(wire, 0) {
		return PipelineResult{}, fmt.Errorf("sim: wire fraction must be positive and finite, got %v", cfg.WireFrac)
	}
	p, err := e.checkoutPlan(s)
	if err != nil {
		return PipelineResult{}, err
	}
	ps := newPipeState(e.NumProviders(), len(p.vols), batch, wire)
	complete := make([]float64, images)
	perImage := make([]float64, images)
	adm := start
	for m := 0; m < images; m++ {
		if m >= window {
			if c := complete[m-window]; c > adm {
				adm = c
			}
		}
		lat := p.runPipelined(adm, ps)
		perImage[m] = lat
		complete[m] = adm + lat
	}
	e.checkinPlan(p)

	res := PipelineResult{
		Images:      images,
		Window:      window,
		Batch:       batch,
		TotalSec:    complete[images-1] - start,
		PerImageSec: perImage,
	}
	res.IPS = float64(images) / res.TotalSec
	res.SteadyIPS = steadyIPS(complete, res.IPS)

	sorted := append([]float64(nil), perImage...)
	sort.Float64s(sorted)
	var sum float64
	for _, l := range sorted {
		sum += l
	}
	res.MeanLatMS = sum / float64(images) * 1e3
	res.P50LatMS = quantile(sorted, 0.50) * 1e3
	res.P95LatMS = quantile(sorted, 0.95) * 1e3
	res.MaxLatMS = sorted[images-1] * 1e3
	return res, nil
}

// steadyIPS returns the throughput over the second half of a completion
// timeline (absolute completion times in admission order) — the sustained
// rate once the pipeline has filled. When the half-point span is not
// positive — a single-image stream, or every second-half image completing
// at the identical timestamp, which a degenerate plan on a constant trace
// can produce — it falls back to the overall rate instead of dividing by
// zero (regression-tested by TestSteadyIPSZeroSpanFallsBackToIPS).
func steadyIPS(complete []float64, ips float64) float64 {
	n := len(complete)
	if half := n / 2; half >= 1 && n > half {
		span := complete[n-1] - complete[half-1]
		if span > 0 {
			return float64(n-half) / span
		}
	}
	return ips
}

// quantile returns the q-quantile of a sorted slice (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}
