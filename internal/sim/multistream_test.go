package sim

import (
	"strings"
	"testing"
)

// TestMultiStreamSingleTenantMatchesPipeline pins the multi-stream engine
// to PipelineStreamOpts on its common subset: one tenant enqueued at the
// start under FIFO frees slots in admission order whenever completions are
// monotone, so the whole-stream totals must be bit-identical.
func TestMultiStreamSingleTenantMatchesPipeline(t *testing.T) {
	for _, constant := range []bool{true, false} {
		env := equivEnv(t, constant)
		s := equivStrategies(env.Model, env.NumProviders())[0]
		const images, window = 20, 4
		want, err := env.PipelineStream(s, images, window, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := env.MultiStream(s, []TenantSpec{{Name: "solo", Images: images}}, AdmitFIFO, window)
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalSec != want.TotalSec {
			t.Errorf("constant=%v: TotalSec %.17g != pipeline %.17g", constant, got.TotalSec, want.TotalSec)
		}
		if got.IPS != want.IPS {
			t.Errorf("constant=%v: IPS %.17g != pipeline %.17g", constant, got.IPS, want.IPS)
		}
		if len(got.Tenants) != 1 || got.Tenants[0].Images != images {
			t.Fatalf("constant=%v: tenant results %+v", constant, got.Tenants)
		}
	}
}

// TestMultiStreamWFQImprovesSmallTenantP95 is the offline half of the
// tentpole's differential criterion: a small high-weight tenant sharing
// the fleet with a heavy tenant's burst must see a strictly better p95
// under weighted fair queueing than under FIFO (where the burst runs
// first), while the whole stream's rate stays comparable.
func TestMultiStreamWFQImprovesSmallTenantP95(t *testing.T) {
	env := equivEnv(t, true)
	s := equivStrategies(env.Model, env.NumProviders())[0]
	tenants := []TenantSpec{
		{Name: "heavy", Images: 16, Weight: 1},
		{Name: "small", Images: 4, Weight: 4},
	}
	fifo, err := env.MultiStream(s, tenants, AdmitFIFO, 4)
	if err != nil {
		t.Fatal(err)
	}
	wfq, err := env.MultiStream(s, tenants, AdmitWFQ, 4)
	if err != nil {
		t.Fatal(err)
	}
	fifoSmall := fifo.Tenants[1].P95LatMS
	wfqSmall := wfq.Tenants[1].P95LatMS
	if !(wfqSmall < fifoSmall) {
		t.Errorf("small tenant p95: wfq %.1fms must beat fifo %.1fms", wfqSmall, fifoSmall)
	}
	// Work conservation: the policies reorder the same requests over the
	// same resources, so the whole stream finishes at a comparable rate.
	if wfq.IPS < 0.5*fifo.IPS {
		t.Errorf("wfq IPS %.3f collapsed vs fifo %.3f — reordering must not destroy throughput", wfq.IPS, fifo.IPS)
	}
	// And the heavy tenant keeps its full request count.
	if wfq.Tenants[0].Images != 16 || fifo.Tenants[0].Images != 16 {
		t.Errorf("heavy tenant image counts: wfq %d fifo %d, want 16", wfq.Tenants[0].Images, fifo.Tenants[0].Images)
	}
}

// TestMultiStreamLateEnqueueWaits pins the arrival model: a tenant whose
// burst arrives after the stream start is not admitted before it, and its
// latencies are measured from ITS enqueue, not the stream start — a burst
// landing on an idle pipeline sees solo latency regardless of how late it
// arrived.
func TestMultiStreamLateEnqueueWaits(t *testing.T) {
	env := equivEnv(t, true)
	s := equivStrategies(env.Model, env.NumProviders())[0]
	solo, err := env.MultiStream(s, []TenantSpec{{Name: "solo", Images: 1}}, AdmitFIFO, 2)
	if err != nil {
		t.Fatal(err)
	}
	early, err := env.MultiStream(s, []TenantSpec{{Name: "early", Images: 2}}, AdmitFIFO, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue the late burst after the early one has fully drained: the
	// pipeline is idle, so the late tenant's first request must complete in
	// exactly the solo single-image latency despite arriving mid-stream.
	gap := early.TotalSec + 1
	res, err := env.MultiStreamOpts(s, MultiStreamConfig{
		Tenants: []TenantSpec{
			{Name: "early", Images: 2},
			{Name: "late", Images: 1, EnqueueSec: gap},
		},
		Window: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	late := res.Tenants[1]
	if late.Images != 1 {
		t.Fatalf("late tenant served %d of 1", late.Images)
	}
	if late.PerImageSec[0] != solo.Tenants[0].PerImageSec[0] {
		t.Errorf("late tenant on an idle pipeline: latency %.17g != solo %.17g — enqueue offset leaked into the measurement",
			late.PerImageSec[0], solo.Tenants[0].PerImageSec[0])
	}
	if res.TotalSec < gap {
		t.Errorf("stream finished in %.3fs, before the late burst at %.3fs arrived", res.TotalSec, gap)
	}
}

// TestMultiStreamValidation covers the config error paths.
func TestMultiStreamValidation(t *testing.T) {
	env := equivEnv(t, true)
	s := equivStrategies(env.Model, env.NumProviders())[0]
	cases := []struct {
		name string
		cfg  MultiStreamConfig
		want string
	}{
		{"no tenants", MultiStreamConfig{Window: 4}, "at least one tenant"},
		{"bad window", MultiStreamConfig{Tenants: []TenantSpec{{Images: 1}}, Window: 0}, "window must be >= 1"},
		{"bad policy", MultiStreamConfig{Tenants: []TenantSpec{{Images: 1}}, Window: 1, Policy: "lifo"}, "unknown admission policy"},
		{"no images", MultiStreamConfig{Tenants: []TenantSpec{{Images: 0}}, Window: 1}, "at least one image"},
		{"negative enqueue", MultiStreamConfig{Tenants: []TenantSpec{{Images: 1, EnqueueSec: -1}}, Window: 1}, "negative"},
		{"bad wire", MultiStreamConfig{Tenants: []TenantSpec{{Images: 1}}, Window: 1, WireFrac: -0.5}, "wire fraction"},
	}
	for _, c := range cases {
		if _, err := env.MultiStreamOpts(s, c.cfg); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestPipelineStreamSingleImageSteady covers the n=1 stream end to end:
// with one image there is no second half to rate, so SteadyIPS must fall
// back to the overall IPS instead of dividing by a zero span.
func TestPipelineStreamSingleImageSteady(t *testing.T) {
	env := equivEnv(t, true)
	s := equivStrategies(env.Model, env.NumProviders())[0]
	res, err := env.PipelineStream(s, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyIPS != res.IPS {
		t.Errorf("single-image stream: SteadyIPS %.17g != IPS %.17g", res.SteadyIPS, res.IPS)
	}
	if res.IPS <= 0 {
		t.Errorf("single-image stream: IPS %g must be positive", res.IPS)
	}
}
