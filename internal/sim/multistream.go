package sim

import (
	"fmt"
	"math"
	"sort"

	"distredge/internal/strategy"
)

// Admission policies for MultiStreamOpts and the runtime gateway it
// mirrors. Both implementations share the same pick rule so a policy swept
// offline here transfers to internal/gateway unchanged:
//
//   - AdmitFIFO serves requests strictly in enqueue order (ties broken by
//     tenant index), so a heavy tenant's burst runs ahead of everyone
//     queued behind it;
//   - AdmitWFQ is weighted fair queueing by request count: each admission
//     charges the tenant 1/Weight of virtual service and the tenant with
//     the least virtual service (plus its next request's charge) goes
//     first, so a small tenant with any backlog is interleaved with a
//     heavy one instead of waiting out its burst.
const (
	AdmitFIFO = "fifo"
	AdmitWFQ  = "wfq"
)

// TenantSpec describes one tenant's workload for MultiStreamOpts: a backlog
// of Images requests enqueued together at EnqueueSec (the burst model — a
// client handing the gateway its whole batch at once).
type TenantSpec struct {
	Name   string
	Images int
	// Weight is the tenant's fair-queueing share (<= 0 means 1). Only
	// AdmitWFQ consults it.
	Weight float64
	// Window caps the tenant's own in-flight requests (<= 0 means bounded
	// only by the global window).
	Window int
	// EnqueueSec is when the tenant's backlog arrives, relative to the
	// stream start. Must not be negative.
	EnqueueSec float64
}

// TenantResult is one tenant's latency distribution out of a multi-stream
// evaluation. Latencies are enqueue-to-completion — they include the time a
// request queued in the gateway before admission, which is what a
// per-tenant SLO bounds (and what FIFO vs fair queueing actually changes).
type TenantResult struct {
	Name        string
	Images      int
	PerImageSec []float64 // enqueue-to-completion, in admission order
	MeanLatMS   float64
	P50LatMS    float64
	P95LatMS    float64
	MaxLatMS    float64
}

// MultiStreamResult summarises a multi-tenant streaming evaluation.
type MultiStreamResult struct {
	Policy   string
	Window   int
	TotalSec float64 // stream start to last completion
	IPS      float64 // all tenants' images / TotalSec
	Tenants  []TenantResult
}

// MultiStreamConfig parameterises MultiStreamOpts. Batch and WireFrac mean
// exactly what they mean in PipelineConfig (Batch 0 drains adaptively,
// 1/negative disables batching; WireFrac 0 means raw bytes).
type MultiStreamConfig struct {
	Tenants  []TenantSpec
	Policy   string // AdmitFIFO (default) or AdmitWFQ
	Window   int    // global admission window shared by every tenant
	Batch    int
	WireFrac float64
	Start    float64 // trace time of the stream start
}

// MultiStream evaluates the strategy serving several tenants' request
// backlogs at once — the simulator mirror of the runtime gateway
// (internal/gateway). See MultiStreamOpts.
func (e *Env) MultiStream(s *strategy.Strategy, tenants []TenantSpec, policy string, window int) (MultiStreamResult, error) {
	return e.MultiStreamOpts(s, MultiStreamConfig{Tenants: tenants, Policy: policy, Window: window, Batch: 1})
}

// MultiStreamOpts admits many tenants' requests into one shared pipeline:
// a global window of images is kept in flight over the same busy-floor
// resource model as PipelineStreamOpts, and whenever a slot frees the next
// request is chosen by the admission policy among tenants with backlog,
// per-tenant window slack and an arrived burst. A single tenant enqueued at
// the start under AdmitFIFO reproduces PipelineStreamOpts bit-for-bit
// whenever completions happen in admission order (property-tested) — the
// engines only differ when completions reorder, where the multi-stream
// model frees the earliest-completing slot rather than the
// earliest-admitted one, matching what the gateway's semaphore really does.
func (e *Env) MultiStreamOpts(s *strategy.Strategy, cfg MultiStreamConfig) (MultiStreamResult, error) {
	if len(cfg.Tenants) == 0 {
		return MultiStreamResult{}, fmt.Errorf("sim: need at least one tenant")
	}
	if cfg.Window < 1 {
		return MultiStreamResult{}, fmt.Errorf("sim: window must be >= 1, got %d", cfg.Window)
	}
	policy := cfg.Policy
	if policy == "" {
		policy = AdmitFIFO
	}
	if policy != AdmitFIFO && policy != AdmitWFQ {
		return MultiStreamResult{}, fmt.Errorf("sim: unknown admission policy %q (want %s|%s)", cfg.Policy, AdmitFIFO, AdmitWFQ)
	}
	batch := cfg.Batch
	if batch < 0 {
		batch = 1
	}
	wire := cfg.WireFrac
	if wire == 0 {
		wire = 1
	}
	if !(wire > 0) || math.IsInf(wire, 0) {
		return MultiStreamResult{}, fmt.Errorf("sim: wire fraction must be positive and finite, got %v", cfg.WireFrac)
	}

	nT := len(cfg.Tenants)
	names := make([]string, nT)
	weights := make([]float64, nT)
	caps := make([]int, nT)
	enq := make([]float64, nT)     // absolute enqueue time of the tenant's burst
	backlog := make([]int, nT)     // requests not yet admitted
	tinfl := make([]int, nT)       // requests in flight
	vserved := make([]float64, nT) // WFQ virtual service already charged
	total := 0
	for i, t := range cfg.Tenants {
		if t.Images < 1 {
			return MultiStreamResult{}, fmt.Errorf("sim: tenant %d needs at least one image, got %d", i, t.Images)
		}
		if t.EnqueueSec < 0 {
			return MultiStreamResult{}, fmt.Errorf("sim: tenant %d enqueue time %g is negative", i, t.EnqueueSec)
		}
		names[i] = t.Name
		if names[i] == "" {
			names[i] = fmt.Sprintf("tenant%d", i)
		}
		weights[i] = t.Weight
		if weights[i] <= 0 {
			weights[i] = 1
		}
		caps[i] = t.Window
		if caps[i] <= 0 {
			caps[i] = cfg.Window
		}
		enq[i] = cfg.Start + t.EnqueueSec
		backlog[i] = t.Images
		total += t.Images
	}

	p, err := e.checkoutPlan(s)
	if err != nil {
		return MultiStreamResult{}, err
	}
	ps := newPipeState(e.NumProviders(), len(p.vols), batch, wire)

	// In-flight slots: absolute completion time plus owning tenant. The
	// window is small, so linear min scans stay cheap and deterministic.
	type slot struct {
		done   float64
		tenant int
	}
	var inflight []slot
	minSlot := func() int {
		mi := -1
		for i := range inflight {
			if mi < 0 || inflight[i].done < inflight[mi].done {
				mi = i
			}
		}
		return mi
	}

	perTenant := make([][]float64, nT)
	now := cfg.Start
	lastDone := cfg.Start
	for admitted := 0; admitted < total; admitted++ {
		pick := -1
		for pick < 0 {
			// Free every slot whose image has completed by now.
			for {
				mi := minSlot()
				if mi < 0 || inflight[mi].done > now {
					break
				}
				tinfl[inflight[mi].tenant]--
				inflight[mi] = inflight[len(inflight)-1]
				inflight = inflight[:len(inflight)-1]
			}
			if len(inflight) < cfg.Window {
				best := -1
				var bestKey float64
				for t := 0; t < nT; t++ {
					if backlog[t] == 0 || enq[t] > now || tinfl[t] >= caps[t] {
						continue
					}
					var key float64
					if policy == AdmitFIFO {
						key = enq[t]
					} else {
						key = vserved[t] + 1/weights[t]
					}
					if best < 0 || key < bestKey {
						best, bestKey = t, key
					}
				}
				if best >= 0 {
					pick = best
					break
				}
			}
			// Nothing admissible yet: advance to the next event — the
			// earliest in-flight completion or the earliest burst arrival
			// still ahead of the cursor.
			next := math.Inf(1)
			if mi := minSlot(); mi >= 0 {
				next = inflight[mi].done
			}
			for t := 0; t < nT; t++ {
				if backlog[t] > 0 && enq[t] > now && enq[t] < next {
					next = enq[t]
				}
			}
			if math.IsInf(next, 1) {
				e.checkinPlan(p)
				return MultiStreamResult{}, fmt.Errorf("sim: multi-stream admission wedged with %d images left", total-admitted)
			}
			now = next
		}
		lat := p.runPipelined(now, ps)
		doneAt := now + lat
		perTenant[pick] = append(perTenant[pick], doneAt-enq[pick])
		if doneAt > lastDone {
			lastDone = doneAt
		}
		vserved[pick] += 1 / weights[pick]
		tinfl[pick]++
		backlog[pick]--
		inflight = append(inflight, slot{done: doneAt, tenant: pick})
	}
	e.checkinPlan(p)

	res := MultiStreamResult{
		Policy:   policy,
		Window:   cfg.Window,
		TotalSec: lastDone - cfg.Start,
	}
	if res.TotalSec > 0 {
		res.IPS = float64(total) / res.TotalSec
	}
	for t := 0; t < nT; t++ {
		tr := TenantResult{Name: names[t], Images: len(perTenant[t]), PerImageSec: perTenant[t]}
		sorted := append([]float64(nil), perTenant[t]...)
		sort.Float64s(sorted)
		var sum float64
		for _, l := range sorted {
			sum += l
		}
		tr.MeanLatMS = sum / float64(len(sorted)) * 1e3
		tr.P50LatMS = quantile(sorted, 0.50) * 1e3
		tr.P95LatMS = quantile(sorted, 0.95) * 1e3
		tr.MaxLatMS = sorted[len(sorted)-1] * 1e3
		res.Tenants = append(res.Tenants, tr)
	}
	return res, nil
}
