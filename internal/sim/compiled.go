package sim

import (
	"distredge/internal/network"
	"distredge/internal/strategy"
)

// gatherSrc is one precompiled transfer source: provider j sends `bytes`
// payload bytes (0 when the rows are already local, j == receiver).
type gatherSrc struct {
	j     int
	bytes float64
}

// compiledPart is everything provider i needs to replay one volume of the
// plan: the precomputed compute latency, the scatter payload (volume 0) or
// the halo-overlap sources (later volumes).
type compiledPart struct {
	active   bool    // part is non-empty
	hasIn    bool    // halo input is non-empty
	comp     float64 // device compute seconds (precomputed, time-invariant)
	scatterB float64 // volume 0: bytes scattered by the requester
	srcs     []gatherSrc
}

type compiledVolume struct {
	parts []compiledPart
}

// CompiledPlan is a strategy bound to an environment with every
// time-invariant quantity of the simulation precomputed: volume geometry,
// halo overlaps and payload sizes, per-(provider, volume) compute
// latencies, the FC-owner index and FC cost. Replaying the plan for one
// image (run) evaluates only the time-varying network transfers and reuses
// all buffers, so it allocates nothing.
//
// A CompiledPlan is not safe for concurrent use; Env.Latency/Stream manage
// exclusive checkout of memoized plans.
type CompiledPlan struct {
	env   *Env
	strat *strategy.Strategy

	// Fingerprint copies guarding against in-place strategy mutation.
	boundaries []int
	splits     [][]int

	vols []compiledVolume

	// Finish phase. fcOwner is -1 for fully-convolutional models, where
	// finish holds each provider's result-return transfer; otherwise it is
	// the FC owner and finish holds the gather-to-owner transfers.
	fcOwner     int
	fcLat       float64
	resultBytes float64
	finish      []gatherSrc

	// Per-image scratch.
	acc, accNext, busy []float64
	bdComp, bdTrans    []float64
}

// Compile validates the strategy against the environment and precomputes
// the execution plan. The compiled plan replays the exact computation of
// ReferenceLatency — float operations in the same order on the same
// values — so results are bit-identical.
func Compile(e *Env, s *strategy.Strategy) (*CompiledPlan, error) {
	n := e.NumProviders()
	geo, err := strategy.CompileGeometry(e.Model, s, n)
	if err != nil {
		return nil, err
	}
	p := &CompiledPlan{
		env:        e,
		strat:      s,
		boundaries: append([]int(nil), s.Boundaries...),
		splits:     make([][]int, len(s.Splits)),
		vols:       make([]compiledVolume, len(geo)),
		acc:        make([]float64, n),
		accNext:    make([]float64, n),
		busy:       make([]float64, n),
		bdComp:     make([]float64, n),
		bdTrans:    make([]float64, n),
	}
	for v, cuts := range s.Splits {
		p.splits[v] = append([]int(nil), cuts...)
	}

	for v, g := range geo {
		cv := compiledVolume{parts: make([]compiledPart, n)}
		for i := 0; i < n; i++ {
			part := g.Parts[i]
			if part.Empty() {
				continue
			}
			cp := compiledPart{active: true}
			in := g.Inputs[i]
			cp.hasIn = !in.Empty()
			if cp.hasIn {
				if v == 0 {
					cp.scatterB = float64(in.Len()) * g.InRowBytes
				} else {
					prev := geo[v-1]
					for j := 0; j < n; j++ {
						ov := in.Intersect(prev.Parts[j])
						if ov.Empty() {
							continue
						}
						var bytes float64
						if j != i {
							bytes = float64(ov.Len()) * g.InRowBytes
						}
						cp.srcs = append(cp.srcs, gatherSrc{j: j, bytes: bytes})
					}
				}
			}
			cp.comp = e.VolumeLatency(i, g.Layers, part)
			cv.parts[i] = cp
		}
		p.vols[v] = cv
	}

	// Finish phase precomputation mirrors Exec.Finish.
	last := geo[len(geo)-1]
	convLayers := e.Model.SplittableLayers()
	rowBytes := convLayers[len(convLayers)-1].OutRowBytes()
	fcs := e.Model.FCLayers()
	if len(fcs) == 0 {
		p.fcOwner = -1
		for j, own := range last.Parts {
			if own.Empty() {
				continue
			}
			p.finish = append(p.finish, gatherSrc{j: j, bytes: float64(own.Len()) * rowBytes})
		}
	} else {
		ownerIdx, best := 0, -1
		for j, own := range last.Parts {
			if own.Len() > best {
				best = own.Len()
				ownerIdx = j
			}
		}
		p.fcOwner = ownerIdx
		for j, own := range last.Parts {
			if j == ownerIdx || own.Empty() {
				continue
			}
			p.finish = append(p.finish, gatherSrc{j: j, bytes: float64(own.Len()) * rowBytes})
		}
		for _, fc := range fcs {
			p.fcLat += e.Devices[ownerIdx].ComputeLatency(fc, 1)
		}
		p.resultBytes = fcs[len(fcs)-1].OutputBytes()
	}
	return p, nil
}

// matches reports whether the strategy's current contents equal the ones
// the plan was compiled from.
func (p *CompiledPlan) matches(s *strategy.Strategy) bool {
	if len(s.Boundaries) != len(p.boundaries) || len(s.Splits) != len(p.splits) {
		return false
	}
	for i, b := range s.Boundaries {
		if p.boundaries[i] != b {
			return false
		}
	}
	for v, cuts := range s.Splits {
		if len(cuts) != len(p.splits[v]) {
			return false
		}
		for i, c := range cuts {
			if p.splits[v][i] != c {
				return false
			}
		}
	}
	return true
}

// run replays the plan for one image. The returned Breakdown aliases the
// plan's scratch buffers and is valid until the next run.
func (p *CompiledPlan) run(at float64) (float64, Breakdown) {
	net := p.env.Net
	for i := range p.acc {
		p.acc[i] = 0
		p.busy[i] = 0
		p.bdComp[i] = 0
		p.bdTrans[i] = 0
	}
	for v := range p.vols {
		copy(p.accNext, p.acc)
		parts := p.vols[v].parts
		for i := range parts {
			cp := &parts[i]
			if !cp.active {
				continue
			}
			var arrive float64
			if cp.hasIn {
				if v == 0 {
					tr := net.TransferLatency(network.Requester, i, cp.scatterB, at)
					p.bdTrans[i] += tr
					arrive = tr
				} else {
					for _, src := range cp.srcs {
						t := p.acc[src.j]
						if src.j != i {
							tr := net.TransferLatency(src.j, i, src.bytes, at+t)
							p.bdTrans[i] += tr
							t += tr
						}
						if t > arrive {
							arrive = t
						}
					}
				}
			}
			start := arrive
			if p.busy[i] > start {
				start = p.busy[i]
			}
			finish := start + cp.comp
			p.bdComp[i] += cp.comp
			p.busy[i] = finish
			p.accNext[i] = finish
		}
		p.acc, p.accNext = p.accNext, p.acc
	}

	bd := Breakdown{PerDevComp: p.bdComp, PerDevTrans: p.bdTrans}
	if p.fcOwner < 0 {
		// Fully-convolutional: providers return their rows directly.
		var end float64
		for _, f := range p.finish {
			t := p.acc[f.j] + net.TransferLatency(f.j, network.Requester, f.bytes, at+p.acc[f.j])
			if t > end {
				end = t
			}
		}
		return end, bd
	}
	ready := p.acc[p.fcOwner]
	for _, f := range p.finish {
		tr := net.TransferLatency(f.j, p.fcOwner, f.bytes, at+p.acc[f.j])
		p.bdTrans[p.fcOwner] += tr
		if t := p.acc[f.j] + tr; t > ready {
			ready = t
		}
	}
	p.bdComp[p.fcOwner] += p.fcLat
	done := ready + p.fcLat
	end := done + net.TransferLatency(p.fcOwner, network.Requester, p.resultBytes, at+done)
	return end, bd
}
