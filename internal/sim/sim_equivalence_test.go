package sim

import (
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/strategy"
)

// Differential tests for the compiled execution path: Latency/Stream (the
// compiled plan) must reproduce ReferenceLatency (the original per-image
// derivation) bit-for-bit, with and without the device-latency cache, on
// stable, constant and dynamic networks.

func equivEnv(t *testing.T, constant bool) *Env {
	t.Helper()
	devs := device.Fleet(device.Xavier, device.TX2, device.Nano, device.Pi3)
	net := &network.Network{}
	if constant {
		net.Requester = network.DefaultLink(network.Constant(200))
		for range devs {
			net.Providers = append(net.Providers, network.DefaultLink(network.Constant(150)))
		}
	} else {
		net = network.NewStable([]float64{50, 100, 200, 300}, 5, 11)
	}
	return &Env{Model: cnn.VGG16(), Devices: device.AsModels(devs), Net: net}
}

// equivStrategies covers the structural variety the simulator handles:
// fused volumes, layer-by-layer, pool boundaries, empty parts, everything
// on one provider.
func equivStrategies(m *cnn.Model, n int) []*strategy.Strategy {
	var out []*strategy.Strategy
	build := func(boundaries []int, cuts func(h int) []int) {
		s := &strategy.Strategy{Boundaries: boundaries}
		for v := 0; v+1 < len(boundaries); v++ {
			h := strategy.VolumeHeight(m, boundaries, v)
			s.Splits = append(s.Splits, cuts(h))
		}
		out = append(out, s)
	}
	build(strategy.SingleVolume(m), func(h int) []int { return strategy.EqualCuts(h, n) })
	build(strategy.LayerByLayer(m), func(h int) []int { return strategy.EqualCuts(h, n) })
	build(strategy.PoolBoundaries(m), func(h int) []int {
		return strategy.ProportionalCuts(h, []float64{4, 2, 1, 0}) // empty last part
	})
	build([]int{0, 10, 14, 18}, func(h int) []int { return strategy.AllOnProvider(h, n, 2) })
	return out
}

func sameBreakdown(a, b Breakdown) bool {
	if len(a.PerDevComp) != len(b.PerDevComp) || len(a.PerDevTrans) != len(b.PerDevTrans) {
		return false
	}
	for i := range a.PerDevComp {
		if a.PerDevComp[i] != b.PerDevComp[i] || a.PerDevTrans[i] != b.PerDevTrans[i] {
			return false
		}
	}
	return true
}

func TestCompiledLatencyMatchesReference(t *testing.T) {
	for _, constant := range []bool{true, false} {
		env := equivEnv(t, constant)
		for si, s := range equivStrategies(env.Model, env.NumProviders()) {
			for _, at := range []float64{0, 17.3, 301.9} {
				wantLat, wantBD, err := env.ReferenceLatency(s, at)
				if err != nil {
					t.Fatalf("strategy %d: reference: %v", si, err)
				}
				gotLat, gotBD, err := env.Latency(s, at)
				if err != nil {
					t.Fatalf("strategy %d: compiled: %v", si, err)
				}
				if gotLat != wantLat {
					t.Errorf("strategy %d at %g (constant=%v): latency %.17g != reference %.17g",
						si, at, constant, gotLat, wantLat)
				}
				if !sameBreakdown(gotBD, wantBD) {
					t.Errorf("strategy %d at %g: breakdown differs", si, at)
				}
			}
		}
	}
}

func TestStreamMatchesReferenceLoop(t *testing.T) {
	for _, constant := range []bool{true, false} {
		env := equivEnv(t, constant)
		for si, s := range equivStrategies(env.Model, env.NumProviders()) {
			const images = 40
			// The pre-compilation Stream semantics: one Latency per image.
			tt := 0.0
			var lastBD Breakdown
			for i := 0; i < images; i++ {
				lat, bd, err := env.ReferenceLatency(s, tt)
				if err != nil {
					t.Fatalf("strategy %d: reference: %v", si, err)
				}
				tt += lat
				lastBD = bd
			}
			res, err := env.Stream(s, images, 0)
			if err != nil {
				t.Fatalf("strategy %d: stream: %v", si, err)
			}
			if res.TotalSec != tt {
				t.Errorf("strategy %d (constant=%v): TotalSec %.17g != reference %.17g",
					si, constant, res.TotalSec, tt)
			}
			if res.IPS != float64(images)/tt {
				t.Errorf("strategy %d: IPS mismatch", si)
			}
			if !sameBreakdown(res.Breakdown, lastBD) {
				t.Errorf("strategy %d: final breakdown differs", si)
			}
		}
	}
}

// TestStreamFastPathEngages pins that the steady-state extrapolation is
// actually exercised on constant networks: a huge image count must finish
// without simulating every image (timeout-by-construction: 1e6 images of a
// ~100ms-latency VGG16 plan would take minutes if simulated one by one).
func TestStreamFastPathEngages(t *testing.T) {
	env := equivEnv(t, true)
	s := equivStrategies(env.Model, env.NumProviders())[0]
	res, err := env.Stream(s, 1_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	lat, _, err := env.ReferenceLatency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With a time-invariant network every image costs exactly lat.
	want := 0.0
	for i := 0; i < 1_000_000; i++ {
		want += lat
	}
	if res.TotalSec != want {
		t.Errorf("fast path TotalSec %.17g != %.17g", res.TotalSec, want)
	}
}

func TestCacheDisabledMatchesEnabled(t *testing.T) {
	for _, constant := range []bool{true, false} {
		cached := equivEnv(t, constant)
		uncached := equivEnv(t, constant)
		uncached.NoCache = true
		for si, s := range equivStrategies(cached.Model, cached.NumProviders()) {
			a, abd, err := cached.Latency(s, 3.7)
			if err != nil {
				t.Fatal(err)
			}
			b, bbd, err := uncached.Latency(s, 3.7)
			if err != nil {
				t.Fatal(err)
			}
			if a != b || !sameBreakdown(abd, bbd) {
				t.Errorf("strategy %d: cache-enabled and cache-disabled disagree", si)
			}
		}
		if st := cached.CacheStats(); st.Misses == 0 {
			t.Error("cache-enabled env recorded no misses")
		}
		if st := uncached.CacheStats(); st.Hits+st.Misses != 0 {
			t.Error("NoCache env touched the cache")
		}
	}
}

// TestPlanMemoSurvivesStrategyMutation guards the fingerprint check: an
// in-place edit of a previously compiled strategy must trigger recompile,
// not replay of the stale plan.
func TestPlanMemoSurvivesStrategyMutation(t *testing.T) {
	env := equivEnv(t, true)
	s := equivStrategies(env.Model, env.NumProviders())[3].Clone()
	if _, _, err := env.Latency(s, 0); err != nil {
		t.Fatal(err)
	}
	// Move all rows from provider 2 to provider 0 in every volume.
	for v := range s.Splits {
		h := strategy.VolumeHeight(env.Model, s.Boundaries, v)
		s.Splits[v] = strategy.AllOnProvider(h, env.NumProviders(), 0)
	}
	got, _, err := env.Latency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := env.ReferenceLatency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("mutated strategy replayed stale plan: %.17g != %.17g", got, want)
	}
}

// TestExecResetReuse pins that a reused Exec reproduces a fresh one.
func TestExecResetReuse(t *testing.T) {
	env := equivEnv(t, false)
	s := equivStrategies(env.Model, env.NumProviders())[0]
	x := NewExec(env, s.Boundaries, 5)
	for v := 0; v < s.NumVolumes(); v++ {
		x.Step(s.Splits[v])
	}
	if _, _, err := x.Finish(); err != nil {
		t.Fatal(err)
	}
	x.Reset(s.Boundaries, 9.25)
	for v := 0; v < s.NumVolumes(); v++ {
		x.Step(s.Splits[v])
	}
	gotLat, gotBD, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	wantLat, wantBD, err := env.ReferenceLatency(s, 9.25)
	if err != nil {
		t.Fatal(err)
	}
	if gotLat != wantLat || !sameBreakdown(gotBD, wantBD) {
		t.Errorf("reused exec differs from fresh execution: %.17g != %.17g", gotLat, wantLat)
	}
}
