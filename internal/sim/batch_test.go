package sim

import (
	"math"
	"testing"

	"distredge/internal/device"
	"distredge/internal/strategy"
)

// TestBatchedComputeSec pins the sublinear batch cost model both engines
// share: k <= 1 is the exact single-image cost (no float operations), and a
// k-image invocation pays the fixed fraction once plus k marginal shares.
func TestBatchedComputeSec(t *testing.T) {
	const comp = 0.0371
	if got := BatchedComputeSec(comp, 1); got != comp {
		t.Errorf("k=1: got %.17g, want exactly %.17g", got, comp)
	}
	if got := BatchedComputeSec(comp, 0); got != comp {
		t.Errorf("k=0: got %.17g, want exactly %.17g", got, comp)
	}
	want := comp * (BatchFixedFrac + (1-BatchFixedFrac)*4)
	if got := BatchedComputeSec(comp, 4); got != want {
		t.Errorf("k=4: got %g, want %g", got, want)
	}
	// Batching k images in one invocation must cost less than k invocations
	// but more than one, for every k > 1.
	for k := 2; k <= 16; k++ {
		b := BatchedComputeSec(comp, k)
		if b <= comp || b >= comp*float64(k) {
			t.Errorf("k=%d: batched cost %g outside (comp, k*comp) = (%g, %g)", k, b, comp, comp*float64(k))
		}
	}
}

// TestPipelineBatchOneMatchesPipelineStream is the acceptance-criterion
// property test: batch 1 (and the default wire fraction) must reproduce the
// pre-batching PipelineStream bit-for-bit — same float operations, not just
// close results — on constant and time-varying networks, across strategy
// shapes and windows.
func TestPipelineBatchOneMatchesPipelineStream(t *testing.T) {
	for _, constant := range []bool{true, false} {
		env := equivEnv(t, constant)
		for si, s := range equivStrategies(env.Model, env.NumProviders()) {
			for _, window := range []int{1, 3, 6} {
				const images = 30
				want, err := env.PipelineStream(s, images, window, 0)
				if err != nil {
					t.Fatalf("strategy %d: pipeline: %v", si, err)
				}
				got, err := env.PipelineStreamOpts(s, PipelineConfig{Images: images, Window: window, Batch: 1})
				if err != nil {
					t.Fatalf("strategy %d: batched pipeline: %v", si, err)
				}
				if got.TotalSec != want.TotalSec || got.IPS != want.IPS || got.SteadyIPS != want.SteadyIPS {
					t.Errorf("strategy %d (constant=%v, window=%d): batch=1 diverges: total %.17g vs %.17g, ips %.17g vs %.17g",
						si, constant, window, got.TotalSec, want.TotalSec, got.IPS, want.IPS)
				}
				for m := range want.PerImageSec {
					if got.PerImageSec[m] != want.PerImageSec[m] {
						t.Fatalf("strategy %d image %d: batch=1 latency %.17g != %.17g",
							si, m, got.PerImageSec[m], want.PerImageSec[m])
					}
				}
				if got.Batch != 1 {
					t.Errorf("result Batch = %d, want 1", got.Batch)
				}
			}
		}
	}
}

// TestPipelineBatchingIncreasesThroughput pins the tentpole claim on the
// compute axis: on a stage pipeline whose devices queue work, coalescing
// queued same-step images into batched invocations amortises the per-step
// fixed cost and raises sustained throughput. Batching can never help a
// window-1 stream (nothing ever queues), and a larger batch cap can never
// reduce throughput.
func TestPipelineBatchingIncreasesThroughput(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env.Model, []int{0, 10, 14, 18}, 4)
	const images, window = 80, 8
	run := func(batch int) PipelineResult {
		t.Helper()
		res, err := env.PipelineStreamOpts(s, PipelineConfig{Images: images, Window: window, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	b1, b4, b8 := run(1), run(4), run(8)
	if b4.SteadyIPS <= 1.05*b1.SteadyIPS {
		t.Errorf("batch 4 SteadyIPS %.3f not measurably above batch 1 %.3f", b4.SteadyIPS, b1.SteadyIPS)
	}
	if b8.SteadyIPS < b4.SteadyIPS {
		t.Errorf("batch 8 SteadyIPS %.3f below batch 4 %.3f", b8.SteadyIPS, b4.SteadyIPS)
	}
	// The adaptive cap (Batch 0) is bit-identical to a cap no batch can
	// reach — an open batch can never span more images than the stream
	// holds — and never slower than any finite cap.
	adaptive, capped := run(0), run(images)
	if adaptive.TotalSec != capped.TotalSec || adaptive.SteadyIPS != capped.SteadyIPS {
		t.Errorf("adaptive batch diverges from the unreachable cap: total %.17g vs %.17g",
			adaptive.TotalSec, capped.TotalSec)
	}
	if adaptive.SteadyIPS < b8.SteadyIPS {
		t.Errorf("adaptive SteadyIPS %.3f below batch 8 %.3f", adaptive.SteadyIPS, b8.SteadyIPS)
	}
	if adaptive.Batch != 0 {
		t.Errorf("result Batch = %d, want the adaptive 0 to round-trip", adaptive.Batch)
	}
	// Window 1: one image in flight, nothing queues, batching is inert.
	w1, err := env.PipelineStreamOpts(s, PipelineConfig{Images: 30, Window: 1, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	w1ref, err := env.PipelineStream(s, 30, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w1.TotalSec != w1ref.TotalSec {
		t.Errorf("window-1 batched total %.17g != unbatched %.17g (batching must be inert without queueing)",
			w1.TotalSec, w1ref.TotalSec)
	}
}

// TestPipelineWireFracShrinksTransfers pins the wire-codec lever: on a
// bandwidth-starved deployment, scaling every transfer's bytes down by the
// codec's fraction must cut latency and raise throughput, and the speedup
// must grow as the fraction shrinks.
func TestPipelineWireFracShrinksTransfers(t *testing.T) {
	env := testEnv(20, device.Xavier, device.Nano) // 20 Mbps: wire-dominated
	s := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 2)
	run := func(frac float64) PipelineResult {
		t.Helper()
		res, err := env.PipelineStreamOpts(s, PipelineConfig{Images: 30, Window: 4, Batch: 1, WireFrac: frac})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	raw, fp16, int8 := run(1), run(0.5), run(0.25)
	if fp16.SteadyIPS <= raw.SteadyIPS {
		t.Errorf("fp16 wire SteadyIPS %.3f not above raw %.3f", fp16.SteadyIPS, raw.SteadyIPS)
	}
	if int8.SteadyIPS <= fp16.SteadyIPS {
		t.Errorf("int8 wire SteadyIPS %.3f not above fp16 %.3f", int8.SteadyIPS, fp16.SteadyIPS)
	}
	if int8.MeanLatMS >= raw.MeanLatMS {
		t.Errorf("int8 wire mean latency %.3fms not below raw %.3fms", int8.MeanLatMS, raw.MeanLatMS)
	}
	// WireFrac 1 passed explicitly is the identity, bit-for-bit.
	ref, err := env.PipelineStream(s, 30, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if raw.TotalSec != ref.TotalSec {
		t.Errorf("WireFrac=1 total %.17g != default %.17g", raw.TotalSec, ref.TotalSec)
	}
}

func TestPipelineStreamOptsRejectsBadWireFrac(t *testing.T) {
	env := testEnv(100, device.Nano, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.SingleVolume(env.Model), 2)
	for _, frac := range []float64{-0.5, math.NaN(), math.Inf(1)} {
		if _, err := env.PipelineStreamOpts(s, PipelineConfig{Images: 5, Window: 2, WireFrac: frac}); err == nil {
			t.Errorf("WireFrac=%v must error", frac)
		}
	}
}

// TestThroughputObjectiveBatchAware checks the planner-facing contract: the
// ips objective with Batch set scores a queue-prone strategy better (lower
// seconds per image) than the unbatched objective, and Batch <= 0 defaults
// to the bit-identical unbatched score.
func TestThroughputObjectiveBatchAware(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env.Model, []int{0, 10, 14, 18}, 4)
	base, err := ThroughputObjective{Window: 8}.Score(env, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := ThroughputObjective{Window: 8, Batch: 4}.Score(env, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if batched >= base {
		t.Errorf("batch-4 objective score %.6g not below unbatched %.6g", batched, base)
	}
	zero, err := ThroughputObjective{Window: 8, Batch: 0}.Score(env, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero != base {
		t.Errorf("Batch=0 score %.17g != default %.17g", zero, base)
	}
}
