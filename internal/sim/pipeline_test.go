package sim

import (
	"math"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/strategy"
)

// TestPipelineWindowOneMatchesStream pins the acceptance criterion: with an
// admission window of 1 the pipeline engine degenerates to Stream's
// one-image-at-a-time protocol and must reproduce it bit-for-bit, on both
// constant and time-varying networks, across strategy shapes.
func TestPipelineWindowOneMatchesStream(t *testing.T) {
	for _, constant := range []bool{true, false} {
		env := equivEnv(t, constant)
		for si, s := range equivStrategies(env.Model, env.NumProviders()) {
			const images = 40
			want, err := env.Stream(s, images, 0)
			if err != nil {
				t.Fatalf("strategy %d: stream: %v", si, err)
			}
			got, err := env.PipelineStream(s, images, 1, 0)
			if err != nil {
				t.Fatalf("strategy %d: pipeline: %v", si, err)
			}
			if got.TotalSec != want.TotalSec {
				t.Errorf("strategy %d (constant=%v): TotalSec %.17g != stream %.17g",
					si, constant, got.TotalSec, want.TotalSec)
			}
			if got.IPS != want.IPS {
				t.Errorf("strategy %d (constant=%v): IPS %.17g != stream %.17g",
					si, constant, got.IPS, want.IPS)
			}
			// Per-image latencies must equal the reference per-image loop.
			tt := 0.0
			for m := 0; m < images; m++ {
				lat, _, err := env.ReferenceLatency(s, tt)
				if err != nil {
					t.Fatal(err)
				}
				if got.PerImageSec[m] != lat {
					t.Fatalf("strategy %d image %d: latency %.17g != reference %.17g",
						si, m, got.PerImageSec[m], lat)
				}
				tt += lat
			}
		}
	}
}

// stageStrategy assigns volume v entirely to provider v%n — the classic
// stage pipeline, where the sequential protocol pays the sum of the stages
// but a filled pipeline pays only the slowest stage per image.
func stageStrategy(m *cnn.Model, boundaries []int, n int) *strategy.Strategy {
	s := &strategy.Strategy{Boundaries: boundaries}
	for v := 0; v+1 < len(boundaries); v++ {
		h := strategy.VolumeHeight(m, boundaries, v)
		s.Splits = append(s.Splits, strategy.AllOnProvider(h, n, v%n))
	}
	return s
}

// TestPipelineWiderWindowIncreasesThroughput pins the tentpole claim: on a
// multi-device case, overlapping images pipelines the per-volume stages
// across devices, so a wider admission window yields measurably more
// images/sec than the sequential protocol.
func TestPipelineWiderWindowIncreasesThroughput(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env.Model, []int{0, 10, 14, 18}, 4)
	seq, err := env.PipelineStream(s, 60, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pip, err := env.PipelineStream(s, 60, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pip.IPS < 1.5*seq.IPS {
		t.Errorf("window 4 IPS %.3f not measurably above window 1 IPS %.3f", pip.IPS, seq.IPS)
	}
	// Equal splits pipeline too (every device works on every volume, so
	// only the scatter/result edges overlap), just far less.
	eq := equalSplitStrategy(env.Model, []int{0, 10, 14, 18}, 4)
	eqSeq, err := env.PipelineStream(eq, 60, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	eqPip, err := env.PipelineStream(eq, 60, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eqPip.IPS <= eqSeq.IPS {
		t.Errorf("equal split: window 4 IPS %.3f not above window 1 IPS %.3f", eqPip.IPS, eqSeq.IPS)
	}
	// Queueing can only delay an image, never speed it up: under load every
	// per-image latency is at least the unloaded oracle latency.
	oracle, _, err := env.Latency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for m, lat := range pip.PerImageSec {
		if lat < oracle-1e-12 {
			t.Fatalf("image %d latency %.6g below unloaded latency %.6g", m, lat, oracle)
		}
	}
	if pip.MeanLatMS < seq.MeanLatMS {
		t.Errorf("pipelined mean latency %.3fms below sequential %.3fms", pip.MeanLatMS, seq.MeanLatMS)
	}
}

// TestPipelineSteadyStateMatchesBottleneck checks the resource semantics on
// the simplest possible case: offloading everything to one provider makes
// that provider's compute the pipeline bottleneck, so the steady-state
// throughput must converge to 1/computeLatency (scatter and result return
// overlap with the next image's compute).
func TestPipelineSteadyStateMatchesBottleneck(t *testing.T) {
	env := testEnv(300, device.Xavier, device.Nano)
	s := offloadStrategy(env.Model, 2, 0)
	res, err := env.PipelineStream(s, 80, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	comp := device.ModelLatency(env.Devices[0], env.Model)
	got := res.SteadyIPS
	want := 1 / comp
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("steady-state IPS %.3f, want ~1/compute = %.3f", got, want)
	}
	// The sequential protocol pays scatter + compute + result per image, so
	// pipelining past it must help.
	seq, err := env.PipelineStream(s, 80, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPS <= seq.IPS {
		t.Errorf("pipelined IPS %.3f not above sequential %.3f", res.IPS, seq.IPS)
	}
}

// TestPipelineWindowBeyondImages admits everything immediately and must
// still respect resource serialization.
func TestPipelineWindowBeyondImages(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 2)
	res, err := env.PipelineStream(s, 10, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPS <= 0 || res.TotalSec <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	if res.MaxLatMS < res.P95LatMS || res.P95LatMS < res.P50LatMS {
		t.Errorf("latency quantiles out of order: p50 %.3f p95 %.3f max %.3f",
			res.P50LatMS, res.P95LatMS, res.MaxLatMS)
	}
	// Ten images on two devices cannot finish faster than the busiest
	// device can compute its per-image share.
	var perImageComp float64
	for v := 0; v < s.NumVolumes(); v++ {
		layers := strategy.Volume(env.Model, s.Boundaries, v)
		part := s.PartRange(env.Model, v, 0)
		if !part.Empty() {
			perImageComp += env.VolumeLatency(0, layers, part)
		}
	}
	if res.TotalSec < 10*perImageComp-1e-9 {
		t.Errorf("total %.4fs beats device-0 compute floor %.4fs", res.TotalSec, 10*perImageComp)
	}
}

func TestPipelineRejectsBadArgs(t *testing.T) {
	env := testEnv(100, device.Nano, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.SingleVolume(env.Model), 2)
	if _, err := env.PipelineStream(s, 0, 1, 0); err == nil {
		t.Error("zero images must error")
	}
	if _, err := env.PipelineStream(s, 5, 0, 0); err == nil {
		t.Error("zero window must error")
	}
	bad := &strategy.Strategy{Boundaries: []int{0, 5}}
	if _, err := env.PipelineStream(bad, 5, 2, 0); err == nil {
		t.Error("invalid strategy must be rejected")
	}
}
