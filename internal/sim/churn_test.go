package sim

import (
	"math/rand"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/strategy"
)

// TestChurnEmptyTimelineMatchesPipeline is the property test extending the
// PR 2 window-1 ≡ Stream invariant: ChurnStream with an empty event
// timeline must be bit-identical to PipelineStream — TotalSec, IPS,
// SteadyIPS, quantiles and every per-image latency — across random
// strategies, windows, and constant and time-varying networks.
func TestChurnEmptyTimelineMatchesPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	envs := []*Env{
		testEnv(150, device.Xavier, device.Nano, device.TX2, device.Nano),
		equivEnv(t, false), // stable (time-varying) traces
	}
	for ei, env := range envs {
		for iter := 0; iter < 20; iter++ {
			s := randomStrategy(rng, env.Model, env.NumProviders())
			window := 1 + rng.Intn(6)
			images := 5 + rng.Intn(30)
			start := []float64{0, 9.25}[rng.Intn(2)]
			want, err := env.PipelineStream(s, images, window, start)
			if err != nil {
				t.Fatalf("env %d iter %d: pipeline: %v", ei, iter, err)
			}
			got, err := env.ChurnStream(s, images, window, start, nil, ChurnOptions{Recover: true})
			if err != nil {
				t.Fatalf("env %d iter %d: churn: %v", ei, iter, err)
			}
			if got.Completed != images || got.Failed != 0 || got.Recoveries != 0 || got.Requeued != 0 {
				t.Fatalf("env %d iter %d: churn accounting nonzero without events: %+v", ei, iter, got)
			}
			if got.TotalSec != want.TotalSec {
				t.Errorf("env %d iter %d (w=%d): TotalSec %.17g != %.17g", ei, iter, window, got.TotalSec, want.TotalSec)
			}
			if got.IPS != want.IPS {
				t.Errorf("env %d iter %d (w=%d): IPS %.17g != %.17g", ei, iter, window, got.IPS, want.IPS)
			}
			if got.SteadyIPS != want.SteadyIPS {
				t.Errorf("env %d iter %d (w=%d): SteadyIPS %.17g != %.17g", ei, iter, window, got.SteadyIPS, want.SteadyIPS)
			}
			if got.MeanLatMS != want.MeanLatMS || got.P50LatMS != want.P50LatMS ||
				got.P95LatMS != want.P95LatMS || got.MaxLatMS != want.MaxLatMS {
				t.Errorf("env %d iter %d (w=%d): latency stats differ: %+v vs %+v",
					ei, iter, window, got.PipelineResult, want)
			}
			if len(got.PerImageSec) != len(want.PerImageSec) {
				t.Fatalf("env %d iter %d: %d per-image latencies, want %d",
					ei, iter, len(got.PerImageSec), len(want.PerImageSec))
			}
			for m := range want.PerImageSec {
				if got.PerImageSec[m] != want.PerImageSec[m] {
					t.Fatalf("env %d iter %d image %d: latency %.17g != %.17g",
						ei, iter, m, got.PerImageSec[m], want.PerImageSec[m])
				}
			}
		}
	}
}

// TestChurnDropWithoutRecoveryTruncates pins the sticky-failure model: a
// drop mid-stream commits only the images that completed before it and
// fails the rest, so goodput is strictly below the recovered run's.
func TestChurnDropWithoutRecoveryTruncates(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env.Model, []int{0, 10, 14, 18}, 4)
	const images = 40
	base, err := env.PipelineStream(s, images, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	failAt := base.TotalSec * 0.5
	events := []ChurnEvent{{At: failAt, Kind: DeviceDrop, Device: 1}}

	off, err := env.ChurnStream(s, images, 4, 0, events, ChurnOptions{Recover: false})
	if err != nil {
		t.Fatal(err)
	}
	if off.Completed == 0 || off.Completed >= images {
		t.Fatalf("recover-off completed %d of %d images; the drop must truncate mid-stream", off.Completed, images)
	}
	if off.Failed != images-off.Completed {
		t.Errorf("failed = %d, want %d", off.Failed, images-off.Completed)
	}
	if off.FailedAtSec != failAt {
		t.Errorf("FailedAtSec = %g, want %g", off.FailedAtSec, failAt)
	}

	on, err := env.ChurnStream(s, images, 4, 0, events, ChurnOptions{Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Completed != images || on.Failed != 0 {
		t.Fatalf("recover-on must complete everything: %+v", on)
	}
	if on.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", on.Recoveries)
	}
	if on.Requeued == 0 {
		t.Error("a mid-stream drop must requeue in-flight images")
	}
	if on.IPS <= off.IPS {
		t.Errorf("recovered goodput %.3f not above truncated goodput %.3f", on.IPS, off.IPS)
	}
	// Note: on.TotalSec may legitimately beat the churn-free run — the
	// stage layout is throughput-oriented, and the post-drop re-plan can
	// land on a better-balanced strategy for the survivors.
	if len(on.EventRecoverySec) != 1 || on.EventRecoverySec[0] <= 0 {
		t.Errorf("event recovery time missing: %v", on.EventRecoverySec)
	}
}

// TestChurnReplanChargeDelaysRecovery checks the ReplanSec knob: a larger
// simulated re-planning delay pushes the first post-event completion out.
func TestChurnReplanChargeDelaysRecovery(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Nano, device.TX2, device.Nano)
	s := stageStrategy(env.Model, []int{0, 10, 14, 18}, 4)
	base, err := env.PipelineStream(s, 30, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	events := []ChurnEvent{{At: base.TotalSec * 0.4, Kind: DeviceDrop, Device: 2}}
	cheap, err := env.ChurnStream(s, 30, 4, 0, events, ChurnOptions{Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	dear, err := env.ChurnStream(s, 30, 4, 0, events, ChurnOptions{Recover: true, ReplanSec: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dear.EventRecoverySec[0] <= cheap.EventRecoverySec[0] {
		t.Errorf("replan charge did not delay recovery: %.3fs vs %.3fs",
			dear.EventRecoverySec[0], cheap.EventRecoverySec[0])
	}
	if dear.TotalSec <= cheap.TotalSec {
		t.Errorf("replan charge did not slow the stream: %.3fs vs %.3fs", dear.TotalSec, cheap.TotalSec)
	}
}

// TestChurnSlowdownDegradesThroughput: slowing the bottleneck device must
// reduce goodput even with recovery re-planning around it.
func TestChurnSlowdownDegradesThroughput(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 2)
	base, err := env.PipelineStream(s, 30, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	events := []ChurnEvent{{At: base.TotalSec * 0.25, Kind: DeviceSlow, Device: 0, Factor: 4}}
	slowed, err := env.ChurnStream(s, 30, 2, 0, events, ChurnOptions{Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	if slowed.Completed != 30 {
		t.Fatalf("slowdown must not lose images: %+v", slowed)
	}
	if slowed.IPS >= base.IPS {
		t.Errorf("4x slowdown of device 0 did not reduce IPS: %.3f vs %.3f", slowed.IPS, base.IPS)
	}
}

// latencyReplan is a profile-aware test replanner: each volume is split
// proportionally to the alive devices' measured speed (the shape of
// splitter.BalancedReplan, without the import cycle an in-package sim test
// would create). Unlike the width-proportional default it gives a joining
// device — whose old share is zero — real work.
func latencyReplan(e *Env, old *strategy.Strategy, alive []bool) (*strategy.Strategy, error) {
	out := &strategy.Strategy{Boundaries: append([]int(nil), old.Boundaries...)}
	for v := 0; v < old.NumVolumes(); v++ {
		layers := strategy.Volume(e.Model, old.Boundaries, v)
		h := strategy.VolumeHeight(e.Model, old.Boundaries, v)
		weights := make([]float64, len(alive))
		for i := range alive {
			if !alive[i] {
				continue
			}
			if lat := e.VolumeLatency(i, layers, cnn.RowRange{Lo: 0, Hi: h}); lat > 0 {
				weights[i] = 1 / lat
			}
		}
		out.Splits = append(out.Splits, strategy.ProportionalCuts(h, weights))
	}
	return out, nil
}

// TestChurnDropThenRejoin: a device that drops and later rejoins must end
// the stream with work flowing over it again, and beat the drop-only run.
func TestChurnDropThenRejoin(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Nano, device.TX2, device.Nano)
	s := equalSplitStrategy(env.Model, []int{0, 10, 14, 18}, 4)
	base, err := env.PipelineStream(s, 40, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	drop := ChurnEvent{At: base.TotalSec * 0.2, Kind: DeviceDrop, Device: 0}
	join := ChurnEvent{At: base.TotalSec * 0.5, Kind: DeviceJoin, Device: 0}
	opts := ChurnOptions{Recover: true, Replan: latencyReplan}

	dropOnly, err := env.ChurnStream(s, 40, 4, 0, []ChurnEvent{drop}, opts)
	if err != nil {
		t.Fatal(err)
	}
	rejoin, err := env.ChurnStream(s, 40, 4, 0, []ChurnEvent{drop, join}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rejoin.Recoveries != 2 {
		t.Errorf("recoveries = %d, want 2 (drop + join)", rejoin.Recoveries)
	}
	if rejoin.Completed != 40 || dropOnly.Completed != 40 {
		t.Fatalf("recovered streams must complete: rejoin %+v dropOnly %+v", rejoin, dropOnly)
	}
	// Getting the fastest device back mid-stream must not hurt and should
	// help: the rejoin run finishes no later than the drop-only run.
	if rejoin.TotalSec > dropOnly.TotalSec*1.001 {
		t.Errorf("rejoin run (%.3fs) slower than staying degraded (%.3fs)", rejoin.TotalSec, dropOnly.TotalSec)
	}
}

func TestChurnRejectsBadEvents(t *testing.T) {
	env := testEnv(100, device.Nano, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.SingleVolume(env.Model), 2)
	if _, err := env.ChurnStream(s, 5, 1, 0, []ChurnEvent{{At: 1, Kind: DeviceDrop, Device: 7}}, ChurnOptions{}); err == nil {
		t.Error("out-of-range device must error")
	}
	if _, err := env.ChurnStream(s, 5, 1, 0, []ChurnEvent{{At: 1, Kind: DeviceSlow, Device: 0}}, ChurnOptions{}); err == nil {
		t.Error("slow event without factor must error")
	}
	if _, err := env.ChurnStream(s, 0, 1, 0, nil, ChurnOptions{}); err == nil {
		t.Error("zero images must error")
	}
	if _, err := env.ChurnStream(s, 5, 0, 0, nil, ChurnOptions{}); err == nil {
		t.Error("zero window must error")
	}
	// Dropping the whole fleet is unrecoverable.
	events := []ChurnEvent{
		{At: 0.1, Kind: DeviceDrop, Device: 0},
		{At: 0.2, Kind: DeviceDrop, Device: 1},
	}
	if _, err := env.ChurnStream(s, 50, 2, 0, events, ChurnOptions{Recover: true}); err == nil {
		t.Error("dropping every provider must error")
	}
}

func TestEnvSubset(t *testing.T) {
	env := testEnv(150, device.Xavier, device.Nano, device.TX2, device.Nano)
	sub, idx, err := env.Subset([]bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumProviders() != 2 || len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Fatalf("subset wrong: n=%d idx=%v", sub.NumProviders(), idx)
	}
	if len(sub.Net.Providers) != 2 {
		t.Fatalf("subset network has %d links", len(sub.Net.Providers))
	}
	if _, _, err := env.Subset([]bool{false, false, false, false}); err == nil {
		t.Error("empty subset must error")
	}
	if _, _, err := env.Subset([]bool{true}); err == nil {
		t.Error("short mask must error")
	}
}
