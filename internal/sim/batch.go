package sim

// BatchFixedFrac is the per-invocation fixed fraction of a step's compute
// latency under the sublinear batch cost model shared by the simulator and
// the runtime: invoking a step costs BatchFixedFrac of its single-image
// latency once (kernel launch, weight residency, im2col setup — the
// overheads batching amortises) plus the remaining (1 - BatchFixedFrac)
// per image in the batch. The value is a deliberately conservative middle
// ground: real CNN step batching on edge GPUs amortises anywhere from ~30%
// to ~70% of the per-invocation cost depending on layer shape, and both
// engines must use the same constant for the fidelity comparison to be
// about scheduling, not about calibration.
const BatchFixedFrac = 0.5

// BatchedComputeSec returns the compute seconds one invocation of a step
// takes when it processes k images at once: comp for k <= 1 (bit-identical
// to the unbatched path — no float operations are applied), and
// comp * (BatchFixedFrac + (1-BatchFixedFrac)*k) otherwise. The marginal
// cost of joining an open batch is therefore comp * (1 - BatchFixedFrac).
func BatchedComputeSec(comp float64, k int) float64 {
	if k <= 1 {
		return comp
	}
	return comp * (BatchFixedFrac + (1-BatchFixedFrac)*float64(k))
}
