package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestSLOObjectiveFeasibleMatchesThroughput pins the constrained objective
// to ThroughputObjective on feasible strategies: with a bound no strategy
// violates, the scores are bit-identical.
func TestSLOObjectiveFeasibleMatchesThroughput(t *testing.T) {
	env := equivEnv(t, false)
	s := equivStrategies(env.Model, env.NumProviders())[0]
	slo := SLOThroughputObjective{Window: 4, Images: 24, P95Sec: 1e9}
	ips := ThroughputObjective{Window: 4, Images: 24}
	got, err := slo.Score(env, s, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ips.Score(env, s, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("feasible slo score %.17g != throughput score %.17g", got, want)
	}
	if _, err := slo.Eval(env, s, 2.5); err != nil {
		t.Errorf("loose bound must be feasible, got %v", err)
	}
	ep, err := slo.EpisodeScore(env, s, 2.5, 1e9)
	if err != nil || ep != got {
		t.Errorf("episode score %g (%v) != score %g", ep, err, got)
	}
	if slo.Name() != "slo" {
		t.Errorf("name %q", slo.Name())
	}
}

// TestSLOObjectiveViolationPenalised covers the infeasible side: Eval
// rejects with ErrSLOViolated and Score returns a finite penalty that is
// (a) past any feasible score and (b) monotone in the violation, so the
// planner's search gradient still points toward the bound.
func TestSLOObjectiveViolationPenalised(t *testing.T) {
	env := equivEnv(t, false)
	s := equivStrategies(env.Model, env.NumProviders())[0]
	tight := SLOThroughputObjective{Window: 4, Images: 24, P95Sec: 1e-9}
	res, err := tight.Eval(env, s, 0)
	if !errors.Is(err, ErrSLOViolated) {
		t.Fatalf("tight bound: Eval err = %v, want ErrSLOViolated", err)
	}
	if res.P95LatMS <= 0 {
		t.Fatalf("violating Eval must still return the result, got %+v", res)
	}
	score, err := tight.Score(env, s, 0)
	if err != nil {
		t.Fatalf("Score must penalise, not error: %v", err)
	}
	if score < sloPenaltySec {
		t.Errorf("violating score %g below the penalty floor %g", score, sloPenaltySec)
	}
	feasible, err := SLOThroughputObjective{Window: 4, Images: 24, P95Sec: 1e9}.Score(env, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if score <= feasible {
		t.Errorf("violating score %g must exceed feasible %g", score, feasible)
	}
	// A looser-but-still-violated bound scores better: the gradient exists.
	looser := SLOThroughputObjective{Window: 4, Images: 24, P95Sec: 2e-9}
	ls, err := looser.Score(env, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(ls < score) {
		t.Errorf("penalty must shrink as the bound loosens: %g !< %g", ls, score)
	}
}

// TestSLOObjectiveRequiresBound: a missing or non-positive bound is a
// config error, not silently unconstrained.
func TestSLOObjectiveRequiresBound(t *testing.T) {
	env := equivEnv(t, true)
	s := equivStrategies(env.Model, env.NumProviders())[0]
	for _, bound := range []float64{0, -1} {
		o := SLOThroughputObjective{P95Sec: bound}
		if _, err := o.Eval(env, s, 0); err == nil || !strings.Contains(err.Error(), "bound must be positive") {
			t.Errorf("bound %g: Eval err = %v, want bound error", bound, err)
		}
		if _, err := o.Score(env, s, 0); err == nil {
			t.Errorf("bound %g: Score must propagate the config error", bound)
		}
	}
}
