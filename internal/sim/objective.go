package sim

import (
	"errors"
	"fmt"
	"math"

	"distredge/internal/strategy"
)

// Objective scores a strategy on an environment; lower is better. It is
// the pluggable planning goal of the splitter stack: OSDS episode rewards,
// best-strategy tracking, the warm-start families, the re-planners and the
// experiment harnesses all evaluate strategies through an Objective, so
// the same planner can optimise sequential single-image latency (the
// paper's Eq. 8) or sustained pipelined throughput (the Fig. 16 regime).
type Objective interface {
	// Name identifies the objective ("latency", "ips") in CLI flags and
	// result rows.
	Name() string
	// Score evaluates a full strategy starting at absolute trace time
	// `at`. Lower is better; the unit is seconds (end-to-end latency for
	// the latency objective, steady-state seconds per image for the
	// throughput objective), so scores feed the same reward scaling.
	Score(e *Env, s *strategy.Strategy, at float64) (float64, error)
	// EpisodeScore is the cheap per-episode form used inside OSDS
	// training. seqLatency is the episode's already-simulated sequential
	// end-to-end latency: LatencyObjective returns it unchanged — no
	// extra simulation, keeping training bit-identical to the
	// pre-objective planner — while ThroughputObjective ignores it and
	// replays the episode's strategy through PipelineStream.
	EpisodeScore(e *Env, s *strategy.Strategy, at, seqLatency float64) (float64, error)
}

// DefaultObjective returns obj, or the latency objective when obj is nil —
// the planner stack's backward-compatible default.
func DefaultObjective(obj Objective) Objective {
	if obj == nil {
		return LatencyObjective{}
	}
	return obj
}

// IsLatencyObjective reports whether obj is the default sequential-latency
// objective (nil counts). Callers use it to keep the default planning path
// bit-identical to the pre-objective tree.
func IsLatencyObjective(obj Objective) bool {
	if obj == nil {
		return true
	}
	_, ok := obj.(LatencyObjective)
	return ok
}

// LatencyObjective scores a strategy by its sequential single-image
// end-to-end latency — Env.Latency, the quantity the paper's OSDS reward
// 1/T (Eq. 8) is built on. It is the default objective everywhere, and
// planning under it is bit-identical to the pre-objective planner
// (enforced by the golden equivalence tests).
type LatencyObjective struct{}

// Name returns "latency".
func (LatencyObjective) Name() string { return "latency" }

// Score returns the end-to-end latency of one image starting at `at`.
func (LatencyObjective) Score(e *Env, s *strategy.Strategy, at float64) (float64, error) {
	lat, _, err := e.Latency(s, at)
	return lat, err
}

// EpisodeScore returns the episode's already-simulated latency unchanged.
func (LatencyObjective) EpisodeScore(e *Env, s *strategy.Strategy, at, seqLatency float64) (float64, error) {
	return seqLatency, nil
}

// ThroughputObjective scores a strategy by its sustained pipelined serving
// rate: PipelineStream with Window images in flight, inverted to
// steady-state seconds per image (1/SteadyIPS) so lower is better and the
// scale stays comparable to latency scores. Evaluations go through the
// environment's plan memo and device-latency cache, so scoring inside
// OSDS training costs one short pipelined replay per episode.
type ThroughputObjective struct {
	// Window is the admission window the plan is optimised for
	// (default 4).
	Window int
	// Images is the stream length per evaluation (default 4*Window+8 —
	// long enough that the second-half SteadyIPS measures the filled
	// pipeline, short enough for per-episode use).
	Images int
	// Batch is the per-step image batching the deployment will run with
	// (Options.Batch); the objective scores strategies under the same
	// sublinear batch cost model the runtime charges, so plans picked for a
	// batched deployment account for the amortised step cost. Default 1
	// (no batching — bit-identical to the pre-batching objective).
	Batch int
}

func (o ThroughputObjective) withDefaults() ThroughputObjective {
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.Images <= 0 {
		o.Images = 4*o.Window + 8
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	return o
}

// Name returns "ips".
func (ThroughputObjective) Name() string { return "ips" }

// Score returns steady-state seconds per image at the configured window.
func (o ThroughputObjective) Score(e *Env, s *strategy.Strategy, at float64) (float64, error) {
	o = o.withDefaults()
	res, err := e.PipelineStreamOpts(s, PipelineConfig{Images: o.Images, Window: o.Window, Batch: o.Batch, Start: at})
	if err != nil {
		return 0, err
	}
	if res.SteadyIPS <= 0 || math.IsInf(res.SteadyIPS, 0) || math.IsNaN(res.SteadyIPS) {
		return 0, fmt.Errorf("sim: throughput objective: degenerate SteadyIPS %g", res.SteadyIPS)
	}
	return 1 / res.SteadyIPS, nil
}

// EpisodeScore ignores the sequential latency and evaluates the episode's
// strategy pipelined — sustained throughput is what the agent is rewarded
// for, not the latency of a lone image.
func (o ThroughputObjective) EpisodeScore(e *Env, s *strategy.Strategy, at, seqLatency float64) (float64, error) {
	return o.Score(e, s, at)
}

// ErrSLOViolated reports that a strategy's predicted p95
// admission-to-completion latency exceeds the SLO bound. It is wrapped by
// SLOThroughputObjective.Eval so planners and CLIs can reject infeasible
// plans with errors.Is.
var ErrSLOViolated = errors.New("sim: predicted p95 latency violates the SLO bound")

// sloPenaltySec is the score floor for SLO-violating strategies — far
// worse than any feasible plan's seconds-per-image. The penalty scales
// with the relative violation so the OSDS reward gradient still points
// toward feasibility instead of flattening out.
const sloPenaltySec = 1e6

// SLOThroughputObjective is the serving gateway's planning goal: maximise
// sustained pipelined throughput subject to a p95 admission-to-completion
// latency bound. Feasible strategies score exactly like
// ThroughputObjective (steady-state seconds per image); strategies whose
// predicted p95 — read off the PipelineResult latency distribution at the
// deployment's window and batch — exceeds P95Sec are penalised past any
// feasible score, so the planner only ever prefers a violating plan when
// no evaluated plan meets the bound (Eval lets callers reject even then).
type SLOThroughputObjective struct {
	// Window, Images and Batch parameterise the pipelined evaluation
	// exactly as in ThroughputObjective (same defaults).
	Window int
	Images int
	Batch  int
	// P95Sec is the p95 admission-to-completion latency bound in seconds.
	// Must be positive.
	P95Sec float64
}

func (o SLOThroughputObjective) withDefaults() SLOThroughputObjective {
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.Images <= 0 {
		o.Images = 4*o.Window + 8
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	return o
}

// Name returns "slo".
func (SLOThroughputObjective) Name() string { return "slo" }

// Eval runs the pipelined evaluation and checks the bound: it returns the
// result plus an error wrapping ErrSLOViolated when the predicted p95
// exceeds P95Sec. Deployment paths use it to refuse plans outright where
// Score only penalises them.
func (o SLOThroughputObjective) Eval(e *Env, s *strategy.Strategy, at float64) (PipelineResult, error) {
	o = o.withDefaults()
	if !(o.P95Sec > 0) {
		return PipelineResult{}, fmt.Errorf("sim: slo objective: p95 bound must be positive, got %g", o.P95Sec)
	}
	res, err := e.PipelineStreamOpts(s, PipelineConfig{Images: o.Images, Window: o.Window, Batch: o.Batch, Start: at})
	if err != nil {
		return PipelineResult{}, err
	}
	if res.SteadyIPS <= 0 || math.IsInf(res.SteadyIPS, 0) || math.IsNaN(res.SteadyIPS) {
		return PipelineResult{}, fmt.Errorf("sim: slo objective: degenerate SteadyIPS %g", res.SteadyIPS)
	}
	if res.P95LatMS/1e3 > o.P95Sec {
		return res, fmt.Errorf("%w: predicted p95 %.3gms > bound %.3gms", ErrSLOViolated, res.P95LatMS, o.P95Sec*1e3)
	}
	return res, nil
}

// Score returns steady-state seconds per image when the bound holds, and
// the scaled infeasibility penalty when it does not.
func (o SLOThroughputObjective) Score(e *Env, s *strategy.Strategy, at float64) (float64, error) {
	o = o.withDefaults()
	res, err := o.Eval(e, s, at)
	if err != nil {
		if errors.Is(err, ErrSLOViolated) {
			return sloPenaltySec * (res.P95LatMS / 1e3 / o.P95Sec), nil
		}
		return 0, err
	}
	return 1 / res.SteadyIPS, nil
}

// EpisodeScore evaluates the episode's strategy under the full constrained
// objective — the agent is rewarded for feasible throughput, so violating
// episodes feel the penalty during training too.
func (o SLOThroughputObjective) EpisodeScore(e *Env, s *strategy.Strategy, at, seqLatency float64) (float64, error) {
	return o.Score(e, s, at)
}
