package sim

import (
	"math"
	"testing"
)

// TestLatencyObjectiveWrapsEnvLatency pins the latency objective to
// Env.Latency bit-for-bit, and its episode form to a pass-through of the
// already-simulated latency.
func TestLatencyObjectiveWrapsEnvLatency(t *testing.T) {
	for _, constant := range []bool{true, false} {
		env := equivEnv(t, constant)
		for si, s := range equivStrategies(env.Model, env.NumProviders()) {
			for _, at := range []float64{0, 17.3} {
				want, _, err := env.Latency(s, at)
				if err != nil {
					t.Fatal(err)
				}
				got, err := LatencyObjective{}.Score(env, s, at)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("strategy %d at %g: score %.17g != latency %.17g", si, at, got, want)
				}
				ep, err := LatencyObjective{}.EpisodeScore(env, s, at, 0.125)
				if err != nil || ep != 0.125 {
					t.Errorf("episode score must pass the sequential latency through, got %g, %v", ep, err)
				}
			}
		}
	}
}

// TestThroughputObjectiveWrapsSteadyIPS pins the throughput objective to
// 1/PipelineStream.SteadyIPS at the configured window.
func TestThroughputObjectiveWrapsSteadyIPS(t *testing.T) {
	env := equivEnv(t, false)
	s := equivStrategies(env.Model, env.NumProviders())[0]
	obj := ThroughputObjective{Window: 4, Images: 24}
	want, err := env.PipelineStream(s, 24, 4, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := obj.Score(env, s, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1/want.SteadyIPS {
		t.Errorf("score %.17g != 1/SteadyIPS %.17g", got, 1/want.SteadyIPS)
	}
	// The episode form ignores the sequential latency entirely.
	ep, err := obj.EpisodeScore(env, s, 2.5, 1e9)
	if err != nil || ep != got {
		t.Errorf("episode score %g (%v) != score %g", ep, err, got)
	}
}

// TestObjectiveDefaults covers the nil conveniences.
func TestObjectiveDefaults(t *testing.T) {
	if !IsLatencyObjective(nil) || !IsLatencyObjective(LatencyObjective{}) {
		t.Error("nil and LatencyObjective must both read as the latency default")
	}
	if IsLatencyObjective(ThroughputObjective{}) {
		t.Error("ThroughputObjective is not the latency default")
	}
	if DefaultObjective(nil).Name() != "latency" {
		t.Error("DefaultObjective(nil) must be the latency objective")
	}
	o := ThroughputObjective{}.withDefaults()
	if o.Window != 4 || o.Images != 4*4+8 {
		t.Errorf("unexpected throughput defaults: %+v", o)
	}
}

// TestSteadyIPSZeroSpanFallsBackToIPS is the regression test for the
// zero-span division: when every second-half image completes at the same
// timestamp the steady-rate estimate must fall back to the overall IPS
// instead of returning +Inf or NaN.
func TestSteadyIPSZeroSpanFallsBackToIPS(t *testing.T) {
	if got := steadyIPS([]float64{3, 3, 3, 3}, 42); got != 42 {
		t.Errorf("zero span: got %g, want fallback 42", got)
	}
	if got := steadyIPS([]float64{5}, 7); got != 7 {
		t.Errorf("single image: got %g, want fallback 7", got)
	}
	if got := steadyIPS(nil, 9); got != 9 {
		t.Errorf("empty timeline: got %g, want fallback 9", got)
	}
	// The well-defined case is unchanged: 2 completions over the half span.
	complete := []float64{1, 2, 3, 4}
	want := 2 / (complete[3] - complete[1])
	if got := steadyIPS(complete, 0); got != want {
		t.Errorf("normal case: got %.17g, want %.17g", got, want)
	}
	if math.IsInf(steadyIPS([]float64{1, 1}, 5), 0) {
		t.Error("two identical completions must not divide by zero")
	}
}
