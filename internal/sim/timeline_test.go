package sim

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/strategy"
)

func timelineFixture(t *testing.T) (*Env, *strategy.Strategy) {
	t.Helper()
	env := testEnv(100, device.Xavier, device.Nano, device.TX2, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 4)
	return env, s
}

func TestTimelineMatchesLatency(t *testing.T) {
	env, s := timelineFixture(t)
	want, _, err := env.Latency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	events, total, err := env.Timeline(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("timeline total %g != latency %g", total, want)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	// The last event must end exactly at the total.
	maxEnd := 0.0
	for _, ev := range events {
		if ev.End > maxEnd {
			maxEnd = ev.End
		}
	}
	if math.Abs(maxEnd-total) > 1e-9 {
		t.Errorf("max event end %g != total %g", maxEnd, total)
	}
}

// randomStrategy draws a valid strategy uniformly-ish: random volume
// boundaries, random sorted cut points (empty parts included).
func randomStrategy(rng *rand.Rand, m *cnn.Model, n int) *strategy.Strategy {
	nl := m.NumSplittable()
	b := []int{0}
	for l := 1; l < nl; l++ {
		if rng.Float64() < 0.25 {
			b = append(b, l)
		}
	}
	b = append(b, nl)
	s := &strategy.Strategy{Boundaries: b}
	for v := 0; v+1 < len(b); v++ {
		h := strategy.VolumeHeight(m, b, v)
		cuts := make([]int, n-1)
		for i := range cuts {
			cuts[i] = rng.Intn(h + 1)
		}
		sort.Ints(cuts)
		s.Splits = append(s.Splits, cuts)
	}
	return s
}

// TestTimelinePropertyMatchesLatency is the property test: for random
// strategies on constant and time-varying networks, the final Timeline
// event's End must equal the compiled-path Latency and the reference
// per-image derivation bit-for-bit.
func TestTimelinePropertyMatchesLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	envs := []*Env{
		testEnv(150, device.Xavier, device.Nano, device.TX2, device.Nano),
		equivEnv(t, false), // stable (time-varying) traces
	}
	for ei, env := range envs {
		for iter := 0; iter < 30; iter++ {
			s := randomStrategy(rng, env.Model, env.NumProviders())
			for _, at := range []float64{0, 12.75} {
				want, _, err := env.Latency(s, at)
				if err != nil {
					t.Fatalf("env %d iter %d: latency: %v", ei, iter, err)
				}
				ref, _, err := env.ReferenceLatency(s, at)
				if err != nil {
					t.Fatalf("env %d iter %d: reference: %v", ei, iter, err)
				}
				if want != ref {
					t.Fatalf("env %d iter %d: compiled %.17g != reference %.17g", ei, iter, want, ref)
				}
				events, total, err := env.Timeline(s, at)
				if err != nil {
					t.Fatalf("env %d iter %d: timeline: %v", ei, iter, err)
				}
				if total != want {
					t.Errorf("env %d iter %d at %g: timeline total %.17g != latency %.17g",
						ei, iter, at, total, want)
				}
				var maxEnd float64
				for _, ev := range events {
					if ev.End > maxEnd {
						maxEnd = ev.End
					}
				}
				if maxEnd != total {
					t.Errorf("env %d iter %d: final event end %.17g != total %.17g", ei, iter, maxEnd, total)
				}
			}
		}
	}
}

func TestTimelineEventInvariants(t *testing.T) {
	env, s := timelineFixture(t)
	events, _, err := env.Timeline(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	computeByDev := map[int][]Event{}
	for _, ev := range events {
		if ev.End < ev.Start {
			t.Fatalf("event ends before it starts: %+v", ev)
		}
		if ev.Start < 0 {
			t.Fatalf("negative start: %+v", ev)
		}
		if ev.Kind == EventCompute {
			computeByDev[ev.Device] = append(computeByDev[ev.Device], ev)
		}
	}
	// Compute events on one device must not overlap (a device is serial).
	for dev, evs := range computeByDev {
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End-1e-12 {
				t.Errorf("device %d compute events overlap: %+v then %+v", dev, evs[i-1], evs[i])
			}
		}
	}
}

func TestTimelineHasAllPhases(t *testing.T) {
	env, s := timelineFixture(t)
	events, _, err := env.Timeline(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]bool{}
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	for _, k := range []EventKind{EventScatter, EventCompute, EventFC, EventResult} {
		if !kinds[k] {
			t.Errorf("missing %s events", k)
		}
	}
	// Equal split across pool boundaries needs halo transfers.
	if !kinds[EventRecv] {
		t.Error("missing recv events")
	}
}

func TestTimelineRejectsInvalid(t *testing.T) {
	env, _ := timelineFixture(t)
	bad := &strategy.Strategy{Boundaries: []int{0, 3}}
	if _, _, err := env.Timeline(bad, 0); err == nil {
		t.Fatal("invalid strategy must be rejected")
	}
}

func TestRenderTimeline(t *testing.T) {
	env, s := timelineFixture(t)
	events, total, err := env.Timeline(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(events, total, 60)
	if !strings.Contains(out, "dev  0") || !strings.Contains(out, "#") {
		t.Errorf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "total") {
		t.Error("render missing total line")
	}
	if RenderTimeline(nil, 0, 60) != "" {
		t.Error("empty timeline must render empty")
	}
}
