package sim

import (
	"math"
	"strings"
	"testing"

	"distredge/internal/device"
	"distredge/internal/strategy"
)

func timelineFixture(t *testing.T) (*Env, *strategy.Strategy) {
	t.Helper()
	env := testEnv(100, device.Xavier, device.Nano, device.TX2, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 4)
	return env, s
}

func TestTimelineMatchesLatency(t *testing.T) {
	env, s := timelineFixture(t)
	want, _, err := env.Latency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	events, total, err := env.Timeline(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("timeline total %g != latency %g", total, want)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	// The last event must end exactly at the total.
	maxEnd := 0.0
	for _, ev := range events {
		if ev.End > maxEnd {
			maxEnd = ev.End
		}
	}
	if math.Abs(maxEnd-total) > 1e-9 {
		t.Errorf("max event end %g != total %g", maxEnd, total)
	}
}

func TestTimelineEventInvariants(t *testing.T) {
	env, s := timelineFixture(t)
	events, _, err := env.Timeline(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	computeByDev := map[int][]Event{}
	for _, ev := range events {
		if ev.End < ev.Start {
			t.Fatalf("event ends before it starts: %+v", ev)
		}
		if ev.Start < 0 {
			t.Fatalf("negative start: %+v", ev)
		}
		if ev.Kind == EventCompute {
			computeByDev[ev.Device] = append(computeByDev[ev.Device], ev)
		}
	}
	// Compute events on one device must not overlap (a device is serial).
	for dev, evs := range computeByDev {
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End-1e-12 {
				t.Errorf("device %d compute events overlap: %+v then %+v", dev, evs[i-1], evs[i])
			}
		}
	}
}

func TestTimelineHasAllPhases(t *testing.T) {
	env, s := timelineFixture(t)
	events, _, err := env.Timeline(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]bool{}
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	for _, k := range []EventKind{EventScatter, EventCompute, EventFC, EventResult} {
		if !kinds[k] {
			t.Errorf("missing %s events", k)
		}
	}
	// Equal split across pool boundaries needs halo transfers.
	if !kinds[EventRecv] {
		t.Error("missing recv events")
	}
}

func TestTimelineRejectsInvalid(t *testing.T) {
	env, _ := timelineFixture(t)
	bad := &strategy.Strategy{Boundaries: []int{0, 3}}
	if _, _, err := env.Timeline(bad, 0); err == nil {
		t.Fatal("invalid strategy must be rejected")
	}
}

func TestRenderTimeline(t *testing.T) {
	env, s := timelineFixture(t)
	events, total, err := env.Timeline(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(events, total, 60)
	if !strings.Contains(out, "dev  0") || !strings.Contains(out, "#") {
		t.Errorf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "total") {
		t.Error("render missing total line")
	}
	if RenderTimeline(nil, 0, 60) != "" {
		t.Error("empty timeline must render empty")
	}
}
