package sim

import (
	"math"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/strategy"
)

func testEnv(bwMbps float64, types ...device.Type) *Env {
	devs := device.Fleet(types...)
	bws := make([]float64, len(devs))
	for i := range bws {
		bws[i] = bwMbps
	}
	net := &network.Network{Requester: network.DefaultLink(network.Constant(bwMbps))}
	for range devs {
		net.Providers = append(net.Providers, network.DefaultLink(network.Constant(bwMbps)))
	}
	return &Env{Model: cnn.VGG16(), Devices: device.AsModels(devs), Net: net}
}

func equalSplitStrategy(m *cnn.Model, boundaries []int, n int) *strategy.Strategy {
	s := &strategy.Strategy{Boundaries: boundaries}
	for v := 0; v < len(boundaries)-1; v++ {
		h := strategy.VolumeHeight(m, boundaries, v)
		s.Splits = append(s.Splits, strategy.EqualCuts(h, n))
	}
	return s
}

func offloadStrategy(m *cnn.Model, n, target int) *strategy.Strategy {
	b := strategy.SingleVolume(m)
	h := strategy.VolumeHeight(m, b, 0)
	return &strategy.Strategy{Boundaries: b, Splits: [][]int{strategy.AllOnProvider(h, n, target)}}
}

func TestLatencyPositiveAndFinite(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Xavier, device.Nano, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 4)
	lat, bd, err := env.Latency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || math.IsInf(lat, 0) || math.IsNaN(lat) {
		t.Fatalf("latency = %g", lat)
	}
	if bd.MaxComp() <= 0 {
		t.Error("expected positive compute in breakdown")
	}
	if bd.MaxTrans() <= 0 {
		t.Error("expected positive transmission in breakdown")
	}
}

func TestOffloadMatchesSingleDeviceModel(t *testing.T) {
	// Offloading everything to one device must cost: input scatter + whole
	// model on that device + result return. No inter-provider traffic.
	env := testEnv(300, device.Xavier, device.Nano)
	target := 0
	s := offloadStrategy(env.Model, 2, target)
	lat, bd, err := env.Latency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := env.Devices[target]
	comp := device.ModelLatency(dev, env.Model)
	in := env.Net.TransferLatency(network.Requester, target, env.Model.InputBytes(), 0)
	if lat < comp+in {
		t.Errorf("offload latency %g below compute+scatter floor %g", lat, comp+in)
	}
	if math.Abs(bd.PerDevComp[target]-comp) > 1e-9 {
		t.Errorf("compute attribution %g, want %g", bd.PerDevComp[target], comp)
	}
	if bd.PerDevComp[1] != 0 {
		t.Error("idle device must have zero compute")
	}
}

func TestEmptyPartsAreFree(t *testing.T) {
	// A provider given zero rows everywhere must accumulate nothing.
	env := testEnv(200, device.Xavier, device.Pi3)
	s := offloadStrategy(env.Model, 2, 0)
	_, bd, err := env.Latency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bd.PerDevComp[1] != 0 || bd.PerDevTrans[1] != 0 {
		t.Errorf("idle Pi3 charged comp=%g trans=%g", bd.PerDevComp[1], bd.PerDevTrans[1])
	}
}

func TestTwoFastDevicesBeatOne(t *testing.T) {
	// With a high-bandwidth network, splitting across two compute-bound
	// Nanos should beat offloading to one. (On wide-wave GPUs like Xavier
	// equal-split can lose — that nonlinearity is the paper's whole point —
	// so this check uses the near-linear device.)
	env := testEnv(300, device.Nano, device.Nano)
	single := offloadStrategy(env.Model, 2, 0)
	split := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 2)
	latS, _, err := env.Latency(single, 0)
	if err != nil {
		t.Fatal(err)
	}
	latP, _, err := env.Latency(split, 0)
	if err != nil {
		t.Fatal(err)
	}
	if latP >= latS {
		t.Errorf("parallel %gms not faster than offload %gms", latP*1e3, latS*1e3)
	}
}

func TestLayerByLayerPaysMoreTransmission(t *testing.T) {
	// CoEdge-style layer-by-layer splitting must pay much more transmission
	// than a fused single volume (the paper's core critique, Fig. 15).
	env := testEnv(50, device.Nano, device.Nano, device.Nano, device.Nano)
	lbl := equalSplitStrategy(env.Model, strategy.LayerByLayer(env.Model), 4)
	fused := equalSplitStrategy(env.Model, strategy.SingleVolume(env.Model), 4)
	_, bdL, err := env.Latency(lbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, bdF, err := env.Latency(fused, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bdL.MaxTrans() < 2*bdF.MaxTrans() {
		t.Errorf("layer-by-layer trans %g not >> fused trans %g", bdL.MaxTrans(), bdF.MaxTrans())
	}
}

func TestHigherBandwidthNeverHurts(t *testing.T) {
	s300 := testEnv(300, device.Nano, device.Nano, device.Nano, device.Nano)
	s50 := testEnv(50, device.Nano, device.Nano, device.Nano, device.Nano)
	strat := equalSplitStrategy(s300.Model, strategy.PoolBoundaries(s300.Model), 4)
	l300, _, err := s300.Latency(strat, 0)
	if err != nil {
		t.Fatal(err)
	}
	l50, _, err := s50.Latency(strat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l300 > l50 {
		t.Errorf("300Mbps latency %g worse than 50Mbps %g", l300, l50)
	}
}

func TestFullyConvolutionalFinish(t *testing.T) {
	// YOLOv2 has no FC layers; results return directly to the requester.
	devs := device.Fleet(device.Xavier, device.Nano)
	net := &network.Network{
		Requester: network.DefaultLink(network.Constant(200)),
		Providers: []network.Link{
			network.DefaultLink(network.Constant(200)),
			network.DefaultLink(network.Constant(200)),
		},
	}
	env := &Env{Model: cnn.YOLOv2(), Devices: device.AsModels(devs), Net: net}
	s := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 2)
	lat, _, err := env.Latency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("latency must be positive")
	}
}

func TestLatencyRejectsInvalidStrategy(t *testing.T) {
	env := testEnv(100, device.Nano, device.Nano)
	bad := &strategy.Strategy{Boundaries: []int{0, 5}}
	if _, _, err := env.Latency(bad, 0); err == nil {
		t.Fatal("invalid strategy must be rejected")
	}
}

func TestExecStepwiseMatchesLatency(t *testing.T) {
	// Driving Exec manually must give the same result as Env.Latency.
	env := testEnv(100, device.Xavier, device.Nano, device.TX2, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 4)
	want, _, err := env.Latency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := NewExec(env, s.Boundaries, 0)
	for v := 0; !x.Done(); v++ {
		if got := len(x.NextVolume()); got == 0 {
			t.Fatal("NextVolume empty before done")
		}
		x.Step(s.Splits[v])
	}
	got, _, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("stepwise latency %g != direct %g", got, want)
	}
	if x.NextVolume() != nil {
		t.Error("NextVolume must be nil when done")
	}
}

func TestExecAccumulatedMonotone(t *testing.T) {
	env := testEnv(100, device.Xavier, device.Nano, device.TX2, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 4)
	x := NewExec(env, s.Boundaries, 0)
	prev := append([]float64(nil), x.Accumulated()...)
	for v := 0; !x.Done(); v++ {
		x.Step(s.Splits[v])
		cur := x.Accumulated()
		for i := range cur {
			if cur[i] < prev[i]-1e-12 {
				t.Fatalf("volume %d: accumulated latency decreased for device %d", v, i)
			}
		}
		prev = append(prev[:0], cur...)
	}
}

func TestExecErrors(t *testing.T) {
	env := testEnv(100, device.Nano, device.Nano)
	x := NewExec(env, strategy.SingleVolume(env.Model), 0)
	if _, _, err := x.Finish(); err == nil {
		t.Error("Finish before all volumes must error")
	}
	x.Step([]int{1, 2, 3}) // wrong cut count
	if x.Err() == nil {
		t.Error("wrong cut count must set error")
	}
	if _, _, err := x.Finish(); err == nil {
		t.Error("Finish after error must fail")
	}
}

func TestStream(t *testing.T) {
	env := testEnv(200, device.Xavier, device.Nano)
	s := equalSplitStrategy(env.Model, strategy.PoolBoundaries(env.Model), 2)
	res, err := env.Stream(s, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Images != 50 || res.IPS <= 0 {
		t.Fatalf("bad stream result %+v", res)
	}
	// IPS * mean latency must be consistent.
	if math.Abs(res.IPS*res.MeanLatMS/1e3-1) > 1e-9 {
		t.Errorf("IPS %g inconsistent with mean latency %gms", res.IPS, res.MeanLatMS)
	}
	if _, err := env.Stream(s, 0, 0); err == nil {
		t.Error("zero images must error")
	}
}

func TestBreakdownMaxHelpers(t *testing.T) {
	bd := Breakdown{PerDevComp: []float64{1, 3, 2}, PerDevTrans: []float64{0.5, 0.1, 0}}
	if bd.MaxComp() != 3 || bd.MaxTrans() != 0.5 {
		t.Errorf("max helpers wrong: %g %g", bd.MaxComp(), bd.MaxTrans())
	}
	if (Breakdown{}).MaxComp() != 0 {
		t.Error("empty breakdown max must be 0")
	}
}
