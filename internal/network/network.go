// Package network models the wireless network between edge devices:
// per-device throughput traces (stable and highly dynamic, Fig. 4 and
// Fig. 12 of the paper) and a transmission-latency model that includes the
// I/O reading/writing delay the paper insists must be accounted for
// (Section II-B: "calculating the transmission latency purely by the
// network throughput can be inaccurate").
//
// All devices hang off one WiFi router (star topology, Fig. 3), so the
// throughput between two devices is the minimum of their two link
// throughputs at that moment.
package network

import (
	"fmt"
	"math"
	"math/rand"
)

// Requester is the pseudo-device index used for the service requester in
// pairwise transfer calculations.
const Requester = -1

// Trace is a throughput time series in Mbps sampled at fixed slots; queries
// wrap around, so a 60-minute trace serves arbitrarily long experiments.
type Trace struct {
	SlotSeconds float64
	Mbps        []float64
}

// ThroughputAt returns the link throughput in bits/second at absolute time
// t (seconds). Empty traces return 0. The trace extends periodically in
// both directions: the slot index uses floor division, so negative times —
// which int truncation toward zero would fold onto slot 0 — land on the
// slot a periodic extension puts them in.
func (tr *Trace) ThroughputAt(t float64) float64 {
	if tr == nil || len(tr.Mbps) == 0 {
		return 0
	}
	slot := int(math.Floor(t/tr.SlotSeconds)) % len(tr.Mbps)
	if slot < 0 {
		slot += len(tr.Mbps)
	}
	return tr.Mbps[slot] * 1e6
}

// TimeInvariant reports whether the trace yields the same throughput at
// every instant (constant traces, or any trace whose samples are all equal).
func (tr *Trace) TimeInvariant() bool {
	if tr == nil || len(tr.Mbps) <= 1 {
		return true
	}
	for _, v := range tr.Mbps[1:] {
		if v != tr.Mbps[0] {
			return false
		}
	}
	return true
}

// Mean returns the average throughput of the trace in Mbps.
func (tr *Trace) Mean() float64 {
	if len(tr.Mbps) == 0 {
		return 0
	}
	var s float64
	for _, v := range tr.Mbps {
		s += v
	}
	return s / float64(len(tr.Mbps))
}

// Duration returns the trace length in seconds.
func (tr *Trace) Duration() float64 { return float64(len(tr.Mbps)) * tr.SlotSeconds }

// Constant returns a flat trace pinned at the given Mbps, useful in tests.
func Constant(mbps float64) *Trace {
	return &Trace{SlotSeconds: 1, Mbps: []float64{mbps}}
}

// Stable generates a trace like the paper's Fig. 4: WiFi shaped to a nominal
// bandwidth shows small fluctuation (a few percent jitter plus occasional
// short dips). One sample per second for the given number of minutes.
func Stable(nominalMbps float64, minutes int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	n := minutes * 60
	mbps := make([]float64, n)
	level := nominalMbps
	for i := 0; i < n; i++ {
		v := level * (1 + 0.03*rng.NormFloat64())
		if rng.Float64() < 0.01 { // rare short dip (interference burst)
			v *= 0.7 + 0.2*rng.Float64()
		}
		if v < 0.05*nominalMbps {
			v = 0.05 * nominalMbps
		}
		if v > 1.1*nominalMbps {
			v = 1.1 * nominalMbps
		}
		mbps[i] = v
	}
	return &Trace{SlotSeconds: 1, Mbps: mbps}
}

// Dynamic generates a highly fluctuating trace like Fig. 12: a bounded
// random walk between lo and hi Mbps with occasional level jumps, sampled
// once per second.
func Dynamic(loMbps, hiMbps float64, minutes int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	n := minutes * 60
	mbps := make([]float64, n)
	span := hiMbps - loMbps
	level := loMbps + span*rng.Float64()
	for i := 0; i < n; i++ {
		level += span * 0.05 * rng.NormFloat64()
		if rng.Float64() < 0.02 { // abrupt shift
			level = loMbps + span*rng.Float64()
		}
		if level < loMbps {
			level = loMbps
		}
		if level > hiMbps {
			level = hiMbps
		}
		mbps[i] = level * (1 + 0.02*rng.NormFloat64())
		if mbps[i] < 0.5*loMbps {
			mbps[i] = 0.5 * loMbps
		}
	}
	return &Trace{SlotSeconds: 1, Mbps: mbps}
}

// Link is one device's attachment to the network: its WiFi trace plus its
// I/O character. IOFixedMS is the fixed cost of moving a buffer between the
// computing unit and the network stack (GPU readback, socket syscalls);
// IOGBps is the sustained I/O copy bandwidth.
//
// Trace is the device's uplink (device → router). Down, when set, is a
// separate downlink trace (router → device) — real WiFi and cellular
// uplinks are routinely several times slower than downlinks, and modelling
// both directions with the uplink trace overcharges every receive. A nil
// Down keeps the link symmetric (downlink = Trace), which is bit-identical
// to the pre-asymmetry model.
type Link struct {
	Trace     *Trace
	Down      *Trace
	IOFixedMS float64
	IOGBps    float64
}

// downTrace returns the trace governing traffic towards this device.
func (l Link) downTrace() *Trace {
	if l.Down != nil {
		return l.Down
	}
	return l.Trace
}

// TimeInvariant reports whether both directions of the link are constant
// over time.
func (l Link) TimeInvariant() bool {
	return l.Trace.TimeInvariant() && l.downTrace().TimeInvariant()
}

// DefaultLink wraps a trace with the calibrated I/O character used in all
// experiments (1.5 ms fixed + 1 GB/s copy on each side of a transfer).
func DefaultLink(tr *Trace) Link {
	return Link{Trace: tr, IOFixedMS: 1.5, IOGBps: 1.0}
}

// ioLatency returns this endpoint's I/O contribution for a transfer of the
// given size.
func (l Link) ioLatency(bytes float64) float64 {
	io := l.IOFixedMS / 1e3
	if l.IOGBps > 0 {
		io += bytes / (l.IOGBps * 1e9)
	}
	return io
}

// Network is the set of links for one experiment: one per provider plus the
// requester's own link.
type Network struct {
	Providers []Link
	Requester Link
}

// NewStable builds a network with stable traces at the given nominal
// bandwidths (Mbps) for each provider; the requester gets the maximum of
// the providers' bandwidths (the paper's requester is never the bottleneck).
func NewStable(bandwidthsMbps []float64, minutes int, seed int64) *Network {
	n := &Network{Providers: make([]Link, len(bandwidthsMbps))}
	maxBW := 0.0
	for i, bw := range bandwidthsMbps {
		n.Providers[i] = DefaultLink(Stable(bw, minutes, seed+int64(i)*101))
		if bw > maxBW {
			maxBW = bw
		}
	}
	n.Requester = DefaultLink(Stable(maxBW, minutes, seed+7919))
	return n
}

// TimeInvariant reports whether every link's throughput is constant over
// time, i.e. transfer latencies do not depend on when a transfer starts.
// Simulators use this to take the steady-state streaming fast path.
func (n *Network) TimeInvariant() bool {
	if !n.Requester.TimeInvariant() {
		return false
	}
	for _, l := range n.Providers {
		if !l.TimeInvariant() {
			return false
		}
	}
	return true
}

// link returns the Link of a device index (Requester = -1).
func (n *Network) link(dev int) (Link, error) {
	if dev == Requester {
		return n.Requester, nil
	}
	if dev < 0 || dev >= len(n.Providers) {
		return Link{}, fmt.Errorf("network: no device %d", dev)
	}
	return n.Providers[dev], nil
}

// PairThroughput returns the bits/second available between two devices at
// time t: both transfers cross the router, so the minimum of the sender's
// uplink and the receiver's downlink (which is the uplink trace again for
// symmetric links — the default).
func (n *Network) PairThroughput(from, to int, t float64) float64 {
	lf, errF := n.link(from)
	lt, errT := n.link(to)
	if errF != nil || errT != nil {
		return 0
	}
	a := lf.Trace.ThroughputAt(t)
	b := lt.downTrace().ThroughputAt(t)
	if b < a {
		return b
	}
	return a
}

// TransferLatency returns the seconds to move bytes from device `from` to
// device `to` starting at time t: sender I/O + wire time + receiver I/O.
// Transfers between a device and itself, or of zero bytes, are free (data
// already resident, Section V-A preloads split-parts).
func (n *Network) TransferLatency(from, to int, bytes, t float64) float64 {
	if bytes <= 0 || from == to {
		return 0
	}
	lf, errF := n.link(from)
	lt, errT := n.link(to)
	if errF != nil || errT != nil {
		return 0
	}
	thr := n.PairThroughput(from, to, t)
	if thr <= 0 {
		return 0
	}
	return lf.ioLatency(bytes) + bytes*8/thr + lt.ioLatency(bytes)
}
