package network

import (
	"math"
	"testing"
)

// TestThroughputAtSegmentEdges pins the trace-sampling semantics at the
// awkward instants: t exactly on a slot boundary belongs to the slot it
// opens, t at or past the trace end wraps around, and negative t wraps
// backwards instead of indexing out of range.
func TestThroughputAtSegmentEdges(t *testing.T) {
	tr := &Trace{SlotSeconds: 2, Mbps: []float64{10, 20, 30}} // 6s period
	cases := []struct {
		name string
		t    float64
		want float64 // Mbps
	}{
		{"start", 0, 10},
		{"mid-slot", 1.999, 10},
		{"exact slot boundary", 2, 20},
		{"second boundary", 4, 30},
		{"exact trace end wraps", 6, 10},
		{"past trace end wraps", 7.5, 10},
		{"two periods out", 14, 20},
		{"negative wraps backwards", -1, 30},
		{"negative slot boundary", -2, 30},
		{"negative past period", -7, 30},
	}
	for _, c := range cases {
		if got := tr.ThroughputAt(c.t); got != c.want*1e6 {
			t.Errorf("%s: ThroughputAt(%g) = %g bps, want %g Mbps", c.name, c.t, got, c.want)
		}
	}
	var nilTrace *Trace
	if got := nilTrace.ThroughputAt(3); got != 0 {
		t.Errorf("nil trace throughput = %g", got)
	}
	if got := (&Trace{SlotSeconds: 1}).ThroughputAt(3); got != 0 {
		t.Errorf("empty trace throughput = %g", got)
	}
}

// TestTransferLatencyBoundaries is the table-driven edge sweep for the
// latency model itself: zero-byte payloads, self-transfers, unknown
// devices, and starts pinned exactly on trace-segment boundaries (where a
// step change in throughput must pick the new segment's rate).
func TestTransferLatencyBoundaries(t *testing.T) {
	// Device 0 steps 100 -> 50 Mbps at t=10; device 1 is flat 100 Mbps.
	step := &Trace{SlotSeconds: 10, Mbps: []float64{100, 50}}
	flat := Constant(100)
	n := &Network{
		Providers: []Link{
			{Trace: step, IOFixedMS: 0, IOGBps: 0},
			{Trace: flat, IOFixedMS: 0, IOGBps: 0},
		},
		Requester: Link{Trace: flat, IOFixedMS: 0, IOGBps: 0},
	}
	const bytes = 1e6 // 8 Mbit
	at100 := bytes * 8 / (100 * 1e6)
	at50 := bytes * 8 / (50 * 1e6)

	cases := []struct {
		name     string
		from, to int
		bytes    float64
		t        float64
		want     float64
	}{
		{"zero bytes are free", 0, 1, 0, 5, 0},
		{"negative bytes are free", 0, 1, -4, 5, 0},
		{"self transfer is free", 1, 1, bytes, 5, 0},
		{"requester self transfer is free", Requester, Requester, bytes, 5, 0},
		{"inside first segment", 0, 1, bytes, 9.999, at100},
		{"exactly on the step boundary", 0, 1, bytes, 10, at50},
		{"inside second segment", 0, 1, bytes, 19, at50},
		{"exactly at trace end wraps", 0, 1, bytes, 20, at100},
		{"past trace end wraps into step", 0, 1, bytes, 30, at50},
		{"pair throughput is the min", 1, 0, bytes, 10, at50},
		{"requester uplink unaffected by step", Requester, 1, bytes, 10, at100},
		{"unknown device is free", 0, 7, bytes, 5, 0},
		{"unknown negative device is free", -3, 1, bytes, 5, 0},
	}
	for _, c := range cases {
		got := n.TransferLatency(c.from, c.to, c.bytes, c.t)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: TransferLatency(%d,%d,%g,%g) = %.9g, want %.9g",
				c.name, c.from, c.to, c.bytes, c.t, got, c.want)
		}
	}
}

// TestTransferLatencyIOAccounting checks both endpoints' I/O terms ride on
// top of the wire time — including for zero-throughput links, where the
// model returns 0 (the transfer never starts; callers treat the link as
// stalled, not instant — pinned by this test so a change is deliberate).
func TestTransferLatencyIOAccounting(t *testing.T) {
	n := &Network{
		Providers: []Link{
			{Trace: Constant(80), IOFixedMS: 2, IOGBps: 1},
			{Trace: Constant(80), IOFixedMS: 3, IOGBps: 2},
		},
		Requester: DefaultLink(Constant(80)),
	}
	const bytes = 1e6
	wire := bytes * 8 / (80 * 1e6)
	io0 := 2e-3 + bytes/1e9
	io1 := 3e-3 + bytes/(2*1e9)
	want := io0 + wire + io1
	if got := n.TransferLatency(0, 1, bytes, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("latency = %.9g, want %.9g", got, want)
	}
	dead := &Network{
		Providers: []Link{{Trace: Constant(0)}, {Trace: Constant(100)}},
		Requester: DefaultLink(Constant(100)),
	}
	if got := dead.TransferLatency(0, 1, bytes, 0); got != 0 {
		t.Errorf("zero-throughput link latency = %g, want 0", got)
	}
}

// FuzzTransferLatency asserts the model's total function contract: any
// (from, to, bytes, t) — including NaN/Inf-free garbage indices and
// negative times — yields a finite, non-negative latency and never
// panics, since churn re-planning queries transfers at event times the
// planner never saw.
func FuzzTransferLatency(f *testing.F) {
	f.Add(0, 1, 1e6, 0.0)
	f.Add(Requester, 0, 5e3, 59.999)
	f.Add(3, -2, 1e9, -17.3)
	f.Add(1, 1, 0.0, 1e12)
	n := NewStable([]float64{50, 100, 200}, 2, 7)
	f.Fuzz(func(t *testing.T, from, to int, bytes, at float64) {
		if math.IsNaN(bytes) || math.IsInf(bytes, 0) || math.IsNaN(at) || math.IsInf(at, 0) {
			t.Skip()
		}
		got := n.TransferLatency(from, to, bytes, at)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Fatalf("TransferLatency(%d,%d,%g,%g) = %g", from, to, bytes, at, got)
		}
	})
}
