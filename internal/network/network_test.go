package network

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstantTrace(t *testing.T) {
	tr := Constant(100)
	for _, at := range []float64{0, 1.5, 3600, 1e6} {
		if got := tr.ThroughputAt(at); got != 100e6 {
			t.Fatalf("ThroughputAt(%g) = %g, want 1e8", at, got)
		}
	}
	if tr.Mean() != 100 {
		t.Errorf("Mean = %g, want 100", tr.Mean())
	}
}

func TestNilAndEmptyTrace(t *testing.T) {
	var tr *Trace
	if tr.ThroughputAt(5) != 0 {
		t.Error("nil trace must report 0 throughput")
	}
	empty := &Trace{SlotSeconds: 1}
	if empty.ThroughputAt(5) != 0 || empty.Mean() != 0 {
		t.Error("empty trace must report 0")
	}
}

func TestStableTraceStaysNearNominal(t *testing.T) {
	for _, bw := range []float64{50, 100, 200, 300} {
		tr := Stable(bw, 60, 1)
		if got := tr.Duration(); got != 3600 {
			t.Fatalf("duration = %g, want 3600", got)
		}
		mean := tr.Mean()
		if math.Abs(mean-bw) > 0.05*bw {
			t.Errorf("bw %g: mean %g drifted too far", bw, mean)
		}
		for i, v := range tr.Mbps {
			if v < 0.05*bw || v > 1.1*bw {
				t.Fatalf("bw %g: sample %d = %g out of bounds", bw, i, v)
			}
		}
	}
}

func TestDynamicTraceBounds(t *testing.T) {
	tr := Dynamic(40, 100, 60, 9)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range tr.Mbps {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo < 20 || hi > 110 {
		t.Errorf("dynamic trace escaped bounds: [%g, %g]", lo, hi)
	}
	// It must actually fluctuate substantially (Fig. 12).
	if hi-lo < 20 {
		t.Errorf("dynamic trace too flat: range %g", hi-lo)
	}
}

func TestTracesDeterministic(t *testing.T) {
	a, b := Stable(200, 5, 11), Stable(200, 5, 11)
	for i := range a.Mbps {
		if a.Mbps[i] != b.Mbps[i] {
			t.Fatal("stable trace not deterministic under seed")
		}
	}
	c, d := Dynamic(40, 100, 5, 11), Dynamic(40, 100, 5, 11)
	for i := range c.Mbps {
		if c.Mbps[i] != d.Mbps[i] {
			t.Fatal("dynamic trace not deterministic under seed")
		}
	}
}

func TestTraceWraparound(t *testing.T) {
	tr := &Trace{SlotSeconds: 1, Mbps: []float64{10, 20, 30}}
	if tr.ThroughputAt(0) != 10e6 || tr.ThroughputAt(1) != 20e6 || tr.ThroughputAt(3) != 10e6 {
		t.Error("wraparound lookup broken")
	}
	if tr.ThroughputAt(4.7) != 20e6 {
		t.Error("fractional second lookup broken")
	}
}

func newTestNetwork() *Network {
	return &Network{
		Providers: []Link{
			DefaultLink(Constant(50)),
			DefaultLink(Constant(200)),
		},
		Requester: DefaultLink(Constant(300)),
	}
}

func TestPairThroughputIsMin(t *testing.T) {
	n := newTestNetwork()
	if got := n.PairThroughput(0, 1, 0); got != 50e6 {
		t.Errorf("pair(0,1) = %g, want 5e7", got)
	}
	if got := n.PairThroughput(Requester, 1, 0); got != 200e6 {
		t.Errorf("pair(req,1) = %g, want 2e8", got)
	}
	if n.PairThroughput(0, 99, 0) != 0 {
		t.Error("unknown device must yield 0")
	}
}

func TestTransferLatencyComposition(t *testing.T) {
	n := newTestNetwork()
	bytes := 1e6 // 1 MB
	got := n.TransferLatency(Requester, 0, bytes, 0)
	// sender IO (1.5ms + 1MB/1GBps=1ms) + wire (8e6/50e6=160ms) + recv IO.
	want := 0.0025 + 0.16 + 0.0025
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("TransferLatency = %g, want %g", got, want)
	}
}

func TestTransferLatencyFreeCases(t *testing.T) {
	n := newTestNetwork()
	if n.TransferLatency(1, 1, 5e6, 0) != 0 {
		t.Error("self transfer must be free")
	}
	if n.TransferLatency(0, 1, 0, 0) != 0 {
		t.Error("zero bytes must be free")
	}
	if n.TransferLatency(0, -5, 1e6, 0) != 0 {
		t.Error("invalid endpoint must yield 0")
	}
}

func TestTransferLatencyMonotoneInBytes(t *testing.T) {
	n := newTestNetwork()
	f := func(a, b uint32) bool {
		x, y := float64(a%10_000_000), float64(b%10_000_000)
		if x > y {
			x, y = y, x
		}
		return n.TransferLatency(0, 1, x, 0) <= n.TransferLatency(0, 1, y, 0)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransferLatencyIncludesIOFloor(t *testing.T) {
	// Even a tiny transfer pays the fixed I/O cost on both sides — the
	// effect the paper says pure-throughput models miss.
	n := newTestNetwork()
	got := n.TransferLatency(0, 1, 1, 0)
	if got < 0.003 {
		t.Errorf("tiny transfer latency %g below I/O floor", got)
	}
}

func TestNewStable(t *testing.T) {
	n := NewStable([]float64{50, 100, 200, 300}, 10, 4)
	if len(n.Providers) != 4 {
		t.Fatalf("providers = %d, want 4", len(n.Providers))
	}
	if n.Requester.Trace.Mean() < 280 {
		t.Errorf("requester should get max bandwidth, mean %g", n.Requester.Trace.Mean())
	}
	for i, bw := range []float64{50, 100, 200, 300} {
		m := n.Providers[i].Trace.Mean()
		if math.Abs(m-bw) > 0.05*bw {
			t.Errorf("provider %d mean %g, want ~%g", i, m, bw)
		}
	}
}

func TestTimeInvariant(t *testing.T) {
	if !Constant(100).TimeInvariant() {
		t.Error("constant trace must be time-invariant")
	}
	if !(&Trace{SlotSeconds: 1, Mbps: []float64{50, 50, 50}}).TimeInvariant() {
		t.Error("all-equal trace must be time-invariant")
	}
	if Stable(100, 5, 1).TimeInvariant() {
		t.Error("stable trace with jitter must not be time-invariant")
	}
	var nilTrace *Trace
	if !nilTrace.TimeInvariant() {
		t.Error("nil trace must count as time-invariant")
	}

	flat := &Network{Requester: DefaultLink(Constant(200))}
	for i := 0; i < 3; i++ {
		flat.Providers = append(flat.Providers, DefaultLink(Constant(100)))
	}
	if !flat.TimeInvariant() {
		t.Error("all-constant network must be time-invariant")
	}
	mixed := &Network{Requester: DefaultLink(Constant(200))}
	mixed.Providers = append(mixed.Providers, DefaultLink(Stable(100, 5, 1)))
	if mixed.TimeInvariant() {
		t.Error("network with a jittery link must not be time-invariant")
	}
}

// newAsymNetwork gives provider 0 a slow 10 Mbps uplink and fast 100 Mbps
// downlink; provider 1 and the requester stay symmetric at 100 Mbps.
func newAsymNetwork() *Network {
	n := &Network{
		Providers: []Link{
			DefaultLink(Constant(10)),
			DefaultLink(Constant(100)),
		},
		Requester: DefaultLink(Constant(100)),
	}
	n.Providers[0].Down = Constant(100)
	return n
}

func TestAsymmetricPairThroughput(t *testing.T) {
	n := newAsymNetwork()
	// Towards provider 0: sender uplink 100, receiver downlink 100.
	if got := n.PairThroughput(1, 0, 0); got != 100e6 {
		t.Errorf("pair(1,0) = %g, want 1e8 (fast downlink)", got)
	}
	// From provider 0: its 10 Mbps uplink is the bottleneck.
	if got := n.PairThroughput(0, 1, 0); got != 10e6 {
		t.Errorf("pair(0,1) = %g, want 1e7 (slow uplink)", got)
	}
}

func TestAsymmetricTransferLatencyIsDirectional(t *testing.T) {
	n := newAsymNetwork()
	bytes := 1e6
	up := n.TransferLatency(0, Requester, bytes, 0)
	down := n.TransferLatency(Requester, 0, bytes, 0)
	if up <= down {
		t.Errorf("uplink transfer %gs not slower than downlink %gs", up, down)
	}
	// Wire component: 8e6/1e7 = 0.8s up vs 8e6/1e8 = 0.08s down; I/O adds
	// 0.0025s per side either way.
	if math.Abs(up-(0.005+0.8)) > 1e-9 || math.Abs(down-(0.005+0.08)) > 1e-9 {
		t.Errorf("latencies %g / %g do not match the directional model", up, down)
	}
}

func TestAsymmetricDefaultsStaySymmetric(t *testing.T) {
	// A nil Down must be bit-identical to the pre-asymmetry model in both
	// directions.
	sym := newTestNetwork()
	for _, pair := range [][2]int{{0, 1}, {1, 0}, {Requester, 0}, {0, Requester}} {
		a := sym.TransferLatency(pair[0], pair[1], 123_456, 0)
		b := sym.TransferLatency(pair[1], pair[0], 123_456, 0)
		if a != b {
			t.Errorf("symmetric network: latency(%d,%d)=%g != latency(%d,%d)=%g",
				pair[0], pair[1], a, pair[1], pair[0], b)
		}
	}
}

func TestAsymmetricTimeInvariant(t *testing.T) {
	l := DefaultLink(Constant(50))
	if !l.TimeInvariant() {
		t.Error("symmetric constant link must be time-invariant")
	}
	l.Down = Stable(100, 5, 3)
	if l.TimeInvariant() {
		t.Error("jittery downlink must break time invariance")
	}
	n := &Network{Requester: DefaultLink(Constant(200)), Providers: []Link{l}}
	if n.TimeInvariant() {
		t.Error("network with a jittery downlink must not be time-invariant")
	}
}
