package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// LockCheck enforces the repo's documented lock discipline. It is opt-in
// per field: a struct with a sync.Mutex/RWMutex field may annotate other
// fields with a `guarded by <mu>` comment (doc comment or trailing line
// comment), and every access to an annotated field from a method of that
// struct must then hold the named lock.
//
// The analysis is positional within each function body: an access is
// "held" if it sits between a receiver.mu.Lock()/RLock() and the next
// non-deferred receiver.mu.Unlock()/RUnlock() (a deferred unlock holds to
// the end of the function). Two control-flow refinements keep the common
// idioms clean: an Unlock inside a block that exits (return, break,
// continue, panic, Fatal) does not end the critical section of a Lock
// taken outside that block — that is the `if bad { mu.Unlock(); return }`
// early-exit pattern — and function literals are separate scopes, since a
// goroutine body does not inherit the lock state of its creation site.
// Accesses through local copies or non-receiver variables are not checked;
// the discipline covers the struct's own methods, which is where this
// codebase does its shared mutation.
//
// Helper methods named with a Locked suffix (expireLocked, pickLocked, ...)
// document the caller-holds convention: their bodies are assumed to run
// under the receiver's lock and are not checked positionally, and in
// exchange every call to such a method from a sibling method must itself
// hold every mutex that guards an annotated field — so the obligation moves
// to the call site instead of silently disappearing.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "enforce `guarded by <mu>` field annotations in methods of the owning struct",
	Run:  runLockCheck,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedStruct is one annotated struct type in the package.
type guardedStruct struct {
	mutexes map[string]bool   // mutex-typed field names
	guarded map[string]string // field -> guarding mutex field
}

func runLockCheck(p *Pass) {
	structs := collectGuardedStructs(p)
	if len(structs) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvField := fd.Recv.List[0]
			gs, ok := structs[recvTypeName(recvField.Type)]
			if !ok || len(recvField.Names) == 0 {
				continue
			}
			recvName := recvField.Names[0].Name
			if recvName == "_" {
				continue
			}
			// Locked-suffix helpers run under the caller's lock by
			// convention: their bodies are exempt (call sites carry the
			// obligation), but goroutine literals inside them are still
			// fresh lock scopes.
			if !isLockedHelper(fd.Name.Name) {
				checkLockScope(p, gs, recvName, fd.Name.Name, fd.Body)
			}
			// Nested function literals: separate lock scopes.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkLockScope(p, gs, recvName, fd.Name.Name+" (func literal)", fl.Body)
					return false
				}
				return true
			})
		}
	}
}

// collectGuardedStructs finds annotated structs and validates that every
// `guarded by X` names a mutex field that exists.
func collectGuardedStructs(p *Pass) map[string]*guardedStruct {
	out := map[string]*guardedStruct{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			gs := &guardedStruct{mutexes: map[string]bool{}, guarded: map[string]string{}}
			for _, field := range st.Fields.List {
				if isMutexType(field.Type) {
					for _, name := range field.Names {
						gs.mutexes[name.Name] = true
					}
				}
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				if !gs.mutexes[mu] {
					p.Reportf(field.Pos(), "%s: `guarded by %s` names no sync.Mutex/RWMutex field of %s", fieldNames(field), mu, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					gs.guarded[name.Name] = mu
				}
			}
			if len(gs.guarded) > 0 {
				out[ts.Name.Name] = gs
			}
			return true
		})
	}
	return out
}

// lockOp is one Lock/Unlock call on a receiver mutex at a position.
type lockOp struct {
	pos      token.Pos
	mu       string
	lock     bool
	deferred bool
}

// checkLockScope verifies guarded-field accesses in one function body
// (excluding nested function literals, which the caller walks separately).
func checkLockScope(p *Pass, gs *guardedStruct, recvName, method string, body *ast.BlockStmt) {
	var ops []lockOp
	type access struct {
		pos   token.Pos
		field string
	}
	var accesses []access
	var lockedCalls []access // calls to Locked-suffix sibling methods

	var walk func(n ast.Node, inDefer bool) bool
	walk = func(n ast.Node, inDefer bool) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName && isLockedHelper(sel.Sel.Name) {
					lockedCalls = append(lockedCalls, access{sel.Pos(), sel.Sel.Name})
				}
			}
		case *ast.DeferStmt:
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				return walk(m, true)
			})
			return false
		case *ast.SelectorExpr:
			// receiver.mu.{Lock,Unlock,RLock,RUnlock}
			if inner, ok := n.X.(*ast.SelectorExpr); ok {
				if id, ok := inner.X.(*ast.Ident); ok && id.Name == recvName && gs.mutexes[inner.Sel.Name] {
					switch n.Sel.Name {
					case "Lock", "RLock":
						ops = append(ops, lockOp{n.Pos(), inner.Sel.Name, true, inDefer})
					case "Unlock", "RUnlock":
						ops = append(ops, lockOp{n.Pos(), inner.Sel.Name, false, inDefer})
					}
					return false
				}
			}
			// receiver.guardedField
			if id, ok := n.X.(*ast.Ident); ok && id.Name == recvName {
				if _, guarded := gs.guarded[n.Sel.Name]; guarded {
					accesses = append(accesses, access{n.Pos(), n.Sel.Name})
				}
			}
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, false) })
	if len(accesses) == 0 && len(lockedCalls) == 0 {
		return
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
	exits := exitingBlocks(body)

	heldAt := func(mu string, pos token.Pos) bool {
		held := false
		var lockPos token.Pos
		for _, op := range ops {
			if op.mu != mu || op.pos >= pos {
				continue
			}
			switch {
			case op.lock && !op.deferred:
				held = true
				lockPos = op.pos
			case !op.lock && !op.deferred:
				// An unlock on an early-exit path (inside a block that
				// returns/branches away, with the lock taken outside it)
				// never reaches the fall-through code being checked.
				if held && onExitPathFrom(exits, op.pos, lockPos) {
					continue
				}
				held = false
			}
			// Deferred unlocks run at function exit: they never end the
			// critical section mid-body. Deferred locks would be a bug on
			// their own; ignore them.
		}
		return held
	}

	for _, a := range accesses {
		mu := gs.guarded[a.field]
		if !heldAt(mu, a.pos) {
			p.Reportf(a.pos, "%s.%s (guarded by %s) accessed in %s without holding %s; lock it or snapshot the field under the lock", recvName, a.field, mu, method, mu)
		}
	}
	if len(lockedCalls) > 0 {
		for _, mu := range gs.guardMutexes() {
			for _, c := range lockedCalls {
				if !heldAt(mu, c.pos) {
					p.Reportf(c.pos, "%s.%s is a Locked-suffix helper called in %s without holding %s; it runs under the caller's lock by convention", recvName, c.field, method, mu)
				}
			}
		}
	}
}

// isLockedHelper reports whether the method name declares the caller-holds
// convention: a non-empty base name with the Locked suffix.
func isLockedHelper(name string) bool {
	return len(name) > len("Locked") && strings.HasSuffix(name, "Locked")
}

// guardMutexes returns the mutexes that guard at least one annotated
// field, sorted for deterministic diagnostics.
func (gs *guardedStruct) guardMutexes() []string {
	seen := map[string]bool{}
	var out []string
	for _, mu := range gs.guarded {
		if !seen[mu] {
			seen[mu] = true
			out = append(out, mu)
		}
	}
	sort.Strings(out)
	return out
}

// span is a source interval of a block whose control flow exits instead of
// falling through (its last statement is a return/branch/panic).
type span struct{ pos, end token.Pos }

// exitingBlocks collects the intervals of blocks and case bodies inside
// body that end in a terminating statement. Nested function literals are
// separate scopes and are skipped.
func exitingBlocks(body *ast.BlockStmt) []span {
	var out []span
	record := func(stmts []ast.Stmt) {
		if len(stmts) > 0 && terminates(stmts[len(stmts)-1]) {
			out = append(out, span{stmts[0].Pos(), stmts[len(stmts)-1].End()})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			if n != body {
				record(n.List)
			}
		case *ast.CaseClause:
			record(n.Body)
		case *ast.CommClause:
			record(n.Body)
		}
		return true
	})
	return out
}

// terminates reports whether a statement never falls through: returns,
// branches (break/continue/goto), panics or a test Fatal / os.Exit.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			return fn.Name == "panic"
		case *ast.SelectorExpr:
			switch fn.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln", "Exit", "Goexit":
				return true
			}
		}
	}
	return false
}

// onExitPathFrom reports whether unlockPos sits inside an exiting block
// that excludes lockPos: the unlock belongs to an early-exit branch, so
// the fall-through path that took the lock still holds it.
func onExitPathFrom(exits []span, unlockPos, lockPos token.Pos) bool {
	for _, s := range exits {
		if s.pos <= unlockPos && unlockPos < s.end && (lockPos < s.pos || lockPos >= s.end) {
			return true
		}
	}
	return false
}

func isMutexType(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "sync" && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
}

// guardAnnotation extracts the mutex name from a field's `guarded by X`
// comment (doc block above or trailing line comment).
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func fieldNames(field *ast.Field) string {
	if len(field.Names) == 0 {
		return "embedded field"
	}
	s := field.Names[0].Name
	for _, n := range field.Names[1:] {
		s += ", " + n.Name
	}
	return s
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return ""
}
