package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
)

// Sentinel polices the wire's control-frame space. Volume values <= -2 are
// control verbs (heartbeats today, more tomorrow); scattering the raw
// literals across comparison and construction sites is how the seed ended
// up with a chunkKey{-100, si, 0} sentinel colliding with a legitimate id.
// Every control value must be a named constant, and the constants
// themselves must live in a file named sentinels.go (transport owns the
// wire-level names, runtime aliases them), so the whole verb space is
// auditable in one place.
//
// Flagged:
//   - integer literals <= -2 assigned to or compared with a Volume field
//     (composite literals, assignments, comparisons, switch cases);
//   - const/var declarations binding a literal <= -2 to a sentinel-ish
//     name outside a sentinels.go file (test files may declare their own
//     named verbs — the point is no raw literal at use sites).
var Sentinel = &Analyzer{
	Name: "sentinel",
	Doc:  "forbid raw control-frame literals (<= -2) outside the sentinels.go constant files",
	Run:  runSentinel,
}

// volumeFieldNames are the field/variable names that carry wire volume
// ids. chunkKey's lower-case field rides along.
var volumeFieldNames = map[string]bool{"Volume": true, "volume": true}

var sentinelNameRe = regexp.MustCompile(`(?i)(vol|heartbeat|image|img|sentinel|frame|verb)`)

//distlint:allow sentinel -- the analyzer's own threshold, not a wire verb
const sentinelLimit = -2

func runSentinel(p *Pass) {
	for _, f := range p.Pkg.Files {
		file := p.Pkg.Fset.Position(f.Pos()).Filename
		base := filepath.Base(file)
		if base == "sentinels.go" {
			continue
		}
		isTest := strings.HasSuffix(base, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkSentinelComposite(p, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) && isVolumeExpr(lhs) {
						reportSentinelLit(p, n.Rhs[i], "assigned to "+volumeName(lhs))
					}
				}
			case *ast.BinaryExpr:
				checkSentinelCompare(p, n)
			case *ast.SwitchStmt:
				checkSentinelSwitch(p, n)
			case *ast.ValueSpec:
				if !isTest {
					checkSentinelDecl(p, n)
				}
			}
			return true
		})
	}
}

// checkSentinelComposite flags Volume fields built from raw literals, in
// both keyed (Chunk{Volume: -2}) and positional (chunkKey{-100, si, 0})
// composite literals.
func checkSentinelComposite(p *Pass, cl *ast.CompositeLit) {
	var fields *types.Struct
	if tv, ok := p.Pkg.Info.Types[cl]; ok && tv.Type != nil {
		if st, ok := tv.Type.Underlying().(*types.Struct); ok {
			fields = st
		}
	}
	for i, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && volumeFieldNames[key.Name] {
				reportSentinelLit(p, kv.Value, "assigned to field "+key.Name)
			}
			continue
		}
		// Positional literal: resolve the field name from the type.
		if fields != nil && i < fields.NumFields() && volumeFieldNames[fields.Field(i).Name()] {
			reportSentinelLit(p, el, "assigned to field "+fields.Field(i).Name())
		}
	}
}

func checkSentinelCompare(p *Pass, b *ast.BinaryExpr) {
	switch b.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	if isVolumeExpr(b.X) {
		reportSentinelLit(p, b.Y, "compared with "+volumeName(b.X))
	}
	if isVolumeExpr(b.Y) {
		reportSentinelLit(p, b.X, "compared with "+volumeName(b.Y))
	}
}

func checkSentinelSwitch(p *Pass, s *ast.SwitchStmt) {
	if s.Tag == nil || !isVolumeExpr(s.Tag) {
		return
	}
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			reportSentinelLit(p, e, "switched on "+volumeName(s.Tag))
		}
	}
}

// checkSentinelDecl keeps the named constants themselves in sentinels.go:
// a -2 bound to heartbeatVolume in any other file is still a scattered
// definition of the wire protocol.
func checkSentinelDecl(p *Pass, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) || !sentinelNameRe.MatchString(name.Name) {
			continue
		}
		if v, ok := litInt(vs.Values[i]); ok && v <= sentinelLimit {
			p.Reportf(vs.Values[i].Pos(), "control-frame sentinel %s = %d declared outside a sentinels.go file; wire verbs must be defined in one auditable place", name.Name, v)
		}
	}
}

func reportSentinelLit(p *Pass, e ast.Expr, context string) {
	if v, ok := litInt(e); ok && v <= sentinelLimit {
		p.Reportf(e.Pos(), "raw control-frame literal %d %s; use the named sentinel from sentinels.go (heartbeats, future verbs) so the verb space stays auditable", v, context)
	}
}

func isVolumeExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return volumeFieldNames[e.Name]
	case *ast.SelectorExpr:
		return volumeFieldNames[e.Sel.Name]
	}
	return false
}

func volumeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return "volume"
}
