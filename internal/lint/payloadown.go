package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PayloadOwn enforces the transport's payload-ownership protocol
// (documented on transport.PayloadPool): Send transfers the payload buffer
// to the transport, Pool.Put / PutPayload / RecyclePayload hand it back to
// the pool. Reading the buffer after either transfer races with the pool
// recycling it into a concurrent sender — a data race the race detector
// only catches if the recycled buffer happens to be rewritten in time, so
// it must be caught statically.
//
// The analysis is per function and positional: after a statement that
// transfers a buffer (or a message's .Payload), any later read of that
// buffer in the same function is flagged. Reassigning the variable (or the
// .Payload field) re-arms it. len() and cap() stay legal — a transferred
// slice header is a value; only the pointed-to bytes are owned by the
// pool. Function literals are analyzed as their own scopes.
var PayloadOwn = &Analyzer{
	Name: "payloadown",
	Doc:  "forbid reading a payload buffer after a transport Send or pool Put transferred its ownership",
	Run:  runPayloadOwn,
}

// transferKind distinguishes what was handed over.
type transfer struct {
	end     token.Pos // taint begins after the transferring call
	obj     types.Object
	payload bool // taint obj.Payload only, not obj itself
	verb    string
	line    int
}

func runPayloadOwn(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkOwnershipScope(p, n.Body)
				}
				return true
			case *ast.FuncLit:
				checkOwnershipScope(p, n.Body)
				return true
			}
			return true
		})
	}
}

// checkOwnershipScope runs the positional ownership analysis over one
// function body, skipping nested function literals (they get their own
// scope — a goroutine body does not execute at its textual position).
func checkOwnershipScope(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	var transfers []transfer

	// Pass 1: find the transfer points.
	inspectScope(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if obj, payload, verb, ok := transferredBuffer(info, call); ok {
			transfers = append(transfers, transfer{
				end: call.End(), obj: obj, payload: payload, verb: verb,
				line: p.Pkg.Fset.Position(call.Pos()).Line,
			})
		}
	})
	if len(transfers) == 0 {
		return
	}

	// Pass 2: re-arm points — a plain assignment to the variable or its
	// .Payload field ends the taint from that position on.
	type rearm struct {
		pos     token.Pos
		obj     types.Object
		payload bool
	}
	var rearms []rearm
	inspectScope(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return
		}
		for _, lhs := range as.Lhs {
			switch l := lhs.(type) {
			case *ast.Ident:
				if obj := lhsObj(info, l); obj != nil {
					rearms = append(rearms, rearm{as.End(), obj, false})
				}
			case *ast.SelectorExpr:
				if l.Sel.Name == "Payload" {
					if id, ok := l.X.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							rearms = append(rearms, rearm{as.End(), obj, true})
						}
					}
				}
			}
		}
	})

	armed := func(t transfer, pos token.Pos) bool {
		if pos <= t.end {
			return false
		}
		for _, r := range rearms {
			if r.obj != t.obj || r.pos <= t.end || r.pos > pos {
				continue
			}
			// Reassigning the whole variable clears both taints;
			// reassigning .Payload only clears a payload taint.
			if !r.payload || t.payload {
				return false
			}
		}
		return true
	}

	// Pass 3: flag reads of tainted buffers. Reads inside len/cap and the
	// left side of assignments are not data accesses.
	inspectScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// m.Payload read after Send(m).
			id, ok := n.X.(*ast.Ident)
			if !ok || n.Sel.Name != "Payload" {
				return
			}
			obj := info.Uses[id]
			if obj == nil {
				return
			}
			for _, t := range transfers {
				if t.obj == obj && t.payload && armed(t, n.Pos()) {
					p.Reportf(n.Pos(), "%s.Payload read after %s transferred it to the transport on line %d; the pool may already be recycling the buffer", id.Name, t.verb, t.line)
					return
				}
			}
		case *ast.Ident:
			obj := info.Uses[n]
			if obj == nil {
				return
			}
			for _, t := range transfers {
				if t.obj == obj && !t.payload && armed(t, n.Pos()) {
					p.Reportf(n.Pos(), "%s used after %s transferred its ownership on line %d; the pool may already be recycling the buffer", n.Name, t.verb, t.line)
					return
				}
			}
		}
	})
}

// inspectScope walks the block but does not descend into nested function
// literals, and skips identifier occurrences that are only assignment
// targets or len/cap arguments (callers handle re-arms separately).
func inspectScope(body *ast.BlockStmt, visit func(ast.Node)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// Visit the statement itself and RHS values; LHS targets are
			// writes, not reads.
			visit(n)
			for _, rhs := range n.Rhs {
				ast.Inspect(rhs, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					visit(m)
					return true
				})
			}
			// Index/selector expressions inside LHS still read the root
			// (m.Payload[0] = x reads the buffer): visit everything below
			// the top-level target identifier/selector.
			for _, lhs := range n.Lhs {
				switch l := lhs.(type) {
				case *ast.Ident:
					// Pure rebind: not a read.
				case *ast.SelectorExpr:
					if _, ok := l.X.(*ast.Ident); !ok {
						ast.Inspect(l.X, func(m ast.Node) bool { visit(m); return true })
					}
				default:
					ast.Inspect(l, func(m ast.Node) bool { visit(m); return true })
				}
			}
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				// Slice headers are values: len/cap of a transferred
				// buffer touch no pooled bytes.
				return false
			}
		}
		if n != nil {
			visit(n)
		}
		return true
	}
	ast.Inspect(body, walk)
}

func lhsObj(info *types.Info, id *ast.Ident) types.Object {
	if id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// transferredBuffer recognizes ownership-transferring calls and returns
// the tainted variable. payload=true means only obj.Payload was handed
// over (Send of a whole message); payload=false taints the buffer
// variable itself.
func transferredBuffer(info *types.Info, call *ast.CallExpr) (obj types.Object, payload bool, verb string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	name := ""
	if isSel {
		name = sel.Sel.Name
	} else if id, isID := call.Fun.(*ast.Ident); isID {
		name = id.Name
	}
	switch name {
	case "Send":
		if len(call.Args) != 1 || !isTransportMessage(info, call.Args[0]) {
			return nil, false, "", false
		}
		switch arg := call.Args[0].(type) {
		case *ast.Ident:
			if o := info.Uses[arg]; o != nil {
				return o, true, "Send", true
			}
		case *ast.CompositeLit:
			for _, el := range arg.Elts {
				kv, isKV := el.(*ast.KeyValueExpr)
				if !isKV {
					continue
				}
				if key, isID := kv.Key.(*ast.Ident); isID && key.Name == "Payload" {
					if vid, isID := kv.Value.(*ast.Ident); isID {
						if o := info.Uses[vid]; o != nil {
							return o, false, "Send", true
						}
					}
				}
			}
		}
	case "Put", "PutPayload", "RecyclePayload":
		argIdx := 0
		if name == "RecyclePayload" {
			if len(call.Args) != 2 {
				return nil, false, "", false
			}
			argIdx = 1
		} else if len(call.Args) != 1 {
			return nil, false, "", false
		}
		if !looksLikePoolPut(info, call, isSel, sel) {
			return nil, false, "", false
		}
		switch arg := call.Args[argIdx].(type) {
		case *ast.Ident:
			if o := info.Uses[arg]; o != nil {
				return o, false, name, true
			}
		case *ast.SelectorExpr:
			if arg.Sel.Name == "Payload" {
				if id, isID := arg.X.(*ast.Ident); isID {
					if o := info.Uses[id]; o != nil {
						return o, true, name, true
					}
				}
			}
		}
	}
	return nil, false, "", false
}

// isTransportMessage reports whether the expression's static type is the
// transport package's Message (the runtime aliases Chunk to it). Without
// type information the call is conservatively accepted — fixtures and
// partially-checked packages still get coverage.
func isTransportMessage(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Message" || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/transport")
}

// looksLikePoolPut keeps Put from matching arbitrary APIs: the receiver
// (or function) must come from the transport package or be a *Pool.
func looksLikePoolPut(info *types.Info, call *ast.CallExpr, isSel bool, sel *ast.SelectorExpr) bool {
	var obj types.Object
	if isSel {
		obj = info.Uses[sel.Sel]
	} else if id, ok := call.Fun.(*ast.Ident); ok {
		obj = info.Uses[id]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj == nil // no type info: accept
	}
	if fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/transport")
}
