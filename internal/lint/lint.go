// Package lint is distredge's project-invariant static-analysis suite.
//
// The codebase stakes correctness on conventions no compiler checks: the
// planning stack must stay seed-deterministic and bit-identical to its
// goldens, transport.Conn.Send transfers payload ownership to the pool,
// control frames ride negative Volume sentinels, and the runtime's shared
// state is guarded by documented mutexes. Each convention has an analyzer
// here; cmd/distlint drives them over go/parser + go/types using only the
// standard library (package discovery and export data come from
// `go list -export -json`, so the suite runs offline and in CI).
//
// Analyzers:
//
//	determinism — flags wall-clock reads, the global math/rand source and
//	  order-sensitive map iteration inside the deterministic planning
//	  packages (sim, splitter, strategy, rl, experiments, partition,
//	  network, nn and the public API), where any of them silently breaks
//	  bit-identical golden tests.
//	payloadown  — flags reads of a payload buffer after its ownership was
//	  transferred by a transport Send, Pool.Put or RecyclePayload; such
//	  reads race with the pool recycling the buffer and the race detector
//	  only catches them if the buffer is rewritten in time.
//	sentinel    — flags raw integer literals <= -2 compared against or
//	  assigned to Volume fields (the wire's control-frame space), forcing
//	  the named constants from the sentinels.go files.
//	lockcheck   — for struct fields annotated `guarded by <mu>`, flags
//	  accesses from methods of the struct that do not hold the lock.
//
// A diagnostic can be suppressed with a justified directive on the same
// line or the line above:
//
//	//distlint:allow payloadown -- inproc hands payloads over by reference; this test pins that
//
// The reason after `--` is mandatory: an unexplained suppression is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one project-invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// Applies reports whether the analyzer runs on the package with the
	// given base import path (test variants are collapsed to their base
	// path). A nil Applies means every package.
	Applies func(importPath string) bool
	Run     func(p *Pass)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	out      *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, PayloadOwn, Sentinel, LockCheck}
}

// ByName resolves a comma-separated analyzer list; unknown names error.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by position. Suppressed diagnostics are dropped;
// malformed or unjustified suppression directives are reported themselves.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		allows, allowDiags := collectAllows(pkg)
		all = append(all, allowDiags...)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.BasePath()) {
				continue
			}
			var out []Diagnostic
			pass := &Pass{Pkg: pkg, analyzer: a, out: &out}
			a.Run(pass)
			for _, d := range out {
				if allows.allowed(d) {
					continue
				}
				all = append(all, d)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// allowSet maps file -> line -> analyzer names a directive covers. A
// directive covers its own line and the line below it, so it can sit
// either trailing the flagged statement or on its own line above.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) allowed(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if names := lines[ln]; names != nil && (names[d.Analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

var allowRe = regexp.MustCompile(`^//\s*distlint:allow\s+(.*)$`)

// collectAllows parses //distlint:allow directives out of the package's
// comments. Directives must carry a justification after ` -- `; bare ones
// are reported so suppressions stay auditable.
func collectAllows(pkg *Package) (allowSet, []Diagnostic) {
	set := allowSet{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				spec, reason, ok := strings.Cut(m[1], "--")
				if !ok || strings.TrimSpace(reason) == "" {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "distlint",
						Message:  "allow directive needs a justification: //distlint:allow <analyzers> -- <reason>",
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(spec, ",") {
					if n = strings.TrimSpace(n); n != "" {
						names[n] = true
					}
				}
				if len(names) == 0 {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "distlint",
						Message:  "allow directive names no analyzer",
					})
					continue
				}
				if set[pos.Filename] == nil {
					set[pos.Filename] = map[int]map[string]bool{}
				}
				set[pos.Filename][pos.Line] = names
			}
		}
	}
	return set, diags
}

// litInt unwraps parentheses, unary minus and single-argument conversions
// around an integer literal and returns its value. The second result is
// false for anything that is not a syntactic literal — named constants in
// particular, which is what lets the sentinel analyzer force them.
func litInt(e ast.Expr) (int64, bool) {
	neg := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.SUB {
				return 0, false
			}
			neg = !neg
			e = x.X
		case *ast.CallExpr:
			// int32(-2)-style conversions; anything with one argument and
			// a literal inside is close enough for sentinel spotting.
			if len(x.Args) != 1 {
				return 0, false
			}
			e = x.Args[0]
		case *ast.BasicLit:
			if x.Kind != token.INT {
				return 0, false
			}
			var v int64
			if _, err := fmt.Sscanf(x.Value, "%d", &v); err != nil {
				return 0, false
			}
			if neg {
				v = -v
			}
			return v, true
		default:
			return 0, false
		}
	}
}
