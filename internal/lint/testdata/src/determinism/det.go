// Package det exercises the determinism analyzer: wall-clock reads, the
// global math/rand source and order-sensitive map iteration are flagged;
// seeded sources, constructors and the sorted-keys idiom pass.
package det

import (
	"math/rand"
	"time"
)

func Timing() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func GlobalDraw() int {
	return rand.Intn(10) // want `global rand\.Intn draws from the process-wide source`
}

func GlobalFloat() float64 {
	return rand.Float64() // want `global rand\.Float64 draws from the process-wide source`
}

func SeededDraw(r *rand.Rand) int {
	return r.Intn(10) // seeded source: allowed
}

func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors: allowed
}

func FoldUnsorted(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `map iteration folds a float`
	}
	return sum
}

func ConcatUnsorted(m map[string]string) string {
	var s string
	for _, v := range m {
		s += v // want `map iteration folds a string`
	}
	return s
}

func AppendValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `map iteration appends the map value`
	}
	return out
}

func CountInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition commutes: allowed
	}
	return n
}

func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // key-only append: the sorted-iteration idiom
	}
	return keys
}
