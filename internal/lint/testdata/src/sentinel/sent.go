// Package sent exercises the control-frame sentinel analyzer: raw
// literals <= -2 against Volume fields are flagged at construction,
// assignment, comparison and switch sites, as are sentinel-named constant
// declarations outside sentinels.go; named constants and the -1 input
// marker pass.
package sent

type Message struct {
	Image  uint32
	Volume int32
}

type chunkKey struct {
	volume int32
	lo, hi int32
}

const volHeartbeat = -2 // want `control-frame sentinel volHeartbeat = -2 declared outside`

func MakeHeartbeat() Message {
	return Message{Volume: -2} // want `raw control-frame literal -2`
}

func MakeInput() Message {
	return Message{Volume: -1} // the input marker is not a control verb
}

func MakeNamed() Message {
	return Message{Volume: volHeartbeat} // named constant: allowed
}

func PositionalKey() chunkKey {
	return chunkKey{-100, 0, 0} // want `raw control-frame literal -100`
}

func IsControl(m Message) bool {
	return m.Volume <= -2 // want `raw control-frame literal -2`
}

func SetVerb(m *Message) {
	m.Volume = -3 // want `raw control-frame literal -3`
}

func Dispatch(m Message) int {
	switch m.Volume {
	case -2: // want `raw control-frame literal -2`
		return 1
	case volGoodbye: // named constant from sentinels.go: allowed
		return 2
	}
	return 0
}
