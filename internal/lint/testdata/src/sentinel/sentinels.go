package sent

// A sentinels.go file owns the verb space: declarations here are exempt
// from the outside-sentinels.go declaration rule.
const volGoodbye = -3
