// Package lc exercises the lock-discipline analyzer: accesses to fields
// annotated `guarded by <mu>` must hold the lock in methods of the owning
// struct; deferred unlocks, early-exit unlocks and RWMutex read locks all
// count as holding.
package lc

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // guarded by missing; want `names no sync\.Mutex/RWMutex field of counter`
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Bad() int {
	return c.n // want `c\.n \(guarded by mu\) accessed in Bad without holding mu`
}

func (c *counter) EarlyExit(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return 0
	}
	v := c.n // the early-exit unlock above does not end this critical section
	c.mu.Unlock()
	return v
}

func (c *counter) AfterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want `accessed in AfterUnlock without holding mu`
}

func (c *counter) Goroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `accessed in Goroutine \(func literal\) without holding mu`
	}()
}

func (c *counter) Snapshot() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

// bumpLocked documents the caller-holds convention: its body is exempt
// from positional checking, and the obligation moves to its call sites.
func (c *counter) bumpLocked() {
	c.n++ // no diagnostic: assumed under the caller's mu
}

func (c *counter) CallsHelperHeld() {
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
}

func (c *counter) CallsHelperUnheld() {
	c.bumpLocked() // want `c\.bumpLocked is a Locked-suffix helper called in CallsHelperUnheld without holding mu`
}

func (c *counter) CallsHelperFromGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.bumpLocked() // want `Locked-suffix helper called in CallsHelperFromGoroutine \(func literal\) without holding mu`
	}()
}

// stripe / table model the sharded-stripe pattern of the runtime's
// registration table and stats recorder: hot state split across
// power-of-2 shards, each stripe guarding its own maps with its own
// mutex. The router hands out *stripe and every guarded access lives in a
// method on the stripe itself — so the analyzer sees each stripe as an
// independently-locked struct and the cross-shard router needs no lock at
// all.
type stripe struct {
	mu      sync.Mutex
	pending map[uint32]int // guarded by mu
}

func (s *stripe) add(img uint32) {
	s.mu.Lock()
	s.pending[img]++
	s.mu.Unlock()
}

func (s *stripe) drainLocked() {
	for k := range s.pending { // no diagnostic: caller-holds convention
		delete(s.pending, k)
	}
}

func (s *stripe) Leak(img uint32) int {
	return s.pending[img] // want `s\.pending \(guarded by mu\) accessed in Leak without holding mu`
}

type table struct {
	shards [4]stripe
}

func (t *table) shard(img uint32) *stripe { return &t.shards[img&3] }

// Route is lock-free at the table level: the guarded access happens inside
// the routed stripe's own method.
func (t *table) Route(img uint32) { t.shard(img).add(img) }

func (t *table) DrainAll() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.drainLocked()
		s.mu.Unlock()
	}
}

func (s *stripe) drainUnheld() {
	s.drainLocked() // want `s\.drainLocked is a Locked-suffix helper called in drainUnheld without holding mu`
}

type gauge struct {
	rw sync.RWMutex
	v  float64 // guarded by rw
}

func (g *gauge) Read() float64 {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

func (g *gauge) Write(x float64) {
	g.rw.Lock()
	g.v = x
	g.rw.Unlock()
}
