// Package lc exercises the lock-discipline analyzer: accesses to fields
// annotated `guarded by <mu>` must hold the lock in methods of the owning
// struct; deferred unlocks, early-exit unlocks and RWMutex read locks all
// count as holding.
package lc

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // guarded by missing; want `names no sync\.Mutex/RWMutex field of counter`
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Bad() int {
	return c.n // want `c\.n \(guarded by mu\) accessed in Bad without holding mu`
}

func (c *counter) EarlyExit(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return 0
	}
	v := c.n // the early-exit unlock above does not end this critical section
	c.mu.Unlock()
	return v
}

func (c *counter) AfterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want `accessed in AfterUnlock without holding mu`
}

func (c *counter) Goroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `accessed in Goroutine \(func literal\) without holding mu`
	}()
}

func (c *counter) Snapshot() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

// bumpLocked documents the caller-holds convention: its body is exempt
// from positional checking, and the obligation moves to its call sites.
func (c *counter) bumpLocked() {
	c.n++ // no diagnostic: assumed under the caller's mu
}

func (c *counter) CallsHelperHeld() {
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
}

func (c *counter) CallsHelperUnheld() {
	c.bumpLocked() // want `c\.bumpLocked is a Locked-suffix helper called in CallsHelperUnheld without holding mu`
}

func (c *counter) CallsHelperFromGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.bumpLocked() // want `Locked-suffix helper called in CallsHelperFromGoroutine \(func literal\) without holding mu`
	}()
}

type gauge struct {
	rw sync.RWMutex
	v  float64 // guarded by rw
}

func (g *gauge) Read() float64 {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

func (g *gauge) Write(x float64) {
	g.rw.Lock()
	g.v = x
	g.rw.Unlock()
}
