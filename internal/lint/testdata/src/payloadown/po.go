// Package po exercises the payload-ownership analyzer: reads after a
// transport Send or pool Put are flagged; len/cap, re-armed buffers,
// separate goroutine scopes and justified allow directives pass.
package po

import "distredge/internal/transport"

func SendThenRead(conn transport.Conn, m transport.Message) byte {
	_ = conn.Send(m)
	return m.Payload[0] // want `m\.Payload read after Send`
}

func SendThenLen(conn transport.Conn, m transport.Message) int {
	_ = conn.Send(m)
	return len(m.Payload) // slice header is a value: allowed
}

func SendBufThenRead(conn transport.Conn, b []byte) byte {
	_ = conn.Send(transport.Message{Image: 1, Payload: b})
	return b[0] // want `b used after Send`
}

func SendThenRearm(conn transport.Conn, p *transport.Pool, m transport.Message) byte {
	_ = conn.Send(m)
	m.Payload = p.Get(16)
	return m.Payload[0] // reassigned: ownership is fresh
}

func PutThenRead(p *transport.Pool, b []byte) byte {
	p.Put(b)
	return b[0] // want `b used after Put`
}

func RecycleThenRead(p *transport.Pool, m transport.Message) byte {
	transport.RecyclePayload(p, m.Payload)
	return m.Payload[0] // want `m\.Payload read after RecyclePayload`
}

func GoroutineScope(conn transport.Conn, m transport.Message) byte {
	go func() {
		_ = conn.Send(m)
	}()
	return m.Payload[0] // separate scope: the positional model stops at func literals
}

func Suppressed(conn transport.Conn, m transport.Message) byte {
	_ = conn.Send(m)
	//distlint:allow payloadown -- fixture pins that a justified directive suppresses the report
	return m.Payload[0]
}

func BareDirective(conn transport.Conn, m transport.Message) error {
	//distlint:allow payloadown // want `allow directive needs a justification`
	return conn.Send(m)
}
