package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// Fixture packages are type-checked against in-memory stubs instead of the
// real standard library so the tests never depend on export data: the
// analyzers only consume names, package paths and signatures, which the
// stubs reproduce.
var stubSrc = map[string]string{
	"time": `package time
type Time struct{}
type Duration int64
func Now() Time
func Since(t Time) Duration
func Until(t Time) Duration`,

	"math/rand": `package rand
type Source interface{ Int63() int64 }
type Rand struct{}
func (r *Rand) Intn(n int) int
func New(src Source) *Rand
func NewSource(seed int64) Source
func Intn(n int) int
func Float64() float64`,

	"sync": `package sync
type Mutex struct{}
func (m *Mutex) Lock()
func (m *Mutex) Unlock()
type RWMutex struct{}
func (m *RWMutex) Lock()
func (m *RWMutex) Unlock()
func (m *RWMutex) RLock()
func (m *RWMutex) RUnlock()`,

	"distredge/internal/transport": `package transport
type Message struct {
	Image   uint32
	Volume  int32
	Lo, Hi  int32
	Payload []byte
}
type Conn interface {
	Send(m Message) error
	Recv() (Message, error)
	Close() error
}
type Pool struct{}
func NewPool() *Pool
func (p *Pool) Get(n int) []byte
func (p *Pool) Put(b []byte)
func GetPayload(p *Pool, n int) []byte
func RecyclePayload(p *Pool, b []byte)`,
}

type stubImporter struct {
	fset *token.FileSet
	pkgs map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.pkgs[path]; ok {
		return p, nil
	}
	src, ok := stubSrc[path]
	if !ok {
		return nil, fmt.Errorf("no stub for import %q", path)
	}
	f, err := parser.ParseFile(si.fset, path+"/stub.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("stub %q: %v", path, err)
	}
	conf := types.Config{Importer: si}
	p, err := conf.Check(path, si.fset, []*ast.File{f}, nil)
	if err != nil {
		return nil, fmt.Errorf("stub %q: %v", path, err)
	}
	si.pkgs[path] = p
	return p, nil
}

var wantRe = regexp.MustCompile("want `([^`]+)`")

// runFixture type-checks the fixture directory as if it were the package
// at asPath, runs one analyzer over it and matches the diagnostics against
// the fixture's `// want` comments: every diagnostic must be wanted on its
// line, every want must be hit.
func runFixture(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := NewInfo()
	var terrs []error
	conf := types.Config{
		Importer: &stubImporter{fset: fset, pkgs: map[string]*types.Package{}},
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(asPath, fset, files, info)
	if len(terrs) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, terrs)
	}
	pkg := &Package{ImportPath: asPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
	if a.Applies != nil && !a.Applies(pkg.BasePath()) {
		t.Fatalf("analyzer %s does not apply to fixture path %s", a.Name, asPath)
	}
	got := Run([]*Package{pkg}, []*Analyzer{a})

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &want{re: regexp.MustCompile(m[1])})
			}
		}
	}

	for _, d := range got {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", k, w.re)
			}
		}
	}
}

func TestDeterminismFixtures(t *testing.T) {
	runFixture(t, Determinism, filepath.Join("testdata", "src", "determinism"), "distredge/internal/sim")
}

func TestPayloadOwnFixtures(t *testing.T) {
	runFixture(t, PayloadOwn, filepath.Join("testdata", "src", "payloadown"), "distredge/internal/fixture/po")
}

func TestSentinelFixtures(t *testing.T) {
	runFixture(t, Sentinel, filepath.Join("testdata", "src", "sentinel"), "distredge/internal/fixture/sent")
}

func TestLockCheckFixtures(t *testing.T) {
	runFixture(t, LockCheck, filepath.Join("testdata", "src", "lockcheck"), "distredge/internal/fixture/lc")
}

func TestByName(t *testing.T) {
	as, err := ByName("determinism, lockcheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0] != Determinism || as[1] != LockCheck {
		t.Fatalf("ByName resolved %v", as)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) did not error")
	}
}
