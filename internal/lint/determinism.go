package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicPkgs is the planning/evaluation stack whose outputs must be
// bit-identical run to run: the golden equivalence tests at the repo root,
// the sim's oracle comparisons and the byte-identical parallel experiment
// rows all assume these packages never consult the wall clock, the global
// random source, or map iteration order.
var deterministicPkgs = map[string]bool{
	"distredge":                      true,
	"distredge/internal/sim":         true,
	"distredge/internal/splitter":    true,
	"distredge/internal/strategy":    true,
	"distredge/internal/rl":          true,
	"distredge/internal/experiments": true,
	"distredge/internal/plancache":   true,
	"distredge/internal/partition":   true,
	"distredge/internal/network":     true,
	"distredge/internal/nn":          true,
}

// Determinism flags the three ways the deterministic stack has historically
// gone non-reproducible: wall-clock reads (time.Now/Since/Until), the
// global math/rand source (seeded *rand.Rand is required so every result
// is a pure function of Config.Seed), and `for range` over a map whose
// body folds floating-point values or appends map values to an ordered
// result — both of which leak the randomized iteration order into output
// that golden tests compare byte for byte.
var Determinism = &Analyzer{
	Name:    "determinism",
	Doc:     "forbid wall-clock, global math/rand and order-sensitive map iteration in the deterministic planning packages",
	Applies: func(path string) bool { return deterministicPkgs[path] },
	Run:     runDeterminism,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkDetSelector(p, info, n)
			case *ast.RangeStmt:
				checkMapRange(p, info, n)
			}
			return true
		})
	}
}

// checkDetSelector flags pkg.Func selectors resolving to time's clock
// reads or to package-level math/rand functions (methods on a seeded
// *rand.Rand resolve to receivers, not package-level functions, and pass).
func checkDetSelector(p *Pass, info *types.Info, sel *ast.SelectorExpr) {
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			p.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; results must be a pure function of the seed (pass timestamps in, or move timing to the caller)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(fn.Name(), "New") {
			p.Reportf(sel.Pos(), "global rand.%s draws from the process-wide source; use a seeded *rand.Rand so runs reproduce bit-identically", fn.Name())
		}
	}
}

// checkMapRange flags order-sensitive map iteration. Two body patterns are
// order-sensitive: folding floats or strings with op-assign (float addition
// is not associative, string concat is not commutative — both make the
// result depend on iteration order), and appending an expression that
// reads the map's *value* to a slice (the slice order then varies run to
// run). Appending only keys is the sorted-iteration idiom's first half and
// stays legal.
func checkMapRange(p *Pass, info *types.Info, r *ast.RangeStmt) {
	tv, ok := info.Types[r.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	valueObj := rangeVarObj(info, r.Value)

	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && isFloatOrString(info, n.Lhs[0]) {
					p.Reportf(n.Pos(), "map iteration folds a %s with %s: iteration order varies run to run and the fold is order-sensitive; iterate sorted keys instead", typeWord(info, n.Lhs[0]), n.Tok)
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 1 {
				for _, arg := range n.Args[1:] {
					if exprReads(info, arg, valueObj) {
						p.Reportf(n.Pos(), "map iteration appends the map value to an ordered result: the slice's order varies run to run; iterate sorted keys instead")
						break
					}
				}
			}
		}
		return true
	})
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return info.Defs[id]
}

// exprReads reports whether e references obj (the range value variable).
// With obj unknown (e.g. `for _, v :=` elided), any non-key expression is
// conservatively treated as not reading the value.
func exprReads(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func isFloatOrString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && (b.Info()&types.IsFloat != 0 || b.Info()&types.IsString != 0)
}

func typeWord(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return "string"
		}
	}
	return "float"
}
