package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package. Test variants
// (`p [p.test]`) carry the package's regular files plus its in-package
// test files; when a variant exists the loader scans it instead of the
// plain package so test code is checked under the same invariants.
type Package struct {
	ImportPath string // as listed, possibly with a " [p.test]" variant suffix
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// BasePath returns the import path with any test-variant suffix stripped:
// analyzer scoping treats a package and its test variant identically.
func (p *Package) BasePath() string {
	if i := strings.IndexByte(p.ImportPath, ' '); i >= 0 {
		return p.ImportPath[:i]
	}
	return p.ImportPath
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ForTest    string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load discovers packages matching the patterns with `go list`, parses
// their sources and type-checks them against the toolchain's export data.
// dir is the module directory to run `go list` in ("" = current). Load is
// self-contained: no module dependencies, no network — export data comes
// from the local build cache, which `go list -export` populates.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "-test"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}

	// A test variant supersedes its plain package: same files plus the
	// in-package tests.
	hasVariant := map[string]bool{}
	for _, p := range pkgs {
		if p.ForTest != "" {
			hasVariant[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var loaded []*Package
	for _, p := range pkgs {
		switch {
		case p.Standard, p.DepOnly:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"):
			continue // synthesized test main
		case p.ForTest == "" && hasVariant[p.ImportPath]:
			continue
		case p.Error != nil && len(p.GoFiles) == 0:
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		lp, err := check(fset, p, exports)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, lp)
	}
	return loaded, nil
}

// check parses and type-checks one listed package. Type errors do not
// abort the load: analyzers fall back to syntactic checks where type
// information is missing, and the driver surfaces the errors as warnings.
func check(fset *token.FileSet, p *listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range append(append([]string{}, p.GoFiles...), p.CgoFiles...) {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", path, err)
		}
		files = append(files, f)
	}

	lp := &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Info:       NewInfo(),
	}

	// Import resolution: a test variant of base package q prefers the
	// dependency's variant compiled for q's test binary, then the plain
	// package. Export data is read with the toolchain's gc importer.
	variantSuffix := ""
	if p.ForTest != "" {
		variantSuffix = " [" + p.ForTest + ".test]"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if variantSuffix != "" {
			if f, ok := exports[path+variantSuffix]; ok {
				return os.Open(f)
			}
		}
		if f, ok := exports[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	}
	conf := types.Config{
		Importer:    importer.ForCompiler(fset, "gc", lookup),
		FakeImportC: true,
		Error:       func(err error) { lp.TypeErrors = append(lp.TypeErrors, err) },
	}
	// Check errors are already collected via conf.Error; the returned
	// package is usable even when partially checked. The base path (no
	// variant suffix) names the checked package so analyzers matching on
	// Pkg.Path() see the real import path.
	lp.Types, _ = conf.Check(lp.BasePath(), fset, files, lp.Info)
	return lp, nil
}

// NewInfo returns a types.Info with every map analyzers consume allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}
