package lint

import (
	"strings"
	"testing"
)

// TestLoadSelf smoke-tests the real go list + export-data driver path on
// the lint package itself: the test variant must be scanned (regular plus
// in-package test files) with full type information and no type errors.
func TestLoadSelf(t *testing.T) {
	pkgs, err := Load("", ".")
	if err != nil {
		t.Fatal(err)
	}
	var self *Package
	for _, p := range pkgs {
		if p.BasePath() == "distredge/internal/lint" {
			self = p
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			t.Errorf("synthesized test main %s was not skipped", p.ImportPath)
		}
	}
	if self == nil {
		t.Fatalf("lint package not loaded; got %d packages", len(pkgs))
	}
	if !strings.Contains(self.ImportPath, "[") {
		t.Errorf("loaded %s, want the test variant (in-package tests must be linted)", self.ImportPath)
	}
	if self.Types == nil || len(self.Files) == 0 {
		t.Fatal("lint package loaded without syntax or type information")
	}
	for _, err := range self.TypeErrors {
		t.Errorf("type error: %v", err)
	}
	// The import graph must have resolved: Load's whole point is analyzers
	// can see through selectors into other packages.
	if self.Types.Scope().Lookup("Load") == nil {
		t.Error("package scope is missing its own declarations")
	}
}
