package plancache

import (
	"fmt"
	"sync"

	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// Planner runs one planning: produce a strategy for the environment under
// the objective (nil = latency), optionally warm-started from init — a
// known-good strategy for this exact fleet shape that the search should
// explore outward from (fed into splitter Config.InitSplits; see
// experiments.PlanObjectiveInit for the canonical implementation). init is
// nil for cold plannings. Implementations must be deterministic: the same
// (env contents, objective, init) must yield a bit-identical strategy.
type Planner func(env *sim.Env, obj sim.Objective, init *strategy.Strategy) (*strategy.Strategy, error)

// Outcome reports how a Plan call was served.
type Outcome string

// Plan outcomes.
const (
	// OutcomeHit: the exact fleet signature was cached; no search ran.
	OutcomeHit Outcome = "hit"
	// OutcomeWarm: a nearest-signature neighbour seeded a warm-started
	// search.
	OutcomeWarm Outcome = "warm"
	// OutcomeCold: nothing transferable was cached; the search ran from
	// scratch.
	OutcomeCold Outcome = "cold"
)

// Result is one planning outcome. Strategy is owned by the cache — treat it
// as read-only. Score is the strategy's objective score (seconds, lower is
// better). SeedKey is the signature key of the warm-start donor ("" unless
// Outcome is OutcomeWarm).
type Result struct {
	Strategy *strategy.Strategy
	Score    float64
	Outcome  Outcome
	SeedKey  string
}

// Config parameterises NewService.
type Config struct {
	// Cache is the backing plan cache; nil builds a private New(0). Sharing
	// one cache across services (or with a recovery CachedReplan) is safe.
	Cache *Cache
	// Workers bounds concurrent plannings (the experiments Budget.Parallel
	// convention: 0/1 = serial, N > 1 = N at once, negative = one per CPU
	// as resolved by the caller). Plan calls beyond the bound queue for a
	// worker slot; exact hits never consume a slot.
	Workers int
	// Planner runs the actual plannings. Required.
	Planner Planner
}

// call is one in-flight planning, shared by single-flight duplicates.
type call struct {
	done chan struct{}
	res  Result
	err  error
}

// Service is a stateless planner service: Plan calls for distinct fleet
// signatures run concurrently on the worker pool, identical signatures are
// deduplicated single-flight (the duplicate waits for the first flight's
// result instead of planning again), exact cache hits return immediately,
// and misses are warm-started from the nearest cached neighbour. "Stateless"
// means serving state only: everything the service accumulates lives in the
// (shareable, bounded) cache, so services can be built and discarded freely.
type Service struct {
	cache *Cache
	plan  Planner
	slots chan struct{}

	mu       sync.Mutex
	inflight map[string]*call // guarded by mu
}

// NewService builds a planner service.
func NewService(cfg Config) (*Service, error) {
	if cfg.Planner == nil {
		return nil, fmt.Errorf("plancache: Config.Planner is required")
	}
	cache := cfg.Cache
	if cache == nil {
		cache = New(0)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	return &Service{
		cache:    cache,
		plan:     cfg.Planner,
		slots:    make(chan struct{}, workers),
		inflight: make(map[string]*call),
	}, nil
}

// Cache returns the backing cache (for stats, or to share with a recovery
// CachedReplan).
func (s *Service) Cache() *Cache { return s.cache }

// Plan serves one planning request. Exact signature hits return the cached
// strategy without planning; otherwise the planning runs on the worker
// pool, warm-started from the nearest cached neighbour when one is
// comparable, and the result — guaranteed to score no worse than its
// warm-start seed under the requested objective — is cached before
// returning.
func (s *Service) Plan(env *sim.Env, obj sim.Objective) (Result, error) {
	sig := SignatureOf(env, obj)
	if strat, score, ok := s.cache.Get(sig); ok {
		return Result{Strategy: strat, Score: score, Outcome: OutcomeHit}, nil
	}
	key := sig.Key()
	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	c.res, c.err = s.planMiss(env, obj, sig)

	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// planMiss runs the planning for a cache miss on a worker slot.
func (s *Service) planMiss(env *sim.Env, obj sim.Objective, sig Signature) (Result, error) {
	s.slots <- struct{}{}
	defer func() { <-s.slots }()

	var init *strategy.Strategy
	var seedKey string
	if nsig, nstrat, ok := s.cache.Nearest(sig); ok {
		if seed := warmSeed(env.Model, sig, nsig, nstrat); seed != nil &&
			seed.Validate(env.Model, env.NumProviders()) == nil {
			init, seedKey = seed, nsig.Key()
			s.cache.countWarmHit()
		}
	}

	strat, err := s.plan(env, obj, init)
	if err != nil {
		return Result{}, fmt.Errorf("plancache: planning %s: %w", sig.Key(), err)
	}
	scorer := sim.DefaultObjective(obj)
	score, err := scorer.Score(env, strat, 0)
	if err != nil {
		return Result{}, fmt.Errorf("plancache: scoring %s: %w", sig.Key(), err)
	}
	outcome := OutcomeCold
	if init != nil {
		outcome = OutcomeWarm
		// A warm-started plan never scores worse than its seed split: when
		// the shortened search fails to match the seed, the seed itself is
		// the plan.
		if seedScore, serr := scorer.Score(env, init, 0); serr == nil && seedScore < score {
			strat, score = init, seedScore
		}
	}
	// Hand out the cache-resident clone, so every path (hit or miss)
	// returns cache-owned read-only strategies.
	cached := s.cache.Put(sig, strat, score)
	return Result{Strategy: cached, Score: score, Outcome: outcome, SeedKey: seedKey}, nil
}
