package plancache

import (
	"fmt"
	"sync"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/strategy"
)

// sigN builds a synthetic signature; distinct n give distinct keys and
// finite mutual distances (same model/objective, same single device, shifted
// bandwidth bucket).
func sigN(n int) Signature {
	return Signature{
		Model:     "vgg16",
		Objective: "latency",
		Devices:   []DeviceSig{{Dev: "d0", BW: 10 + n, Spread: 1}},
	}
}

func testStrategy(m *cnn.Model, n int) *strategy.Strategy {
	b := strategy.SingleVolume(m)
	return &strategy.Strategy{
		Boundaries: b,
		Splits:     [][]int{strategy.EqualCuts(strategy.VolumeHeight(m, b, 0), n)},
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	m := cnn.VGG16()
	c := New(8)
	if _, _, ok := c.Get(sigN(0)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(sigN(0), testStrategy(m, 2), 1.5)
	s, score, ok := c.Get(sigN(0))
	if !ok || score != 1.5 || s == nil {
		t.Fatalf("Get = (%v, %v, %v), want hit at 1.5", s, score, ok)
	}
	if _, _, ok := c.Get(sigN(1)); ok {
		t.Fatal("hit for a never-stored signature")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses, 0 evictions", st)
	}
}

func TestCachePutClones(t *testing.T) {
	m := cnn.VGG16()
	orig := testStrategy(m, 2)
	c := New(8)
	resident := c.Put(sigN(0), orig, 1)
	if resident == orig {
		t.Fatal("Put stored the caller's pointer; mutations would corrupt the cache")
	}
	orig.Splits[0][0] = -1
	got, _, _ := c.Get(sigN(0))
	if got.Splits[0][0] == -1 {
		t.Fatal("mutating the Put argument changed the cached strategy")
	}
}

// TestCacheLRUEvictionTinyCapacity is the eviction half of the satellite:
// under a tiny capacity the LRU entry goes first, recency is refreshed by
// Get, and the counters stay consistent with every lookup made.
func TestCacheLRUEvictionTinyCapacity(t *testing.T) {
	m := cnn.VGG16()
	c := New(2)
	c.Put(sigN(0), testStrategy(m, 2), 0)
	c.Put(sigN(1), testStrategy(m, 2), 1)
	// Touch 0 so 1 is now least recently used.
	if _, _, ok := c.Get(sigN(0)); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	c.Put(sigN(2), testStrategy(m, 2), 2)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", c.Len())
	}
	if _, _, ok := c.Get(sigN(1)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	if _, _, ok := c.Get(sigN(0)); !ok {
		t.Fatal("recently-used entry 0 was evicted")
	}
	if _, _, ok := c.Get(sigN(2)); !ok {
		t.Fatal("newest entry 2 missing")
	}
	st := c.Stats()
	// Lookups above: hit(0), miss(1), hit(0), hit(2) -> 3 hits, 1 miss.
	if st.Hits != 3 || st.Misses != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 3 hits, 1 miss, 1 eviction", st)
	}
	if int(st.Hits+st.Misses) != 4 {
		t.Fatalf("hit+miss = %d, want one increment per Get", st.Hits+st.Misses)
	}
}

func TestCachePutUpdatesInPlace(t *testing.T) {
	m := cnn.VGG16()
	c := New(2)
	c.Put(sigN(0), testStrategy(m, 2), 5)
	c.Put(sigN(0), testStrategy(m, 3), 3)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put of one key", c.Len())
	}
	s, score, ok := c.Get(sigN(0))
	if !ok || score != 3 || len(s.Splits[0]) != 2 {
		t.Fatalf("updated entry = (%v, %v, %v), want the second Put", s, score, ok)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("in-place update counted %d evictions", ev)
	}
}

func TestCacheNearest(t *testing.T) {
	m := cnn.VGG16()
	c := New(8)
	if _, _, ok := c.Nearest(sigN(5)); ok {
		t.Fatal("Nearest on empty cache")
	}
	c.Put(sigN(0), testStrategy(m, 2), 0)
	c.Put(sigN(3), testStrategy(m, 2), 0)
	got, _, ok := c.Nearest(sigN(4))
	if !ok || got.Key() != sigN(3).Key() {
		t.Fatalf("Nearest(4) = %v, want bucket 3", got.Key())
	}
	// Incomparable request: same structure, different model.
	alien := sigN(4)
	alien.Model = "yolov2"
	if _, _, ok := c.Nearest(alien); ok {
		t.Fatal("Nearest matched across models")
	}
	// Equidistant neighbours resolve by smaller key, regardless of
	// insertion order.
	c2 := New(8)
	c2.Put(sigN(2), testStrategy(m, 2), 0)
	c2.Put(sigN(0), testStrategy(m, 2), 0)
	got2, _, ok := c2.Nearest(sigN(1))
	if !ok || got2.Key() != sigN(0).Key() {
		t.Fatalf("tie broke to %v, want the smaller key %v", got2.Key(), sigN(0).Key())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	m := cnn.VGG16()
	c := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % 6
				c.Put(sigN(k), testStrategy(m, 2), float64(k))
				c.Get(sigN((k + 1) % 6))
				c.Nearest(sigN(k))
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*50 {
		t.Fatalf("hit+miss = %d, want %d (one per Get)", st.Hits+st.Misses, 8*50)
	}
}

func TestCacheKeySeparators(t *testing.T) {
	// The key join must not let adjacent fields bleed into each other.
	a := Signature{Model: "m", Objective: "o", Devices: []DeviceSig{{Dev: "ab", BW: 1}}}
	b := Signature{Model: "m", Objective: "o", Devices: []DeviceSig{{Dev: "a", BW: 1}, {Dev: "b", BW: 1}}}
	if a.Key() == b.Key() {
		t.Fatalf("field bleed: %s", a.Key())
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if sigN(i).Key() == sigN(j).Key() {
				t.Fatalf("distinct buckets %d/%d alias: %s", i, j, sigN(i).Key())
			}
		}
	}
	if fmt.Sprint(sigN(0)) == fmt.Sprint(sigN(1)) {
		t.Fatal("sigN generator broken")
	}
}
