package plancache

import (
	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// CachedReplan wraps a re-planner with the plan cache, so recovery consults
// the cache before searching: the surviving fleet's signature is looked up,
// and an exact hit skips the re-planning search entirely — the cached
// subset strategy is Lifted back onto the full fleet (dead providers idle)
// and redeployment proceeds immediately. On a miss the inner re-planner
// runs, and its result — Projected onto the survivors — is cached under the
// survivor-fleet signature, so the *second* failure into the same fleet
// shape (a recurring churn pattern, or the same fleet on a redeployed
// cluster sharing the cache) replans in cache-lookup time instead of
// search time.
//
// obj is the objective the deployment serves (nil = latency), matching
// runtime Options.Objective; it is part of the signature and scores the
// cached entries. inner is the re-planner to fall back to — the caller's
// previous Options.Replan, e.g. splitter.ObjectiveReplan(obj) or
// splitter.SearchReplan.
func CachedReplan(c *Cache, obj sim.Objective, inner sim.ReplanFunc) sim.ReplanFunc {
	return func(env *sim.Env, old *strategy.Strategy, alive []bool) (*strategy.Strategy, error) {
		sub, _, err := env.Subset(alive)
		if err != nil {
			return inner(env, old, alive)
		}
		sig := SignatureOf(sub, obj)
		if cached, _, ok := c.Get(sig); ok {
			lifted, err := strategy.Lift(env.Model, cached, alive)
			if err == nil {
				return lifted, nil
			}
			// A cached strategy that cannot be lifted (should not happen —
			// the signature pins the survivor count) falls through to the
			// inner re-planner.
		}
		full, err := inner(env, old, alive)
		if err != nil {
			return nil, err
		}
		if proj, perr := strategy.Project(env.Model, full, alive); perr == nil {
			if score, serr := sim.DefaultObjective(obj).Score(sub, proj, 0); serr == nil {
				c.Put(sig, proj, score)
			}
		}
		return full, nil
	}
}
