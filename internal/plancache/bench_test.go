package plancache_test

import (
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/experiments"
	"distredge/internal/plancache"
	"distredge/internal/sim"
)

func benchEnv(bw float64) *sim.Env {
	return experiments.DeviceGroups()[1].Spec(cnn.VGG16(), bw, 1).Env()
}

// BenchmarkPlannerService measures plans/sec through the planner service in
// its three regimes: cold (empty cache, full LC-PSS + OSDS search), exact
// (recurring fleet signature, pure cache retrieval) and warm (near-miss
// signature, half-budget search seeded from the nearest cached neighbour).
// BENCH_baseline.json records the headline ratios.
func BenchmarkPlannerService(b *testing.B) {
	bud := experiments.Tiny()
	planner := experiments.Planner(bud, 0.75)

	b.Run("cold", func(b *testing.B) {
		env := benchEnv(100)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			svc, err := plancache.NewService(plancache.Config{Planner: planner})
			if err != nil {
				b.Fatal(err)
			}
			res, err := svc.Plan(env, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res.Outcome != plancache.OutcomeCold {
				b.Fatalf("outcome %s, want cold", res.Outcome)
			}
		}
	})

	b.Run("exact", func(b *testing.B) {
		env := benchEnv(100)
		svc, err := plancache.NewService(plancache.Config{Planner: planner})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Plan(env, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := svc.Plan(env, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res.Outcome != plancache.OutcomeHit {
				b.Fatalf("outcome %s, want hit", res.Outcome)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		donorEnv := benchEnv(100)
		env := benchEnv(70) // one half-octave bucket below: a near miss
		seedSvc, err := plancache.NewService(plancache.Config{Planner: planner})
		if err != nil {
			b.Fatal(err)
		}
		donor, err := seedSvc.Plan(donorEnv, nil)
		if err != nil {
			b.Fatal(err)
		}
		sig := plancache.SignatureOf(donorEnv, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache := plancache.New(0)
			cache.Put(sig, donor.Strategy, donor.Score)
			svc, err := plancache.NewService(plancache.Config{Cache: cache, Planner: planner})
			if err != nil {
				b.Fatal(err)
			}
			res, err := svc.Plan(env, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res.Outcome != plancache.OutcomeWarm {
				b.Fatalf("outcome %s, want warm", res.Outcome)
			}
		}
	})
}
