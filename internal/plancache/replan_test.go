package plancache

import (
	"reflect"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/sim"
	"distredge/internal/splitter"
	"distredge/internal/strategy"
)

// countReplans wraps a ReplanFunc, counting invocations.
func countReplans(n *int, inner sim.ReplanFunc) sim.ReplanFunc {
	return func(env *sim.Env, old *strategy.Strategy, alive []bool) (*strategy.Strategy, error) {
		*n++
		return inner(env, old, alive)
	}
}

func TestCachedReplanHitsOnRecurringFleetShape(t *testing.T) {
	env := sigEnv(cnn.VGG16(), 3, []float64{100, 100, 200}, device.Xavier, device.Nano, device.TX2)
	boundaries := strategy.SingleVolume(env.Model)
	h := strategy.VolumeHeight(env.Model, boundaries, 0)
	old := &strategy.Strategy{
		Boundaries: boundaries,
		Splits:     [][]int{strategy.EqualCuts(h, 3)},
	}
	cache := New(0)
	var innerCalls int
	replan := CachedReplan(cache, nil, countReplans(&innerCalls, splitter.BalancedReplan))
	alive := []bool{true, false, true}

	first, err := replan(env, old, alive)
	if err != nil {
		t.Fatal(err)
	}
	if innerCalls != 1 {
		t.Fatalf("inner replanner ran %d times, want 1", innerCalls)
	}
	if err := first.Validate(env.Model, 3); err != nil {
		t.Fatalf("replanned strategy invalid: %v", err)
	}
	// Same failure shape again: must be served from the cache.
	second, err := replan(env, old, alive)
	if err != nil {
		t.Fatal(err)
	}
	if innerCalls != 1 {
		t.Fatalf("inner replanner ran %d times on the recurring shape, want 1", innerCalls)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 hit on the second replan", st)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached replan differs from the searched one")
	}
	// The dead provider must own nothing in the lifted strategy.
	for v := 0; v < second.NumVolumes(); v++ {
		if r := second.PartRange(env.Model, v, 1); !r.Empty() {
			t.Errorf("volume %d: dead provider still owns %v", v, r)
		}
	}
}

func TestCachedReplanFallsBackOnInnerError(t *testing.T) {
	env := sigEnv(cnn.VGG16(), 3, []float64{100, 100}, device.Xavier, device.Nano)
	boundaries := strategy.SingleVolume(env.Model)
	h := strategy.VolumeHeight(env.Model, boundaries, 0)
	old := &strategy.Strategy{Boundaries: boundaries, Splits: [][]int{strategy.EqualCuts(h, 2)}}
	replan := CachedReplan(New(0), nil, splitter.BalancedReplan)
	// Killing every provider must surface the inner replanner's error, not
	// a cache artifact.
	if _, err := replan(env, old, []bool{false, false}); err == nil {
		t.Fatal("all-dead fleet replanned successfully")
	}
}
