// Package plancache turns planning into a cacheable service. Serving many
// heterogeneous fleets makes the planner the hot path: every LC-PSS + OSDS
// search runs from scratch per fleet, even though fleets recur (the same
// device mix behind the same network regime) and near-miss fleets differ
// only in link bandwidth. The cache keys strategies by a canonical fleet
// signature; exact hits skip planning entirely, and near misses warm-start
// the search from the closest cached strategy via strategy.Project/Lift
// into splitter Config.InitSplits (the mechanism churn recovery already
// uses), so the search converges in a fraction of the episodes.
package plancache

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// DeviceSig is one provider's slot in a fleet signature: what the device is
// (a fingerprint of its latency model) and what network regime its link is
// in (a log-bucketed mean bandwidth plus a fluctuation bucket).
type DeviceSig struct {
	// Dev fingerprints the device's latency model: an FNV-64a hash of its
	// exact compute latencies on a canonical probe (the model's first
	// splittable layer at three row counts). Probing works for any
	// device.LatencyModel — ground-truth profiles and fitted profile forms
	// alike — and two devices that predict identical probe latencies plan
	// identically, so sharing a fingerprint is exactly right.
	Dev string
	// BW is the link's bandwidth regime: the uplink trace mean in Mbps on a
	// half-octave log scale, round(2*log2(mean)) — consecutive buckets are
	// ~41% apart, so 150 vs 200 Mbps land in different buckets while the few
	// percent of jitter between two Stable traces of the same nominal
	// bandwidth does not.
	BW int
	// Spread is the link's fluctuation regime: round(log2(max/min)) of the
	// uplink trace samples. Constant traces get 0, Stable's few-percent
	// jitter gets 1, the highly dynamic 40-100 Mbps regime gets 2+.
	Spread int
}

// Signature canonically identifies a planning request: the model, the
// objective (with defaults normalised, so semantically equal objectives
// alias), the ordered provider fleet and the requester's own link regime.
// Device order is part of the identity — a strategy's splits are indexed by
// provider, so permuted fleets must not share cached strategies.
type Signature struct {
	Model     string
	Objective string
	Devices   []DeviceSig
	Requester DeviceSig // Dev is empty: only the link regime matters
}

// Key renders the canonical cache key. Equal signatures render equal keys
// and distinct signatures distinct keys (the fields are joined with
// separators no field contains).
func (s Signature) Key() string {
	var b strings.Builder
	b.WriteString(s.Model)
	b.WriteByte('|')
	b.WriteString(s.Objective)
	for _, d := range s.Devices {
		fmt.Fprintf(&b, "|%s@%d~%d", d.Dev, d.BW, d.Spread)
	}
	fmt.Fprintf(&b, "|req@%d~%d", s.Requester.BW, s.Requester.Spread)
	return b.String()
}

// SignatureOf derives the fleet signature of a planning request from the
// environment and objective. It is deterministic: the same env contents and
// objective always produce the same signature.
func SignatureOf(env *sim.Env, obj sim.Objective) Signature {
	sig := Signature{
		Model:     env.Model.Name,
		Objective: ObjectiveKey(obj),
		Devices:   make([]DeviceSig, 0, len(env.Devices)),
	}
	probe := probeLayer(env.Model)
	for i, d := range env.Devices {
		ds := DeviceSig{Dev: fingerprint(d, probe)}
		if env.Net != nil && i < len(env.Net.Providers) {
			ds.BW, ds.Spread = linkRegime(env.Net.Providers[i])
		}
		sig.Devices = append(sig.Devices, ds)
	}
	if env.Net != nil {
		sig.Requester.BW, sig.Requester.Spread = linkRegime(env.Net.Requester)
	}
	return sig
}

// ObjectiveKey canonicalises a planning objective: defaults are normalised
// so that e.g. ThroughputObjective{} and ThroughputObjective{Window: 4}
// render the same key (they plan identically).
func ObjectiveKey(obj sim.Objective) string {
	switch o := obj.(type) {
	case nil:
		return "latency"
	case sim.LatencyObjective:
		return "latency"
	case sim.ThroughputObjective:
		w, im, ba := objectiveDefaults(o.Window, o.Images, o.Batch)
		return fmt.Sprintf("ips/w%d/i%d/b%d", w, im, ba)
	case sim.SLOThroughputObjective:
		w, im, ba := objectiveDefaults(o.Window, o.Images, o.Batch)
		return fmt.Sprintf("slo/w%d/i%d/b%d/p95=%s", w, im, ba,
			strconv.FormatFloat(o.P95Sec, 'g', -1, 64))
	default:
		// Unknown objective implementations key on their name plus their
		// printed value — deterministic (struct field order is fixed),
		// though without default normalisation.
		return fmt.Sprintf("%s/%+v", obj.Name(), obj)
	}
}

// objectiveDefaults mirrors the sim objectives' withDefaults normalisation.
func objectiveDefaults(window, images, batch int) (int, int, int) {
	if window <= 0 {
		window = 4
	}
	if images <= 0 {
		images = 4*window + 8
	}
	if batch <= 0 {
		batch = 1
	}
	return window, images, batch
}

// probeLayer picks the canonical probe for device fingerprinting: the
// model's first splittable layer.
func probeLayer(m *cnn.Model) cnn.Layer {
	return m.SplittableLayers()[0]
}

// fingerprint hashes a device's exact probe latencies at one, half-height
// and full-height rows of the probe layer. Exact float formatting ('g', -1)
// round-trips the values, so two devices share a fingerprint iff they
// predict bit-identical probe latencies.
func fingerprint(d device.LatencyModel, probe cnn.Layer) string {
	h := fnv.New64a()
	for _, r := range [3]int{1, (probe.OutHeight() + 1) / 2, probe.OutHeight()} {
		h.Write([]byte(strconv.FormatFloat(d.ComputeLatency(probe, r), 'g', -1, 64)))
		h.Write([]byte{','})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// linkRegime buckets a link's uplink trace into its (bandwidth, spread)
// regime.
func linkRegime(l network.Link) (bw, spread int) {
	tr := l.Trace
	if tr == nil || len(tr.Mbps) == 0 {
		return -1 << 20, 0
	}
	mean := tr.Mean()
	if mean <= 0 {
		return -1 << 20, 0
	}
	bw = int(math.Round(2 * math.Log2(mean)))
	lo, hi := tr.Mbps[0], tr.Mbps[0]
	for _, v := range tr.Mbps[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > 0 && hi > lo {
		spread = int(math.Round(math.Log2(hi / lo)))
	}
	return bw, spread
}

// Distance costs below unmatchedPenalty mean every device of the smaller
// fleet found a same-fingerprint partner in the larger one.
const unmatchedPenalty = 1 << 10

// spreadWeight is the distance cost per unit of fluctuation-bucket delta on
// a matched link: a regime change matters, but less than losing a device.
const spreadWeight = 4

// Distance is the documented warm-start distance between two fleet
// signatures:
//
//   - different model or objective → +Inf (strategies are not transferable);
//   - devices are matched as a multiset by fingerprint; every matched pair
//     contributes the absolute difference of its bandwidth buckets plus
//     spreadWeight per fluctuation-bucket delta;
//   - every unmatched device (on either side) contributes unmatchedPenalty;
//   - the requester links contribute their bucket deltas like a matched pair.
//
// Lower is closer; the nearest cached neighbour under this distance seeds
// the warm-started search.
func Distance(a, b Signature) float64 {
	if a.Model != b.Model || a.Objective != b.Objective {
		return math.Inf(1)
	}
	cost := float64(bucketDelta(a.Requester, b.Requester))
	da := append([]DeviceSig(nil), a.Devices...)
	db := append([]DeviceSig(nil), b.Devices...)
	sortDevices(da)
	sortDevices(db)
	i, j := 0, 0
	for i < len(da) && j < len(db) {
		switch {
		case da[i].Dev == db[j].Dev:
			cost += float64(bucketDelta(da[i], db[j]))
			i++
			j++
		case da[i].Dev < db[j].Dev:
			cost += unmatchedPenalty
			i++
		default:
			cost += unmatchedPenalty
			j++
		}
	}
	cost += float64(unmatchedPenalty * (len(da) - i + len(db) - j))
	return cost
}

func bucketDelta(a, b DeviceSig) int {
	d := a.BW - b.BW
	if d < 0 {
		d = -d
	}
	s := a.Spread - b.Spread
	if s < 0 {
		s = -s
	}
	return d + spreadWeight*s
}

// sortDevices orders device signatures by (fingerprint, bandwidth bucket)
// — the canonical multiset order Distance matches in.
func sortDevices(ds []DeviceSig) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func less(a, b DeviceSig) bool {
	if a.Dev != b.Dev {
		return a.Dev < b.Dev
	}
	return a.BW < b.BW
}

// warmSeed maps a cached strategy (planned for the `have` fleet) onto the
// requesting `want` fleet, producing the seed strategy the search is
// warm-started from:
//
//   - equal provider counts: the strategy transfers index-for-index (the
//     fleets differ only in link regime);
//   - cached fleet larger: if want's device fingerprints form an in-order
//     subsequence of have's, the strategy is Projected onto that subset —
//     exactly the churn shape, where the new fleet is the survivors of the
//     old;
//   - cached fleet smaller: if have's fingerprints form an in-order
//     subsequence of want's, the strategy is Lifted onto the larger fleet
//     (the extra providers start idle and the search explores outward).
//
// Returns nil when no order-preserving device correspondence exists.
func warmSeed(m *cnn.Model, want, have Signature, s *strategy.Strategy) *strategy.Strategy {
	n, w := len(have.Devices), len(want.Devices)
	switch {
	case n == w:
		return s
	case n > w:
		alive := subseqMask(have.Devices, want.Devices)
		if alive == nil {
			return nil
		}
		proj, err := strategy.Project(m, s, alive)
		if err != nil {
			return nil
		}
		return proj
	default:
		alive := subseqMask(want.Devices, have.Devices)
		if alive == nil {
			return nil
		}
		lifted, err := strategy.Lift(m, s, alive)
		if err != nil {
			return nil
		}
		return lifted
	}
}

// subseqMask greedily matches small's device fingerprints as an in-order
// subsequence of big's, returning the mask over big (nil when small is not
// a subsequence).
func subseqMask(big, small []DeviceSig) []bool {
	mask := make([]bool, len(big))
	j := 0
	for i := 0; i < len(big) && j < len(small); i++ {
		if big[i].Dev == small[j].Dev {
			mask[i] = true
			j++
		}
	}
	if j < len(small) {
		return nil
	}
	return mask
}
