package plancache

import (
	"math"
	"sync"

	"distredge/internal/strategy"
)

// DefaultCapacity bounds a Cache built with capacity <= 0.
const DefaultCapacity = 256

// Stats are the cache's monotonic counters. Hits counts exact-signature
// retrievals, Misses failed ones; WarmHits counts misses that found a
// nearest-neighbour seed and went on to warm-start a search (so a warm hit
// is always also counted as a miss); Evictions counts LRU displacements.
type Stats struct {
	Hits      uint64
	Misses    uint64
	WarmHits  uint64
	Evictions uint64
}

// entry is one cached plan on the LRU list (most recent at head).
type entry struct {
	key        string
	sig        Signature
	strat      *strategy.Strategy
	score      float64
	prev, next *entry
}

// Cache is a concurrency-safe, LRU-bounded plan cache keyed by fleet
// signature. Stored strategies are cloned on Put and returned by pointer on
// Get — callers must treat retrieved strategies as read-only (every
// consumer in this repo does: simulation, compilation and deployment only
// read them), which keeps exact hits allocation-free.
type Cache struct {
	capacity int

	mu         sync.Mutex
	entries    map[string]*entry // guarded by mu
	head, tail *entry            // guarded by mu; LRU list, most recent first
	stats      Stats             // guarded by mu
}

// New builds a cache bounded to the given number of entries
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{capacity: capacity, entries: make(map[string]*entry)}
}

// Get retrieves the strategy cached under the exact signature, with its
// objective score. The hit is promoted to most-recently-used.
func (c *Cache) Get(sig Signature) (*strategy.Strategy, float64, bool) {
	key := sig.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		c.stats.Misses++
		return nil, 0, false
	}
	c.stats.Hits++
	c.promoteLocked(e)
	return e.strat, e.score, true
}

// Put stores (a clone of) the strategy under the signature, evicting the
// least-recently-used entry when over capacity. It returns the
// cache-resident clone, so callers can hand out the same read-only pointer
// an exact hit would return.
func (c *Cache) Put(sig Signature, s *strategy.Strategy, score float64) *strategy.Strategy {
	key := sig.Key()
	clone := s.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		e.strat, e.score = clone, score
		c.promoteLocked(e)
		return clone
	}
	e := &entry{key: key, sig: sig, strat: clone, score: score}
	c.entries[key] = e
	c.pushFrontLocked(e)
	for len(c.entries) > c.capacity {
		lru := c.tail
		c.removeLocked(lru)
		delete(c.entries, lru.key)
		c.stats.Evictions++
	}
	return clone
}

// Nearest returns the cached entry closest to sig under Distance (only
// comparable entries — same model and objective — qualify). Ties break on
// the smaller key, so the result is deterministic regardless of insertion
// or promotion order. The chosen entry is promoted: a fleet that keeps
// seeding warm starts is worth keeping.
func (c *Cache) Nearest(sig Signature) (Signature, *strategy.Strategy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *entry
	bestDist := math.Inf(1)
	for _, e := range c.entries {
		d := Distance(sig, e.sig)
		if d < bestDist || (d == bestDist && best != nil && e.key < best.key) {
			best, bestDist = e, d
		}
	}
	if best == nil || math.IsInf(bestDist, 1) {
		return Signature{}, nil, false
	}
	c.promoteLocked(best)
	return best.sig, best.strat, true
}

// countWarmHit records that a Nearest result actually seeded a warm start.
func (c *Cache) countWarmHit() {
	c.mu.Lock()
	c.stats.WarmHits++
	c.mu.Unlock()
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// promoteLocked moves e to the front of the LRU list. Caller holds mu.
func (c *Cache) promoteLocked(e *entry) {
	if c.head == e {
		return
	}
	c.removeLocked(e)
	c.pushFrontLocked(e)
}

// pushFrontLocked links e at the head. Caller holds mu.
func (c *Cache) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// removeLocked unlinks e from the list. Caller holds mu.
func (c *Cache) removeLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
