package plancache

import (
	"math"
	"math/rand"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// sigEnv builds an env with per-provider bandwidths and stable traces.
func sigEnv(m *cnn.Model, seed int64, bws []float64, types ...device.Type) *sim.Env {
	return &sim.Env{
		Model:   m,
		Devices: device.AsModels(device.Fleet(types...)),
		Net:     network.NewStable(bws, 10, seed),
	}
}

func TestSignatureDeterministic(t *testing.T) {
	build := func() Signature {
		env := sigEnv(cnn.VGG16(), 7, []float64{100, 200, 100, 50},
			device.Xavier, device.Nano, device.TX2, device.Pi3)
		return SignatureOf(env, sim.ThroughputObjective{Window: 8})
	}
	a, b := build(), build()
	if a.Key() != b.Key() {
		t.Fatalf("same env contents produced different keys:\n%s\n%s", a.Key(), b.Key())
	}
}

func TestSignatureJitterInvariant(t *testing.T) {
	// Two Stable traces of the same nominal bandwidth differ sample by
	// sample (different seeds) but describe the same regime: the signature
	// must alias them, or recurring fleets would never hit the cache.
	a := SignatureOf(sigEnv(cnn.VGG16(), 1, []float64{200, 200}, device.Nano, device.Nano), nil)
	b := SignatureOf(sigEnv(cnn.VGG16(), 99, []float64{200, 200}, device.Nano, device.Nano), nil)
	if a.Key() != b.Key() {
		t.Fatalf("same nominal regime, different seeds, keys differ:\n%s\n%s", a.Key(), b.Key())
	}
}

// TestSignatureCollisionProperty is the collision property test: distinct
// fleets (different device multiset, order, bandwidth tier, trace regime,
// model or objective) must never alias to one key, while rebuilding the
// same fleet must.
func TestSignatureCollisionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	models := []func() *cnn.Model{cnn.VGG16, cnn.YOLOv2}
	types := []device.Type{device.Nano, device.TX2, device.Xavier, device.Pi3}
	// Bandwidth tiers a full half-octave apart, so distinct tiers always
	// land in distinct buckets.
	tiers := []float64{50, 100, 200, 400}
	objectives := []sim.Objective{nil, sim.ThroughputObjective{Window: 8}}

	type fleetCfg struct {
		model int
		devs  []int
		bw    []int
		obj   int
	}
	key := func(c fleetCfg) string {
		m := models[c.model]()
		devs := make([]device.Type, len(c.devs))
		net := &network.Network{Requester: network.DefaultLink(network.Stable(400, 10, 3))}
		for i, d := range c.devs {
			devs[i] = types[d]
			net.Providers = append(net.Providers, network.DefaultLink(network.Stable(tiers[c.bw[i]], 10, int64(i))))
		}
		env := &sim.Env{Model: m, Devices: device.AsModels(device.Fleet(devs...)), Net: net}
		return SignatureOf(env, objectives[c.obj]).Key()
	}
	canon := func(c fleetCfg) string {
		// A canonical rendering of the config itself: two configs are the
		// same fleet iff their canonical renderings are equal.
		s := string(rune('m'+c.model)) + string(rune('o'+c.obj))
		for i := range c.devs {
			s += string(rune('0'+c.devs[i])) + string(rune('0'+c.bw[i]))
		}
		return s
	}

	seen := map[string]string{} // signature key -> canonical config
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(3)
		c := fleetCfg{model: rng.Intn(len(models)), obj: rng.Intn(len(objectives))}
		for i := 0; i < n; i++ {
			c.devs = append(c.devs, rng.Intn(len(types)))
			c.bw = append(c.bw, rng.Intn(len(tiers)))
		}
		k, cc := key(c), canon(c)
		if prev, ok := seen[k]; ok && prev != cc {
			t.Fatalf("signature collision: configs %q and %q share key %s", prev, cc, k)
		}
		seen[k] = cc
		if key(c) != k {
			t.Fatalf("rebuilding config %q changed its key", cc)
		}
	}
}

func TestSignatureSpreadRegime(t *testing.T) {
	// A flat link and a highly fluctuating link of similar mean bandwidth
	// are different regimes: they plan differently, so they must not share
	// a signature. Constant traces bucket to spread 0, the 40-160 Mbps
	// random walk to 1.5-2 octaves of spread.
	flat := &sim.Env{
		Model:   cnn.VGG16(),
		Devices: device.AsModels(device.Fleet(device.Nano, device.Nano)),
		Net: &network.Network{
			Requester: network.DefaultLink(network.Constant(200)),
			Providers: []network.Link{
				network.DefaultLink(network.Constant(100)),
				network.DefaultLink(network.Constant(100)),
			},
		},
	}
	churny := &sim.Env{
		Model:   flat.Model,
		Devices: flat.Devices,
		Net: &network.Network{
			Requester: network.DefaultLink(network.Constant(200)),
			Providers: []network.Link{
				network.DefaultLink(network.Dynamic(40, 160, 10, 5)),
				network.DefaultLink(network.Dynamic(40, 160, 10, 6)),
			},
		},
	}
	a, b := SignatureOf(flat, nil), SignatureOf(churny, nil)
	if a.Key() == b.Key() {
		t.Fatalf("flat and fluctuating regimes alias to %s", a.Key())
	}
	if a.Devices[0].Spread != 0 {
		t.Fatalf("constant trace spread bucket %d, want 0", a.Devices[0].Spread)
	}
	if b.Devices[0].Spread < 1 {
		t.Fatalf("dynamic trace spread bucket %d, want >= 1", b.Devices[0].Spread)
	}
}

func TestSignatureOrderMatters(t *testing.T) {
	a := SignatureOf(sigEnv(cnn.VGG16(), 1, []float64{100, 100}, device.Xavier, device.Nano), nil)
	b := SignatureOf(sigEnv(cnn.VGG16(), 1, []float64{100, 100}, device.Nano, device.Xavier), nil)
	if a.Key() == b.Key() {
		t.Fatal("permuted fleets alias: splits are provider-indexed, order must be identity")
	}
	// ... but as a multiset they are the same fleet, so the warm-start
	// distance between them is zero.
	if d := Distance(a, b); d != 0 {
		t.Fatalf("permuted same-multiset fleets at distance %v, want 0", d)
	}
}

func TestObjectiveKeyNormalisesDefaults(t *testing.T) {
	cases := []struct {
		a, b sim.Objective
	}{
		{nil, sim.LatencyObjective{}},
		{sim.ThroughputObjective{}, sim.ThroughputObjective{Window: 4, Images: 24, Batch: 1}},
		{sim.SLOThroughputObjective{P95Sec: 0.5}, sim.SLOThroughputObjective{Window: 4, Images: 24, Batch: 1, P95Sec: 0.5}},
	}
	for i, c := range cases {
		if ObjectiveKey(c.a) != ObjectiveKey(c.b) {
			t.Errorf("case %d: %q != %q, want equal", i, ObjectiveKey(c.a), ObjectiveKey(c.b))
		}
	}
	distinct := []sim.Objective{
		nil,
		sim.ThroughputObjective{},
		sim.ThroughputObjective{Window: 8},
		sim.SLOThroughputObjective{P95Sec: 0.5},
		sim.SLOThroughputObjective{P95Sec: 0.25},
	}
	keys := map[string]int{}
	for i, o := range distinct {
		k := ObjectiveKey(o)
		if j, ok := keys[k]; ok {
			t.Errorf("objectives %d and %d alias to %q", j, i, k)
		}
		keys[k] = i
	}
}

func TestDistance(t *testing.T) {
	base := SignatureOf(sigEnv(cnn.VGG16(), 1, []float64{100, 100}, device.Xavier, device.Nano), nil)
	if d := Distance(base, base); d != 0 {
		t.Fatalf("self distance %v", d)
	}
	otherModel := SignatureOf(sigEnv(cnn.YOLOv2(), 1, []float64{100, 100}, device.Xavier, device.Nano), nil)
	if d := Distance(base, otherModel); !math.IsInf(d, 1) {
		t.Fatalf("cross-model distance %v, want +Inf", d)
	}
	otherObj := SignatureOf(sigEnv(cnn.VGG16(), 1, []float64{100, 100}, device.Xavier, device.Nano), sim.ThroughputObjective{})
	if d := Distance(base, otherObj); !math.IsInf(d, 1) {
		t.Fatalf("cross-objective distance %v, want +Inf", d)
	}
	// One tier up on both links: closer than losing a device.
	shifted := SignatureOf(sigEnv(cnn.VGG16(), 1, []float64{150, 150}, device.Xavier, device.Nano), nil)
	dShift := Distance(base, shifted)
	if dShift <= 0 || dShift >= unmatchedPenalty {
		t.Fatalf("bandwidth-shift distance %v, want in (0, %d)", dShift, unmatchedPenalty)
	}
	grown := SignatureOf(sigEnv(cnn.VGG16(), 1, []float64{100, 100, 100}, device.Xavier, device.Nano, device.Nano), nil)
	if d := Distance(base, grown); d < unmatchedPenalty {
		t.Fatalf("grown-fleet distance %v, want >= %d", d, unmatchedPenalty)
	}
}

func TestWarmSeedShapes(t *testing.T) {
	m := cnn.VGG16()
	big := sigEnv(m, 1, []float64{100, 100, 100}, device.Xavier, device.Nano, device.Nano)
	small := sigEnv(m, 1, []float64{100, 100}, device.Xavier, device.Nano)
	bigSig := SignatureOf(big, nil)
	smallSig := SignatureOf(small, nil)

	sBig := &strategy.Strategy{Boundaries: strategy.SingleVolume(m)}
	h := strategy.VolumeHeight(m, sBig.Boundaries, 0)
	sBig.Splits = [][]int{strategy.EqualCuts(h, 3)}
	sSmall := &strategy.Strategy{
		Boundaries: strategy.SingleVolume(m),
		Splits:     [][]int{strategy.EqualCuts(h, 2)},
	}

	// Equal counts: the strategy transfers as-is.
	if got := warmSeed(m, bigSig, bigSig, sBig); got != sBig {
		t.Fatal("equal-count warm seed should transfer index-for-index")
	}
	// Cached fleet larger: projection onto the survivor subsequence.
	proj := warmSeed(m, smallSig, bigSig, sBig)
	if proj == nil {
		t.Fatal("projection seed missing")
	}
	if err := proj.Validate(m, 2); err != nil {
		t.Fatalf("projected seed invalid: %v", err)
	}
	// Cached fleet smaller: lift onto the larger fleet.
	lifted := warmSeed(m, bigSig, smallSig, sSmall)
	if lifted == nil {
		t.Fatal("lift seed missing")
	}
	if err := lifted.Validate(m, 3); err != nil {
		t.Fatalf("lifted seed invalid: %v", err)
	}
	// No order-preserving correspondence: Pi3 never appears in the cached
	// fleet, so nothing transfers.
	alien := SignatureOf(sigEnv(m, 1, []float64{100, 100}, device.Pi3, device.Pi3), nil)
	if got := warmSeed(m, alien, bigSig, sBig); got != nil {
		t.Fatal("warm seed across unrelated fleets should be nil")
	}
}
