package plancache_test

import (
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
	"distredge/internal/splitter"
	"distredge/internal/strategy"
)

func warmEnv(bw float64, seed int64) *sim.Env {
	return &sim.Env{
		Model:   cnn.VGG16(),
		Devices: device.AsModels(device.Fleet(device.Xavier, device.Xavier, device.Nano, device.Nano)),
		Net:     network.NewStable([]float64{bw, bw, bw, bw}, 10, seed),
	}
}

// TestWarmStartCutsEpisodesToBest is the warm-start acceptance property: a
// search seeded with a neighbour fleet's strategy reaches the cold search's
// best objective score within half the episodes.
func TestWarmStartCutsEpisodesToBest(t *testing.T) {
	cfg := splitter.Config{Episodes: 40, Hidden: []int{16, 16}, Batch: 16, Seed: 1, WarmStart: true}
	boundaries := strategy.PoolBoundaries(cnn.VGG16())

	donor, err := splitter.Search(warmEnv(100, 3), boundaries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := warmEnv(150, 3)
	cold, err := splitter.Search(env, boundaries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.InitSplits = donor.Strategy.Splits
	warm, err := splitter.Search(env, boundaries, warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.BestLatency > cold.BestLatency {
		t.Fatalf("warm best %.6f worse than cold best %.6f", warm.BestLatency, cold.BestLatency)
	}
	reached := -1
	for i, s := range warm.Episodes {
		if s <= cold.BestLatency {
			reached = i + 1
			break
		}
	}
	if reached < 0 {
		t.Fatalf("warm search never reached the cold best %.6f (warm best %.6f)", cold.BestLatency, warm.BestLatency)
	}
	if reached > cfg.Episodes/2 {
		t.Fatalf("warm search needed %d episodes to reach the cold best, want <= %d", reached, cfg.Episodes/2)
	}
	t.Logf("cold best %.6f in %d episodes; warm reached it in %d", cold.BestLatency, cfg.Episodes, reached)
}
