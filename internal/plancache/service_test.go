package plancache

import (
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/sim"
	"distredge/internal/splitter"
	"distredge/internal/strategy"
)

// balancedPlanner is a cheap deterministic Planner for service tests: the
// profile-balanced single-volume layout, ignoring init. calls counts real
// plannings.
func balancedPlanner(calls *atomic.Int64) Planner {
	return func(env *sim.Env, obj sim.Objective, init *strategy.Strategy) (*strategy.Strategy, error) {
		if calls != nil {
			calls.Add(1)
		}
		alive := make([]bool, env.NumProviders())
		for i := range alive {
			alive[i] = true
		}
		return splitter.BalancedSubset(env, strategy.SingleVolume(env.Model), alive)
	}
}

func TestServiceRequiresPlanner(t *testing.T) {
	if _, err := NewService(Config{}); err == nil {
		t.Fatal("NewService accepted a nil Planner")
	}
}

// TestServiceExactHitDeterminism is the determinism satellite: planning the
// same fleet signature twice returns the first plan without re-planning, and
// the cached strategy is bit-identical to an independent recomputation with
// the same seed inputs.
func TestServiceExactHitDeterminism(t *testing.T) {
	var calls atomic.Int64
	svc, err := NewService(Config{Planner: balancedPlanner(&calls)})
	if err != nil {
		t.Fatal(err)
	}
	env := sigEnv(cnn.VGG16(), 3, []float64{100, 200, 100}, device.Xavier, device.Nano, device.TX2)
	first, err := svc.Plan(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Outcome != OutcomeCold {
		t.Fatalf("first planning outcome %q, want cold", first.Outcome)
	}
	// Same fleet, rebuilt from scratch (fresh traces, same nominal regime).
	again := sigEnv(cnn.VGG16(), 3, []float64{100, 200, 100}, device.Xavier, device.Nano, device.TX2)
	second, err := svc.Plan(again, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Outcome != OutcomeHit {
		t.Fatalf("second planning outcome %q, want hit", second.Outcome)
	}
	if calls.Load() != 1 {
		t.Fatalf("planner ran %d times, want 1", calls.Load())
	}
	if second.Strategy != first.Strategy {
		t.Fatal("exact hit returned a different pointer than the cached plan")
	}
	// Independent recomputation on a fresh service must be bit-identical.
	fresh, err := NewService(Config{Planner: balancedPlanner(nil)})
	if err != nil {
		t.Fatal(err)
	}
	recomputed, err := fresh.Plan(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recomputed.Strategy, first.Strategy) {
		t.Fatalf("recomputed strategy differs:\n%+v\n%+v", recomputed.Strategy, first.Strategy)
	}
	if recomputed.Score != first.Score {
		t.Fatalf("recomputed score %v != cached %v", recomputed.Score, first.Score)
	}
	st := svc.Cache().Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want exactly 1 hit and 1 miss", st)
	}
}

func TestServiceWarmStart(t *testing.T) {
	var inits []*strategy.Strategy
	var mu sync.Mutex
	planner := func(env *sim.Env, obj sim.Objective, init *strategy.Strategy) (*strategy.Strategy, error) {
		mu.Lock()
		inits = append(inits, init)
		mu.Unlock()
		return balancedPlanner(nil)(env, obj, init)
	}
	svc, err := NewService(Config{Planner: planner})
	if err != nil {
		t.Fatal(err)
	}
	cold := sigEnv(cnn.VGG16(), 3, []float64{100, 100}, device.Xavier, device.Nano)
	coldRes, err := svc.Plan(cold, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same devices one bandwidth tier up: a near miss, not an exact hit.
	near := sigEnv(cnn.VGG16(), 3, []float64{150, 150}, device.Xavier, device.Nano)
	warmRes, err := svc.Plan(near, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Outcome != OutcomeWarm {
		t.Fatalf("near-miss outcome %q, want warm", warmRes.Outcome)
	}
	if want := SignatureOf(cold, nil).Key(); warmRes.SeedKey != want {
		t.Fatalf("SeedKey = %q, want donor %q", warmRes.SeedKey, want)
	}
	if len(inits) != 2 || inits[0] != nil || inits[1] == nil {
		t.Fatalf("planner inits = %v, want [nil, non-nil]", inits)
	}
	if !reflect.DeepEqual(inits[1], coldRes.Strategy) {
		t.Fatal("warm start was not seeded with the donor strategy")
	}
	st := svc.Cache().Stats()
	if st.WarmHits != 1 || st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats %+v, want 2 misses of which 1 warm", st)
	}
}

// TestServiceWarmNeverWorseThanSeed exercises the quality guarantee with a
// deliberately bad planner: when the warm-started search loses to its own
// seed, the seed is the plan.
func TestServiceWarmNeverWorseThanSeed(t *testing.T) {
	bad := func(env *sim.Env, obj sim.Objective, init *strategy.Strategy) (*strategy.Strategy, error) {
		if init == nil {
			return balancedPlanner(nil)(env, obj, init)
		}
		// Warm planning "fails": everything on the slowest provider.
		b := strategy.SingleVolume(env.Model)
		h := strategy.VolumeHeight(env.Model, b, 0)
		return &strategy.Strategy{
			Boundaries: b,
			Splits:     [][]int{strategy.AllOnProvider(h, env.NumProviders(), env.NumProviders()-1)},
		}, nil
	}
	svc, err := NewService(Config{Planner: bad})
	if err != nil {
		t.Fatal(err)
	}
	cold := sigEnv(cnn.VGG16(), 3, []float64{100, 100}, device.Xavier, device.Nano)
	coldRes, err := svc.Plan(cold, nil)
	if err != nil {
		t.Fatal(err)
	}
	near := sigEnv(cnn.VGG16(), 3, []float64{150, 150}, device.Xavier, device.Nano)
	// Equal provider counts: the donor strategy transfers index-for-index,
	// so the seed the service will use is exactly the cold strategy.
	seedScore, err := sim.DefaultObjective(nil).Score(near, coldRes.Strategy, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Plan(near, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeWarm {
		t.Fatalf("outcome %q, want warm", res.Outcome)
	}
	if res.Score > seedScore {
		t.Fatalf("warm plan scores %v, worse than its seed %v", res.Score, seedScore)
	}
	// The bad search result lost to the seed, so the seed must be the plan.
	if !reflect.DeepEqual(res.Strategy, coldRes.Strategy) {
		t.Fatal("losing warm search was not replaced by its seed")
	}
}

// TestServiceSingleFlight: concurrent Plan calls for the identical signature
// share one planning.
func TestServiceSingleFlight(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	planner := func(env *sim.Env, obj sim.Objective, init *strategy.Strategy) (*strategy.Strategy, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-release
		}
		return balancedPlanner(nil)(env, obj, init)
	}
	svc, err := NewService(Config{Planner: planner, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	env := sigEnv(cnn.VGG16(), 3, []float64{100, 100}, device.Xavier, device.Nano)
	results := make([]Result, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := svc.Plan(env, nil)
		if err != nil {
			t.Error(err)
		}
		results[0] = r
	}()
	<-started // first flight is inside the planner
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := svc.Plan(sigEnv(cnn.VGG16(), 3, []float64{100, 100}, device.Xavier, device.Nano), nil)
		if err != nil {
			t.Error(err)
		}
		results[1] = r
	}()
	// Let the duplicate reach the in-flight wait, then release the first
	// flight. (Even if the duplicate were late and arrived after the first
	// flight finished, it would be served by the cache — the assertions
	// below hold either way, so the test cannot flake.)
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("planner ran %d times for one signature, want 1", calls.Load())
	}
	if results[0].Strategy != results[1].Strategy {
		t.Fatal("single-flight duplicate got a different strategy pointer")
	}
}

// TestServiceConcurrentDistinct: distinct signatures plan concurrently when
// workers allow — two plannings must be in flight at the same time.
func TestServiceConcurrentDistinct(t *testing.T) {
	var inFlight, peak atomic.Int64
	var enterBoth sync.WaitGroup
	enterBoth.Add(2)
	planner := func(env *sim.Env, obj sim.Objective, init *strategy.Strategy) (*strategy.Strategy, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		enterBoth.Done()
		enterBoth.Wait() // barrier: both plannings must be inside at once
		return balancedPlanner(nil)(env, obj, init)
	}
	svc, err := NewService(Config{Planner: planner, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	envs := []*sim.Env{
		sigEnv(cnn.VGG16(), 3, []float64{100, 100}, device.Xavier, device.Nano),
		sigEnv(cnn.VGG16(), 3, []float64{400, 400}, device.Xavier, device.Nano),
	}
	var wg sync.WaitGroup
	for _, env := range envs {
		wg.Add(1)
		go func(env *sim.Env) {
			defer wg.Done()
			if _, err := svc.Plan(env, nil); err != nil {
				t.Error(err)
			}
		}(env)
	}
	wg.Wait()
	if peak.Load() != 2 {
		t.Fatalf("peak concurrent plannings %d, want 2", peak.Load())
	}
}
