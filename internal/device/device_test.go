package device

import (
	"testing"
	"testing/quick"

	"distredge/internal/cnn"
)

func testLayer() cnn.Layer {
	return cnn.Layer{Kind: cnn.Conv, Win: 112, Hin: 112, Cin: 64, Cout: 128, F: 3, S: 1, P: 1}
}

func TestNewKnownTypes(t *testing.T) {
	for _, typ := range []Type{Pi3, Nano, TX2, Xavier} {
		p, err := New(typ, string(typ)+"-0")
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if p.GFLOPS <= 0 || p.Tile < 1 {
			t.Errorf("%s: implausible profile %+v", typ, p)
		}
	}
	if _, err := New(Type("tpu"), "x"); err == nil {
		t.Error("unknown type must error")
	}
}

func TestCapabilityOrdering(t *testing.T) {
	// The paper orders capability Pi3 << Nano < TX2 < Xavier.
	m := cnn.VGG16()
	pi := MustNew(Pi3, "pi")
	na := MustNew(Nano, "na")
	tx := MustNew(TX2, "tx")
	xa := MustNew(Xavier, "xa")
	cp := LinearCapability(pi, m)
	cn := LinearCapability(na, m)
	ct := LinearCapability(tx, m)
	cx := LinearCapability(xa, m)
	if !(cp < cn && cn < ct && ct < cx) {
		t.Fatalf("capability ordering violated: pi=%.3g nano=%.3g tx2=%.3g xavier=%.3g", cp, cn, ct, cx)
	}
	if cn < 10*cp {
		t.Errorf("Nano should be >>10x Pi3 (got %.1fx)", cn/cp)
	}
}

func TestComputeLatencyStaircase(t *testing.T) {
	// Within one tile the latency must be flat; across a tile boundary it
	// must jump. This is the nonlinear character of Fig. 14.
	p := MustNew(Xavier, "xa")
	l := testLayer()
	inTile := p.ComputeLatency(l, 1)
	for r := 2; r <= p.Tile; r++ {
		lat := p.ComputeLatency(l, r)
		// Compute term is identical; only the (small) memory term grows.
		if lat < inTile {
			t.Fatalf("latency decreased within tile: rows=%d", r)
		}
	}
	atBoundary := p.ComputeLatency(l, p.Tile)
	pastBoundary := p.ComputeLatency(l, p.Tile+1)
	if pastBoundary <= atBoundary*1.05 {
		t.Errorf("no staircase jump at tile boundary: %g -> %g", atBoundary, pastBoundary)
	}
}

func TestComputeLatencyLinearOnCPU(t *testing.T) {
	// Pi3 has tile=1: latency minus the fixed launch must be (almost
	// exactly) proportional to rows.
	p := MustNew(Pi3, "pi")
	l := testLayer()
	base := p.LaunchMS / 1e3
	l10 := p.ComputeLatency(l, 10) - base
	l20 := p.ComputeLatency(l, 20) - base
	ratio := l20 / l10
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("Pi3 latency not linear: ratio %g, want 2", ratio)
	}
}

func TestComputeLatencyZeroRows(t *testing.T) {
	p := MustNew(Nano, "na")
	if p.ComputeLatency(testLayer(), 0) != 0 || p.ComputeLatency(testLayer(), -3) != 0 {
		t.Error("zero/negative rows must cost 0")
	}
}

func TestComputeLatencyMonotone(t *testing.T) {
	// Property: more rows never cost less, on any device.
	for _, typ := range []Type{Pi3, Nano, TX2, Xavier} {
		p := MustNew(typ, "d")
		l := testLayer()
		f := func(a, b uint8) bool {
			ra, rb := int(a)%112+1, int(b)%112+1
			if ra > rb {
				ra, rb = rb, ra
			}
			return p.ComputeLatency(l, ra) <= p.ComputeLatency(l, rb)+1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", typ, err)
		}
	}
}

func TestVolumeLatency(t *testing.T) {
	p := MustNew(Nano, "na")
	layers := cnn.VGG16().SplittableLayers()[:3]
	h := layers[2].OutHeight()
	full := VolumeLatency(p, layers, cnn.RowRange{Lo: 0, Hi: h})
	if full <= 0 {
		t.Fatal("full volume latency must be positive")
	}
	if VolumeLatency(p, layers, cnn.RowRange{Lo: 5, Hi: 5}) != 0 {
		t.Error("empty part must cost 0")
	}
	half := VolumeLatency(p, layers, cnn.RowRange{Lo: 0, Hi: h / 2})
	if half >= full {
		t.Error("half the rows should cost less than all rows")
	}
}

func TestModelLatencyAndOffloadOrdering(t *testing.T) {
	m := cnn.VGG16()
	lx := ModelLatency(MustNew(Xavier, "xa"), m)
	ln := ModelLatency(MustNew(Nano, "na"), m)
	lp := ModelLatency(MustNew(Pi3, "pi"), m)
	if !(lx < ln && ln < lp) {
		t.Fatalf("model latency ordering violated: xavier=%.3g nano=%.3g pi=%.3g", lx, ln, lp)
	}
	// Xavier should run VGG-16 in tens of milliseconds (paper-scale IPS);
	// Pi3 in seconds.
	if lx < 0.02 || lx > 0.3 {
		t.Errorf("Xavier VGG-16 latency %.3gs out of expected range", lx)
	}
	if lp < 2 {
		t.Errorf("Pi3 VGG-16 latency %.3gs implausibly fast", lp)
	}
}

func TestFleet(t *testing.T) {
	f := Fleet(Xavier, Xavier, Nano, Nano)
	if len(f) != 4 {
		t.Fatalf("fleet size %d, want 4", len(f))
	}
	if f[0].Name == f[1].Name {
		t.Error("fleet names must be unique")
	}
	if f[2].Type != Nano {
		t.Error("fleet types must follow the argument order")
	}
}
