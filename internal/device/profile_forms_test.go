package device

import (
	"math"
	"testing"

	"distredge/internal/cnn"
)

func measuredCurves(t *testing.T) (Profile, []Curve) {
	t.Helper()
	dev := MustNew(Nano, "na")
	pr := Profiler{Repeats: 20, Noise: 0.02, Seed: 42}
	curves := pr.Measure(dev, cnn.VGG16())
	if len(curves) != 18 {
		t.Fatalf("measured %d curves, want 18", len(curves))
	}
	return dev, curves
}

func TestProfilerMeasureAccuracy(t *testing.T) {
	dev, curves := measuredCurves(t)
	// Averaging 20 noisy samples should land within a few percent of truth.
	for _, c := range curves {
		for _, r := range []int{1, c.Layer.OutHeight() / 2, c.Layer.OutHeight()} {
			if r < 1 {
				continue
			}
			truth := dev.ComputeLatency(c.Layer, r)
			got := c.Lat[r-1]
			if math.Abs(got-truth) > 0.05*truth {
				t.Fatalf("layer %s rows %d: measured %g, truth %g", c.Layer.Name, r, got, truth)
			}
		}
	}
}

func TestProfilerDeterministic(t *testing.T) {
	dev := MustNew(TX2, "tx")
	pr := Profiler{Repeats: 5, Noise: 0.05, Seed: 7}
	a := pr.Measure(dev, cnn.VGG16())
	b := pr.Measure(dev, cnn.VGG16())
	for i := range a {
		for r := range a[i].Lat {
			if a[i].Lat[r] != b[i].Lat[r] {
				t.Fatal("profiler must be deterministic under a fixed seed")
			}
		}
	}
}

func TestTableModelLookup(t *testing.T) {
	dev, curves := measuredCurves(t)
	tab := NewTableModel(curves, dev)
	l := curves[3].Layer
	if got, want := tab.ComputeLatency(l, 10), curves[3].Lat[9]; got != want {
		t.Errorf("table lookup = %g, want %g", got, want)
	}
	if tab.ComputeLatency(l, 0) != 0 {
		t.Error("zero rows must cost 0")
	}
	// Beyond the measured height: clamp to the last entry.
	h := l.OutHeight()
	if got, want := tab.ComputeLatency(l, h+50), curves[3].Lat[h-1]; got != want {
		t.Errorf("out-of-range lookup = %g, want clamped %g", got, want)
	}
	// Unknown layer: falls back to ground truth.
	alien := cnn.Layer{Kind: cnn.Conv, Win: 999, Hin: 999, Cin: 1, Cout: 1, F: 3, S: 1, P: 1}
	if tab.ComputeLatency(alien, 5) != dev.ComputeLatency(alien, 5) {
		t.Error("fallback not consulted for unprofiled layer")
	}
	// Without fallback, unknown layers cost 0.
	bare := NewTableModel(curves, nil)
	if bare.ComputeLatency(alien, 5) != 0 {
		t.Error("nil fallback should yield 0")
	}
}

func TestLinearModelUnderestimatesStaircase(t *testing.T) {
	// The crux of the paper: a linear fit cannot capture the staircase, so
	// it must misestimate small-row latencies on a wavy GPU.
	dev := MustNew(Xavier, "xa")
	pr := Profiler{Repeats: 10, Noise: 0.01, Seed: 3}
	curves := pr.Measure(dev, cnn.VGG16())
	lin := FitLinear(curves)
	if lin.SecPerOp <= 0 {
		t.Fatal("linear fit must have positive slope")
	}
	l := curves[0].Layer // 224-high conv
	truth := dev.ComputeLatency(l, 2)
	est := lin.ComputeLatency(l, 2)
	if est > truth {
		t.Skipf("linear fit happened to overestimate; acceptable")
	}
	if truth/est < 1.5 {
		t.Errorf("expected substantial misestimate at 2 rows: truth %g vs linear %g", truth, est)
	}
}

func TestLinearModelZeroCurves(t *testing.T) {
	lin := FitLinear(nil)
	if lin.SecPerOp != 0 || lin.Fixed != 0 {
		t.Error("empty fit must be zero model")
	}
}

func TestPiecewiseLinearInterpolation(t *testing.T) {
	dev, curves := measuredCurves(t)
	pw := FitPiecewiseLinear(curves, 16, nil)
	l := curves[0].Layer
	h := l.OutHeight()
	// At knots the model is exact; between knots it should be within the
	// band of the two surrounding knots.
	exact := pw.ComputeLatency(l, 1)
	if exact != curves[0].Lat[0] {
		t.Errorf("knot value mismatch: %g vs %g", exact, curves[0].Lat[0])
	}
	mid := pw.ComputeLatency(l, 8)
	lo, hi := curves[0].Lat[0], curves[0].Lat[16]
	if hi < lo {
		lo, hi = hi, lo
	}
	if mid < lo-1e-12 || mid > hi+1e-12 {
		t.Errorf("interpolated value %g outside knot band [%g,%g]", mid, lo, hi)
	}
	if pw.ComputeLatency(l, h+10) != curves[0].Lat[h-1] {
		t.Error("beyond last knot should clamp")
	}
	_ = dev
}

func TestPiecewiseLinearFallback(t *testing.T) {
	dev := MustNew(Nano, "na")
	pw := FitPiecewiseLinear(nil, 8, dev)
	l := testLayer()
	if pw.ComputeLatency(l, 5) != dev.ComputeLatency(l, 5) {
		t.Error("fallback not consulted")
	}
}

func TestKNNModel(t *testing.T) {
	dev, curves := measuredCurves(t)
	knn := FitKNN(curves, 3, 4, nil)
	l := curves[0].Layer
	got := knn.ComputeLatency(l, 9)
	// Neighbours of 9 among {1,5,9,13,...} are 9,5,13 (or 9,13,5): mean of
	// those three measured values.
	want := (curves[0].Lat[8] + curves[0].Lat[4] + curves[0].Lat[12]) / 3
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("knn = %g, want %g", got, want)
	}
	if knn.ComputeLatency(l, 0) != 0 {
		t.Error("zero rows must cost 0")
	}
	bare := FitKNN(nil, 3, 4, dev)
	if bare.ComputeLatency(l, 5) != dev.ComputeLatency(l, 5) {
		t.Error("fallback not consulted")
	}
}

func TestProfileFormsTrackTruth(t *testing.T) {
	// All profile forms except the linear one should approximate the truth
	// well across the whole curve (table exactly, pw/knn within noise+step).
	dev, curves := measuredCurves(t)
	tab := NewTableModel(curves, nil)
	pw := FitPiecewiseLinear(curves, 4, nil)
	knn := FitKNN(curves, 1, 1, nil)
	for _, c := range curves {
		h := c.Layer.OutHeight()
		for _, r := range []int{1, h / 3, h / 2, h} {
			if r < 1 {
				continue
			}
			truth := dev.ComputeLatency(c.Layer, r)
			for name, m := range map[string]LatencyModel{"table": tab, "pw": pw, "knn": knn} {
				got := m.ComputeLatency(c.Layer, r)
				tol := 0.25 * truth
				if name == "pw" {
					// Interpolating a staircase across a wave boundary can
					// overshoot by up to one wave.
					tol = 0.6 * truth
				}
				if math.Abs(got-truth) > tol+1e-6 {
					t.Errorf("%s: layer %s rows %d: %g vs truth %g", name, c.Layer.Name, r, got, truth)
				}
			}
		}
	}
}
