package device

import (
	"sync"

	"distredge/internal/cnn"
)

// cacheKey identifies one VolumeLatency evaluation: the device (by index in
// its environment), the layer-volume (by slice identity — volumes are views
// into a model's shared layer array, so the first-element pointer plus the
// length pin down the exact layers) and the output row range.
type cacheKey struct {
	dev    int
	first  *cnn.Layer
	n      int
	lo, hi int
}

// CacheStats reports the hit/miss counts of a Cache.
type CacheStats struct {
	Hits, Misses uint64
}

// Cache memoizes VolumeLatency values per (device, volume, row-range) tuple.
// VolumeLatency is a pure function of those inputs, and during OSDS training
// the same tuples recur across episodes (warm-start hill climbing alone
// re-evaluates thousands of them), so memoization turns the dominant
// simulator compute cost into a map lookup. A Cache is safe for concurrent
// use; cached values are bit-identical to direct evaluation.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]float64
	scratch []cnn.RowRange
	stats   CacheStats
}

// NewCache returns an empty latency cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]float64)}
}

// VolumeLatency returns VolumeLatency(m, layers, out), memoized under the
// (dev, layers, out) key. dev must consistently identify m across calls
// (e.g. the provider index in a sim.Env).
func (c *Cache) VolumeLatency(dev int, m LatencyModel, layers []cnn.Layer, out cnn.RowRange) float64 {
	if out.Empty() {
		return 0
	}
	k := cacheKey{dev: dev, first: &layers[0], n: len(layers), lo: out.Lo, hi: out.Hi}
	c.mu.Lock()
	if v, ok := c.entries[k]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return v
	}
	c.stats.Misses++
	// Compute under the lock so the scratch buffer can be reused; volumes
	// are short (tens of layers) and contention is nil in practice — every
	// environment owns its own cache.
	c.scratch = cnn.VolumeRangesInto(c.scratch, layers, out)
	var sum float64
	for i, l := range layers {
		sum += m.ComputeLatency(l, c.scratch[i].Len())
	}
	c.entries[k] = sum
	c.mu.Unlock()
	return sum
}

// Stats returns the cumulative hit/miss counts.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
