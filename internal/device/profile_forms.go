package device

import (
	"fmt"
	"math/rand"
	"sort"

	"distredge/internal/cnn"
)

// This file implements the profiling pipeline of Section IV: "DistrEdge
// allows various forms to express the profiling results of a device. It can
// be regression models (e.g., linear regression, piece-wise linear
// regression, k-nearest-neighbor) or a measured data table."
//
// The Profiler plays the role of the TensorRT Profiler in the paper's
// testbed: it measures (with noise, averaged over repeats) the latency of
// each layer at every output height, producing per-layer curves from which
// any of the profile forms can be fit.

// Profiler samples a ground-truth LatencyModel the way the paper samples
// hardware: each (layer, height) point is measured Repeats times with
// multiplicative Gaussian noise of relative std Noise and averaged.
type Profiler struct {
	Repeats int     // measurements per point (paper: 100)
	Noise   float64 // relative measurement noise per sample
	Seed    int64
}

// Curve is the measured latency of one layer as a function of output rows:
// Lat[r-1] is the mean measured latency of computing r rows, r = 1..H.
type Curve struct {
	Layer cnn.Layer
	Lat   []float64
}

// Measure profiles every splittable layer of the model on the device,
// returning one curve per layer (granularity 1 in the height dimension, as
// in Section V-A).
func (pr Profiler) Measure(dev LatencyModel, model *cnn.Model) []Curve {
	rng := rand.New(rand.NewSource(pr.Seed))
	repeats := pr.Repeats
	if repeats < 1 {
		repeats = 1
	}
	layers := model.SplittableLayers()
	curves := make([]Curve, len(layers))
	for i, l := range layers {
		h := l.OutHeight()
		lat := make([]float64, h)
		for r := 1; r <= h; r++ {
			truth := dev.ComputeLatency(l, r)
			var sum float64
			for k := 0; k < repeats; k++ {
				sum += truth * (1 + pr.Noise*rng.NormFloat64())
			}
			v := sum / float64(repeats)
			if v < 0 {
				v = 0
			}
			lat[r-1] = v
		}
		curves[i] = Curve{Layer: l, Lat: lat}
	}
	return curves
}

// layerKey identifies a layer configuration; two layers with identical
// configuration share profile entries (as on real hardware).
func layerKey(l cnn.Layer) string {
	return fmt.Sprintf("%d/%dx%dx%d-%d-f%ds%dp%d", int(l.Kind), l.Win, l.Hin, l.Cin, l.Cout, l.F, l.S, l.P)
}

// TableModel is the "measured data table" profile form: exact lookup of the
// measured curves, with linear interpolation unnecessary (granularity 1).
type TableModel struct {
	table    map[string][]float64
	fallback LatencyModel
}

// NewTableModel builds a table profile from measured curves. fallback (may
// be nil) is consulted for layers that were never profiled, e.g. FC layers.
func NewTableModel(curves []Curve, fallback LatencyModel) *TableModel {
	t := &TableModel{table: make(map[string][]float64), fallback: fallback}
	for _, c := range curves {
		t.table[layerKey(c.Layer)] = c.Lat
	}
	return t
}

// ComputeLatency implements LatencyModel by table lookup.
func (t *TableModel) ComputeLatency(l cnn.Layer, rows int) float64 {
	if rows <= 0 {
		return 0
	}
	lat, ok := t.table[layerKey(l)]
	if !ok || len(lat) == 0 {
		if t.fallback != nil {
			return t.fallback.ComputeLatency(l, rows)
		}
		return 0
	}
	if rows > len(lat) {
		rows = len(lat)
	}
	return lat[rows-1]
}

// LinearModel is the linear-regression profile form: a least-squares fit of
// latency against operation count across all measured points. This is also
// precisely the model the linear baselines assume, so it doubles as their
// device model.
type LinearModel struct {
	SecPerOp float64 // slope: seconds per operation
	Fixed    float64 // intercept: per-invocation seconds
}

// FitLinear fits latency = Fixed + SecPerOp * ops(rows) over all curves.
func FitLinear(curves []Curve) LinearModel {
	var n, sx, sy, sxx, sxy float64
	for _, c := range curves {
		for r := 1; r <= len(c.Lat); r++ {
			x := c.Layer.OpsRows(r)
			y := c.Lat[r-1]
			n++
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
	}
	if n == 0 {
		return LinearModel{}
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearModel{SecPerOp: 0, Fixed: sy / n}
	}
	slope := (n*sxy - sx*sy) / den
	inter := (sy - slope*sx) / n
	if slope < 0 {
		slope = 0
	}
	if inter < 0 {
		inter = 0
	}
	return LinearModel{SecPerOp: slope, Fixed: inter}
}

// ComputeLatency implements LatencyModel with the linear fit.
func (m LinearModel) ComputeLatency(l cnn.Layer, rows int) float64 {
	if rows <= 0 {
		return 0
	}
	ops := l.OpsRows(rows)
	if l.Kind == cnn.FC {
		ops = l.Ops()
	}
	return m.Fixed + m.SecPerOp*ops
}

// PiecewiseLinearModel is the piece-wise linear regression profile form:
// per layer, latency is interpolated between knots sampled every KnotStep
// rows of the measured curve.
type PiecewiseLinearModel struct {
	knots    map[string][]knot
	fallback LatencyModel
}

type knot struct {
	rows int
	lat  float64
}

// FitPiecewiseLinear builds a piecewise-linear profile with knots every
// step rows (and always at 1 and H).
func FitPiecewiseLinear(curves []Curve, step int, fallback LatencyModel) *PiecewiseLinearModel {
	if step < 1 {
		step = 1
	}
	m := &PiecewiseLinearModel{knots: make(map[string][]knot), fallback: fallback}
	for _, c := range curves {
		h := len(c.Lat)
		if h == 0 {
			continue
		}
		var ks []knot
		for r := 1; r <= h; r += step {
			ks = append(ks, knot{r, c.Lat[r-1]})
		}
		if ks[len(ks)-1].rows != h {
			ks = append(ks, knot{h, c.Lat[h-1]})
		}
		m.knots[layerKey(c.Layer)] = ks
	}
	return m
}

// ComputeLatency implements LatencyModel by interpolating between knots.
func (m *PiecewiseLinearModel) ComputeLatency(l cnn.Layer, rows int) float64 {
	if rows <= 0 {
		return 0
	}
	ks, ok := m.knots[layerKey(l)]
	if !ok || len(ks) == 0 {
		if m.fallback != nil {
			return m.fallback.ComputeLatency(l, rows)
		}
		return 0
	}
	if rows <= ks[0].rows {
		return ks[0].lat
	}
	last := ks[len(ks)-1]
	if rows >= last.rows {
		return last.lat
	}
	i := sort.Search(len(ks), func(i int) bool { return ks[i].rows >= rows })
	a, b := ks[i-1], ks[i]
	frac := float64(rows-a.rows) / float64(b.rows-a.rows)
	return a.lat + frac*(b.lat-a.lat)
}

// KNNModel is the k-nearest-neighbour profile form: per layer, the latency
// of a query row count is the average of the K nearest sampled row counts.
type KNNModel struct {
	K        int
	samples  map[string][]knot
	fallback LatencyModel
}

// FitKNN builds a k-NN profile from points sampled every step rows.
func FitKNN(curves []Curve, k, step int, fallback LatencyModel) *KNNModel {
	if step < 1 {
		step = 1
	}
	if k < 1 {
		k = 1
	}
	m := &KNNModel{K: k, samples: make(map[string][]knot), fallback: fallback}
	for _, c := range curves {
		var ks []knot
		for r := 1; r <= len(c.Lat); r += step {
			ks = append(ks, knot{r, c.Lat[r-1]})
		}
		m.samples[layerKey(c.Layer)] = ks
	}
	return m
}

// ComputeLatency implements LatencyModel by averaging the K nearest samples.
func (m *KNNModel) ComputeLatency(l cnn.Layer, rows int) float64 {
	if rows <= 0 {
		return 0
	}
	ks, ok := m.samples[layerKey(l)]
	if !ok || len(ks) == 0 {
		if m.fallback != nil {
			return m.fallback.ComputeLatency(l, rows)
		}
		return 0
	}
	type cand struct {
		d   int
		lat float64
	}
	cands := make([]cand, len(ks))
	for i, kn := range ks {
		d := kn.rows - rows
		if d < 0 {
			d = -d
		}
		cands[i] = cand{d, kn.lat}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	n := m.K
	if n > len(cands) {
		n = len(cands)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += cands[i].lat
	}
	return sum / float64(n)
}
