package device

import (
	"testing"

	"distredge/internal/cnn"
)

func TestMemoryGBOrdering(t *testing.T) {
	pi := MustNew(Pi3, "pi").MemoryGB()
	na := MustNew(Nano, "na").MemoryGB()
	tx := MustNew(TX2, "tx").MemoryGB()
	xa := MustNew(Xavier, "xa").MemoryGB()
	if !(pi < na && na < tx && tx < xa) {
		t.Errorf("memory ordering violated: %g %g %g %g", pi, na, tx, xa)
	}
	if (Profile{Type: Type("alien")}).MemoryGB() != 0 {
		t.Error("unknown type must report 0")
	}
}

func TestPaperDiscussion4Holds(t *testing.T) {
	// Paper Discussion (4): "even running a whole CNN model on one edge
	// device does not suffer from memory limitation" — for the Jetson
	// boards. (The 1 GB Pi3 is the stated exception in spirit: it cannot
	// take VGG-16 with only half its RAM usable.)
	for name, m := range cnn.Zoo() {
		for _, typ := range []Type{Nano, TX2, Xavier} {
			d := MustNew(typ, string(typ))
			if !d.FitsInMemory(m, 0.5) {
				t.Errorf("%s does not fit on %s with 50%% headroom", name, typ)
			}
		}
	}
}

func TestCheckFleetMemory(t *testing.T) {
	m := cnn.VGG16()
	good := Fleet(Nano, TX2, Xavier)
	if err := CheckFleetMemory(good, m, 0.5); err != nil {
		t.Errorf("Jetson fleet should fit VGG-16: %v", err)
	}
	// Pi3 with 1 GB and 80% headroom (200 MB usable) cannot hold VGG-16's
	// ~290 MB footprint.
	bad := Fleet(Pi3)
	if err := CheckFleetMemory(bad, m, 0.8); err == nil {
		t.Error("expected Pi3 memory check to fail")
	}
}
