package device

import (
	"distredge/internal/cnn"
)

// scaledModel multiplies every latency of a base model by a constant
// factor. It models a degraded device (thermal throttling, contention from
// a co-located workload) without re-profiling: factor 2 means every compute
// takes twice as long.
type scaledModel struct {
	base   LatencyModel
	factor float64
}

func (s scaledModel) ComputeLatency(l cnn.Layer, rows int) float64 {
	return s.factor * s.base.ComputeLatency(l, rows)
}

// Scaled wraps a latency model so all its predictions are multiplied by
// factor (> 1 slower, < 1 faster). Factor 1 returns the base model
// unchanged. Non-positive factors are clamped to 1.
func Scaled(base LatencyModel, factor float64) LatencyModel {
	if factor == 1 || factor <= 0 {
		return base
	}
	return scaledModel{base: base, factor: factor}
}
