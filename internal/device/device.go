// Package device models edge computing devices and their (nonlinear)
// compute-latency characteristics.
//
// The paper's testbed uses Raspberry Pi3 and NVIDIA Jetson Nano/TX2/Xavier
// boards running TensorRT FP16 kernels; those are unavailable here, so this
// package substitutes a parametric hardware model with the property the
// paper's argument hinges on (Section II, Fig. 14): computing latency as a
// function of layer configuration is *nonlinear* — a staircase caused by
// GPU wave quantisation — which breaks baselines that assume a single
// "computing capability" scalar.
//
// Latency of computing `rows` output rows of a layer:
//
//	lat = launch + ops(ceil(rows/tile)*tile)/flops + bytes(rows)/memBW
//
// The ceil(rows/tile) term is the staircase: a GPU schedules work in waves
// of `tile` rows, so partially-filled waves cost as much as full ones. CPUs
// (Pi3) have tile=1 and are close to linear, exactly as the paper describes
// low-end devices.
package device

import (
	"fmt"
	"math"

	"distredge/internal/cnn"
)

// Type identifies a device model from the paper's testbed.
type Type string

// Device types used in the paper's experiments (Table I-III).
const (
	Pi3    Type = "pi3"
	Nano   Type = "nano"
	TX2    Type = "tx2"
	Xavier Type = "xavier"
)

// Profile is the ground-truth synthetic hardware model of one device. It
// plays the role of the physical board: everything else in the system
// (profiler, planner, baselines) observes it only through measurements.
type Profile struct {
	Name string // instance name, e.g. "xavier-0"
	Type Type

	GFLOPS   float64 // effective peak throughput, operations/ns
	Tile     int     // wave quantisation granularity in output rows
	LaunchMS float64 // per-layer kernel launch + framework overhead, ms
	MemGBps  float64 // effective memory bandwidth for activation traffic
}

// LatencyModel is anything that can predict the compute latency of a number
// of output rows of a layer. Profile (ground truth) and every profile form
// (table, linear, piecewise-linear, k-NN) implement it.
type LatencyModel interface {
	ComputeLatency(l cnn.Layer, rows int) float64
}

// ComputeLatency returns the seconds this device needs to compute `rows`
// output rows of layer l. Zero or negative rows cost nothing (the device is
// not invoked at all).
func (p Profile) ComputeLatency(l cnn.Layer, rows int) float64 {
	if rows <= 0 {
		return 0
	}
	tile := p.Tile
	if tile < 1 {
		tile = 1
	}
	effRows := rows
	if l.Kind != cnn.FC {
		waves := (rows + tile - 1) / tile
		effRows = waves * tile
	}
	ops := l.OpsRows(effRows)
	if l.Kind == cnn.FC {
		ops = l.Ops()
	}
	bytes := float64(rows) * (l.InRowBytes() + l.OutRowBytes())
	if l.Kind == cnn.FC {
		bytes = l.InputBytes() + l.OutputBytes()
	}
	return p.LaunchMS/1e3 + ops/(p.GFLOPS*1e9) + bytes/(p.MemGBps*1e9)
}

// VolumeLatency returns the seconds to compute the split-part of the given
// layer-volume whose last layer produces output rows out, including all the
// halo rows the VSL forces intermediate sub-layers to compute.
func VolumeLatency(m LatencyModel, layers []cnn.Layer, out cnn.RowRange) float64 {
	if out.Empty() {
		return 0
	}
	ranges := cnn.VolumeRanges(layers, out)
	var sum float64
	for i, l := range layers {
		sum += m.ComputeLatency(l, ranges[i].Len())
	}
	return sum
}

// ModelLatency returns the seconds to compute the whole model (all layers,
// full height) on this device — what the "Offload" baseline pays per image.
func ModelLatency(m LatencyModel, model *cnn.Model) float64 {
	var sum float64
	for _, l := range model.Layers {
		if l.Kind == cnn.FC {
			sum += m.ComputeLatency(l, 1)
		} else {
			sum += m.ComputeLatency(l, l.OutHeight())
		}
	}
	return sum
}

// LinearCapability returns the single "operations per second" scalar a
// linear-model baseline (CoEdge, MoDNN, MeDNN, AOFL) would measure for this
// device by timing the full model: total ops / total latency. The whole
// point of DistrEdge is that this scalar is a poor predictor for split
// workloads on devices with nonlinear characters.
func LinearCapability(m LatencyModel, model *cnn.Model) float64 {
	lat := ModelLatency(m, model)
	if lat <= 0 {
		return math.Inf(1)
	}
	return model.TotalOps() / lat
}

// New returns the calibrated profile for a device type. The absolute scales
// are synthetic; the *relative* ordering and nonlinearity degree follow the
// public Jetson benchmarks the paper cites: Pi3 << Nano < TX2 < Xavier, with
// bigger GPUs having wider waves (stronger staircases).
func New(t Type, name string) (Profile, error) {
	var p Profile
	switch t {
	case Pi3:
		p = Profile{Type: Pi3, GFLOPS: 2.0, Tile: 1, LaunchMS: 1.2, MemGBps: 1.5}
	case Nano:
		p = Profile{Type: Nano, GFLOPS: 110, Tile: 8, LaunchMS: 0.40, MemGBps: 8}
	case TX2:
		p = Profile{Type: TX2, GFLOPS: 250, Tile: 16, LaunchMS: 0.35, MemGBps: 15}
	case Xavier:
		p = Profile{Type: Xavier, GFLOPS: 700, Tile: 32, LaunchMS: 0.30, MemGBps: 40}
	default:
		return Profile{}, fmt.Errorf("device: unknown type %q", t)
	}
	p.Name = name
	return p, nil
}

// MustNew is New that panics on error, for static experiment tables.
func MustNew(t Type, name string) Profile {
	p, err := New(t, name)
	if err != nil {
		panic(err)
	}
	return p
}

// Fleet builds n devices of the given types (cycled) with indexed names.
func Fleet(types ...Type) []Profile {
	out := make([]Profile, len(types))
	for i, t := range types {
		out[i] = MustNew(t, fmt.Sprintf("%s-%d", t, i))
	}
	return out
}

// AsModels converts concrete device profiles to the LatencyModel interface
// (e.g. for sim.Env construction).
func AsModels(profiles []Profile) []LatencyModel {
	out := make([]LatencyModel, len(profiles))
	for i, p := range profiles {
		out[i] = p
	}
	return out
}
