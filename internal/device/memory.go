package device

import (
	"fmt"

	"distredge/internal/cnn"
)

// MemoryGB returns the device's RAM in gigabytes. These follow the boards
// the paper uses: Pi3 1 GB, Nano 4 GB, TX2 8 GB, Xavier 32 GB — the basis
// for the paper's Discussion (4) claim that memory is not a constraint.
func (p Profile) MemoryGB() float64 {
	switch p.Type {
	case Pi3:
		return 1
	case Nano:
		return 4
	case TX2:
		return 8
	case Xavier:
		return 32
	default:
		return 0
	}
}

// FitsInMemory reports whether the whole model (weights + peak activation
// working set) fits on the device with the given headroom fraction reserved
// for the OS and runtime (e.g. 0.5 = use at most half the RAM).
func (p Profile) FitsInMemory(m *cnn.Model, headroom float64) bool {
	usable := p.MemoryGB() * 1e9 * (1 - headroom)
	return m.MemoryFootprintBytes() <= usable
}

// CheckFleetMemory verifies the paper's Discussion (4) premise for a fleet:
// every device can hold the entire model. It returns an error naming the
// first device that cannot.
func CheckFleetMemory(devs []Profile, m *cnn.Model, headroom float64) error {
	for _, d := range devs {
		if !d.FitsInMemory(m, headroom) {
			return fmt.Errorf("device: %s (%s, %.0f GB) cannot hold %s (%.2f GB footprint)",
				d.Name, d.Type, d.MemoryGB(), m.Name, m.MemoryFootprintBytes()/1e9)
		}
	}
	return nil
}
