package device

import (
	"sync"
	"testing"

	"distredge/internal/cnn"
)

func cacheTestLayers(t *testing.T) []cnn.Layer {
	t.Helper()
	b := cnn.NewBuilder("cache-test", 64, 64, 3)
	b = b.Conv("c1", 16, 3, 1, 1).Conv("c2", 16, 3, 1, 1).Pool("p1", 2, 2)
	m := b.MustBuild()
	return m.SplittableLayers()
}

func TestCacheMatchesDirectEvaluation(t *testing.T) {
	layers := cacheTestLayers(t)
	dev := MustNew(Xavier, "x0")
	c := NewCache()
	for _, r := range []cnn.RowRange{{Lo: 0, Hi: 32}, {Lo: 5, Hi: 19}, {Lo: 0, Hi: 0}, {Lo: 31, Hi: 32}} {
		want := VolumeLatency(dev, layers, r)
		for i := 0; i < 3; i++ { // hit the memo repeatedly
			if got := c.VolumeLatency(0, dev, layers, r); got != want {
				t.Errorf("range %v: cached %.17g != direct %.17g", r, got, want)
			}
		}
	}
	st := c.Stats()
	if st.Misses != 3 { // three non-empty distinct ranges
		t.Errorf("misses = %d, want 3", st.Misses)
	}
	if st.Hits != 6 {
		t.Errorf("hits = %d, want 6", st.Hits)
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
}

func TestCacheKeysDistinguishDevicesAndVolumes(t *testing.T) {
	layers := cacheTestLayers(t)
	fast := MustNew(Xavier, "x0")
	slow := MustNew(Pi3, "p0")
	c := NewCache()
	r := cnn.RowRange{Lo: 0, Hi: 16}
	a := c.VolumeLatency(0, fast, layers, r)
	b := c.VolumeLatency(1, slow, layers, r)
	if a == b {
		t.Error("different devices returned the same cached latency")
	}
	// A sub-volume sharing the first layer must not collide with the full
	// volume (length is part of the key).
	sub := c.VolumeLatency(0, fast, layers[:1], r)
	if sub == a {
		t.Error("sub-volume collided with full volume in the cache")
	}
}

func TestCacheConcurrentUse(t *testing.T) {
	layers := cacheTestLayers(t)
	dev := MustNew(TX2, "t0")
	c := NewCache()
	want := VolumeLatency(dev, layers, cnn.RowRange{Lo: 0, Hi: 24})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := c.VolumeLatency(0, dev, layers, cnn.RowRange{Lo: 0, Hi: 24}); got != want {
					t.Errorf("concurrent cached value %.17g != %.17g", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
