// Package splitter implements OSDS — Optimal Split Decision Search
// (Algorithm 2 of the DistrEdge paper): a DDPG agent that splits each
// layer-volume vertically across the service providers, observing the
// accumulated per-device latencies and the next volume's layer
// configuration (Eq. 7), acting in a continuous space mapped to cut points
// (Eq. 9), and rewarded with 1/T at the end of each episode (Eq. 8). The
// best strategy seen during training is kept (lines 24-26).
package splitter

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/rl"
	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// Config holds the OSDS hyper-parameters. Paper values (Section V):
// Max_ep=4000, ∆ε=1/250, σ²=0.1 (σ²=1 for 16 providers), Nb=64, γ=0.99,
// actor lr 1e-4, critic lr 1e-3, actor {400,200,100}. Smaller budgets are
// used in tests and benchmarks; thanks to best-strategy tracking, short
// runs still return the best strategy they visited.
type Config struct {
	Episodes int
	Hidden   []int
	Batch    int
	Gamma    float64
	SigmaSq  float64 // exploration noise variance σ²
	DeltaEps float64 // ε-schedule slope; 0 = auto from Episodes
	ActorLR  float64
	CriticLR float64
	Seed     int64

	// WarmStart seeds the first episodes with profile-guided balanced
	// splits (an engineering addition documented in DESIGN.md; the paper's
	// agent similarly consumes device profiles). Disable to run pure
	// Algorithm 2.
	WarmStart bool
	// InitSplits seeds one extra warm-start episode with a known-good split
	// decision per volume — churn recovery passes the pre-failure strategy
	// projected onto the survivors, so the search explores outward from the
	// deployment that was just working. Requires WarmStart; entries whose
	// cut count does not match the provider count fall back to balanced
	// cuts.
	InitSplits [][]int
	// UpdateEvery performs a gradient update every k environment steps
	// (1 = the paper's per-step update).
	UpdateEvery int

	// Objective selects what the search optimises. Nil (or
	// sim.LatencyObjective) trains on sequential end-to-end latency —
	// the paper's 1/T reward, bit-identical to the pre-objective
	// planner. sim.ThroughputObjective rewards steady-state pipelined
	// seconds per image instead, adds a stage-layout warm-start family
	// (volume v entirely on provider v mod n — the family Fig. 16 shows
	// filled pipelines favour), and makes best-strategy tracking keep
	// the highest-throughput strategy visited.
	Objective sim.Objective
}

func (c Config) withDefaults() Config {
	if c.Episodes == 0 {
		c.Episodes = 4000
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{400, 200, 100}
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.SigmaSq == 0 {
		c.SigmaSq = 0.1
	}
	if c.DeltaEps == 0 {
		c.DeltaEps = 1 / (0.85 * float64(c.Episodes))
	}
	if c.ActorLR == 0 {
		c.ActorLR = 1e-4
	}
	if c.CriticLR == 0 {
		c.CriticLR = 1e-3
	}
	if c.UpdateEvery == 0 {
		c.UpdateEvery = 1
	}
	return c
}

// Result summarises a search. Scores are objective scores: end-to-end
// seconds per image under the default latency objective, steady-state
// seconds per image under the throughput objective — lower is better
// either way.
type Result struct {
	Strategy    *strategy.Strategy
	BestLatency float64   // best objective score observed
	Episodes    []float64 // per-episode objective score
}

// Trainer is a reusable OSDS trainer; keeping it alive enables the online
// finetuning of Section V-F (the actor network stays on the controller and
// is finetuned when network conditions shift).
type Trainer struct {
	env        *sim.Env
	boundaries []int
	cfg        Config
	obj        sim.Objective
	agent      *rl.Agent
	rng        *rand.Rand
	episode    int
	exec       *sim.Exec // reusable per-episode executor (compiled path)

	// State normalisation scales derived from the model.
	latScale float64
	hScale   float64
	cScale   float64

	best  *strategy.Strategy
	bestT float64
	hist  []float64
}

// NewTrainer builds a trainer for splitting the given partition scheme on
// the environment.
func NewTrainer(env *sim.Env, boundaries []int, cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	n := env.NumProviders()
	if n < 2 {
		return nil, fmt.Errorf("splitter: need at least 2 providers, got %d", n)
	}
	if len(boundaries) < 2 {
		return nil, fmt.Errorf("splitter: invalid boundaries %v", boundaries)
	}
	agent, err := rl.New(rl.Config{
		StateDim:  n + 4,
		ActionDim: n - 1,
		Hidden:    cfg.Hidden,
		ActorLR:   cfg.ActorLR,
		CriticLR:  cfg.CriticLR,
		Gamma:     cfg.Gamma,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	t := &Trainer{
		env:        env,
		boundaries: boundaries,
		cfg:        cfg,
		obj:        sim.DefaultObjective(cfg.Objective),
		agent:      agent,
		rng:        rand.New(rand.NewSource(cfg.Seed + 17)),
		bestT:      math.Inf(1),
	}
	t.deriveScales()
	return t, nil
}

func (t *Trainer) deriveScales() {
	var hMax, cMax float64
	for _, l := range t.env.Model.SplittableLayers() {
		hMax = math.Max(hMax, float64(l.OutHeight()))
		cMax = math.Max(cMax, float64(l.OutDepth()))
	}
	t.hScale = math.Max(hMax, 1)
	t.cScale = math.Max(cMax, 1)
	// Latency scale: the whole model on the fastest provider.
	best := math.Inf(1)
	for _, d := range t.env.Devices {
		best = math.Min(best, device.ModelLatency(d, t.env.Model))
	}
	t.latScale = math.Max(best, 1e-3)
}

// state assembles Eq. 7: accumulated latencies plus the configuration
// (H, C, F, S) of the last layer of the upcoming volume; normalised.
func (t *Trainer) state(acc []float64, vol []cnn.Layer) []float64 {
	n := t.env.NumProviders()
	s := make([]float64, n+4)
	for i, a := range acc {
		s[i] = a / t.latScale
	}
	last := vol[len(vol)-1]
	s[n] = float64(last.OutHeight()) / t.hScale
	s[n+1] = float64(last.OutDepth()) / t.cScale
	s[n+2] = float64(last.F) / 7
	s[n+3] = float64(last.S) / 4
	return s
}

// mapAction converts a raw actor output ã ∈ [-1,1]^{n-1} into sorted cut
// points on height h (Eq. 9 with [A,B] = [-1,1]).
func mapAction(raw []float64, h int) []int {
	sorted := append([]float64(nil), raw...)
	sort.Float64s(sorted)
	cuts := make([]int, len(sorted))
	for i, v := range sorted {
		x := int(math.Round(float64(h) * (v + 1) / 2))
		if x < 0 {
			x = 0
		}
		if x > h {
			x = h
		}
		if i > 0 && x < cuts[i-1] {
			x = cuts[i-1]
		}
		cuts[i] = x
	}
	return cuts
}

// actionFromCuts inverts mapAction for warm-start episodes.
func actionFromCuts(cuts []int, h int) []float64 {
	raw := make([]float64, len(cuts))
	for i, c := range cuts {
		raw[i] = 2*float64(c)/float64(h) - 1
	}
	return raw
}

// balancedCuts computes a profile-guided balanced split of a volume over
// all providers (see balancedCutsSubset).
func balancedCuts(env *sim.Env, layers []cnn.Layer, h int) []int {
	allowed := make([]bool, env.NumProviders())
	for i := range allowed {
		allowed[i] = true
	}
	return balancedCutsSubset(env, layers, h, allowed)
}

// balancedCutsSubset computes a profile-guided balanced split of a volume
// restricted to the allowed providers: proportional to per-device volume
// throughput, then hill-climbed on the true per-part compute latency. Used
// for warm-start episodes.
func balancedCutsSubset(env *sim.Env, layers []cnn.Layer, h int, allowed []bool) []int {
	n := env.NumProviders()
	full := cnn.RowRange{Lo: 0, Hi: h}
	weights := make([]float64, n)
	for i := range env.Devices {
		if !allowed[i] {
			continue
		}
		lat := env.VolumeLatency(i, layers, full)
		if lat > 0 {
			weights[i] = 1 / lat
		}
	}
	cuts := strategy.ProportionalCuts(h, weights)
	partLat := func(cuts []int) float64 {
		var worst float64
		for i := 0; i < n; i++ {
			part := strategy.CutRange(cuts, h, i)
			if part.Empty() {
				continue
			}
			if !allowed[i] {
				// A cut move may not hand rows to an excluded provider —
				// for churn re-planning, "excluded" means dead.
				return math.Inf(1)
			}
			lat := env.VolumeLatency(i, layers, part)
			if lat > worst {
				worst = lat
			}
		}
		return worst
	}
	cur := partLat(cuts)
	cand := make([]int, len(cuts))
	for iter := 0; iter < 24; iter++ {
		improved := false
		for ci := range cuts {
			for _, d := range climbDeltas {
				copy(cand, cuts)
				cand[ci] += d
				if cand[ci] < 0 || cand[ci] > h {
					continue
				}
				if ci > 0 && cand[ci] < cand[ci-1] {
					continue
				}
				if ci+1 < len(cand) && cand[ci] > cand[ci+1] {
					continue
				}
				if l := partLat(cand); l < cur {
					copy(cuts, cand)
					cur = l
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return cuts
}

// climbDeltas are the hill-climbing moves of balancedCutsSubset.
var climbDeltas = [...]int{-4, -1, 1, 4}

// numWarmCandidates is the number of distinct warm-start strategy families
// tried before DDPG exploration takes over.
const numWarmCandidates = 4

// stageWarmKind is the stage-pipelined warm candidate (volume v entirely
// on provider v mod n), scheduled only under non-latency objectives: it is
// the family filled admission windows favour (Fig. 16), and under the
// default latency objective its absence keeps the schedule — and therefore
// the whole search — bit-identical to the pre-objective planner.
const stageWarmKind = numWarmCandidates

// initWarmKind is the extra warm candidate fed from Config.InitSplits.
const initWarmKind = numWarmCandidates + 1

// warmSchedule lists the warm-start kind of each leading episode: the
// InitSplits seed first (when provided), then the stage family under a
// throughput-style objective, then the four heuristic families, capped at
// half the episode budget. floorOne keeps at least one warm episode for
// any positive budget (Finetune's behaviour).
func warmSchedule(cfg Config, episodes int, floorOne bool) []int {
	if !cfg.WarmStart {
		return nil
	}
	kinds := []int{0, 1, 2, 3}
	if !sim.IsLatencyObjective(cfg.Objective) {
		kinds = append([]int{stageWarmKind}, kinds...)
	}
	if cfg.InitSplits != nil {
		kinds = append([]int{initWarmKind}, kinds...)
	}
	max := episodes / 2
	if floorOne && max < 1 && episodes > 0 {
		max = 1
	}
	if max < 0 {
		max = 0
	}
	if len(kinds) > max {
		kinds = kinds[:max]
	}
	return kinds
}

// initCuts returns the InitSplits seed for volume v, clamped to a valid
// sorted cut list on height h; shape mismatches fall back to balanced cuts.
func (t *Trainer) initCuts(vol []cnn.Layer, v, h int) []int {
	n := t.env.NumProviders()
	if v >= len(t.cfg.InitSplits) || len(t.cfg.InitSplits[v]) != n-1 {
		return balancedCuts(t.env, vol, h)
	}
	cuts := append([]int(nil), t.cfg.InitSplits[v]...)
	sort.Ints(cuts)
	for i := range cuts {
		if cuts[i] < 0 {
			cuts[i] = 0
		}
		if cuts[i] > h {
			cuts[i] = h
		}
	}
	return cuts
}

// warmCuts returns the cut points for warm-start candidate `kind` on one
// volume. The candidates cover the strategy families the optimum tends to
// live in, so the best-strategy tracker starts from a strong anchor:
//
//	0 — compute-balanced across all providers
//	1 — everything on the single fastest provider (offload-shaped)
//	2 — balanced across the fastest half of the providers
//	3 — balanced across the fastest two providers
func warmCuts(env *sim.Env, layers []cnn.Layer, h, kind int) []int {
	n := env.NumProviders()
	full := cnn.RowRange{Lo: 0, Hi: h}
	lats := make([]float64, n)
	order := make([]int, n)
	for i := range env.Devices {
		lats[i] = env.VolumeLatency(i, layers, full)
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return lats[order[a]] < lats[order[b]] })

	allow := func(k int) []bool {
		allowed := make([]bool, n)
		for _, i := range order[:k] {
			allowed[i] = true
		}
		return allowed
	}
	switch kind {
	case 1:
		return strategy.AllOnProvider(h, n, order[0])
	case 2:
		k := (n + 1) / 2
		if k < 1 {
			k = 1
		}
		return balancedCutsSubset(env, layers, h, allow(k))
	case 3:
		k := 2
		if k > n {
			k = n
		}
		return balancedCutsSubset(env, layers, h, allow(k))
	default:
		return balancedCuts(env, layers, h)
	}
}

// runEpisode plays one episode (Alg. 2 lines 6-23) and returns the
// episode's objective score (end-to-end latency under the default
// objective). warmKind >= 0 selects a warm-start candidate family;
// otherwise actions follow the ε-schedule.
func (t *Trainer) runEpisode(eps float64, warmKind int, train bool) (float64, *strategy.Strategy) {
	numVol := len(t.boundaries) - 1
	at := t.rng.Float64() * 300 // sample a trace instant
	if t.exec == nil {
		t.exec = sim.NewExec(t.env, t.boundaries, at)
	} else {
		t.exec.Reset(t.boundaries, at)
	}
	x := t.exec
	sigma := math.Sqrt(t.cfg.SigmaSq)

	splits := make([][]int, 0, numVol)
	type pending struct {
		s, a []float64
		s2   []float64
		done bool
	}
	var trans []pending
	for v := 0; v < numVol; v++ {
		vol := strategy.Volume(t.env.Model, t.boundaries, v)
		h := vol[len(vol)-1].OutHeight()
		st := t.state(x.Accumulated(), vol)

		var raw []float64
		switch {
		case warmKind >= 0:
			var cuts []int
			switch warmKind {
			case initWarmKind:
				cuts = t.initCuts(vol, v, h)
			case stageWarmKind:
				cuts = strategy.AllOnProvider(h, t.env.NumProviders(), v%t.env.NumProviders())
			default:
				cuts = warmCuts(t.env, vol, h, warmKind)
			}
			raw = actionFromCuts(cuts, h)
			for i := range raw {
				raw[i] += 0.01 * t.rng.NormFloat64()
			}
		case t.rng.Float64() < eps:
			raw = t.agent.NoisyAction(st, sigma)
		default:
			raw = t.agent.Action(st)
		}
		cuts := mapAction(raw, h)
		splits = append(splits, cuts)
		x.Step(cuts)

		p := pending{s: st, a: raw}
		if v == numVol-1 {
			p.done = true
			p.s2 = make([]float64, len(st))
		} else {
			next := strategy.Volume(t.env.Model, t.boundaries, v+1)
			p.s2 = t.state(x.Accumulated(), next)
		}
		trans = append(trans, p)
	}
	latency, _, err := x.Finish()
	if err != nil || latency <= 0 {
		return math.Inf(1), nil
	}
	strat := &strategy.Strategy{Boundaries: t.boundaries, Splits: splits}
	// The episode score is the objective's view of the strategy: the
	// latency objective returns the already-simulated latency unchanged
	// (so the default search performs exactly the pre-objective float
	// sequence), while the throughput objective replays the strategy
	// pipelined and returns steady seconds per image.
	score, err := t.obj.EpisodeScore(t.env, strat, at, latency)
	if err != nil || score <= 0 || math.IsInf(score, 0) {
		return math.Inf(1), nil
	}
	// Rewards: 0 for intermediate steps, 1/T at the terminal step (Eq. 8,
	// with T the objective score), scaled so typical returns are O(1).
	for i, p := range trans {
		r := 0.0
		if p.done {
			r = t.latScale / score
		}
		t.agent.Buf.Add(rl.Transition{State: p.s, Action: p.a, Reward: r, NextState: p.s2, Done: p.done})
		if train && (i+t.episode)%t.cfg.UpdateEvery == 0 {
			t.agent.Update(t.cfg.Batch)
		}
	}
	return score, strat
}

// Run trains for the configured number of episodes, tracking the best
// strategy observed.
func (t *Trainer) Run() *Result {
	sched := warmSchedule(t.cfg, t.cfg.Episodes, false)
	for ep := 0; ep < t.cfg.Episodes; ep++ {
		e := float64(ep) * t.cfg.DeltaEps
		eps := 1 - e*e
		if eps < 0.05 {
			eps = 0.05
		}
		warmKind := -1
		if ep < len(sched) {
			warmKind = sched[ep]
		}
		lat, strat := t.runEpisode(eps, warmKind, true)
		t.hist = append(t.hist, lat)
		if strat != nil && lat < t.bestT {
			t.bestT = lat
			t.best = strat
		}
		t.episode++
	}
	return &Result{Strategy: t.best, BestLatency: t.bestT, Episodes: append([]float64(nil), t.hist...)}
}

// Best returns the best strategy and latency observed so far.
func (t *Trainer) Best() (*strategy.Strategy, float64) { return t.best, t.bestT }

// Finetune re-targets the trainer at a changed environment (e.g. new
// network conditions, Section V-F) and trains for a few extra episodes,
// reusing the learned actor/critic. The best-strategy tracker is reset
// because old latencies are no longer comparable.
func (t *Trainer) Finetune(env *sim.Env, episodes int) *Result {
	t.env = env
	t.exec = nil // the reusable executor is bound to the old env
	t.deriveScales()
	t.best = nil
	t.bestT = math.Inf(1)
	t.hist = nil
	sched := warmSchedule(t.cfg, episodes, true)
	for ep := 0; ep < episodes; ep++ {
		warmKind := -1
		if ep < len(sched) {
			warmKind = sched[ep]
		}
		lat, strat := t.runEpisode(0.3, warmKind, true)
		t.hist = append(t.hist, lat)
		if strat != nil && lat < t.bestT {
			t.bestT = lat
			t.best = strat
		}
		t.episode++
	}
	return &Result{Strategy: t.best, BestLatency: t.bestT, Episodes: append([]float64(nil), t.hist...)}
}

// Search is the one-shot convenience API: train a fresh agent and return
// the best strategy found (Algorithm 2 end-to-end).
func Search(env *sim.Env, boundaries []int, cfg Config) (*Result, error) {
	tr, err := NewTrainer(env, boundaries, cfg)
	if err != nil {
		return nil, err
	}
	res := tr.Run()
	if res.Strategy == nil {
		return nil, fmt.Errorf("splitter: no valid strategy found")
	}
	return res, nil
}
