package splitter

import (
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
	"distredge/internal/strategy"
)

func objectiveTestEnv(seed int64) *sim.Env {
	devs := device.Fleet(device.Xavier, device.Xavier, device.Nano, device.Nano)
	return &sim.Env{
		Model:   cnn.VGG16(),
		Devices: device.AsModels(devs),
		Net:     network.NewStable([]float64{200, 200, 200, 200}, 10, seed),
	}
}

func tinyConfig(seed int64) Config {
	return Config{Episodes: 25, Hidden: []int{16, 16}, Batch: 16, Seed: seed, WarmStart: true}
}

// TestNilObjectiveBitIdenticalToExplicitLatency is the splitter-level
// objective-equivalence test: a search with no objective set and a search
// with sim.LatencyObjective named explicitly must visit the identical
// episode sequence and return the identical strategy — the objective
// plumbing is invisible for the default.
func TestNilObjectiveBitIdenticalToExplicitLatency(t *testing.T) {
	boundaries := []int{0, 10, 14, 18}
	run := func(obj sim.Objective) *Result {
		cfg := tinyConfig(7)
		cfg.Objective = obj
		res, err := Search(objectiveTestEnv(7), boundaries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(nil)
	b := run(sim.LatencyObjective{})
	if a.BestLatency != b.BestLatency {
		t.Errorf("best scores differ: %.17g != %.17g", a.BestLatency, b.BestLatency)
	}
	if len(a.Episodes) != len(b.Episodes) {
		t.Fatalf("episode counts differ: %d != %d", len(a.Episodes), len(b.Episodes))
	}
	for i := range a.Episodes {
		if a.Episodes[i] != b.Episodes[i] {
			t.Fatalf("episode %d scores differ: %.17g != %.17g", i, a.Episodes[i], b.Episodes[i])
		}
	}
	for v := range a.Strategy.Splits {
		for i, c := range a.Strategy.Splits[v] {
			if b.Strategy.Splits[v][i] != c {
				t.Fatalf("strategies differ at volume %d", v)
			}
		}
	}
}

// TestThroughputObjectiveFindsPipelinedPlan checks the throughput-driven
// search end to end: under sim.ThroughputObjective the best strategy must
// score strictly better on steady pipelined seconds-per-image than the
// latency-driven search's choice, and worse (or equal) on sequential
// latency — the two objectives genuinely pull the search apart.
func TestThroughputObjectiveFindsPipelinedPlan(t *testing.T) {
	env := objectiveTestEnv(7)
	boundaries := []int{0, 6, 10, 14, 18}
	obj := sim.ThroughputObjective{Window: 4}

	latCfg := tinyConfig(7)
	latRes, err := Search(env, boundaries, latCfg)
	if err != nil {
		t.Fatal(err)
	}
	ipsCfg := tinyConfig(7)
	ipsCfg.Objective = obj
	ipsRes, err := Search(env, boundaries, ipsCfg)
	if err != nil {
		t.Fatal(err)
	}

	latPlanThroughput, err := obj.Score(env, latRes.Strategy, 0)
	if err != nil {
		t.Fatal(err)
	}
	ipsPlanThroughput, err := obj.Score(env, ipsRes.Strategy, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("steady sec/img at window 4: latency-planned %.4f, ips-planned %.4f", latPlanThroughput, ipsPlanThroughput)
	if ipsPlanThroughput >= latPlanThroughput {
		t.Errorf("throughput search did not beat the latency search on its own objective: %.5f >= %.5f",
			ipsPlanThroughput, latPlanThroughput)
	}
}

// TestObjectiveReplanLatencyDefaultIsBalanced pins that recovery under the
// latency default is exactly the pre-objective re-planner.
func TestObjectiveReplanLatencyDefaultIsBalanced(t *testing.T) {
	env := objectiveTestEnv(3)
	boundaries := []int{0, 10, 14, 18}
	old, err := BalancedSubset(env, boundaries, []bool{true, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	alive := []bool{true, false, true, true}
	want, err := BalancedReplan(env, old, alive)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ObjectiveReplan(nil)(env, old, alive)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Splits {
		for i, c := range want.Splits[v] {
			if got.Splits[v][i] != c {
				t.Fatalf("volume %d differs from BalancedReplan", v)
			}
		}
	}
}

// TestObjectiveReplanPicksBetterScoringLayout checks the throughput
// re-planner: it must return a valid full-fleet strategy with empty parts
// for the dead provider, and its objective score must be min(balanced,
// stage) — the better of the two training-free survivor layouts.
func TestObjectiveReplanPicksBetterScoringLayout(t *testing.T) {
	env := objectiveTestEnv(3)
	boundaries := []int{0, 6, 10, 14, 18}
	obj := sim.ThroughputObjective{Window: 4}
	alive := []bool{true, true, false, true}
	old, err := BalancedSubset(env, boundaries, []bool{true, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ObjectiveReplan(obj)(env, old, alive)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(env.Model, env.NumProviders()); err != nil {
		t.Fatalf("re-planned strategy invalid: %v", err)
	}
	for v := 0; v < got.NumVolumes(); v++ {
		if !got.PartRange(env.Model, v, 2).Empty() {
			t.Fatalf("dead provider 2 owns rows in volume %d", v)
		}
	}
	bal, err := BalancedSubset(env, boundaries, alive)
	if err != nil {
		t.Fatal(err)
	}
	stage, err := StageSubset(env, boundaries, alive)
	if err != nil {
		t.Fatal(err)
	}
	gotScore, err := obj.Score(env, got, 0)
	if err != nil {
		t.Fatal(err)
	}
	balScore, err := obj.Score(env, bal, 0)
	if err != nil {
		t.Fatal(err)
	}
	stageScore, err := obj.Score(env, stage, 0)
	if err != nil {
		t.Fatal(err)
	}
	best := balScore
	if stageScore < best {
		best = stageScore
	}
	if gotScore != best {
		t.Errorf("replan score %.6f != best candidate %.6f (bal %.6f, stage %.6f)",
			gotScore, best, balScore, stageScore)
	}
}

// TestStageSubsetRotatesOverSurvivors pins the stage layout's shape.
func TestStageSubsetRotatesOverSurvivors(t *testing.T) {
	env := objectiveTestEnv(5)
	boundaries := []int{0, 6, 10, 14, 18}
	alive := []bool{true, false, true, true}
	s, err := StageSubset(env, boundaries, alive)
	if err != nil {
		t.Fatal(err)
	}
	liveIdx := []int{0, 2, 3}
	for v := 0; v < s.NumVolumes(); v++ {
		owner := liveIdx[v%len(liveIdx)]
		h := strategy.VolumeHeight(env.Model, boundaries, v)
		for i := 0; i < env.NumProviders(); i++ {
			part := s.PartRange(env.Model, v, i)
			if i == owner {
				if part.Len() != h {
					t.Fatalf("volume %d: owner %d holds %d of %d rows", v, owner, part.Len(), h)
				}
			} else if !part.Empty() {
				t.Fatalf("volume %d: provider %d must be empty", v, i)
			}
		}
	}
}
