package splitter

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
	"distredge/internal/strategy"
)

func testEnv(types ...device.Type) *sim.Env {
	devs := device.Fleet(types...)
	net := &network.Network{Requester: network.DefaultLink(network.Constant(200))}
	for range devs {
		net.Providers = append(net.Providers, network.DefaultLink(network.Constant(200)))
	}
	return &sim.Env{Model: cnn.VGG16(), Devices: device.AsModels(devs), Net: net}
}

func smallCfg(seed int64) Config {
	return Config{
		Episodes:  40,
		Hidden:    []int{24, 24},
		Batch:     16,
		SigmaSq:   0.1,
		Seed:      seed,
		WarmStart: true,
	}
}

func TestMapActionProperties(t *testing.T) {
	f := func(raw [3]float64, hRaw uint8) bool {
		h := int(hRaw)%200 + 1
		vals := make([]float64, 3)
		for i, v := range raw[:] {
			vals[i] = math.Mod(v, 1) // keep in (-1,1)
			if math.IsNaN(vals[i]) {
				vals[i] = 0
			}
		}
		cuts := mapAction(vals, h)
		if !sort.IntsAreSorted(cuts) {
			return false
		}
		for _, c := range cuts {
			if c < 0 || c > h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMapActionExtremes(t *testing.T) {
	cuts := mapAction([]float64{-1, -1, -1}, 100)
	for _, c := range cuts {
		if c != 0 {
			t.Fatalf("all -1 should map to 0: %v", cuts)
		}
	}
	cuts = mapAction([]float64{1, 1, 1}, 100)
	for _, c := range cuts {
		if c != 100 {
			t.Fatalf("all +1 should map to h: %v", cuts)
		}
	}
	cuts = mapAction([]float64{0}, 100)
	if cuts[0] != 50 {
		t.Fatalf("0 should map to h/2: %v", cuts)
	}
}

func TestActionRoundTrip(t *testing.T) {
	h := 224
	cuts := []int{56, 112, 168}
	raw := actionFromCuts(cuts, h)
	back := mapAction(raw, h)
	for i := range cuts {
		if back[i] != cuts[i] {
			t.Fatalf("roundtrip %v -> %v -> %v", cuts, raw, back)
		}
	}
}

func TestBalancedCutsBeatEqualOnHeterogeneous(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.Nano, device.Pi3)
	layers := env.Model.SplittableLayers()[:4]
	h := layers[3].OutHeight()
	bal := balancedCuts(env, layers, h)
	eq := strategy.EqualCuts(h, 4)
	worst := func(cuts []int) float64 {
		var w float64
		for i := 0; i < 4; i++ {
			part := strategy.CutRange(cuts, h, i)
			if l := device.VolumeLatency(env.Devices[i], layers, part); l > w {
				w = l
			}
		}
		return w
	}
	if worst(bal) >= worst(eq) {
		t.Errorf("balanced cuts %v (%.4gs) not better than equal %v (%.4gs)",
			bal, worst(bal), eq, worst(eq))
	}
}

func TestBalancedCutsExcludeUselessDevice(t *testing.T) {
	// A Pi3 next to Xaviers should receive (almost) nothing — the paper's
	// Group-DC observation (Section VI-(2)).
	env := testEnv(device.Xavier, device.Xavier, device.Xavier, device.Pi3)
	layers := env.Model.SplittableLayers()[:4]
	h := layers[3].OutHeight()
	cuts := balancedCuts(env, layers, h)
	pi3Rows := strategy.CutRange(cuts, h, 3).Len()
	if pi3Rows > h/16 {
		t.Errorf("Pi3 was given %d of %d rows", pi3Rows, h)
	}
}

func TestSearchReturnsValidStrategy(t *testing.T) {
	env := testEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	boundaries := strategy.PoolBoundaries(env.Model)
	res, err := Search(env, boundaries, smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Strategy.Validate(env.Model, 4); err != nil {
		t.Fatalf("invalid strategy: %v", err)
	}
	if res.BestLatency <= 0 || math.IsInf(res.BestLatency, 0) {
		t.Fatalf("bad best latency %g", res.BestLatency)
	}
	if len(res.Episodes) != 40 {
		t.Errorf("episode history %d, want 40", len(res.Episodes))
	}
	// The recorded best latency must be reproducible by the simulator
	// (modulo the trace instant).
	lat, _, err := env.Latency(res.Strategy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("strategy does not execute")
	}
}

func TestSearchBeatsEqualSplitOnHeterogeneous(t *testing.T) {
	// On a heterogeneous fleet, OSDS must comfortably beat equal-split over
	// the same partition scheme.
	env := testEnv(device.Xavier, device.Xavier, device.Nano, device.Nano)
	boundaries := strategy.PoolBoundaries(env.Model)
	res, err := Search(env, boundaries, smallCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	eq := &strategy.Strategy{Boundaries: boundaries}
	for v := 0; v+1 < len(boundaries); v++ {
		h := strategy.VolumeHeight(env.Model, boundaries, v)
		eq.Splits = append(eq.Splits, strategy.EqualCuts(h, 4))
	}
	latOSDS, _, err := env.Latency(res.Strategy, 0)
	if err != nil {
		t.Fatal(err)
	}
	latEq, _, err := env.Latency(eq, 0)
	if err != nil {
		t.Fatal(err)
	}
	if latOSDS >= latEq {
		t.Errorf("OSDS %.4gs not better than equal split %.4gs", latOSDS, latEq)
	}
}

func TestTrainerFinetune(t *testing.T) {
	env := testEnv(device.Nano, device.Nano, device.Nano, device.Nano)
	boundaries := strategy.PoolBoundaries(env.Model)
	tr, err := NewTrainer(env, boundaries, smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	tr.Run()
	_, before := tr.Best()

	// Network shifts: all links drop to 20 Mbps.
	slow := &network.Network{Requester: network.DefaultLink(network.Constant(20))}
	for range env.Devices {
		slow.Providers = append(slow.Providers, network.DefaultLink(network.Constant(20)))
	}
	env2 := &sim.Env{Model: env.Model, Devices: env.Devices, Net: slow}
	res := tr.Finetune(env2, 10)
	if res.Strategy == nil {
		t.Fatal("finetune found no strategy")
	}
	if err := res.Strategy.Validate(env2.Model, 4); err != nil {
		t.Fatal(err)
	}
	if res.BestLatency <= before {
		// Slower network must mean slower inference; the tracker was reset.
		t.Errorf("finetune latency %g not above fast-network %g", res.BestLatency, before)
	}
}

func TestNewTrainerErrors(t *testing.T) {
	env := testEnv(device.Nano)
	if _, err := NewTrainer(env, []int{0, 18}, smallCfg(4)); err == nil {
		t.Error("single provider must error")
	}
	env = testEnv(device.Nano, device.Nano)
	if _, err := NewTrainer(env, []int{0}, smallCfg(5)); err == nil {
		t.Error("bad boundaries must error")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Episodes != 4000 || c.Batch != 64 || c.Gamma != 0.99 {
		t.Errorf("paper defaults wrong: %+v", c)
	}
	if c.SigmaSq != 0.1 || c.ActorLR != 1e-4 || c.CriticLR != 1e-3 {
		t.Errorf("paper defaults wrong: %+v", c)
	}
	if len(c.Hidden) != 3 || c.Hidden[0] != 400 {
		t.Errorf("paper actor sizes wrong: %v", c.Hidden)
	}
	if c.DeltaEps <= 0 {
		t.Error("auto DeltaEps must be positive")
	}
}

func TestStateNormalisation(t *testing.T) {
	env := testEnv(device.Nano, device.Nano, device.Nano, device.Nano)
	tr, err := NewTrainer(env, strategy.PoolBoundaries(env.Model), smallCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	vol := strategy.Volume(env.Model, tr.boundaries, 0)
	st := tr.state([]float64{0.01, 0.02, 0, 0}, vol)
	if len(st) != 8 {
		t.Fatalf("state dim %d, want providers+4", len(st))
	}
	for i, v := range st {
		if math.IsNaN(v) || math.Abs(v) > 10 {
			t.Errorf("state[%d] = %g badly scaled", i, v)
		}
	}
}
