package splitter

import (
	"fmt"

	"distredge/internal/sim"
	"distredge/internal/strategy"
)

// This file provides the re-planners churn recovery plugs into
// sim.ChurnStream and runtime Options.Replan. Two quality/latency points:
//
//   - BalancedReplan: per-volume profile-guided balanced cuts over the
//     alive providers (the warm-start heuristic of OSDS, hill-climbed on
//     the true per-part compute latency). No training — milliseconds, and
//     deterministic. This is the runtime's default: re-planning happens on
//     the serving path, where a dead provider is already stalling images.
//
//   - SearchReplan: full OSDS (DDPG) search over the survivor fleet,
//     warm-started from the old strategy projected onto the survivors.
//     Seconds of controller time; for offline what-if analysis and for
//     callers that can afford planning-grade quality mid-run.

// BalancedSubset builds a strategy over the given boundaries that splits
// every volume across the alive providers proportionally to their measured
// speed (then hill-climbs the cut points on true per-part latency). Dead
// providers get empty parts.
func BalancedSubset(env *sim.Env, boundaries []int, alive []bool) (*strategy.Strategy, error) {
	n := env.NumProviders()
	if len(alive) != n {
		return nil, fmt.Errorf("splitter: alive mask has %d entries for %d providers", len(alive), n)
	}
	if strategy.CountAlive(alive) == 0 {
		return nil, fmt.Errorf("splitter: no alive providers to re-plan over")
	}
	s := &strategy.Strategy{Boundaries: append([]int(nil), boundaries...)}
	for v := 0; v+1 < len(boundaries); v++ {
		layers := strategy.Volume(env.Model, boundaries, v)
		h := layers[len(layers)-1].OutHeight()
		s.Splits = append(s.Splits, balancedCutsSubset(env, layers, h, alive))
	}
	return s, nil
}

// BalancedReplan is the profile-guided sim.ReplanFunc: it keeps the old
// strategy's volume boundaries and re-balances every volume over the alive
// providers.
func BalancedReplan(env *sim.Env, old *strategy.Strategy, alive []bool) (*strategy.Strategy, error) {
	return BalancedSubset(env, old.Boundaries, alive)
}

// StageSubset builds a stage-pipelined strategy over the given boundaries:
// volume v runs entirely on the (v mod live)-th alive provider, so a
// filled admission window pays only the slowest stage per image. Dead
// providers get empty parts.
func StageSubset(env *sim.Env, boundaries []int, alive []bool) (*strategy.Strategy, error) {
	n := env.NumProviders()
	if len(alive) != n {
		return nil, fmt.Errorf("splitter: alive mask has %d entries for %d providers", len(alive), n)
	}
	var liveIdx []int
	for i, a := range alive {
		if a {
			liveIdx = append(liveIdx, i)
		}
	}
	if len(liveIdx) == 0 {
		return nil, fmt.Errorf("splitter: no alive providers to re-plan over")
	}
	s := &strategy.Strategy{Boundaries: append([]int(nil), boundaries...)}
	for v := 0; v+1 < len(boundaries); v++ {
		h := strategy.VolumeHeight(env.Model, boundaries, v)
		s.Splits = append(s.Splits, strategy.AllOnProvider(h, n, liveIdx[v%len(liveIdx)]))
	}
	return s, nil
}

// ObjectiveReplan returns the sim.ReplanFunc recovery uses for the given
// planning objective. The latency default is BalancedReplan unchanged; for
// other objectives the balanced and stage survivor layouts are both built
// and the one scoring better under the objective is served — so a cluster
// that was serving a throughput-optimal plan recovers into a
// throughput-optimal plan, not a latency-optimal one, while re-planning
// stays training-free on the serving path.
func ObjectiveReplan(obj sim.Objective) sim.ReplanFunc {
	if sim.IsLatencyObjective(obj) {
		return BalancedReplan
	}
	return func(env *sim.Env, old *strategy.Strategy, alive []bool) (*strategy.Strategy, error) {
		bal, err := BalancedSubset(env, old.Boundaries, alive)
		if err != nil {
			return nil, err
		}
		stage, err := StageSubset(env, old.Boundaries, alive)
		if err != nil {
			return nil, err
		}
		balScore, err := obj.Score(env, bal, 0)
		if err != nil {
			return nil, err
		}
		stageScore, err := obj.Score(env, stage, 0)
		if err != nil {
			return nil, err
		}
		if stageScore < balScore {
			return stage, nil
		}
		return bal, nil
	}
}

// SearchReplan returns a sim.ReplanFunc that runs OSDS over the survivor
// fleet, warm-started from the old strategy projected onto the survivors,
// and lifts the result back to the full fleet (empty parts for dead
// providers). Fleets with fewer than two survivors fall back to
// BalancedReplan (the DDPG trainer needs a non-trivial action space).
func SearchReplan(cfg Config) sim.ReplanFunc {
	return func(env *sim.Env, old *strategy.Strategy, alive []bool) (*strategy.Strategy, error) {
		if strategy.CountAlive(alive) < 2 {
			return BalancedReplan(env, old, alive)
		}
		sub, _, err := env.Subset(alive)
		if err != nil {
			return nil, err
		}
		proj, err := strategy.Project(env.Model, old, alive)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.InitSplits = proj.Splits
		res, err := Search(sub, old.Boundaries, c)
		if err != nil {
			return nil, err
		}
		return strategy.Lift(env.Model, res.Strategy, alive)
	}
}
