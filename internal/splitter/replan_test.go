package splitter

import (
	"testing"

	"distredge/internal/cnn"
	"distredge/internal/device"
	"distredge/internal/network"
	"distredge/internal/sim"
	"distredge/internal/strategy"
)

func replanEnv(types ...device.Type) *sim.Env {
	devs := device.Fleet(types...)
	net := &network.Network{Requester: network.DefaultLink(network.Constant(200))}
	for range devs {
		net.Providers = append(net.Providers, network.DefaultLink(network.Constant(200)))
	}
	return &sim.Env{Model: cnn.VGG16(), Devices: device.AsModels(devs), Net: net}
}

func equalOld(env *sim.Env, boundaries []int) *strategy.Strategy {
	s := &strategy.Strategy{Boundaries: boundaries}
	for v := 0; v+1 < len(boundaries); v++ {
		h := strategy.VolumeHeight(env.Model, boundaries, v)
		s.Splits = append(s.Splits, strategy.EqualCuts(h, env.NumProviders()))
	}
	return s
}

func TestBalancedReplanExcludesDeadAndUsesJoined(t *testing.T) {
	env := replanEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	old := equalOld(env, []int{0, 10, 14, 18})
	alive := []bool{true, false, true, true}
	s, err := BalancedReplan(env, old, alive)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(env.Model, 4); err != nil {
		t.Fatalf("re-planned strategy invalid: %v", err)
	}
	for v := 0; v < s.NumVolumes(); v++ {
		if r := s.PartRange(env.Model, v, 1); !r.Empty() {
			t.Errorf("volume %d: dead provider 1 still owns %v", v, r)
		}
	}
	// The re-planned strategy must actually execute on the survivors.
	if _, _, err := env.Latency(s, 0); err != nil {
		t.Fatal(err)
	}
	// A rejoined device gets real work even though its projected share was
	// zero — the profile-guided weights ignore history.
	back, err := BalancedReplan(env, s, []bool{true, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	for v := 0; v < back.NumVolumes(); v++ {
		rows += back.PartRange(env.Model, v, 1).Len()
	}
	if rows == 0 {
		t.Error("rejoined provider 1 got no rows from BalancedReplan")
	}
}

func TestBalancedReplanRejectsEmptyFleet(t *testing.T) {
	env := replanEnv(device.Nano, device.Nano)
	old := equalOld(env, []int{0, 18})
	if _, err := BalancedReplan(env, old, []bool{false, false}); err == nil {
		t.Error("empty fleet must error")
	}
	if _, err := BalancedReplan(env, old, []bool{true}); err == nil {
		t.Error("short mask must error")
	}
}

// TestSearchReplanWarmStartsFromOldStrategy: the search-based replanner
// returns a valid full-fleet strategy with empty parts for the dead
// provider, and — because the old strategy seeds the warm schedule — it is
// never worse than the projected old strategy itself.
func TestSearchReplanWarmStartsFromOldStrategy(t *testing.T) {
	env := replanEnv(device.Xavier, device.Nano, device.TX2, device.Nano)
	old := equalOld(env, []int{0, 10, 14, 18})
	alive := []bool{true, true, false, true}
	replan := SearchReplan(Config{Episodes: 12, Hidden: []int{8, 8}, Batch: 8, Seed: 3, WarmStart: true})
	s, err := replan(env, old, alive)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(env.Model, 4); err != nil {
		t.Fatalf("search re-plan invalid: %v", err)
	}
	for v := 0; v < s.NumVolumes(); v++ {
		if r := s.PartRange(env.Model, v, 2); !r.Empty() {
			t.Errorf("volume %d: dead provider 2 owns %v", v, r)
		}
	}
	newLat, _, err := env.Latency(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := strategy.Project(env.Model, old, alive)
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := strategy.Lift(env.Model, proj, alive)
	if err != nil {
		t.Fatal(err)
	}
	oldLat, _, err := env.Latency(lifted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if newLat > oldLat*(1+1e-9) {
		t.Errorf("search re-plan latency %.6g worse than its own warm start %.6g", newLat, oldLat)
	}
}

func TestSearchReplanSingleSurvivorFallsBack(t *testing.T) {
	env := replanEnv(device.Xavier, device.Nano)
	old := equalOld(env, []int{0, 18})
	replan := SearchReplan(Config{Episodes: 8, Hidden: []int{8}, Batch: 8, Seed: 1, WarmStart: true})
	s, err := replan(env, old, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(env.Model, 2); err != nil {
		t.Fatal(err)
	}
	h := strategy.VolumeHeight(env.Model, old.Boundaries, 0)
	if r := s.PartRange(env.Model, 0, 1); r.Len() != h {
		t.Errorf("sole survivor owns %v, want all %d rows", r, h)
	}
}
