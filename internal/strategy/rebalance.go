package strategy

import (
	"fmt"

	"distredge/internal/cnn"
)

// This file holds the pure strategy surgery used by churn recovery: when a
// provider drops out (or rejoins), the old strategy must be mapped onto the
// surviving device set without consulting device profiles — the profile-
// guided and search-based re-planners live in internal/splitter, but both
// runtime and sim need a dependency-free fallback plus the Project/Lift
// pair that moves a strategy between the full fleet and the survivor fleet.

// CountAlive returns the number of true entries in the mask.
func CountAlive(alive []bool) int {
	n := 0
	for _, a := range alive {
		if a {
			n++
		}
	}
	return n
}

// Rebalance redistributes every volume's rows over the alive providers,
// weighting survivors by the share they already held (so a provider the
// planner favoured keeps being favoured) and giving dead providers empty
// parts. Volumes where no survivor held any rows fall back to an equal
// split over the survivors. Boundaries are preserved — this is the cheap,
// profile-free re-plan; see splitter.BalancedReplan for the profile-guided
// one.
func Rebalance(m *cnn.Model, s *Strategy, alive []bool) (*Strategy, error) {
	n := s.NumProviders()
	if len(alive) != n {
		return nil, fmt.Errorf("strategy: rebalance mask has %d entries for %d providers", len(alive), n)
	}
	if CountAlive(alive) == 0 {
		return nil, fmt.Errorf("strategy: rebalance with no alive providers")
	}
	out := &Strategy{Boundaries: append([]int(nil), s.Boundaries...)}
	out.Splits = make([][]int, len(s.Splits))
	for v := range s.Splits {
		h := VolumeHeight(m, s.Boundaries, v)
		weights := make([]float64, n)
		var total float64
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			w := float64(CutRange(s.Splits[v], h, i).Len())
			weights[i] = w
			total += w
		}
		if total <= 0 {
			// Every surviving provider was idle for this volume: split it
			// equally over the survivors.
			for i := 0; i < n; i++ {
				if alive[i] {
					weights[i] = 1
				}
			}
		}
		out.Splits[v] = ProportionalCuts(h, weights)
	}
	return out, nil
}

// Project maps a strategy for the full provider set down to one for just
// the alive providers (in index order): survivor i's share of each volume
// is kept proportionally, dead providers' rows are absorbed. The result has
// CountAlive(alive) providers and is the natural warm-start for re-planning
// over the survivor fleet.
func Project(m *cnn.Model, s *Strategy, alive []bool) (*Strategy, error) {
	n := s.NumProviders()
	if len(alive) != n {
		return nil, fmt.Errorf("strategy: project mask has %d entries for %d providers", len(alive), n)
	}
	k := CountAlive(alive)
	if k == 0 {
		return nil, fmt.Errorf("strategy: project with no alive providers")
	}
	out := &Strategy{Boundaries: append([]int(nil), s.Boundaries...)}
	out.Splits = make([][]int, len(s.Splits))
	for v := range s.Splits {
		h := VolumeHeight(m, s.Boundaries, v)
		weights := make([]float64, 0, k)
		var total float64
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			w := float64(CutRange(s.Splits[v], h, i).Len())
			weights = append(weights, w)
			total += w
		}
		if total <= 0 {
			for i := range weights {
				weights[i] = 1
			}
		}
		out.Splits[v] = ProportionalCuts(h, weights)
	}
	return out, nil
}

// Lift is the inverse of Project: it expands a strategy planned for the
// alive providers back to the full provider set, assigning survivor ranges
// in index order and zero-width (idle) ranges to dead providers.
func Lift(m *cnn.Model, s *Strategy, alive []bool) (*Strategy, error) {
	k := s.NumProviders()
	if CountAlive(alive) != k {
		return nil, fmt.Errorf("strategy: lift mask has %d alive entries for %d providers",
			CountAlive(alive), k)
	}
	n := len(alive)
	out := &Strategy{Boundaries: append([]int(nil), s.Boundaries...)}
	out.Splits = make([][]int, len(s.Splits))
	for v, cuts := range s.Splits {
		h := VolumeHeight(m, s.Boundaries, v)
		full := make([]int, n-1)
		end := 0 // upper bound of the previous provider's lifted range
		si := 0  // survivor ordinal in the compact strategy
		for i := 0; i < n; i++ {
			if alive[i] {
				if si < len(cuts) {
					end = cuts[si]
				} else {
					end = h // last survivor runs to the height sentinel
				}
				si++
			}
			// Dead providers inherit the previous end: a zero-width range.
			if i < n-1 {
				full[i] = end
			}
		}
		out.Splits[v] = full
	}
	return out, nil
}
