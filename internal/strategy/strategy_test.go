package strategy

import (
	"testing"
	"testing/quick"

	"distredge/internal/cnn"
)

func TestCutRangeCoverage(t *testing.T) {
	// Property: for any sorted cuts, the part ranges tile [0,h) exactly.
	f := func(raw [3]uint8, hRaw uint8) bool {
		h := int(hRaw)%200 + 1
		cuts := []int{int(raw[0]) % (h + 1), int(raw[1]) % (h + 1), int(raw[2]) % (h + 1)}
		if cuts[1] < cuts[0] {
			cuts[0], cuts[1] = cuts[1], cuts[0]
		}
		if cuts[2] < cuts[1] {
			cuts[1], cuts[2] = cuts[2], cuts[1]
		}
		if cuts[1] < cuts[0] {
			cuts[0], cuts[1] = cuts[1], cuts[0]
		}
		total := 0
		prevHi := 0
		for i := 0; i < 4; i++ {
			r := CutRange(cuts, h, i)
			if r.Lo != prevHi {
				return false
			}
			prevHi = r.Hi
			total += r.Len()
		}
		return total == h && prevHi == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEqualCuts(t *testing.T) {
	cuts := EqualCuts(100, 4)
	want := []int{25, 50, 75}
	for i, c := range cuts {
		if c != want[i] {
			t.Fatalf("EqualCuts = %v, want %v", cuts, want)
		}
	}
	if len(EqualCuts(7, 1)) != 0 {
		t.Error("single provider needs no cuts")
	}
	// Parts must differ by at most 1 row.
	h, n := 13, 4
	cuts = EqualCuts(h, n)
	for i := 0; i < n; i++ {
		l := CutRange(cuts, h, i).Len()
		if l < h/n || l > h/n+1 {
			t.Errorf("equal part %d has %d rows of %d", i, l, h)
		}
	}
}

func TestProportionalCuts(t *testing.T) {
	cuts := ProportionalCuts(100, []float64{1, 1, 2})
	if r := CutRange(cuts, 100, 2); r.Len() != 50 {
		t.Errorf("weight-2 part got %d rows, want 50", r.Len())
	}
	// Zero-weight providers get nothing.
	cuts = ProportionalCuts(100, []float64{0, 1})
	if r := CutRange(cuts, 100, 0); !r.Empty() {
		t.Errorf("zero-weight part got %v", r)
	}
	// All-zero weights: everything lands on provider 0.
	cuts = ProportionalCuts(100, []float64{0, 0, 0})
	if r := CutRange(cuts, 100, 0); r.Len() != 100 {
		t.Errorf("degenerate weights: provider 0 got %d rows", r.Len())
	}
	// Negative weights are treated as zero.
	cuts = ProportionalCuts(100, []float64{-5, 1})
	if r := CutRange(cuts, 100, 0); !r.Empty() {
		t.Errorf("negative-weight part got %v", r)
	}
}

func TestProportionalCutsMonotone(t *testing.T) {
	f := func(a, b, c, d uint8, hRaw uint16) bool {
		h := int(hRaw)%300 + 1
		w := []float64{float64(a), float64(b), float64(c), float64(d)}
		cuts := ProportionalCuts(h, w)
		prev := 0
		for _, x := range cuts {
			if x < prev || x > h {
				return false
			}
			prev = x
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAllOnProvider(t *testing.T) {
	h, n := 50, 4
	for p := 0; p < n; p++ {
		cuts := AllOnProvider(h, n, p)
		for i := 0; i < n; i++ {
			r := CutRange(cuts, h, i)
			if i == p && r.Len() != h {
				t.Errorf("provider %d should own all rows, got %v", p, r)
			}
			if i != p && !r.Empty() {
				t.Errorf("provider %d should be empty, got %v", i, r)
			}
		}
	}
}

func TestPartitionHelpers(t *testing.T) {
	m := cnn.VGG16()
	lbl := LayerByLayer(m)
	if len(lbl) != m.NumSplittable()+1 {
		t.Errorf("LayerByLayer has %d boundaries", len(lbl))
	}
	sv := SingleVolume(m)
	if len(sv) != 2 || sv[1] != m.NumSplittable() {
		t.Errorf("SingleVolume = %v", sv)
	}
	pb := PoolBoundaries(m)
	// VGG-16 has 5 pools; the last pool is the final layer, so 4 interior
	// boundaries + the two ends.
	if len(pb) != 6 {
		t.Errorf("PoolBoundaries = %v, want 6 entries", pb)
	}
	if pb[0] != 0 || pb[len(pb)-1] != m.NumSplittable() {
		t.Errorf("PoolBoundaries must span the model: %v", pb)
	}
}

func validStrategy(m *cnn.Model, providers int) *Strategy {
	b := PoolBoundaries(m)
	s := &Strategy{Boundaries: b}
	for v := 0; v < len(b)-1; v++ {
		h := VolumeHeight(m, b, v)
		s.Splits = append(s.Splits, EqualCuts(h, providers))
	}
	return s
}

func TestValidateAccepts(t *testing.T) {
	m := cnn.VGG16()
	s := validStrategy(m, 4)
	if err := s.Validate(m, 4); err != nil {
		t.Fatalf("valid strategy rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	m := cnn.VGG16()
	n := m.NumSplittable()
	cases := []*Strategy{
		{Boundaries: []int{0}},                                     // too few boundaries
		{Boundaries: []int{1, n}, Splits: [][]int{{1, 2, 3}}},      // must start at 0
		{Boundaries: []int{0, n - 1}, Splits: [][]int{{1, 2, 3}}},  // must end at n
		{Boundaries: []int{0, 5, 5, n}, Splits: make([][]int, 3)},  // empty volume
		{Boundaries: []int{0, 9, 5, n}, Splits: make([][]int, 3)},  // unsorted
		{Boundaries: []int{0, n}, Splits: [][]int{}},               // missing splits
		{Boundaries: []int{0, n}, Splits: [][]int{{1, 2}}},         // wrong cut count
		{Boundaries: []int{0, n}, Splits: [][]int{{3, 2, 5}}},      // unsorted cuts
		{Boundaries: []int{0, n}, Splits: [][]int{{1, 2, 10_000}}}, // cut beyond H
	}
	for i, s := range cases {
		if err := s.Validate(m, 4); err == nil {
			t.Errorf("case %d: invalid strategy accepted: %+v", i, s)
		}
	}
}

func TestClone(t *testing.T) {
	m := cnn.VGG16()
	s := validStrategy(m, 4)
	c := s.Clone()
	c.Boundaries[0] = 99
	c.Splits[0][0] = 99
	if s.Boundaries[0] == 99 || s.Splits[0][0] == 99 {
		t.Error("Clone must deep-copy")
	}
}

func TestNumProviders(t *testing.T) {
	m := cnn.VGG16()
	s := validStrategy(m, 4)
	if s.NumProviders() != 4 {
		t.Errorf("NumProviders = %d, want 4", s.NumProviders())
	}
	if (&Strategy{}).NumProviders() != 0 {
		t.Error("empty strategy has no providers")
	}
}

func TestPartRange(t *testing.T) {
	m := cnn.VGG16()
	s := validStrategy(m, 4)
	for v := 0; v < s.NumVolumes(); v++ {
		total := 0
		for i := 0; i < 4; i++ {
			total += s.PartRange(m, v, i).Len()
		}
		if total != VolumeHeight(m, s.Boundaries, v) {
			t.Errorf("volume %d parts do not tile the height", v)
		}
	}
}
