package strategy

import (
	"testing"

	"distredge/internal/cnn"
)

func fourProviderStrategy(m *cnn.Model) *Strategy {
	b := PoolBoundaries(m)
	s := &Strategy{Boundaries: b}
	for v := 0; v+1 < len(b); v++ {
		h := VolumeHeight(m, b, v)
		s.Splits = append(s.Splits, ProportionalCuts(h, []float64{4, 3, 2, 1}))
	}
	return s
}

func TestRebalanceGivesDeadProvidersNothing(t *testing.T) {
	m := cnn.VGG16()
	s := fourProviderStrategy(m)
	alive := []bool{true, false, true, true}
	out, err := Rebalance(m, s, alive)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(m, 4); err != nil {
		t.Fatalf("rebalanced strategy invalid: %v", err)
	}
	for v := 0; v < out.NumVolumes(); v++ {
		h := VolumeHeight(m, out.Boundaries, v)
		covered := 0
		for i := 0; i < 4; i++ {
			r := out.PartRange(m, v, i)
			if !alive[i] && !r.Empty() {
				t.Errorf("volume %d: dead provider %d still owns rows %v", v, i, r)
			}
			covered += r.Len()
		}
		if covered != h {
			t.Errorf("volume %d: %d rows covered, want %d", v, covered, h)
		}
	}
}

func TestRebalanceKeepsSurvivorProportions(t *testing.T) {
	m := cnn.VGG16()
	s := fourProviderStrategy(m)
	out, err := Rebalance(m, s, []bool{true, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	// Survivor 0 held the largest share before; it must still hold the
	// largest share after redistribution.
	r0 := out.PartRange(m, 0, 0).Len()
	for i := 1; i < 3; i++ {
		if ri := out.PartRange(m, 0, i).Len(); ri > r0 {
			t.Errorf("survivor %d got %d rows, more than the previously largest survivor's %d", i, ri, r0)
		}
	}
}

func TestRebalanceAllDeadVolumeFallsBackToEqual(t *testing.T) {
	m := cnn.VGG16()
	b := SingleVolume(m)
	h := VolumeHeight(m, b, 0)
	// Everything on provider 0, then provider 0 dies: survivors held zero
	// rows, so the fallback must still cover the volume.
	s := &Strategy{Boundaries: b, Splits: [][]int{AllOnProvider(h, 3, 0)}}
	out, err := Rebalance(m, s, []bool{false, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(m, 3); err != nil {
		t.Fatal(err)
	}
	if r := out.PartRange(m, 0, 0); !r.Empty() {
		t.Errorf("dead provider still owns %v", r)
	}
	if got := out.PartRange(m, 0, 1).Len() + out.PartRange(m, 0, 2).Len(); got != h {
		t.Errorf("survivors cover %d rows, want %d", got, h)
	}
}

func TestRebalanceRejectsBadMask(t *testing.T) {
	m := cnn.VGG16()
	s := fourProviderStrategy(m)
	if _, err := Rebalance(m, s, []bool{true, true}); err == nil {
		t.Error("short mask must error")
	}
	if _, err := Rebalance(m, s, []bool{false, false, false, false}); err == nil {
		t.Error("empty fleet must error")
	}
}

func TestProjectLiftRoundTrip(t *testing.T) {
	m := cnn.VGG16()
	s := fourProviderStrategy(m)
	alive := []bool{true, false, true, false}
	proj, err := Project(m, s, alive)
	if err != nil {
		t.Fatal(err)
	}
	if got := proj.NumProviders(); got != 2 {
		t.Fatalf("projected providers = %d, want 2", got)
	}
	if err := proj.Validate(m, 2); err != nil {
		t.Fatalf("projected strategy invalid: %v", err)
	}
	lifted, err := Lift(m, proj, alive)
	if err != nil {
		t.Fatal(err)
	}
	if err := lifted.Validate(m, 4); err != nil {
		t.Fatalf("lifted strategy invalid: %v", err)
	}
	for v := 0; v < lifted.NumVolumes(); v++ {
		si := 0
		for i := 0; i < 4; i++ {
			r := lifted.PartRange(m, v, i)
			if !alive[i] {
				if !r.Empty() {
					t.Errorf("volume %d: dead provider %d owns %v", v, i, r)
				}
				continue
			}
			if want := proj.PartRange(m, v, si); r.Len() != want.Len() {
				t.Errorf("volume %d survivor %d: %d rows, want %d", v, i, r.Len(), want.Len())
			}
			si++
		}
	}
}

func TestLiftTrailingDeadProviders(t *testing.T) {
	m := cnn.VGG16()
	b := SingleVolume(m)
	h := VolumeHeight(m, b, 0)
	compact := &Strategy{Boundaries: b, Splits: [][]int{EqualCuts(h, 2)}}
	// Providers 2 and 3 are dead: their lifted ranges must be empty at the
	// height sentinel, not dangling mid-volume.
	lifted, err := Lift(m, compact, []bool{true, true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if err := lifted.Validate(m, 4); err != nil {
		t.Fatal(err)
	}
	if r := lifted.PartRange(m, 0, 1); r.Hi != h {
		t.Errorf("last survivor ends at %d, want %d", r.Hi, h)
	}
	for i := 2; i < 4; i++ {
		if r := lifted.PartRange(m, 0, i); !r.Empty() {
			t.Errorf("dead provider %d owns %v", i, r)
		}
	}
}

func TestLiftRejectsMismatchedMask(t *testing.T) {
	m := cnn.VGG16()
	b := SingleVolume(m)
	h := VolumeHeight(m, b, 0)
	compact := &Strategy{Boundaries: b, Splits: [][]int{EqualCuts(h, 2)}}
	if _, err := Lift(m, compact, []bool{true, false, false}); err == nil {
		t.Error("mask with wrong alive count must error")
	}
}
