package strategy

import (
	"testing"

	"distredge/internal/cnn"
)

// decodeStrategy deterministically expands raw fuzz bytes into a candidate
// strategy plus provider count. No validity is enforced — the whole point is
// to feed CompileGeometry adversarial cut points and volume boundaries.
func decodeStrategy(m *cnn.Model, data []byte) (*Strategy, int) {
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		v := int(int8(data[0])) // signed on purpose: negatives must be handled
		data = data[1:]
		return v
	}
	providers := next()%6 + 1
	if providers < 1 {
		providers = -providers + 1
	}
	nb := next()%6 + 2
	if nb < 2 {
		nb = -nb + 2
	}
	s := &Strategy{Boundaries: make([]int, nb)}
	for i := range s.Boundaries {
		s.Boundaries[i] = next()
	}
	nv := next() % 8
	if nv < 0 {
		nv = -nv
	}
	s.Splits = make([][]int, nv)
	for v := range s.Splits {
		cuts := make([]int, providers-1)
		for j := range cuts {
			cuts[j] = next() * 3 // overshoot heights on purpose
		}
		s.Splits[v] = cuts
	}
	return s, providers
}

// FuzzCompileGeometry asserts the compile-time contract churn recovery
// leans on: for ANY input — adversarial cut points, unsorted or
// out-of-range volume boundaries, mismatched split counts — either
// Validate rejects the strategy or CompileGeometry succeeds. A panic
// (index out of range on a hostile boundary) is the failure mode.
func FuzzCompileGeometry(f *testing.F) {
	f.Add([]byte{4, 3, 0, 5, 18, 2, 10, 20, 30})
	f.Add([]byte{2, 2, 0, 18, 1, 0})
	f.Add([]byte{1, 2, 0, 18, 1})                      // single provider: zero-length cut lists
	f.Add([]byte{4, 4, 0, 0, 9, 18, 3, 1, 2, 3, 4, 5}) // empty volume
	f.Add([]byte{3, 3, 0, 200, 18, 2, 120, 110})       // out-of-range boundary, unsorted cuts
	f.Add([]byte{5, 2, 0, 18, 1, 127, 128, 255, 0})

	m := cnn.VGG16()
	f.Fuzz(func(t *testing.T, data []byte) {
		s, providers := decodeStrategy(m, data)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic with boundaries=%v splits=%v providers=%d: %v",
					s.Boundaries, s.Splits, providers, r)
			}
		}()
		geo, err := CompileGeometry(m, s, providers)
		if err != nil {
			return // rejected: fine
		}
		// Compiled geometry must be internally consistent: parts partition
		// [0, Height) in provider order.
		for v, g := range geo {
			pos := 0
			for i, part := range g.Parts {
				if part.Empty() {
					continue
				}
				if part.Lo < pos || part.Hi > g.Height {
					t.Fatalf("volume %d provider %d: part %v escapes [0,%d) (pos %d)",
						v, i, part, g.Height, pos)
				}
				pos = part.Hi
			}
		}
	})
}
