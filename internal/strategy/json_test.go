package strategy

import (
	"strings"
	"testing"

	"distredge/internal/cnn"
)

func TestJSONRoundTrip(t *testing.T) {
	m := cnn.VGG16()
	s := validStrategy(m, 4)
	data, err := MarshalJSON(s, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 1`) {
		t.Errorf("missing version: %s", data)
	}
	back, err := UnmarshalJSON(data, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Boundaries) != len(s.Boundaries) {
		t.Fatalf("boundaries lost: %v vs %v", back.Boundaries, s.Boundaries)
	}
	for v := range s.Splits {
		for i := range s.Splits[v] {
			if back.Splits[v][i] != s.Splits[v][i] {
				t.Fatal("splits corrupted in round trip")
			}
		}
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	m := cnn.VGG16()
	cases := map[string]string{
		"garbage":       "{not json",
		"wrong version": `{"version": 99, "boundaries": [0, 18], "splits": [[1,2,3]]}`,
		"wrong model":   `{"version": 1, "model": "resnet50", "boundaries": [0, 18], "splits": [[1,2,3]]}`,
		"invalid plan":  `{"version": 1, "boundaries": [0, 999], "splits": [[1,2,3]]}`,
	}
	for name, data := range cases {
		if _, err := UnmarshalJSON([]byte(data), m, 4); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := MarshalJSON(nil, "x"); err == nil {
		t.Error("nil strategy must error")
	}
}

func TestJSONWrongProviderCount(t *testing.T) {
	m := cnn.VGG16()
	s := validStrategy(m, 4)
	data, err := MarshalJSON(s, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalJSON(data, m, 8); err == nil {
		t.Error("provider-count mismatch must be rejected")
	}
}
