package strategy

import (
	"encoding/json"
	"fmt"

	"distredge/internal/cnn"
)

// fileFormat is the on-disk representation of a strategy, versioned so
// saved plans stay loadable.
type fileFormat struct {
	Version    int     `json:"version"`
	Model      string  `json:"model,omitempty"`
	Boundaries []int   `json:"boundaries"`
	Splits     [][]int `json:"splits"`
}

// currentVersion of the strategy file format.
const currentVersion = 1

// MarshalJSON renders the strategy (with an optional model name for
// provenance) as a stable, versioned JSON document.
func MarshalJSON(s *Strategy, modelName string) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("strategy: nil strategy")
	}
	return json.MarshalIndent(fileFormat{
		Version:    currentVersion,
		Model:      modelName,
		Boundaries: s.Boundaries,
		Splits:     s.Splits,
	}, "", "  ")
}

// UnmarshalJSON parses a strategy document and validates it against the
// model and provider count it will run on.
func UnmarshalJSON(data []byte, m *cnn.Model, providers int) (*Strategy, error) {
	var f fileFormat
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("strategy: %w", err)
	}
	if f.Version != currentVersion {
		return nil, fmt.Errorf("strategy: unsupported file version %d", f.Version)
	}
	s := &Strategy{Boundaries: f.Boundaries, Splits: f.Splits}
	if err := s.Validate(m, providers); err != nil {
		return nil, err
	}
	if f.Model != "" && f.Model != m.Name {
		return nil, fmt.Errorf("strategy: plan was saved for model %q, not %q", f.Model, m.Name)
	}
	return s, nil
}
