// Package strategy defines CNN inference distribution strategies: the
// horizontal partition of a model into layer-volumes and the vertical split
// of each layer-volume into split-parts allocated to service providers
// (terms from Section III-A of the DistrEdge paper).
package strategy

import (
	"fmt"
	"sort"

	"distredge/internal/cnn"
)

// Strategy is a complete distribution strategy.
//
// Boundaries is the partition scheme: ascending layer indices with
// Boundaries[0] == 0 and Boundaries[len-1] == the number of splittable
// layers; volume v spans layers [Boundaries[v], Boundaries[v+1]).
//
// Splits holds one split decision per volume: the cut points
// (x_1 ... x_{|D|-1}) on the height dimension of the volume's last layer
// (Eq. 6). Provider i computes output rows [x_{i-1}, x_i) with x_0 = 0 and
// x_{|D|} = H. Cut points are sorted; empty parts (x_{i-1} == x_i) are legal
// and mean the provider is idle for that volume (Section VI-(2)).
type Strategy struct {
	Boundaries []int
	Splits     [][]int
}

// NumVolumes returns the number of layer-volumes in the strategy.
func (s *Strategy) NumVolumes() int { return len(s.Boundaries) - 1 }

// Volume returns the layers of volume v of the model.
func Volume(m *cnn.Model, boundaries []int, v int) []cnn.Layer {
	return m.SplittableLayers()[boundaries[v]:boundaries[v+1]]
}

// VolumeHeight returns the output height of the last layer of volume v.
func VolumeHeight(m *cnn.Model, boundaries []int, v int) int {
	layers := Volume(m, boundaries, v)
	return layers[len(layers)-1].OutHeight()
}

// PartRange returns the output rows provider i computes in volume v.
func (s *Strategy) PartRange(m *cnn.Model, v, i int) cnn.RowRange {
	h := VolumeHeight(m, s.Boundaries, v)
	return CutRange(s.Splits[v], h, i)
}

// CutRange converts cut points into provider i's row range on a height-h
// layer: [cuts[i-1], cuts[i]) with the implicit 0 and h sentinels.
func CutRange(cuts []int, h, i int) cnn.RowRange {
	lo := 0
	if i > 0 {
		lo = cuts[i-1]
	}
	hi := h
	if i < len(cuts) {
		hi = cuts[i]
	}
	return cnn.RowRange{Lo: lo, Hi: hi}
}

// NumProviders returns the provider count implied by the split decisions.
func (s *Strategy) NumProviders() int {
	if len(s.Splits) == 0 {
		return 0
	}
	return len(s.Splits[0]) + 1
}

// Validate checks the strategy against a model and provider count.
func (s *Strategy) Validate(m *cnn.Model, providers int) error {
	n := m.NumSplittable()
	if len(s.Boundaries) < 2 {
		return fmt.Errorf("strategy: need at least 2 boundaries, got %d", len(s.Boundaries))
	}
	if s.Boundaries[0] != 0 || s.Boundaries[len(s.Boundaries)-1] != n {
		return fmt.Errorf("strategy: boundaries must span [0,%d], got %v", n, s.Boundaries)
	}
	if !sort.IntsAreSorted(s.Boundaries) {
		return fmt.Errorf("strategy: boundaries not sorted: %v", s.Boundaries)
	}
	for i := 1; i < len(s.Boundaries); i++ {
		if s.Boundaries[i] == s.Boundaries[i-1] {
			return fmt.Errorf("strategy: empty volume at boundary %d", s.Boundaries[i])
		}
	}
	if len(s.Splits) != s.NumVolumes() {
		return fmt.Errorf("strategy: %d split decisions for %d volumes", len(s.Splits), s.NumVolumes())
	}
	for v, cuts := range s.Splits {
		if len(cuts) != providers-1 {
			return fmt.Errorf("strategy: volume %d has %d cuts, want %d", v, len(cuts), providers-1)
		}
		h := VolumeHeight(m, s.Boundaries, v)
		prev := 0
		for j, c := range cuts {
			if c < prev || c > h {
				return fmt.Errorf("strategy: volume %d cut %d = %d out of order or range [0,%d]", v, j, c, h)
			}
			prev = c
		}
	}
	return nil
}

// Clone returns a deep copy of the strategy.
func (s *Strategy) Clone() *Strategy {
	c := &Strategy{Boundaries: append([]int(nil), s.Boundaries...)}
	c.Splits = make([][]int, len(s.Splits))
	for i, cuts := range s.Splits {
		c.Splits[i] = append([]int(nil), cuts...)
	}
	return c
}

// LayerByLayer returns the partition scheme that makes every splittable
// layer its own volume (CoEdge/MoDNN/MeDNN style).
func LayerByLayer(m *cnn.Model) []int {
	n := m.NumSplittable()
	b := make([]int, n+1)
	for i := range b {
		b[i] = i
	}
	return b
}

// SingleVolume returns the partition scheme with one volume spanning all
// splittable layers (DeepThings style).
func SingleVolume(m *cnn.Model) []int { return []int{0, m.NumSplittable()} }

// PoolBoundaries returns the partition scheme that cuts after each
// max-pooling layer (the natural fused-block boundaries DeeperThings-style
// methods use).
func PoolBoundaries(m *cnn.Model) []int {
	b := []int{0}
	layers := m.SplittableLayers()
	for i, l := range layers {
		if l.Kind == cnn.MaxPool && i+1 < len(layers) {
			b = append(b, i+1)
		}
	}
	if b[len(b)-1] != len(layers) {
		b = append(b, len(layers))
	}
	return b
}

// EqualCuts returns cut points dividing height h into n (nearly) equal
// parts — the equal-split of DeepThings/DeeperThings.
func EqualCuts(h, n int) []int {
	cuts := make([]int, n-1)
	for i := 1; i < n; i++ {
		cuts[i-1] = i * h / n
	}
	return cuts
}

// ProportionalCuts returns cut points dividing height h proportionally to
// the given nonnegative weights (the linear-ratio split of CoEdge, MoDNN,
// MeDNN, AOFL). Weights summing to zero yield everything on provider 0.
func ProportionalCuts(h int, weights []float64) []int {
	n := len(weights)
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	cuts := make([]int, n-1)
	if total <= 0 {
		for i := range cuts {
			cuts[i] = h
		}
		return cuts
	}
	var acc float64
	for i := 0; i < n-1; i++ {
		w := weights[i]
		if w < 0 {
			w = 0
		}
		acc += w
		cuts[i] = int(float64(h)*acc/total + 0.5)
		if i > 0 && cuts[i] < cuts[i-1] {
			cuts[i] = cuts[i-1]
		}
		if cuts[i] > h {
			cuts[i] = h
		}
	}
	return cuts
}

// AllOnProvider returns cut points assigning every row of a height-h layer
// to the single given provider (the Offload baseline).
func AllOnProvider(h, n, provider int) []int {
	cuts := make([]int, n-1)
	for i := range cuts {
		if i < provider {
			cuts[i] = 0
		} else {
			cuts[i] = h
		}
	}
	return cuts
}
