package strategy

import (
	"distredge/internal/cnn"
)

// VolumeGeometry is the fully resolved geometry of one layer-volume under a
// fixed strategy: everything the simulator used to re-derive per image
// (layer slices, output height, row byte widths, per-provider output row
// ranges and VSL halo input ranges), computed once at compile time.
type VolumeGeometry struct {
	Layers     []cnn.Layer
	Height     int     // output height of the volume's last layer
	InRowBytes float64 // bytes per input row of the volume's first layer
	Parts      []cnn.RowRange
	Inputs     []cnn.RowRange // halo input rows per provider; zero when Parts[i] is empty
}

// CompileGeometry validates the strategy once and precomputes the geometry
// of every layer-volume for the given provider count. The result depends
// only on the model and the strategy, so it can be shared by any simulator
// or runtime executing the same plan.
func CompileGeometry(m *cnn.Model, s *Strategy, providers int) ([]VolumeGeometry, error) {
	if err := s.Validate(m, providers); err != nil {
		return nil, err
	}
	vols := make([]VolumeGeometry, s.NumVolumes())
	for v := range vols {
		layers := Volume(m, s.Boundaries, v)
		h := layers[len(layers)-1].OutHeight()
		g := VolumeGeometry{
			Layers:     layers,
			Height:     h,
			InRowBytes: layers[0].InRowBytes(),
			Parts:      make([]cnn.RowRange, providers),
			Inputs:     make([]cnn.RowRange, providers),
		}
		for i := 0; i < providers; i++ {
			part := CutRange(s.Splits[v], h, i)
			g.Parts[i] = part
			if !part.Empty() {
				g.Inputs[i] = cnn.VolumeInputRows(layers, part)
			}
		}
		vols[v] = g
	}
	return vols, nil
}
