package transport

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"distredge/internal/network"
)

func testMessage(payload int) Message {
	m := Message{Image: 7, Volume: 3, Lo: 10, Hi: 42}
	if payload > 0 {
		m.Payload = make([]byte, payload)
		for i := range m.Payload {
			m.Payload[i] = byte(i)
		}
	}
	return m
}

func sameMessage(a, b Message) bool {
	return a.Image == b.Image && a.Volume == b.Volume && a.Lo == b.Lo && a.Hi == b.Hi &&
		bytes.Equal(a.Payload, b.Payload)
}

// TestCodecRoundtrip checks both codecs reproduce data chunks, empty
// payloads and control messages through one stateful stream.
func TestCodecRoundtrip(t *testing.T) {
	for _, codec := range []Codec{Gob(), Binary()} {
		t.Run(codec.Name(), func(t *testing.T) {
			var buf bytes.Buffer
			enc := codec.NewEncoder(&buf)
			dec := codec.NewDecoder(&buf)
			msgs := []Message{
				testMessage(1024),
				testMessage(0),
				{Image: 2, Volume: VolHeartbeat, Lo: 5}, // heartbeat-shaped control message
				{Image: 9, Volume: VolInput, Lo: 0, Hi: 3, Payload: []byte{1, 2, 3}},
			}
			for _, want := range msgs {
				if err := enc.Encode(&want); err != nil {
					t.Fatalf("encode: %v", err)
				}
				var got Message
				if err := dec.Decode(&got); err != nil {
					t.Fatalf("decode: %v", err)
				}
				if !sameMessage(want, got) {
					t.Fatalf("roundtrip mismatch: sent %+v got %+v", want, got)
				}
			}
		})
	}
}

// TestBinaryCodecRejectsGarbage checks the binary decoder fails cleanly on
// an unknown tag instead of misframing the stream.
func TestBinaryCodecRejectsGarbage(t *testing.T) {
	dec := Binary().NewDecoder(bytes.NewReader([]byte{0xff, 1, 2, 3}))
	var m Message
	if err := dec.Decode(&m); err == nil || !strings.Contains(err.Error(), "unknown frame tag") {
		t.Fatalf("garbage tag decoded: %v", err)
	}
}

// TestTransportRoundtrip exercises listen/dial/send/recv and close
// semantics uniformly over the tcp (both codecs) and inproc transports.
func TestTransportRoundtrip(t *testing.T) {
	transports := map[string]func() Transport{
		"tcp+binary": func() Transport { return NewTCP(nil) },
		"tcp+gob":    func() Transport { return NewTCP(Gob()) },
		"inproc":     func() Transport { return NewInproc() },
	}
	for name, mk := range transports {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			ln, err := tr.Listen(0)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			acceptedCh := make(chan Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				acceptedCh <- c
			}()
			conn, err := tr.Dial(1, ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			accepted := <-acceptedCh
			defer accepted.Close()

			want := testMessage(4096)
			if err := conn.Send(want); err != nil {
				t.Fatal(err)
			}
			got, err := accepted.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !sameMessage(want, got) {
				t.Fatalf("mismatch: %+v vs %+v", want, got)
			}

			// Concurrent sends on one conn must interleave whole frames.
			const senders, each = 8, 25
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < each; i++ {
						if err := conn.Send(testMessage(512)); err != nil {
							t.Errorf("concurrent send: %v", err)
							return
						}
					}
				}()
			}
			recvDone := make(chan struct{})
			go func() {
				defer close(recvDone)
				for i := 0; i < senders*each; i++ {
					m, err := accepted.Recv()
					if err != nil {
						t.Errorf("concurrent recv %d: %v", i, err)
						return
					}
					if len(m.Payload) != 512 {
						t.Errorf("frame torn: payload %d", len(m.Payload))
						return
					}
				}
			}()
			wg.Wait()
			select {
			case <-recvDone:
			case <-time.After(10 * time.Second):
				t.Fatal("receiver did not drain the concurrent sends")
			}
		})
	}
}

// TestListenerCloseKillsAcceptedConns checks the "process death" semantics
// both endpoints rely on for failure detection: after the listener closes,
// peers' sends fail rather than disappearing into a half-open connection,
// and fresh dials are refused.
func TestListenerCloseKillsAcceptedConns(t *testing.T) {
	for name, mk := range map[string]func() Transport{
		"tcp":    func() Transport { return NewTCP(nil) },
		"inproc": func() Transport { return NewInproc() },
	} {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			ln, err := tr.Listen(0)
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				for {
					if _, err := ln.Accept(); err != nil {
						return
					}
				}
			}()
			conn, err := tr.Dial(1, ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if err := conn.Send(testMessage(16)); err != nil {
				t.Fatalf("send before close: %v", err)
			}
			addr := ln.Addr()
			ln.Close()

			// The send failure may take a few round trips to surface on a
			// real socket (buffers absorb the first writes); it must
			// surface well before any heartbeat timeout would.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if err := conn.Send(testMessage(16)); err != nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("sends to a closed listener's conn keep succeeding")
				}
				time.Sleep(time.Millisecond)
			}
			if _, err := tr.Dial(1, addr); err == nil {
				t.Fatal("dial to a closed listener must fail")
			}
		})
	}
}

// TestInprocRecvDrainsBeforeEOF checks in-flight messages are delivered
// after the peer closes, like bytes already on a TCP socket.
func TestInprocRecvDrainsBeforeEOF(t *testing.T) {
	tr := NewInproc()
	ln, err := tr.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptedCh := make(chan Conn, 1)
	go func() {
		c, _ := ln.Accept()
		acceptedCh <- c
	}()
	conn, err := tr.Dial(1, ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	accepted := <-acceptedCh
	if err := conn.Send(testMessage(8)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if m, err := accepted.Recv(); err != nil || len(m.Payload) != 8 {
		t.Fatalf("in-flight message lost: %v %v", m, err)
	}
	if _, err := accepted.Recv(); err == nil {
		t.Fatal("recv after drain must report the closed peer")
	}
	if err := accepted.Send(testMessage(8)); err == nil {
		t.Fatal("send to a closed peer must fail")
	}
}

// TestShapedChargesTraceLatency checks the shaped decorator makes payload
// sends take the trace-modelled wall time while control messages pass free.
func TestShapedChargesTraceLatency(t *testing.T) {
	// 1 Mbps constant, no I/O cost: 12_500 payload bytes = 0.1 model sec.
	net := &network.Network{
		Requester: network.Link{Trace: network.Constant(1)},
		Providers: []network.Link{{Trace: network.Constant(1)}, {Trace: network.Constant(1)}},
	}
	const timeScale = 0.5
	tr := NewShaped(NewInproc(), net, timeScale, 1, 0)
	ln, err := tr.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	conn, err := tr.Dial(Requester, ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	if err := conn.Send(testMessage(12_500)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	want := 0.1 * timeScale // model latency x time scale
	if elapsed < time.Duration(0.8*want*float64(time.Second)) {
		t.Errorf("shaped send took %s, want >= ~%.0fms", elapsed, want*1e3)
	}

	start = time.Now()
	if err := conn.Send(Message{Volume: VolHeartbeat}); err != nil { // heartbeat: free
		t.Fatal(err)
	}
	if e := time.Since(start); e > time.Duration(0.5*want*float64(time.Second)) {
		t.Errorf("control message charged wire time: %s", e)
	}
}

// TestChaosDeterministicDrops checks the same seed yields the same drop
// pattern on a directed connection, and different seeds diverge.
func TestChaosDeterministicDrops(t *testing.T) {
	pattern := func(seed int64) string {
		tr := NewChaos(NewInproc(), ChaosConfig{Seed: seed, Drop: 0.5})
		ln, err := tr.Listen(1)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		acceptedCh := make(chan Conn, 1)
		go func() {
			c, _ := ln.Accept()
			acceptedCh <- c
		}()
		conn, err := tr.Dial(0, ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		accepted := <-acceptedCh

		const n = 64
		for i := 0; i < n; i++ {
			if err := conn.Send(Message{Image: uint32(i), Payload: []byte{1}}); err != nil {
				t.Fatal(err)
			}
		}
		conn.Close()
		var got []byte
		for {
			m, err := accepted.Recv()
			if err != nil {
				break
			}
			got = append(got, byte(m.Image))
		}
		return string(got)
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Fatalf("same seed, different drop patterns: %q vs %q", a, b)
	}
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("drop probability 0.5 delivered %d of 64", len(a))
	}
	if c := pattern(43); c == a {
		t.Error("different seeds produced identical drop patterns")
	}
}

// TestChaosIsolatePartitions checks Isolate fails sends and dials in both
// directions and Heal restores them.
func TestChaosIsolatePartitions(t *testing.T) {
	tr := NewChaos(NewInproc(), ChaosConfig{Seed: 1})
	ln, err := tr.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}()
		}
	}()
	conn, err := tr.Dial(0, ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(testMessage(4)); err != nil {
		t.Fatal(err)
	}
	tr.Isolate(1)
	if err := conn.Send(testMessage(4)); err == nil {
		t.Fatal("send to isolated device must fail")
	}
	if _, err := tr.Dial(0, ln.Addr()); err == nil {
		t.Fatal("dial to isolated device must fail")
	}
	tr.Heal(1)
	if err := conn.Send(testMessage(4)); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
}
