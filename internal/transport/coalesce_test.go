package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"distredge/internal/network"
)

// writeCountConn is a fake net.Conn that records every Write syscall the
// buffered sender would make, so tests can assert how many socket writes a
// burst of sends actually produced.
type writeCountConn struct {
	mu     sync.Mutex
	writes int
	buf    bytes.Buffer
}

func (c *writeCountConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	return c.buf.Write(p)
}

func (c *writeCountConn) writeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

func (c *writeCountConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

func (c *writeCountConn) Read(p []byte) (int, error)         { select {} }
func (c *writeCountConn) Close() error                       { return nil }
func (c *writeCountConn) LocalAddr() net.Addr                { return nil }
func (c *writeCountConn) RemoteAddr() net.Addr               { return nil }
func (c *writeCountConn) SetDeadline(t time.Time) error      { return nil }
func (c *writeCountConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *writeCountConn) SetWriteDeadline(t time.Time) error { return nil }

// sendSideConn builds a tcpConn over the fake socket so flush behaviour is
// observable write by write.
func sendSideConn(t *testing.T, cfg TCPConfig) (*tcpConn, *writeCountConn) {
	t.Helper()
	tr, ok := NewTCPOpts(cfg).(*tcpTransport)
	if !ok {
		t.Fatalf("NewTCPOpts returned %T", NewTCPOpts(cfg))
	}
	fake := &writeCountConn{}
	return newTCPConn(fake, tr), fake
}

// decodeAll decodes every frame in the captured wire bytes.
func decodeAll(t *testing.T, wire []byte) []Message {
	t.Helper()
	dec := Binary().NewDecoder(bytes.NewReader(wire))
	var out []Message
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return out
		}
		out = append(out, m)
	}
}

// TestSendBufferedCoalescesWrites checks the tentpole behaviour: a burst of
// small buffered sends produces zero socket writes until Flush, which ships
// all frames intact in one write.
func TestSendBufferedCoalescesWrites(t *testing.T) {
	conn, fake := sendSideConn(t, TCPConfig{})
	const n = 10
	for i := 0; i < n; i++ {
		m := testMessage(256)
		m.Image = uint32(i)
		if err := conn.SendBuffered(m); err != nil {
			t.Fatalf("SendBuffered %d: %v", i, err)
		}
	}
	if got := fake.writeCount(); got != 0 {
		t.Fatalf("buffered sends hit the socket %d times before Flush", got)
	}
	if err := conn.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := fake.writeCount(); got != 1 {
		t.Fatalf("flush made %d writes, want 1", got)
	}
	msgs := decodeAll(t, fake.bytes())
	if len(msgs) != n {
		t.Fatalf("decoded %d frames, want %d", len(msgs), n)
	}
	for i, m := range msgs {
		want := testMessage(256)
		want.Image = uint32(i)
		if !sameMessage(want, m) {
			t.Fatalf("frame %d corrupted: %+v", i, m)
		}
	}
	// A second Flush with nothing pending must not touch the socket.
	if err := conn.Flush(); err != nil {
		t.Fatalf("idempotent Flush: %v", err)
	}
	if got := fake.writeCount(); got != 1 {
		t.Fatalf("empty Flush wrote (writes=%d)", got)
	}
}

// TestSendBufferedSpillsAtByteThreshold checks a long burst cannot defer
// the wire indefinitely: once coalesceFlushBytes accumulate, the buffered
// path flushes on its own.
func TestSendBufferedSpillsAtByteThreshold(t *testing.T) {
	conn, fake := sendSideConn(t, TCPConfig{BufferBytes: 4 * coalesceFlushBytes})
	msg := testMessage(8 << 10)
	sent := 0
	for fake.writeCount() == 0 {
		if err := conn.SendBuffered(msg); err != nil {
			t.Fatalf("SendBuffered: %v", err)
		}
		sent++
		if sent > 64 {
			t.Fatalf("no spill after %d×%d bytes buffered", sent, len(msg.Payload))
		}
	}
	spillAt := sent * (len(msg.Payload) + chunkHeaderLen)
	if spillAt < coalesceFlushBytes {
		t.Fatalf("spilled after only %d bytes, threshold is %d", spillAt, coalesceFlushBytes)
	}
}

// TestSyncFlushRestoresPerMessageWrites checks the tcp+sync baseline mode:
// every buffered send becomes one socket write, exactly the pre-coalescing
// behaviour the benchmarks compare against.
func TestSyncFlushRestoresPerMessageWrites(t *testing.T) {
	conn, fake := sendSideConn(t, TCPConfig{SyncFlush: true})
	const n = 5
	for i := 0; i < n; i++ {
		if err := conn.SendBuffered(testMessage(128)); err != nil {
			t.Fatalf("SendBuffered: %v", err)
		}
	}
	if got := fake.writeCount(); got != n {
		t.Fatalf("sync mode made %d writes for %d sends", got, n)
	}
}

// TestPlainSendFlushesCoalescedBacklog checks a concurrent plain Send (a
// heartbeat sharing the conn) pushes any frames a coalescing sender left
// buffered — nothing can sit behind a flushed later message.
func TestPlainSendFlushesCoalescedBacklog(t *testing.T) {
	conn, fake := sendSideConn(t, TCPConfig{})
	if err := conn.SendBuffered(testMessage(64)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(Message{Image: 1, Volume: VolHeartbeat}); err != nil {
		t.Fatal(err)
	}
	msgs := decodeAll(t, fake.bytes())
	if len(msgs) != 2 {
		t.Fatalf("plain Send left buffered frame unflushed: %d frames on wire", len(msgs))
	}
}

// TestCoalescerQueueDrainFlush drives the Coalescer the way a runtime
// destSender does: more=true while backlog remains defers everything,
// more=false flushes the whole burst in one write.
func TestCoalescerQueueDrainFlush(t *testing.T) {
	conn, fake := sendSideConn(t, TCPConfig{})
	co := NewCoalescer(conn)
	const n = 6
	for i := 0; i < n-1; i++ {
		if err := co.Send(testMessage(512), true); err != nil {
			t.Fatalf("coalesced send %d: %v", i, err)
		}
	}
	if got := fake.writeCount(); got != 0 {
		t.Fatalf("coalescer flushed with backlog pending (%d writes)", got)
	}
	if err := co.Send(testMessage(512), false); err != nil {
		t.Fatalf("draining send: %v", err)
	}
	if got := fake.writeCount(); got != 1 {
		t.Fatalf("queue drain made %d writes, want 1", got)
	}
	if msgs := decodeAll(t, fake.bytes()); len(msgs) != n {
		t.Fatalf("decoded %d frames, want %d", len(msgs), n)
	}
}

// TestCoalescerMessageCap checks an endless backlog still flushes every
// coalesceMaxMessages sends.
func TestCoalescerMessageCap(t *testing.T) {
	conn, fake := sendSideConn(t, TCPConfig{})
	co := NewCoalescer(conn)
	for i := 0; i < coalesceMaxMessages; i++ {
		if err := co.Send(testMessage(16), true); err != nil {
			t.Fatal(err)
		}
	}
	if got := fake.writeCount(); got != 1 {
		t.Fatalf("message cap produced %d writes, want exactly 1", got)
	}
	// Explicit Flush with an empty batch is a no-op.
	if err := co.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := fake.writeCount(); got != 1 {
		t.Fatalf("empty Coalescer.Flush wrote (writes=%d)", got)
	}
}

// TestCoalescerFallsBackToPlainSend checks conns without BatchConn (inproc)
// deliver immediately through a Coalescer even with more=true — decorated
// and channel transports keep their per-message semantics.
func TestCoalescerFallsBackToPlainSend(t *testing.T) {
	tr := NewInproc()
	ln, err := tr.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptedCh := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptedCh <- c
		}
	}()
	conn, err := tr.Dial(1, ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	accepted := <-acceptedCh
	defer accepted.Close()

	co := NewCoalescer(conn)
	want := testMessage(1024)
	if err := co.Send(want, true); err != nil { // more=true: would defer on tcp
		t.Fatal(err)
	}
	got, err := accepted.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !sameMessage(want, got) {
		t.Fatalf("fallback path corrupted message: %+v", got)
	}
}

// TestBufferHintSizesConns checks SetBufferHint resolution order and
// clamping, and that the decorators forward the hint to the inner tcp
// transport.
func TestBufferHintSizesConns(t *testing.T) {
	tr := NewTCPOpts(TCPConfig{}).(*tcpTransport)
	if got := tr.bufBytes(); got != defaultBufferBytes {
		t.Fatalf("unhinted buffer %d, want default %d", got, defaultBufferBytes)
	}
	tr.SetBufferHint(256 << 10)
	if got := tr.bufBytes(); got != 256<<10+chunkHeaderLen {
		t.Fatalf("hinted buffer %d, want chunk+header %d", got, 256<<10+chunkHeaderLen)
	}
	tr.SetBufferHint(16) // degenerate plan: clamp up
	if got := tr.bufBytes(); got != minBufferBytes {
		t.Fatalf("tiny hint gave %d, want clamp %d", got, minBufferBytes)
	}
	tr.SetBufferHint(64 << 20) // giant chunk: clamp down
	if got := tr.bufBytes(); got != maxBufferBytes {
		t.Fatalf("giant hint gave %d, want clamp %d", got, maxBufferBytes)
	}

	explicit := NewTCPOpts(TCPConfig{BufferBytes: 12345}).(*tcpTransport)
	explicit.SetBufferHint(256 << 10)
	if got := explicit.bufBytes(); got != 12345 {
		t.Fatalf("explicit BufferBytes lost to hint: %d", got)
	}

	// Decorators forward to the inner transport.
	inner := NewTCPOpts(TCPConfig{}).(*tcpTransport)
	testNet := &network.Network{
		Requester: network.Link{Trace: network.Constant(1)},
		Providers: []network.Link{{Trace: network.Constant(1)}},
	}
	shaped := NewShaped(NewChaos(inner, ChaosConfig{}), testNet, 1, 1, 0)
	SetBufferHint(shaped, 100<<10)
	if got := inner.bufBytes(); got != 100<<10+chunkHeaderLen {
		t.Fatalf("decorator chain dropped buffer hint: inner=%d", got)
	}
	// And the helper is a no-op on transports without buffers.
	SetBufferHint(NewInproc(), 1<<20)
}

// TestSizedBufferSingleWritePerChunk checks the satellite bugfix: with the
// buffer hint covering the deployment's max chunk, a payload much larger
// than the old 4 KiB default reaches the socket in one write instead of
// splitting into header-flush + direct-write fragments.
func TestSizedBufferSingleWritePerChunk(t *testing.T) {
	const chunk = 64 << 10

	tr := NewTCPOpts(TCPConfig{}).(*tcpTransport)
	tr.SetBufferHint(chunk)
	fake := &writeCountConn{}
	conn := newTCPConn(fake, tr)
	if err := conn.Send(testMessage(chunk)); err != nil {
		t.Fatal(err)
	}
	if got := fake.writeCount(); got != 1 {
		t.Fatalf("hinted conn made %d writes for one %d-byte chunk, want 1", got, chunk)
	}

	// Counter-check: a buffer smaller than the chunk necessarily splits.
	small := NewTCPOpts(TCPConfig{BufferBytes: 4 << 10}).(*tcpTransport)
	fakeSmall := &writeCountConn{}
	connSmall := newTCPConn(fakeSmall, small)
	if err := connSmall.Send(testMessage(chunk)); err != nil {
		t.Fatal(err)
	}
	if got := fakeSmall.writeCount(); got < 2 {
		t.Fatalf("4 KiB-buffer conn made %d writes for a %d-byte chunk, expected a split", got, chunk)
	}
}
