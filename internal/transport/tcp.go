package transport

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
)

const (
	// defaultBufferBytes sizes a conn's bufio reader/writer when no explicit
	// size and no buffer hint was given. 32 KiB covers the typical activation
	// chunk of the evaluation models; SetBufferHint overrides it per
	// deployment so the largest planned chunk never splits across writes.
	defaultBufferBytes = 32 << 10

	// minBufferBytes / maxBufferBytes clamp hint-derived buffer sizes: a
	// degenerate plan must not shrink buffers below one control frame, and a
	// giant chunk must not pin megabytes per conn times n^2 conns.
	minBufferBytes = 4 << 10
	maxBufferBytes = 1 << 20

	// coalesceFlushBytes is the byte threshold at which a buffered send
	// flushes even though more messages are queued behind it: past this the
	// write is syscall-efficient already, and flushing bounds how much a
	// burst can sit unsent in the bufio buffer.
	coalesceFlushBytes = 64 << 10
)

// TCPConfig parameterises the localhost TCP transport beyond the common
// NewTCP/NewPooledTCP constructors.
type TCPConfig struct {
	Codec Codec // nil = Binary
	Pool  *Pool // nil = no payload pooling

	// SyncFlush restores the pre-coalescing wire behaviour: every send —
	// buffered or not — flushes to the socket before returning, one syscall
	// per message. It exists as the measured baseline for the adaptive
	// flush policy (ParseTransport "tcp+sync", the -fig hotpath baseline
	// rows), not as a serving configuration.
	SyncFlush bool

	// BufferBytes sizes each conn's bufio reader and writer. 0 defers to
	// the deployment's SetBufferHint (and defaultBufferBytes before any
	// hint arrives).
	BufferBytes int
}

// tcpTransport carries messages over localhost TCP sockets — the original
// runtime wire stack, now behind the Transport interface with the codec
// made pluggable, an optional payload pool (nil = plain allocation), and
// adaptive flush coalescing on the buffered send path.
type tcpTransport struct {
	codec Codec
	pool  *Pool
	cfg   TCPConfig
	hint  atomic.Int64 // SetBufferHint: max chunk bytes of the deployment
}

// NewTCP returns the localhost TCP transport using the given codec
// (nil = Binary, the length-prefixed chunk codec; use Gob for the legacy
// wire format). No payload pooling; see NewPooledTCP.
func NewTCP(codec Codec) Transport {
	return NewTCPOpts(TCPConfig{Codec: codec})
}

// NewPooledTCP is NewTCP with payload pooling: sent data payloads are
// recycled once serialised (the socket copy makes them dead the moment
// the send returns), and received payloads are decoded into pooled buffers
// the consumer hands back with PutPayload. pool nil allocates a private
// pool.
func NewPooledTCP(codec Codec, pool *Pool) Transport {
	if pool == nil {
		pool = NewPool()
	}
	return NewTCPOpts(TCPConfig{Codec: codec, Pool: pool})
}

// NewTCPOpts returns a localhost TCP transport with full configuration.
func NewTCPOpts(cfg TCPConfig) Transport {
	if cfg.Codec == nil {
		cfg.Codec = Binary()
	}
	return &tcpTransport{codec: cfg.Codec, pool: cfg.Pool, cfg: cfg}
}

func (t *tcpTransport) Name() string {
	if t.cfg.SyncFlush {
		return "tcp+" + t.codec.Name() + "+sync"
	}
	return "tcp+" + t.codec.Name()
}

// WireCodec exposes the codec frames actually cross the socket in, so a
// wrapping Shaped transport can charge post-codec bytes (quantized or
// compressed sizes) instead of raw payload bytes.
func (t *tcpTransport) WireCodec() Codec { return t.codec }

// GetPayload / PutPayload implement PayloadPool (plain allocation when the
// transport was built without a pool).
func (t *tcpTransport) GetPayload(n int) []byte { return t.pool.Get(n) }
func (t *tcpTransport) PutPayload(b []byte)     { t.pool.Put(b) }

// SetBufferHint implements BufferSizer: conns created after the call size
// their bufio buffers to hold one max-size chunk plus framing, so a full
// chunk reaches the socket in a single write instead of splitting into
// buffer-sized partial writes. An explicit TCPConfig.BufferBytes wins.
func (t *tcpTransport) SetBufferHint(maxChunkBytes int) {
	if maxChunkBytes > 0 {
		t.hint.Store(int64(maxChunkBytes))
	}
}

// bufBytes resolves the conn buffer size: explicit config, then the
// deployment hint (clamped), then the default.
func (t *tcpTransport) bufBytes() int {
	if t.cfg.BufferBytes > 0 {
		return t.cfg.BufferBytes
	}
	if h := t.hint.Load(); h > 0 {
		n := int(h) + chunkHeaderLen
		if n < minBufferBytes {
			n = minBufferBytes
		}
		if n > maxBufferBytes {
			n = maxBufferBytes
		}
		return n
	}
	return defaultBufferBytes
}

func (t *tcpTransport) Listen(self int) (Listener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &tcpListener{ln: ln, t: t}, nil
}

func (t *tcpTransport) Dial(self int, addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c, t), nil
}

// tcpListener tracks accepted connections so Close tears them down with the
// listener: a closed endpoint looks like a dead process to its peers (their
// next send fails) instead of a half-open socket that swallows traffic.
type tcpListener struct {
	ln net.Listener
	t  *tcpTransport

	mu       sync.Mutex
	accepted []*tcpConn // guarded by mu
	closed   bool       // guarded by mu
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	tc := newTCPConn(c, l.t)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		tc.Close()
		return nil, ErrClosed
	}
	l.accepted = append(l.accepted, tc)
	l.mu.Unlock()
	return tc, nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := l.accepted
	l.accepted = nil
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// tcpConn frames messages over one socket. Sends are serialised by a mutex
// (the compute results and heartbeats of one provider share its result
// link). Send flushes before returning so lone messages and errors stay
// synchronous; SendBuffered defers the flush to the caller's Flush (or to
// the coalesceFlushBytes spill threshold), which is how a queue-draining
// sender shares one syscall across a burst of small chunks.
type tcpConn struct {
	c    net.Conn
	pool *Pool
	sync bool // SyncFlush config: SendBuffered flushes too

	sendMu  sync.Mutex
	bw      *bufio.Writer // guarded by sendMu
	enc     Encoder       // guarded by sendMu
	pending bool          // guarded by sendMu; encoded frames await a flush

	recvMu sync.Mutex
	dec    Decoder
}

func newTCPConn(c net.Conn, t *tcpTransport) *tcpConn {
	size := t.bufBytes()
	bw := bufio.NewWriterSize(c, size)
	br := bufio.NewReaderSize(c, size)
	var dec Decoder
	if pc, ok := t.codec.(pooledCodec); ok && t.pool != nil {
		dec = pc.NewPooledDecoder(br, t.pool)
	} else {
		dec = t.codec.NewDecoder(br)
	}
	return &tcpConn{
		c:    c,
		pool: t.pool,
		sync: t.cfg.SyncFlush,
		bw:   bw,
		enc:  t.codec.NewEncoder(bw),
		dec:  dec,
	}
}

func (c *tcpConn) Send(m Message) error {
	// The payload is captured before Encode (codecs may rewrite the
	// message's payload field while framing) and recycled after the
	// encode: by then the bytes live in the bufio buffer or on the socket,
	// so ownership — transferred to the transport by the Send contract —
	// ends here.
	payload := m.Payload
	c.sendMu.Lock()
	err := c.enc.Encode(&m)
	if err == nil {
		err = c.bw.Flush()
		c.pending = false
	}
	c.sendMu.Unlock()
	if c.pool != nil && !m.control() {
		c.pool.Put(payload)
	}
	return err
}

// SendBuffered implements BatchConn: the message is framed into the write
// buffer but only pushed to the socket once the buffer passes the spill
// threshold (or on Flush / a plain Send). An encode error is returned
// immediately; a deferred socket error surfaces on the flushing call.
func (c *tcpConn) SendBuffered(m Message) error {
	payload := m.Payload
	c.sendMu.Lock()
	err := c.enc.Encode(&m)
	if err == nil {
		c.pending = true
		if c.sync || c.bw.Buffered() >= coalesceFlushBytes {
			err = c.bw.Flush()
			c.pending = false
		}
	}
	c.sendMu.Unlock()
	if c.pool != nil && !m.control() {
		c.pool.Put(payload)
	}
	return err
}

// Flush implements BatchConn: any frames SendBuffered left in the write
// buffer go to the socket in one write.
func (c *tcpConn) Flush() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if !c.pending {
		return nil
	}
	c.pending = false
	return c.bw.Flush()
}

func (c *tcpConn) Recv() (Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var m Message
	err := c.dec.Decode(&m)
	return m, err
}

func (c *tcpConn) Close() error { return c.c.Close() }
