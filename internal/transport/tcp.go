package transport

import (
	"bufio"
	"net"
	"sync"
)

// tcpTransport carries messages over localhost TCP sockets — the original
// runtime wire stack, now behind the Transport interface with the codec
// made pluggable and an optional payload pool (nil = plain allocation).
type tcpTransport struct {
	codec Codec
	pool  *Pool
}

// NewTCP returns the localhost TCP transport using the given codec
// (nil = Binary, the length-prefixed chunk codec; use Gob for the legacy
// wire format). No payload pooling; see NewPooledTCP.
func NewTCP(codec Codec) Transport {
	if codec == nil {
		codec = Binary()
	}
	return &tcpTransport{codec: codec}
}

// NewPooledTCP is NewTCP with payload pooling: sent data payloads are
// recycled once serialised (the socket copy makes them dead the moment
// Send returns), and received payloads are decoded into pooled buffers the
// consumer hands back with PutPayload. pool nil allocates a private pool.
func NewPooledTCP(codec Codec, pool *Pool) Transport {
	if codec == nil {
		codec = Binary()
	}
	if pool == nil {
		pool = NewPool()
	}
	return &tcpTransport{codec: codec, pool: pool}
}

func (t *tcpTransport) Name() string { return "tcp+" + t.codec.Name() }

// WireCodec exposes the codec frames actually cross the socket in, so a
// wrapping Shaped transport can charge post-codec bytes (quantized or
// compressed sizes) instead of raw payload bytes.
func (t *tcpTransport) WireCodec() Codec { return t.codec }

// GetPayload / PutPayload implement PayloadPool (plain allocation when the
// transport was built without a pool).
func (t *tcpTransport) GetPayload(n int) []byte { return t.pool.Get(n) }
func (t *tcpTransport) PutPayload(b []byte)     { t.pool.Put(b) }

func (t *tcpTransport) Listen(self int) (Listener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &tcpListener{ln: ln, codec: t.codec, pool: t.pool}, nil
}

func (t *tcpTransport) Dial(self int, addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c, t.codec, t.pool), nil
}

// tcpListener tracks accepted connections so Close tears them down with the
// listener: a closed endpoint looks like a dead process to its peers (their
// next send fails) instead of a half-open socket that swallows traffic.
type tcpListener struct {
	ln    net.Listener
	codec Codec
	pool  *Pool

	mu       sync.Mutex
	accepted []*tcpConn // guarded by mu
	closed   bool       // guarded by mu
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	tc := newTCPConn(c, l.codec, l.pool)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		tc.Close()
		return nil, ErrClosed
	}
	l.accepted = append(l.accepted, tc)
	l.mu.Unlock()
	return tc, nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := l.accepted
	l.accepted = nil
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// tcpConn frames messages over one socket. Sends are serialised by a mutex
// (the compute results and heartbeats of one provider share its result
// link) and buffered per message: the codec writes header and payload
// separately, and coalescing them into one flush halves the syscalls on
// the hot path.
type tcpConn struct {
	c    net.Conn
	pool *Pool

	sendMu sync.Mutex
	bw     *bufio.Writer
	enc    Encoder

	recvMu sync.Mutex
	dec    Decoder
}

func newTCPConn(c net.Conn, codec Codec, pool *Pool) *tcpConn {
	bw := bufio.NewWriter(c)
	br := bufio.NewReader(c)
	var dec Decoder
	if pc, ok := codec.(pooledCodec); ok && pool != nil {
		dec = pc.NewPooledDecoder(br, pool)
	} else {
		dec = codec.NewDecoder(br)
	}
	return &tcpConn{
		c:    c,
		pool: pool,
		bw:   bw,
		enc:  codec.NewEncoder(bw),
		dec:  dec,
	}
}

func (c *tcpConn) Send(m Message) error {
	// The payload is captured before Encode (codecs may rewrite the
	// message's payload field while framing) and recycled after the
	// flush: the socket write copied it, so ownership — transferred to
	// the transport by the Send contract — ends here.
	payload := m.Payload
	c.sendMu.Lock()
	err := c.enc.Encode(&m)
	if err == nil {
		err = c.bw.Flush()
	}
	c.sendMu.Unlock()
	if c.pool != nil && !m.control() {
		c.pool.Put(payload)
	}
	return err
}

func (c *tcpConn) Recv() (Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var m Message
	err := c.dec.Decode(&m)
	return m, err
}

func (c *tcpConn) Close() error { return c.c.Close() }
