package transport

import (
	"bufio"
	"net"
	"sync"
)

// tcpTransport carries messages over localhost TCP sockets — the original
// runtime wire stack, now behind the Transport interface with the codec
// made pluggable.
type tcpTransport struct {
	codec Codec
}

// NewTCP returns the localhost TCP transport using the given codec
// (nil = Binary, the length-prefixed chunk codec; use Gob for the legacy
// wire format).
func NewTCP(codec Codec) Transport {
	if codec == nil {
		codec = Binary()
	}
	return &tcpTransport{codec: codec}
}

func (t *tcpTransport) Name() string { return "tcp+" + t.codec.Name() }

func (t *tcpTransport) Listen(self int) (Listener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &tcpListener{ln: ln, codec: t.codec}, nil
}

func (t *tcpTransport) Dial(self int, addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c, t.codec), nil
}

// tcpListener tracks accepted connections so Close tears them down with the
// listener: a closed endpoint looks like a dead process to its peers (their
// next send fails) instead of a half-open socket that swallows traffic.
type tcpListener struct {
	ln    net.Listener
	codec Codec

	mu       sync.Mutex
	accepted []*tcpConn
	closed   bool
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	tc := newTCPConn(c, l.codec)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		tc.Close()
		return nil, ErrClosed
	}
	l.accepted = append(l.accepted, tc)
	l.mu.Unlock()
	return tc, nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := l.accepted
	l.accepted = nil
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// tcpConn frames messages over one socket. Sends are serialised by a mutex
// (the compute results and heartbeats of one provider share its result
// link) and buffered per message: the codec writes header and payload
// separately, and coalescing them into one flush halves the syscalls on
// the hot path.
type tcpConn struct {
	c net.Conn

	sendMu sync.Mutex
	bw     *bufio.Writer
	enc    Encoder

	recvMu sync.Mutex
	dec    Decoder
}

func newTCPConn(c net.Conn, codec Codec) *tcpConn {
	bw := bufio.NewWriter(c)
	return &tcpConn{
		c:   c,
		bw:  bw,
		enc: codec.NewEncoder(bw),
		dec: codec.NewDecoder(bufio.NewReader(c)),
	}
}

func (c *tcpConn) Send(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.enc.Encode(&m); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *tcpConn) Recv() (Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var m Message
	err := c.dec.Decode(&m)
	return m, err
}

func (c *tcpConn) Close() error { return c.c.Close() }
